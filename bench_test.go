// Repository-level benchmark harness: one benchmark per evaluation claim
// of the paper (see DESIGN.md §3 and EXPERIMENTS.md). The experiment
// implementations live in internal/experiments and are shared with the
// cmd/peacebench table generator; the benchmarks here re-measure the hot
// paths under testing.B and report the paper-relevant custom metrics.
package peace_test

import (
	"crypto/rand"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/experiments"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/symcrypto"
)

// benchGroup issues one issuer/group/keys fixture for signature benches.
type benchGroup struct {
	pub  *sgs.PublicKey
	keys []*sgs.PrivateKey
}

func newBenchGroup(b *testing.B, nKeys int) *benchGroup {
	b.Helper()
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, nKeys)
	if err != nil {
		b.Fatal(err)
	}
	return &benchGroup{pub: iss.PublicKey(), keys: keys}
}

// BenchmarkE1SignatureSize regenerates the communication-overhead
// comparison (paper V.C): signature bytes on this curve and under the
// paper's 170/171-bit parameterization, versus RSA-1024.
func BenchmarkE1SignatureSize(b *testing.B) {
	g := newBenchGroup(b, 1)
	msg := []byte("bench message")
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[0], msg)
		if err != nil {
			b.Fatal(err)
		}
		size = len(sig.Bytes())
	}
	b.ReportMetric(float64(size), "sig-bytes")
	b.ReportMetric(float64(sgs.PaperSignatureBits())/8, "paper-sig-bytes")
	b.ReportMetric(1024.0/8, "rsa1024-bytes")
}

// BenchmarkE2SignVerify times the two core operations whose op counts the
// paper analyzes (8 exp + 2 pairings sign; 6 exp + 3 pairings verify).
func BenchmarkE2SignVerify(b *testing.B) {
	g := newBenchGroup(b, 1)
	msg := []byte("bench message")

	b.Run("Sign", func(b *testing.B) {
		var counts sgs.OpCounts
		for i := 0; i < b.N; i++ {
			_, c, err := sgs.SignCounted(rand.Reader, g.pub, g.keys[0], msg)
			if err != nil {
				b.Fatal(err)
			}
			counts = c
		}
		b.ReportMetric(float64(counts.Exps), "exps")
		b.ReportMetric(float64(counts.Pairings), "pairings")
	})
	b.Run("Verify", func(b *testing.B) {
		sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[0], msg)
		if err != nil {
			b.Fatal(err)
		}
		var counts sgs.OpCounts
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := sgs.VerifyCounted(g.pub, msg, sig)
			if err != nil {
				b.Fatal(err)
			}
			counts = c
		}
		b.ReportMetric(float64(counts.Exps), "exps")
		b.ReportMetric(float64(counts.Pairings+counts.GTExps), "pairings-paper-conv")
	})
}

// BenchmarkE3RevocationSweep regenerates the verification-cost-vs-|URL|
// series: the linear scan (3 + 2|URL| pairings) and the O(1) fast variant
// (5 pairings) the paper cites.
func BenchmarkE3RevocationSweep(b *testing.B) {
	const maxURL = 20
	g := newBenchGroup(b, maxURL+1)
	msg := []byte("bench message")
	signer := g.keys[0]
	tokens := make([]*sgs.RevocationToken, 0, maxURL)
	for _, k := range g.keys[1:] {
		tokens = append(tokens, k.Token())
	}

	for _, urlSize := range []int{0, 1, 2, 5, 10, 20} {
		url := tokens[:urlSize]
		b.Run(fmt.Sprintf("Linear/URL=%d", urlSize), func(b *testing.B) {
			sig, err := sgs.Sign(rand.Reader, g.pub, signer, msg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sgs.VerifyWithRevocation(g.pub, msg, sig, url); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(2+2*urlSize), "pairings")
		})
		b.Run(fmt.Sprintf("Fast/URL=%d", urlSize), func(b *testing.B) {
			checker := sgs.NewFastRevocationChecker(g.pub, url)
			sig, err := sgs.SignWithMode(rand.Reader, g.pub, signer, msg, sgs.FixedGenerators)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sgs.Verify(g.pub, msg, sig); err != nil {
					b.Fatal(err)
				}
				revoked, _, err := checker.IsRevoked(sig)
				if err != nil {
					b.Fatal(err)
				}
				if revoked {
					b.Fatal("unexpected revocation")
				}
			}
			b.ReportMetric(5, "pairings")
		})
	}
}

// BenchmarkE4Handshake times one full three-message user–router AKA (all
// cryptographic work on both sides, in-memory transport).
func BenchmarkE4Handshake(b *testing.B) {
	tb := newBenchDeployment(b)
	u := tb.user
	r := tb.router
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beacon, err := r.Beacon()
		if err != nil {
			b.Fatal(err)
		}
		m2, err := u.HandleBeacon(beacon, "grp-0")
		if err != nil {
			b.Fatal(err)
		}
		m3, _, err := r.HandleAccessRequest(m2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := u.HandleAccessConfirm(m3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(3, "messages")
}

// BenchmarkE5HybridAuth compares per-message authentication costs:
// group-signature (what a naive design pays per message) versus the
// hybrid design's HMAC and AES-GCM paths.
func BenchmarkE5HybridAuth(b *testing.B) {
	tb := newBenchDeployment(b)
	us, rs := tb.establish(b)
	payload := make([]byte, 256)
	g := newBenchGroup(b, 1)

	b.Run("GroupSignaturePerMessage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[0], payload)
			if err != nil {
				b.Fatal(err)
			}
			if err := sgs.Verify(g.pub, payload, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HMACPerMessage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := us.AuthData(payload)
			if _, err := rs.OpenData(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AESGCMPerMessage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := us.SealData(rand.Reader, payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rs.OpenData(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6Puzzle measures the DoS-defense asymmetry: solving cost
// (attacker/client side) versus verification cost (router side) at the
// default difficulty.
func BenchmarkE6Puzzle(b *testing.B) {
	now := time.Unix(1751600000, 0)
	b.Run("Solve/d=12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := puzzle.New(rand.Reader, 12, "MR-0", now)
			if err != nil {
				b.Fatal(err)
			}
			p.Solve()
		}
	})
	b.Run("Verify", func(b *testing.B) {
		p, err := puzzle.New(rand.Reader, 12, "MR-0", now)
		if err != nil {
			b.Fatal(err)
		}
		s := p.Solve()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Verify(s, now, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BogusM2RejectionWithPuzzle", func(b *testing.B) {
		// Router-side cost of shedding one solution-less bogus request.
		tb := newBenchDeployment(b)
		tb.router.SetDoSDefense(true)
		beacon, err := tb.router.Beacon()
		if err != nil {
			b.Fatal(err)
		}
		m2, err := tb.user.HandleBeacon(beacon, "grp-0")
		if err != nil {
			b.Fatal(err)
		}
		m2.HasSolution = false
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tb.router.HandleAccessRequest(m2); !errors.Is(err, core.ErrPuzzleRequired) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Audit measures the operator's audit scan per token and the
// full trace.
func BenchmarkE7Audit(b *testing.B) {
	for _, grtSize := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("grt=%d", grtSize), func(b *testing.B) {
			pts, err := experiments.RunE7AuditSweep([]int{grtSize})
			if err != nil {
				b.Fatal(err)
			}
			// The sweep measures a single worst-case audit; report it as
			// the metric and keep b.N loops cheap by reusing the result.
			b.ReportMetric(float64(pts[0].AuditTime.Microseconds()), "audit-us")
			b.ReportMetric(float64(pts[0].TokensScanned), "tokens-scanned")
			for i := 0; i < b.N; i++ {
				_ = pts
			}
		})
	}
}

// BenchmarkE10Primitives times the pairing substrate.
func BenchmarkE10Primitives(b *testing.B) {
	k, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	g1 := new(bn256.G1).ScalarBaseMult(k)
	g2 := new(bn256.G2).Base()

	b.Run("Pairing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bn256.Pair(g1, g2)
		}
	})
	b.Run("G1Exp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			new(bn256.G1).ScalarBaseMult(k)
		}
	})
	b.Run("G2Exp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			new(bn256.G2).ScalarBaseMult(k)
		}
	})
	b.Run("HMAC", func(b *testing.B) {
		key := symcrypto.DeriveKey([]byte("k"), "bench")
		payload := make([]byte, 256)
		for i := 0; i < b.N; i++ {
			symcrypto.MAC(key, uint64(i), payload)
		}
	})
}

// BenchmarkE11BatchVerify compares sixteen independent sgs.Verify calls
// against one Verifier.BatchVerify over the same sixteen signatures. The
// batch path combines the rearranged Eq.2 pairings into a single Miller
// pass per signature, amortizes the fixed-base tables across the batch
// and shards the work over the CPUs; the acceptance target is >=2x.
func BenchmarkE11BatchVerify(b *testing.B) {
	const batch = 16
	g := newBenchGroup(b, batch)
	items := make([]sgs.BatchItem, batch)
	msgs := make([][]byte, batch)
	for i := range items {
		msgs[i] = []byte(fmt.Sprintf("bench message %d", i))
		sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[i], msgs[i])
		if err != nil {
			b.Fatal(err)
		}
		items[i] = sgs.BatchItem{Msg: msgs[i], Sig: sig}
	}

	b.Run("Sequential16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range items {
				if err := sgs.Verify(g.pub, msgs[j], items[j].Sig); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/sig")
	})
	b.Run("Batch16", func(b *testing.B) {
		ver := sgs.NewVerifier(g.pub)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, err := range ver.BatchVerify(items) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/sig")
	})
}

// BenchmarkE12ParallelSweep measures the concurrent revocation sweep: a
// worst-case (non-revoked) scan of a 64-token URL at increasing worker
// counts, reusing the shared e(-T1, vhat) Miller value across all tokens.
func BenchmarkE12ParallelSweep(b *testing.B) {
	const urlSize = 64
	g := newBenchGroup(b, urlSize+1)
	msg := []byte("bench message")
	sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[0], msg)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]*sgs.RevocationToken, 0, urlSize)
	for _, k := range g.keys[1:] {
		tokens = append(tokens, k.Token())
	}
	ver := sgs.NewVerifier(g.pub)

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("URL=%d/workers=%d", urlSize, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				revoked, _ := ver.SweepURLWorkers(msg, sig, tokens, workers)
				if revoked {
					b.Fatal("unexpected revocation")
				}
			}
			b.ReportMetric(float64(urlSize), "tokens-scanned")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/urlSize, "ns/token")
		})
	}
}

// benchDeployment is a minimal provisioned deployment for the benches.
type benchDeployment struct {
	no     *core.NetworkOperator
	user   *core.User
	router *core.MeshRouter
}

func newBenchDeployment(b *testing.B) *benchDeployment {
	b.Helper()
	cfg := core.Config{
		Clock:            &core.FixedClock{T: time.Unix(1751600000, 0)},
		FreshnessWindow:  time.Hour,
		PuzzleDifficulty: 8,
	}
	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		b.Fatal(err)
	}
	gm, err := core.NewGroupManager(cfg, "grp-0", no.Authority())
	if err != nil {
		b.Fatal(err)
	}
	if err := no.RegisterUserGroup(gm, ttp, 4); err != nil {
		b.Fatal(err)
	}
	u, err := core.NewUser(cfg, core.Identity{Essential: "bench-user"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := core.EnrollUser(u, gm, ttp); err != nil {
		b.Fatal(err)
	}
	r, err := core.NewMeshRouter(cfg, "MR-0", no.Authority(), no.GroupPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	c, err := no.EnrollRouter("MR-0", r.Public())
	if err != nil {
		b.Fatal(err)
	}
	r.SetCertificate(c)
	crl, url, err := no.RevocationBundles()
	if err != nil {
		b.Fatal(err)
	}
	if err := r.UpdateRevocations(crl, url); err != nil {
		b.Fatal(err)
	}
	for _, snap := range []*revocation.Snapshot{crl.Snapshot, url.Snapshot} {
		if err := u.InstallRevocationSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
	return &benchDeployment{no: no, user: u, router: r}
}

func (d *benchDeployment) establish(b *testing.B) (*core.Session, *core.Session) {
	b.Helper()
	beacon, err := d.router.Beacon()
	if err != nil {
		b.Fatal(err)
	}
	m2, err := d.user.HandleBeacon(beacon, "grp-0")
	if err != nil {
		b.Fatal(err)
	}
	m3, rs, err := d.router.HandleAccessRequest(m2)
	if err != nil {
		b.Fatal(err)
	}
	us, err := d.user.HandleAccessConfirm(m3)
	if err != nil {
		b.Fatal(err)
	}
	return us, rs
}
