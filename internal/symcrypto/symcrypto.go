// Package symcrypto is PEACE's symmetric layer: key derivation from the
// Diffie–Hellman secrets established by the AKA protocols, authenticated
// encryption for E_K(·) (paper messages M.3 / M̃.3 and session traffic),
// and the per-message HMAC authentication used by the hybrid
// asymmetric/symmetric session design of Section V.C.
//
// Instantiation: HMAC-SHA256 for extraction/expansion and MACs (an
// HKDF-shaped construction), AES-256-GCM for authenticated encryption. The
// paper leaves E_K and the MAC unspecified; these are the conventional
// modern choices available in the standard library.
package symcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Exported errors.
var (
	ErrDecrypt = errors.New("symcrypto: decryption failed")
	ErrBadMAC  = errors.New("symcrypto: MAC verification failed")
)

// KeySize is the symmetric key size in bytes (AES-256 / HMAC-SHA256).
const KeySize = 32

// MACSize is the length of a truncated session MAC tag.
const MACSize = 32

// Key is a symmetric key.
type Key [KeySize]byte

// SessionKeys bundles the directional keys derived from one AKA run.
type SessionKeys struct {
	// Enc protects session payloads (AES-256-GCM).
	Enc Key
	// Mac authenticates per-message session traffic (HMAC-SHA256).
	Mac Key
}

// extract implements HKDF-Extract with a fixed protocol salt.
func extract(secret []byte) []byte {
	mac := hmac.New(sha256.New, []byte("peace/symcrypto:extract:v1"))
	mac.Write(secret)
	return mac.Sum(nil)
}

// expand implements HKDF-Expand for up to 255 blocks.
func expand(prk []byte, info string, length int) []byte {
	out := make([]byte, 0, length)
	var block []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(block)
		mac.Write([]byte(info))
		mac.Write([]byte{counter})
		block = mac.Sum(nil)
		out = append(out, block...)
	}
	return out[:length]
}

// Stream derives a deterministic keystream of the requested length from a
// secret. PEACE's setup uses it to realize the paper's A ⊕ x masking when
// the bit-lengths of A and x differ (the pad is expanded from x, so the
// TTP still learns nothing about A without x, and x never reaches the TTP).
func Stream(secret []byte, label string, length int) []byte {
	return expand(extract(secret), "stream:"+label, length)
}

// DeriveKey derives a single labeled key from a shared secret.
func DeriveKey(secret []byte, label string) Key {
	var k Key
	copy(k[:], expand(extract(secret), label, KeySize))
	return k
}

// DeriveSessionKeys derives the encryption and MAC keys for a session from
// the DH secret (g^{r_R·r_j} marshaled) and the session transcript, which
// binds the keys to the session identifier (g^{r_R}, g^{r_j}).
func DeriveSessionKeys(dhSecret, transcript []byte) SessionKeys {
	prk := extract(dhSecret)
	info := "peace/session:" + string(hashBytes(transcript))
	material := expand(prk, info, 2*KeySize)
	var sk SessionKeys
	copy(sk.Enc[:], material[:KeySize])
	copy(sk.Mac[:], material[KeySize:])
	return sk
}

func hashBytes(b []byte) []byte {
	d := sha256.Sum256(b)
	return d[:]
}

// Seal encrypts and authenticates plaintext with the key, binding aad.
// The random nonce is prepended to the ciphertext.
func Seal(rng io.Reader, key Key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("symcrypto: nonce: %w", err)
	}
	out := aead.Seal(nonce, nonce, plaintext, aad)
	return out, nil
}

// Open authenticates and decrypts a Seal output.
func Open(key Key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, rest := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, rest, aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// GCMNonceSize and GCMOverhead expose the AEAD geometry of Seal/Open
// output (nonce prefix + ciphertext + tag) so hot paths can size
// buffers without constructing an AEAD.
const (
	GCMNonceSize = 12
	GCMOverhead  = 16
)

// NewAEAD builds the AES-256-GCM AEAD for key. Hot paths cache the
// result per session instead of paying the key schedule on every Seal
// and Open; the sealed wire format (nonce || ciphertext) is identical
// to Seal's.
func NewAEAD(key Key) (cipher.AEAD, error) { return newAEAD(key) }

func newAEAD(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("symcrypto: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("symcrypto: gcm: %w", err)
	}
	return aead, nil
}

// MAC computes the session MAC over a sequence-numbered message, the
// MAC-based per-packet authentication of the hybrid design.
func MAC(key Key, seq uint64, msg []byte) [MACSize]byte {
	mac := hmac.New(sha256.New, key[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	mac.Write(s[:])
	mac.Write(msg)
	var out [MACSize]byte
	mac.Sum(out[:0])
	return out
}

// VerifyMAC checks a MAC tag in constant time.
func VerifyMAC(key Key, seq uint64, msg []byte, tag [MACSize]byte) error {
	want := MAC(key, seq, msg)
	if !hmac.Equal(want[:], tag[:]) {
		return ErrBadMAC
	}
	return nil
}
