package symcrypto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrUnknownTicketKey is returned by TicketKeyRing.Open when the blob
// names a key generation the ring no longer (or never) held — the signal
// that a resumption ticket has rotated out and the client must run the
// full handshake again.
var ErrUnknownTicketKey = errors.New("symcrypto: unknown ticket key generation")

// stekIDSize is the length of the key-generation prefix on sealed blobs.
const stekIDSize = 8

// stekKey is one STEK generation: a random 64-bit identifier (carried in
// the clear on every sealed blob so Open can pick the right generation)
// and the AEAD key itself.
type stekKey struct {
	id  uint64
	key Key
}

// TicketKeyRing holds the server's rotating Session Ticket Encryption
// Keys (STEKs). Seal always uses the newest generation; Open accepts the
// newest plus a bounded number of rotated-out generations (the old-key
// grace window), so tickets issued just before a rotation keep working
// for one more rotation period. The ring is deliberately independent of
// any one server instance: sharing it across process incarnations is what
// lets a restarted server honor tickets issued by its predecessor.
type TicketKeyRing struct {
	mu sync.RWMutex
	// keys[0] is the sealing generation; the tail is the grace window.
	keys   []stekKey
	maxOld int
}

// NewTicketKeyRing creates a ring with one fresh key generation and a
// grace window of one rotated-out generation.
func NewTicketKeyRing(rng io.Reader) (*TicketKeyRing, error) {
	r := &TicketKeyRing{maxOld: 1}
	if err := r.Rotate(rng); err != nil {
		return nil, err
	}
	return r, nil
}

// newStekKey draws a fresh generation from rng.
func newStekKey(rng io.Reader) (stekKey, error) {
	var k stekKey
	var idb [stekIDSize]byte
	if _, err := io.ReadFull(rng, idb[:]); err != nil {
		return k, fmt.Errorf("symcrypto: ticket key id: %w", err)
	}
	k.id = binary.BigEndian.Uint64(idb[:])
	if _, err := io.ReadFull(rng, k.key[:]); err != nil {
		return k, fmt.Errorf("symcrypto: ticket key: %w", err)
	}
	return k, nil
}

// Rotate installs a fresh sealing generation and trims the grace window,
// permanently retiring the oldest keys. Tickets sealed under a retired
// generation fail Open with ErrUnknownTicketKey.
func (r *TicketKeyRing) Rotate(rng io.Reader) error {
	k, err := newStekKey(rng)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys = append([]stekKey{k}, r.keys...)
	if len(r.keys) > 1+r.maxOld {
		r.keys = r.keys[:1+r.maxOld]
	}
	return nil
}

// CurrentID returns the identifier of the sealing generation.
func (r *TicketKeyRing) CurrentID() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.keys[0].id
}

// Generations returns how many key generations can currently Open.
func (r *TicketKeyRing) Generations() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// Seal encrypts plaintext under the current generation, binding aad, and
// prepends the generation identifier in the clear.
func (r *TicketKeyRing) Seal(rng io.Reader, plaintext, aad []byte) ([]byte, error) {
	r.mu.RLock()
	k := r.keys[0]
	r.mu.RUnlock()

	ct, err := Seal(rng, k.key, plaintext, aad)
	if err != nil {
		return nil, err
	}
	out := make([]byte, stekIDSize, stekIDSize+len(ct))
	binary.BigEndian.PutUint64(out, k.id)
	return append(out, ct...), nil
}

// Open decrypts a Seal output, selecting the generation named by the blob
// prefix. A generation outside the grace window yields
// ErrUnknownTicketKey; a tampered blob yields ErrDecrypt.
func (r *TicketKeyRing) Open(blob, aad []byte) ([]byte, error) {
	if len(blob) < stekIDSize {
		return nil, ErrUnknownTicketKey
	}
	id := binary.BigEndian.Uint64(blob[:stekIDSize])

	r.mu.RLock()
	var key Key
	found := false
	for _, k := range r.keys {
		if k.id == id {
			key, found = k.key, true
			break
		}
	}
	r.mu.RUnlock()
	if !found {
		return nil, ErrUnknownTicketKey
	}
	return Open(key, blob[stekIDSize:], aad)
}
