package symcrypto

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := DeriveKey([]byte("shared secret"), "test")
	pt := []byte("the plaintext payload")
	aad := []byte("session-id-123")

	ct, err := Seal(rand.Reader, key, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, pt) {
		t.Fatal("ciphertext contains plaintext")
	}
	back, err := Open(key, ct, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round-trip mismatch")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := DeriveKey([]byte("s"), "k")
	ct, err := Seal(rand.Reader, key, []byte("data"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}

	// Flip each byte in turn.
	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := Open(key, bad, []byte("aad")); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Wrong AAD.
	if _, err := Open(key, ct, []byte("other")); !errors.Is(err, ErrDecrypt) {
		t.Fatal("wrong AAD accepted")
	}
	// Wrong key.
	other := DeriveKey([]byte("s2"), "k")
	if _, err := Open(other, ct, []byte("aad")); !errors.Is(err, ErrDecrypt) {
		t.Fatal("wrong key accepted")
	}
	// Too short.
	if _, err := Open(key, ct[:4], []byte("aad")); !errors.Is(err, ErrDecrypt) {
		t.Fatal("short ciphertext accepted")
	}
}

func TestDeriveSessionKeys(t *testing.T) {
	sk1 := DeriveSessionKeys([]byte("dh"), []byte("transcript A"))
	sk2 := DeriveSessionKeys([]byte("dh"), []byte("transcript A"))
	sk3 := DeriveSessionKeys([]byte("dh"), []byte("transcript B"))
	sk4 := DeriveSessionKeys([]byte("dh2"), []byte("transcript A"))

	if sk1 != sk2 {
		t.Fatal("derivation not deterministic")
	}
	if sk1 == sk3 {
		t.Fatal("different transcripts produced identical keys")
	}
	if sk1 == sk4 {
		t.Fatal("different secrets produced identical keys")
	}
	if sk1.Enc == sk1.Mac {
		t.Fatal("enc and mac keys identical")
	}
}

func TestMAC(t *testing.T) {
	key := DeriveKey([]byte("secret"), "mac")
	msg := []byte("packet payload")

	tag := MAC(key, 7, msg)
	if err := VerifyMAC(key, 7, msg, tag); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMAC(key, 8, msg, tag); !errors.Is(err, ErrBadMAC) {
		t.Fatal("sequence-number replay accepted")
	}
	if err := VerifyMAC(key, 7, []byte("altered"), tag); !errors.Is(err, ErrBadMAC) {
		t.Fatal("altered message accepted")
	}
	other := DeriveKey([]byte("secret2"), "mac")
	if err := VerifyMAC(other, 7, msg, tag); !errors.Is(err, ErrBadMAC) {
		t.Fatal("wrong key accepted")
	}
}

func TestDeriveKeyLabelsIndependent(t *testing.T) {
	a := DeriveKey([]byte("s"), "label-a")
	b := DeriveKey([]byte("s"), "label-b")
	if a == b {
		t.Fatal("different labels produced identical keys")
	}
}

func TestQuickSealOpen(t *testing.T) {
	key := DeriveKey([]byte("property"), "quick")
	f := func(pt, aad []byte) bool {
		ct, err := Seal(rand.Reader, key, pt, aad)
		if err != nil {
			return false
		}
		back, err := Open(key, ct, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
