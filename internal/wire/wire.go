// Package wire provides small, allocation-conscious helpers for the
// length-prefixed binary encoding used by every PEACE protocol message.
// All integers are big-endian; byte strings carry a 4-byte length prefix.
// Decoding is strict: trailing garbage and truncated fields are errors.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Exported errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrOversize  = errors.New("wire: field exceeds size limit")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
)

// maxFieldLen bounds a single length-prefixed field (16 MiB) so corrupt
// lengths cannot trigger huge allocations.
const maxFieldLen = 16 << 20

// Writer incrementally builds a message.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded message.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) *Writer {
	w.buf = append(w.buf, b)
	return w
}

// Uint32 appends a fixed 4-byte integer.
func (w *Writer) Uint32(v uint32) *Writer {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Uint64 appends a fixed 8-byte integer.
func (w *Writer) Uint64(v uint64) *Writer {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) BytesField(p []byte) *Writer {
	w.Uint32(uint32(len(p)))
	w.buf = append(w.buf, p...)
	return w
}

// String appends a length-prefixed string.
func (w *Writer) StringField(s string) *Writer {
	return w.BytesField([]byte(s))
}

// Time appends a timestamp with nanosecond precision.
func (w *Writer) Time(t time.Time) *Writer {
	return w.Uint64(uint64(t.UnixNano()))
}

// Reader consumes a message produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns ErrTrailing unless the message was fully consumed.
func (r *Reader) Finish() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

// Byte reads a single byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Uint32 reads a fixed 4-byte integer.
func (r *Reader) Uint32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uint64 reads a fixed 8-byte integer.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// BytesField reads a length-prefixed byte string. The returned slice
// aliases the input buffer. The length prefix is checked against the
// bytes actually remaining before anything is sized from it, so a short
// datagram claiming a 4 GiB field fails fast with ErrTruncated.
func (r *Reader) BytesField() ([]byte, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxFieldLen {
		return nil, ErrOversize
	}
	if int64(n) > int64(r.Remaining()) {
		return nil, ErrTruncated
	}
	p := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return p, nil
}

// Count reads a uint32 element count and bounds it by what the remaining
// bytes could possibly hold, assuming each element occupies at least
// perElem encoded bytes. Decoders that pre-size slices from an attacker-
// controlled count must use this instead of Uint32 so a tiny datagram
// claiming millions of elements cannot trigger a huge allocation.
func (r *Reader) Count(perElem int) (int, error) {
	n, err := r.Uint32()
	if err != nil {
		return 0, err
	}
	if perElem < 1 {
		perElem = 1
	}
	if int64(n)*int64(perElem) > int64(r.Remaining()) {
		return 0, fmt.Errorf("%w: count %d needs ≥ %d bytes, %d remain",
			ErrTruncated, n, int64(n)*int64(perElem), r.Remaining())
	}
	return int(n), nil
}

// StringField reads a length-prefixed string.
func (r *Reader) StringField() (string, error) {
	p, err := r.BytesField()
	return string(p), err
}

// Time reads a timestamp written by Writer.Time.
func (r *Reader) Time() (time.Time, error) {
	v, err := r.Uint64()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, int64(v)), nil
}
