package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	now := time.Unix(0, 1751600000000000000)
	w := NewWriter(64)
	w.Byte(0x7F)
	w.Uint32(123456)
	w.Uint64(1 << 40)
	w.BytesField([]byte("payload"))
	w.StringField("identifier")
	w.Time(now)

	r := NewReader(w.Bytes())
	if b, err := r.Byte(); err != nil || b != 0x7F {
		t.Fatalf("Byte = %v, %v", b, err)
	}
	if v, err := r.Uint32(); err != nil || v != 123456 {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if p, err := r.BytesField(); err != nil || !bytes.Equal(p, []byte("payload")) {
		t.Fatalf("BytesField = %q, %v", p, err)
	}
	if s, err := r.StringField(); err != nil || s != "identifier" {
		t.Fatalf("StringField = %q, %v", s, err)
	}
	if ts, err := r.Time(); err != nil || !ts.Equal(now) {
		t.Fatalf("Time = %v, %v", ts, err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(16)
	w.BytesField([]byte("hello"))
	data := w.Bytes()

	for cut := 0; cut < len(data); cut++ {
		r := NewReader(data[:cut])
		if _, err := r.BytesField(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestTrailingBytes(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(1)
	data := append(w.Bytes(), 0xEE)
	r := NewReader(data)
	if _, err := r.Uint32(); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
}

func TestOversizeField(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(1 << 30) // absurd length prefix
	r := NewReader(w.Bytes())
	if _, err := r.BytesField(); !errors.Is(err, ErrOversize) {
		t.Fatalf("want ErrOversize, got %v", err)
	}
}

func TestCountBounded(t *testing.T) {
	// A 16-byte message claiming 2^20 four-byte elements must be rejected
	// before any allocation is sized from the count.
	w := NewWriter(16)
	w.Uint32(1 << 20)
	w.Uint64(0) // 8 bytes of "element" data
	r := NewReader(w.Bytes())
	if _, err := r.Count(4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}

	// A count that fits is returned unchanged and leaves the elements
	// readable.
	w = NewWriter(16)
	w.Uint32(2)
	w.Uint32(7)
	w.Uint32(9)
	r = NewReader(w.Bytes())
	n, err := r.Count(4)
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Uint32(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	// perElem < 1 is clamped so Count(0) cannot overflow the bound.
	r = NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := r.Count(0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated for max count, got %v", err)
	}
}

func TestBytesFieldHugeClaimCheapRejection(t *testing.T) {
	// 16-byte datagram claiming a 4 GiB field: rejected by prefix checks,
	// never by attempting to slice or allocate.
	var data [16]byte
	data[0], data[1], data[2], data[3] = 0xFF, 0xFF, 0xFF, 0xFF
	r := NewReader(data[:])
	if _, err := r.BytesField(); !errors.Is(err, ErrOversize) {
		t.Fatalf("want ErrOversize, got %v", err)
	}
	// Within the size cap but beyond what remains: ErrTruncated.
	r = NewReader([]byte{0x00, 0x10, 0x00, 0x00, 0xAA})
	if _, err := r.BytesField(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a, b []byte, s string) bool {
		w := NewWriter(len(a) + len(b) + len(s) + 16)
		w.BytesField(a)
		w.BytesField(b)
		w.StringField(s)
		r := NewReader(w.Bytes())
		ga, err := r.BytesField()
		if err != nil {
			return false
		}
		gb, err := r.BytesField()
		if err != nil {
			return false
		}
		gs, err := r.StringField()
		if err != nil {
			return false
		}
		return bytes.Equal(a, ga) && bytes.Equal(b, gb) && s == gs && r.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
