package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations
// whose nanosecond value has a bit length of i, i.e. bucket 0 is exactly
// 0ns and bucket i (i ≥ 1) spans [2^(i-1), 2^i) ns. 64 buckets cover
// every non-negative int64 duration, so observation never branches on
// range and the per-bucket relative error is bounded by 2×.
const histBuckets = 64

// Histogram is a log₂-bucketed latency distribution. Observe is one
// atomic add per field (count, sum, bucket) with no locks and no
// allocation, so it is safe on the batched data plane.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// histBucket maps a non-negative nanosecond value to its bucket index.
func histBucket(ns int64) int {
	return bits.Len64(uint64(ns))
}

// Observe records one latency sample. Negative durations (clock steps)
// are clamped to zero rather than corrupting a bucket index.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// per-bucket (non-cumulative) counts indexed by bit length.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Buckets [histBuckets]int64
}

// snapshot copies the histogram state. Loads are not mutually atomic;
// under concurrent observation the copy may be off by in-flight samples,
// which is fine for an instrument read.
func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() *HistogramSnapshot { return h.snapshot() }

// bucketBounds returns the [lo, hi] nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	hi = lo<<1 - 1
	if hi < lo { // i == 63: 2^63-1 overflows the shift
		hi = 1<<63 - 1
	}
	return lo, hi
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by walking the
// cumulative bucket counts and interpolating linearly inside the target
// bucket. Returns 0 when the histogram is empty.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s == nil || s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target sample.
	rank := int64(q*float64(s.Count-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			if hi == lo {
				return time.Duration(lo)
			}
			frac := float64(rank-seen) / float64(n)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += n
	}
	_, hi := bucketBounds(histBuckets - 1)
	return time.Duration(hi)
}

// Mean returns the average observed latency, 0 when empty.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s == nil || s.Count <= 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile is a convenience that snapshots and estimates in one call.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.snapshot().Quantile(q)
}
