package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the registry's
// data-race gate, and the final counts must be exact.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("conc_counter", "race gate counter")
	g := reg.Gauge("conc_gauge", "race gate gauge")
	h := reg.Histogram("conc_hist", "race gate histogram")
	vec := reg.CounterVec("conc_vec", "race gate family", "kind")
	child := vec.With("a")

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctr.Inc()
				g.Add(1)
				h.Observe(time.Duration(seed+int64(i)) * time.Microsecond)
				child.Add(1)
				// Concurrent snapshots must also be race-free.
				if i%4096 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()

	const want = workers * perWorker
	if got := ctr.Load(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Load(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := child.Load(); got != want {
		t.Errorf("vec child = %d, want %d", got, want)
	}
}

// TestHistogramQuantilesVsSorted checks the log₂-bucket quantile
// estimate against the exact sorted-sample reference: with power-of-two
// bucket bounds the estimate must sit within a factor of two of truth.
func TestHistogramQuantilesVsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform spread from ~1µs to ~1s, the range the latency
		// boundaries actually observe.
		ns := int64(1000 * (1 << uint(rng.Intn(20))))
		ns += rng.Int63n(ns)
		samples = append(samples, ns)
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		idx := int(q * float64(len(samples)-1))
		exact := samples[idx]
		got := int64(snap.Quantile(q))
		if got < exact/2 || got > exact*2 {
			t.Errorf("q=%.2f: estimate %d outside [%d, %d] around exact %d",
				q, got, exact/2, exact*2, exact)
		}
	}
	var sum int64
	for _, s := range samples {
		sum += s
	}
	if snap.Sum != sum {
		t.Errorf("sum = %d, want %d", snap.Sum, sum)
	}
}

// TestHistogramEdges pins degenerate inputs: empty histograms, zero and
// negative durations, and the max-bucket clamp.
func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clock step: clamped to 0
	if got := h.Quantile(1); got != 0 {
		t.Errorf("all-zero quantile = %v, want 0", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	lo, hi := bucketBounds(histBuckets - 1)
	if lo <= 0 || hi != 1<<63-1 {
		t.Errorf("top bucket bounds = [%d, %d]", lo, hi)
	}
}

// TestPrometheusExpositionGolden locks the text format byte-for-byte for
// a registry with one of every instrument kind.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_in", "valid frames received").Add(42)
	reg.Gauge("gossip_peers", "live backbone links").Store(3)
	reg.UintGauge("boot_epoch", "signed boot epoch").Store(9)
	reg.GaugeFunc("queue_depth", "ingest jobs waiting", func() int64 { return 5 })
	vec := reg.CounterVec("chaos_injected", "injected faults by kind", "fault")
	vec.With("drop").Add(7)
	vec.With("corrupt").Add(2)
	h := reg.Histogram("attach_latency", "full attach round trip")
	h.Observe(3 * time.Microsecond) // bucket [2048, 4095] ns
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond) // bucket [65536, 131071] ns

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP frames_in valid frames received
# TYPE frames_in counter
frames_in 42
# HELP gossip_peers live backbone links
# TYPE gossip_peers gauge
gossip_peers 3
# HELP boot_epoch signed boot epoch
# TYPE boot_epoch gauge
boot_epoch 9
# HELP queue_depth ingest jobs waiting
# TYPE queue_depth gauge
queue_depth 5
# HELP chaos_injected injected faults by kind
# TYPE chaos_injected counter
chaos_injected{fault="drop"} 7
chaos_injected{fault="corrupt"} 2
# HELP attach_latency full attach round trip
# TYPE attach_latency histogram
attach_latency_bucket{le="4.095e-06"} 2
attach_latency_bucket{le="0.000131071"} 3
attach_latency_bucket{le="+Inf"} 3
attach_latency_sum 0.000106
attach_latency_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSONStable locks the generic JSON walk: flat object,
// registration order, histograms nested.
func TestSnapshotJSONStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_in", "").Add(2)
	reg.UintGauge("boot_epoch", "").Store(18446744073709551615)
	reg.Histogram("data_rtt", "").Observe(time.Microsecond)

	got, err := reg.Snapshot().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"frames_in":2,"boot_epoch":18446744073709551615,` +
		`"data_rtt":{"count":1,"sum_ns":1000,"p50_ns":1023,"p99_ns":1023}}`
	if string(got) != want {
		t.Errorf("json = %s\nwant  %s", got, want)
	}
}

// TestAllocsPerIncrement gates the hot-path operations at zero
// allocations; the data plane bumps these per datagram.
func TestAllocsPerIncrement(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("alloc_counter", "")
	g := reg.Gauge("alloc_gauge", "")
	h := reg.Histogram("alloc_hist", "")
	if avg := testing.AllocsPerRun(1000, func() {
		ctr.Inc()
		ctr.Add(3)
		g.Store(7)
		g.Add(-1)
		h.Observe(12345 * time.Nanosecond)
	}); avg != 0 {
		t.Errorf("hot-path increments allocate %.2f/op, want 0", avg)
	}
}

// TestRegistrationRules covers the lint invariants the registry enforces
// at registration time: snake_case names, uniqueness across kinds, and
// idempotent re-registration returning the same handle.
func TestRegistrationRules(t *testing.T) {
	for name, ok := range map[string]bool{
		"frames_in":   true,
		"a":           true,
		"a9_b":        true,
		"":            false,
		"FramesIn":    false,
		"9frames":     false,
		"_frames":     false,
		"frames-in":   false,
		"frames in":   false,
		"frames_in\n": false,
	} {
		if got := ValidName(name); got != ok {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, ok)
		}
	}

	reg := NewRegistry()
	a := reg.Counter("dup", "")
	if b := reg.Counter("dup", ""); a != b {
		t.Error("re-registering a counter returned a different handle")
	}
	mustPanic(t, "kind collision", func() { reg.Gauge("dup", "") })
	mustPanic(t, "bad name", func() { reg.Counter("Bad-Name", "") })
	vec := reg.CounterVec("faults", "", "fault")
	if vec2 := reg.CounterVec("faults", "", "fault"); vec != vec2 {
		t.Error("re-registering a vec returned a different handle")
	}
	mustPanic(t, "vec label collision", func() { reg.CounterVec("faults", "", "other") })
	c1 := vec.With("drop")
	if c2 := vec.With("drop"); c1 != c2 {
		t.Error("vec.With returned a different handle for the same value")
	}
	// The flattened child name is reserved against scalar registration
	// with a different identity.
	mustPanic(t, "child name collision", func() { reg.Gauge("faults_drop", "") })
	mustPanic(t, "scalar over family", func() { reg.Counter("faults", "") })
}

// TestGaugeFuncRebind checks the restart pattern: re-registering a gauge
// func swaps the callback to the live instance.
func TestGaugeFuncRebind(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("depth", "", func() int64 { return 1 })
	reg.GaugeFunc("depth", "", func() int64 { return 2 })
	if got := reg.Snapshot().Value("depth"); got != 2 {
		t.Errorf("rebound gauge func = %d, want 2", got)
	}
}

// TestHubMerge checks multi-registry aggregation and first-writer-wins
// dedup of colliding names.
func TestHubMerge(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("shared", "").Add(1)
	r1.Counter("only_one", "").Add(10)
	r2 := NewRegistry()
	r2.Counter("shared", "").Add(100)
	r2.Counter("only_two", "").Add(20)

	hub := NewHub()
	hub.Add(r1, r2)
	refreshed := false
	hub.OnScrape(func() { refreshed = true })
	snap := hub.Snapshot()
	if !refreshed {
		t.Error("OnScrape callback did not run")
	}
	if got := snap.Value("shared"); got != 1 {
		t.Errorf("shared = %d, want 1 (first registry wins)", got)
	}
	if snap.Value("only_one") != 10 || snap.Value("only_two") != 20 {
		t.Errorf("hub merge lost instruments: %v", hub.Names())
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
