package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MarshalJSON renders the snapshot as one flat JSON object in
// registration order, so a generic walk over the registry reproduces the
// stable column names older tooling greps for. Histograms render as a
// nested object with count/sum/quantile fields.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, sm := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:", sm.Name)
		switch sm.Kind {
		case KindUintGauge:
			b.WriteString(strconv.FormatUint(sm.Uint, 10))
		case KindHistogram:
			h := sm.Hist
			fmt.Fprintf(&b, `{"count":%d,"sum_ns":%d,"p50_ns":%d,"p99_ns":%d}`,
				h.Count, h.Sum, int64(h.Quantile(0.50)), int64(h.Quantile(0.99)))
		default:
			b.WriteString(strconv.FormatInt(sm.Int, 10))
		}
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// promEscape escapes a help string for a # HELP line.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promKind maps an instrument kind to the Prometheus TYPE keyword.
func promKind(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WriteTo renders every instrument in Prometheus text exposition format
// (version 0.0.4). Vec children are grouped under their family name with
// the label attached; histogram buckets are emitted cumulatively with
// `le` in seconds and a closing +Inf bucket as the format requires.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	seenFamily := make(map[string]bool)
	for _, sm := range s {
		family := sm.Name
		if sm.Family != "" {
			family = sm.Family
		}
		if !seenFamily[family] {
			seenFamily[family] = true
			if sm.Help != "" {
				if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", family, promEscape(sm.Help)); err != nil {
					return cw.n, err
				}
			}
			if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", family, promKind(sm.Kind)); err != nil {
				return cw.n, err
			}
		}
		var err error
		switch sm.Kind {
		case KindHistogram:
			err = writePromHistogram(cw, family, sm.Hist)
		case KindUintGauge:
			_, err = fmt.Fprintf(cw, "%s %d\n", family, sm.Uint)
		default:
			if sm.Label != "" {
				_, err = fmt.Fprintf(cw, "%s{%s=%q} %d\n", family, sm.Label, sm.LabelValue, sm.Int)
			} else {
				_, err = fmt.Fprintf(cw, "%s %d\n", family, sm.Int)
			}
		}
		if err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// writePromHistogram emits one histogram family body: cumulative
// _bucket{le="..."} lines for non-empty buckets (upper bounds converted
// from nanoseconds to seconds), the required +Inf bucket, _sum in
// seconds, and _count.
func writePromHistogram(w io.Writer, name string, h *HistogramSnapshot) error {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		cum += h.Buckets[i]
		_, hi := bucketBounds(i)
		le := strconv.FormatFloat(float64(hi)/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(h.Sum)/1e9, 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo renders the registry's current state in Prometheus text format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// Handler serves the registry in Prometheus text format over HTTP.
func (r *Registry) Handler() http.Handler {
	h := NewHub()
	h.Add(r)
	return h
}

// Hub aggregates several registries behind one /metrics handler —
// meshd's transport registry plus the core router's registry, for
// example. Registries are emitted in Add order; duplicate family names
// across registries are skipped after the first occurrence so the
// exposition stays valid.
type Hub struct {
	mu      sync.Mutex
	regs    []*Registry
	refresh []func()
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// Add appends registries to the hub.
func (h *Hub) Add(regs ...*Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.regs = append(h.regs, regs...)
}

// OnScrape registers a callback run before each exposition — the hook
// for refreshing stored gauges that mirror live structures.
func (h *Hub) OnScrape(fn func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.refresh = append(h.refresh, fn)
}

// Snapshot merges all registries' snapshots, dropping instruments whose
// name was already taken by an earlier registry.
func (h *Hub) Snapshot() Snapshot {
	h.mu.Lock()
	regs := make([]*Registry, len(h.regs))
	copy(regs, h.regs)
	refresh := make([]func(), len(h.refresh))
	copy(refresh, h.refresh)
	h.mu.Unlock()

	for _, fn := range refresh {
		fn()
	}
	var out Snapshot
	seen := make(map[string]bool)
	for _, r := range regs {
		for _, sm := range r.Snapshot() {
			if seen[sm.Name] {
				continue
			}
			seen[sm.Name] = true
			out = append(out, sm)
		}
	}
	return out
}

// ServeHTTP implements http.Handler with the text exposition format.
func (h *Hub) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	snap := h.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = snap.WriteTo(w)
}

// Names returns the sorted instrument names across the hub's registries
// (diagnostics and lint).
func (h *Hub) Names() []string {
	snap := h.Snapshot()
	names := make([]string, 0, len(snap))
	for _, sm := range snap {
		names = append(names, sm.Name)
	}
	sort.Strings(names)
	return names
}
