package metrics_test

import (
	"net"
	"testing"

	"github.com/peace-mesh/peace/internal/chaos"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/transport"
)

// TestInstrumentNamingLint is the metrics-lint gate: it instantiates
// every layer's production registry and checks the full instrument
// namespace — snake_case names, no duplicates within a registry, and no
// collisions between the transport and router registries (meshd merges
// those two into one /metrics exposition, where a shared name would
// silently shadow).
func TestInstrumentNamingLint(t *testing.T) {
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-LINT", "grp-lint", 1)
	if err != nil {
		t.Fatal(err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	chaosReg := metrics.NewRegistry()
	chaos.WrapInRegistry(pc, chaos.FaultPlan{}, chaos.FaultPlan{}, 1, chaosReg)

	regs := map[string]metrics.Snapshot{
		"transport": transport.NewStats(nil).Snapshot(),
		"router":    ln.Router.Metrics().Snapshot(),
		"chaos":     chaosReg.Snapshot(),
	}
	for layer, snap := range regs {
		seen := make(map[string]bool)
		for _, s := range snap {
			if !metrics.ValidName(s.Name) {
				t.Errorf("%s: instrument %q is not snake_case", layer, s.Name)
			}
			if seen[s.Name] {
				t.Errorf("%s: instrument %q registered twice", layer, s.Name)
			}
			seen[s.Name] = true
		}
	}

	// meshd exposes transport + router through one hub: names must not
	// collide across the pair.
	for _, s := range regs["router"] {
		if _, ok := regs["transport"].Get(s.Name); ok {
			t.Errorf("instrument %q exists in both transport and router registries", s.Name)
		}
	}
}
