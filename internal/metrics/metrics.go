// Package metrics is the repo's one observability instrument: a
// dependency-free registry of named counters, gauges and log-bucketed
// latency histograms. Every layer (transport, backbone, core, chaos)
// registers its instruments here instead of keeping private atomic
// fields, so the meshd JSON reporter, the Prometheus /metrics endpoint,
// the soak judges and the peacebench experiments all read the same
// numbers.
//
// Design constraints, in order:
//
//   - Increments are lock-free single atomic ops and allocate nothing —
//     the batched data plane bumps counters per datagram and is gated at
//     0 allocs/op by TestDataPlaneAllocs.
//   - Registration is idempotent: asking for an existing name of the
//     same kind returns the same handle, so N clients sharing one
//     registry aggregate naturally. A name collision across kinds is a
//     programming error and panics.
//   - Names are validated at registration (snake_case, unique) so the
//     exposition formats can never emit an invalid family.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a settable signed level.
	KindGauge
	// KindUintGauge is a settable uint64 level (epoch nonces exceed int64).
	KindUintGauge
	// KindGaugeFunc is a gauge computed at read time from a callback.
	KindGaugeFunc
	// KindHistogram is a log₂-bucketed latency distribution.
	KindHistogram
)

// String names the kind for errors and exposition.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindUintGauge:
		return "uint_gauge"
	case KindGaugeFunc:
		return "gauge_func"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing count. The zero value is usable
// but unregistered; obtain handles from Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable signed level (cache sizes, live-link counts).
type Gauge struct{ v atomic.Int64 }

// Store sets the gauge.
func (g *Gauge) Store(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// UintGauge is a settable uint64 level. Boot-epoch and revocation-epoch
// nonces are random uint64s that must not be squeezed through int64.
type UintGauge struct{ v atomic.Uint64 }

// Store sets the gauge.
func (g *UintGauge) Store(n uint64) { g.v.Store(n) }

// Load returns the current level.
func (g *UintGauge) Load() uint64 { return g.v.Load() }

// instrument is one registered name: exactly one of the handle fields is
// set, per kind. Vec children are registered as instruments of their
// parent's family name plus a label pair.
type instrument struct {
	name       string
	help       string
	kind       Kind
	labelKey   string // set for vec children
	labelValue string // set for vec children

	counter *Counter
	gauge   *Gauge
	ugauge  *UintGauge
	fn      func() int64
	hist    *Histogram
}

// Registry holds named instruments in registration order.
type Registry struct {
	mu     sync.Mutex
	order  []*instrument
	byName map[string]*instrument
	vecs   map[string]*CounterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*instrument),
		vecs:   make(map[string]*CounterVec),
	}
}

// ValidName reports whether name is a legal instrument name:
// snake_case ASCII starting with a letter ([a-z][a-z0-9_]*).
func ValidName(name string) bool {
	if len(name) == 0 || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// register installs inst or returns the existing instrument of the same
// name, enforcing name validity and kind agreement. Caller holds r.mu.
func (r *Registry) register(inst *instrument) *instrument {
	if !ValidName(inst.name) {
		panic(fmt.Sprintf("metrics: invalid instrument name %q (want snake_case)", inst.name))
	}
	if got := r.byName[inst.name]; got != nil {
		if got.kind != inst.kind {
			panic(fmt.Sprintf("metrics: %q already registered as %s, asked for %s",
				inst.name, got.kind, inst.kind))
		}
		return got
	}
	if _, taken := r.vecs[inst.name]; taken {
		panic(fmt.Sprintf("metrics: %q already registered as a counter family", inst.name))
	}
	r.byName[inst.name] = inst
	r.order = append(r.order, inst)
	return inst
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.register(&instrument{name: name, help: help, kind: KindCounter, counter: &Counter{}})
	return inst.counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.register(&instrument{name: name, help: help, kind: KindGauge, gauge: &Gauge{}})
	return inst.gauge
}

// UintGauge registers (or returns the existing) uint64 gauge under name.
func (r *Registry) UintGauge(name, help string) *UintGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.register(&instrument{name: name, help: help, kind: KindUintGauge, ugauge: &UintGauge{}})
	return inst.ugauge
}

// GaugeFunc registers a gauge computed by fn at read time (queue depths,
// table sizes). Re-registering the same name replaces the callback —
// the pattern of a restarted subsystem re-binding its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.register(&instrument{name: name, help: help, kind: KindGaugeFunc, fn: fn})
	inst.fn = fn
}

// Histogram registers (or returns the existing) latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst := r.register(&instrument{name: name, help: help, kind: KindHistogram, hist: &Histogram{}})
	return inst.hist
}

// CounterVec is a labeled counter family: one family name, one label
// key, and a counter child per label value (chaos_injected{fault=...}).
type CounterVec struct {
	reg   *Registry
	name  string
	help  string
	label string
}

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid family name %q (want snake_case)", name))
	}
	if !ValidName(label) {
		panic(fmt.Sprintf("metrics: invalid label key %q (want snake_case)", label))
	}
	if _, taken := r.byName[name]; taken {
		panic(fmt.Sprintf("metrics: %q already registered as a scalar instrument", name))
	}
	if v := r.vecs[name]; v != nil {
		if v.label != label {
			panic(fmt.Sprintf("metrics: family %q already registered with label %q, asked for %q",
				name, v.label, label))
		}
		return v
	}
	v := &CounterVec{reg: r, name: name, help: help, label: label}
	r.vecs[name] = v
	return v
}

// With returns the child counter for one label value, creating it on
// first use. Resolve children once at setup time, not on the hot path.
func (v *CounterVec) With(value string) *Counter {
	if !ValidName(value) {
		panic(fmt.Sprintf("metrics: invalid label value %q for family %q (want snake_case)", value, v.name))
	}
	child := v.name + "_" + value
	v.reg.mu.Lock()
	defer v.reg.mu.Unlock()
	if got := v.reg.byName[child]; got != nil {
		if got.labelKey != v.label || got.labelValue != value {
			panic(fmt.Sprintf("metrics: %q already registered outside family %q", child, v.name))
		}
		return got.counter
	}
	inst := v.reg.register(&instrument{
		name: child, help: v.help, kind: KindCounter,
		labelKey: v.label, labelValue: value, counter: &Counter{},
	})
	return inst.counter
}

// Sample is one instrument's state inside a Snapshot.
type Sample struct {
	// Name is the registered instrument name; for a vec child it is the
	// flattened family_value name, with Family/Label/LabelValue set.
	Name       string
	Family     string
	Label      string
	LabelValue string
	Kind       Kind
	Help       string
	// Int carries counter / gauge / gauge-func values; Uint carries
	// uint gauges; Hist carries histogram state.
	Int  int64
	Uint uint64
	Hist *HistogramSnapshot
}

// Snapshot is a point-in-time copy of every instrument, in registration
// order. It marshals to a flat JSON object with stable keys.
type Snapshot []Sample

// Snapshot copies every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	order := make([]*instrument, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()

	out := make(Snapshot, 0, len(order))
	for _, inst := range order {
		s := Sample{Name: inst.name, Kind: inst.kind, Help: inst.help}
		if inst.labelKey != "" {
			s.Family = inst.name[:len(inst.name)-len(inst.labelValue)-1]
			s.Label = inst.labelKey
			s.LabelValue = inst.labelValue
		}
		switch inst.kind {
		case KindCounter:
			s.Int = inst.counter.Load()
		case KindGauge:
			s.Int = inst.gauge.Load()
		case KindUintGauge:
			s.Uint = inst.ugauge.Load()
		case KindGaugeFunc:
			s.Int = inst.fn()
		case KindHistogram:
			s.Hist = inst.hist.snapshot()
		}
		out = append(out, s)
	}
	return out
}

// Get returns the sample registered under name.
func (s Snapshot) Get(name string) (Sample, bool) {
	for i := range s {
		if s[i].Name == name {
			return s[i], true
		}
	}
	return Sample{}, false
}

// Value returns the integer value of the named counter or gauge, 0 when
// absent (uint gauges are clamped into int64 range).
func (s Snapshot) Value(name string) int64 {
	sm, ok := s.Get(name)
	if !ok {
		return 0
	}
	if sm.Kind == KindUintGauge {
		if sm.Uint > 1<<62 {
			return 1 << 62
		}
		return int64(sm.Uint)
	}
	return sm.Int
}
