package revocation

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

// Store holds a consumer's current state for one list: the installed
// snapshot plus (optionally, via InstallBundle) a bounded per-epoch cache
// of deltas for serving other consumers. All methods are safe for
// concurrent use; Current returns an immutable snapshot, so readers keep
// working off a consistent epoch while an install swaps the pointer.
type Store struct {
	list      List
	authority cert.PublicKey

	mu     sync.RWMutex
	snap   *Snapshot
	digest [DigestSize]byte
	deltas map[uint64]*Delta // FromEpoch -> delta to current epoch
}

// NewStore creates an empty store for list, trusting authority.
func NewStore(list List, authority cert.PublicKey) (*Store, error) {
	if !list.valid() {
		return nil, fmt.Errorf("%w: unknown list %d", ErrMalformed, list)
	}
	return &Store{list: list, authority: authority}, nil
}

// List returns which list this store tracks.
func (s *Store) List() List { return s.list }

// Install verifies and installs a signed snapshot. Anti-rollback: a
// snapshot with an older epoch — or the same epoch but an earlier
// IssuedAt or different digest — is refused with ErrRollback. A snapshot
// past its NextUpdate is refused with ErrStale.
func (s *Store) Install(snap *Snapshot, now time.Time) error {
	if snap.List != s.list {
		return fmt.Errorf("%w: snapshot for %v installed into %v store", ErrMalformed, snap.List, s.list)
	}
	if err := snap.Verify(s.authority, now); err != nil {
		return err
	}
	d := snap.Digest()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap != nil {
		switch {
		case snap.Epoch < s.snap.Epoch:
			return fmt.Errorf("%w: epoch %d < installed %d", ErrRollback, snap.Epoch, s.snap.Epoch)
		case snap.Epoch == s.snap.Epoch && snap.IssuedAt.Before(s.snap.IssuedAt):
			return fmt.Errorf("%w: epoch %d re-issue predates installed copy", ErrRollback, snap.Epoch)
		case snap.Epoch == s.snap.Epoch && d != s.digest:
			return fmt.Errorf("%w: epoch %d digest divergence", ErrDigestMismatch, snap.Epoch)
		}
	}
	if s.snap == nil || snap.Epoch != s.snap.Epoch {
		s.deltas = nil // cached deltas target a superseded epoch
	}
	s.snap = snap
	s.digest = d
	return nil
}

// InstallBundle installs the bundle's snapshot and retains its verified
// deltas for serving via DeltaFrom. The cache is replaced wholesale, so
// it stays bounded by the authority's history limit.
func (s *Store) InstallBundle(b *Bundle, now time.Time) error {
	if err := s.Install(b.Snapshot, now); err != nil {
		return err
	}
	cache := make(map[uint64]*Delta, len(b.Deltas))
	for _, d := range b.Deltas {
		if d.List != s.list || d.ToEpoch != b.Snapshot.Epoch {
			continue
		}
		if err := d.Verify(s.authority, now); err != nil {
			continue
		}
		cache[d.FromEpoch] = d
	}
	s.mu.Lock()
	if s.snap == b.Snapshot || (s.snap != nil && s.snap.Epoch == b.Snapshot.Epoch) {
		s.deltas = cache
	}
	s.mu.Unlock()
	return nil
}

// ApplyDelta verifies a signed delta and chains it onto the installed
// snapshot, producing a new (unsigned) snapshot whose digest must match
// the delta's ToDigest. ErrEpochGap and ErrDigestMismatch tell the caller
// to fall back to a full-snapshot fetch; applying a delta whose target
// epoch is not ahead of the installed one is a no-op (already current) or
// ErrRollback.
func (s *Store) ApplyDelta(d *Delta, now time.Time) error {
	if d.List != s.list {
		return fmt.Errorf("%w: delta for %v applied to %v store", ErrMalformed, d.List, s.list)
	}
	if err := d.Verify(s.authority, now); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil {
		return ErrNoSnapshot
	}
	cur := s.snap
	if d.ToEpoch == cur.Epoch {
		return nil // already current
	}
	if d.ToEpoch < cur.Epoch {
		return fmt.Errorf("%w: delta targets epoch %d, installed %d", ErrRollback, d.ToEpoch, cur.Epoch)
	}
	if d.FromEpoch != cur.Epoch {
		return fmt.Errorf("%w: delta from epoch %d, installed %d", ErrEpochGap, d.FromEpoch, cur.Epoch)
	}
	if d.FromDigest != s.digest {
		return fmt.Errorf("%w: from-digest diverges at epoch %d", ErrDigestMismatch, cur.Epoch)
	}
	next := &Snapshot{
		List:       s.list,
		Epoch:      d.ToEpoch,
		IssuedAt:   d.IssuedAt,
		NextUpdate: d.NextUpdate,
		Entries:    patchEntries(cur.Entries, d.Removed, d.Added),
	}
	if next.Digest() != d.ToDigest {
		return fmt.Errorf("%w: to-digest diverges after applying delta to epoch %d", ErrDigestMismatch, d.ToEpoch)
	}
	s.snap = next
	s.digest = d.ToDigest
	s.deltas = nil
	return nil
}

// patchEntries returns (base \ removed) ∪ added as a fresh canonical set;
// base is never mutated (copy-on-write).
func patchEntries(base, removed, added [][]byte) [][]byte {
	rm := Canonicalize(removed)
	out := make([][]byte, 0, len(base)+len(added))
	i := 0
	for _, e := range base {
		for i < len(rm) && bytes.Compare(rm[i], e) < 0 {
			i++
		}
		if i < len(rm) && bytes.Equal(rm[i], e) {
			continue
		}
		out = append(out, e)
	}
	out = append(out, added...)
	return Canonicalize(out)
}

// Current returns the installed snapshot, or false if none is installed.
func (s *Store) Current() (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap, s.snap != nil
}

// Epoch returns the installed epoch, or 0 if nothing is installed.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.snap == nil {
		return 0
	}
	return s.snap.Epoch
}

// Digest returns the installed digest and whether anything is installed.
func (s *Store) Digest() ([DigestSize]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.digest, s.snap != nil
}

// Contains reports whether entry is revoked in the installed snapshot.
func (s *Store) Contains(entry []byte) bool {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	return snap != nil && snap.Contains(entry)
}

// Fresh reports whether a snapshot is installed and not past NextUpdate.
func (s *Store) Fresh(now time.Time) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap != nil && !now.After(s.snap.NextUpdate)
}

// DeltaFrom returns the cached delta taking fromEpoch to the installed
// epoch, if one was retained by InstallBundle.
func (s *Store) DeltaFrom(fromEpoch uint64) (*Delta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.deltas[fromEpoch]
	return d, ok
}

// GapAgainst compares the installed state with an advertised ref and
// reports what to fetch: (gap, true) when the advertisement is ahead of —
// or the installed state is missing/stale at — now. A ref at or behind
// the installed epoch with a fresh store needs nothing.
func (s *Store) GapAgainst(ref Ref, now time.Time) (Gap, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.snap == nil {
		return Gap{List: s.list}, true
	}
	if ref.Epoch > s.snap.Epoch || now.After(s.snap.NextUpdate) {
		return Gap{List: s.list, Have: true, HaveEpoch: s.snap.Epoch, HaveDigest: s.digest}, true
	}
	return Gap{}, false
}
