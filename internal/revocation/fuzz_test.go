package revocation

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

// fuzzSeeds builds one valid snapshot and one valid delta encoding so the
// fuzzers start from well-formed corpora.
func fuzzSeeds(tb testing.TB) (snap, delta []byte) {
	tb.Helper()
	key, err := cert.GenerateKeyPair(rand.Reader)
	if err != nil {
		tb.Fatalf("generate key: %v", err)
	}
	a, err := NewAuthority(ListURL, key, rand.Reader, 0)
	if err != nil {
		tb.Fatalf("new authority: %v", err)
	}
	at := time.Unix(1751600000, 0)
	if _, err := a.Issue([][]byte{[]byte("tok1")}, at, at.Add(time.Hour)); err != nil {
		tb.Fatalf("issue: %v", err)
	}
	b, err := a.Issue([][]byte{[]byte("tok1"), []byte("tok2")}, at.Add(time.Minute), at.Add(time.Hour))
	if err != nil {
		tb.Fatalf("issue: %v", err)
	}
	return b.Snapshot.Marshal(), b.Deltas[0].Marshal()
}

// FuzzUnmarshalSnapshot exercises the snapshot decoder: it must never
// panic or over-allocate, and anything it accepts must re-encode to a
// decodable equivalent (canonical fixed point).
func FuzzUnmarshalSnapshot(f *testing.F) {
	snap, _ := fuzzSeeds(f)
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte{byte(ListURL)})
	// A tiny buffer claiming a huge entry count must fail fast.
	hostile := append([]byte{byte(ListCRL)}, make([]byte, 24)...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSnapshot(data)
		if err != nil {
			return
		}
		enc := s.Marshal()
		s2, err := UnmarshalSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if s2.Digest() != s.Digest() || s2.Epoch != s.Epoch || s2.List != s.List {
			t.Fatal("snapshot round trip not a fixed point")
		}
	})
}

// FuzzUnmarshalDelta exercises the delta decoder the same way.
func FuzzUnmarshalDelta(f *testing.F) {
	_, delta := fuzzSeeds(f)
	f.Add(delta)
	f.Add([]byte{})
	f.Add([]byte{byte(ListCRL)})
	hostile := append([]byte{byte(ListURL)}, make([]byte, 32)...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalDelta(data)
		if err != nil {
			return
		}
		enc := d.Marshal()
		d2, err := UnmarshalDelta(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
		if d2.FromEpoch != d.FromEpoch || d2.ToEpoch != d.ToEpoch ||
			d2.FromDigest != d.FromDigest || d2.ToDigest != d.ToDigest ||
			len(d2.Added) != len(d.Added) || len(d2.Removed) != len(d.Removed) {
			t.Fatal("delta round trip not a fixed point")
		}
		for i := range d.Added {
			if !bytes.Equal(d.Added[i], d2.Added[i]) {
				t.Fatal("added entries diverge after round trip")
			}
		}
	})
}
