// Package revocation is the unified revocation subsystem both PEACE
// lists — the user revocation list (URL, group-signature revocation
// tokens) and the router certificate revocation list (CRL, subject IDs) —
// sit behind.
//
// State is distributed as epoch-numbered, immutable, copy-on-write
// Snapshots plus ECDSA-signed Deltas issued by the network operator. A
// beacon no longer carries the full marshaled list; it advertises a
// compact Ref (epoch, digest, next-update) and consumers fetch only what
// changed: a Delta when the operator still retains their epoch, a full
// Snapshot otherwise. The Store applier verifies signatures, enforces
// epoch monotonicity (anti-rollback), chains deltas by digest, and
// reports ErrEpochGap so callers can fall back to a full-snapshot fetch.
//
// Entries are opaque canonical byte strings — marshaled revocation tokens
// for the URL, subject-ID bytes for the CRL — kept sorted and deduplicated
// so digests are order-independent and membership tests are O(log n).
package revocation
