package revocation

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

// DefaultHistory is how many prior epochs an Authority retains for delta
// issuance when no explicit bound is given. A consumer further behind
// than this falls back to a full snapshot fetch.
const DefaultHistory = 16

// Bundle is one distribution unit from the NO: the current signed
// snapshot plus signed deltas from each retained prior epoch to it.
// Routers install the snapshot and cache the deltas for serving.
type Bundle struct {
	Snapshot *Snapshot
	Deltas   []*Delta
}

// Authority issues epoch-numbered snapshots and deltas for one list. The
// epoch advances only when the canonical entry set actually changes;
// re-issuing an unchanged set refreshes IssuedAt/NextUpdate at the same
// epoch, so periodic re-broadcast does not invalidate consumer state.
type Authority struct {
	list       List
	key        *cert.KeyPair
	rng        io.Reader
	maxHistory int

	mu      sync.Mutex
	issued  bool
	epoch   uint64
	entries [][]byte   // canonical current set
	history []epochSet // prior epochs, oldest first, len <= maxHistory
}

type epochSet struct {
	epoch   uint64
	entries [][]byte
	digest  [DigestSize]byte
}

// NewAuthority creates an issuing authority for list, signing with key.
// maxHistory bounds delta retention; <= 0 selects DefaultHistory.
func NewAuthority(list List, key *cert.KeyPair, rng io.Reader, maxHistory int) (*Authority, error) {
	if !list.valid() {
		return nil, fmt.Errorf("%w: unknown list %d", ErrMalformed, list)
	}
	if maxHistory <= 0 {
		maxHistory = DefaultHistory
	}
	return &Authority{list: list, key: key, rng: rng, maxHistory: maxHistory}, nil
}

// Epoch returns the current epoch (0 before the first Issue).
func (a *Authority) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Issue produces a signed Bundle for the given entry set. Epochs start at
// 1 — epoch 0 always means "nothing installed" on the consumer side — and
// advance only when the canonical set differs from the previous issue.
func (a *Authority) Issue(entries [][]byte, issuedAt, nextUpdate time.Time) (*Bundle, error) {
	canon := Canonicalize(entries)

	a.mu.Lock()
	switch {
	case !a.issued:
		a.issued = true
		a.epoch = 1
		a.entries = canon
	case !setsEqual(canon, a.entries):
		a.history = append(a.history, epochSet{
			epoch:   a.epoch,
			entries: a.entries,
			digest:  digestEntries(a.list, a.entries),
		})
		if len(a.history) > a.maxHistory {
			a.history = append([]epochSet(nil), a.history[len(a.history)-a.maxHistory:]...)
		}
		a.epoch++
		a.entries = canon
	default:
		canon = a.entries // unchanged set: keep the shared canonical slice
	}
	epoch := a.epoch
	hist := append([]epochSet(nil), a.history...)
	a.mu.Unlock()

	snap := &Snapshot{
		List:       a.list,
		Epoch:      epoch,
		IssuedAt:   issuedAt,
		NextUpdate: nextUpdate,
		Entries:    canon,
	}
	if err := snap.sign(a.rng, a.key); err != nil {
		return nil, err
	}
	toDigest := snap.Digest()

	deltas := make([]*Delta, 0, len(hist))
	for _, h := range hist {
		added, removed := diffSets(h.entries, canon)
		d := &Delta{
			List:       a.list,
			FromEpoch:  h.epoch,
			ToEpoch:    epoch,
			IssuedAt:   issuedAt,
			NextUpdate: nextUpdate,
			FromDigest: h.digest,
			ToDigest:   toDigest,
			Added:      added,
			Removed:    removed,
		}
		if err := d.sign(a.rng, a.key); err != nil {
			return nil, err
		}
		deltas = append(deltas, d)
	}
	return &Bundle{Snapshot: snap, Deltas: deltas}, nil
}

// setsEqual compares two canonical entry sets.
func setsEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// diffSets computes (new \ old, old \ new) over two canonical sets with a
// linear merge.
func diffSets(old, new [][]byte) (added, removed [][]byte) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch c := bytes.Compare(old[i], new[j]); {
		case c < 0:
			removed = append(removed, old[i])
			i++
		case c > 0:
			added = append(added, new[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}
