package revocation

import (
	"fmt"
	"io"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/wire"
)

const deltaDomain = "peace/rev-delta:v1"

// Delta is a signed patch taking a list from one epoch to another. The
// digests pin both endpoints so a consumer can detect divergence before
// and after applying; the NO signs (list, epochs, times, digests, patch)
// so a chained application is as authentic as a full signed snapshot.
type Delta struct {
	List       List
	FromEpoch  uint64
	ToEpoch    uint64
	IssuedAt   time.Time
	NextUpdate time.Time
	FromDigest [DigestSize]byte
	ToDigest   [DigestSize]byte
	Added      [][]byte
	Removed    [][]byte
	Signature  []byte
}

// signedBody returns the canonical byte string covered by the signature.
func (d *Delta) signedBody() []byte {
	sz := 0
	for _, e := range d.Added {
		sz += 4 + len(e)
	}
	for _, e := range d.Removed {
		sz += 4 + len(e)
	}
	w := wire.NewWriter(160 + sz)
	w.StringField(deltaDomain)
	w.Byte(byte(d.List))
	w.Uint64(d.FromEpoch)
	w.Uint64(d.ToEpoch)
	w.Time(d.IssuedAt)
	w.Time(d.NextUpdate)
	w.BytesField(d.FromDigest[:])
	w.BytesField(d.ToDigest[:])
	w.Uint32(uint32(len(d.Added)))
	for _, e := range d.Added {
		w.BytesField(e)
	}
	w.Uint32(uint32(len(d.Removed)))
	for _, e := range d.Removed {
		w.BytesField(e)
	}
	return w.Bytes()
}

// sign attaches an authority signature.
func (d *Delta) sign(rng io.Reader, authority *cert.KeyPair) error {
	sig, err := authority.Sign(rng, d.signedBody())
	if err != nil {
		return err
	}
	d.Signature = sig
	return nil
}

// Verify checks the authority signature, epoch ordering, and freshness
// against now.
func (d *Delta) Verify(authority cert.PublicKey, now time.Time) error {
	if !d.List.valid() {
		return fmt.Errorf("%w: unknown list %d", ErrMalformed, d.List)
	}
	if d.ToEpoch <= d.FromEpoch {
		return fmt.Errorf("%w: delta epochs %d -> %d", ErrMalformed, d.FromEpoch, d.ToEpoch)
	}
	if err := authority.Verify(d.signedBody(), d.Signature); err != nil {
		return fmt.Errorf("revocation: delta: %w", err)
	}
	if now.After(d.NextUpdate) {
		return ErrStale
	}
	return nil
}

// Marshal encodes the delta.
func (d *Delta) Marshal() []byte {
	sz := 0
	for _, e := range d.Added {
		sz += 4 + len(e)
	}
	for _, e := range d.Removed {
		sz += 4 + len(e)
	}
	w := wire.NewWriter(192 + sz)
	w.Byte(byte(d.List))
	w.Uint64(d.FromEpoch)
	w.Uint64(d.ToEpoch)
	w.Time(d.IssuedAt)
	w.Time(d.NextUpdate)
	w.BytesField(d.FromDigest[:])
	w.BytesField(d.ToDigest[:])
	w.Uint32(uint32(len(d.Added)))
	for _, e := range d.Added {
		w.BytesField(e)
	}
	w.Uint32(uint32(len(d.Removed)))
	for _, e := range d.Removed {
		w.BytesField(e)
	}
	w.BytesField(d.Signature)
	return w.Bytes()
}

// UnmarshalDelta decodes a delta.
func UnmarshalDelta(data []byte) (*Delta, error) {
	r := wire.NewReader(data)
	d := &Delta{}
	lb, err := r.Byte()
	if err != nil {
		return nil, err
	}
	d.List = List(lb)
	if !d.List.valid() {
		return nil, fmt.Errorf("%w: unknown list %d", ErrMalformed, lb)
	}
	if d.FromEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if d.ToEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if d.IssuedAt, err = r.Time(); err != nil {
		return nil, err
	}
	if d.NextUpdate, err = r.Time(); err != nil {
		return nil, err
	}
	if err := readDigest(r, &d.FromDigest); err != nil {
		return nil, err
	}
	if err := readDigest(r, &d.ToDigest); err != nil {
		return nil, err
	}
	if d.Added, err = readEntryList(r); err != nil {
		return nil, err
	}
	if d.Removed, err = readEntryList(r); err != nil {
		return nil, err
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	d.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

func readDigest(r *wire.Reader, out *[DigestSize]byte) error {
	b, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(b) != DigestSize {
		return fmt.Errorf("%w: digest size %d", ErrMalformed, len(b))
	}
	copy(out[:], b)
	return nil
}

// readEntryList reads a Count-hardened entry list: each claimed element
// must be backed by at least its 4-byte length prefix in the remaining
// buffer, so a tiny datagram cannot demand a huge pre-sized allocation.
func readEntryList(r *wire.Reader) ([][]byte, error) {
	n, err := r.Count(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		e, err := r.BytesField()
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), e...))
	}
	return out, nil
}
