package revocation

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/wire"
)

// Exported errors.
var (
	// ErrRollback is returned when a snapshot (or delta target) is older
	// than the installed epoch — a replayed or withheld-update attack.
	ErrRollback = errors.New("revocation: snapshot older than installed state")
	// ErrEpochGap is returned when a delta does not chain from the
	// installed epoch; the caller should fall back to a full snapshot.
	ErrEpochGap = errors.New("revocation: delta does not chain from installed epoch")
	// ErrStale is returned when a list is past its next-update time.
	ErrStale = errors.New("revocation: list past its next-update time")
	// ErrDigestMismatch is returned when a digest check fails while
	// chaining a delta; the caller should fall back to a full snapshot.
	ErrDigestMismatch = errors.New("revocation: digest mismatch")
	// ErrNoSnapshot is returned when a delta arrives before any snapshot
	// has been installed.
	ErrNoSnapshot = errors.New("revocation: no snapshot installed")
	// ErrMalformed is returned for structurally invalid encodings.
	ErrMalformed = errors.New("revocation: malformed encoding")
)

// List names which revocation list an object belongs to.
type List uint8

const (
	// ListURL is the user revocation list: entries are 64-byte marshaled
	// group-signature revocation tokens (sgs.RevocationToken.Bytes).
	ListURL List = 1
	// ListCRL is the router certificate revocation list: entries are
	// subject-ID bytes.
	ListCRL List = 2
)

// String implements fmt.Stringer.
func (l List) String() string {
	switch l {
	case ListURL:
		return "URL"
	case ListCRL:
		return "CRL"
	default:
		return fmt.Sprintf("List(%d)", uint8(l))
	}
}

func (l List) valid() bool { return l == ListURL || l == ListCRL }

// DigestSize is the size of a list digest (SHA-256).
const DigestSize = 32

// Ref is the compact advertisement of a list state carried in beacons:
// O(1) bytes regardless of list size. NextUpdate is informational — a
// consumer trusts only the NO-signed times inside its installed store.
type Ref struct {
	Epoch      uint64
	Digest     [DigestSize]byte
	NextUpdate time.Time
}

// Gap describes what a consumer is missing relative to an advertised Ref,
// i.e. what it should fetch: a delta from (HaveEpoch, HaveDigest) when
// Have is true and the server still retains that epoch, a full snapshot
// otherwise.
type Gap struct {
	List       List
	Have       bool
	HaveEpoch  uint64
	HaveDigest [DigestSize]byte
}

// Snapshot is one immutable epoch of a revocation list. Entries are
// canonical: sorted with bytes.Compare and deduplicated, so the digest is
// order-independent and Contains is a binary search. Snapshots assembled
// locally by chaining signed deltas carry a nil Signature — their
// authenticity derives from the verified delta chain.
type Snapshot struct {
	List       List
	Epoch      uint64
	IssuedAt   time.Time
	NextUpdate time.Time
	Entries    [][]byte
	Signature  []byte

	digestOnce sync.Once
	digest     [DigestSize]byte
}

const snapshotDomain = "peace/rev-snap:v1"
const digestDomain = "peace/rev-digest:v1"

// Canonicalize sorts and deduplicates entries, copying the slice (but not
// the entry bytes). Nil-safe; returns a non-nil empty slice for no entries.
func Canonicalize(entries [][]byte) [][]byte {
	out := make([][]byte, 0, len(entries))
	out = append(out, entries...)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || !bytes.Equal(e, out[i-1]) {
			dedup = append(dedup, e)
		}
	}
	return dedup
}

// digestEntries computes the canonical digest of an entry set. The digest
// covers the list identity and the entries only — not epoch or times — so
// a re-issue of an unchanged set keeps its digest.
func digestEntries(l List, entries [][]byte) [DigestSize]byte {
	h := sha256.New()
	h.Write([]byte(digestDomain))
	h.Write([]byte{byte(l)})
	var lenBuf [4]byte
	for _, e := range entries {
		lenBuf[0] = byte(len(e) >> 24)
		lenBuf[1] = byte(len(e) >> 16)
		lenBuf[2] = byte(len(e) >> 8)
		lenBuf[3] = byte(len(e))
		h.Write(lenBuf[:])
		h.Write(e)
	}
	var out [DigestSize]byte
	h.Sum(out[:0])
	return out
}

// Digest returns the canonical digest of the snapshot's entry set,
// computed once and cached.
func (s *Snapshot) Digest() [DigestSize]byte {
	s.digestOnce.Do(func() { s.digest = digestEntries(s.List, s.Entries) })
	return s.digest
}

// Ref returns the compact beacon advertisement for this snapshot.
func (s *Snapshot) Ref() Ref {
	return Ref{Epoch: s.Epoch, Digest: s.Digest(), NextUpdate: s.NextUpdate}
}

// Contains reports whether entry is in the (canonical) entry set.
func (s *Snapshot) Contains(entry []byte) bool {
	i := sort.Search(len(s.Entries), func(i int) bool {
		return bytes.Compare(s.Entries[i], entry) >= 0
	})
	return i < len(s.Entries) && bytes.Equal(s.Entries[i], entry)
}

// signedBody returns the canonical byte string covered by the signature.
func (s *Snapshot) signedBody() []byte {
	d := s.Digest()
	w := wire.NewWriter(96)
	w.StringField(snapshotDomain)
	w.Byte(byte(s.List))
	w.Uint64(s.Epoch)
	w.Time(s.IssuedAt)
	w.Time(s.NextUpdate)
	w.BytesField(d[:])
	return w.Bytes()
}

// sign attaches an authority signature.
func (s *Snapshot) sign(rng io.Reader, authority *cert.KeyPair) error {
	sig, err := authority.Sign(rng, s.signedBody())
	if err != nil {
		return err
	}
	s.Signature = sig
	return nil
}

// Verify checks the authority signature and freshness against now.
func (s *Snapshot) Verify(authority cert.PublicKey, now time.Time) error {
	if !s.List.valid() {
		return fmt.Errorf("%w: unknown list %d", ErrMalformed, s.List)
	}
	if err := authority.Verify(s.signedBody(), s.Signature); err != nil {
		return fmt.Errorf("revocation: snapshot: %w", err)
	}
	if now.After(s.NextUpdate) {
		return ErrStale
	}
	return nil
}

// Marshal encodes the snapshot.
func (s *Snapshot) Marshal() []byte {
	sz := 0
	for _, e := range s.Entries {
		sz += 4 + len(e)
	}
	w := wire.NewWriter(96 + sz)
	w.Byte(byte(s.List))
	w.Uint64(s.Epoch)
	w.Time(s.IssuedAt)
	w.Time(s.NextUpdate)
	w.Uint32(uint32(len(s.Entries)))
	for _, e := range s.Entries {
		w.BytesField(e)
	}
	w.BytesField(s.Signature)
	return w.Bytes()
}

// UnmarshalSnapshot decodes a snapshot. Entries are re-canonicalized so a
// decoded snapshot upholds the sorted/deduplicated invariant regardless of
// sender behavior (a reordered encoding changes nothing; the digest — and
// hence the signature check — sees the canonical set).
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	r := wire.NewReader(data)
	s := &Snapshot{}
	lb, err := r.Byte()
	if err != nil {
		return nil, err
	}
	s.List = List(lb)
	if !s.List.valid() {
		return nil, fmt.Errorf("%w: unknown list %d", ErrMalformed, lb)
	}
	if s.Epoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if s.IssuedAt, err = r.Time(); err != nil {
		return nil, err
	}
	if s.NextUpdate, err = r.Time(); err != nil {
		return nil, err
	}
	// Each entry is a length-prefixed byte string (≥ 4 bytes); Count
	// bounds the claimed entry count by the bytes actually present.
	n, err := r.Count(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	entries := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		e, err := r.BytesField()
		if err != nil {
			return nil, err
		}
		entries = append(entries, append([]byte(nil), e...))
	}
	s.Entries = Canonicalize(entries)
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	s.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
