package revocation

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

var t0 = time.Unix(1751600000, 0)

func newTestAuthority(t *testing.T, list List, history int) (*Authority, cert.PublicKey) {
	t.Helper()
	key, err := cert.GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatalf("generate key: %v", err)
	}
	a, err := NewAuthority(list, key, rand.Reader, history)
	if err != nil {
		t.Fatalf("new authority: %v", err)
	}
	return a, key.Public()
}

func entrySet(ids ...string) [][]byte {
	out := make([][]byte, 0, len(ids))
	for _, id := range ids {
		out = append(out, []byte(id))
	}
	return out
}

func issue(t *testing.T, a *Authority, at time.Time, ids ...string) *Bundle {
	t.Helper()
	b, err := a.Issue(entrySet(ids...), at, at.Add(10*time.Minute))
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	return b
}

func TestAuthorityEpochAdvancesOnlyOnChange(t *testing.T) {
	a, _ := newTestAuthority(t, ListCRL, 0)
	b1 := issue(t, a, t0, "r1")
	if b1.Snapshot.Epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", b1.Snapshot.Epoch)
	}
	b2 := issue(t, a, t0.Add(time.Minute), "r1")
	if b2.Snapshot.Epoch != 1 {
		t.Fatalf("unchanged set bumped epoch to %d", b2.Snapshot.Epoch)
	}
	if b2.Snapshot.Digest() != b1.Snapshot.Digest() {
		t.Fatal("unchanged set changed digest")
	}
	b3 := issue(t, a, t0.Add(2*time.Minute), "r1", "r2")
	if b3.Snapshot.Epoch != 2 {
		t.Fatalf("changed set epoch = %d, want 2", b3.Snapshot.Epoch)
	}
	if len(b3.Deltas) != 1 || b3.Deltas[0].FromEpoch != 1 {
		t.Fatalf("bundle deltas = %+v, want one from epoch 1", b3.Deltas)
	}
}

func TestAuthorityCanonicalization(t *testing.T) {
	a, pub := newTestAuthority(t, ListCRL, 0)
	b, err := a.Issue(entrySet("b", "a", "b", "c", "a"), t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatalf("issue: %v", err)
	}
	if got := len(b.Snapshot.Entries); got != 3 {
		t.Fatalf("entries = %d, want 3 after dedup", got)
	}
	for i := 1; i < len(b.Snapshot.Entries); i++ {
		if string(b.Snapshot.Entries[i-1]) >= string(b.Snapshot.Entries[i]) {
			t.Fatal("entries not sorted")
		}
	}
	if err := b.Snapshot.Verify(pub, t0); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	b := issue(t, a, t0, "tok1", "tok2")
	snap := b.Snapshot
	back, err := UnmarshalSnapshot(snap.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Epoch != snap.Epoch || back.List != snap.List || !back.IssuedAt.Equal(snap.IssuedAt) || !back.NextUpdate.Equal(snap.NextUpdate) {
		t.Fatal("header fields did not round-trip")
	}
	if back.Digest() != snap.Digest() {
		t.Fatal("digest did not round-trip")
	}
	if err := back.Verify(pub, t0); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
	if !back.Contains([]byte("tok1")) || back.Contains([]byte("tok3")) {
		t.Fatal("membership wrong after round trip")
	}
}

func TestDeltaRoundTripAndChain(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	issue(t, a, t0, "tok1", "tok2")
	b2 := issue(t, a, t0.Add(time.Minute), "tok2", "tok3")
	if len(b2.Deltas) != 1 {
		t.Fatalf("deltas = %d, want 1", len(b2.Deltas))
	}
	d := b2.Deltas[0]
	back, err := UnmarshalDelta(d.Marshal())
	if err != nil {
		t.Fatalf("unmarshal delta: %v", err)
	}
	if err := back.Verify(pub, t0.Add(time.Minute)); err != nil {
		t.Fatalf("verify delta: %v", err)
	}
	if len(back.Added) != 1 || string(back.Added[0]) != "tok3" {
		t.Fatalf("added = %q", back.Added)
	}
	if len(back.Removed) != 1 || string(back.Removed[0]) != "tok1" {
		t.Fatalf("removed = %q", back.Removed)
	}
}

func TestStoreInstallAndDeltaChain(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, err := NewStore(ListURL, pub)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	b1 := issue(t, a, t0, "tok1")
	if err := st.Install(b1.Snapshot, t0); err != nil {
		t.Fatalf("install: %v", err)
	}
	if st.Epoch() != 1 || !st.Contains([]byte("tok1")) {
		t.Fatal("installed state wrong")
	}

	b2 := issue(t, a, t0.Add(time.Minute), "tok1", "tok2")
	if err := st.ApplyDelta(b2.Deltas[0], t0.Add(time.Minute)); err != nil {
		t.Fatalf("apply delta: %v", err)
	}
	if st.Epoch() != 2 || !st.Contains([]byte("tok2")) {
		t.Fatal("delta did not advance store")
	}
	snap, _ := st.Current()
	if snap.Digest() != b2.Snapshot.Digest() {
		t.Fatal("chained snapshot digest diverges from authority snapshot")
	}
	// The assembled snapshot is unsigned: its authenticity came from the
	// signed delta chain.
	if snap.Signature != nil {
		t.Fatal("chained snapshot unexpectedly signed")
	}
}

func TestStoreAntiRollback(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListURL, pub)
	b1 := issue(t, a, t0, "tok1")
	b2 := issue(t, a, t0.Add(time.Minute), "tok1", "tok2")
	if err := st.Install(b2.Snapshot, t0.Add(time.Minute)); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := st.Install(b1.Snapshot, t0.Add(time.Minute)); !errors.Is(err, ErrRollback) {
		t.Fatalf("older epoch install = %v, want ErrRollback", err)
	}
	// Same-epoch re-issue with an older IssuedAt must also be refused.
	b2b := issue(t, a, t0.Add(2*time.Minute), "tok1", "tok2")
	if err := st.Install(b2b.Snapshot, t0.Add(2*time.Minute)); err != nil {
		t.Fatalf("fresher re-issue refused: %v", err)
	}
	if err := st.Install(b2.Snapshot, t0.Add(2*time.Minute)); !errors.Is(err, ErrRollback) {
		t.Fatalf("stale re-issue = %v, want ErrRollback", err)
	}
	// A delta targeting an older epoch is a rollback too.
	b3 := issue(t, a, t0.Add(3*time.Minute), "tok1", "tok2", "tok3")
	b4 := issue(t, a, t0.Add(4*time.Minute), "tok1", "tok2", "tok3", "tok4")
	if err := st.Install(b4.Snapshot, t0.Add(4*time.Minute)); err != nil {
		t.Fatalf("install epoch 4: %v", err)
	}
	if len(b3.Deltas) == 0 {
		t.Fatal("no deltas to test with")
	}
	if err := st.ApplyDelta(b3.Deltas[0], t0.Add(4*time.Minute)); !errors.Is(err, ErrRollback) {
		t.Fatalf("delta to older epoch = %v, want ErrRollback", err)
	}
	// A delta targeting the current epoch is an idempotent no-op.
	if err := st.ApplyDelta(b4.Deltas[len(b4.Deltas)-1], t0.Add(4*time.Minute)); err != nil {
		t.Fatalf("delta to current epoch = %v, want nil no-op", err)
	}
}

func TestStoreStaleRefused(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListURL, pub)
	b := issue(t, a, t0, "tok1")
	late := b.Snapshot.NextUpdate.Add(time.Second)
	if err := st.Install(b.Snapshot, late); !errors.Is(err, ErrStale) {
		t.Fatalf("expired install = %v, want ErrStale", err)
	}
	if _, ok := st.Current(); ok {
		t.Fatal("stale snapshot was installed")
	}
	if err := st.Install(b.Snapshot, t0); err != nil {
		t.Fatalf("fresh install: %v", err)
	}
	b2 := issue(t, a, t0.Add(time.Minute), "tok1", "tok2")
	if err := st.ApplyDelta(b2.Deltas[0], b2.Deltas[0].NextUpdate.Add(time.Second)); !errors.Is(err, ErrStale) {
		t.Fatalf("expired delta = %v, want ErrStale", err)
	}
}

func TestStoreEpochGapFallsBack(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListURL, pub)
	b1 := issue(t, a, t0, "tok1")
	issue(t, a, t0.Add(time.Minute), "tok1", "tok2")
	b3 := issue(t, a, t0.Add(2*time.Minute), "tok1", "tok2", "tok3")
	if err := st.Install(b1.Snapshot, t0); err != nil {
		t.Fatalf("install: %v", err)
	}
	// The 2->3 delta does not chain from epoch 1.
	var d23 *Delta
	for _, d := range b3.Deltas {
		if d.FromEpoch == 2 {
			d23 = d
		}
	}
	if d23 == nil {
		t.Fatal("no 2->3 delta in bundle")
	}
	if err := st.ApplyDelta(d23, t0.Add(2*time.Minute)); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("gap delta = %v, want ErrEpochGap", err)
	}
	// Fallback: full snapshot install succeeds.
	if err := st.Install(b3.Snapshot, t0.Add(2*time.Minute)); err != nil {
		t.Fatalf("fallback install: %v", err)
	}
	if st.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", st.Epoch())
	}
	// A delta on an empty store reports ErrNoSnapshot.
	st2, _ := NewStore(ListURL, pub)
	if err := st2.ApplyDelta(d23, t0.Add(2*time.Minute)); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("delta on empty store = %v, want ErrNoSnapshot", err)
	}
}

func TestStoreForgedInputsRefused(t *testing.T) {
	a, _ := newTestAuthority(t, ListURL, 0)
	_, otherPub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListURL, otherPub) // trusts a different authority
	b := issue(t, a, t0, "tok1")
	if err := st.Install(b.Snapshot, t0); !errors.Is(err, cert.ErrBadSignature) {
		t.Fatalf("forged snapshot = %v, want ErrBadSignature", err)
	}
	// Tampered entries break the signature (digest is covered).
	good, _ := newTestAuthority(t, ListURL, 0)
	gb := issue(t, good, t0, "tok1")
	fresh := &Snapshot{
		List: gb.Snapshot.List, Epoch: gb.Snapshot.Epoch,
		IssuedAt: gb.Snapshot.IssuedAt, NextUpdate: gb.Snapshot.NextUpdate,
		Entries: Canonicalize(entrySet("tok1", "evil")), Signature: gb.Snapshot.Signature,
	}
	st2, _ := NewStore(ListURL, good.key.Public())
	if err := st2.Install(fresh, t0); !errors.Is(err, cert.ErrBadSignature) {
		t.Fatalf("tampered snapshot = %v, want ErrBadSignature", err)
	}
}

func TestInstallBundleServesDeltas(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 3)
	st, _ := NewStore(ListURL, pub)
	for i := 0; i < 6; i++ {
		ids := make([]string, 0, i+1)
		for j := 0; j <= i; j++ {
			ids = append(ids, fmt.Sprintf("tok%d", j))
		}
		b := issue(t, a, t0.Add(time.Duration(i)*time.Minute), ids...)
		if err := st.InstallBundle(b, t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatalf("install bundle %d: %v", i, err)
		}
	}
	if st.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", st.Epoch())
	}
	// History bound 3: deltas retained from epochs 3..5 only.
	if _, ok := st.DeltaFrom(5); !ok {
		t.Fatal("missing delta from epoch 5")
	}
	if _, ok := st.DeltaFrom(3); !ok {
		t.Fatal("missing delta from epoch 3")
	}
	if _, ok := st.DeltaFrom(2); ok {
		t.Fatal("delta from epoch 2 retained beyond history bound")
	}
	// Served delta actually chains on a consumer at that epoch.
	d, _ := st.DeltaFrom(5)
	if d.ToEpoch != 6 {
		t.Fatalf("delta to epoch %d, want 6", d.ToEpoch)
	}
}

func TestGapAgainst(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListURL, pub)
	b1 := issue(t, a, t0, "tok1")

	// Empty store: always a gap, Have=false.
	g, need := st.GapAgainst(b1.Snapshot.Ref(), t0)
	if !need || g.Have || g.List != ListURL {
		t.Fatalf("empty-store gap = %+v need=%v", g, need)
	}
	if err := st.Install(b1.Snapshot, t0); err != nil {
		t.Fatalf("install: %v", err)
	}
	// Current: no gap.
	if _, need := st.GapAgainst(b1.Snapshot.Ref(), t0); need {
		t.Fatal("current store reported a gap")
	}
	// Advertised epoch ahead: gap with Have=true.
	b2 := issue(t, a, t0.Add(time.Minute), "tok1", "tok2")
	g, need = st.GapAgainst(b2.Snapshot.Ref(), t0.Add(time.Minute))
	if !need || !g.Have || g.HaveEpoch != 1 || g.HaveDigest != b1.Snapshot.Digest() {
		t.Fatalf("behind gap = %+v need=%v", g, need)
	}
	// Stale store: gap even when the ref is not ahead.
	if _, need := st.GapAgainst(b1.Snapshot.Ref(), b1.Snapshot.NextUpdate.Add(time.Second)); !need {
		t.Fatal("stale store reported no gap")
	}
	// Ref behind the installed epoch: no gap (we are newer).
	if err := st.Install(b2.Snapshot, t0.Add(time.Minute)); err != nil {
		t.Fatalf("install 2: %v", err)
	}
	if _, need := st.GapAgainst(b1.Snapshot.Ref(), t0.Add(time.Minute)); need {
		t.Fatal("older ref reported a gap")
	}
}

func TestListMismatchRefused(t *testing.T) {
	a, pub := newTestAuthority(t, ListURL, 0)
	st, _ := NewStore(ListCRL, pub)
	b := issue(t, a, t0, "tok1")
	if err := st.Install(b.Snapshot, t0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("cross-list install = %v, want ErrMalformed", err)
	}
}

func TestPatchEntries(t *testing.T) {
	base := Canonicalize(entrySet("a", "b", "c"))
	got := patchEntries(base, entrySet("b", "zz"), entrySet("d", "a"))
	want := []string{"a", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("patch = %q, want %q", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("patch = %q, want %q", got, want)
		}
	}
	// Copy-on-write: base untouched.
	if len(base) != 3 || string(base[1]) != "b" {
		t.Fatal("base mutated")
	}
}
