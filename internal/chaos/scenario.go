package chaos

import (
	"context"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/transport"
)

// SoakConfig scripts one chaos soak: a fleet of self-healing clients
// against a live server, with sustained datagram faults, a mid-run
// revocation bump, a server restart and a timed partition.
type SoakConfig struct {
	// Users is the fleet size. Default 24.
	Users int
	// Seed drives every pseudo-random stream in the run. Default 1.
	Seed int64
	// Faults is the per-direction schedule installed on every client link
	// during the storm phase. Default: 10% drop, 5% corrupt, 2% duplicate,
	// 2% reorder.
	Faults FaultPlan
	// StormLen is how long the fleet soaks under faults before the restart.
	// Default 1500ms.
	StormLen time.Duration
	// PartitionLen is how long the partitioned subset stays blackholed
	// after the restart. Default 1s.
	PartitionLen time.Duration
	// PartitionFrac is the fraction of clients partitioned. Default 0.3.
	PartitionFrac float64
	// SettleTimeout bounds each convergence wait (initial attach, final
	// re-establishment). Default 90s.
	SettleTimeout time.Duration
	// Keepalive is the fleet's keepalive interval. Default 150ms.
	Keepalive time.Duration
	// Logf, when set, receives phase-by-phase progress.
	Logf func(format string, args ...any)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Users < 1 {
		c.Users = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	zero := FaultPlan{}
	if c.Faults == zero {
		c.Faults = FaultPlan{Drop: 0.10, Corrupt: 0.05, Duplicate: 0.02, Reorder: 0.02}
	}
	if c.StormLen <= 0 {
		c.StormLen = 1500 * time.Millisecond
	}
	if c.PartitionLen <= 0 {
		c.PartitionLen = time.Second
	}
	if c.PartitionFrac <= 0 {
		c.PartitionFrac = 0.3
	}
	if c.PartitionFrac > 1 {
		c.PartitionFrac = 1
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 90 * time.Second
	}
	if c.Keepalive <= 0 {
		c.Keepalive = 150 * time.Millisecond
	}
	return c
}

// SoakReport is the outcome of a soak run: aggregate fleet and server
// counters plus every invariant violation found. A clean run has an empty
// Violations list.
type SoakReport struct {
	Users          int
	FinalBootEpoch uint64
	Established    int

	// Fleet self-healing counters, summed.
	Reattaches       int64
	RestartsDetected int64
	DeadPeerEvents   int64
	KeepalivesAcked  int64
	AttachAttempts   int64

	// Injected faults, summed over all client links.
	Injected Counters

	// Server-side evidence that the chaos reached it.
	ServerDecodeErrors   int64
	DuplicatesSuppressed int64
	DrainRejects         int64

	// Router totals across both incarnations.
	SessionsEstablished    int
	ExpensiveVerifications int

	// Revocation anti-rollback evidence.
	InitialURLEpoch uint64
	FinalURLEpoch   uint64

	Violations []string
}

// Failed reports whether the run violated any invariant.
func (r *SoakReport) Failed() bool { return len(r.Violations) > 0 }

func (r *SoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunSoak executes the scripted chaos scenario:
//
//  1. provision a network, start the server (boot epoch 1), launch every
//     client's Maintain loop over a fault-injecting link;
//  2. wait for the whole fleet to attach, then soak under faults for
//     StormLen of keepalive traffic;
//  3. bump the revocation epoch (a key is revoked mid-run), then drain
//     and restart the server — volatile session state is lost, the boot
//     epoch changes, durable state (keys, certificates, revocation)
//     survives;
//  4. blackhole a fraction of the fleet for PartitionLen while the rest
//     re-attaches through the still-faulty network;
//  5. heal the links and wait for every client to re-establish against
//     the new incarnation, then check the invariants.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &SoakReport{Users: cfg.Users}

	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-CHAOS", "grp-chaos", cfg.Users)
	if err != nil {
		return nil, err
	}
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	const epoch1, epoch2 = 1, 2
	srv := transport.NewServer(serverConn, ln.Router, transport.ServerConfig{BootEpoch: epoch1})
	addr := srv.Addr()
	rep.InitialURLEpoch = ln.Router.RevocationEpoch(revocation.ListURL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	clients := make([]*transport.Client, cfg.Users)
	links := make([]*Conn, cfg.Users)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Users; i++ {
		raw, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			cancel()
			srv.Close()
			return nil, err
		}
		link := Wrap(raw, cfg.Faults, cfg.Faults, cfg.Seed*1_000_003+int64(i))
		links[i] = link
		clients[i] = transport.NewClient(link, addr, ln.Users[i], transport.ClientConfig{
			RetransmitTimeout: 60 * time.Millisecond,
			MaxTimeout:        time.Second,
			MaxRetries:        12,
			Seed:              cfg.Seed*2_000_003 + int64(i),
		})
		wg.Add(1)
		go func(cl *transport.Client) {
			defer wg.Done()
			_ = cl.Maintain(ctx, transport.MaintainConfig{
				KeepaliveInterval: cfg.Keepalive,
				PingTimeout:       2 * cfg.Keepalive,
				MaxMissed:         3,
				ReattachMin:       50 * time.Millisecond,
				ReattachMax:       500 * time.Millisecond,
				AttachTimeout:     cfg.SettleTimeout / 3,
			})
		}(clients[i])
	}
	defer func() {
		cancel()
		wg.Wait()
		for _, l := range links {
			_ = l.Close()
		}
	}()

	established := func(epoch uint64) int {
		n := 0
		for _, cl := range clients {
			if cl.Session() != nil && cl.BootEpoch() == epoch {
				n++
			}
		}
		return n
	}
	settle := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(cfg.SettleTimeout)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		rep.violate("timed out settling: %s", what)
		return false
	}

	// Phase 1+2: attach through the faulty network, then soak.
	logf("chaos: attaching %d clients through faults %+v", cfg.Users, cfg.Faults)
	settle("initial fleet attach", func() bool { return established(epoch1) == cfg.Users })
	logf("chaos: fleet attached, storming for %v", cfg.StormLen)
	time.Sleep(cfg.StormLen)

	// Phase 3: revocation bump, then drain + restart.
	if err := bumpRevocation(ln); err != nil {
		srv.Close()
		return nil, err
	}
	srv.InvalidateBeacon()
	rep.FinalURLEpoch = ln.Router.RevocationEpoch(revocation.ListURL)
	if rep.FinalURLEpoch <= rep.InitialURLEpoch {
		rep.violate("revocation bump did not advance the URL epoch (%d -> %d)", rep.InitialURLEpoch, rep.FinalURLEpoch)
	}
	logf("chaos: revocation bumped to epoch %d, restarting server", rep.FinalURLEpoch)

	dctx, dcancel := context.WithTimeout(ctx, 10*time.Second)
	err = srv.Drain(dctx)
	dcancel()
	if err != nil {
		rep.violate("drain before restart: %v", err)
	}
	rep.DrainRejects = srv.Stats().DrainRejects()
	// The first incarnation's counters die with its registry; bank the
	// judged ones before Close.
	firstDecodeErrors := srv.Stats().DecodeErrors()
	firstDuplicates := srv.Stats().Duplicates()
	srv.Close()
	ln.Router.Reboot()
	serverConn2, err := rebindPacket(addr)
	if err != nil {
		return nil, err
	}
	srv2 := transport.NewServer(serverConn2, ln.Router, transport.ServerConfig{BootEpoch: epoch2})
	defer srv2.Close()

	// Phase 4: partition a deterministic subset while the fleet re-attaches.
	prng := mrand.New(mrand.NewSource(cfg.Seed * 3_000_017))
	nPart := int(float64(cfg.Users) * cfg.PartitionFrac)
	for _, i := range prng.Perm(cfg.Users)[:nPart] {
		links[i].PartitionFor(cfg.PartitionLen)
	}
	logf("chaos: partitioned %d/%d clients for %v", nPart, cfg.Users, cfg.PartitionLen)
	time.Sleep(cfg.PartitionLen)

	// Phase 5: heal the links and wait for full recovery.
	for _, l := range links {
		l.SetPlans(FaultPlan{}, FaultPlan{})
	}
	logf("chaos: links healed, settling")
	settle("fleet re-established on new incarnation", func() bool { return established(epoch2) == cfg.Users })

	// Harvest and judge.
	rep.FinalBootEpoch = epoch2
	rep.Established = established(epoch2)
	if rep.Established != cfg.Users {
		rep.violate("%d/%d clients re-established after restart", rep.Established, cfg.Users)
	}
	for i, cl := range clients {
		st := cl.Stats()
		rep.Reattaches += st.Reattaches()
		rep.RestartsDetected += st.RestartsDetected()
		rep.DeadPeerEvents += st.DeadPeerEvents()
		rep.KeepalivesAcked += st.KeepalivesAcked()
		rep.AttachAttempts += st.AttachAttempts()

		// Anti-rollback: every surviving client must have converged onto
		// the bumped epoch despite restart and partition racing the bump.
		if got := ln.Users[i].RevocationEpoch(revocation.ListURL); got != rep.FinalURLEpoch {
			rep.violate("client %d URL epoch %d, want %d (rollback or missed sync)", i, got, rep.FinalURLEpoch)
		}

		// Key agreement: the only way a session exists is a completed,
		// uncorrupted handshake — prove it end to end.
		sess := cl.Session()
		if sess == nil {
			continue
		}
		routerSess, ok := ln.Router.SessionByID(sess.ID)
		if !ok {
			rep.violate("client %d session %s unknown to router", i, sess.ID)
			continue
		}
		probe := []byte(fmt.Sprintf("probe-%d", i))
		frame, err := routerSess.SealData(rand.Reader, probe)
		if err != nil {
			rep.violate("client %d: router seal: %v", i, err)
			continue
		}
		if pt, err := sess.OpenData(frame); err != nil || string(pt) != string(probe) {
			rep.violate("client %d: session keys disagree: %v", i, err)
		}
	}
	for _, l := range links {
		c := l.Counters()
		rep.Injected.Dropped += c.Dropped
		rep.Injected.Corrupted += c.Corrupted
		rep.Injected.Duplicated += c.Duplicated
		rep.Injected.Reordered += c.Reordered
		rep.Injected.Delayed += c.Delayed
		rep.Injected.PartitionDrops += c.PartitionDrops
	}
	rep.ServerDecodeErrors = firstDecodeErrors + srv2.Stats().DecodeErrors()
	rep.DuplicatesSuppressed = firstDuplicates + srv2.Stats().Duplicates()
	stats := ln.Router.Stats()
	rep.SessionsEstablished = stats.SessionsEstablished
	rep.ExpensiveVerifications = stats.ExpensiveVerifications

	// The chaos must actually have happened, or the run proves nothing.
	if rep.Injected.Dropped == 0 || rep.Injected.Corrupted == 0 || rep.Injected.Duplicated == 0 {
		rep.violate("fault injection inert: %+v", rep.Injected)
	}
	if rep.Injected.PartitionDrops == 0 {
		rep.violate("partition blackholed nothing")
	}
	if rep.ServerDecodeErrors == 0 {
		rep.violate("no corrupted frame ever reached a server decoder")
	}
	if rep.Reattaches < int64(cfg.Users) {
		rep.violate("only %d re-attach cycles for %d clients across a restart", rep.Reattaches, cfg.Users)
	}
	if rep.KeepalivesAcked == 0 {
		rep.violate("no keepalive was ever acknowledged")
	}
	return rep, nil
}

// bumpRevocation revokes a spare (unused) credential slot so the URL
// epoch advances without knocking out any fleet member.
func bumpRevocation(ln *transport.LocalNetwork) error {
	spare := 0
	for _, u := range ln.Users {
		for _, c := range u.Credentials() {
			if c.Index >= spare {
				spare = c.Index + 1
			}
		}
	}
	tok, err := ln.NO.TokenOf(ln.GM.ID(), spare)
	if err != nil {
		return fmt.Errorf("chaos: spare token: %w", err)
	}
	ln.NO.RevokeUserKey(tok)
	return ln.RefreshRevocations()
}

// rebindPacket re-listens on the exact address a closed server vacated.
func rebindPacket(addr net.Addr) (net.PacketConn, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		conn, err := net.ListenPacket("udp", addr.String())
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: rebind %v: %w", addr, lastErr)
}
