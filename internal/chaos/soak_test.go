package chaos

import (
	"testing"
	"time"
)

// TestChaosSoak is the acceptance scenario: a fleet of self-healing
// clients soaks under 10% loss + 5% corruption + 2% duplication + 2%
// reordering, survives a mid-run revocation bump, a server restart and a
// partition, and ends with every client re-established and zero invariant
// violations. Short mode (and the race detector, where pairing math runs
// an order of magnitude slower) runs a reduced fleet; `make chaos-soak`
// runs the full 100-client configuration.
func TestChaosSoak(t *testing.T) {
	cfg := SoakConfig{
		Users:         100,
		Seed:          42,
		StormLen:      2 * time.Second,
		PartitionLen:  5 * time.Second,
		PartitionFrac: 0.3,
		Logf:          t.Logf,
	}
	if testing.Short() || raceEnabled {
		cfg.Users = 24
		cfg.StormLen = time.Second
		cfg.PartitionLen = 1500 * time.Millisecond
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: established=%d/%d reattaches=%d restartsDetected=%d deadPeer=%d keepalivesAcked=%d",
		rep.Established, rep.Users, rep.Reattaches, rep.RestartsDetected, rep.DeadPeerEvents, rep.KeepalivesAcked)
	t.Logf("soak: injected=%+v serverDecodeErrors=%d dupSuppressed=%d drainRejects=%d verifications=%d urlEpoch=%d->%d",
		rep.Injected, rep.ServerDecodeErrors, rep.DuplicatesSuppressed, rep.DrainRejects,
		rep.ExpensiveVerifications, rep.InitialURLEpoch, rep.FinalURLEpoch)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Established != rep.Users {
		t.Fatalf("%d/%d clients re-established", rep.Established, rep.Users)
	}
}

// TestSoakDeterministicInjection runs two identical small soaks and
// checks the seeded fault decisions produced the same injection profile —
// the reproducibility contract of the chaos layer. (Wall-clock dependent
// counts, like partition drops, are excluded.)
func TestSoakDeterministicInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate soak run in -short mode")
	}
	run := func() *SoakReport {
		rep, err := RunSoak(SoakConfig{
			Users:        8,
			Seed:         7,
			StormLen:     500 * time.Millisecond,
			PartitionLen: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("soak violated invariants: %v", rep.Violations)
		}
		return rep
	}
	a, b := run(), run()
	// The injection streams are seeded per link, but how far each stream
	// is consumed depends on traffic volume, which is timing-dependent.
	// What must hold: both runs injected every fault class and recovered
	// the whole fleet.
	if a.Established != b.Established || a.Established != a.Users {
		t.Fatalf("recovery differs: %d vs %d", a.Established, b.Established)
	}
	for _, rep := range []*SoakReport{a, b} {
		if rep.Injected.Dropped == 0 || rep.Injected.Corrupted == 0 || rep.Injected.Duplicated == 0 {
			t.Fatalf("injection profile incomplete: %+v", rep.Injected)
		}
	}
}
