package chaos

import (
	"context"
	"fmt"
	mrand "math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/transport"
)

// AttackLatencyConfig scripts one point of the attach-latency-vs-attack-
// intensity sweep (experiment E19): a fixed number of sequential
// legitimate attaches measured while Intensity spoofed sources flood the
// ingress at full rate.
type AttackLatencyConfig struct {
	// Intensity is how many spoofed sources flood the attach ingress for
	// the whole measurement (0 = calm baseline).
	Intensity int
	// Samples is how many legitimate attaches are timed. Default 12.
	Samples int
	// Seed drives every pseudo-random stream. Default 1.
	Seed int64
	// Policy is the adaptive defense installed on the router; the zero
	// value gets the same fast policy as AttackConfig.
	Policy core.DoSPolicy
	// RateLimitPerSec arms the server's per-source ingress limiter.
	// Default 50, as in AttackConfig.
	RateLimitPerSec float64
	// Warmup is how long the flood runs before the first timed attach, so
	// suspicion has tripped and the measured clients pay the real puzzle
	// price. Default 500ms (skipped when Intensity is 0).
	Warmup time.Duration
	// AttachTimeout bounds each timed attach. Default 30s.
	AttachTimeout time.Duration
}

func (c AttackLatencyConfig) withDefaults() AttackLatencyConfig {
	if c.Samples < 1 {
		c.Samples = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if !c.Policy.Enabled {
		c.Policy = AttackConfig{}.withDefaults().Policy
	}
	if c.RateLimitPerSec <= 0 {
		c.RateLimitPerSec = 50
	}
	if c.Warmup <= 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 30 * time.Second
	}
	return c
}

// AttackLatencyReport is one row of the E19 sweep.
type AttackLatencyReport struct {
	Intensity int
	Samples   int
	Attached  int
	P50       time.Duration
	P99       time.Duration
	// PeakDifficulty is the highest difficulty the controller demanded
	// while the samples ran.
	PeakDifficulty uint8
	// FloodDatagrams is how many datagrams the flood delivered.
	FloodDatagrams int64
	// PuzzlesVerified counts the solutions the server's gate accepted —
	// under attack the legit attaches land here.
	PuzzlesVerified int64
}

// RunAttackLatency measures legitimate-client attach latency at one
// attack intensity: Intensity spoofed sources spray garbage and
// skeleton M.2s at the ingress while Samples sequential attaches are
// timed over real UDP loopback.
func RunAttackLatency(cfg AttackLatencyConfig) (*AttackLatencyReport, error) {
	cfg = cfg.withDefaults()
	rep := &AttackLatencyReport{Intensity: cfg.Intensity, Samples: cfg.Samples}

	const fleet = 4 // credentialed users the samples cycle through
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-E19", "grp-e19", fleet)
	if err != nil {
		return nil, err
	}
	ln.Router.SetDoSPolicy(cfg.Policy)
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(serverConn, ln.Router, transport.ServerConfig{
		BootEpoch:         1,
		RateLimitPerSec:   cfg.RateLimitPerSec,
		DoSSampleInterval: 25 * time.Millisecond,
	})
	defer srv.Close()
	addr := srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var flood sync.WaitGroup
	var floodDatagrams atomic.Int64
	for i := 0; i < cfg.Intensity; i++ {
		conn, err := listenSpoofed(i/200, i%200)
		if err != nil {
			cancel()
			flood.Wait()
			return nil, err
		}
		flood.Add(1)
		go func(i int, conn net.PacketConn) {
			defer flood.Done()
			defer conn.Close()
			prng := mrand.New(mrand.NewSource(cfg.Seed*3_000_017 + int64(i)))
			garbage := garbageAccessFrame()
			// Paced at ~2000 datagrams/s per source, so intensity is a
			// controlled multiple of the legitimate handshake rate (each
			// source still exceeds its own rate-limit bucket ~40×). An
			// unpaced writer would saturate the kernel receive buffer and
			// measure socket-lottery starvation instead of the defense.
			for n := 0; ctx.Err() == nil; n++ {
				frame := garbage
				if n%2 == 1 {
					frame = skeletonAccessFrame(prng)
				}
				if _, err := conn.WriteTo(frame, addr); err == nil {
					floodDatagrams.Add(1)
				}
				if n%2 == 1 {
					time.Sleep(time.Millisecond)
				}
			}
		}(i, conn)
	}
	defer func() {
		cancel()
		flood.Wait()
	}()
	if cfg.Intensity > 0 {
		time.Sleep(cfg.Warmup)
	}

	latencies := make([]time.Duration, 0, cfg.Samples)
	var lastErr error
	for i := 0; i < cfg.Samples; i++ {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		cl := transport.NewClient(conn, addr, ln.Users[i%fleet], transport.ClientConfig{
			RetransmitTimeout: 60 * time.Millisecond,
			MaxTimeout:        time.Second,
			MaxRetries:        12,
			Seed:              cfg.Seed*4_000_037 + int64(i),
		})
		// The sample is time-to-session, attempts included: under a heavy
		// flood single attach attempts can exhaust their retransmit budget
		// to kernel-level receive drops, and a real client simply tries
		// again — the latency the row reports is what that client
		// experiences.
		sctx, scancel := context.WithTimeout(ctx, cfg.AttachTimeout)
		start := time.Now()
		for {
			if _, err = cl.Attach(sctx); err == nil || sctx.Err() != nil {
				break
			}
		}
		scancel()
		if err == nil {
			latencies = append(latencies, time.Since(start))
			rep.Attached++
		} else {
			lastErr = err
		}
		_ = conn.Close()
		if d := ln.Router.RequiredDifficulty(); d > rep.PeakDifficulty {
			rep.PeakDifficulty = d
		}
	}
	if rep.Attached == 0 {
		return nil, fmt.Errorf("chaos: no attach succeeded at intensity %d: %v", cfg.Intensity, lastErr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = latencies[len(latencies)/2]
	rep.P99 = latencies[(len(latencies)*99)/100]
	rep.FloodDatagrams = floodDatagrams.Load()
	rep.PuzzlesVerified = srv.Stats().DoSPuzzlesVerified()
	return rep, nil
}
