package chaos

import (
	"testing"
	"time"
)

// TestMetroSoak is the metro roaming acceptance scenario: users roam
// across a faulty, mid-wave-partitioned backbone with 100% session
// continuity, and every router refuses the closing revocation rollback.
// Short mode (and the race detector) runs a reduced metro; `make
// metro-soak` runs the full 8-router / 200-user configuration.
func TestMetroSoak(t *testing.T) {
	cfg := MetroSoakConfig{
		Routers: 8,
		Users:   48,
		Moves:   3,
		Seed:    42,
		Logf:    t.Logf,
	}
	if testing.Short() || raceEnabled {
		cfg.Routers = 4
		cfg.Users = 12
		cfg.Moves = 2
		cfg.PartitionLen = time.Second
	}
	rep, err := RunMetroSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("metro soak: pairings=%d resumed=%d handoffsIn=%d handoffsOut=%d relayed=%d delivered=%d",
		rep.Wave.Pairings, rep.Wave.Resumed, rep.Wave.HandoffsIn, rep.Wave.HandoffsOut,
		rep.Wave.FramesRelayed, rep.Wave.Delivered)
	t.Logf("metro soak: injected=%+v partitioned=%s rollbacksRefused=%d",
		rep.Injected, rep.PartitionedRouter, rep.RollbacksRefused)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Wave.Pairings != int64(rep.Users) {
		t.Fatalf("session continuity broken: %d pairings for %d users", rep.Wave.Pairings, rep.Users)
	}
	if rep.RollbacksRefused != rep.Routers {
		t.Fatalf("anti-rollback: %d/%d routers refused", rep.RollbacksRefused, rep.Routers)
	}
}
