//go:build race

package chaos

// raceEnabled scales the soak down under the race detector, where the
// pairing operations dominating the handshake run an order of magnitude
// slower. The plain test run still executes the full fleet.
const raceEnabled = true
