package chaos

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// sinkConn is a net.PacketConn that records every write; reads block
// until Close. It isolates the fault layer's send-side decisions from the
// network.
type sinkConn struct {
	mu     sync.Mutex
	writes [][]byte
	closed chan struct{}
}

func newSink() *sinkConn { return &sinkConn{closed: make(chan struct{})} }

func (s *sinkConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	s.mu.Lock()
	s.writes = append(s.writes, append([]byte(nil), p...))
	s.mu.Unlock()
	return len(p), nil
}

func (s *sinkConn) Writes() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.writes))
	copy(out, s.writes)
	return out
}

func (s *sinkConn) ReadFrom(p []byte) (int, net.Addr, error) {
	<-s.closed
	return 0, nil, net.ErrClosed
}

func (s *sinkConn) Close() error                       { close(s.closed); return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return &net.UDPAddr{} }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

var testAddr = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}

// TestConnDropDeterministic sends the same workload through two
// identically seeded conns and expects identical drop decisions.
func TestConnDropDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		sink := newSink()
		c := Wrap(sink, FaultPlan{}, FaultPlan{Drop: 0.5}, seed)
		var delivered []bool
		for i := 0; i < 400; i++ {
			before := len(sink.Writes())
			if _, err := c.WriteTo([]byte{byte(i)}, testAddr); err != nil {
				t.Fatal(err)
			}
			delivered = append(delivered, len(sink.Writes()) > before)
		}
		return delivered
	}
	a, b := pattern(99), pattern(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d differs between identically seeded runs", i)
		}
	}
	c := pattern(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop pattern")
	}
	drops := 0
	for _, d := range a {
		if !d {
			drops++
		}
	}
	if drops < 100 || drops > 300 {
		t.Fatalf("dropped %d/400 at p=0.5 — policy broken", drops)
	}
}

// TestConnCorrupt checks corruption mangles bytes without changing size,
// and never touches the caller's buffer.
func TestConnCorrupt(t *testing.T) {
	sink := newSink()
	c := Wrap(sink, FaultPlan{}, FaultPlan{Corrupt: 1}, 5)
	orig := bytes.Repeat([]byte{0xAA}, 64)
	sent := append([]byte(nil), orig...)
	if _, err := c.WriteTo(sent, testAddr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	w := sink.Writes()
	if len(w) != 1 {
		t.Fatalf("%d writes, want 1", len(w))
	}
	if len(w[0]) != len(orig) {
		t.Fatalf("corrupted datagram resized: %d -> %d", len(orig), len(w[0]))
	}
	if bytes.Equal(w[0], orig) {
		t.Fatal("corruption flipped no bits")
	}
	if got := c.Counters().Corrupted; got != 1 {
		t.Fatalf("corrupted counter = %d, want 1", got)
	}
}

// TestConnDuplicateAndReorder checks duplication emits the datagram twice
// and reordering lets the successor overtake the held datagram.
func TestConnDuplicateAndReorder(t *testing.T) {
	sink := newSink()
	c := Wrap(sink, FaultPlan{}, FaultPlan{Duplicate: 1}, 5)
	if _, err := c.WriteTo([]byte("dup"), testAddr); err != nil {
		t.Fatal(err)
	}
	if w := sink.Writes(); len(w) != 2 || !bytes.Equal(w[0], w[1]) {
		t.Fatalf("duplicate produced %d writes", len(w))
	}

	sink2 := newSink()
	c2 := Wrap(sink2, FaultPlan{}, FaultPlan{Reorder: 1}, 5)
	if _, err := c2.WriteTo([]byte("A"), testAddr); err != nil { // held
		t.Fatal(err)
	}
	if w := sink2.Writes(); len(w) != 0 {
		t.Fatalf("held datagram escaped: %d writes", len(w))
	}
	c2.SetPlans(FaultPlan{}, FaultPlan{}) // next write passes cleanly
	if _, err := c2.WriteTo([]byte("B"), testAddr); err != nil {
		t.Fatal(err)
	}
	w := sink2.Writes()
	if len(w) != 2 || string(w[0]) != "B" || string(w[1]) != "A" {
		t.Fatalf("reorder sequence = %q, want [B A]", w)
	}
}

// TestConnPartitionBothDirections cuts a live UDP path in both directions
// and expects silence during the window and traffic after it.
func TestConnPartitionBothDirections(t *testing.T) {
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	link := Wrap(a, FaultPlan{}, FaultPlan{}, 1)

	link.PartitionFor(400 * time.Millisecond)
	if !link.Partitioned() {
		t.Fatal("partition window not open")
	}

	// Outbound: vanishes.
	if _, err := link.WriteTo([]byte("out"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	_ = b.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, _, err := b.ReadFrom(buf); err == nil {
		t.Fatalf("partitioned write delivered %q", buf[:n])
	}

	// Inbound: swallowed.
	if _, err := b.WriteTo([]byte("in"), link.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_ = link.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, _, err := link.ReadFrom(buf); err == nil {
		t.Fatalf("partitioned read delivered %q", buf[:n])
	}

	if got := link.Counters().PartitionDrops; got < 2 {
		t.Fatalf("partition drops = %d, want >= 2", got)
	}

	// After expiry both directions flow again.
	time.Sleep(300 * time.Millisecond)
	if link.Partitioned() {
		t.Fatal("partition window still open")
	}
	if _, err := link.WriteTo([]byte("hello"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	if n, _, err := b.ReadFrom(buf); err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("post-partition delivery failed: %q %v", buf[:n], err)
	}
	if _, err := b.WriteTo([]byte("world"), link.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_ = link.SetReadDeadline(time.Now().Add(time.Second))
	if n, _, err := link.ReadFrom(buf); err != nil || string(buf[:n]) != "world" {
		t.Fatalf("post-partition receive failed: %q %v", buf[:n], err)
	}
}

// TestConnReadDuplicate checks receive-side duplication delivers the same
// datagram on two consecutive reads.
func TestConnReadDuplicate(t *testing.T) {
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	link := Wrap(a, FaultPlan{Duplicate: 1}, FaultPlan{}, 1)

	if _, err := b.WriteTo([]byte("twice"), link.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		_ = link.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := link.ReadFrom(buf)
		if err != nil || string(buf[:n]) != "twice" {
			t.Fatalf("read %d: %q %v", i, buf[:n], err)
		}
	}
	if got := link.Counters().Duplicated; got != 1 {
		t.Fatalf("duplicated counter = %d, want 1", got)
	}
}
