package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/transport"
)

// TestBatchPathFaultInjection pins the composition contract of the
// batched data plane and the fault layer: a server whose socket is a
// chaos.Conn takes the portable single-datagram fallback of the batch
// interface (the wrapper is not a *net.UDPConn, so recvmmsg cannot
// apply), and every fault class still injects per datagram underneath
// ReadBatch/WriteBatch — batching must never bypass the chaos layer.
func TestBatchPathFaultInjection(t *testing.T) {
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-BATCH", "grp-batch", 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faults := FaultPlan{Drop: 0.05, Corrupt: 0.10}
	link := Wrap(raw, faults, faults, 99)
	srv := transport.NewServer(link, ln.Router, transport.ServerConfig{
		BootEpoch: 1,
		EchoData:  true,
	})
	defer srv.Close()

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	cl := transport.NewClient(cconn, srv.Addr(), ln.Users[0], transport.ClientConfig{Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatalf("attach through faulty link: %v", err)
	}

	const sends = 400
	for i := 0; i < sends; i++ {
		if err := cl.SendData([]byte("chaos batch payload")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Stats().DataDelivered() < sends/4 {
		time.Sleep(20 * time.Millisecond)
	}

	st := srv.Stats()
	if st.ReadBatches() == 0 {
		t.Fatal("server never read through the batch interface")
	}
	if st.BatchedIO() {
		t.Fatal("chaos conn claimed the mmsg fast path; faults would be bypassed")
	}
	if st.DataDelivered() == 0 {
		t.Fatal("no data survived the faulty link")
	}
	c := link.Counters()
	if c.Dropped == 0 || c.Corrupted == 0 {
		t.Fatalf("fault injection incomplete under the batch path: %+v", c)
	}
	// Corrupted datagrams must surface as decode errors, not crashes or
	// silent acceptance.
	if st.DecodeErrors() == 0 {
		t.Fatal("corrupted datagrams produced no decode errors")
	}
}
