// Package chaos is the fault-injection harness for the PEACE transport:
// a deterministic, seeded net.PacketConn wrapper that drops, duplicates,
// reorders, delays and bit-corrupts datagrams and cuts timed bidirectional
// partitions, plus a scenario runner that drives a fleet of self-healing
// clients against a live server through a scripted outage timeline
// (sustained faults, a mid-run server restart, a partition, a revocation
// epoch bump) and checks the protocol invariants at the end:
//
//   - every client re-establishes a session with the final server
//     incarnation, and both halves of every session agree on keys — no
//     session ever forms from a corrupted handshake;
//   - duplicated requests are answered by reply-cache replay, never by a
//     second expensive verification;
//   - revocation state never rolls back: every client ends at the
//     router's final epoch even though the bump raced a restart and a
//     partition.
//
// All fault decisions come from seeded pseudo-random streams, so a run is
// reproducible from its seed; wall-clock scheduling still varies, but the
// invariants are timing-independent.
package chaos
