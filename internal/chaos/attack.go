package chaos

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/transport"
	"github.com/peace-mesh/peace/internal/wire"
)

// ErrSpoofedBindUnsupported reports that the host cannot bind secondary
// loopback addresses (127.0.x.y), which the attacker fleet needs for
// per-source rate-limit buckets. Linux supports it out of the box.
var ErrSpoofedBindUnsupported = errors.New("chaos: cannot bind spoofed loopback sources")

// AttackConfig scripts one adaptive-DoS attack soak: a seeded attacker
// fleet flooding the attach ingress from spoofed sources while a
// legitimate fleet attaches and keeps sessions alive through the storm.
type AttackConfig struct {
	// LegitUsers is the legitimate fleet size; half attach before the
	// storm, half must attach through it. Default 8.
	LegitUsers int
	// Flooders is how many attacker goroutines spray garbage and
	// solution-less access requests. Default 3.
	Flooders int
	// SpoofedSources is how many distinct source IPs each flooder rotates
	// through. Default 8.
	SpoofedSources int
	// Replayers is how many distinct spoofed sources replay one solved
	// puzzle (the solution-replay attack). Default 6.
	Replayers int
	// Seed drives every pseudo-random stream. Default 1.
	Seed int64
	// StormLen is how long the flood lasts. Default 2s.
	StormLen time.Duration
	// Policy is the adaptive defense installed on the router. The zero
	// value gets a fast test policy (base 3, cap 8, 150ms ratchet steps).
	Policy core.DoSPolicy
	// RateLimitPerSec arms the server's per-source ingress limiter — the
	// drop stream is the controller's main load signal. Default 400.
	RateLimitPerSec float64
	// DecayBound caps how long after the storm the demanded difficulty
	// may take to return to zero. Default Window + QuietPeriod + 3s.
	DecayBound time.Duration
	// SettleTimeout bounds each convergence wait. Default 60s.
	SettleTimeout time.Duration
	// Keepalive is the legit fleet's keepalive interval. Default 150ms.
	Keepalive time.Duration
	// Logf, when set, receives phase-by-phase progress.
	Logf func(format string, args ...any)
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.LegitUsers < 2 {
		c.LegitUsers = 8
	}
	if c.Flooders < 1 {
		c.Flooders = 3
	}
	if c.SpoofedSources < 1 {
		c.SpoofedSources = 8
	}
	if c.Replayers < 2 {
		c.Replayers = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StormLen <= 0 {
		c.StormLen = 2 * time.Second
	}
	if !c.Policy.Enabled {
		c.Policy = core.DoSPolicy{
			Enabled:            true,
			Window:             1500 * time.Millisecond,
			SuspicionThreshold: 8,
			QuietPeriod:        time.Second,
			BaseDifficulty:     3,
			MaxDifficulty:      8,
			StepInterval:       150 * time.Millisecond,
			DecayInterval:      200 * time.Millisecond,
		}
	}
	if c.RateLimitPerSec <= 0 {
		// Low enough that each spoofed source's flood rate exceeds it by
		// an order of magnitude (the drop stream drives the ratchet), high
		// enough that the legit fleet — which shares one loopback source —
		// never exhausts its bucket with handshake traffic.
		c.RateLimitPerSec = 50
	}
	if c.DecayBound <= 0 {
		c.DecayBound = c.Policy.Window + c.Policy.QuietPeriod + 3*time.Second
		if c.DecayBound < 5*time.Second {
			c.DecayBound = 5 * time.Second
		}
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 60 * time.Second
	}
	if c.Keepalive <= 0 {
		c.Keepalive = 150 * time.Millisecond
	}
	return c
}

// AttackReport is the outcome of an attack soak. A clean run has an
// empty Violations list.
type AttackReport struct {
	LegitUsers int

	// Attack volume and what it bought.
	AttackerDatagrams int64
	AttackerSolved    int64

	// Controller trajectory.
	BaseDifficulty  uint8
	PeakDifficulty  uint8
	FinalDifficulty uint8
	DecayedIn       time.Duration

	// Legit fleet outcome.
	LegitAlive      int
	KeepalivesAcked int64

	// Server-side evidence.
	PuzzlesIssued    int64
	PuzzlesVerified  int64
	PuzzlesRejected  int64
	SolutionReplays  int64
	RatelimitDropped int64

	// Pairing economics: every expensive verification must be accounted
	// for by an established session (plus a small legit-retry slack) —
	// the flood itself buys none.
	SessionsEstablished    int
	ExpensiveVerifications int

	// Measured attacker cost (mean solve attempts over seeded trials) at
	// the base and peak demanded difficulties.
	SolveCostBase uint64
	SolveCostPeak uint64

	// Anti-rollback evidence: the URL epoch is bumped mid-storm and every
	// surviving client must converge onto it.
	InitialURLEpoch uint64
	FinalURLEpoch   uint64

	Violations []string
}

// Failed reports whether the run violated any invariant.
func (r *AttackReport) Failed() bool { return len(r.Violations) > 0 }

func (r *AttackReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// garbageAccessFrame is an undecodable access-request datagram — the
// cheapest possible forgery.
func garbageAccessFrame() []byte {
	frame, err := transport.EncodeFrame(transport.KindAccessRequest, []byte("peace attack soak garbage m2"))
	if err != nil {
		panic(err)
	}
	return frame
}

// skeletonAccessFrame is a solution-less datagram shaped like an M.2 at
// the wire-skeleton level (the puzzle gate's peek parses it) but carrying
// junk where the curve points and signature belong. Before suspicion
// trips it dies in the decoder; after, it exercises the RejectPuzzle
// reply path at flood rate.
func skeletonAccessFrame(prng *mrand.Rand) []byte {
	junk := func(n int) []byte {
		b := make([]byte, n)
		prng.Read(b)
		return b
	}
	w := wire.NewWriter(256)
	w.BytesField(junk(64)) // where g^{r_j} would be
	w.BytesField(junk(64)) // where g^{r_R} would be
	w.Time(time.Now())
	w.BytesField(junk(96)) // where the group signature would be
	w.Byte(0)              // no solution
	frame, err := transport.EncodeFrame(transport.KindAccessRequest, w.Bytes())
	if err != nil {
		panic(err)
	}
	return frame
}

// replayResumeFrame grafts a solved puzzle triple onto a garbage resume
// request: it passes the puzzle gate's verification (the solution is
// genuine) and then dies cheaply at the ticket opener — unless the
// replay table has seen the triple from another source first.
func replayResumeFrame(prng *mrand.Rand, p *puzzle.Puzzle, solution uint64) []byte {
	req := &transport.ResumeRequest{
		Ticket:           []byte("peace attack soak bogus ticket"),
		Timestamp:        time.Now(),
		HasSolution:      true,
		Solution:         solution,
		PuzzleIssuedAt:   p.IssuedAt,
		PuzzleDifficulty: p.Difficulty,
	}
	prng.Read(req.Nonce[:])
	frame, err := transport.EncodeMessage(req)
	if err != nil {
		panic(err)
	}
	return frame
}

// listenSpoofed binds a socket on a secondary loopback address so each
// attacker source lands in its own rate-limit bucket, the way a
// spoofed-source flood does on a real ingress.
func listenSpoofed(flooder, src int) (net.PacketConn, error) {
	addr := fmt.Sprintf("127.0.%d.%d:0", 1+flooder, 1+src)
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpoofedBindUnsupported, err)
	}
	return conn, nil
}

// measureSolveCost returns the mean number of digest evaluations a
// seeded solver spends on fresh puzzles of the given difficulty.
func measureSolveCost(seed int64, difficulty uint8, trials int) uint64 {
	prng := mrand.New(mrand.NewSource(seed))
	var total uint64
	for i := 0; i < trials; i++ {
		p, err := puzzle.New(prng, difficulty, "cost-probe", time.Now())
		if err != nil {
			panic(err)
		}
		_, attempts, _ := p.SolveFrom(prng.Uint64(), 0)
		total += attempts
	}
	return total / uint64(trials)
}

// RunAttackSoak executes the adaptive-DoS attack scenario:
//
//  1. provision a network with the adaptive puzzle policy, start the
//     server with its ingress rate limiter armed, and attach half the
//     legitimate fleet;
//  2. storm: seeded flooders spray garbage and solution-less M.2s from
//     distinct spoofed loopback sources; the other half of the fleet
//     starts attaching mid-flood; the revocation epoch is bumped
//     mid-storm; once the router demands puzzles, a replay attacker
//     solves one challenge and sprays the same solution from many
//     sources;
//  3. the storm stops; the demanded difficulty must decay to zero within
//     DecayBound;
//  4. invariants: the whole legit fleet (above the 95% floor) holds
//     working, key-agreeing sessions; the difficulty ratcheted at least
//     two steps above base during the storm; measured attacker cost
//     scales with 2^difficulty; cross-source solution replays were
//     refused; the flood bought (almost) no pairings; every client
//     converged onto the bumped revocation epoch.
func RunAttackSoak(cfg AttackConfig) (*AttackReport, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &AttackReport{LegitUsers: cfg.LegitUsers, BaseDifficulty: cfg.Policy.BaseDifficulty}

	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-ATTACK", "grp-attack", cfg.LegitUsers)
	if err != nil {
		return nil, err
	}
	ln.Router.SetDoSPolicy(cfg.Policy)
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(serverConn, ln.Router, transport.ServerConfig{
		BootEpoch:         1,
		RateLimitPerSec:   cfg.RateLimitPerSec,
		DoSSampleInterval: 25 * time.Millisecond,
	})
	defer srv.Close()
	addr := srv.Addr()
	rep.InitialURLEpoch = ln.Router.RevocationEpoch(revocation.ListURL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	clients := make([]*transport.Client, cfg.LegitUsers)
	var fleet sync.WaitGroup
	startClient := func(i int) error {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		clients[i] = transport.NewClient(conn, addr, ln.Users[i], transport.ClientConfig{
			RetransmitTimeout: 60 * time.Millisecond,
			MaxTimeout:        time.Second,
			MaxRetries:        12,
			Seed:              cfg.Seed*2_000_003 + int64(i),
		})
		fleet.Add(1)
		go func(cl *transport.Client, conn net.PacketConn) {
			defer fleet.Done()
			defer conn.Close()
			_ = cl.Maintain(ctx, transport.MaintainConfig{
				KeepaliveInterval: cfg.Keepalive,
				PingTimeout:       2 * cfg.Keepalive,
				MaxMissed:         3,
				ReattachMin:       50 * time.Millisecond,
				ReattachMax:       500 * time.Millisecond,
				AttachTimeout:     cfg.SettleTimeout / 3,
			})
		}(clients[i], conn)
		return nil
	}
	defer func() {
		cancel()
		fleet.Wait()
	}()

	alive := func() int {
		n := 0
		for _, cl := range clients {
			if cl != nil && cl.Session() != nil {
				n++
			}
		}
		return n
	}
	settle := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(cfg.SettleTimeout)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		rep.violate("timed out settling: %s", what)
		return false
	}

	// Phase 1: half the fleet attaches on a calm network.
	preStorm := cfg.LegitUsers / 2
	if preStorm < 1 {
		preStorm = 1
	}
	for i := 0; i < preStorm; i++ {
		if err := startClient(i); err != nil {
			return nil, err
		}
	}
	logf("attack: attaching %d/%d clients pre-storm", preStorm, cfg.LegitUsers)
	if !settle("pre-storm fleet attach", func() bool { return alive() == preStorm }) {
		return rep, nil
	}
	if got := ln.Router.RequiredDifficulty(); got != 0 {
		rep.violate("calm network already demands difficulty %d", got)
	}

	// Phase 2: the storm. Flooders spray from spoofed sources; the rest
	// of the fleet attaches through it; a replay attacker waits for the
	// first challenge.
	stormCtx, stopStorm := context.WithCancel(ctx)
	defer stopStorm()
	var attackers sync.WaitGroup
	var attackerDatagrams atomic.Int64
	var attackerSolved atomic.Int64

	for f := 0; f < cfg.Flooders; f++ {
		conns := make([]net.PacketConn, 0, cfg.SpoofedSources)
		for s := 0; s < cfg.SpoofedSources; s++ {
			conn, err := listenSpoofed(f, s)
			if err != nil {
				stopStorm()
				return nil, err
			}
			conns = append(conns, conn)
		}
		attackers.Add(1)
		go func(f int, conns []net.PacketConn) {
			defer attackers.Done()
			defer func() {
				for _, c := range conns {
					_ = c.Close()
				}
			}()
			prng := mrand.New(mrand.NewSource(cfg.Seed*5_000_011 + int64(f)))
			garbage := garbageAccessFrame()
			for i := 0; stormCtx.Err() == nil; i++ {
				frame := garbage
				if i%2 == 1 {
					frame = skeletonAccessFrame(prng)
				}
				for _, c := range conns {
					if _, err := c.WriteTo(frame, addr); err == nil {
						attackerDatagrams.Add(1)
					}
				}
				if i%16 == 15 {
					time.Sleep(time.Millisecond)
				}
			}
		}(f, conns)
	}

	// The replay attacker: solve one genuine challenge, spray the same
	// solution from many sources. Only the first source may be admitted.
	attackers.Add(1)
	go func() {
		defer attackers.Done()
		prng := mrand.New(mrand.NewSource(cfg.Seed * 7_000_003))
		conns := make([]net.PacketConn, 0, cfg.Replayers)
		defer func() {
			for _, c := range conns {
				_ = c.Close()
			}
		}()
		for s := 0; s < cfg.Replayers; s++ {
			conn, err := listenSpoofed(cfg.Flooders, s)
			if err != nil {
				return
			}
			conns = append(conns, conn)
		}
		// The challenge rides every beacon and RejectPuzzle reply, so an
		// attacker sniffing the broadcast medium has it the moment defense
		// trips; reading it off the router models that without racing the
		// flood's kernel-level receive drops. The attacker re-solves the
		// *current* challenge every round: the controller ratchets while
		// the storm runs, and a solution pinned to an already-superseded
		// difficulty would be refused as insufficient before the replay
		// table ever saw it. Re-solving keeps each round's spray
		// verifiable, so the refusals the run must witness are the
		// cross-source ones.
		for stormCtx.Err() == nil {
			p := ln.Router.CurrentPuzzle()
			if p == nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			sol, _, ok := p.SolveFrom(prng.Uint64(), 0)
			if !ok {
				continue
			}
			attackerSolved.Add(1)
			frame := replayResumeFrame(prng, p, sol)
			for _, c := range conns {
				if _, err := c.WriteTo(frame, addr); err == nil {
					attackerDatagrams.Add(1)
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// Peak-difficulty tracker.
	var peakMu sync.Mutex
	var peak uint8
	attackers.Add(1)
	go func() {
		defer attackers.Done()
		for stormCtx.Err() == nil {
			d := ln.Router.RequiredDifficulty()
			peakMu.Lock()
			if d > peak {
				peak = d
			}
			peakMu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	logf("attack: storm started (%d flooders × %d sources, %v)", cfg.Flooders, cfg.SpoofedSources, cfg.StormLen)
	// Mid-storm: the revocation epoch moves, then the rest of the fleet
	// attaches through the flood — every joiner signs against the bumped
	// list, so a joiner left on the old epoch would be rollback evidence.
	time.Sleep(cfg.StormLen / 4)
	if err := bumpRevocation(ln); err != nil {
		stopStorm()
		return nil, err
	}
	srv.InvalidateBeacon()
	rep.FinalURLEpoch = ln.Router.RevocationEpoch(revocation.ListURL)
	for i := preStorm; i < cfg.LegitUsers; i++ {
		if err := startClient(i); err != nil {
			stopStorm()
			return nil, err
		}
	}
	time.Sleep(3 * cfg.StormLen / 4)

	stopStorm()
	attackers.Wait()
	stormEnd := time.Now()
	rep.AttackerDatagrams = attackerDatagrams.Load()
	rep.AttackerSolved = attackerSolved.Load()
	peakMu.Lock()
	rep.PeakDifficulty = peak
	peakMu.Unlock()
	logf("attack: storm over (%d attacker datagrams, peak difficulty %d), decaying",
		rep.AttackerDatagrams, rep.PeakDifficulty)

	// Phase 3: the whole fleet must be (or get) established, and the
	// demanded difficulty must return to zero within the bound.
	settle("full fleet attach", func() bool { return alive() == cfg.LegitUsers })
	decayDeadline := stormEnd.Add(cfg.DecayBound)
	for time.Now().Before(decayDeadline) {
		if ln.Router.RequiredDifficulty() == 0 && !ln.Router.DoSDefenseActive() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	rep.DecayedIn = time.Since(stormEnd)
	rep.FinalDifficulty = ln.Router.RequiredDifficulty()

	// Harvest.
	rep.LegitAlive = 0
	for i, cl := range clients {
		if cl == nil {
			continue
		}
		rep.KeepalivesAcked += cl.Stats().KeepalivesAcked()
		// Anti-rollback: nobody regresses below the epoch they started
		// with, and every mid-storm joiner — whose whole attach happened
		// after the bump — must have converged onto the bumped epoch.
		// (Pre-storm clients that never re-attached legitimately stay on
		// the epoch they were verified against.)
		got := ln.Users[i].RevocationEpoch(revocation.ListURL)
		if got < rep.InitialURLEpoch || got > rep.FinalURLEpoch {
			rep.violate("client %d URL epoch %d outside [%d, %d] (rollback)", i, got, rep.InitialURLEpoch, rep.FinalURLEpoch)
		}
		if i >= preStorm && got != rep.FinalURLEpoch {
			rep.violate("mid-storm joiner %d attached against URL epoch %d, want %d (rollback or missed sync)",
				i, got, rep.FinalURLEpoch)
		}
		sess := cl.Session()
		if sess == nil {
			continue
		}
		routerSess, ok := ln.Router.SessionByID(sess.ID)
		if !ok {
			rep.violate("client %d session %s unknown to router", i, sess.ID)
			continue
		}
		probe := []byte(fmt.Sprintf("probe-%d", i))
		frame, err := routerSess.SealData(rand.Reader, probe)
		if err != nil {
			rep.violate("client %d: router seal: %v", i, err)
			continue
		}
		if pt, err := sess.OpenData(frame); err != nil || string(pt) != string(probe) {
			rep.violate("client %d: session keys disagree: %v", i, err)
			continue
		}
		rep.LegitAlive++
	}
	st := srv.Stats()
	rep.PuzzlesIssued = st.DoSPuzzlesIssued()
	rep.PuzzlesVerified = st.DoSPuzzlesVerified()
	rep.PuzzlesRejected = st.DoSPuzzlesRejected()
	rep.SolutionReplays = st.DoSSolutionReplays()
	rep.RatelimitDropped = st.RatelimitDropped()
	rstats := ln.Router.Stats()
	rep.SessionsEstablished = rstats.SessionsEstablished
	rep.ExpensiveVerifications = rstats.ExpensiveVerifications

	// Judge.
	if rep.PeakDifficulty == 0 {
		rep.violate("suspicion never tripped under a %d-datagram flood", rep.AttackerDatagrams)
	}
	if rep.PeakDifficulty < rep.BaseDifficulty+2 {
		rep.violate("difficulty peaked at %d, want >= base %d + 2 ratchet steps",
			rep.PeakDifficulty, rep.BaseDifficulty)
	}
	if rep.FinalDifficulty != 0 || ln.Router.DoSDefenseActive() {
		rep.violate("difficulty still %d (defense active) %v after the storm (bound %v)",
			rep.FinalDifficulty, rep.DecayedIn, cfg.DecayBound)
	}
	if floor := (cfg.LegitUsers*95 + 99) / 100; rep.LegitAlive < floor {
		rep.violate("only %d/%d legit clients hold working sessions (floor %d)",
			rep.LegitAlive, cfg.LegitUsers, floor)
	}
	if rep.KeepalivesAcked == 0 {
		rep.violate("no keepalive was acknowledged through the storm")
	}
	if rep.RatelimitDropped == 0 {
		rep.violate("the flood never hit the rate limiter")
	}
	if rep.PuzzlesIssued == 0 || rep.PuzzlesVerified == 0 {
		rep.violate("puzzle loop inert: issued %d verified %d", rep.PuzzlesIssued, rep.PuzzlesVerified)
	}
	if rep.AttackerSolved == 0 {
		rep.violate("the replay attacker never obtained and solved a challenge")
	} else if rep.SolutionReplays == 0 {
		rep.violate("cross-source solution replays were never refused")
	}
	// Pairing economics: the flood must not buy verifications. Allow a
	// small slack for legitimate attaches that raced the revocation bump.
	if slack := cfg.LegitUsers; rep.ExpensiveVerifications > rep.SessionsEstablished+slack {
		rep.violate("%d expensive verifications for %d sessions: the flood bought pairings",
			rep.ExpensiveVerifications, rep.SessionsEstablished)
	}
	// Attacker cost scaling: mean solve work grows as 2^difficulty.
	if rep.PeakDifficulty > rep.BaseDifficulty {
		const trials = 32
		rep.SolveCostBase = measureSolveCost(cfg.Seed*11_000_027, rep.BaseDifficulty, trials)
		rep.SolveCostPeak = measureSolveCost(cfg.Seed*13_000_021, rep.PeakDifficulty, trials)
		want := rep.SolveCostBase * (1 << (rep.PeakDifficulty - rep.BaseDifficulty)) / 4
		if rep.SolveCostPeak < want || rep.SolveCostPeak <= rep.SolveCostBase {
			rep.violate("solve cost did not scale: %d attempts at difficulty %d vs %d at %d (want >= %d)",
				rep.SolveCostPeak, rep.PeakDifficulty, rep.SolveCostBase, rep.BaseDifficulty, want)
		}
	}
	if rep.FinalURLEpoch <= rep.InitialURLEpoch {
		rep.violate("revocation bump did not advance the URL epoch (%d -> %d)",
			rep.InitialURLEpoch, rep.FinalURLEpoch)
	}
	return rep, nil
}
