package chaos

import (
	"errors"
	"testing"
	"time"
)

// TestAttackSoak is the adaptive-DoS acceptance scenario: a spoofed-
// source flood an order of magnitude above the legitimate rate storms
// the attach ingress while half the fleet holds sessions and the other
// half attaches through the flood. The run must trip suspicion, ratchet
// the demanded difficulty at least two steps, refuse replayed solutions,
// keep ≥95% of the legit fleet on working sessions, buy the attacker
// (almost) no pairings, and decay back to difficulty zero within the
// bound once the storm stops. `make attack-soak` runs the full
// configuration; short mode and the race detector shrink it.
func TestAttackSoak(t *testing.T) {
	cfg := AttackConfig{
		LegitUsers: 16,
		Seed:       42,
		StormLen:   2 * time.Second,
		Logf:       t.Logf,
	}
	if testing.Short() || raceEnabled {
		cfg.LegitUsers = 6
		cfg.Flooders = 2
		cfg.SpoofedSources = 4
		cfg.StormLen = 1500 * time.Millisecond
	}
	rep, err := RunAttackSoak(cfg)
	if err != nil {
		if errors.Is(err, ErrSpoofedBindUnsupported) {
			t.Skipf("host cannot bind secondary loopback addresses: %v", err)
		}
		t.Fatal(err)
	}
	t.Logf("attack: %d attacker datagrams, difficulty %d->%d->%d (decayed in %v)",
		rep.AttackerDatagrams, rep.BaseDifficulty, rep.PeakDifficulty, rep.FinalDifficulty, rep.DecayedIn)
	t.Logf("attack: legit alive=%d/%d keepalivesAcked=%d sessions=%d verifications=%d",
		rep.LegitAlive, rep.LegitUsers, rep.KeepalivesAcked, rep.SessionsEstablished, rep.ExpensiveVerifications)
	t.Logf("attack: puzzles issued=%d verified=%d rejected=%d replays=%d ratelimitDropped=%d",
		rep.PuzzlesIssued, rep.PuzzlesVerified, rep.PuzzlesRejected, rep.SolutionReplays, rep.RatelimitDropped)
	t.Logf("attack: solve cost %d@%d vs %d@%d, urlEpoch %d->%d",
		rep.SolveCostBase, rep.BaseDifficulty, rep.SolveCostPeak, rep.PeakDifficulty,
		rep.InitialURLEpoch, rep.FinalURLEpoch)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
}
