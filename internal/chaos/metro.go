package chaos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/peace-mesh/peace/internal/backbone"
	"github.com/peace-mesh/peace/internal/revocation"
)

// MetroSoakConfig scripts the metro roaming soak: a multi-router
// backbone under sustained link faults, a roaming wave of ticket
// handoffs, one router's backbone partitioned mid-wave, and a final
// anti-rollback probe against every router.
type MetroSoakConfig struct {
	// Routers (≥3, so the partition leaves a connected remainder) and
	// Users size the metro; Moves is handoffs per user. Defaults 8 / 200 / 3.
	Routers int
	Users   int
	Moves   int
	// Seed drives every fault stream. Default 1.
	Seed int64
	// Faults is the per-direction schedule on every backbone link during
	// the wave. Default: 5% drop, 3% corrupt, 3% duplicate, 2% reorder.
	// The user-facing plane stays clean — the soak measures roaming over
	// a degraded backbone, not client-link healing (chaos-soak does that).
	Faults FaultPlan
	// PartitionDelay is how long into the wave the partition trips;
	// PartitionLen is how long router 0's backbone stays blackholed.
	// Defaults 300ms / 2s.
	PartitionDelay time.Duration
	PartitionLen   time.Duration
	// Logf, when set, receives phase-by-phase progress.
	Logf func(format string, args ...any)
}

func (c MetroSoakConfig) withDefaults() MetroSoakConfig {
	if c.Routers < 3 {
		c.Routers = 8
	}
	if c.Users < 1 {
		c.Users = 200
	}
	if c.Moves < 1 {
		c.Moves = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	zero := FaultPlan{}
	if c.Faults == zero {
		c.Faults = FaultPlan{Drop: 0.05, Corrupt: 0.03, Duplicate: 0.03, Reorder: 0.02}
	}
	if c.PartitionDelay <= 0 {
		c.PartitionDelay = 300 * time.Millisecond
	}
	if c.PartitionLen <= 0 {
		c.PartitionLen = 2 * time.Second
	}
	return c
}

// MetroSoakReport is the outcome of one metro soak.
type MetroSoakReport struct {
	Routers int `json:"routers"`
	Users   int `json:"users"`
	Moves   int `json:"moves"`

	// Wave is the roaming harness's own report (pairings, resumes,
	// handoffs, relayed frames, delivery).
	Wave *backbone.MetroReport `json:"wave"`

	// Injected sums the fault counters over every backbone socket.
	Injected Counters `json:"injected"`
	// PartitionedRouter is the router whose backbone was blackholed.
	PartitionedRouter string `json:"partitioned_router"`

	// RollbacksRefused counts routers that refused the stale revocation
	// bundle re-offer; it must equal Routers.
	RollbacksRefused int `json:"rollbacks_refused"`

	Violations []string `json:"violations,omitempty"`
}

// Failed reports whether the run violated any invariant.
func (r *MetroSoakReport) Failed() bool { return len(r.Violations) > 0 }

func (r *MetroSoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunMetroSoak executes the metro roaming acceptance drill:
//
//  1. provision an N-router metro with a shared STEK ring, every
//     backbone socket wrapped in seeded fault injection;
//  2. roam every user through Moves cross-router ticket handoffs while
//     the backbone drops, corrupts, duplicates and reorders datagrams;
//  3. PartitionDelay into the wave, blackhole router 0's backbone for
//     PartitionLen — handoffs away from it must still succeed, with the
//     grace-window forwarding converging only after the heal;
//  4. after the wave, advance the revocation epoch everywhere and
//     re-offer the original bundles: every router must refuse the
//     rollback.
//
// 100% session continuity is required: exactly one pairing per user,
// every move riding a ticket, zero resume fallbacks.
func RunMetroSoak(cfg MetroSoakConfig) (*MetroSoakReport, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &MetroSoakReport{Routers: cfg.Routers, Users: cfg.Users, Moves: cfg.Moves}

	conns := make([]*Conn, cfg.Routers)
	m, err := backbone.StartMetro(backbone.MetroConfig{
		Routers:        cfg.Routers,
		Users:          cfg.Users,
		Moves:          cfg.Moves,
		GossipInterval: 50 * time.Millisecond,
		GraceWindow:    60 * time.Second,
		OwnerWait:      cfg.PartitionDelay + cfg.PartitionLen + 30*time.Second,
		WrapBackbone: func(i int, conn net.PacketConn) net.PacketConn {
			conns[i] = Wrap(conn, cfg.Faults, cfg.Faults, cfg.Seed+int64(i))
			return conns[i]
		},
	}, nil)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	logf("chaos: metro up: %d routers, %d users, faults %+v", cfg.Routers, cfg.Users, cfg.Faults)

	// Trip the partition mid-wave: router 0 falls off the backbone, its
	// user-facing plane stays up.
	rep.PartitionedRouter = m.Nodes[0].ID()
	partition := time.AfterFunc(cfg.PartitionDelay, func() {
		logf("chaos: partitioning %s's backbone for %v", rep.PartitionedRouter, cfg.PartitionLen)
		conns[0].PartitionFor(cfg.PartitionLen)
	})
	defer partition.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	wave, err := m.RoamingWave(ctx)
	if err != nil {
		return nil, err
	}
	rep.Wave = wave
	rep.Violations = append(rep.Violations, wave.Violations...)
	logf("chaos: wave done: %d pairings, %d resumed, %d handoffs in, %d frames relayed",
		wave.Pairings, wave.Resumed, wave.HandoffsIn, wave.FramesRelayed)

	for _, c := range conns {
		in := c.Counters()
		rep.Injected.Dropped += in.Dropped
		rep.Injected.Corrupted += in.Corrupted
		rep.Injected.Duplicated += in.Duplicated
		rep.Injected.Reordered += in.Reordered
		rep.Injected.Delayed += in.Delayed
		rep.Injected.PartitionDrops += in.PartitionDrops
	}
	if rep.Injected.Dropped+rep.Injected.Corrupted+rep.Injected.Duplicated == 0 {
		rep.violate("no faults were injected — the soak exercised nothing")
	}
	if rep.Injected.PartitionDrops == 0 {
		rep.violate("the backbone partition never dropped a datagram")
	}

	// The forwarding plane must have converged across the partition: every
	// adopted handoff was eventually announced to (and counted by) the
	// previous router.
	if wave.HandoffsOut != wave.HandoffsIn {
		rep.violate("handoffs_out = %d never converged to handoffs_in = %d after heal",
			wave.HandoffsOut, wave.HandoffsIn)
	}

	// Anti-rollback on every router: advance the epoch fleet-wide, then
	// re-offer the bundles the metro booted with. (The bump happens after
	// the wave — advancing mid-wave would legitimately stale the ticket
	// pins and break the zero-extra-pairings invariant being measured.)
	if err := bumpMetroRevocation(m.Net); err != nil {
		return nil, err
	}
	for i, r := range m.Net.Routers {
		err := r.UpdateRevocations(m.Net.InitialCRL, m.Net.InitialURL)
		switch {
		case err == nil:
			rep.violate("router %d accepted a revocation rollback", i)
		case !errors.Is(err, revocation.ErrRollback):
			rep.violate("router %d refused rollback with the wrong error: %v", i, err)
		default:
			rep.RollbacksRefused++
		}
	}
	logf("chaos: %d/%d routers refused the revocation rollback", rep.RollbacksRefused, cfg.Routers)
	return rep, nil
}

// bumpMetroRevocation revokes a spare (unused) credential slot and
// installs the advanced bundles on every router.
func bumpMetroRevocation(n *backbone.MetroNetwork) error {
	spare := 0
	for _, u := range n.Users {
		for _, c := range u.Credentials() {
			if c.Index >= spare {
				spare = c.Index + 1
			}
		}
	}
	tok, err := n.NO.TokenOf(n.GM.ID(), spare)
	if err != nil {
		return fmt.Errorf("chaos: spare token: %w", err)
	}
	n.NO.RevokeUserKey(tok)
	crl, url, err := n.NO.RevocationBundles()
	if err != nil {
		return err
	}
	for _, r := range n.Routers {
		if err := r.UpdateRevocations(crl, url); err != nil {
			return err
		}
	}
	return nil
}
