package chaos

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/metrics"
)

// FaultPlan is the per-direction fault schedule of a Conn. Probabilities
// are per datagram and mutually exclusive per roll (drop is tried first,
// then corrupt, duplicate, reorder, delay), so e.g. Drop 0.1 + Corrupt
// 0.05 mean 10% dropped and 4.5% of all datagrams corrupted.
type FaultPlan struct {
	// Drop silently discards the datagram.
	Drop float64
	// Corrupt flips one to three random bits.
	Corrupt float64
	// Duplicate delivers the datagram twice.
	Duplicate float64
	// Reorder holds the datagram back until the next one passes it.
	Reorder float64
	// Delay holds the datagram for a uniform random time in (0, DelayMax]
	// before sending it on (send side only; the receive side treats a
	// delay roll as a reorder).
	Delay    float64
	DelayMax time.Duration
}

// Counters reports what a Conn has injected so far.
type Counters struct {
	Dropped        int64
	Corrupted      int64
	Duplicated     int64
	Reordered      int64
	Delayed        int64
	PartitionDrops int64
}

// packet is a buffered datagram with its peer address.
type packet struct {
	data []byte
	addr net.Addr
}

// Conn wraps a net.PacketConn with seeded fault injection on both
// directions: Out applies to WriteTo (this endpoint toward the network),
// In applies to ReadFrom (the network toward this endpoint). A timed
// partition blackholes both directions at once. All random decisions come
// from one seeded stream, so the fault pattern is reproducible.
type Conn struct {
	inner net.PacketConn

	mu             sync.Mutex
	rng            *rand.Rand
	in, out        FaultPlan
	partitionUntil time.Time
	// peers holds per-remote-address overrides: on a shared backbone
	// socket each router-to-router link gets its own fault plan and
	// partition window, keyed by the peer's address string.
	peers       map[string]*peerFaults
	heldWrite   *packet  // reorder: outgoing datagram awaiting its successor
	heldRead    *packet  // reorder: incoming datagram awaiting its successor
	pendingRead []packet // duplicates and released reorders to deliver next

	// The injection counters are children of one chaos_injected{fault=...}
	// registry family, so the soak judges (via Counters) and a /metrics
	// scrape read the same instrument.
	dropped        *metrics.Counter
	corrupted      *metrics.Counter
	duplicated     *metrics.Counter
	reordered      *metrics.Counter
	delayed        *metrics.Counter
	partitionDrops *metrics.Counter
}

// Wrap puts a fault-injecting layer around conn. in and out may differ,
// giving each direction its own schedule. The injection counters live in
// a private registry; use WrapInRegistry to aggregate many links into a
// shared one.
func Wrap(conn net.PacketConn, in, out FaultPlan, seed int64) *Conn {
	return WrapInRegistry(conn, in, out, seed, nil)
}

// WrapInRegistry is Wrap with the chaos_injected{fault=...} counter
// family resolved in reg (nil creates a private registry). Registration
// is idempotent, so every wrapped link of a soak may share one registry
// and the family counts faults fleet-wide.
func WrapInRegistry(conn net.PacketConn, in, out FaultPlan, seed int64, reg *metrics.Registry) *Conn {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	vec := reg.CounterVec("chaos_injected", "faults injected by the chaos wrapper", "fault")
	return &Conn{
		inner:          conn,
		rng:            rand.New(rand.NewSource(seed)),
		in:             in,
		out:            out,
		dropped:        vec.With("drop"),
		corrupted:      vec.With("corrupt"),
		duplicated:     vec.With("duplicate"),
		reordered:      vec.With("reorder"),
		delayed:        vec.With("delay"),
		partitionDrops: vec.With("partition"),
	}
}

// SetPlans replaces both fault schedules (e.g. to heal the link for a
// scenario's settle phase). The partition, if any, stays in force.
func (c *Conn) SetPlans(in, out FaultPlan) {
	c.mu.Lock()
	c.in, c.out = in, out
	c.mu.Unlock()
}

// peerFaults is one remote address's fault override.
type peerFaults struct {
	in, out        FaultPlan
	partitionUntil time.Time
}

func (c *Conn) peer(addr string) *peerFaults {
	if c.peers == nil {
		c.peers = make(map[string]*peerFaults)
	}
	p := c.peers[addr]
	if p == nil {
		p = &peerFaults{in: c.in, out: c.out}
		c.peers[addr] = p
	}
	return p
}

// SetPeerPlans gives traffic to and from one remote address its own
// fault schedule, overriding the connection-wide plans — a single
// backbone link of a router that talks to many peers over one socket.
func (c *Conn) SetPeerPlans(addr string, in, out FaultPlan) {
	c.mu.Lock()
	p := c.peer(addr)
	p.in, p.out = in, out
	c.mu.Unlock()
}

// PartitionPeerFor blackholes traffic to and from one remote address for
// d, starting now, leaving every other link of this socket untouched.
// Calling it again extends or shortens the window.
func (c *Conn) PartitionPeerFor(addr string, d time.Duration) {
	c.mu.Lock()
	c.peer(addr).partitionUntil = time.Now().Add(d)
	c.mu.Unlock()
}

// PeerPartitioned reports whether the per-link partition window of one
// remote address is currently open.
func (c *Conn) PeerPartitioned(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.peers[addr]
	return p != nil && time.Now().Before(p.partitionUntil)
}

// faultsFor resolves the plan and partition deadline governing one
// datagram (under mu): the peer override when present, else the
// connection-wide schedule. The wider of the two partition windows wins.
func (c *Conn) faultsFor(addr net.Addr) (FaultPlan, FaultPlan, time.Time) {
	in, out, until := c.in, c.out, c.partitionUntil
	if p := c.peers[addr.String()]; p != nil {
		in, out = p.in, p.out
		if p.partitionUntil.After(until) {
			until = p.partitionUntil
		}
	}
	return in, out, until
}

// PartitionFor blackholes the connection in both directions for d,
// starting now. Calling it again extends or shortens the window.
func (c *Conn) PartitionFor(d time.Duration) {
	c.mu.Lock()
	c.partitionUntil = time.Now().Add(d)
	c.mu.Unlock()
}

// Partitioned reports whether the partition window is currently open.
func (c *Conn) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.partitionUntil)
}

// Counters snapshots the injected-fault counters.
func (c *Conn) Counters() Counters {
	return Counters{
		Dropped:        c.dropped.Load(),
		Corrupted:      c.corrupted.Load(),
		Duplicated:     c.duplicated.Load(),
		Reordered:      c.reordered.Load(),
		Delayed:        c.delayed.Load(),
		PartitionDrops: c.partitionDrops.Load(),
	}
}

// roll draws one uniform variate under mu.
func (c *Conn) roll() float64 { return c.rng.Float64() }

// corrupt flips 1–3 random bits of p in place (under mu, for the rng).
func (c *Conn) corrupt(p []byte) {
	if len(p) == 0 {
		return
	}
	flips := 1 + c.rng.Intn(3)
	for i := 0; i < flips; i++ {
		bit := c.rng.Intn(len(p) * 8)
		p[bit/8] ^= 1 << (bit % 8)
	}
}

func clonePacket(p []byte, addr net.Addr) packet {
	return packet{data: append([]byte(nil), p...), addr: addr}
}

// WriteTo applies the Out schedule, then forwards to the wrapped conn.
// Faulted datagrams still report a successful send — exactly what a lossy
// radio link looks like to the sender.
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	_, plan, partitionUntil := c.faultsFor(addr)
	if time.Now().Before(partitionUntil) {
		c.mu.Unlock()
		c.partitionDrops.Add(1)
		return len(p), nil
	}
	// A datagram held for reordering is released behind the current one.
	var release *packet
	if c.heldWrite != nil {
		release = c.heldWrite
		c.heldWrite = nil
	}

	v := c.roll()
	switch {
	case v < plan.Drop:
		c.mu.Unlock()
		c.dropped.Add(1)
		return c.flush(nil, release, len(p))
	case v < plan.Drop+plan.Corrupt:
		bad := clonePacket(p, addr)
		c.corrupt(bad.data)
		c.mu.Unlock()
		c.corrupted.Add(1)
		return c.flush(&bad, release, len(p))
	case v < plan.Drop+plan.Corrupt+plan.Duplicate:
		dup := clonePacket(p, addr)
		c.mu.Unlock()
		c.duplicated.Add(1)
		if _, err := c.inner.WriteTo(p, addr); err != nil {
			return 0, err
		}
		return c.flush(&dup, release, len(p))
	case v < plan.Drop+plan.Corrupt+plan.Duplicate+plan.Reorder:
		held := clonePacket(p, addr)
		c.heldWrite = &held
		c.mu.Unlock()
		c.reordered.Add(1)
		return c.flush(nil, release, len(p))
	case v < plan.Drop+plan.Corrupt+plan.Duplicate+plan.Reorder+plan.Delay:
		d := time.Duration(c.rng.Int63n(int64(max(plan.DelayMax, time.Millisecond))))
		late := clonePacket(p, addr)
		c.mu.Unlock()
		c.delayed.Add(1)
		time.AfterFunc(d, func() {
			// Best effort: the conn may already be closed.
			_, _ = c.inner.WriteTo(late.data, late.addr)
		})
		return c.flush(nil, release, len(p))
	}
	c.mu.Unlock()
	if _, err := c.inner.WriteTo(p, addr); err != nil {
		return 0, err
	}
	return c.flush(nil, release, len(p))
}

// flush sends the optional extra and released datagrams, reporting n as
// the caller's write size.
func (c *Conn) flush(extra, release *packet, n int) (int, error) {
	if extra != nil {
		_, _ = c.inner.WriteTo(extra.data, extra.addr)
	}
	if release != nil {
		_, _ = c.inner.WriteTo(release.data, release.addr)
	}
	return n, nil
}

// ReadFrom applies the In schedule to arriving datagrams: drops and
// partition losses are swallowed (the read keeps waiting within the
// deadline), corruption mangles the delivered bytes, duplicates and
// released reorders are queued for the next call.
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		c.mu.Lock()
		if len(c.pendingRead) > 0 {
			pkt := c.pendingRead[0]
			c.pendingRead = c.pendingRead[1:]
			c.mu.Unlock()
			return copy(p, pkt.data), pkt.addr, nil
		}
		c.mu.Unlock()

		n, addr, err := c.inner.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}

		c.mu.Lock()
		plan, _, partitionUntil := c.faultsFor(addr)
		if time.Now().Before(partitionUntil) {
			c.mu.Unlock()
			c.partitionDrops.Add(1)
			continue
		}
		if c.heldRead != nil {
			c.pendingRead = append(c.pendingRead, *c.heldRead)
			c.heldRead = nil
		}
		v := c.roll()
		switch {
		case v < plan.Drop:
			c.mu.Unlock()
			c.dropped.Add(1)
			continue
		case v < plan.Drop+plan.Corrupt:
			c.corrupt(p[:n])
			c.mu.Unlock()
			c.corrupted.Add(1)
			return n, addr, nil
		case v < plan.Drop+plan.Corrupt+plan.Duplicate:
			c.pendingRead = append(c.pendingRead, clonePacket(p[:n], addr))
			c.mu.Unlock()
			c.duplicated.Add(1)
			return n, addr, nil
		case v < plan.Drop+plan.Corrupt+plan.Duplicate+plan.Reorder+plan.Delay:
			// Receive-side delay behaves like a reorder: hold the datagram
			// until the next one overtakes it.
			held := clonePacket(p[:n], addr)
			c.heldRead = &held
			c.mu.Unlock()
			c.reordered.Add(1)
			continue
		}
		c.mu.Unlock()
		return n, addr, nil
	}
}

// Close closes the wrapped conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the wrapped conn's address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline forwards to the wrapped conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the wrapped conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the wrapped conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
