package chaos

import (
	"testing"
)

// TestRestartSoakResumesViaTickets rides a fleet through repeated server
// restarts sharing one STEK ring and demands the re-attach economics of
// the resumption subsystem: one pairing per client total, every restart
// recovered over the symmetric ticket path.
func TestRestartSoakResumesViaTickets(t *testing.T) {
	cfg := RestartSoakConfig{Users: 12, Restarts: 3, Seed: 11, Logf: t.Logf}
	if testing.Short() || raceEnabled {
		cfg.Users = 6
		cfg.Restarts = 2
	}
	rep, err := RunRestartSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restart-soak: fulls=%d resumes=%d verifications=%d resumed=%d tickets=%d",
		rep.FullHandshakes, rep.Resumes, rep.ExpensiveVerifications, rep.SessionsResumed, rep.TicketsIssued)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	// Without STEK rotation the pairing budget is exactly one per client.
	if rep.FullHandshakes != int64(rep.Users) {
		t.Fatalf("full handshakes = %d, want %d (one per client, ever)", rep.FullHandshakes, rep.Users)
	}
}

// TestRestartSoakSTEKRetirement retires the ticket key mid-sequence and
// expects exactly one fallback handshake per client — the bounded cost of
// a key rotation — with resumption re-engaged afterwards.
func TestRestartSoakSTEKRetirement(t *testing.T) {
	if testing.Short() {
		t.Skip("rotation soak in -short mode")
	}
	cfg := RestartSoakConfig{Users: 8, Restarts: 3, RotateBeforeRestart: 2, Seed: 13, Logf: t.Logf}
	if raceEnabled {
		cfg.Users = 4
	}
	rep, err := RunRestartSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rotation-soak: fulls=%d resumes=%d verifications=%d",
		rep.FullHandshakes, rep.Resumes, rep.ExpensiveVerifications)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	// Initial attach + exactly one rotation fallback per client.
	if rep.FullHandshakes != int64(2*rep.Users) {
		t.Fatalf("full handshakes = %d, want %d (1 initial + 1 per rotation)", rep.FullHandshakes, 2*rep.Users)
	}
	// The restarts NOT behind the rotation still resumed.
	if rep.Resumes < int64(rep.Users*(rep.Restarts-1)) {
		t.Fatalf("resumes = %d, want >= %d", rep.Resumes, rep.Users*(rep.Restarts-1))
	}
}
