package chaos

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/transport"
)

// RestartSoakConfig scripts the resumption-under-restart soak: a fleet of
// self-healing clients rides a server through repeated restarts sharing
// one STEK ring, and the invariant under test is that re-attachment stays
// on the symmetric ticket path — the expensive pairing runs once per
// client per STEK retirement, never per restart.
type RestartSoakConfig struct {
	// Users is the fleet size. Default 12.
	Users int
	// Restarts is how many times the server is killed and reincarnated.
	// Default 3.
	Restarts int
	// RotateBeforeRestart, when in [1, Restarts], rotates the STEK ring
	// PAST the grace window (twice) before that restart, retiring every
	// held ticket: the fleet must then fall back to exactly one full
	// handshake each and resume normally afterwards. 0 disables rotation.
	RotateBeforeRestart int
	// Seed de-correlates client jitter streams. Default 1.
	Seed int64
	// Keepalive is the fleet's keepalive interval. Default 100ms.
	Keepalive time.Duration
	// SettleTimeout bounds each convergence wait. Default 90s.
	SettleTimeout time.Duration
	// Logf, when set, receives phase-by-phase progress.
	Logf func(format string, args ...any)
}

func (c RestartSoakConfig) withDefaults() RestartSoakConfig {
	if c.Users < 1 {
		c.Users = 12
	}
	if c.Restarts < 1 {
		c.Restarts = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keepalive <= 0 {
		c.Keepalive = 100 * time.Millisecond
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 90 * time.Second
	}
	return c
}

// RestartSoakReport is the outcome of a restart soak.
type RestartSoakReport struct {
	Users    int
	Restarts int

	// FullHandshakes is the fleet's total completed M.1–M.3 runs;
	// Resumes is the total completed ticket re-attaches.
	FullHandshakes int64
	Resumes        int64
	// ExpensiveVerifications is the router's cumulative pairing count
	// across all incarnations.
	ExpensiveVerifications int
	// SessionsResumed is the router's cumulative resumed-session count.
	SessionsResumed int
	// TicketsIssued sums the ticket counters of every incarnation.
	TicketsIssued int64

	Violations []string
}

// Failed reports whether the run violated any invariant.
func (r *RestartSoakReport) Failed() bool { return len(r.Violations) > 0 }

func (r *RestartSoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunRestartSoak executes the scripted restart scenario:
//
//  1. provision a network and a STEK ring that will outlive every server
//     incarnation (the operator's persisted ticket key);
//  2. launch the fleet's Maintain loops and wait for the initial full
//     attach — the only pairing each client should ever need;
//  3. Restarts times: kill the server, reboot the router's volatile state
//     (sessions gone), reincarnate on the same address and ring with a
//     new boot epoch, and wait for the whole fleet to re-establish;
//  4. optionally retire the STEK mid-sequence and demand exactly one
//     fallback handshake per client;
//  5. judge: full handshakes ≤ 1 (+1 if rotated) per client, all other
//     re-attaches on the ticket path, keys agreeing end to end.
func RunRestartSoak(cfg RestartSoakConfig) (*RestartSoakReport, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &RestartSoakReport{Users: cfg.Users, Restarts: cfg.Restarts}

	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-RESTART", "grp-restart", cfg.Users)
	if err != nil {
		return nil, err
	}
	ring, err := symcrypto.NewTicketKeyRing(rand.Reader)
	if err != nil {
		return nil, err
	}
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(serverConn, ln.Router, transport.ServerConfig{BootEpoch: 1, TicketKeys: ring})
	addr := srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	clients := make([]*transport.Client, cfg.Users)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Users; i++ {
		raw, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, err
		}
		clients[i] = transport.NewClient(raw, addr, ln.Users[i], transport.ClientConfig{
			RetransmitTimeout: 60 * time.Millisecond,
			MaxTimeout:        time.Second,
			MaxRetries:        12,
			Seed:              cfg.Seed*2_000_003 + int64(i),
		})
		wg.Add(1)
		go func(cl *transport.Client, conn net.PacketConn) {
			defer wg.Done()
			defer conn.Close()
			_ = cl.Maintain(ctx, transport.MaintainConfig{
				KeepaliveInterval: cfg.Keepalive,
				PingTimeout:       2 * cfg.Keepalive,
				MaxMissed:         2,
				ReattachMin:       30 * time.Millisecond,
				ReattachMax:       300 * time.Millisecond,
				AttachTimeout:     cfg.SettleTimeout / 3,
			})
		}(clients[i], raw)
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	established := func(epoch uint64) int {
		n := 0
		for _, cl := range clients {
			if cl.Session() != nil && cl.BootEpoch() == epoch {
				n++
			}
		}
		return n
	}
	settle := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(cfg.SettleTimeout)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		rep.violate("timed out settling: %s", what)
		return false
	}

	logf("restart-soak: attaching %d clients", cfg.Users)
	settle("initial fleet attach", func() bool { return established(1) == cfg.Users })

	for k := 1; k <= cfg.Restarts; k++ {
		if k == cfg.RotateBeforeRestart {
			// Rotate past the one-generation grace window: every held
			// ticket's sealing key leaves the ring.
			if err := ring.Rotate(rand.Reader); err != nil {
				srv.Close()
				return nil, err
			}
			if err := ring.Rotate(rand.Reader); err != nil {
				srv.Close()
				return nil, err
			}
			logf("restart-soak: STEK retired before restart %d", k)
		}
		rep.TicketsIssued += srv.Stats().TicketsIssued()
		srv.Close()
		ln.Router.Reboot()
		conn, err := rebindPacket(addr)
		if err != nil {
			return nil, err
		}
		epoch := uint64(k + 1)
		srv = transport.NewServer(conn, ln.Router, transport.ServerConfig{BootEpoch: epoch, TicketKeys: ring})
		logf("restart-soak: incarnation %d up, settling", epoch)
		if !settle(fmt.Sprintf("fleet re-established on incarnation %d", epoch),
			func() bool { return established(epoch) == cfg.Users }) {
			break
		}
	}
	rep.TicketsIssued += srv.Stats().TicketsIssued()
	defer srv.Close()

	// Harvest and judge.
	for i, cl := range clients {
		st := cl.Stats()
		rep.FullHandshakes += st.AttachSuccesses()
		rep.Resumes += st.ResumeSuccesses()

		sess := cl.Session()
		if sess == nil {
			rep.violate("client %d finished detached", i)
			continue
		}
		routerSess, ok := ln.Router.SessionByID(sess.ID)
		if !ok {
			rep.violate("client %d session %s unknown to router", i, sess.ID)
			continue
		}
		probe := []byte(fmt.Sprintf("probe-%d", i))
		frame, err := routerSess.SealData(rand.Reader, probe)
		if err != nil {
			rep.violate("client %d: router seal: %v", i, err)
			continue
		}
		if pt, err := sess.OpenData(frame); err != nil || string(pt) != string(probe) {
			rep.violate("client %d: session keys disagree: %v", i, err)
		}
	}
	stats := ln.Router.Stats()
	rep.ExpensiveVerifications = stats.ExpensiveVerifications
	rep.SessionsResumed = stats.SessionsResumed

	// The re-attach economics under test: at most one full handshake per
	// client per STEK retirement — so 1 each without rotation, 2 each with.
	maxFulls := int64(cfg.Users)
	if cfg.RotateBeforeRestart >= 1 && cfg.RotateBeforeRestart <= cfg.Restarts {
		maxFulls = int64(2 * cfg.Users)
	}
	if rep.FullHandshakes > maxFulls {
		rep.violate("%d full handshakes for %d clients across %d restarts (budget %d) — restarts leaked off the ticket path",
			rep.FullHandshakes, cfg.Users, cfg.Restarts, maxFulls)
	}
	if rep.ExpensiveVerifications > int(maxFulls) {
		rep.violate("router ran %d pairings, budget %d", rep.ExpensiveVerifications, maxFulls)
	}
	if want := int64(cfg.Users * cfg.Restarts); rep.Resumes < want-maxFulls {
		rep.violate("only %d resumes across %d restarts of %d clients", rep.Resumes, cfg.Restarts, cfg.Users)
	}
	if rep.SessionsResumed == 0 {
		rep.violate("router adopted no resumed sessions")
	}
	if rep.TicketsIssued < int64(cfg.Users) {
		rep.violate("only %d tickets issued", rep.TicketsIssued)
	}
	return rep, nil
}
