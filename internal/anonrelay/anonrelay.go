// Package anonrelay implements the upper-layer application the paper's
// conclusion explicitly motivates: "PEACE also lays a solid background for
// designing other upper layer security and privacy solutions, e.g.,
// anonymous communication."
//
// It builds telescoping onion circuits from exactly two PEACE primitives:
//
//   - the anonymous user–user AKA (M̃.1–M̃.3): every circuit hop is keyed
//     by a pairwise session whose establishment reveals only "a legitimate
//     subscriber" — relays never learn who built the circuit;
//   - the symmetric session layer: each onion layer is one AEAD seal under
//     the per-hop session key.
//
// Circuit construction is Tor-style telescoping: the source runs the peer
// AKA with the first relay directly, then extends hop by hop by tunneling
// the next AKA's messages through the already-built prefix. The first
// relay knows its predecessor but not the payload or the rest of the path;
// the exit knows the payload destination but cannot identify the source
// (the AKA it participated in was anonymous by construction).
//
// Transport is abstracted behind the Courier interface: the tests wire
// relays with in-memory calls; a deployment would carry cells inside mesh
// data frames.
package anonrelay

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/wire"
)

// Exported errors.
var (
	ErrNoCircuit    = errors.New("anonrelay: unknown circuit")
	ErrBadCell      = errors.New("anonrelay: malformed cell")
	ErrExtendFailed = errors.New("anonrelay: circuit extension failed")
)

// RelayID names a relay.
type RelayID string

// Cell commands. cmdCreate/cmdConfirm travel as outer cell commands;
// cmdExtend/cmdRelay/cmdDeliver appear inside decrypted onion layers.
const (
	cmdCreate  = 0   // first-hop circuit creation (raw M~.1)
	cmdExtend  = 1   // establish a session with the next relay
	cmdRelay   = 2   // peel one layer and forward to the next hop
	cmdDeliver = 3   // payload for this relay (circuit endpoint)
	cmdConfirm = 255 // first-hop M~.3 delivery
)

// Courier moves cells between nodes and returns the response cell. It is
// the transport abstraction (direct calls in tests, mesh frames in a
// deployment).
type Courier interface {
	// Exchange delivers a request cell to the relay and returns its reply.
	Exchange(to RelayID, payload []byte) ([]byte, error)
}

// Relay is a circuit-switching node. It wraps a PEACE user: circuit
// sessions are established with the anonymous peer AKA, so a relay can
// verify its peers are legitimate subscribers without learning anything
// else about them.
type Relay struct {
	id      RelayID
	user    *core.User
	courier Courier

	mu       sync.Mutex
	circuits map[uint64]*relayCircuit
	// delivered collects DELIVER payloads addressed to this relay.
	delivered [][]byte
}

type relayCircuit struct {
	session *core.Session
	// next is set once the circuit has been extended through this relay.
	next       RelayID
	nextCircID uint64
}

// NewRelay wraps a PEACE user as a relay.
func NewRelay(id RelayID, user *core.User, courier Courier) *Relay {
	return &Relay{
		id:       id,
		user:     user,
		courier:  courier,
		circuits: make(map[uint64]*relayCircuit),
	}
}

// ID returns the relay's identifier.
func (r *Relay) ID() RelayID { return r.id }

// Delivered returns the payloads that exited at this relay.
func (r *Relay) Delivered() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.delivered))
	copy(out, r.delivered)
	return out
}

// cell encoding: circID ‖ cmd ‖ body.
func encodeCell(circID uint64, cmd byte, body []byte) []byte {
	w := wire.NewWriter(16 + len(body))
	w.Uint64(circID)
	w.Byte(cmd)
	w.BytesField(body)
	return w.Bytes()
}

func decodeCell(data []byte) (circID uint64, cmd byte, body []byte, err error) {
	r := wire.NewReader(data)
	if circID, err = r.Uint64(); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if cmd, err = r.Byte(); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if body, err = r.BytesField(); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if err = r.Finish(); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	return circID, cmd, body, nil
}

// Handle is the relay's top-level cell dispatcher (what a Courier calls).
func (r *Relay) Handle(data []byte) ([]byte, error) {
	circID, cmd, body, err := decodeCell(data)
	if err != nil {
		return nil, err
	}
	switch cmd {
	case cmdCreate:
		return r.HandleCreate(circID, body)
	case cmdConfirm:
		return nil, r.HandleConfirm(circID, body)
	case cmdRelay:
		return r.handleOnion(circID, body)
	default:
		return nil, fmt.Errorf("%w: outer command %d", ErrBadCell, cmd)
	}
}

// HandleCreate is the relay side of first-hop circuit creation: the
// initiator's M̃.1 arrives raw; the relay answers with M̃.2 and registers
// the circuit once M̃.3 confirms.
func (r *Relay) HandleCreate(circID uint64, helloBytes []byte) ([]byte, error) {
	hello, err := core.UnmarshalPeerHello(helloBytes)
	if err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	resp, sess, err := r.user.HandlePeerHello(hello, "")
	if err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	r.mu.Lock()
	r.circuits[circID] = &relayCircuit{session: sess}
	r.mu.Unlock()
	return resp.Marshal(), nil
}

// HandleConfirm finishes first-hop creation with the initiator's M̃.3.
func (r *Relay) HandleConfirm(circID uint64, confirmBytes []byte) error {
	confirm, err := core.UnmarshalPeerConfirm(confirmBytes)
	if err != nil {
		return fmt.Errorf("confirm: %w", err)
	}
	if _, err := r.user.HandlePeerConfirm(confirm); err != nil {
		return fmt.Errorf("confirm: %w", err)
	}
	return nil
}

// handleOnion processes a RELAY cell: peel one layer, then act on the
// inner command. The response travels back up the call chain.
func (r *Relay) handleOnion(circID uint64, body []byte) ([]byte, error) {
	r.mu.Lock()
	circ := r.circuits[circID]
	r.mu.Unlock()
	if circ == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoCircuit, circID)
	}

	// Every cell beyond creation is one onion layer sealed under this
	// hop's session key.
	frame, err := core.UnmarshalDataFrame(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	inner, err := circ.session.OpenData(frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}

	ir := wire.NewReader(inner)
	innerCmd, err := ir.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	switch innerCmd {
	case cmdExtend:
		return r.handleExtend(circID, circ, ir)
	case cmdRelay:
		nextFrame, err := ir.BytesField()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
		if circ.next == "" {
			return nil, fmt.Errorf("%w: relay cell on unextended circuit", ErrBadCell)
		}
		return r.courier.Exchange(circ.next, encodeCell(circ.nextCircID, cmdRelay, nextFrame))
	case cmdDeliver:
		payload, err := ir.BytesField()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
		}
		r.mu.Lock()
		r.delivered = append(r.delivered, append([]byte(nil), payload...))
		r.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: command %d", ErrBadCell, innerCmd)
	}
}

// handleExtend performs the courier role of telescoping: forward the
// initiator's M̃.1 to the next relay and return the M̃.2 so the initiator
// can key the new hop end-to-end.
func (r *Relay) handleExtend(circID uint64, circ *relayCircuit, ir *wire.Reader) ([]byte, error) {
	nextID, err := ir.StringField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	nextCirc, err := ir.Uint64()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	helloBytes, err := ir.BytesField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	// Forward the (anonymous) M̃.1 as a CREATE at the next relay.
	resp, err := r.courier.Exchange(RelayID(nextID), encodeCell(nextCirc, cmdCreate, helloBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExtendFailed, err)
	}
	r.mu.Lock()
	circ.next = RelayID(nextID)
	circ.nextCircID = nextCirc
	r.mu.Unlock()
	return resp, nil
}

// Circuit is the source's view of a telescoping onion path.
type Circuit struct {
	source  *core.User
	courier Courier
	rng     io.Reader
	gen     *bn256.G1

	entry     RelayID
	entryCirc uint64
	// hops[i] is the source↔relay-i pairwise session (hops[0] = entry).
	hops     []*core.Session
	hopIDs   []RelayID
	hopCircs []uint64
	nextCirc uint64
}

// NewCircuit creates an empty circuit for the source user. The generator
// g comes from the serving router's beacon (any cached generator works;
// pass one explicitly for transport-independent tests).
func NewCircuit(source *core.User, courier Courier, g *bn256.G1) *Circuit {
	return &Circuit{source: source, courier: courier, rng: rand.Reader, gen: g, nextCirc: 1}
}

// Len returns the number of established hops.
func (c *Circuit) Len() int { return len(c.hops) }

// Extend adds a relay to the end of the circuit.
func (c *Circuit) Extend(id RelayID) error {
	hello, err := c.source.StartPeerAuthWithGenerator(c.gen, "")
	if err != nil {
		return err
	}
	circID := c.nextCirc
	c.nextCirc++

	var respBytes []byte
	if len(c.hops) == 0 {
		// First hop: direct CREATE.
		respBytes, err = c.courier.Exchange(id, encodeCell(circID, cmdCreate, hello.Marshal()))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrExtendFailed, err)
		}
		c.entry = id
		c.entryCirc = circID
	} else {
		// Telescope: EXTEND through the existing prefix.
		body := wire.NewWriter(64 + len(hello.Marshal()))
		body.Byte(cmdExtend)
		body.StringField(string(id))
		body.Uint64(circID)
		body.BytesField(hello.Marshal())
		respBytes, err = c.sendLayered(len(c.hops)-1, body.Bytes())
		if err != nil {
			return fmt.Errorf("%w: %v", ErrExtendFailed, err)
		}
	}

	resp, err := core.UnmarshalPeerResponse(respBytes)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrExtendFailed, err)
	}
	confirm, sess, err := c.source.HandlePeerResponse(resp)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrExtendFailed, err)
	}
	// Deliver M̃.3. For the first hop it goes directly; for extended hops
	// the confirmation is not tunneled in this design — the AEAD-keyed
	// first data cell serves as implicit key confirmation (the relay
	// accepts the circuit once HandleCreate succeeded).
	if len(c.hops) == 0 {
		if err := relayConfirm(c.courier, id, confirm); err != nil {
			return err
		}
	}

	c.hops = append(c.hops, sess)
	c.hopIDs = append(c.hopIDs, id)
	c.hopCircs = append(c.hopCircs, circID)
	return nil
}

// relayConfirm ships M̃.3 to a directly reachable relay.
func relayConfirm(courier Courier, id RelayID, confirm *core.PeerConfirm) error {
	_, err := courier.Exchange(id, encodeCell(0, cmdConfirm, confirm.Marshal()))
	return err
}

// sendLayered wraps body in onion layers down to hop index last and sends
// it into the circuit, returning the response. Each relay re-addresses the
// inner frame itself (it knows its own next pointer), so a layer carries
// only the sealed frame, never routing state beyond the next hop.
func (c *Circuit) sendLayered(last int, body []byte) ([]byte, error) {
	cur := body
	for i := last; i >= 0; i-- {
		frame, err := c.hops[i].SealData(c.rng, cur)
		if err != nil {
			return nil, err
		}
		frameBytes := frame.Marshal()
		if i == 0 {
			return c.courier.Exchange(c.entry, encodeCell(c.hopCircs[0], cmdRelay, frameBytes))
		}
		// Instruct hop i−1 to relay this frame to its next hop.
		w := wire.NewWriter(16 + len(frameBytes))
		w.Byte(cmdRelay)
		w.BytesField(frameBytes)
		cur = w.Bytes()
	}
	return nil, ErrNoCircuit // unreachable: loop always returns at i == 0
}

// Send delivers payload anonymously to the circuit's exit relay.
func (c *Circuit) Send(payload []byte) error {
	if len(c.hops) == 0 {
		return ErrNoCircuit
	}
	w := wire.NewWriter(16 + len(payload))
	w.Byte(cmdDeliver)
	w.BytesField(payload)
	_, err := c.sendLayered(len(c.hops)-1, w.Bytes())
	return err
}
