package anonrelay

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
)

// memCourier routes cells between relays with direct calls and records
// every exchange for the anonymity checks.
type memCourier struct {
	relays map[RelayID]*Relay
	log    []exchange
}

type exchange struct {
	to   RelayID
	cell []byte
}

func (m *memCourier) Exchange(to RelayID, payload []byte) ([]byte, error) {
	m.log = append(m.log, exchange{to: to, cell: append([]byte(nil), payload...)})
	r, ok := m.relays[to]
	if !ok {
		return nil, fmt.Errorf("no relay %q", to)
	}
	return r.Handle(payload)
}

// testnet provisions a PEACE deployment with a source user and n relays.
type testnet struct {
	courier *memCourier
	source  *core.User
	relays  []*Relay
	gen     *bn256.G1
}

func newTestnet(t *testing.T, nRelays int) *testnet {
	t.Helper()
	clock := &core.FixedClock{T: time.Unix(1751600000, 0)}
	cfg := core.Config{Clock: clock, FreshnessWindow: time.Hour}

	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := core.NewGroupManager(cfg, "relays", no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	if err := no.RegisterUserGroup(gm, ttp, nRelays+2); err != nil {
		t.Fatal(err)
	}

	newUser := func(name string) *core.User {
		u, err := core.NewUser(cfg, core.Identity{Essential: core.UserID(name)}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.EnrollUser(u, gm, ttp); err != nil {
			t.Fatal(err)
		}
		return u
	}

	courier := &memCourier{relays: make(map[RelayID]*Relay)}
	tn := &testnet{courier: courier, source: newUser("source")}
	for i := 0; i < nRelays; i++ {
		id := RelayID(fmt.Sprintf("relay-%d", i))
		r := NewRelay(id, newUser(string(id)), courier)
		courier.relays[id] = r
		tn.relays = append(tn.relays, r)
	}
	// A fixed generator standing in for the beacon's g.
	tn.gen = bn256.HashToG1([]byte("anonrelay test generator"))
	return tn
}

func TestSingleHopCircuit(t *testing.T) {
	tn := newTestnet(t, 1)
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	if err := c.Extend("relay-0"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	msg := []byte("hello through one hop")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	got := tn.relays[0].Delivered()
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("delivered = %q", got)
	}
}

func TestThreeHopCircuitDeliversAtExit(t *testing.T) {
	tn := newTestnet(t, 3)
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	for i := 0; i < 3; i++ {
		if err := c.Extend(RelayID(fmt.Sprintf("relay-%d", i))); err != nil {
			t.Fatalf("extend hop %d: %v", i, err)
		}
	}

	msg := []byte("anonymous citizen report")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}

	// Only the exit sees the payload.
	if got := tn.relays[2].Delivered(); len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("exit delivered = %q", got)
	}
	for i := 0; i < 2; i++ {
		if len(tn.relays[i].Delivered()) != 0 {
			t.Fatalf("intermediate relay %d received a delivery", i)
		}
	}
}

func TestOnionLayersHidePayloadFromIntermediates(t *testing.T) {
	tn := newTestnet(t, 3)
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	for i := 0; i < 3; i++ {
		if err := c.Extend(RelayID(fmt.Sprintf("relay-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tn.courier.log = nil // observe only the data phase

	secret := []byte("SECRET-PAYLOAD-MARKER")
	if err := c.Send(secret); err != nil {
		t.Fatal(err)
	}

	// No cell on any link carries the plaintext: every layer is AEAD.
	for i, ex := range tn.courier.log {
		if bytes.Contains(ex.cell, secret) {
			t.Fatalf("plaintext visible on link %d (to %s)", i, ex.to)
		}
	}
	// And the cell sizes shrink along the path (layers peeled), proving
	// the intermediates actually forwarded re-addressed inner frames.
	if len(tn.courier.log) != 3 {
		t.Fatalf("expected 3 link crossings, got %d", len(tn.courier.log))
	}
	if !(len(tn.courier.log[0].cell) > len(tn.courier.log[1].cell) &&
		len(tn.courier.log[1].cell) > len(tn.courier.log[2].cell)) {
		t.Fatal("onion layers did not shrink hop by hop")
	}
}

func TestCircuitBuildIsAnonymous(t *testing.T) {
	// The relays authenticate the circuit builder with the group-signature
	// AKA: the transcript never contains the source's identity.
	tn := newTestnet(t, 2)
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	for i := 0; i < 2; i++ {
		if err := c.Extend(RelayID(fmt.Sprintf("relay-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	uid := []byte("source")
	for i, ex := range tn.courier.log {
		if bytes.Contains(ex.cell, uid) {
			t.Fatalf("cell %d leaks the source identity", i)
		}
	}
}

func TestRelayRejectsGarbageCells(t *testing.T) {
	tn := newTestnet(t, 1)
	if _, err := tn.relays[0].Handle([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage cell accepted")
	}
	// Unknown circuit.
	if _, err := tn.relays[0].Handle(encodeCell(999, cmdRelay, []byte("x"))); err == nil {
		t.Fatal("cell on unknown circuit accepted")
	}
	// Relay cell on an unextended circuit: build one hop, then ask it to
	// forward an inner RELAY instruction — it has no next pointer.
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	if err := c.Extend("relay-0"); err != nil {
		t.Fatal(err)
	}
	inner := append([]byte{cmdRelay, 0, 0, 0, 1}, 'x')
	frame, err := c.hops[0].SealData(rand.Reader, inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.relays[0].Handle(encodeCell(c.hopCircs[0], cmdRelay, frame.Marshal())); err == nil {
		t.Fatal("relay-on-unextended accepted")
	}
}

func TestSendWithoutCircuitFails(t *testing.T) {
	tn := newTestnet(t, 1)
	c := NewCircuit(tn.source, tn.courier, tn.gen)
	if err := c.Send([]byte("x")); err == nil {
		t.Fatal("send on empty circuit succeeded")
	}
}
