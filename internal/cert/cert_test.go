package cert

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

var testEpoch = time.Unix(1751600000, 0) // fixed reference time for tests

func newAuthority(t *testing.T) *KeyPair {
	t.Helper()
	kp, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestSignVerify(t *testing.T) {
	kp := newAuthority(t)
	msg := []byte("beacon contents")
	sig, err := kp.Sign(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify([]byte("other"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestCertificateLifecycle(t *testing.T) {
	no := newAuthority(t)
	router := newAuthority(t)

	c, err := IssueCertificate(rand.Reader, no, "MR-17", router.Public(), testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(no.Public(), testEpoch); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	if err := c.Verify(no.Public(), testEpoch.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("want ErrExpired, got %v", err)
	}

	// Wrong authority.
	other := newAuthority(t)
	if err := c.Verify(other.Public(), testEpoch); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature under wrong authority, got %v", err)
	}

	// Tampered subject.
	c2 := *c
	c2.SubjectID = "MR-66"
	if err := c2.Verify(no.Public(), testEpoch); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered cert accepted: %v", err)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	no := newAuthority(t)
	router := newAuthority(t)
	c, err := IssueCertificate(rand.Reader, no, "MR-1", router.Public(), testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCertificate(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.SubjectID != c.SubjectID || back.PublicKey != c.PublicKey || !back.ExpiresAt.Equal(c.ExpiresAt) {
		t.Fatal("round-trip field mismatch")
	}
	if err := back.Verify(no.Public(), testEpoch); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCertificate(c.Marshal()[:10]); err == nil {
		t.Fatal("truncated cert accepted")
	}
}

func TestCheckCertificate(t *testing.T) {
	no := newAuthority(t)
	router := newAuthority(t)
	good, err := IssueCertificate(rand.Reader, no, "MR-good", router.Public(), testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := IssueCertificate(rand.Reader, no, "MR-bad", router.Public(), testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	revoked := func(id string) bool { return id == "MR-bad" }

	if err := CheckCertificate(good, revoked, no.Public(), testEpoch); err != nil {
		t.Fatalf("good cert rejected: %v", err)
	}
	if err := CheckCertificate(bad, revoked, no.Public(), testEpoch); !errors.Is(err, ErrRevokedCert) {
		t.Fatalf("want ErrRevokedCert, got %v", err)
	}
	// Expiry is still enforced ahead of the revocation predicate.
	if err := CheckCertificate(good, revoked, no.Public(), testEpoch.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("want ErrExpired, got %v", err)
	}
	// A nil predicate checks authenticity and expiry only.
	if err := CheckCertificate(bad, nil, no.Public(), testEpoch); err != nil {
		t.Fatalf("nil predicate rejected valid cert: %v", err)
	}
}

func TestPublicKeyRejectsOffCurve(t *testing.T) {
	var pk PublicKey
	for i := range pk {
		pk[i] = 0x5A
	}
	if err := pk.Verify([]byte("m"), []byte{0x30, 0x00}); err == nil {
		t.Fatal("off-curve key verified a signature")
	}
}
