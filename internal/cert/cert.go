// Package cert implements the conventional-PKI side of PEACE: the network
// operator's signing identity (NPK/NSK in the paper), mesh-router
// public-key certificates Cert_k = {MR_k, RPK_k, ExpT, Sig_NSK}, and the
// signed certificate revocation list (CRL) broadcast in beacons.
//
// The paper specifies ECDSA-160; this implementation substitutes ECDSA
// over NIST P-256 (the Go standard library's curve), which plays the same
// role at a slightly larger size. Signatures are ASN.1/DER as produced by
// crypto/ecdsa.
package cert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"time"

	"github.com/peace-mesh/peace/internal/wire"
)

// Exported errors.
var (
	ErrBadSignature = errors.New("cert: signature verification failed")
	ErrExpired      = errors.New("cert: certificate expired")
	ErrRevokedCert  = errors.New("cert: certificate revoked")
	ErrStaleCRL     = errors.New("cert: CRL past its next-update time")
	ErrMalformed    = errors.New("cert: malformed encoding")
)

// publicKeySize is the raw (X ‖ Y) encoding size for P-256.
const publicKeySize = 64

// KeyPair is an ECDSA signing identity.
type KeyPair struct {
	priv *ecdsa.PrivateKey
}

// GenerateKeyPair creates a fresh P-256 key pair.
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("cert: generate key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the raw-encoded public key.
func (k *KeyPair) Public() PublicKey {
	var out PublicKey
	k.priv.PublicKey.X.FillBytes(out[:32])
	k.priv.PublicKey.Y.FillBytes(out[32:])
	return out
}

// Sign signs SHA-256(msg) and returns an ASN.1/DER signature.
func (k *KeyPair) Sign(rng io.Reader, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rng, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cert: sign: %w", err)
	}
	return sig, nil
}

// PublicKey is the raw 64-byte (X ‖ Y) encoding of a P-256 point.
type PublicKey [publicKeySize]byte

// Verify checks an ASN.1/DER ECDSA signature over SHA-256(msg).
func (pk PublicKey) Verify(msg, sig []byte) error {
	key, err := pk.toECDSA()
	if err != nil {
		return err
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(key, digest[:], sig) {
		return ErrBadSignature
	}
	return nil
}

func (pk PublicKey) toECDSA() (*ecdsa.PublicKey, error) {
	x := new(big.Int).SetBytes(pk[:32])
	y := new(big.Int).SetBytes(pk[32:])
	if !elliptic.P256().IsOnCurve(x, y) {
		return nil, fmt.Errorf("%w: public key not on P-256", ErrMalformed)
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}

// Certificate is a mesh-router certificate Cert_k.
type Certificate struct {
	// SubjectID identifies the router (MR_k).
	SubjectID string
	// PublicKey is the router's RPK_k.
	PublicKey PublicKey
	// ExpiresAt is the paper's ExpT field.
	ExpiresAt time.Time
	// Signature is Sig_NSK over the three fields above.
	Signature []byte
}

// signedBody returns the canonical byte string covered by the signature.
func (c *Certificate) signedBody() []byte {
	w := wire.NewWriter(128)
	w.StringField("peace/cert:v1")
	w.StringField(c.SubjectID)
	w.BytesField(c.PublicKey[:])
	w.Time(c.ExpiresAt)
	return w.Bytes()
}

// IssueCertificate creates a certificate for subject signed by the
// authority (the network operator's NSK).
func IssueCertificate(rng io.Reader, authority *KeyPair, subjectID string, subjectKey PublicKey, expiresAt time.Time) (*Certificate, error) {
	c := &Certificate{
		SubjectID: subjectID,
		PublicKey: subjectKey,
		ExpiresAt: expiresAt,
	}
	sig, err := authority.Sign(rng, c.signedBody())
	if err != nil {
		return nil, err
	}
	c.Signature = sig
	return c, nil
}

// Verify checks the authority signature and the expiry against now.
func (c *Certificate) Verify(authority PublicKey, now time.Time) error {
	if err := authority.Verify(c.signedBody(), c.Signature); err != nil {
		return err
	}
	if now.After(c.ExpiresAt) {
		return ErrExpired
	}
	return nil
}

// Marshal encodes the certificate.
func (c *Certificate) Marshal() []byte {
	w := wire.NewWriter(192)
	w.StringField(c.SubjectID)
	w.BytesField(c.PublicKey[:])
	w.Time(c.ExpiresAt)
	w.BytesField(c.Signature)
	return w.Bytes()
}

// UnmarshalCertificate decodes a certificate.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	r := wire.NewReader(data)
	c := &Certificate{}
	var err error
	if c.SubjectID, err = r.StringField(); err != nil {
		return nil, err
	}
	pk, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(pk) != publicKeySize {
		return nil, fmt.Errorf("%w: public key size %d", ErrMalformed, len(pk))
	}
	copy(c.PublicKey[:], pk)
	if c.ExpiresAt, err = r.Time(); err != nil {
		return nil, err
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	c.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// CRL is the signed certificate revocation list for mesh routers. Entries
// are subject IDs; the list carries issue and next-update times so clients
// can detect stale lists (the paper's bound on how long a freshly revoked
// router can keep phishing).
type CRL struct {
	Revoked    []string
	IssuedAt   time.Time
	NextUpdate time.Time
	Signature  []byte
}

func (l *CRL) signedBody() []byte {
	w := wire.NewWriter(64 + 16*len(l.Revoked))
	w.StringField("peace/crl:v1")
	w.Time(l.IssuedAt)
	w.Time(l.NextUpdate)
	w.Uint32(uint32(len(l.Revoked)))
	for _, id := range l.Revoked {
		w.StringField(id)
	}
	return w.Bytes()
}

// IssueCRL creates a signed CRL over the given revoked subject IDs. The
// ID list is defensively copied and sorted for canonical encoding.
func IssueCRL(rng io.Reader, authority *KeyPair, revoked []string, issuedAt time.Time, nextUpdate time.Time) (*CRL, error) {
	ids := append([]string(nil), revoked...)
	sort.Strings(ids)
	l := &CRL{Revoked: ids, IssuedAt: issuedAt, NextUpdate: nextUpdate}
	sig, err := authority.Sign(rng, l.signedBody())
	if err != nil {
		return nil, err
	}
	l.Signature = sig
	return l, nil
}

// Verify checks the authority signature and freshness against now.
func (l *CRL) Verify(authority PublicKey, now time.Time) error {
	if err := authority.Verify(l.signedBody(), l.Signature); err != nil {
		return err
	}
	if now.After(l.NextUpdate) {
		return ErrStaleCRL
	}
	return nil
}

// Contains reports whether subjectID is revoked.
func (l *CRL) Contains(subjectID string) bool {
	i := sort.SearchStrings(l.Revoked, subjectID)
	return i < len(l.Revoked) && l.Revoked[i] == subjectID
}

// CheckCertificate performs the full paper Step 2.1 router check: CRL
// authenticity and freshness, certificate authenticity and expiry, and
// revocation status.
func CheckCertificate(c *Certificate, l *CRL, authority PublicKey, now time.Time) error {
	if err := l.Verify(authority, now); err != nil {
		return fmt.Errorf("crl: %w", err)
	}
	if err := c.Verify(authority, now); err != nil {
		return err
	}
	if l.Contains(c.SubjectID) {
		return ErrRevokedCert
	}
	return nil
}

// Marshal encodes the CRL.
func (l *CRL) Marshal() []byte {
	w := wire.NewWriter(128 + 16*len(l.Revoked))
	w.Time(l.IssuedAt)
	w.Time(l.NextUpdate)
	w.Uint32(uint32(len(l.Revoked)))
	for _, id := range l.Revoked {
		w.StringField(id)
	}
	w.BytesField(l.Signature)
	return w.Bytes()
}

// UnmarshalCRL decodes a CRL.
func UnmarshalCRL(data []byte) (*CRL, error) {
	r := wire.NewReader(data)
	l := &CRL{}
	var err error
	if l.IssuedAt, err = r.Time(); err != nil {
		return nil, err
	}
	if l.NextUpdate, err = r.Time(); err != nil {
		return nil, err
	}
	// Each entry is a length-prefixed string (≥ 4 bytes); Count bounds the
	// claimed entry count by the bytes actually present.
	n, err := r.Count(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	l.Revoked = make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := r.StringField()
		if err != nil {
			return nil, err
		}
		l.Revoked = append(l.Revoked, id)
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	l.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return l, nil
}
