// Package cert implements the conventional-PKI side of PEACE: the network
// operator's signing identity (NPK/NSK in the paper) and mesh-router
// public-key certificates Cert_k = {MR_k, RPK_k, ExpT, Sig_NSK}. Router
// revocation status (the paper's CRL) is distributed by the
// internal/revocation subsystem; CheckCertificate takes a membership
// predicate so this package stays independent of how the list travels.
//
// The paper specifies ECDSA-160; this implementation substitutes ECDSA
// over NIST P-256 (the Go standard library's curve), which plays the same
// role at a slightly larger size. Signatures are ASN.1/DER as produced by
// crypto/ecdsa.
package cert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"

	"github.com/peace-mesh/peace/internal/wire"
)

// Exported errors.
var (
	ErrBadSignature = errors.New("cert: signature verification failed")
	ErrExpired      = errors.New("cert: certificate expired")
	ErrRevokedCert  = errors.New("cert: certificate revoked")
	ErrMalformed    = errors.New("cert: malformed encoding")
)

// publicKeySize is the raw (X ‖ Y) encoding size for P-256.
const publicKeySize = 64

// KeyPair is an ECDSA signing identity.
type KeyPair struct {
	priv *ecdsa.PrivateKey
}

// GenerateKeyPair creates a fresh P-256 key pair.
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("cert: generate key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the raw-encoded public key.
func (k *KeyPair) Public() PublicKey {
	var out PublicKey
	k.priv.PublicKey.X.FillBytes(out[:32])
	k.priv.PublicKey.Y.FillBytes(out[32:])
	return out
}

// Sign signs SHA-256(msg) and returns an ASN.1/DER signature.
func (k *KeyPair) Sign(rng io.Reader, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rng, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cert: sign: %w", err)
	}
	return sig, nil
}

// PublicKey is the raw 64-byte (X ‖ Y) encoding of a P-256 point.
type PublicKey [publicKeySize]byte

// Verify checks an ASN.1/DER ECDSA signature over SHA-256(msg).
func (pk PublicKey) Verify(msg, sig []byte) error {
	key, err := pk.toECDSA()
	if err != nil {
		return err
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(key, digest[:], sig) {
		return ErrBadSignature
	}
	return nil
}

func (pk PublicKey) toECDSA() (*ecdsa.PublicKey, error) {
	x := new(big.Int).SetBytes(pk[:32])
	y := new(big.Int).SetBytes(pk[32:])
	if !elliptic.P256().IsOnCurve(x, y) {
		return nil, fmt.Errorf("%w: public key not on P-256", ErrMalformed)
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}

// Certificate is a mesh-router certificate Cert_k.
type Certificate struct {
	// SubjectID identifies the router (MR_k).
	SubjectID string
	// PublicKey is the router's RPK_k.
	PublicKey PublicKey
	// ExpiresAt is the paper's ExpT field.
	ExpiresAt time.Time
	// Signature is Sig_NSK over the three fields above.
	Signature []byte
}

// signedBody returns the canonical byte string covered by the signature.
func (c *Certificate) signedBody() []byte {
	w := wire.NewWriter(128)
	w.StringField("peace/cert:v1")
	w.StringField(c.SubjectID)
	w.BytesField(c.PublicKey[:])
	w.Time(c.ExpiresAt)
	return w.Bytes()
}

// IssueCertificate creates a certificate for subject signed by the
// authority (the network operator's NSK).
func IssueCertificate(rng io.Reader, authority *KeyPair, subjectID string, subjectKey PublicKey, expiresAt time.Time) (*Certificate, error) {
	c := &Certificate{
		SubjectID: subjectID,
		PublicKey: subjectKey,
		ExpiresAt: expiresAt,
	}
	sig, err := authority.Sign(rng, c.signedBody())
	if err != nil {
		return nil, err
	}
	c.Signature = sig
	return c, nil
}

// Verify checks the authority signature and the expiry against now.
func (c *Certificate) Verify(authority PublicKey, now time.Time) error {
	if err := authority.Verify(c.signedBody(), c.Signature); err != nil {
		return err
	}
	if now.After(c.ExpiresAt) {
		return ErrExpired
	}
	return nil
}

// Marshal encodes the certificate.
func (c *Certificate) Marshal() []byte {
	w := wire.NewWriter(192)
	w.StringField(c.SubjectID)
	w.BytesField(c.PublicKey[:])
	w.Time(c.ExpiresAt)
	w.BytesField(c.Signature)
	return w.Bytes()
}

// UnmarshalCertificate decodes a certificate.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	r := wire.NewReader(data)
	c := &Certificate{}
	var err error
	if c.SubjectID, err = r.StringField(); err != nil {
		return nil, err
	}
	pk, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(pk) != publicKeySize {
		return nil, fmt.Errorf("%w: public key size %d", ErrMalformed, len(pk))
	}
	copy(c.PublicKey[:], pk)
	if c.ExpiresAt, err = r.Time(); err != nil {
		return nil, err
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	c.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// CheckCertificate performs the paper Step 2.1 router check: certificate
// authenticity and expiry, and revocation status. revoked reports whether
// a subject ID is on the current router revocation list — callers supply
// their revocation.Store lookup (the store enforces list authenticity,
// freshness and epoch monotonicity before anything is returned here). A
// nil predicate skips the revocation check.
func CheckCertificate(c *Certificate, revoked func(subjectID string) bool, authority PublicKey, now time.Time) error {
	if err := c.Verify(authority, now); err != nil {
		return err
	}
	if revoked != nil && revoked(c.SubjectID) {
		return ErrRevokedCert
	}
	return nil
}
