package experiments

import (
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/mesh"
)

// E4HandshakeRow is one row of the AKA-over-the-mesh experiment: a user at
// the given uplink hop count, the virtual-time authentication delay, and
// the exact number of protocol messages it took.
type E4HandshakeRow struct {
	Hops        int
	AttachDelay time.Duration
	// MessagesSent is the per-AKA message count seen on the medium
	// attributable to this user's handshake (excluding the shared beacon).
	MessagesSent int
}

// E4HandshakeReport aggregates the hop sweep plus global traffic.
type E4HandshakeReport struct {
	Rows []E4HandshakeRow
	// BytesByMessage records total bytes per protocol message type.
	BytesByMessage map[string]int
	// FramesByMessage records frame counts per type.
	FramesByMessage map[string]int
	// ThreeMessages asserts the paper's claim: each AKA is exactly three
	// messages (one beacon + one M.2 + one M.3 per user at hop 1).
	ThreeMessages bool
}

// RunE4Handshake attaches one user per hop depth (1..maxHops) on a chain
// with the given per-hop latency and reports delays and traffic.
func RunE4Handshake(maxHops int, hopLatency time.Duration) (*E4HandshakeReport, error) {
	d, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed:         1,
		Groups:       1,
		KeysPerGroup: maxHops + 2,
		Routers:      1,
	})
	if err != nil {
		return nil, err
	}

	ids := make([]mesh.NodeID, maxHops)
	for i := range ids {
		ids[i] = mesh.NodeID(fmt.Sprintf("u%d", i+1))
	}
	for i, id := range ids {
		next := mesh.NodeID("MR-0")
		if i > 0 {
			next = ids[i-1]
		}
		if _, err := d.AddUser(id, core.GroupID("grp-0"), next, true); err != nil {
			return nil, err
		}
	}
	d.BuildChain("MR-0", ids, mesh.Link{Latency: hopLatency})

	d.Routers["MR-0"].StartBeacons(time.Second, 2)
	d.Net.RunFor(10 * time.Second)

	rep := &E4HandshakeReport{
		BytesByMessage:  map[string]int{},
		FramesByMessage: map[string]int{},
	}
	for i, id := range ids {
		st := d.Users[id].Stats()
		if !st.Attached {
			return nil, fmt.Errorf("e4: user %s at hop %d did not attach", id, i+1)
		}
		rep.Rows = append(rep.Rows, E4HandshakeRow{
			Hops:        i + 1,
			AttachDelay: st.AttachDelay,
			// One M.2 and one M.3 traverse (i+1) hops each.
			MessagesSent: 2 * (i + 1),
		})
	}
	m := d.Net.Metrics()
	for _, k := range []mesh.FrameKind{
		mesh.KindBeacon, mesh.KindAccessRequest, mesh.KindAccessConfirm, mesh.KindData,
	} {
		rep.FramesByMessage[k.String()] = m.FramesByKind[k]
		rep.BytesByMessage[k.String()] = m.BytesByKind[k]
	}

	// The three-message claim, measured on a dedicated single-user run.
	solo, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed: 2, Groups: 1, KeysPerGroup: 2, Routers: 1,
	})
	if err != nil {
		return nil, err
	}
	if _, err := solo.AddUser("x", core.GroupID("grp-0"), "MR-0", true); err != nil {
		return nil, err
	}
	solo.Net.Connect("x", "MR-0", mesh.Link{Latency: hopLatency})
	solo.Routers["MR-0"].StartBeacons(time.Second, 1)
	solo.Net.RunFor(5 * time.Second)
	sm := solo.Net.Metrics()
	rep.ThreeMessages = sm.FramesByKind[mesh.KindBeacon] == 1 &&
		sm.FramesByKind[mesh.KindAccessRequest] == 1 &&
		sm.FramesByKind[mesh.KindAccessConfirm] == 1 &&
		solo.Users["x"].Attached()
	return rep, nil
}

// E4LossyRow measures attachment resilience on lossy links: the paper's
// mesh assumptions include unreliable radio, and PEACE's stateless retry
// (a fresh AKA per beacon) must still attach everyone.
type E4LossyRow struct {
	Loss float64
	// Attached / Users is the attach success after the beacon budget.
	Attached int
	Users    int
	// BeaconsSent is how many beacon rounds ran.
	BeaconsSent int
	// FramesLost counts radio losses during the run.
	FramesLost int
}

// RunE4Lossy sweeps link-loss probabilities.
func RunE4Lossy(losses []float64) ([]E4LossyRow, error) {
	var out []E4LossyRow
	for _, loss := range losses {
		d, err := mesh.NewDeployment(mesh.DeploymentSpec{
			Seed:         int64(100 + loss*1000),
			Groups:       1,
			KeysPerGroup: 6,
			Routers:      1,
		})
		if err != nil {
			return nil, err
		}
		const users = 3
		for i := 0; i < users; i++ {
			id := mesh.NodeID(fmt.Sprintf("u%d", i))
			if _, err := d.AddUser(id, core.GroupID("grp-0"), "MR-0", true); err != nil {
				return nil, err
			}
			d.Net.Connect(id, "MR-0", mesh.Link{Latency: 2 * time.Millisecond, Loss: loss})
		}
		const beacons = 25
		d.Routers["MR-0"].StartBeacons(300*time.Millisecond, beacons)
		d.Net.RunFor(30 * time.Second)

		attached := 0
		for _, u := range d.Users {
			if u.Attached() {
				attached++
			}
		}
		m := d.Net.Metrics()
		out = append(out, E4LossyRow{
			Loss:        loss,
			Attached:    attached,
			Users:       users,
			BeaconsSent: beacons,
			FramesLost:  m.FramesLost,
		})
	}
	return out, nil
}
