package experiments

import (
	"crypto/rand"
	"errors"

	"github.com/peace-mesh/peace/internal/sgs"
)

// E2OpCountReport reproduces the computational-overhead claims of Section
// V.C: signature generation ≈ 8 exponentiations + 2 pairings; verification
// = 6 exponentiations + (3 + 2·|URL|) pairings.
type E2OpCountReport struct {
	Sign   sgs.OpCounts
	Verify sgs.OpCounts
	// VerifyWithURL holds counts at the given URL size.
	URLSize       int
	VerifyWithURL sgs.OpCounts

	// Paper formulas for side-by-side display.
	PaperSignExps        int
	PaperSignPairings    int
	PaperVerifyExps      int
	PaperVerifyPairings  int // at |URL| = 0
	PaperPerTokenPairing int

	// Match flags: whether measurements agree with the paper under its
	// accounting (the cached e(g1,g2) counts as the third verify pairing).
	SignMatches   bool
	VerifyMatches bool
}

// RunE2OpCounts measures actual operation counts.
func RunE2OpCounts(urlSize int) (*E2OpCountReport, error) {
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, urlSize+1)
	if err != nil {
		return nil, err
	}
	signer := keys[0]
	msg := []byte("op-count probe")

	sig, signCounts, err := sgs.SignCounted(rand.Reader, iss.PublicKey(), signer, msg)
	if err != nil {
		return nil, err
	}
	verifyCounts, err := sgs.VerifyCounted(iss.PublicKey(), msg, sig)
	if err != nil {
		return nil, err
	}

	// URL of the *other* keys so the signer passes the scan and every
	// token gets tested (worst case).
	url := make([]*sgs.RevocationToken, 0, urlSize)
	for _, k := range keys[1:] {
		url = append(url, k.Token())
	}
	withURL, err := sgs.VerifyWithRevocationCounted(iss.PublicKey(), msg, sig, url)
	if err != nil && !errors.Is(err, sgs.ErrRevoked) {
		return nil, err
	}

	rep := &E2OpCountReport{
		Sign:                 signCounts,
		Verify:               verifyCounts,
		URLSize:              urlSize,
		VerifyWithURL:        withURL,
		PaperSignExps:        8,
		PaperSignPairings:    2,
		PaperVerifyExps:      6,
		PaperVerifyPairings:  3,
		PaperPerTokenPairing: 2,
	}
	rep.SignMatches = signCounts.Exps == 8 && signCounts.Pairings == 2
	// Paper charges the cached e(g1,g2) as a pairing; we count it as one
	// GT exponentiation of a precomputed value.
	rep.VerifyMatches = verifyCounts.Exps == 6 &&
		verifyCounts.Pairings+verifyCounts.GTExps == 3
	return rep, nil
}
