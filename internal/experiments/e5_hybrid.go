package experiments

import (
	"crypto/rand"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/sgs"
)

// E5HybridReport reproduces the rationale for PEACE's hybrid
// asymmetric/symmetric session design (Section V.C): group signatures are
// executed once per session; per-message authentication falls back to
// MACs, which are orders of magnitude cheaper.
type E5HybridReport struct {
	// GroupSignTime / GroupVerifyTime: the asymmetric per-message cost a
	// naive design would pay.
	GroupSignTime   time.Duration
	GroupVerifyTime time.Duration
	// MACTime / MACVerifyTime: the hybrid design's per-message cost.
	MACTime       time.Duration
	MACVerifyTime time.Duration
	// SealTime / OpenTime: the AEAD path (encrypt + authenticate).
	SealTime time.Duration
	OpenTime time.Duration
	// SpeedupAuth is GroupVerifyTime / MACVerifyTime.
	SpeedupAuth float64
}

// RunE5Hybrid times both authentication paths; iters controls the
// symmetric-path sample count (the asymmetric path is capped at 8 since a
// pairing-based signature costs ~10⁵× a MAC).
func RunE5Hybrid(iters int) (*E5HybridReport, error) {
	if iters < 1 {
		iters = 1
	}
	payload := make([]byte, 256)

	// Asymmetric path: bare group signature sign/verify.
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	key, err := iss.IssueKey(rand.Reader, grp)
	if err != nil {
		return nil, err
	}
	pub := iss.PublicKey()

	sigIters := iters
	if sigIters > 8 {
		sigIters = 8
	}
	var lastSig *sgs.Signature
	start := time.Now()
	for i := 0; i < sigIters; i++ {
		lastSig, err = sgs.Sign(rand.Reader, pub, key, payload)
		if err != nil {
			return nil, err
		}
	}
	rep := &E5HybridReport{}
	rep.GroupSignTime = time.Since(start) / time.Duration(sigIters)

	start = time.Now()
	for i := 0; i < sigIters; i++ {
		if err := sgs.Verify(pub, payload, lastSig); err != nil {
			return nil, err
		}
	}
	rep.GroupVerifyTime = time.Since(start) / time.Duration(sigIters)

	// Symmetric paths over an established session.
	f, err := newFixture(1, 1)
	if err != nil {
		return nil, err
	}
	_, _, _, us, rs, err := f.handshake(f.users[0], "grp-0")
	if err != nil {
		return nil, err
	}

	macFrames := make([]*core.DataFrame, 0, iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		macFrames = append(macFrames, us.AuthData(payload))
	}
	rep.MACTime = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for _, fr := range macFrames {
		if _, err := rs.OpenData(fr); err != nil {
			return nil, err
		}
	}
	rep.MACVerifyTime = time.Since(start) / time.Duration(iters)

	sealed := make([]*core.DataFrame, 0, iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		fr, err := us.SealData(rand.Reader, payload)
		if err != nil {
			return nil, err
		}
		sealed = append(sealed, fr)
	}
	rep.SealTime = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for _, fr := range sealed {
		if _, err := rs.OpenData(fr); err != nil {
			return nil, err
		}
	}
	rep.OpenTime = time.Since(start) / time.Duration(iters)

	if rep.MACVerifyTime > 0 {
		rep.SpeedupAuth = float64(rep.GroupVerifyTime) / float64(rep.MACVerifyTime)
	}
	return rep, nil
}
