package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/sgs"
)

// E3RevocationPoint is one row of the |URL| sweep: the measured cost of
// verification + revocation checking at one URL size, for the paper's
// default linear scan and for the O(1)-per-token fast variant it cites.
type E3RevocationPoint struct {
	URLSize int
	// LinearTime is verify + linear URL scan (per-message generators).
	LinearTime time.Duration
	// LinearPairings is the measured pairing count (paper: 3 + 2|URL|).
	LinearPairings int
	// FastTime is verify + fast revocation check (fixed generators).
	FastTime time.Duration
	// FastPairings is the measured pairing count (paper: 5 total).
	FastPairings int
}

// RunE3RevocationSweep measures the revocation sweep at the given URL
// sizes, with iters timing repetitions per point.
func RunE3RevocationSweep(urlSizes []int, iters int) ([]E3RevocationPoint, error) {
	if iters < 1 {
		iters = 1
	}
	maxURL := 0
	for _, s := range urlSizes {
		if s > maxURL {
			maxURL = s
		}
	}

	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, maxURL+1)
	if err != nil {
		return nil, err
	}
	signer := keys[0]
	pub := iss.PublicKey()
	msg := []byte("revocation sweep probe")

	// All revoked tokens are other users' → worst case (full scan, no hit).
	allTokens := make([]*sgs.RevocationToken, 0, maxURL)
	for _, k := range keys[1:] {
		allTokens = append(allTokens, k.Token())
	}

	out := make([]E3RevocationPoint, 0, len(urlSizes))
	for _, size := range urlSizes {
		if size > len(allTokens) {
			return nil, fmt.Errorf("e3: url size %d exceeds issued keys", size)
		}
		url := allTokens[:size]
		pt := E3RevocationPoint{URLSize: size}

		// Linear variant (paper default, per-message generators).
		sigPM, err := sgs.Sign(rand.Reader, pub, signer, msg)
		if err != nil {
			return nil, err
		}
		counts, err := sgs.VerifyWithRevocationCounted(pub, msg, sigPM, url)
		if err != nil {
			return nil, err
		}
		pt.LinearPairings = counts.Pairings
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := sgs.VerifyWithRevocation(pub, msg, sigPM, url); err != nil {
				return nil, err
			}
		}
		pt.LinearTime = time.Since(start) / time.Duration(iters)

		// Fast variant (fixed generators; table precomputed once and NOT
		// counted against the per-signature cost, per BS04 §6).
		checker := sgs.NewFastRevocationChecker(pub, url)
		sigFX, err := sgs.SignWithMode(rand.Reader, pub, signer, msg, sgs.FixedGenerators)
		if err != nil {
			return nil, err
		}
		if err := sgs.Verify(pub, msg, sigFX); err != nil {
			return nil, err
		}
		_, _, fastCounts, err := checker.IsRevokedCounted(sigFX)
		if err != nil {
			return nil, err
		}
		// Verify (2 pairings + cached third) + fast check (2 pairings) ≈
		// the paper's "6 exponentiations and 5 bilinear map computations".
		verCounts, err := sgs.VerifyCounted(pub, msg, sigFX)
		if err != nil {
			return nil, err
		}
		pt.FastPairings = verCounts.Pairings + verCounts.GTExps + fastCounts.Pairings
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := sgs.Verify(pub, msg, sigFX); err != nil {
				return nil, err
			}
			if _, _, err := checker.IsRevoked(sigFX); err != nil {
				return nil, err
			}
		}
		pt.FastTime = time.Since(start) / time.Duration(iters)

		out = append(out, pt)
	}
	return out, nil
}
