package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"github.com/peace-mesh/peace/internal/backbone"
	"github.com/peace-mesh/peace/internal/transport"
)

// E17HandoffReport compares the three ways a metro user (re)gains
// service: a full M.1–M.3 pairing, a ticket resume at the same router,
// and a cross-router roaming handoff — a ticket resume at a *different*
// router, which additionally validates epoch pins against that router's
// own revocation state, re-logs the accountability escrow and announces
// the ownership transfer on the backbone. The handoff must price like a
// resume, not like a pairing: the gossip/relay work happens off the
// user's critical path.
type E17HandoffReport struct {
	FullAttachP50         time.Duration
	SameRouterResumeP50   time.Duration
	CrossRouterHandoffP50 time.Duration

	// HandoffVsResumeX is CrossRouterHandoffP50 / SameRouterResumeP50 —
	// the roaming premium (target: ≈1–2×).
	HandoffVsResumeX float64
	// AttachVsHandoffX is FullAttachP50 / CrossRouterHandoffP50 — how much
	// cheaper roaming is than re-pairing at the new router.
	AttachVsHandoffX float64

	Attaches int
	Resumes  int
	Handoffs int

	// HistAttachP50 / HistResumeP50 / HistHandoffP50 are the same three
	// latencies as estimated from the client's registry histograms
	// (attach_latency, resume_latency, handoff_latency) — the boundary
	// instrumentation cross-checked against the wall-clock medians above,
	// to log2-bucket precision.
	HistAttachP50  time.Duration
	HistResumeP50  time.Duration
	HistHandoffP50 time.Duration
}

// RunE17Handoff measures attach/resume/handoff latencies over real UDP
// loopback against a two-router metro sharing one STEK ring.
func RunE17Handoff(iters int) (*E17HandoffReport, error) {
	if iters < 1 {
		iters = 1
	}
	m, err := backbone.StartMetro(backbone.MetroConfig{
		Routers:        2,
		Users:          1,
		GossipInterval: 100 * time.Millisecond,
		GraceWindow:    time.Minute,
	}, nil)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	cl := transport.NewClient(conn, m.Servers[0].Addr(), m.Net.Users[0], transport.ClientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	rep := &E17HandoffReport{}

	nAttach := 5 * iters
	fulls := make([]time.Duration, 0, nAttach)
	for i := 0; i < nAttach; i++ {
		start := time.Now()
		if _, err := cl.Attach(ctx); err != nil {
			return nil, fmt.Errorf("e17 full attach %d: %w", i, err)
		}
		fulls = append(fulls, time.Since(start))
	}

	nResume := 20 * iters
	sames := make([]time.Duration, 0, nResume)
	for i := 0; i < nResume; i++ {
		start := time.Now()
		if _, err := cl.Resume(ctx); err != nil {
			return nil, fmt.Errorf("e17 same-router resume %d: %w", i, err)
		}
		sames = append(sames, time.Since(start))
	}

	// Cross-router: bounce between the two routers, resuming at the one
	// the client did NOT get its current ticket from. Every iteration is a
	// real roaming handoff (handoffs_in bumps on the adopting side).
	crosses := make([]time.Duration, 0, nResume)
	at := 0
	for i := 0; i < nResume; i++ {
		at = 1 - at
		cl.Retarget(m.Servers[at].Addr())
		start := time.Now()
		if _, err := cl.Resume(ctx); err != nil {
			return nil, fmt.Errorf("e17 cross-router handoff %d: %w", i, err)
		}
		crosses = append(crosses, time.Since(start))
	}
	handoffs := m.Servers[0].Stats().HandoffsIn() + m.Servers[1].Stats().HandoffsIn()
	if handoffs < int64(nResume) {
		return nil, fmt.Errorf("e17: only %d/%d iterations registered as handoffs", handoffs, nResume)
	}
	// The client must have classified every cross-router resume as a
	// handoff (the resume confirmation names a different router).
	st := cl.Stats()
	if got := st.HandoffLatency().Count(); got < int64(nResume) {
		return nil, fmt.Errorf("e17: client histogram saw %d/%d handoffs", got, nResume)
	}
	rep.HistAttachP50 = st.AttachLatency().Quantile(0.5)
	rep.HistResumeP50 = st.ResumeLatency().Quantile(0.5)
	rep.HistHandoffP50 = st.HandoffLatency().Quantile(0.5)

	rep.Attaches = nAttach
	rep.Resumes = nResume
	rep.Handoffs = int(handoffs)
	rep.FullAttachP50 = median(fulls)
	rep.SameRouterResumeP50 = median(sames)
	rep.CrossRouterHandoffP50 = median(crosses)
	if rep.SameRouterResumeP50 > 0 {
		rep.HandoffVsResumeX = float64(rep.CrossRouterHandoffP50) / float64(rep.SameRouterResumeP50)
	}
	if rep.CrossRouterHandoffP50 > 0 {
		rep.AttachVsHandoffX = float64(rep.FullAttachP50) / float64(rep.CrossRouterHandoffP50)
	}
	return rep, nil
}
