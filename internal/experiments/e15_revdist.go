package experiments

import (
	"crypto/rand"
	"fmt"
	"sort"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
)

// E15RevDistPoint is one row of the revocation-distribution sweep: the
// wire cost of announcing and shipping a URL of the given size, and the
// router-side sweep cost with and without the cached per-epoch index.
type E15RevDistPoint struct {
	URLSize int
	// BeaconBytes is the size of M.1 carrying only epoch refs. The whole
	// point of the epoch subsystem is that this column is flat in |URL|.
	BeaconBytes int
	// SnapshotBytes is the full signed snapshot a cold client fetches.
	SnapshotBytes int
	// DeltaBytes is a one-revocation signed delta from the previous
	// epoch — what a warm client fetches instead of SnapshotBytes.
	DeltaBytes int
	// ColdSweep is one Eq.3 linear sweep with no cached state.
	ColdSweep time.Duration
	// CachedBuild is the one-time e(A,û) index construction at this
	// epoch (amortised across every check until the URL changes).
	CachedBuild time.Duration
	// CachedCheck is one membership check against the cached index.
	CachedCheck time.Duration
}

// RunE15RevDist measures revocation distribution and sweep costs at each
// URL size. Wire sizes come from a real revocation.Authority and a real
// router beacon; sweep timings use the sgs primitives the router runs.
func RunE15RevDist(urlSizes []int, iters int) ([]E15RevDistPoint, error) {
	if iters < 1 {
		iters = 1
	}
	maxURL := 0
	for _, s := range urlSizes {
		if s < 0 {
			return nil, fmt.Errorf("e15: negative url size %d", s)
		}
		if s > maxURL {
			maxURL = s
		}
	}

	// Group with maxURL+1 members: keys[0] signs, the rest get revoked.
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, maxURL+1)
	if err != nil {
		return nil, err
	}
	signer := keys[0]
	pub := iss.PublicKey()
	msg := []byte("e15 revocation distribution probe")
	allTokens := make([]*sgs.RevocationToken, 0, maxURL)
	for _, k := range keys[1:] {
		allTokens = append(allTokens, k.Token())
	}

	sigPM, err := sgs.Sign(rand.Reader, pub, signer, msg)
	if err != nil {
		return nil, err
	}
	sigFX, err := sgs.SignWithMode(rand.Reader, pub, signer, msg, sgs.FixedGenerators)
	if err != nil {
		return nil, err
	}
	ver := sgs.NewVerifier(pub)

	// Beacon sizes come from one real NO+router fixture whose URL grows
	// monotonically, so measure the sizes in ascending order and join the
	// results back to the caller's order afterwards.
	beaconBytes, err := e15BeaconSizes(urlSizes, maxURL)
	if err != nil {
		return nil, err
	}

	now := time.Unix(1751600000, 0)
	out := make([]E15RevDistPoint, 0, len(urlSizes))
	for _, size := range urlSizes {
		if size > len(allTokens) {
			return nil, fmt.Errorf("e15: url size %d exceeds issued keys", size)
		}
		url := allTokens[:size]
		pt := E15RevDistPoint{URLSize: size, BeaconBytes: beaconBytes[size]}

		// Wire sizes from a fresh authority: epoch 1 = the full set (the
		// cold fetch), epoch 2 = one more revocation (the warm fetch).
		kp, err := cert.GenerateKeyPair(rand.Reader)
		if err != nil {
			return nil, err
		}
		auth, err := revocation.NewAuthority(revocation.ListURL, kp, rand.Reader, revocation.DefaultHistory)
		if err != nil {
			return nil, err
		}
		entries := make([][]byte, 0, size+1)
		for _, t := range url {
			entries = append(entries, t.Bytes())
		}
		full, err := auth.Issue(entries, now, now.Add(time.Hour))
		if err != nil {
			return nil, err
		}
		pt.SnapshotBytes = len(full.Snapshot.Marshal())
		probe := append(append([][]byte{}, entries...), []byte("e15-probe-revocation-entry------"))
		next, err := auth.Issue(probe, now.Add(time.Minute), now.Add(time.Hour))
		if err != nil {
			return nil, err
		}
		if len(next.Deltas) == 0 {
			return nil, fmt.Errorf("e15: authority issued no delta at size %d", size)
		}
		pt.DeltaBytes = len(next.Deltas[len(next.Deltas)-1].Marshal())

		// Cold: one full Eq.3 linear sweep per check, no reusable state.
		start := time.Now()
		for i := 0; i < iters; i++ {
			ver.SweepURL(msg, sigPM, url)
		}
		pt.ColdSweep = time.Since(start) / time.Duration(iters)

		// Cached: pay the per-epoch index build once...
		start = time.Now()
		checker := sgs.NewFastRevocationChecker(pub, url)
		pt.CachedBuild = time.Since(start)

		// ...then every check is constant-cost.
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := checker.IsRevoked(sigFX); err != nil {
				return nil, err
			}
		}
		pt.CachedCheck = time.Since(start) / time.Duration(iters)

		out = append(out, pt)
	}
	return out, nil
}

// e15BeaconSizes provisions one operator + router, grows the URL through
// each requested size in ascending order, and records the marshalled M.1
// size at each point. The map is keyed by URL size.
func e15BeaconSizes(urlSizes []int, maxURL int) (map[int]int, error) {
	sizes := append([]int{}, urlSizes...)
	sort.Ints(sizes)

	clock := &core.FixedClock{T: time.Unix(1751600000, 0)}
	cfg := core.Config{Clock: clock, FreshnessWindow: time.Minute}
	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		return nil, err
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		return nil, err
	}
	gm, err := core.NewGroupManager(cfg, "e15", no.Authority())
	if err != nil {
		return nil, err
	}
	if err := no.RegisterUserGroup(gm, ttp, maxURL+1); err != nil {
		return nil, err
	}
	router, err := core.NewMeshRouter(cfg, "MR-e15", no.Authority(), no.GroupPublicKey())
	if err != nil {
		return nil, err
	}
	c, err := no.EnrollRouter("MR-e15", router.Public())
	if err != nil {
		return nil, err
	}
	router.SetCertificate(c)

	out := make(map[int]int, len(sizes))
	revoked := 0
	for _, size := range sizes {
		for revoked < size {
			tok, err := no.TokenOf("e15", revoked)
			if err != nil {
				return nil, err
			}
			no.RevokeUserKey(tok)
			revoked++
		}
		crl, url, err := no.RevocationBundles()
		if err != nil {
			return nil, err
		}
		if err := router.UpdateRevocations(crl, url); err != nil {
			return nil, err
		}
		b, err := router.Beacon()
		if err != nil {
			return nil, err
		}
		out[size] = len(b.Marshal())
	}
	return out, nil
}
