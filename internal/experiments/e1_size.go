package experiments

import (
	"crypto/rand"
	"fmt"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/sgs"
)

// E1SizeReport reproduces the paper's communication-overhead claim
// (Section V.C): a PEACE group signature is 2 G1 elements + 5 Z_p scalars;
// with the paper's 170/171-bit parameterization that is 1,192 bits —
// "almost the same as a standard RSA-1024 signature" (1,024 bits).
type E1SizeReport struct {
	// MeasuredSignatureBytes is the wire size on this repo's BN256 curve.
	MeasuredSignatureBytes int
	// MeasuredSignatureBits excludes the 1-byte mode tag for a fair
	// element-count comparison.
	MeasuredSignatureBits int
	// PaperSignatureBits is 2·171 + 5·170 = 1192.
	PaperSignatureBits int
	// RSA1024Bits is the baseline the paper compares against.
	RSA1024Bits int
	// ECDSAP256Bits is the size of the conventional signature PEACE uses
	// for routers (~72 bytes DER, reported as 576 bits nominal max).
	ECDSAP256Bits int
	// MessageSizes lists the marshaled sizes of each AKA message.
	MessageSizes map[string]int
}

// RunE1Size measures the signature and protocol message sizes.
func RunE1Size() (*E1SizeReport, error) {
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	key, err := iss.IssueKey(rand.Reader, grp)
	if err != nil {
		return nil, err
	}
	sig, err := sgs.Sign(rand.Reader, iss.PublicKey(), key, []byte("size probe"))
	if err != nil {
		return nil, err
	}

	rep := &E1SizeReport{
		MeasuredSignatureBytes: len(sig.Bytes()),
		MeasuredSignatureBits:  (len(sig.Bytes()) - 1) * 8,
		PaperSignatureBits:     sgs.PaperSignatureBits(),
		RSA1024Bits:            1024,
		ECDSAP256Bits:          576,
		MessageSizes:           map[string]int{},
	}

	// Element-size sanity for the formula: 2·|G1| + 5·|Z_p|.
	wantBits := (2*bn256.G1Size + 5*32) * 8
	if rep.MeasuredSignatureBits != wantBits {
		return nil, fmt.Errorf("e1: measured %d bits, formula gives %d", rep.MeasuredSignatureBits, wantBits)
	}

	// Marshaled AKA message sizes on this parameterization.
	f, err := newFixture(1, 1)
	if err != nil {
		return nil, err
	}
	m1, m2, m3, us, _, err := f.handshake(f.users[0], "grp-0")
	if err != nil {
		return nil, err
	}
	rep.MessageSizes["M.1 beacon"] = len(m1.Marshal())
	rep.MessageSizes["M.2 access request"] = len(m2.Marshal())
	rep.MessageSizes["M.3 confirm"] = len(m3.Marshal())
	frame, err := us.SealData(rand.Reader, make([]byte, 64))
	if err != nil {
		return nil, err
	}
	rep.MessageSizes["data frame (64B payload)"] = len(frame.Marshal())
	return rep, nil
}
