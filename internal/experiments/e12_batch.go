package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/sgs"
)

// E12SweepRow is the revocation-sweep latency at one worker count.
type E12SweepRow struct {
	Workers  int
	PerToken time.Duration
}

// E12BatchReport records the batch-verification pipeline measurements:
// per-signature latency through the plain Verify path versus the
// Verifier.BatchVerify pipeline (shared Miller squaring chain, fixed-base
// tables, per-worker scratch), plus the parallel URL sweep at several
// worker counts.
type E12BatchReport struct {
	BatchSize     int
	SequentialPer time.Duration
	BatchPer      time.Duration
	Speedup       float64
	URLSize       int
	Sweep         []E12SweepRow
}

// RunE12Batch measures a burst of batchSize signatures (distinct signers,
// distinct messages — the router's worst case) verified one-by-one and then
// through the batch pipeline, and the revocation sweep over urlSize tokens.
func RunE12Batch(batchSize, urlSize, iters int) (*E12BatchReport, error) {
	if iters < 1 {
		iters = 1
	}
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return nil, err
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		return nil, err
	}
	nKeys := batchSize
	if urlSize+1 > nKeys {
		nKeys = urlSize + 1
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, nKeys)
	if err != nil {
		return nil, err
	}
	pub := iss.PublicKey()

	items := make([]sgs.BatchItem, batchSize)
	for i := range items {
		msg := []byte(fmt.Sprintf("e12 access request %d", i))
		sig, err := sgs.Sign(rand.Reader, pub, keys[i], msg)
		if err != nil {
			return nil, err
		}
		items[i] = sgs.BatchItem{Msg: msg, Sig: sig}
	}

	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, item := range items {
			if err := sgs.Verify(pub, item.Msg, item.Sig); err != nil {
				return nil, err
			}
		}
	}
	seqPer := time.Since(start) / time.Duration(iters*batchSize)

	ver := sgs.NewVerifier(pub)
	start = time.Now()
	for it := 0; it < iters; it++ {
		for i, err := range ver.BatchVerify(items) {
			if err != nil {
				return nil, fmt.Errorf("batch slot %d: %w", i, err)
			}
		}
	}
	batchPer := time.Since(start) / time.Duration(iters*batchSize)

	rep := &E12BatchReport{
		BatchSize:     batchSize,
		SequentialPer: seqPer,
		BatchPer:      batchPer,
		Speedup:       float64(seqPer) / float64(batchPer),
		URLSize:       urlSize,
	}

	// Revocation sweep: the signer is not on the URL, so every token is
	// scanned (worst case).
	tokens := make([]*sgs.RevocationToken, 0, urlSize)
	for _, k := range keys[1 : urlSize+1] {
		tokens = append(tokens, k.Token())
	}
	for _, workers := range []int{1, 2, 4} {
		start = time.Now()
		for it := 0; it < iters; it++ {
			if revoked, _ := ver.SweepURLWorkers(items[0].Msg, items[0].Sig, tokens, workers); revoked {
				return nil, fmt.Errorf("sweep with %d workers: unrevoked signer flagged", workers)
			}
		}
		rep.Sweep = append(rep.Sweep, E12SweepRow{
			Workers:  workers,
			PerToken: time.Since(start) / time.Duration(iters*urlSize),
		})
	}
	return rep, nil
}
