package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/mesh"
	"github.com/peace-mesh/peace/internal/revocation"
)

// E8AttackRow is the outcome of one attack scenario from Section V.A.
type E8AttackRow struct {
	Scenario string
	// Attempts is how many adversarial actions were launched.
	Attempts int
	// Succeeded is how many achieved their goal (0 everywhere if PEACE
	// holds).
	Succeeded int
	// Detail is a one-line explanation of what was measured.
	Detail string
}

// RunE8Attacks executes every attack scenario and reports outcomes.
func RunE8Attacks() ([]E8AttackRow, error) {
	var out []E8AttackRow

	// --- Scenario 1: outsider bogus-data injection. -------------------
	{
		d, err := mesh.NewDeployment(mesh.DeploymentSpec{Seed: 81, Groups: 1, KeysPerGroup: 4, Routers: 1})
		if err != nil {
			return nil, err
		}
		if _, err := d.AddUser("honest", core.GroupID("grp-0"), "MR-0", true); err != nil {
			return nil, err
		}
		hop := mesh.Link{Latency: time.Millisecond}
		d.Net.Connect("honest", "MR-0", hop)
		attacker := mesh.NewInjector(d.Net, "outsider", "MR-0")
		d.Net.Connect("outsider", "MR-0", hop)

		d.Routers["MR-0"].StartBeacons(100*time.Millisecond, 2)
		d.Net.RunFor(200 * time.Millisecond)
		attacker.Flood(20, time.Millisecond)
		d.Net.RunFor(10 * time.Second)

		st := d.Routers["MR-0"].Router().Stats()
		// Success for the attacker = established sessions beyond the
		// honest user's.
		out = append(out, E8AttackRow{
			Scenario:  "outsider bogus injection",
			Attempts:  attacker.Sent,
			Succeeded: st.SessionsEstablished - 1,
			Detail:    "forged M.2s rejected by group-signature verification",
		})
	}

	// --- Scenario 2: revoked user re-entry. ----------------------------
	{
		f, err := newFixture(1, 2)
		if err != nil {
			return nil, err
		}
		victim := f.users[0]
		tok, err := f.no.TokenOf("grp-0", 0)
		if err != nil {
			return nil, err
		}
		f.no.RevokeUserKey(tok)
		if err := f.pushRevocations(); err != nil {
			return nil, err
		}

		succeeded := 0
		attempts := 3
		for i := 0; i < attempts; i++ {
			b, err := f.router.Beacon()
			if err != nil {
				return nil, err
			}
			m2, err := victim.HandleBeacon(b, "grp-0")
			if err != nil {
				return nil, err
			}
			if _, _, err := f.router.HandleAccessRequest(m2); err == nil {
				succeeded++
			} else if !errors.Is(err, core.ErrRevokedUser) {
				return nil, err
			}
		}
		out = append(out, E8AttackRow{
			Scenario:  "revoked user re-entry",
			Attempts:  attempts,
			Succeeded: succeeded,
			Detail:    "URL scan (Eq.3) catches the revoked token",
		})
	}

	// --- Scenario 3: rogue (phishing) router. --------------------------
	{
		d, err := mesh.NewDeployment(mesh.DeploymentSpec{Seed: 83, Groups: 1, KeysPerGroup: 6, Routers: 1})
		if err != nil {
			return nil, err
		}
		hop := mesh.Link{Latency: time.Millisecond}
		for _, id := range []mesh.NodeID{"a", "b", "c"} {
			if _, err := d.AddUser(id, core.GroupID("grp-0"), "MR-0", true); err != nil {
				return nil, err
			}
			d.Net.Connect(id, "MR-0", hop)
			d.Net.Connect(id, "MR-phish", hop)
		}
		// The phisher replays epoch refs captured from legitimate beacons.
		legit := d.Routers["MR-0"].Router()
		urlSnap, ok := legit.RevocationSnapshot(revocation.ListURL)
		if !ok {
			return nil, fmt.Errorf("e8: router has no URL snapshot")
		}
		crlSnap, ok := legit.RevocationSnapshot(revocation.ListCRL)
		if !ok {
			return nil, fmt.Errorf("e8: router has no CRL snapshot")
		}
		rogue, err := mesh.NewRogueRouter(d.Net, "MR-phish", urlSnap.Ref(), crlSnap.Ref())
		if err != nil {
			return nil, err
		}
		attempts := 5
		for i := 0; i < attempts; i++ {
			d.Net.Schedule(time.Duration(i)*100*time.Millisecond, func() {
				_ = rogue.BroadcastPhishingBeacon()
			})
		}
		d.Net.RunFor(10 * time.Second)
		out = append(out, E8AttackRow{
			Scenario:  "rogue router phishing",
			Attempts:  attempts,
			Succeeded: min(rogue.Lured, attempts),
			Detail:    "self-signed certificate fails NPK validation in Step 2.1",
		})
	}

	// --- Scenario 4: revoked router service. ---------------------------
	{
		f, err := newFixture(1, 1)
		if err != nil {
			return nil, err
		}
		f.no.RevokeRouter("MR-0")
		if err := f.pushRevocations(); err != nil {
			return nil, err
		}
		b, err := f.router.Beacon()
		if err != nil {
			return nil, err
		}
		succeeded := 0
		if _, err := f.users[0].HandleBeacon(b, "grp-0"); err == nil {
			succeeded++
		}
		out = append(out, E8AttackRow{
			Scenario:  "revoked router service",
			Attempts:  1,
			Succeeded: succeeded,
			Detail:    "CRL check rejects the revoked certificate",
		})
	}

	// --- Scenario 5: transcript replay. --------------------------------
	{
		f, err := newFixture(1, 1)
		if err != nil {
			return nil, err
		}
		_, m2, _, _, _, err := f.handshake(f.users[0], "grp-0")
		if err != nil {
			return nil, err
		}
		// Replay the same M.2 after the window.
		f.clock.Advance(5 * time.Minute)
		succeeded := 0
		if _, _, err := f.router.HandleAccessRequest(m2); err == nil {
			succeeded++
		}
		out = append(out, E8AttackRow{
			Scenario:  "stale M.2 replay",
			Attempts:  1,
			Succeeded: succeeded,
			Detail:    "timestamp freshness window rejects the replay",
		})
	}

	return out, nil
}
