package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
)

// fixture is a minimal provisioned deployment for the crypto-level
// experiments: one operator, one TTP, groups with enrolled users, one
// certified router.
type fixture struct {
	cfg    core.Config
	clock  *core.FixedClock
	no     *core.NetworkOperator
	ttp    *core.TTP
	gms    []*core.GroupManager
	users  []*core.User
	router *core.MeshRouter
}

// newFixture provisions groups×usersPerGroup users. Extra key slots are
// issued so experiments can revoke without exhausting capacity.
func newFixture(groups, usersPerGroup int) (*fixture, error) {
	clock := &core.FixedClock{T: time.Unix(1751600000, 0)}
	cfg := core.Config{Clock: clock, FreshnessWindow: time.Minute, PuzzleDifficulty: 8}

	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		return nil, err
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		return nil, err
	}
	f := &fixture{cfg: cfg, clock: clock, no: no, ttp: ttp}

	for gi := 0; gi < groups; gi++ {
		gid := core.GroupID(fmt.Sprintf("grp-%d", gi))
		gm, err := core.NewGroupManager(cfg, gid, no.Authority())
		if err != nil {
			return nil, err
		}
		if err := no.RegisterUserGroup(gm, ttp, usersPerGroup+2); err != nil {
			return nil, err
		}
		f.gms = append(f.gms, gm)

		for ui := 0; ui < usersPerGroup; ui++ {
			u, err := core.NewUser(cfg, core.Identity{
				Essential:  core.UserID(fmt.Sprintf("user-%s-%d", gid, ui)),
				Attributes: []core.Attribute{{Group: gid, Role: "member"}},
			}, no.Authority(), no.GroupPublicKey())
			if err != nil {
				return nil, err
			}
			if err := core.EnrollUser(u, gm, ttp); err != nil {
				return nil, err
			}
			f.users = append(f.users, u)
		}
	}

	r, err := core.NewMeshRouter(cfg, "MR-0", no.Authority(), no.GroupPublicKey())
	if err != nil {
		return nil, err
	}
	c, err := no.EnrollRouter("MR-0", r.Public())
	if err != nil {
		return nil, err
	}
	r.SetCertificate(c)
	f.router = r
	if err := f.pushRevocations(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *fixture) pushRevocations() error {
	crl, url, err := f.no.RevocationBundles()
	if err != nil {
		return err
	}
	if err := f.router.UpdateRevocations(crl, url); err != nil {
		return err
	}
	for _, u := range f.users {
		for _, snap := range []*revocation.Snapshot{crl.Snapshot, url.Snapshot} {
			if err := u.InstallRevocationSnapshot(snap); err != nil && !errors.Is(err, revocation.ErrRollback) {
				return err
			}
		}
	}
	return nil
}

// handshake runs one full AKA and returns all three messages plus both
// session halves.
func (f *fixture) handshake(u *core.User, group core.GroupID) (*core.Beacon, *core.AccessRequest, *core.AccessConfirm, *core.Session, *core.Session, error) {
	b, err := f.router.Beacon()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	m2, err := u.HandleBeacon(b, group)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	m3, rs, err := f.router.HandleAccessRequest(m2)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	us, err := u.HandleAccessConfirm(m3)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	return b, m2, m3, us, rs, nil
}
