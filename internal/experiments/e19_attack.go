package experiments

import (
	"time"

	"github.com/peace-mesh/peace/internal/chaos"
)

// E19AttackRow is one point of the attach-latency-vs-attack-intensity
// sweep: Intensity spoofed sources flood the attach ingress at full rate
// while sequential legitimate attaches are timed against the live
// adaptive puzzle defense.
type E19AttackRow struct {
	Intensity       int
	Samples         int
	Attached        int
	P50             time.Duration
	P99             time.Duration
	PeakDifficulty  uint8
	FloodDatagrams  int64
	PuzzlesVerified int64
}

// RunE19AttackLatency measures legitimate-client attach latency across
// attack intensities over real UDP loopback: the calm baseline pays no
// puzzle, attacked points pay the demanded difficulty plus the flood's
// queueing — the graceful-degradation price of the paper's Section V.A
// defense.
func RunE19AttackLatency(intensities []int, iters int) ([]E19AttackRow, error) {
	if iters < 1 {
		iters = 1
	}
	rows := make([]E19AttackRow, 0, len(intensities))
	for _, intensity := range intensities {
		rep, err := chaos.RunAttackLatency(chaos.AttackLatencyConfig{
			Intensity: intensity,
			Samples:   8 * iters,
			Seed:      19,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, E19AttackRow{
			Intensity:       rep.Intensity,
			Samples:         rep.Samples,
			Attached:        rep.Attached,
			P50:             rep.P50,
			P99:             rep.P99,
			PeakDifficulty:  rep.PeakDifficulty,
			FloodDatagrams:  rep.FloodDatagrams,
			PuzzlesVerified: rep.PuzzlesVerified,
		})
	}
	return rows, nil
}
