package experiments

import (
	"github.com/peace-mesh/peace/internal/bn256"
)

// E14FieldCoreRow is one primitive timed on both arithmetic cores: the
// retained big.Int reference implementation ("before") and the Montgomery
// fixed-limb core ("after").
type E14FieldCoreRow struct {
	Name    string
	RefNs   int64
	LimbNs  int64
	Speedup float64
}

// RunE14FieldCore measures the before/after cost of the primitives that
// dominate the protocol (pairing, group exponentiations, hash-to-G1)
// across the two field cores. The reference core is unexported inside
// bn256, so the raw measurement lives there; this experiment reports it.
func RunE14FieldCore(iters int) ([]E14FieldCoreRow, error) {
	rows := bn256.FieldCoreComparison(iters)
	out := make([]E14FieldCoreRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, E14FieldCoreRow{
			Name:    r.Name,
			RefNs:   r.RefNs,
			LimbNs:  r.LimbNs,
			Speedup: r.Speedup,
		})
	}
	return out, nil
}
