// Package experiments implements the reproduction of every quantitative
// claim in the paper's evaluation (Section V), one experiment per claim,
// as catalogued in DESIGN.md §3 and EXPERIMENTS.md. Each experiment
// returns a structured report; the cmd/peacebench tool renders them as
// tables, and the repository-level benchmarks (bench_test.go) re-measure
// the hot paths under testing.B.
//
// Experiments:
//
//	E1  signature length versus RSA-1024 (communication overhead)
//	E2  sign/verify operation counts versus the paper's formulas
//	E3  verification cost versus |URL|; linear versus fast revocation
//	E4  three-message AKA over the simulated mesh: delay and bytes
//	E5  hybrid session authentication: group signature versus MAC
//	E6  DoS flooding with and without client puzzles
//	E7  operator audit cost versus |grt|, plus a full law-authority trace
//	E8  attack-resilience scenarios (bogus injection, phishing, revoked entities)
//	E9  privacy properties (anonymity, unlinkability, split-knowledge)
//	E10 pairing-substrate microbenchmarks
package experiments
