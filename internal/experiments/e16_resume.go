package experiments

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/chaos"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/transport"
)

// E16ShardRow is one row of the shard sweep: sustained ticket-resume
// throughput with the server ingest split across Shards read loops.
type E16ShardRow struct {
	Shards        int
	Resumes       int
	Elapsed       time.Duration
	ResumesPerSec float64
}

// E16ResumeReport is the session-resumption evaluation: the latency of a
// full M.1–M.3 attach vs a ticket resume (the pairing leaves the re-attach
// hot path), resume throughput vs shard count, resident memory of the
// router's session table, and the restart-soak economics.
type E16ResumeReport struct {
	// FullP50/ResumeP50 are median single-client re-attach latencies over
	// real UDP loopback; SpeedupX is their ratio.
	FullP50   time.Duration
	ResumeP50 time.Duration
	SpeedupX  float64

	ShardRows []E16ShardRow

	// SessionsMeasured sessions were bulk-adopted into a fresh router's
	// sharded table; BytesPerSession is the heap delta per session and
	// MemPer100kSessions the extrapolated resident cost of 100k.
	SessionsMeasured   int
	BytesPerSession    int64
	MemPer100kSessions int64

	// Restart-soak summary (see chaos.RunRestartSoak): FullHandshakes must
	// stay at one per client across SoakRestarts restarts.
	SoakUsers          int
	SoakRestarts       int
	SoakFullHandshakes int64
	SoakResumes        int64

	// NumCPU qualifies the shard rows: on a single-core runner the sweep
	// cannot show parallel speedup, only that sharding does not regress.
	NumCPU int
}

// RunE16Resume measures the resumption subsystem end to end over real UDP
// loopback sockets.
func RunE16Resume(shardCounts []int, iters int) (*E16ResumeReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &E16ResumeReport{NumCPU: runtime.NumCPU()}

	// --- Latency: full attach vs ticket resume, one client, serial. ---
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-E16", "grp-e16", 1)
	if err != nil {
		return nil, err
	}
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := transport.NewServer(serverConn, ln.Router, transport.ServerConfig{BootEpoch: 1})
	defer srv.Close()

	clientConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer clientConn.Close()
	cl := transport.NewClient(clientConn, srv.Addr(), ln.Users[0], transport.ClientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	nLat := 5 * iters
	fulls := make([]time.Duration, 0, nLat)
	for i := 0; i < nLat; i++ {
		start := time.Now()
		if _, err := cl.Attach(ctx); err != nil {
			return nil, fmt.Errorf("e16 full attach %d: %w", i, err)
		}
		fulls = append(fulls, time.Since(start))
	}
	resumes := make([]time.Duration, 0, 4*nLat)
	for i := 0; i < 4*nLat; i++ {
		start := time.Now()
		if _, err := cl.Resume(ctx); err != nil {
			return nil, fmt.Errorf("e16 resume %d: %w", i, err)
		}
		resumes = append(resumes, time.Since(start))
	}
	rep.FullP50 = median(fulls)
	rep.ResumeP50 = median(resumes)
	if rep.ResumeP50 > 0 {
		rep.SpeedupX = float64(rep.FullP50) / float64(rep.ResumeP50)
	}

	// --- Throughput: sustained resumes/s vs shard count. ---
	for _, shards := range shardCounts {
		row, err := e16ShardThroughput(shards, iters)
		if err != nil {
			return nil, err
		}
		rep.ShardRows = append(rep.ShardRows, *row)
	}

	// --- Memory: resident cost of the sharded session table. ---
	rep.SessionsMeasured = 100_000
	rep.BytesPerSession = e16SessionTableBytes(ln, rep.SessionsMeasured)
	rep.MemPer100kSessions = rep.BytesPerSession * 100_000

	// --- Restart soak: the fleet re-attaches via tickets only. ---
	soak, err := chaos.RunRestartSoak(chaos.RestartSoakConfig{Users: 8, Restarts: 2, Seed: 16})
	if err != nil {
		return nil, err
	}
	if soak.Failed() {
		return nil, fmt.Errorf("e16 restart soak violated invariants: %v", soak.Violations)
	}
	rep.SoakUsers = soak.Users
	rep.SoakRestarts = soak.Restarts
	rep.SoakFullHandshakes = soak.FullHandshakes
	rep.SoakResumes = soak.Resumes
	return rep, nil
}

// e16ShardThroughput hammers a sharded server with concurrent ticket
// resumes for a fixed window and reports the sustained rate.
func e16ShardThroughput(shards, iters int) (*E16ShardRow, error) {
	const fleet = 8
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-E16S", "grp-e16s", fleet)
	if err != nil {
		return nil, err
	}
	conns, err := transport.ListenShards("127.0.0.1:0", shards)
	if err != nil {
		return nil, err
	}
	srv := transport.NewShardedServer(conns, ln.Router, transport.ServerConfig{BootEpoch: 1, Shards: shards})
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The whole fleet registers into one client registry; the row's resume
	// count is the registry's resume_successes counter, not a sidecar
	// accumulator.
	reg := metrics.NewRegistry()
	clients := make([]*transport.Client, fleet)
	for i := 0; i < fleet; i++ {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		clients[i] = transport.NewClient(conn, srv.Addr(), ln.Users[i], transport.ClientConfig{Seed: int64(i) + 1, Metrics: reg})
		if _, err := clients[i].Attach(ctx); err != nil {
			return nil, fmt.Errorf("e16 shard=%d attach %d: %w", shards, i, err)
		}
	}

	window := time.Duration(iters) * 500 * time.Millisecond
	var firstErr atomic.Value
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(cl *transport.Client) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := cl.Resume(ctx); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(clients[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, fmt.Errorf("e16 shard=%d resume: %w", shards, err)
	}
	row := &E16ShardRow{Shards: srv.Shards(), Resumes: int(reg.Snapshot().Value("resume_successes")), Elapsed: elapsed}
	if elapsed > 0 {
		row.ResumesPerSec = float64(row.Resumes) / elapsed.Seconds()
	}
	return row, nil
}

// e16SessionTableBytes bulk-adopts n resumed sessions into a fresh
// router's sharded table and returns the heap bytes each one costs.
func e16SessionTableBytes(ln *transport.LocalNetwork, n int) int64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	secret := make([]byte, core.ResumeSecretSize)
	cn := make([]byte, 16)
	sn := make([]byte, 16)
	now := time.Unix(1751600000, 0)
	sessions := make([]*core.Session, 0, n)
	var prev core.SessionID
	for i := 0; i < n; i++ {
		cn[0], cn[1], cn[2] = byte(i), byte(i>>8), byte(i>>16)
		sess := core.ResumeSession(prev, secret, cn, sn, "user", now)
		ln.Router.AdoptResumedSession(sess, nil)
		sessions = append(sessions, sess)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perSession := int64(after.HeapAlloc-before.HeapAlloc) / int64(n)
	runtime.KeepAlive(sessions)
	return perSession
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}
