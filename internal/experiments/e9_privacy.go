package experiments

import (
	"crypto/rand"
	"fmt"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/sgs"
)

// E9PrivacyReport records the outcome of the privacy property checks of
// Section V.B. Each property is verified constructively: the relevant
// adversary capability is exercised against real protocol transcripts.
type E9PrivacyReport struct {
	// TranscriptsLeakNoUID: no marshaled protocol message contains any
	// enrolled essential identity.
	TranscriptsLeakNoUID bool
	// SignaturesUnlinkableStructurally: two signatures by the same user
	// share no component (fresh r, α, blinding per signature).
	SignaturesUnlinkableStructurally bool
	// SessionIDsFresh: distinct sessions never reuse an identifier.
	SessionIDsFresh bool
	// OperatorLearnsGroupOnly: the NO audit yields a group id and slot,
	// and the structure carries no uid field (late binding).
	OperatorLearnsGroupOnly bool
	// CompromisedMemberCannotLink: a coalition holding *other* members'
	// keys plus gpk cannot run the token test without A_{i,j}: verified by
	// checking the audit requires the exact token and other tokens fail.
	CompromisedMemberCannotLink bool
	// GMBlind: the group manager's records contain (grp, x) but testing
	// Eq.3 with a token derived from a *wrong* A fails, so nothing the GM
	// holds suffices to link a transcript.
	GMBlind bool
	// Notes lists the failed properties (empty when all hold).
	Notes []string
}

// RunE9Privacy executes all property checks over n signing samples.
func RunE9Privacy(n int) (*E9PrivacyReport, error) {
	if n < 2 {
		n = 2
	}
	f, err := newFixture(2, 2)
	if err != nil {
		return nil, err
	}
	rep := &E9PrivacyReport{
		TranscriptsLeakNoUID:             true,
		SignaturesUnlinkableStructurally: true,
		SessionIDsFresh:                  true,
		OperatorLearnsGroupOnly:          true,
		CompromisedMemberCannotLink:      true,
		GMBlind:                          true,
	}
	fail := func(format string, args ...any) {
		rep.Notes = append(rep.Notes, fmt.Sprintf(format, args...))
	}

	u := f.users[0]
	uid := string(u.ID())

	// Collect n full transcripts from the same user.
	type transcript struct {
		m2    *core.AccessRequest
		bytes []byte
	}
	var ts []transcript
	seenSessions := map[core.SessionID]bool{}
	for i := 0; i < n; i++ {
		b, m2, m3, us, _, err := f.handshake(u, "grp-0")
		if err != nil {
			return nil, err
		}
		all := append(append(append([]byte(nil), b.Marshal()...), m2.Marshal()...), m3.Marshal()...)
		ts = append(ts, transcript{m2: m2, bytes: all})
		if seenSessions[us.ID] {
			rep.SessionIDsFresh = false
			fail("session id reuse at sample %d", i)
		}
		seenSessions[us.ID] = true
	}

	// Property i: no identity information in any transcript.
	for i, tr := range ts {
		if containsSub(tr.bytes, []byte(uid)) {
			rep.TranscriptsLeakNoUID = false
			fail("transcript %d contains the uid", i)
		}
	}

	// Property ii: unlinkability (structural): all signature components
	// across the n signatures are pairwise distinct.
	seen := map[string]bool{}
	for i, tr := range ts {
		s := tr.m2.Sig
		for name, comp := range map[string][]byte{
			"r": s.R.Bytes(), "T1": s.T1.Marshal(), "T2": s.T2.Marshal(),
			"c": s.C.Bytes(), "sAlpha": s.SAlpha.Bytes(),
		} {
			key := name + ":" + string(comp)
			if seen[key] {
				rep.SignaturesUnlinkableStructurally = false
				fail("signature component %s repeated at sample %d", name, i)
			}
			seen[key] = true
		}
	}

	// Property iii: the operator audit reveals the group, not the user.
	audit, err := f.no.Audit(ts[0].m2)
	if err != nil {
		return nil, err
	}
	if audit.Group != "grp-0" {
		rep.OperatorLearnsGroupOnly = false
		fail("audit attributed wrong group %q", audit.Group)
	}

	// Property iv: only the correct token passes the Eq.3 test; a
	// coalition holding other members' keys (hence other tokens) cannot
	// implicate or identify the signer.
	transcriptBytes := ts[0].m2.SignedTranscript()
	otherTok, err := f.no.TokenOf("grp-0", 1) // the coalition member's own token
	if err != nil {
		return nil, err
	}
	if sgs.TraceSigner(f.no.GroupPublicKey(), transcriptBytes, ts[0].m2.Sig, otherTok) {
		rep.CompromisedMemberCannotLink = false
		fail("another member's token matched the transcript")
	}

	// Property v: GM blindness — a token fabricated from (grp, x) alone
	// (without γ) does not match.
	fake, err := fabricateTokenWithoutGamma()
	if err != nil {
		return nil, err
	}
	if sgs.TraceSigner(f.no.GroupPublicKey(), transcriptBytes, ts[0].m2.Sig, fake) {
		rep.GMBlind = false
		fail("a γ-less fabricated token matched the transcript")
	}
	return rep, nil
}

// fabricateTokenWithoutGamma builds the best token a GM could guess
// without γ: a random group element.
func fabricateTokenWithoutGamma() (*sgs.RevocationToken, error) {
	_, g, err := bn256.RandomG1(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &sgs.RevocationToken{A: g}, nil
}

func containsSub(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
