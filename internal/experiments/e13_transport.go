package experiments

import (
	"time"

	"github.com/peace-mesh/peace/internal/transport"
)

// E13TransportRow is one loopback handshake run at a given concurrency
// and loss rate.
type E13TransportRow struct {
	Users            int
	Loss             float64
	Established      int
	Failed           int
	Elapsed          time.Duration
	HandshakesPerSec float64
	P50              time.Duration
	P99              time.Duration
	Retransmits      int64
	DatagramsDropped int64
}

// E13TransportReport measures the real-UDP datapath: N concurrent users
// driving full M.1–M.3 over loopback sockets, lossless and with induced
// datagram loss, so the cost of the retransmission machinery is visible
// next to the clean-path throughput.
type E13TransportReport struct {
	Rows []E13TransportRow
}

// RunE13Transport runs the loopback handshake sweep. Each point
// provisions its own network so router state never carries across runs.
func RunE13Transport(userCounts []int, losses []float64) (*E13TransportReport, error) {
	rep := &E13TransportReport{}
	for _, users := range userCounts {
		for _, loss := range losses {
			lb, err := transport.RunLoopback(transport.LoopbackConfig{
				Users: users,
				Loss:  loss,
				Seed:  1,
			})
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, E13TransportRow{
				Users:            users,
				Loss:             loss,
				Established:      lb.Established,
				Failed:           lb.Failed,
				Elapsed:          lb.Elapsed,
				HandshakesPerSec: lb.HandshakesPerSec,
				P50:              lb.P50,
				P99:              lb.P99,
				Retransmits:      lb.ClientRetransmits,
				DatagramsDropped: lb.DatagramsDropped,
			})
		}
	}
	return rep, nil
}
