package experiments

import (
	"crypto/rand"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
)

// E10PrimitiveRow is one primitive's measured latency.
type E10PrimitiveRow struct {
	Name string
	Time time.Duration
}

// RunE10Primitives times the pairing substrate: the raw costs behind the
// exponentiation/pairing counts of E2 and E3.
func RunE10Primitives(iters int) ([]E10PrimitiveRow, error) {
	if iters < 1 {
		iters = 1
	}
	k, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return nil, err
	}
	g1 := new(bn256.G1).ScalarBaseMult(k)
	g2 := new(bn256.G2).Base()
	gt := new(bn256.GT).Base()
	msg := []byte("primitive probe")

	timeIt := func(name string, fn func()) E10PrimitiveRow {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		return E10PrimitiveRow{Name: name, Time: time.Since(start) / time.Duration(iters)}
	}

	rows := []E10PrimitiveRow{
		timeIt("pairing e(P,Q)", func() { bn256.Pair(g1, g2) }),
		timeIt("G1 exponentiation", func() { new(bn256.G1).ScalarBaseMult(k) }),
		timeIt("G2 exponentiation", func() { new(bn256.G2).ScalarBaseMult(k) }),
		timeIt("GT exponentiation", func() { new(bn256.GT).ScalarMult(gt, k) }),
		timeIt("hash-to-G1", func() { bn256.HashToG1(msg) }),
		timeIt("hash-to-G2", func() { bn256.HashToG2(msg) }),
		timeIt("hash-to-scalar", func() { bn256.HashToScalar(msg) }),
	}
	return rows, nil
}
