package experiments

import (
	"testing"
	"time"
)

func TestE1SignatureSize(t *testing.T) {
	rep, err := RunE1Size()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PaperSignatureBits != 1192 {
		t.Errorf("paper bits = %d, want 1192", rep.PaperSignatureBits)
	}
	// 2·G1 + 5·Zp on BN256 = 2·512 + 5·256 = 2304 bits.
	if rep.MeasuredSignatureBits != 2304 {
		t.Errorf("measured bits = %d, want 2304", rep.MeasuredSignatureBits)
	}
	// Shape check from the paper: group signature ≈ RSA-1024 under the
	// paper's parameterization (within 20%).
	ratio := float64(rep.PaperSignatureBits) / float64(rep.RSA1024Bits)
	if ratio < 1.0 || ratio > 1.25 {
		t.Errorf("paper-parameterization ratio vs RSA-1024 = %.2f, want ≈1.16", ratio)
	}
	for _, k := range []string{"M.1 beacon", "M.2 access request", "M.3 confirm"} {
		if rep.MessageSizes[k] == 0 {
			t.Errorf("message size for %q missing", k)
		}
	}
	// M.2 is dominated by the group signature.
	if rep.MessageSizes["M.2 access request"] < rep.MeasuredSignatureBytes {
		t.Error("M.2 smaller than the signature it carries")
	}
}

func TestE2OpCounts(t *testing.T) {
	rep, err := RunE2OpCounts(3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SignMatches {
		t.Errorf("sign counts %+v do not match paper (8 exp, 2 pairings)", rep.Sign)
	}
	if !rep.VerifyMatches {
		t.Errorf("verify counts %+v do not match paper (6 exp, 3 pairings)", rep.Verify)
	}
	// With |URL| = 3 the total pairings should be 2 (verify) + 2 (derive
	// is exps) ... paper formula: 3 + 2·|URL| with the cached e(g1,g2) as
	// one of the 3.
	wantPairings := 2 + 2*rep.URLSize
	if rep.VerifyWithURL.Pairings != wantPairings {
		t.Errorf("verify+URL pairings = %d, want %d", rep.VerifyWithURL.Pairings, wantPairings)
	}
}

func TestE3RevocationSweepShape(t *testing.T) {
	pts, err := RunE3RevocationSweep([]int{0, 2, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Pairing counts follow the paper's formulas exactly.
	for _, pt := range pts {
		if want := 2 + 2*pt.URLSize; pt.LinearPairings != want {
			t.Errorf("|URL|=%d: linear pairings = %d, want %d", pt.URLSize, pt.LinearPairings, want)
		}
		if pt.FastPairings != 5 {
			t.Errorf("|URL|=%d: fast pairings = %d, want 5", pt.URLSize, pt.FastPairings)
		}
	}
	// Shape: linear time grows with |URL|; fast time stays flat-ish.
	if pts[2].LinearTime <= pts[0].LinearTime {
		t.Error("linear revocation time did not grow with |URL|")
	}
	if pts[2].FastTime > 3*pts[0].FastTime {
		t.Errorf("fast revocation time grew with |URL|: %v → %v", pts[0].FastTime, pts[2].FastTime)
	}
	// Crossover: by |URL| = 6 the fast variant must win.
	if pts[2].FastTime >= pts[2].LinearTime {
		t.Errorf("fast variant no faster at |URL|=6: fast=%v linear=%v", pts[2].FastTime, pts[2].LinearTime)
	}
}

func TestE4HandshakeShape(t *testing.T) {
	rep, err := RunE4Handshake(3, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ThreeMessages {
		t.Error("three-message property not observed")
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Delay grows linearly: hop h costs 2·h·5ms.
	for _, row := range rep.Rows {
		want := time.Duration(2*row.Hops) * 5 * time.Millisecond
		if row.AttachDelay != want {
			t.Errorf("hop %d delay = %v, want %v", row.Hops, row.AttachDelay, want)
		}
	}
}

func TestE5HybridShape(t *testing.T) {
	rep, err := RunE5Hybrid(64)
	if err != nil {
		t.Fatal(err)
	}
	// The hybrid design's whole point: MAC auth must be at least 1000×
	// cheaper than group-signature verification.
	if rep.SpeedupAuth < 1000 {
		t.Errorf("MAC speedup only %.0f×; expected orders of magnitude", rep.SpeedupAuth)
	}
	if rep.MACVerifyTime <= 0 || rep.GroupVerifyTime <= 0 {
		t.Error("degenerate timings")
	}
}

func TestE6DoSShape(t *testing.T) {
	rows, err := RunE6DoS([]int{20})
	if err != nil {
		t.Fatal(err)
	}
	var off, on E6DoSRow
	for _, r := range rows {
		if r.PuzzlesEnabled {
			on = r
		} else {
			off = r
		}
	}
	if !off.LegitimateAttached || !on.LegitimateAttached {
		t.Error("legitimate user failed to attach")
	}
	// Defense must slash expensive work by at least 10×.
	if on.ExpensiveVerifications*10 > off.ExpensiveVerifications {
		t.Errorf("puzzles did not shed the flood: off=%d on=%d",
			off.ExpensiveVerifications, on.ExpensiveVerifications)
	}
	if on.ShedCheaply < 20 {
		t.Errorf("cheap sheds = %d, want ≥ flood size", on.ShedCheaply)
	}
}

func TestE7AuditShape(t *testing.T) {
	pts, err := RunE7AuditSweep([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].TokensScanned != 4 || pts[1].TokensScanned != 16 {
		t.Errorf("scans = %d, %d; want full-population scans 4, 16",
			pts[0].TokensScanned, pts[1].TokensScanned)
	}
	if pts[1].AuditTime <= pts[0].AuditTime {
		t.Error("audit time did not grow with |grt|")
	}
}

func TestE7Trace(t *testing.T) {
	rep, err := RunE7Trace()
	if err != nil {
		t.Fatal(err)
	}
	if rep.User == "" {
		t.Error("trace produced no uid")
	}
	if !rep.ReceiptVerified {
		t.Error("receipt chain unverified")
	}
	if rep.Audit.Group != "grp-1" {
		t.Errorf("audit group = %q, want grp-1", rep.Audit.Group)
	}
}

func TestE8AllAttacksFail(t *testing.T) {
	rows, err := RunE8Attacks()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Succeeded != 0 {
			t.Errorf("scenario %q: %d/%d attacks succeeded", r.Scenario, r.Succeeded, r.Attempts)
		}
		if r.Attempts == 0 {
			t.Errorf("scenario %q launched no attacks", r.Scenario)
		}
	}
}

func TestE9AllPrivacyPropertiesHold(t *testing.T) {
	rep, err := RunE9Privacy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) != 0 {
		t.Fatalf("privacy property failures: %v", rep.Notes)
	}
	if !rep.TranscriptsLeakNoUID || !rep.SignaturesUnlinkableStructurally ||
		!rep.SessionIDsFresh || !rep.OperatorLearnsGroupOnly ||
		!rep.CompromisedMemberCannotLink || !rep.GMBlind {
		t.Fatal("a privacy flag is false without a note")
	}
}

func TestE10Primitives(t *testing.T) {
	rows, err := RunE10Primitives(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Time <= 0 {
			t.Errorf("%s: non-positive time", r.Name)
		}
	}
}

func TestE11Ablations(t *testing.T) {
	rows, err := RunE11Ablations(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: non-positive gain", r.Name)
		}
	}
	// Shared final exponentiation must actually win.
	if rows[0].Speedup < 1.1 {
		t.Errorf("shared final exp gain only %.2f×", rows[0].Speedup)
	}
	// Compressed encoding must shrink the signature.
	if rows[2].Speedup <= 1.0 {
		t.Errorf("compression gain %.2f×", rows[2].Speedup)
	}
}

func TestE12BatchPipeline(t *testing.T) {
	// Small sizes keep the test fast; the headline 16/64 measurement runs
	// in peacebench and BenchmarkE11BatchVerify.
	rep, err := RunE12Batch(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchSize != 4 || rep.URLSize != 3 {
		t.Fatalf("report sizes %d/%d", rep.BatchSize, rep.URLSize)
	}
	if rep.SequentialPer <= 0 || rep.BatchPer <= 0 {
		t.Fatal("non-positive timings")
	}
	// The pipeline must beat the sequential path even on a small batch.
	if rep.Speedup <= 1.0 {
		t.Errorf("batch speedup %.2f×, want > 1", rep.Speedup)
	}
	if len(rep.Sweep) != 3 {
		t.Fatalf("sweep rows = %d, want 3", len(rep.Sweep))
	}
	for _, row := range rep.Sweep {
		if row.PerToken <= 0 {
			t.Errorf("workers=%d: non-positive per-token time", row.Workers)
		}
	}
}

func TestE19AttackLatencyShape(t *testing.T) {
	rows, err := RunE19AttackLatency([]int{0, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	calm, hot := rows[0], rows[1]
	// Every attach must succeed at both intensities — graceful degradation,
	// not denial.
	for _, r := range rows {
		if r.Attached != r.Samples {
			t.Errorf("intensity %d: attached %d/%d", r.Intensity, r.Attached, r.Samples)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("intensity %d: degenerate latencies p50=%v p99=%v", r.Intensity, r.P50, r.P99)
		}
	}
	// The calm baseline must not pay the defense.
	if calm.PeakDifficulty != 0 || calm.PuzzlesVerified != 0 {
		t.Errorf("calm run demanded difficulty %d, verified %d puzzles",
			calm.PeakDifficulty, calm.PuzzlesVerified)
	}
	// The attacked point must actually face the defense.
	if hot.PeakDifficulty == 0 {
		t.Error("attacked run never demanded a puzzle")
	}
	if hot.PuzzlesVerified == 0 {
		t.Error("attacked run verified no legit solutions")
	}
	if hot.FloodDatagrams == 0 {
		t.Error("flood delivered no datagrams")
	}
}

func TestE4LossyAttachment(t *testing.T) {
	rows, err := RunE4Lossy([]float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Attached != r.Users {
			t.Errorf("loss=%.1f: attached %d/%d despite %d beacon retries",
				r.Loss, r.Attached, r.Users, r.BeaconsSent)
		}
	}
	if rows[1].FramesLost == 0 {
		t.Error("lossy run lost no frames")
	}
}
