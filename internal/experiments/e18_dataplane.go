package experiments

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/transport"
	"github.com/peace-mesh/peace/internal/transport/batchio"
)

// E18Row is one cell of the data-plane sweep: sustained sealed-echo
// round trips with the server ingest split across Shards loops and each
// loop moving IOBatch datagrams per recvmmsg/sendmmsg. IOBatch 1 is the
// unbatched baseline (one datagram per syscall on both sides).
type E18Row struct {
	Shards  int
	IOBatch int
	// Packets counts completed round trips (sealed data frame out, sealed
	// echo back); Bytes is the wire volume of the echoes.
	Packets int64
	Bytes   int64
	Elapsed time.Duration
	PPS     float64
	MBPS    float64
	// BatchFillAvg is the server-side datagrams-per-recvmmsg average —
	// how full the ingest rings actually ran.
	BatchFillAvg float64
}

// E18DataPlaneReport is the batched data-plane evaluation: the
// packets-per-second ceiling of the sealed DataFrame echo path with and
// without mmsg batching, across shard counts and batch widths.
type E18DataPlaneReport struct {
	Rows         []E18Row
	PayloadBytes int

	// UnbatchedPPS is the best IOBatch=1 cell, BatchedPPS the best
	// IOBatch>1 cell, SpeedupX their ratio — the headline claim.
	UnbatchedPPS float64
	BatchedPPS   float64
	SpeedupX     float64

	// BatchedIO records whether the mmsg fast path actually engaged on
	// the server sockets (false means the portable fallback ran and the
	// sweep degenerates to a regression check).
	BatchedIO bool

	// NumCPU qualifies the shard rows: on a single-core runner the sweep
	// shows syscall amortization only, not parallel shard scaling.
	NumCPU int
}

// RunE18DataPlane measures steady-state sealed-echo throughput over real
// UDP loopback sockets for every (shards, ioBatch) cell.
func RunE18DataPlane(shardCounts, batchSizes []int, iters int) (*E18DataPlaneReport, error) {
	if iters < 1 {
		iters = 1
	}
	rep := &E18DataPlaneReport{NumCPU: runtime.NumCPU(), PayloadBytes: 64}
	for _, shards := range shardCounts {
		for _, batch := range batchSizes {
			row, batched, err := e18EchoThroughput(shards, batch, rep.PayloadBytes, iters)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, *row)
			rep.BatchedIO = rep.BatchedIO || batched
			if batch == 1 {
				rep.UnbatchedPPS = max(rep.UnbatchedPPS, row.PPS)
			} else {
				rep.BatchedPPS = max(rep.BatchedPPS, row.PPS)
			}
		}
	}
	if rep.UnbatchedPPS > 0 {
		rep.SpeedupX = rep.BatchedPPS / rep.UnbatchedPPS
	}
	return rep, nil
}

// e18EchoThroughput runs one sweep cell: a client fleet blasts sealed
// data frames in bursts through the batch egress spooler and drains the
// sealed echoes through the batch read ring, so the generator amortizes
// syscalls exactly as hard as the server under test.
func e18EchoThroughput(shards, batch, payloadBytes, iters int) (*E18Row, bool, error) {
	const fleet = 4
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-E18", "grp-e18", fleet)
	if err != nil {
		return nil, false, err
	}
	conns, err := transport.ListenShards("127.0.0.1:0", shards)
	if err != nil {
		return nil, false, err
	}
	srv := transport.NewShardedServer(conns, ln.Router, transport.ServerConfig{
		BootEpoch: 1,
		Shards:    shards,
		IOBatch:   batch,
		EchoData:  true,
	})
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	type endpoint struct {
		conn net.PacketConn
		sess *core.Session
	}
	eps := make([]endpoint, fleet)
	for i := 0; i < fleet; i++ {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, false, err
		}
		defer conn.Close()
		cl := transport.NewClient(conn, srv.Addr(), ln.Users[i], transport.ClientConfig{Seed: int64(i) + 1})
		sess, err := cl.Attach(ctx)
		if err != nil {
			return nil, false, fmt.Errorf("e18 shards=%d batch=%d attach %d: %w", shards, batch, i, err)
		}
		eps[i] = endpoint{conn: conn, sess: sess}
	}

	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	window := time.Duration(iters) * 500 * time.Millisecond
	var packets, bytes atomic.Int64
	var firstErr atomic.Value
	raddr := srv.Addr()
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(ep endpoint) {
			defer wg.Done()
			// The generator uses the same batch plumbing as the server:
			// bursts leave through a sendmmsg egress spooler and echoes
			// come back through a recvmmsg ring, both sized like the cell.
			const burst = 64
			bc, _ := batchio.Upgrade(ep.conn)
			pool := batchio.NewPool(2048)
			eg := batchio.NewEgress(bc, batch, time.Millisecond, pool, nil)
			defer eg.Close()
			ring := batchio.NewRing(batch, batchio.NewPool(2048))
			defer ring.Close()
			for time.Now().Before(deadline) {
				for i := 0; i < burst; i++ {
					b := eg.Buffer()
					var err error
					b.B, err = transport.AppendFrameHeader(b.B, transport.KindSessionData, core.SealedDataLen(len(payload)))
					if err == nil {
						b.B, err = ep.sess.AppendSealedData(b.B, payload)
					}
					if err != nil {
						b.Release()
						firstErr.CompareAndSwap(nil, err)
						return
					}
					eg.QueueBuf(b, raddr)
				}
				eg.Flush()
				// Drain what came back; lost echoes (full socket buffers)
				// are abandoned at the read deadline, not retried — the
				// row measures completed round trips.
				got := 0
				if err := bc.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for got < burst {
					ms := ring.Prepare()
					n, err := bc.ReadBatch(ms)
					if err != nil {
						break
					}
					for j := 0; j < n; j++ {
						kind, _, derr := transport.DecodeFrame(ms[j].Payload())
						if derr != nil || kind != transport.KindSessionData {
							continue
						}
						got++
						bytes.Add(int64(ms[j].N))
					}
				}
				packets.Add(int64(got))
			}
		}(eps[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, false, fmt.Errorf("e18 shards=%d batch=%d: %w", shards, batch, err)
	}

	st := srv.Stats()
	row := &E18Row{
		Shards:  srv.Shards(),
		IOBatch: batch,
		Packets: packets.Load(),
		Bytes:   bytes.Load(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		row.PPS = float64(row.Packets) / elapsed.Seconds()
		row.MBPS = float64(row.Bytes) / (1 << 20) / elapsed.Seconds()
	}
	if rb := st.ReadBatches(); rb > 0 {
		row.BatchFillAvg = float64(st.ReadDatagrams()) / float64(rb)
	}
	return row, st.BatchedIO(), nil
}
