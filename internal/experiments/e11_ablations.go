package experiments

import (
	"crypto/rand"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/sgs"
)

// E11AblationRow quantifies one implementation design choice by timing
// the system with and without it.
type E11AblationRow struct {
	Name      string
	Baseline  time.Duration // without the technique
	Optimized time.Duration // with it
	Speedup   float64
	Detail    string
}

// RunE11Ablations measures the ablations DESIGN.md calls out:
//
//   - shared final exponentiation in product-of-pairings checks (used by
//     every Eq.3 revocation/audit test),
//   - fixed-generator signatures enabling the O(1) revocation table
//     (privacy trade-off, E3's fast path),
//   - compressed versus uncompressed signature encodings (wire size, not
//     time: Speedup is the byte ratio).
func RunE11Ablations(iters int) ([]E11AblationRow, error) {
	if iters < 1 {
		iters = 1
	}
	var rows []E11AblationRow

	// --- Shared final exponentiation. ----------------------------------
	{
		a, err := bn256.RandomScalar(rand.Reader)
		if err != nil {
			return nil, err
		}
		p1 := new(bn256.G1).ScalarBaseMult(a)
		p2 := new(bn256.G1).Neg(p1)
		q := new(bn256.G2).Base()

		start := time.Now()
		for i := 0; i < iters; i++ {
			e1 := bn256.Pair(p1, q)
			e2 := bn256.Pair(p2, q)
			_ = e1.Equal(e2)
		}
		baseline := time.Since(start) / time.Duration(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			acc := bn256.Miller(p1, q)
			acc.Add(acc, bn256.Miller(p2, q))
			_ = acc.Finalize().IsOne()
		}
		optimized := time.Since(start) / time.Duration(iters)

		rows = append(rows, E11AblationRow{
			Name:      "shared final exponentiation (Eq.3 token test)",
			Baseline:  baseline,
			Optimized: optimized,
			Speedup:   ratio(baseline, optimized),
			Detail:    "2 pairings vs 2 Miller loops + 1 final exp",
		})
	}

	// --- Generator modes (per-message vs fixed). ------------------------
	{
		iss, err := sgs.NewIssuer(rand.Reader)
		if err != nil {
			return nil, err
		}
		grp, err := iss.NewGroupComponent(rand.Reader)
		if err != nil {
			return nil, err
		}
		key, err := iss.IssueKey(rand.Reader, grp)
		if err != nil {
			return nil, err
		}
		msg := []byte("ablation")

		timeMode := func(mode sgs.GeneratorMode) (time.Duration, error) {
			start := time.Now()
			for i := 0; i < iters; i++ {
				sig, err := sgs.SignWithMode(rand.Reader, iss.PublicKey(), key, msg, mode)
				if err != nil {
					return 0, err
				}
				if err := sgs.Verify(iss.PublicKey(), msg, sig); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / time.Duration(iters), nil
		}
		perMsg, err := timeMode(sgs.PerMessageGenerators)
		if err != nil {
			return nil, err
		}
		fixed, err := timeMode(sgs.FixedGenerators)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E11AblationRow{
			Name:      "fixed generators (enables O(1) revocation)",
			Baseline:  perMsg,
			Optimized: fixed,
			Speedup:   ratio(perMsg, fixed),
			Detail:    "sign+verify; trade-off: shared bases across signatures",
		})
	}

	// --- Compressed signature encoding (bytes, not time). ---------------
	{
		rows = append(rows, E11AblationRow{
			Name:      "compressed signature encoding",
			Baseline:  time.Duration(sgs.SignatureSize),        // bytes, reported via Detail
			Optimized: time.Duration(sgs.CompactSignatureSize), // bytes
			Speedup:   float64(sgs.SignatureSize) / float64(sgs.CompactSignatureSize),
			Detail:    "bytes on the wire (Baseline/Optimized fields carry byte counts)",
		})
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
