package experiments

import (
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
)

// E7AuditPoint is one row of the audit sweep: operator audit latency as a
// function of the issued population |grt| (the paper's audit protocol
// scans grt linearly; each token costs two pairings).
type E7AuditPoint struct {
	GrtSize int
	// AuditTime is the wall time of one worst-case audit (the signer's
	// token is last in grt).
	AuditTime time.Duration
	// TokensScanned is how many Eq.3 tests ran.
	TokensScanned int
	// PerTokenTime = AuditTime / TokensScanned.
	PerTokenTime time.Duration
}

// E7TraceReport is the end-to-end law-authority trace measurement.
type E7TraceReport struct {
	Audit           core.AuditResult
	User            core.UserID
	ReceiptVerified bool
	TraceTime       time.Duration
}

// RunE7AuditSweep measures worst-case audit latency at each population
// size: a filler group is registered first so the audited user's token
// sits at the end of grt and the scan covers the whole set.
func RunE7AuditSweep(grtSizes []int) ([]E7AuditPoint, error) {
	var out []E7AuditPoint
	for _, size := range grtSizes {
		if size < 2 {
			return nil, fmt.Errorf("e7: grt size must be ≥ 2")
		}
		clock := &core.FixedClock{T: time.Unix(1751600000, 0)}
		cfg := core.Config{Clock: clock, FreshnessWindow: time.Minute}
		no, err := core.NewNetworkOperator(cfg)
		if err != nil {
			return nil, err
		}
		ttp, err := core.NewTTP(cfg, no.Authority())
		if err != nil {
			return nil, err
		}

		// Filler population issued first.
		filler, err := core.NewGroupManager(cfg, "filler", no.Authority())
		if err != nil {
			return nil, err
		}
		if err := no.RegisterUserGroup(filler, ttp, size-1); err != nil {
			return nil, err
		}
		// The audited group last: its single token is scanned last.
		gm, err := core.NewGroupManager(cfg, "audited", no.Authority())
		if err != nil {
			return nil, err
		}
		if err := no.RegisterUserGroup(gm, ttp, 1); err != nil {
			return nil, err
		}
		u, err := core.NewUser(cfg, core.Identity{Essential: "suspect"}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		if err := core.EnrollUser(u, gm, ttp); err != nil {
			return nil, err
		}

		router, err := core.NewMeshRouter(cfg, "MR-0", no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		c, err := no.EnrollRouter("MR-0", router.Public())
		if err != nil {
			return nil, err
		}
		router.SetCertificate(c)
		crl, url, err := no.RevocationBundles()
		if err != nil {
			return nil, err
		}
		if err := router.UpdateRevocations(crl, url); err != nil {
			return nil, err
		}
		for _, snap := range []*revocation.Snapshot{crl.Snapshot, url.Snapshot} {
			if err := u.InstallRevocationSnapshot(snap); err != nil {
				return nil, err
			}
		}

		beacon, err := router.Beacon()
		if err != nil {
			return nil, err
		}
		m2, err := u.HandleBeacon(beacon, "audited")
		if err != nil {
			return nil, err
		}

		start := time.Now()
		res, err := no.Audit(m2)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		pt := E7AuditPoint{
			GrtSize:       no.GrtSize(),
			AuditTime:     elapsed,
			TokensScanned: res.TokensScanned,
		}
		if res.TokensScanned > 0 {
			pt.PerTokenTime = elapsed / time.Duration(res.TokensScanned)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RunE7Trace measures one complete law-authority trace.
func RunE7Trace() (*E7TraceReport, error) {
	f, err := newFixture(2, 3)
	if err != nil {
		return nil, err
	}
	u := f.users[4] // a grp-1 member
	_, m2, _, _, _, err := f.handshake(u, u.Groups()[0])
	if err != nil {
		return nil, err
	}

	la := core.NewLawAuthority(f.gms...)
	start := time.Now()
	res, err := la.Trace(f.no, m2)
	if err != nil {
		return nil, err
	}
	return &E7TraceReport{
		Audit:           res.Audit,
		User:            res.User,
		ReceiptVerified: res.ReceiptVerified,
		TraceTime:       time.Since(start),
	}, nil
}
