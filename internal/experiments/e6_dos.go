package experiments

import (
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/mesh"
)

// E6DoSRow is one row of the flood experiment: a given flood size against
// a router with puzzles on or off.
type E6DoSRow struct {
	FloodSize      int
	PuzzlesEnabled bool
	// ExpensiveVerifications is how many group-signature verifications
	// (pairing work) the flood cost the router.
	ExpensiveVerifications int
	// ShedCheaply is how many bogus requests died on the puzzle check.
	ShedCheaply int
	// LegitimateAttached reports whether the honest user still got in.
	LegitimateAttached bool
}

// RunE6DoS runs the flood scenario for each flood size, with and without
// puzzles.
func RunE6DoS(floodSizes []int) ([]E6DoSRow, error) {
	var out []E6DoSRow
	for _, size := range floodSizes {
		for _, defense := range []bool{false, true} {
			row, err := runE6Scenario(size, defense)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func runE6Scenario(floodSize int, defense bool) (E6DoSRow, error) {
	d, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed:             int64(floodSize)*2 + boolToInt64(defense),
		Groups:           1,
		KeysPerGroup:     4,
		Routers:          1,
		PuzzleDifficulty: 8,
	})
	if err != nil {
		return E6DoSRow{}, err
	}
	if _, err := d.AddUser("citizen", core.GroupID("grp-0"), "MR-0", true); err != nil {
		return E6DoSRow{}, err
	}
	hop := mesh.Link{Latency: 2 * time.Millisecond}
	d.Net.Connect("citizen", "MR-0", hop)

	attacker := mesh.NewInjector(d.Net, "attacker", "MR-0")
	d.Net.Connect("attacker", "MR-0", hop)

	d.Routers["MR-0"].Router().SetDoSDefense(defense)
	d.Routers["MR-0"].StartBeacons(250*time.Millisecond, 8)
	d.Net.RunFor(300 * time.Millisecond)
	attacker.Flood(floodSize, time.Millisecond)
	d.Net.RunFor(30 * time.Second)

	st := d.Routers["MR-0"].Router().Stats()
	return E6DoSRow{
		FloodSize:              floodSize,
		PuzzlesEnabled:         defense,
		ExpensiveVerifications: st.ExpensiveVerifications,
		ShedCheaply:            st.RejectedPuzzle,
		LegitimateAttached:     d.Users["citizen"].Attached(),
	}, nil
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
