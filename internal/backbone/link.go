package backbone

import (
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/transport"
	"github.com/peace-mesh/peace/internal/wire"
)

// errLinkReplay marks an envelope whose sequence number fell behind the
// receive window or was already accepted.
var errLinkReplay = errors.New("backbone: envelope replayed")

// replayWindow is a 64-deep sliding bitmap over per-sender envelope
// sequence numbers: the standard DTLS/IPsec anti-replay shape, sized for
// a UDP link that may reorder but not meaningfully delay.
type replayWindow struct {
	high uint64 // highest sequence accepted (0 = none yet)
	mask uint64 // bit i set ⇒ high-i accepted
}

// accept reports whether seq is fresh, and records it. Sequence numbers
// start at 1; 0 is never valid.
func (w *replayWindow) accept(seq uint64) bool {
	if seq == 0 {
		return false
	}
	if seq > w.high {
		shift := seq - w.high
		if shift >= 64 {
			w.mask = 1
		} else {
			w.mask = w.mask<<shift | 1
		}
		w.high = seq
		return true
	}
	back := w.high - seq
	if back >= 64 {
		return false
	}
	bit := uint64(1) << back
	if w.mask&bit != 0 {
		return false
	}
	w.mask |= bit
	return true
}

// link is one established router-to-router association: the peer's
// identity and address, the derived symmetric keys, a send sequence and
// a receive replay window. A re-handshake (peer restart) replaces the
// whole link object, resetting both sequence spaces with the keys.
type link struct {
	peer string
	addr net.Addr
	keys symcrypto.SessionKeys

	// aead is the cached AES-GCM instance for keys.Enc (one key schedule
	// per handshake, not per envelope). nonceBase is this end's random
	// nonce prefix; sealAppend XORs the sequence number into it, keeping
	// deterministic nonces disjoint between the two ends even though both
	// seal under the same link key.
	aead      cipher.AEAD
	nonceBase [symcrypto.GCMNonceSize]byte

	mu       sync.Mutex
	sendSeq  uint64
	rw       replayWindow
	lastSeen time.Time
	// Seal scratch, guarded by mu: the nonce and AAD must reach the AEAD
	// without a per-envelope heap escape.
	nonceScratch [symcrypto.GCMNonceSize]byte
	aadScratch   []byte
}

func newLink(peer string, addr net.Addr, keys symcrypto.SessionKeys) *link {
	l := &link{peer: peer, addr: addr, keys: keys, lastSeen: time.Now()}
	l.aead, _ = symcrypto.NewAEAD(keys.Enc) // never fails for a 32-byte key
	rand.Read(l.nonceBase[:])
	l.aadScratch = make([]byte, 0, 64+len(peer))
	return l
}

// seal wraps plaintext in a LinkEnvelope of the given kind from self.
func (l *link) seal(rng io.Reader, kind transport.Kind, self string, plaintext []byte) (*transport.LinkEnvelope, error) {
	l.mu.Lock()
	l.sendSeq++
	seq := l.sendSeq
	l.mu.Unlock()
	ct, err := symcrypto.Seal(rng, l.keys.Enc, plaintext, transport.LinkEnvelopeAAD(kind, self, seq))
	if err != nil {
		return nil, err
	}
	return &transport.LinkEnvelope{From: self, Seq: seq, Ciphertext: ct}, nil
}

// sealAppend seals plaintext on this link and appends the complete
// marshaled LinkEnvelope to dst — the zero-allocation twin of
// seal+Marshal for the batched egress path: same wire format,
// deterministic nonce (nonceBase XOR seq) instead of a drawn one. Give
// dst transport.LinkEnvelopeLen(self, len(plaintext)) spare capacity to
// avoid growth.
func (l *link) sealAppend(dst []byte, kind transport.Kind, self string, plaintext []byte) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sendSeq++
	seq := l.sendSeq

	l.nonceScratch = l.nonceBase
	for i := 0; i < 8; i++ {
		l.nonceScratch[symcrypto.GCMNonceSize-1-i] ^= byte(seq >> (8 * i))
	}
	l.aadScratch = transport.AppendLinkEnvelopeAAD(l.aadScratch[:0], kind, self, seq)

	dst = transport.AppendLinkEnvelopeHeader(dst, self, seq, len(plaintext))
	dst = append(dst, l.nonceScratch[:]...)
	return l.aead.Seal(dst, l.nonceScratch[:], plaintext, l.aadScratch)
}

// open authenticates and decrypts an envelope received on this link,
// enforcing the replay window, and refreshes the liveness clock. The
// cached AEAD skips the per-envelope key schedule; the wire format is
// symcrypto.Open's (nonce ‖ ct ‖ tag).
func (l *link) open(kind transport.Kind, env *transport.LinkEnvelope) ([]byte, error) {
	if len(env.Ciphertext) < symcrypto.GCMNonceSize+symcrypto.GCMOverhead {
		return nil, symcrypto.ErrDecrypt
	}
	aad := transport.LinkEnvelopeAAD(kind, env.From, env.Seq)
	pt, err := l.aead.Open(nil, env.Ciphertext[:symcrypto.GCMNonceSize], env.Ciphertext[symcrypto.GCMNonceSize:], aad)
	if err != nil {
		return nil, symcrypto.ErrDecrypt
	}
	l.mu.Lock()
	ok := l.rw.accept(env.Seq)
	if ok {
		l.lastSeen = time.Now()
	}
	l.mu.Unlock()
	if !ok {
		return nil, errLinkReplay
	}
	return pt, nil
}

// seen returns the liveness clock.
func (l *link) seen() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeen
}

// touch refreshes the liveness clock (handshake completion).
func (l *link) touch() {
	l.mu.Lock()
	l.lastSeen = time.Now()
	l.mu.Unlock()
}

// deriveLinkKeys derives one link's symmetric keys from the handshake DH
// secret and the full transcript — both identities, both shares, both
// nonces, in initiator-then-responder order, so the two ends agree and a
// transplanted share changes the keys.
func deriveLinkKeys(dh []byte, initID, respID string, initShare, respShare, initNonce, respNonce []byte) symcrypto.SessionKeys {
	w := wire.NewWriter(256)
	w.StringField("peace/backbone-link:v1")
	w.StringField(initID)
	w.StringField(respID)
	w.BytesField(initShare)
	w.BytesField(respShare)
	w.BytesField(initNonce)
	w.BytesField(respNonce)
	return symcrypto.DeriveSessionKeys(dh, w.Bytes())
}
