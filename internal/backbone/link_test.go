package backbone

import (
	"crypto/rand"
	"net"
	"testing"

	"github.com/peace-mesh/peace/internal/transport"
)

func TestReplayWindow(t *testing.T) {
	w := &replayWindow{}
	if w.accept(0) {
		t.Fatal("sequence 0 accepted")
	}
	for _, seq := range []uint64{1, 2, 3} {
		if !w.accept(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
	}
	for _, seq := range []uint64{1, 2, 3} {
		if w.accept(seq) {
			t.Fatalf("replayed seq %d accepted", seq)
		}
	}
	// Out-of-order within the window.
	if !w.accept(10) || !w.accept(7) || w.accept(7) {
		t.Fatal("window reorder handling broken")
	}
	// Far jump resets the bitmap; everything ≥64 behind is refused.
	if !w.accept(1000) {
		t.Fatal("forward jump rejected")
	}
	if w.accept(936) {
		t.Fatal("seq 64 behind high accepted")
	}
	if !w.accept(937) {
		t.Fatal("seq 63 behind high rejected")
	}
}

func TestLinkSealOpenReplayAndKindBinding(t *testing.T) {
	dh := []byte("metro test dh secret")
	nonceA := []byte("aaaaaaaaaaaaaaaa")
	nonceB := []byte("bbbbbbbbbbbbbbbb")
	keys := deriveLinkKeys(dh, "r0", "r1", []byte("shareA"), []byte("shareB"), nonceA, nonceB)
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	a := newLink("r1", addr, keys) // r0's view
	b := newLink("r0", addr, keys) // r1's view

	env, err := a.seal(rand.Reader, transport.KindGossip, "r0", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := b.open(transport.KindGossip, env)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello" {
		t.Fatalf("roundtrip = %q", pt)
	}
	// Replay of the same envelope is refused after decryption.
	if _, err := b.open(transport.KindGossip, env); err == nil {
		t.Fatal("replayed envelope accepted")
	}
	// The kind is bound into the AAD: a gossip envelope replayed as a
	// relay fails authentication outright.
	env2, err := a.seal(rand.Reader, transport.KindGossip, "r0", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.open(transport.KindRelay, env2); err == nil {
		t.Fatal("kind confusion accepted")
	}
	// Different transcripts derive different keys.
	other := deriveLinkKeys(dh, "r0", "r1", []byte("shareA"), []byte("shareB"), nonceB, nonceA)
	if other == keys {
		t.Fatal("transcript not bound into link keys")
	}
}
