package backbone

import (
	"bytes"
	"crypto/rand"
	"net"
	"testing"

	"github.com/peace-mesh/peace/internal/transport"
)

func TestReplayWindow(t *testing.T) {
	w := &replayWindow{}
	if w.accept(0) {
		t.Fatal("sequence 0 accepted")
	}
	for _, seq := range []uint64{1, 2, 3} {
		if !w.accept(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
	}
	for _, seq := range []uint64{1, 2, 3} {
		if w.accept(seq) {
			t.Fatalf("replayed seq %d accepted", seq)
		}
	}
	// Out-of-order within the window.
	if !w.accept(10) || !w.accept(7) || w.accept(7) {
		t.Fatal("window reorder handling broken")
	}
	// Far jump resets the bitmap; everything ≥64 behind is refused.
	if !w.accept(1000) {
		t.Fatal("forward jump rejected")
	}
	if w.accept(936) {
		t.Fatal("seq 64 behind high accepted")
	}
	if !w.accept(937) {
		t.Fatal("seq 63 behind high rejected")
	}
}

func TestLinkSealOpenReplayAndKindBinding(t *testing.T) {
	dh := []byte("metro test dh secret")
	nonceA := []byte("aaaaaaaaaaaaaaaa")
	nonceB := []byte("bbbbbbbbbbbbbbbb")
	keys := deriveLinkKeys(dh, "r0", "r1", []byte("shareA"), []byte("shareB"), nonceA, nonceB)
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	a := newLink("r1", addr, keys) // r0's view
	b := newLink("r0", addr, keys) // r1's view

	env, err := a.seal(rand.Reader, transport.KindGossip, "r0", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := b.open(transport.KindGossip, env)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello" {
		t.Fatalf("roundtrip = %q", pt)
	}
	// Replay of the same envelope is refused after decryption.
	if _, err := b.open(transport.KindGossip, env); err == nil {
		t.Fatal("replayed envelope accepted")
	}
	// The kind is bound into the AAD: a gossip envelope replayed as a
	// relay fails authentication outright.
	env2, err := a.seal(rand.Reader, transport.KindGossip, "r0", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.open(transport.KindRelay, env2); err == nil {
		t.Fatal("kind confusion accepted")
	}
	// Different transcripts derive different keys.
	other := deriveLinkKeys(dh, "r0", "r1", []byte("shareA"), []byte("shareB"), nonceB, nonceA)
	if other == keys {
		t.Fatal("transcript not bound into link keys")
	}
}

// sealAppend must produce exactly the marshaled-LinkEnvelope wire
// format the random-nonce seal path produces: LinkEnvelopeLen is exact,
// the standard decode+open path accepts the envelopes, and the AAD
// append twin stays byte-identical to the Writer-built one.
func TestLinkSealAppendWireCompatible(t *testing.T) {
	keys := deriveLinkKeys([]byte("dh"), "r0", "r1", []byte("sA"), []byte("sB"),
		[]byte("aaaaaaaaaaaaaaaa"), []byte("bbbbbbbbbbbbbbbb"))
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	a := newLink("r1", addr, keys)
	b := newLink("r0", addr, keys)

	for _, seq := range []uint64{1, 255, 1 << 40} {
		want := transport.LinkEnvelopeAAD(transport.KindRelay, "r0", seq)
		got := transport.AppendLinkEnvelopeAAD(nil, transport.KindRelay, "r0", seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("seq %d: append AAD %x != writer AAD %x", seq, got, want)
		}
	}

	for i, pt := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("gossip"), 200)} {
		enc := a.sealAppend(nil, transport.KindGossip, "r0", pt)
		if len(enc) != transport.LinkEnvelopeLen("r0", len(pt)) {
			t.Fatalf("envelope %d: len %d, LinkEnvelopeLen %d",
				i, len(enc), transport.LinkEnvelopeLen("r0", len(pt)))
		}
		env, err := transport.UnmarshalLinkEnvelope(enc)
		if err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		out, err := b.open(transport.KindGossip, env)
		if err != nil {
			t.Fatalf("envelope %d: open: %v", i, err)
		}
		if !bytes.Equal(out, pt) {
			t.Fatalf("envelope %d: plaintext mismatch", i)
		}
	}

	// Both ends seal under the same link key; their random nonce bases
	// keep the deterministic nonces disjoint. Fresh links pin the same
	// (seq, payload) on both sides.
	pa := newLink("r1", addr, keys).sealAppend(nil, transport.KindGossip, "r0", []byte("same"))
	pb := newLink("r0", addr, keys).sealAppend(nil, transport.KindGossip, "r0", []byte("same"))
	if bytes.Equal(pa, pb) {
		t.Fatal("two links produced identical sealed envelopes: nonce bases collided")
	}
}
