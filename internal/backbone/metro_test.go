package backbone

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/transport"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func testClientConfig() transport.ClientConfig {
	return transport.ClientConfig{
		RetransmitTimeout: 80 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		MaxRetries:        16,
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// bumpRevocationOn revokes a spare credential slot at the operator and
// installs the advanced bundles on only the given routers — the rest of
// the metro keeps the older epochs.
func bumpRevocationOn(t *testing.T, n *MetroNetwork, routers ...*core.MeshRouter) {
	t.Helper()
	spare := 0
	for _, u := range n.Users {
		for _, c := range u.Credentials() {
			if c.Index >= spare {
				spare = c.Index + 1
			}
		}
	}
	tok, err := n.NO.TokenOf(n.GM.ID(), spare)
	if err != nil {
		t.Fatal(err)
	}
	n.NO.RevokeUserKey(tok)
	crl, url, err := n.NO.RevocationBundles()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routers {
		if err := r.UpdateRevocations(crl, url); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMetroRoamingWave drives the full harness: a small metro, every
// user roaming through several cross-router handoffs, every invariant
// asserted by the report.
func TestMetroRoamingWave(t *testing.T) {
	m, err := StartMetro(MetroConfig{
		Routers:        4,
		Users:          6,
		Moves:          3,
		GossipInterval: 50 * time.Millisecond,
		GraceWindow:    30 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	rep, err := m.RoamingWave(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Pairings != 6 {
		t.Fatalf("pairings = %d, want 6", rep.Pairings)
	}
	if rep.Resumed != 18 {
		t.Fatalf("resumed = %d, want 18", rep.Resumed)
	}
	if rep.FramesRelayed == 0 {
		t.Fatal("no frames crossed the backbone relay")
	}
	// Ring of 4: every node holds exactly two live links.
	for i, s := range m.Servers {
		if got := s.Stats().GossipPeers(); got != 2 {
			t.Errorf("router %d gossip_peers = %d, want 2", i, got)
		}
	}
	// Multi-hop: at least one node reaches the opposite corner in 2 hops.
	if h, ok := m.Nodes[0].HopsTo(m.Nodes[2].ID()); !ok || h != 2 {
		t.Errorf("hops r0→r2 = %d (%v), want 2", h, ok)
	}
}

// TestStaleEpochPinsAtAdoptingRouter bumps revocation state on the
// adopting router only: its epochs run ahead of the ticket's pins, so
// the resume is refused (anti-rollback on session state) and the client
// falls back to one — exactly one — fresh pairing.
func TestStaleEpochPinsAtAdoptingRouter(t *testing.T) {
	m, err := StartMetro(MetroConfig{
		Routers:        2,
		Users:          1,
		GossipInterval: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := testCtx(t)

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := transport.NewClient(conn, m.Servers[0].Addr(), m.Net.Users[0], testClientConfig())
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatal(err)
	}

	// Only the adopting router advances its revocation epochs.
	bumpRevocationOn(t, m.Net, m.Net.Routers[1])
	m.Servers[1].InvalidateBeacon()

	cl.Retarget(m.Servers[1].Addr())
	if _, err := cl.Resume(ctx); err == nil {
		t.Fatal("resume with stale epoch pins succeeded")
	}
	if got := m.Servers[1].Stats().ResumeRejects(); got == 0 {
		t.Fatal("adopting router recorded no resume reject")
	}
	if got := m.Servers[1].Stats().HandoffsIn(); got != 0 {
		t.Fatalf("refused handoff still counted: handoffs_in = %d", got)
	}

	// The fallback path re-pairs from scratch at the new router.
	if _, err := cl.AttachOrResume(ctx); err != nil {
		t.Fatalf("fallback pairing: %v", err)
	}
	if got := cl.Stats().AttachSuccesses(); got != 2 {
		t.Fatalf("attach successes = %d, want 2 (original + fallback)", got)
	}
}

// blackholeConn drops every datagram in both directions while tripped —
// a backbone partition for exactly one router.
type blackholeConn struct {
	net.PacketConn
	drop atomic.Bool
}

func (c *blackholeConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if c.drop.Load() {
		return len(p), nil
	}
	return c.PacketConn.WriteTo(p, addr)
}

func (c *blackholeConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil || !c.drop.Load() {
			return n, addr, err
		}
	}
}

// TestHandoffDuringBackbonePartition cuts the previous router off the
// backbone while the user roams. The handoff itself succeeds (the user
// plane is unaffected), the ownership announcement cannot reach the old
// router until the partition heals, and then the periodic gossip — not
// the one-shot flood, which was lost — delivers it, after which in-flight
// frames forward.
func TestHandoffDuringBackbonePartition(t *testing.T) {
	holes := make([]*blackholeConn, 3)
	m, err := StartMetro(MetroConfig{
		Routers:        3,
		Users:          1,
		GossipInterval: 50 * time.Millisecond,
		GraceWindow:    30 * time.Second,
		WrapBackbone: func(i int, conn net.PacketConn) net.PacketConn {
			holes[i] = &blackholeConn{PacketConn: conn}
			return holes[i]
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := testCtx(t)
	if !m.WaitConverged(30 * time.Second) {
		t.Fatal("backbone never converged")
	}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := transport.NewClient(conn, m.Servers[0].Addr(), m.Net.Users[0], testClientConfig())
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatal(err)
	}

	// Partition the old router's backbone, then roam away from it.
	holes[0].drop.Store(true)
	cl.Retarget(m.Servers[1].Addr())
	sess, err := cl.Resume(ctx)
	if err != nil {
		t.Fatalf("resume during backbone partition: %v", err)
	}
	if got := m.Servers[1].Stats().HandoffsIn(); got != 1 {
		t.Fatalf("handoffs_in = %d, want 1", got)
	}

	// The announcement must not have crossed the partition.
	time.Sleep(300 * time.Millisecond)
	if _, ok := m.Nodes[0].OwnerOf(sess.ID); ok {
		t.Fatal("ownership crossed a partitioned backbone")
	}
	if got := m.Servers[0].Stats().HandoffsOut(); got != 0 {
		t.Fatalf("partitioned router counted handoffs_out = %d", got)
	}

	// Heal. Gossip re-advertises the unexpired owner ad until it lands.
	holes[0].drop.Store(false)
	waitFor(t, func() bool {
		owner, ok := m.Nodes[0].OwnerOf(sess.ID)
		return ok && owner == m.Nodes[1].ID()
	}, "ownership convergence after heal")
	waitFor(t, func() bool { return m.Servers[0].Stats().HandoffsOut() == 1 }, "handoffs_out")

	// In-flight frame through the old router now forwards to the owner.
	if err := cl.SendDataVia(m.Servers[0].Addr(), []byte("late frame")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m.Servers[1].Stats().DataDelivered() >= 1 }, "relayed delivery")
	if m.Servers[0].Stats().FramesRelayed() == 0 {
		t.Fatal("old router did not relay the in-flight frame")
	}
}

// dupConn duplicates every outgoing datagram — the harshest sustained
// duplication a UDP path can produce.
type dupConn struct {
	net.PacketConn
}

func (c *dupConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if _, err := c.PacketConn.WriteTo(p, addr); err != nil {
		return 0, err
	}
	return c.PacketConn.WriteTo(p, addr)
}

// TestDuplicateHandoffIdempotence doubles every client datagram and
// every backbone datagram. The resume reply cache must serve the
// duplicate without minting a second session, the adopting router must
// count one handoff, and duplicated ownership announcements must not
// double handoffs_out or the grace-window release.
func TestDuplicateHandoffIdempotence(t *testing.T) {
	m, err := StartMetro(MetroConfig{
		Routers:        2,
		Users:          1,
		GossipInterval: 50 * time.Millisecond,
		GraceWindow:    30 * time.Second,
		WrapBackbone: func(i int, conn net.PacketConn) net.PacketConn {
			return &dupConn{PacketConn: conn}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := testCtx(t)
	if !m.WaitConverged(30 * time.Second) {
		t.Fatal("backbone never converged")
	}

	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	cl := transport.NewClient(&dupConn{PacketConn: raw}, m.Servers[0].Addr(), m.Net.Users[0], testClientConfig())
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().AttachSuccesses(); got != 1 {
		t.Fatalf("attach successes = %d, want 1", got)
	}

	cl.Retarget(m.Servers[1].Addr())
	if _, err := cl.Resume(ctx); err != nil {
		t.Fatal(err)
	}

	if got := m.Servers[1].Stats().ResumesServed(); got != 1 {
		t.Fatalf("resumes served = %d, want 1 (duplicate must hit the reply cache)", got)
	}
	if got := m.Servers[1].Stats().HandoffsIn(); got != 1 {
		t.Fatalf("handoffs_in = %d, want 1", got)
	}
	if got := m.Servers[1].Stats().Duplicates(); got == 0 {
		t.Fatal("no duplicate was actually exercised")
	}
	waitFor(t, func() bool { return m.Servers[0].Stats().HandoffsOut() == 1 }, "handoffs_out")
	// Give duplicated announcements and gossip repeats time to arrive.
	time.Sleep(400 * time.Millisecond)
	if got := m.Servers[0].Stats().HandoffsOut(); got != 1 {
		t.Fatalf("handoffs_out = %d after duplicates, want exactly 1", got)
	}
	if m.Net.Routers[0].Sessions() != 1 {
		// The grace window is long; the previous session must still be
		// resident exactly once (released only after the window closes).
		t.Fatalf("old router sessions = %d, want 1", m.Net.Routers[0].Sessions())
	}
}

// TestMetroReportJSONShape pins the report field names meshd serializes.
func TestMetroReportJSONShape(t *testing.T) {
	rep := &MetroReport{Routers: 8, Users: 200, Moves: 3}
	rep.violate("example %d", 1)
	if len(rep.Violations) != 1 || rep.Violations[0] != "example 1" {
		t.Fatalf("violate() = %v", rep.Violations)
	}
	if s := fmt.Sprintf("%d/%d/%d", rep.Routers, rep.Users, rep.Moves); s != "8/200/3" {
		t.Fatal(s)
	}
}
