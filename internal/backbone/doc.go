// Package backbone is the inter-router plane of a metropolitan PEACE
// deployment: N mesh routers under one network operator discover each
// other over configured links, gossip peer liveness, distance-vector
// reachability and session-ownership hints, and relay data frames
// multi-hop across the backbone.
//
// Links are authenticated under the routers' NO-issued certificates
// (internal/cert): a RouterHello / RouterWelcome exchange signs fresh DH
// shares with the long-term router keys, and everything after rides in
// AEAD-sealed LinkEnvelopes with per-sender replay windows.
//
// The headline path is roaming handoff. A user moving to a new AP
// presents its resumption ticket there; the adopting router validates
// the epoch pins, re-logs the M.2 accountability escrow
// (core.MeshRouter.AdoptResumedSession) and — because the ticket names a
// different issuing router — notifies its backbone Node, which floods an
// OwnerAd announcing the ownership transfer. During the grace window the
// previous router forwards in-flight data frames toward the adopting
// router instead of rejecting them, then releases the session (the audit
// log entry stays). Owner ads also ride the periodic gossip, so a router
// cut off by a partition converges once the partition heals.
package backbone
