package backbone

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/transport"
)

// MetroNetwork is a provisioned multi-router deployment under one
// network operator: N certified routers with identical revocation state,
// one user group, and the initial bundles kept for anti-rollback checks.
type MetroNetwork struct {
	Cfg     core.Config
	NO      *core.NetworkOperator
	TTP     *core.TTP
	GM      *core.GroupManager
	Routers []*core.MeshRouter
	Users   []*core.User

	// InitialCRL / InitialURL are the bundles installed at provisioning
	// time — soak scenarios re-offer them later and expect every router
	// to refuse the rollback.
	InitialCRL *revocation.Bundle
	InitialURL *revocation.Bundle
}

// NewMetroNetwork provisions nRouters certified routers and nUsers
// enrolled members of one group. Every router gets the same revocation
// bundles, so ticket epoch pins line up across the whole metro.
func NewMetroNetwork(cfg core.Config, nRouters, nUsers int) (*MetroNetwork, error) {
	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		return nil, err
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		return nil, err
	}
	const group = core.GroupID("metro-grp")
	gm, err := core.NewGroupManager(cfg, group, no.Authority())
	if err != nil {
		return nil, err
	}
	if err := no.RegisterUserGroup(gm, ttp, nUsers+16); err != nil {
		return nil, err
	}

	n := &MetroNetwork{Cfg: cfg, NO: no, TTP: ttp, GM: gm}
	for i := 0; i < nUsers; i++ {
		u, err := core.NewUser(cfg, core.Identity{
			Essential:  core.UserID(fmt.Sprintf("user-metro-%d", i)),
			Attributes: []core.Attribute{{Group: group, Role: "member"}},
		}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		if err := core.EnrollUser(u, gm, ttp); err != nil {
			return nil, err
		}
		n.Users = append(n.Users, u)
	}

	if n.InitialCRL, n.InitialURL, err = no.RevocationBundles(); err != nil {
		return nil, err
	}
	for i := 0; i < nRouters; i++ {
		id := fmt.Sprintf("metro-r%02d", i)
		r, err := core.NewMeshRouter(cfg, id, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		c, err := no.EnrollRouter(id, r.Public())
		if err != nil {
			return nil, err
		}
		r.SetCertificate(c)
		if err := r.UpdateRevocations(n.InitialCRL, n.InitialURL); err != nil {
			return nil, err
		}
		n.Routers = append(n.Routers, r)
	}

	// Out-of-band revocation bootstrap, as at enrollment time: the wave
	// measures roaming, not delta distribution.
	for _, l := range []revocation.List{revocation.ListURL, revocation.ListCRL} {
		snap, ok := n.Routers[0].RevocationSnapshot(l)
		if !ok {
			return nil, fmt.Errorf("backbone: router has no %v snapshot", l)
		}
		for _, u := range n.Users {
			if err := u.InstallRevocationSnapshot(snap); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// MetroConfig tunes a running metro deployment.
type MetroConfig struct {
	// Routers (≥2) and Users (≥1) size the deployment; Moves is how many
	// cross-router handoffs each user performs in RoamingWave.
	Routers int
	Users   int
	Moves   int
	// GossipInterval / GraceWindow configure every backbone node.
	GossipInterval time.Duration
	GraceWindow    time.Duration
	// OwnerWait bounds how long a roaming user waits for its ownership
	// announcement to reach the previous router before sending the
	// in-flight frame there. Must exceed any induced partition. Default 10s.
	OwnerWait time.Duration
	// Concurrency bounds how many users roam at once. Default 16.
	Concurrency int
	// WrapBackbone, when set, wraps router i's backbone socket — the chaos
	// harness injects link faults here.
	WrapBackbone func(i int, conn net.PacketConn) net.PacketConn
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c MetroConfig) withDefaults() MetroConfig {
	if c.Routers < 2 {
		c.Routers = 2
	}
	if c.Users < 1 {
		c.Users = 1
	}
	if c.Moves < 1 {
		c.Moves = 1
	}
	if c.OwnerWait <= 0 {
		c.OwnerWait = 10 * time.Second
	}
	if c.Concurrency < 1 {
		c.Concurrency = 16
	}
	return c
}

// Metro is a running metro deployment: one user-facing server plus one
// backbone node per router, all sharing a STEK ring so tickets roam.
type Metro struct {
	Net     *MetroNetwork
	Ring    *symcrypto.TicketKeyRing
	Servers []*transport.Server
	Nodes   []*Node
	cfg     MetroConfig
}

// StartMetro provisions (unless net is pre-built) and boots a metro
// deployment on loopback UDP, wiring the backbone as a ring: router i
// links to its two neighbours, so most handoffs cross multi-hop paths.
func StartMetro(cfg MetroConfig, net_ *MetroNetwork) (*Metro, error) {
	cfg = cfg.withDefaults()
	if net_ == nil {
		var err error
		if net_, err = NewMetroNetwork(core.Config{}, cfg.Routers, cfg.Users); err != nil {
			return nil, err
		}
	}
	ring, err := symcrypto.NewTicketKeyRing(rand.Reader)
	if err != nil {
		return nil, err
	}
	m := &Metro{Net: net_, Ring: ring, cfg: cfg}

	for i := 0; i < cfg.Routers; i++ {
		userConn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, err
		}
		srv := transport.NewServer(userConn, net_.Routers[i], transport.ServerConfig{
			BootEpoch:  uint64(1000 + i),
			TicketKeys: ring,
			Logf:       cfg.Logf,
		})
		m.Servers = append(m.Servers, srv)

		bbConn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, err
		}
		var pc net.PacketConn = bbConn
		if cfg.WrapBackbone != nil {
			pc = cfg.WrapBackbone(i, bbConn)
		}
		node := NewNode(pc, srv, Config{
			GossipInterval: cfg.GossipInterval,
			GraceWindow:    cfg.GraceWindow,
			Logf:           cfg.Logf,
		})
		m.Nodes = append(m.Nodes, node)
	}

	// Ring topology: each router links to both neighbours.
	n := cfg.Routers
	for i := 0; i < n; i++ {
		for _, j := range []int{(i + 1) % n, (i + n - 1) % n} {
			if j != i {
				m.Nodes[i].AddPeer(m.Nodes[j].ID(), m.Nodes[j].Addr())
			}
		}
	}
	return m, nil
}

// WaitConverged blocks until every node has a route to every router (or
// the deadline passes, returning false).
func (m *Metro) WaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
	outer:
		for _, node := range m.Nodes {
			for _, other := range m.Nodes {
				if _, reach := node.HopsTo(other.ID()); !reach {
					ok = false
					break outer
				}
			}
		}
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close tears the deployment down, backbone first.
func (m *Metro) Close() {
	for _, n := range m.Nodes {
		n.Close()
	}
	for _, s := range m.Servers {
		s.Close()
	}
}

// MetroReport is the outcome of one roaming wave.
type MetroReport struct {
	Routers int `json:"routers"`
	Users   int `json:"users"`
	Moves   int `json:"moves"`

	// Pairings counts full M.2/M.3 handshakes across all users — session
	// continuity means exactly one per user, every move riding a ticket.
	Pairings int64 `json:"pairings"`
	// Resumed counts successful ticket resumptions (the handoffs).
	Resumed   int64 `json:"resumed"`
	Fallbacks int64 `json:"fallbacks"`

	HandoffsIn    int64 `json:"handoffs_in"`
	HandoffsOut   int64 `json:"handoffs_out"`
	FramesRelayed int64 `json:"frames_relayed"`
	Delivered     int64 `json:"data_delivered"`

	Violations []string `json:"violations,omitempty"`
}

// Violation records one invariant breach.
func (r *MetroReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RoamingWave attaches every user at its home router, then roams each
// through Moves cross-router handoffs: retarget to the next router,
// resume with the held ticket, send one in-flight frame through the
// previous router (exercising the relay grace window) and one directly.
// The report asserts exactly one pairing per user and full delivery.
func (m *Metro) RoamingWave(ctx context.Context) (*MetroReport, error) {
	cfg := m.cfg
	rep := &MetroReport{Routers: cfg.Routers, Users: cfg.Users, Moves: cfg.Moves}
	if !m.WaitConverged(30 * time.Second) {
		rep.violate("backbone never converged")
		return rep, nil
	}

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		sem       = make(chan struct{}, cfg.Concurrency)
		wantRelay int64
	)
	clientCfg := transport.ClientConfig{
		RetransmitTimeout: 100 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		MaxRetries:        16,
	}
	stats := make([]*transport.Stats, cfg.Users)

	for ui := 0; ui < cfg.Users; ui++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ui int) {
			defer wg.Done()
			defer func() { <-sem }()
			fail := func(format string, args ...any) {
				mu.Lock()
				rep.violate("user %d: %s", ui, fmt.Sprintf(format, args...))
				mu.Unlock()
			}

			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				fail("listen: %v", err)
				return
			}
			defer conn.Close()
			at := ui % cfg.Routers
			cl := transport.NewClient(conn, m.Servers[at].Addr(), m.Net.Users[ui], clientCfg)
			stats[ui] = cl.Stats()
			if _, err := cl.Attach(ctx); err != nil {
				fail("attach at %s: %v", m.Nodes[at].ID(), err)
				return
			}

			for mv := 0; mv < cfg.Moves; mv++ {
				prev := at
				at = (at + 1) % cfg.Routers
				oldAddr := m.Servers[prev].Addr()
				cl.Retarget(m.Servers[at].Addr())
				sess, err := cl.Resume(ctx)
				if err != nil {
					fail("move %d resume at %s: %v", mv, m.Nodes[at].ID(), err)
					return
				}

				// The in-flight frame goes first: the receiving session
				// enforces strictly increasing sequence numbers, so a
				// late-relayed lower sequence would be dropped as a replay.
				// Wait for the ownership announcement to reach the previous
				// router (it floods immediately; a partition delays it until
				// gossip heals), then send through it.
				sid := sess.ID
				ownerDeadline := time.Now().Add(cfg.OwnerWait)
				for {
					if owner, ok := m.Nodes[prev].OwnerOf(sid); ok && owner == m.Nodes[at].ID() {
						break
					}
					if time.Now().After(ownerDeadline) {
						fail("move %d: ownership of session never reached %s", mv, m.Nodes[prev].ID())
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
				payload := []byte(fmt.Sprintf("metro user %d move %d", ui, mv))
				if err := cl.SendDataVia(oldAddr, payload); err != nil {
					fail("move %d in-flight send: %v", mv, err)
					return
				}
				mu.Lock()
				wantRelay++
				mu.Unlock()
				// The relayed frame must land before a higher-sequence
				// direct frame, or the session's strictly increasing
				// receive rule drops the straggler as a replay. Data
				// frames are fire-and-forget, so under an induced lossy
				// backbone the frame is retransmitted (each resend seals
				// a fresh, higher sequence — late originals then drop as
				// replays at the receiver, which is correct).
				relayDeadline := time.Now().Add(cfg.OwnerWait)
				resend := time.Now().Add(150 * time.Millisecond)
				for {
					if srvSess, ok := m.Net.Routers[at].SessionByID(sid); ok {
						if _, any := srvSess.RecvSeq(); any {
							break
						}
					}
					if time.Now().After(relayDeadline) {
						fail("move %d: in-flight frame never delivered via backbone", mv)
						return
					}
					if time.Now().After(resend) {
						resend = time.Now().Add(150 * time.Millisecond)
						if err := cl.SendDataVia(oldAddr, payload); err != nil {
							fail("move %d in-flight resend: %v", mv, err)
							return
						}
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err := cl.SendData(payload); err != nil {
					fail("move %d direct send: %v", mv, err)
					return
				}
			}
		}(ui)
	}
	wg.Wait()

	for ui, st := range stats {
		if st == nil {
			continue
		}
		rep.Pairings += st.AttachSuccesses()
		rep.Resumed += st.ResumeSuccesses()
		rep.Fallbacks += st.ResumeFallbacks()
		// Per client, not just in aggregate: every move rode the ticket.
		if got := st.AttachSuccesses(); got != 1 {
			rep.violate("user %d paired %d times, want exactly 1", ui, got)
		}
	}

	// Delivery is asynchronous (relayed frames cross the backbone); wait
	// for the counters to converge before judging.
	wantDelivered := wantRelay * 2
	deadline := time.Now().Add(15 * time.Second)
	for {
		rep.HandoffsIn, rep.HandoffsOut, rep.FramesRelayed, rep.Delivered = 0, 0, 0, 0
		for _, s := range m.Servers {
			st := s.Stats()
			rep.HandoffsIn += st.HandoffsIn()
			rep.HandoffsOut += st.HandoffsOut()
			rep.FramesRelayed += st.FramesRelayed()
			rep.Delivered += st.DataDelivered()
		}
		if rep.Delivered >= wantDelivered || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if rep.Pairings != int64(cfg.Users) {
		rep.violate("pairings = %d, want exactly %d (one per user)", rep.Pairings, cfg.Users)
	}
	if rep.Fallbacks != 0 {
		rep.violate("%d resume fallbacks to full pairing", rep.Fallbacks)
	}
	if want := int64(cfg.Users * cfg.Moves); rep.Resumed < want {
		rep.violate("resumed = %d, want ≥ %d", rep.Resumed, want)
	}
	if rep.HandoffsIn < int64(cfg.Users*cfg.Moves) {
		rep.violate("handoffs_in = %d, want ≥ %d", rep.HandoffsIn, cfg.Users*cfg.Moves)
	}
	if rep.Delivered < wantDelivered {
		rep.violate("delivered = %d, want ≥ %d", rep.Delivered, wantDelivered)
	}
	return rep, nil
}
