package backbone

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/transport"
	"github.com/peace-mesh/peace/internal/transport/batchio"
)

// Config tunes one backbone node.
type Config struct {
	// GossipInterval is the period of the gossip/maintenance tick.
	// Default 200ms.
	GossipInterval time.Duration
	// PeerTimeout declares a link dead after this much gossip silence;
	// the initiator side then re-runs the handshake. Default
	// 15 × GossipInterval.
	PeerTimeout time.Duration
	// GraceWindow is how long after a roaming handoff the previous router
	// keeps forwarding in-flight frames before releasing the session.
	// Default 10s.
	GraceWindow time.Duration
	// RelayTTL bounds backbone hops per relayed frame. Default 8.
	RelayTTL int
	// HelloFreshness bounds the age of handshake timestamps. Default 30s.
	HelloFreshness time.Duration
	// MaxHops drops route advertisements beyond this distance (bounds
	// count-to-infinity churn on partitions). Default 32.
	MaxHops uint32
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 200 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 15 * c.GossipInterval
	}
	if c.GraceWindow <= 0 {
		c.GraceWindow = 10 * time.Second
	}
	if c.RelayTTL < 1 {
		c.RelayTTL = 8
	}
	if c.HelloFreshness <= 0 {
		c.HelloFreshness = 30 * time.Second
	}
	if c.MaxHops == 0 {
		c.MaxHops = 32
	}
	return c
}

// backboneIOBatch is how many datagrams one recvmmsg/sendmmsg moves on
// the backbone socket; backboneFrameSize is the egress buffer class
// (gossip rounds and relayed data frames both fit); backboneFlushDelay
// bounds how long a queued envelope waits for batch-mates when no burst
// boundary flushes it first.
const (
	backboneIOBatch    = 16
	backboneFrameSize  = 4096
	backboneFlushDelay = 200 * time.Microsecond
)

// routeEntry is one distance-vector entry: reach a router via a directly
// linked peer at a hop count.
type routeEntry struct {
	via  string
	hops uint32
}

// ownerEntry is one session-ownership record from a roaming handoff.
type ownerEntry struct {
	ad transport.OwnerAd
}

// pendingDial is an initiator's outstanding hello: the nonce and DH
// scalar it committed to, and the encoded frame for retransmission (the
// same hello is re-sent until the welcome lands, so the responder's
// welcome replay cache stays coherent).
type pendingDial struct {
	nonce  [transport.BackboneNonceSize]byte
	scalar *big.Int
	share  []byte
	frame  []byte
}

// welcomeReplay caches the welcome answered to one hello nonce so a
// retransmitted hello gets the identical welcome back instead of a new
// handshake that would desynchronize the link keys.
type welcomeReplay struct {
	nonce [transport.BackboneNonceSize]byte
	frame []byte
}

// Node is one router's presence on the metro backbone: it owns the
// backbone socket, runs the link handshakes, gossips liveness + routes +
// session ownership, relays data frames multi-hop, and implements the
// transport server's Forwarder / HandoffObserver hooks.
type Node struct {
	cfg    Config
	id     string
	conn   net.PacketConn
	server *transport.Server
	router *core.MeshRouter
	stats  *transport.Stats

	// bc is the batch view of the backbone socket (recvmmsg/sendmmsg
	// where available); eg coalesces gossip rounds, relays and floods
	// into one sendmmsg per burst, sealing envelopes into framePool
	// buffers in place.
	bc        batchio.Conn
	eg        *batchio.Egress
	framePool *batchio.Pool

	// Relay-delivery scratch, used only by the read loop: the decode
	// frame and open-plaintext buffer of relayed-in data frames.
	scratchFrame core.DataFrame
	pt           []byte

	mu       sync.Mutex
	dials    map[string]net.Addr // configured peers, by router id
	links    map[string]*link    // established links, by router id
	pending  map[string]*pendingDial
	welcomes map[string]*welcomeReplay
	routes   map[string]routeEntry
	owners   map[core.SessionID]*ownerEntry

	// Backbone-native instruments, registered in the owning server's
	// registry so one /metrics scrape of a router also exposes its gossip
	// plane: gossip rounds sealed out, link handshakes completed (both
	// roles), and sealed envelopes dropped before dispatch (no link, bad
	// key, replay).
	gossipRounds   *metrics.Counter
	handshakesDone *metrics.Counter
	envelopeDrops  *metrics.Counter

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewNode starts a backbone node for server on conn (the router's
// dedicated backbone socket) and installs itself as the server's
// forwarder and handoff observer. Close the node before the server.
func NewNode(conn net.PacketConn, server *transport.Server, cfg Config) *Node {
	n := &Node{
		cfg:       cfg.withDefaults(),
		id:        server.Router().ID(),
		conn:      conn,
		server:    server,
		router:    server.Router(),
		stats:     server.Stats(),
		framePool: batchio.NewPool(backboneFrameSize),
		pt:        make([]byte, 0, 65536),
		dials:     make(map[string]net.Addr),
		links:     make(map[string]*link),
		pending:   make(map[string]*pendingDial),
		welcomes:  make(map[string]*welcomeReplay),
		routes:    make(map[string]routeEntry),
		owners:    make(map[core.SessionID]*ownerEntry),
	}
	reg := server.Stats().Registry()
	n.gossipRounds = reg.Counter("backbone_gossip_rounds", "gossip rounds sealed to backbone links")
	n.handshakesDone = reg.Counter("backbone_handshakes", "backbone link handshakes completed")
	n.envelopeDrops = reg.Counter("backbone_envelope_drops", "sealed backbone envelopes dropped before dispatch")
	n.bc, _ = batchio.Upgrade(conn)
	n.eg = batchio.NewEgress(n.bc, backboneIOBatch, backboneFlushDelay, n.framePool, nil)
	server.SetBackbone(n, n)
	n.wg.Add(2)
	go n.readLoop()
	go n.gossipLoop()
	return n
}

// ID returns the router identity this node speaks for.
func (n *Node) ID() string { return n.id }

// Addr returns the backbone socket address.
func (n *Node) Addr() net.Addr { return n.conn.LocalAddr() }

// AddPeer configures a backbone link to a peer router. Both ends
// configure each other; the lexicographically smaller ID initiates the
// handshake (a deterministic tie-break so simultaneous hellos cannot
// derive mismatched keys), the other answers.
func (n *Node) AddPeer(id string, addr net.Addr) {
	n.mu.Lock()
	n.dials[id] = addr
	n.mu.Unlock()
}

// LivePeers returns the IDs of currently established links.
func (n *Node) LivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.links))
	for id := range n.links {
		out = append(out, id)
	}
	return out
}

// HopsTo returns the known backbone distance to a router (0 for self).
func (n *Node) HopsTo(router string) (int, bool) {
	if router == n.id {
		return 0, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.links[router] != nil {
		return 1, true
	}
	if e, ok := n.routes[router]; ok {
		return int(e.hops), true
	}
	return 0, false
}

// OwnerOf returns which router currently owns a roamed session, if this
// node has seen its ownership announcement and the grace window is open.
func (n *Node) OwnerOf(sid core.SessionID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.owners[sid]
	if e == nil || time.Now().After(e.ad.Expires) {
		return "", false
	}
	return e.ad.Owner, true
}

// Close stops the loops and closes the backbone socket. The egress is
// closed first so its final flush still has a live socket under it.
func (n *Node) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.eg.Close()
	_ = n.conn.Close()
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// ---- transport hooks -------------------------------------------------

// ForwardData implements transport.Forwarder: a data frame for a session
// this router no longer holds is relayed toward the adopting router when
// an unexpired ownership record exists. The frame is marshaled before
// returning (it aliases the server's receive buffer).
func (n *Node) ForwardData(f *core.DataFrame) bool {
	n.mu.Lock()
	e := n.owners[f.Session]
	var owner string
	if e != nil && time.Now().Before(e.ad.Expires) {
		owner = e.ad.Owner
	}
	n.mu.Unlock()
	if owner == "" || owner == n.id {
		return false
	}
	body := &transport.RelayBody{
		Target:  owner,
		Origin:  n.id,
		TTL:     uint8(n.cfg.RelayTTL),
		Payload: f.Marshal(),
	}
	return n.relay(body)
}

// HandoffAdopted implements transport.HandoffObserver: the local server
// adopted a roamed session, so install the ownership record and flood
// the announcement.
func (n *Node) HandoffAdopted(prev, next core.SessionID, prevRouter string) {
	ad := &transport.OwnerAd{
		Next:       next,
		Prev:       prev,
		Owner:      n.id,
		PrevRouter: prevRouter,
		Expires:    time.Now().Add(n.cfg.GraceWindow),
	}
	n.integrateOwner(ad, "")
}

// ---- owner / handoff plane -------------------------------------------

// integrateOwner installs one ownership record if it is new, reacts to a
// transfer away from this router (count it, schedule the grace-window
// release), and floods the announcement to every link except the one it
// arrived on. Duplicate announcements — flood echoes, gossip repeats,
// retransmissions — dedup on the adopted session ID and do nothing.
func (n *Node) integrateOwner(ad *transport.OwnerAd, from string) {
	n.mu.Lock()
	if n.owners[ad.Next] != nil {
		n.mu.Unlock()
		return
	}
	n.owners[ad.Next] = &ownerEntry{ad: *ad}
	n.mu.Unlock()

	if ad.PrevRouter == n.id && ad.Owner != n.id {
		n.stats.NoteHandoffOut()
		// Release the transferred session once the grace window closes;
		// until then in-flight frames keep forwarding. The audit log entry
		// survives the release.
		prev := ad.Prev
		delay := time.Until(ad.Expires)
		if delay < 0 {
			delay = 0
		}
		time.AfterFunc(delay, func() {
			if !n.closed.Load() {
				n.router.ReleaseSession(prev)
			}
		})
	}
	n.flood(transport.KindHandoffAnnounce, ad.Marshal(), from)
}

// flood seals plaintext to every established link except skipPeer.
func (n *Node) flood(kind transport.Kind, plaintext []byte, skipPeer string) {
	n.mu.Lock()
	targets := make([]*link, 0, len(n.links))
	for id, l := range n.links {
		if id != skipPeer {
			targets = append(targets, l)
		}
	}
	n.mu.Unlock()
	for _, l := range targets {
		n.sendSealed(l, kind, plaintext)
	}
}

// sendSealed seals plaintext on one link into a pooled egress buffer —
// frame header first (the envelope size is deterministic), envelope
// sealed in place after it — and queues the datagram for the next
// sendmmsg flush.
func (n *Node) sendSealed(l *link, kind transport.Kind, plaintext []byte) bool {
	b := n.eg.Buffer()
	frame, err := transport.AppendFrameHeader(b.B, kind, transport.LinkEnvelopeLen(n.id, len(plaintext)))
	if err != nil {
		b.Release()
		n.logf("backbone %s: encode %v: %v", n.id, kind, err)
		return false
	}
	b.B = l.sealAppend(frame, kind, n.id, plaintext)
	n.eg.QueueBuf(b, l.addr)
	return true
}

// ---- relay plane ------------------------------------------------------

// relay sends one relay body toward its target and counts the hop.
func (n *Node) relay(body *transport.RelayBody) bool {
	l := n.nextHop(body.Target)
	if l == nil {
		return false
	}
	if !n.sendSealed(l, transport.KindRelay, body.Marshal()) {
		return false
	}
	n.stats.NoteFrameRelayed()
	return true
}

// nextHop picks the link toward a target router: direct when linked,
// else the distance-vector route.
func (n *Node) nextHop(target string) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.links[target]; l != nil {
		return l
	}
	if e, ok := n.routes[target]; ok {
		return n.links[e.via]
	}
	return nil
}

// handleRelay processes one relay envelope: deliver at the target,
// forward with a decremented TTL otherwise.
func (n *Node) handleRelay(body *transport.RelayBody) {
	if body.Target == n.id {
		// Zero-copy delivery: decode into the read loop's scratch frame
		// (handleRelay only runs there) and open into its plaintext buffer.
		if err := core.UnmarshalDataFrameInto(body.Payload, &n.scratchFrame); err != nil {
			n.logf("backbone %s: relayed frame: %v", n.id, err)
			return
		}
		sess, ok := n.router.SessionByID(n.scratchFrame.Session)
		if !ok {
			n.logf("backbone %s: relayed frame for unknown session", n.id)
			return
		}
		pt, err := sess.OpenDataInto(&n.scratchFrame, n.pt[:0])
		if err != nil {
			n.logf("backbone %s: relayed frame rejected: %v", n.id, err)
			return
		}
		n.pt = pt[:0]
		n.stats.NoteDataDelivered()
		n.stats.NoteDataBytes(len(pt))
		return
	}
	if body.TTL == 0 {
		n.logf("backbone %s: relay TTL exhausted toward %s", n.id, body.Target)
		return
	}
	body.TTL--
	n.relay(body)
}

// ---- gossip plane ------------------------------------------------------

// gossipLoop is the periodic maintenance tick: (re)initiate handshakes
// for configured-but-down links, expire silent peers, prune stale owner
// records, and send one gossip round on every live link.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for range t.C {
		if n.closed.Load() {
			return
		}
		n.tick(time.Now())
	}
}

func (n *Node) tick(now time.Time) {
	type dial struct {
		peer  string
		addr  net.Addr
		frame []byte
	}
	var dialsOut []dial
	type round struct {
		l    *link
		body []byte
	}
	var rounds []round

	n.mu.Lock()
	// Expire links that went silent.
	for id, l := range n.links {
		if now.Sub(l.seen()) > n.cfg.PeerTimeout {
			delete(n.links, id)
			delete(n.welcomes, id)
			for r, e := range n.routes {
				if e.via == id {
					delete(n.routes, r)
				}
			}
		}
	}
	// Initiate handshakes where this node is the designated initiator.
	for id, addr := range n.dials {
		if n.links[id] != nil || n.id >= id {
			continue
		}
		p := n.pending[id]
		if p == nil {
			var err error
			if p, err = n.newDial(); err != nil {
				n.logf("backbone %s: dial %s: %v", n.id, id, err)
				continue
			}
			n.pending[id] = p
		}
		dialsOut = append(dialsOut, dial{peer: id, addr: addr, frame: p.frame})
	}
	// Prune owner records one extra grace window past expiry: late
	// duplicate announcements still dedup, but the table stays bounded.
	for sid, e := range n.owners {
		if now.After(e.ad.Expires.Add(n.cfg.GraceWindow)) {
			delete(n.owners, sid)
		}
	}
	// Compose one gossip round per live link (split horizon: routes that
	// go via the destination are withheld).
	bootEpoch := n.server.BootEpoch()
	live := int64(len(n.links))
	for id, l := range n.links {
		body := &transport.GossipBody{BootEpoch: bootEpoch}
		for r, e := range n.routes {
			if e.via == id || r == id {
				continue
			}
			body.Routes = append(body.Routes, transport.RouteAd{Router: r, Hops: e.hops})
		}
		for peer := range n.links {
			if peer != id {
				body.Routes = append(body.Routes, transport.RouteAd{Router: peer, Hops: 1})
			}
		}
		for _, e := range n.owners {
			if now.Before(e.ad.Expires) {
				body.Owners = append(body.Owners, e.ad)
			}
		}
		rounds = append(rounds, round{l: l, body: body.Marshal()})
	}
	n.mu.Unlock()

	n.stats.SetGossipPeers(live)
	for _, d := range dialsOut {
		n.eg.Queue(d.frame, d.addr)
	}
	for _, r := range rounds {
		if n.sendSealed(r.l, transport.KindGossip, r.body) {
			n.gossipRounds.Add(1)
		}
	}
	// One tick, one sendmmsg: hellos and every link's gossip round leave
	// together.
	n.eg.Flush()
}

// newDial builds a fresh signed hello (called under n.mu).
func (n *Node) newDial() (*pendingDial, error) {
	c := n.router.Certificate()
	if c == nil {
		return nil, fmt.Errorf("no certificate installed")
	}
	scalar, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return nil, err
	}
	p := &pendingDial{
		scalar: scalar,
		share:  new(bn256.G1).ScalarBaseMult(scalar).Marshal(),
	}
	if _, err := rand.Read(p.nonce[:]); err != nil {
		return nil, err
	}
	hello := &transport.RouterHello{
		Cert:      c,
		Share:     p.share,
		Nonce:     p.nonce,
		Timestamp: time.Now(),
	}
	if hello.Sig, err = n.router.SignAs(hello.SignedBody()); err != nil {
		return nil, err
	}
	if p.frame, err = transport.EncodeMessage(hello); err != nil {
		return nil, err
	}
	return p, nil
}

// integrateGossip folds one gossip round from a live peer into the
// routing table and ownership records.
func (n *Node) integrateGossip(from string, body *transport.GossipBody) {
	n.mu.Lock()
	for _, ad := range body.Routes {
		if ad.Router == n.id || ad.Hops+1 > n.cfg.MaxHops {
			continue
		}
		cand := routeEntry{via: from, hops: ad.Hops + 1}
		cur, ok := n.routes[ad.Router]
		if !ok || cand.hops < cur.hops || cur.via == from {
			n.routes[ad.Router] = cand
		}
	}
	n.mu.Unlock()
	for i := range body.Owners {
		n.integrateOwner(&body.Owners[i], from)
	}
}

// ---- socket loop -------------------------------------------------------

func (n *Node) readLoop() {
	defer n.wg.Done()
	ring := batchio.NewRing(backboneIOBatch, batchio.NewPool(65536))
	defer ring.Close()
	for {
		ms := ring.Prepare()
		nr, err := n.bc.ReadBatch(ms)
		if err != nil {
			if n.closed.Load() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			n.logf("backbone %s: read: %v", n.id, err)
			return
		}
		for i := 0; i < nr; i++ {
			n.dispatch(&ms[i])
		}
		// Everything a batch provoked (relay forwards, flood echoes,
		// welcomes) leaves in one sendmmsg.
		n.eg.Flush()
	}
}

// dispatch decodes and serves one ingest slot. Every decoder below
// copies what it keeps, so the slot is free for reuse on return; only
// the hello path clones the peer address, which outlives the batch
// inside the installed link.
func (n *Node) dispatch(m *batchio.Message) {
	kind, payload, err := transport.DecodeFrame(m.Payload())
	if err != nil {
		return
	}
	switch kind {
	case transport.KindRouterHello:
		h, err := transport.UnmarshalRouterHello(payload)
		if err != nil {
			return
		}
		n.handleHello(h, batchio.CloneAddr(m.Addr))
	case transport.KindRouterWelcome:
		w, err := transport.UnmarshalRouterWelcome(payload)
		if err != nil {
			return
		}
		n.handleWelcome(w)
	case transport.KindGossip, transport.KindRelay, transport.KindHandoffAnnounce:
		env, err := transport.UnmarshalLinkEnvelope(payload)
		if err != nil {
			return
		}
		n.handleEnvelope(kind, env)
	}
}

// handleEnvelope opens a sealed envelope on the sender's link and
// dispatches its plaintext.
func (n *Node) handleEnvelope(kind transport.Kind, env *transport.LinkEnvelope) {
	n.mu.Lock()
	l := n.links[env.From]
	n.mu.Unlock()
	if l == nil {
		n.envelopeDrops.Add(1)
		return
	}
	pt, err := l.open(kind, env)
	if err != nil {
		// Replays, stale keys after a peer restart, corrupted datagrams —
		// all drop silently; gossip silence eventually expires a dead key.
		n.envelopeDrops.Add(1)
		return
	}
	switch kind {
	case transport.KindGossip:
		body, err := transport.UnmarshalGossipBody(pt)
		if err != nil {
			return
		}
		n.integrateGossip(env.From, body)
	case transport.KindRelay:
		body, err := transport.UnmarshalRelayBody(pt)
		if err != nil {
			return
		}
		n.handleRelay(body)
	case transport.KindHandoffAnnounce:
		ad, err := transport.UnmarshalOwnerAd(pt)
		if err != nil {
			return
		}
		n.integrateOwner(ad, env.From)
	}
}

// checkPeerCert verifies a handshake certificate against the NO
// authority and the installed CRL, and the handshake signature under it.
func (n *Node) checkPeerCert(c *cert.Certificate, signedBody, sig []byte, ts time.Time) error {
	now := time.Now()
	if d := now.Sub(ts); d > n.cfg.HelloFreshness || d < -n.cfg.HelloFreshness {
		return fmt.Errorf("handshake timestamp stale")
	}
	if err := cert.CheckCertificate(c, n.router.RouterRevoked, n.router.Authority(), now); err != nil {
		return err
	}
	return c.PublicKey.Verify(signedBody, sig)
}

// handleHello answers a link handshake as the responder: verify the
// initiator's credentials, derive fresh link keys, install the link and
// send back a signed welcome. A retransmitted hello (same nonce) gets
// the cached welcome, keeping exactly one key derivation per handshake.
func (n *Node) handleHello(m *transport.RouterHello, addr net.Addr) {
	peer := m.Cert.SubjectID
	if peer == n.id {
		return
	}

	n.mu.Lock()
	cached := n.welcomes[peer]
	n.mu.Unlock()
	if cached != nil && cached.nonce == m.Nonce {
		n.eg.Queue(cached.frame, addr)
		return
	}

	if err := n.checkPeerCert(m.Cert, m.SignedBody(), m.Sig, m.Timestamp); err != nil {
		n.logf("backbone %s: hello from %s refused: %v", n.id, peer, err)
		return
	}
	peerShare, err := new(bn256.G1).Unmarshal(m.Share)
	if err != nil {
		n.logf("backbone %s: hello share from %s: %v", n.id, peer, err)
		return
	}
	ownCert := n.router.Certificate()
	if ownCert == nil {
		return
	}
	scalar, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return
	}
	share := new(bn256.G1).ScalarBaseMult(scalar).Marshal()
	dh := new(bn256.G1).ScalarMult(peerShare, scalar).Marshal()

	w := &transport.RouterWelcome{
		Cert:      ownCert,
		Share:     share,
		Echo:      m.Nonce,
		Timestamp: time.Now(),
	}
	if _, err := rand.Read(w.Nonce[:]); err != nil {
		return
	}
	if w.Sig, err = n.router.SignAs(w.SignedBody()); err != nil {
		n.logf("backbone %s: sign welcome: %v", n.id, err)
		return
	}
	frame, err := transport.EncodeMessage(w)
	if err != nil {
		return
	}

	keys := deriveLinkKeys(dh, peer, n.id, m.Share, share, m.Nonce[:], w.Nonce[:])
	l := newLink(peer, addr, keys)
	n.mu.Lock()
	n.links[peer] = l
	n.welcomes[peer] = &welcomeReplay{nonce: m.Nonce, frame: frame}
	n.mu.Unlock()
	n.handshakesDone.Add(1)

	n.eg.Queue(frame, addr)
}

// handleWelcome completes a handshake this node initiated.
func (n *Node) handleWelcome(m *transport.RouterWelcome) {
	peer := m.Cert.SubjectID
	n.mu.Lock()
	p := n.pending[peer]
	addr := n.dials[peer]
	n.mu.Unlock()
	if p == nil || addr == nil || m.Echo != p.nonce {
		return // stale or unsolicited
	}
	if err := n.checkPeerCert(m.Cert, m.SignedBody(), m.Sig, m.Timestamp); err != nil {
		n.logf("backbone %s: welcome from %s refused: %v", n.id, peer, err)
		return
	}
	peerShare, err := new(bn256.G1).Unmarshal(m.Share)
	if err != nil {
		return
	}
	dh := new(bn256.G1).ScalarMult(peerShare, p.scalar).Marshal()
	keys := deriveLinkKeys(dh, n.id, peer, p.share, m.Share, p.nonce[:], m.Nonce[:])
	l := newLink(peer, addr, keys)
	l.touch()

	n.mu.Lock()
	delete(n.pending, peer)
	n.links[peer] = l
	n.mu.Unlock()
	n.handshakesDone.Add(1)
}
