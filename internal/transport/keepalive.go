package transport

import (
	"fmt"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/wire"
)

// Keepalive body tags. The bodies travel as the plaintext of a
// core.DataFrame sealed under the session key, so a pong proves the peer
// still holds the session (a rebooted router cannot produce one) and both
// directions ride the session's replay protection.
const (
	pingBodyTag = "peace/ping:v1"
	pongBodyTag = "peace/pong:v1"
)

// PingBody is the plaintext of a keepalive ping: a client-chosen nonce the
// pong must echo, binding each pong to the ping that solicited it.
type PingBody struct {
	Nonce uint64
}

// Marshal encodes the ping body.
func (p *PingBody) Marshal() []byte {
	w := wire.NewWriter(32)
	w.StringField(pingBodyTag)
	w.Uint64(p.Nonce)
	return w.Bytes()
}

// UnmarshalPingBody decodes a ping body.
func UnmarshalPingBody(data []byte) (*PingBody, error) {
	r := wire.NewReader(data)
	tag, err := r.StringField()
	if err != nil {
		return nil, err
	}
	if tag != pingBodyTag {
		return nil, fmt.Errorf("transport: ping body tag %q", tag)
	}
	p := &PingBody{}
	if p.Nonce, err = r.Uint64(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// PongBody is the plaintext of a keepalive pong: the echoed nonce plus the
// server's boot epoch, giving the client an authenticated view of which
// process incarnation is answering.
type PongBody struct {
	Nonce     uint64
	BootEpoch uint64
}

// Marshal encodes the pong body.
func (p *PongBody) Marshal() []byte {
	w := wire.NewWriter(40)
	w.StringField(pongBodyTag)
	w.Uint64(p.Nonce)
	w.Uint64(p.BootEpoch)
	return w.Bytes()
}

// UnmarshalPongBody decodes a pong body.
func UnmarshalPongBody(data []byte) (*PongBody, error) {
	r := wire.NewReader(data)
	tag, err := r.StringField()
	if err != nil {
		return nil, err
	}
	if tag != pongBodyTag {
		return nil, fmt.Errorf("transport: pong body tag %q", tag)
	}
	p := &PongBody{}
	if p.Nonce, err = r.Uint64(); err != nil {
		return nil, err
	}
	if p.BootEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// SessionPing wraps a sealed ping frame for kind dispatch.
type SessionPing struct{ Frame *core.DataFrame }

// SessionPong wraps a sealed pong frame for kind dispatch.
type SessionPong struct{ Frame *core.DataFrame }
