package transport

import (
	"net"
	"sort"
	"sync"
	"time"
)

// rateLimiter is a per-source token bucket applied to the attach/resume
// ingress before any decode or crypto work: the two handshake kinds are
// the only ones that can cost a pairing, so they are the ones a flooding
// source must not be able to buy with bare datagrams (ROADMAP 3(a)).
//
// Buckets are keyed by source IP (not port, so one host cannot widen its
// budget by rotating ephemeral ports) and refill continuously at rate
// tokens/sec up to burst. The clock is injectable for deterministic
// tests.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	// maxSources bounds the bucket table so the limiter itself cannot be
	// used to exhaust memory with spoofed sources. On overflow the
	// least-recently-active eighth of the buckets is evicted — never the
	// whole table, so a spoofed-source churn attack cannot zero every
	// active source's debt at once. An evicted source that returns is
	// re-admitted at full burst (a deliberate fail-open: the limiter sheds
	// load, it is not an auth boundary).
	maxSources int
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// defaultMaxSources bounds the per-source table at roughly 4 MB.
const defaultMaxSources = 1 << 16

// newRateLimiter builds a limiter allowing rate requests/sec with the
// given burst per source. A nil now uses the wall clock; burst < 1 is
// raised to 1 so a conforming source is never starved outright.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:       rate,
		burst:      float64(burst),
		now:        now,
		buckets:    make(map[string]*tokenBucket),
		maxSources: defaultMaxSources,
	}
}

// sourceKey extracts the bucket key from a peer address: the IP alone
// for UDP peers, the full string for exotic PacketConn impls (tests,
// chaos wrappers) whose addresses may not parse as host:port.
func sourceKey(addr net.Addr) string {
	if ua, ok := addr.(*net.UDPAddr); ok {
		return string(ua.IP)
	}
	if host, _, err := net.SplitHostPort(addr.String()); err == nil {
		return host
	}
	return addr.String()
}

// allow spends one token from addr's bucket, reporting false when the
// source is over budget and the datagram should be dropped.
func (rl *rateLimiter) allow(addr net.Addr) bool {
	key := sourceKey(addr)
	t := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= rl.maxSources {
			rl.evictOldestLocked()
		}
		b = &tokenBucket{tokens: rl.burst, last: t}
		rl.buckets[key] = b
	} else {
		dt := t.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * rl.rate
			if b.tokens > rl.burst {
				b.tokens = rl.burst
			}
			b.last = t
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictOldestLocked drops the least-recently-active eighth of the bucket
// table (at least one entry) to make room for a new source. Sorting the
// full table is acceptable here: eviction fires only when maxSources
// distinct IPs are live inside one refill horizon, i.e. already under a
// spoofed-source flood, and amortizes over the next maxSources/8 inserts.
func (rl *rateLimiter) evictOldestLocked() {
	type aged struct {
		key  string
		last time.Time
	}
	entries := make([]aged, 0, len(rl.buckets))
	for k, b := range rl.buckets {
		entries = append(entries, aged{k, b.last})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].last.Before(entries[j].last) })
	n := len(entries) / 8
	if n < 1 {
		n = 1
	}
	for _, e := range entries[:n] {
		delete(rl.buckets, e.key)
	}
}
