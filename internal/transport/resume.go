package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// ResumeNonceSize is the length of the client and server nonces mixed
// into a resumed session's keys.
const ResumeNonceSize = 16

// ResumeRequest asks for a symmetric-only re-attach: the STEK-sealed
// ticket (opaque to the client), a fresh client nonce, a timestamp, and a
// MAC keyed by the ticket's resumption secret over all of it. The server
// needs no per-client state to verify — it opens the ticket, re-derives
// the MAC key from the embedded secret, and checks the tag.
type ResumeRequest struct {
	Ticket    []byte
	Nonce     [ResumeNonceSize]byte
	Timestamp time.Time
	Tag       [symcrypto.MACSize]byte

	// HasSolution and the echo triple carry the client-puzzle answer when
	// the router demands one on the resume path too. The fields are under
	// the request MAC, so a solution cannot be stripped from or grafted
	// onto someone else's resume in flight.
	HasSolution      bool
	Solution         uint64
	PuzzleIssuedAt   time.Time
	PuzzleDifficulty uint8
}

// macBody is the byte string the request tag covers.
func (m *ResumeRequest) macBody() []byte {
	w := wire.NewWriter(96 + len(m.Ticket))
	w.StringField("peace/resume-req:v2")
	w.BytesField(m.Ticket)
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	if m.HasSolution {
		w.Byte(1)
		w.Uint64(m.Solution)
		w.Time(m.PuzzleIssuedAt)
		w.Byte(m.PuzzleDifficulty)
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// sign computes and installs the request tag.
func (m *ResumeRequest) sign(secret []byte) {
	m.Tag = symcrypto.MAC(resumeMACKey(secret), 0, m.macBody())
}

// verify checks the request tag against the ticket's secret.
func (m *ResumeRequest) verify(secret []byte) error {
	return symcrypto.VerifyMAC(resumeMACKey(secret), 0, m.macBody(), m.Tag)
}

// Marshal encodes the resume request.
func (m *ResumeRequest) Marshal() []byte {
	w := wire.NewWriter(128 + len(m.Ticket))
	w.BytesField(m.Ticket)
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	w.BytesField(m.Tag[:])
	if m.HasSolution {
		w.Byte(1)
		w.Uint64(m.Solution)
		w.Time(m.PuzzleIssuedAt)
		w.Byte(m.PuzzleDifficulty)
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// UnmarshalResumeRequest decodes a resume request, copying the ticket so
// the result outlives the input buffer.
func UnmarshalResumeRequest(data []byte) (*ResumeRequest, error) {
	m := &ResumeRequest{}
	if err := UnmarshalResumeRequestInto(data, m); err != nil {
		return nil, err
	}
	m.Ticket = append([]byte(nil), m.Ticket...)
	return m, nil
}

// UnmarshalResumeRequestInto decodes a resume request into m without
// allocating: m.Ticket aliases data, so the caller must finish with m
// before reusing the receive buffer. This is the hot decode of the
// sharded resume path.
func UnmarshalResumeRequestInto(data []byte, m *ResumeRequest) error {
	r := wire.NewReader(data)
	tk, err := r.BytesField()
	if err != nil {
		return err
	}
	m.Ticket = tk
	nonce, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(nonce) != ResumeNonceSize {
		return fmt.Errorf("transport: resume nonce size %d", len(nonce))
	}
	copy(m.Nonce[:], nonce)
	if m.Timestamp, err = r.Time(); err != nil {
		return err
	}
	tag, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(tag) != symcrypto.MACSize {
		return fmt.Errorf("transport: resume tag size %d", len(tag))
	}
	copy(m.Tag[:], tag)
	has, err := r.Byte()
	if err != nil {
		return err
	}
	m.HasSolution = has == 1
	if m.HasSolution {
		if m.Solution, err = r.Uint64(); err != nil {
			return err
		}
		if m.PuzzleIssuedAt, err = r.Time(); err != nil {
			return err
		}
		if m.PuzzleDifficulty, err = r.Byte(); err != nil {
			return err
		}
	} else {
		m.Solution, m.PuzzleIssuedAt, m.PuzzleDifficulty = 0, time.Time{}, 0
	}
	return r.Finish()
}

// ResumeConfirm is the server's answer to a ResumeRequest. Dedup echoes
// the exchange identifier so the client can match the reply; Ciphertext
// is sealed under the NEW session's encryption key (AAD = new session
// id), so a valid confirm proves the server derived the same keys — key
// confirmation exactly as M.3 provides for the full handshake.
type ResumeConfirm struct {
	Dedup      core.SessionID
	Nonce      [ResumeNonceSize]byte // server nonce
	Ciphertext []byte
}

// Marshal encodes the resume confirm.
func (m *ResumeConfirm) Marshal() []byte {
	w := wire.NewWriter(96 + len(m.Ciphertext))
	w.BytesField(m.Dedup[:])
	w.BytesField(m.Nonce[:])
	w.BytesField(m.Ciphertext)
	return w.Bytes()
}

// UnmarshalResumeConfirm decodes a resume confirm.
func UnmarshalResumeConfirm(data []byte) (*ResumeConfirm, error) {
	r := wire.NewReader(data)
	m := &ResumeConfirm{}
	d, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(d) != len(m.Dedup) {
		return nil, fmt.Errorf("transport: resume dedup size %d", len(d))
	}
	copy(m.Dedup[:], d)
	nonce, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(nonce) != ResumeNonceSize {
		return nil, fmt.Errorf("transport: resume nonce size %d", len(nonce))
	}
	copy(m.Nonce[:], nonce)
	ct, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Ciphertext = append([]byte(nil), ct...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// resumeOKTag versions the sealed confirm body.
const resumeOKTag = "peace/resume-ok:v1"

// resumeOK is the plaintext inside a ResumeConfirm: the answering router,
// its boot epoch (the resume-path analogue of the beacon's authenticated
// restart signal), the echoed client nonce, and the reissued ticket for
// the next re-attach.
type resumeOK struct {
	RouterID  string
	BootEpoch uint64
	Nonce     [ResumeNonceSize]byte // echoed client nonce
	Ticket    []byte
}

func (b *resumeOK) marshal() []byte {
	w := wire.NewWriter(96 + len(b.Ticket))
	w.StringField(resumeOKTag)
	w.StringField(b.RouterID)
	w.Uint64(b.BootEpoch)
	w.BytesField(b.Nonce[:])
	w.BytesField(b.Ticket)
	return w.Bytes()
}

func unmarshalResumeOK(data []byte) (*resumeOK, error) {
	r := wire.NewReader(data)
	tag, err := r.StringField()
	if err != nil {
		return nil, err
	}
	if tag != resumeOKTag {
		return nil, fmt.Errorf("transport: resume body tag %q", tag)
	}
	b := &resumeOK{}
	if b.RouterID, err = r.StringField(); err != nil {
		return nil, err
	}
	if b.BootEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	nonce, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(nonce) != ResumeNonceSize {
		return nil, fmt.Errorf("transport: resume body nonce size %d", len(nonce))
	}
	copy(b.Nonce[:], nonce)
	tk, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	b.Ticket = append([]byte(nil), tk...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return b, nil
}

// resumeTicket is the client's held resumption state: the opaque sealed
// blob, the secret it re-derived locally, and the session the secret
// belongs to.
type resumeTicket struct {
	blob   []byte
	secret []byte
	prev   core.SessionID
}

// HasTicket reports whether the client holds resumption state.
func (c *Client) HasTicket() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticket != nil
}

// storeTicket records resumption state minted by an attach or resume.
func (c *Client) storeTicket(blob []byte, sess *core.Session) {
	if len(blob) == 0 || sess == nil {
		return
	}
	t := &resumeTicket{blob: blob, secret: sess.ResumptionSecret(), prev: sess.ID}
	c.mu.Lock()
	c.ticket = t
	c.mu.Unlock()
	c.stats.ticketsHeld.Store(1)
}

// clearTicket drops held resumption state (after the server refused it).
func (c *Client) clearTicket() {
	c.mu.Lock()
	c.ticket = nil
	c.mu.Unlock()
	c.stats.ticketsHeld.Store(0)
}

func (c *Client) heldTicket() *resumeTicket {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticket
}

// Resume re-attaches over the symmetric-only ticket path: one round trip,
// no beacon, no revocation sync, no group signature. It fails with
// ErrNoTicket when no ticket is held and ErrTicketUnusable (or
// core.ErrRevocationStale) when the server refuses the ticket — the
// caller falls back to the full Attach. On success the reissued ticket
// replaces the spent one, so steady-state churn needs one full handshake
// per STEK-rotation period, not per re-attach.
func (c *Client) Resume(ctx context.Context) (*core.Session, error) {
	t := c.heldTicket()
	if t == nil {
		return nil, ErrNoTicket
	}
	c.stats.resumeAttempts.Add(1)
	resumeStart := time.Now()

	var sess *core.Session
	var body *resumeOK
	var challenge *puzzle.Puzzle
	for tries := 0; ; tries++ {
		err := c.resumeOnce(ctx, t, challenge, &sess, &body)
		if err == nil {
			break
		}
		var pc *puzzleChallengeError
		if errors.As(err, &pc) && tries < maxPuzzleRetries {
			challenge = pc.p
			continue
		}
		return nil, err
	}

	c.user.AdoptSession(sess)
	c.setSession(sess, body.BootEpoch)
	c.storeTicket(body.Ticket, sess)
	c.stats.resumeSuccesses.Add(1)
	// body.RouterID arrived inside the key-confirmed sealed body, so it is
	// as authenticated as the resume itself: a different ID than the
	// session's establisher means this resume was a roaming handoff.
	elapsed := time.Since(resumeStart)
	if prev := c.lastRouter(); prev != "" && body.RouterID != "" && body.RouterID != prev {
		c.stats.handoffLatency.Observe(elapsed)
	} else {
		c.stats.resumeLatency.Observe(elapsed)
	}
	if body.RouterID != "" {
		c.setLastRouterID(body.RouterID)
	}
	return sess, nil
}

// resumeOnce runs a single resume exchange. Each call draws a FRESH nonce:
// the server caches its rejects by (ticket, nonce), so a puzzle retry on
// the old nonce would only replay the cached RejectPuzzle. A non-nil
// challenge is solved (within budget) and attached under the request MAC.
func (c *Client) resumeOnce(ctx context.Context, t *resumeTicket, challenge *puzzle.Puzzle, sessOut **core.Session, bodyOut **resumeOK) error {
	req := &ResumeRequest{Ticket: t.blob, Timestamp: time.Now()}
	if _, err := rand.Read(req.Nonce[:]); err != nil {
		return fmt.Errorf("transport: resume nonce: %w", err)
	}
	if challenge != nil {
		sol, ok := c.solvePuzzle(challenge)
		if !ok {
			return fmt.Errorf("transport: resume: %w: solve budget exhausted at difficulty %d",
				core.ErrPuzzleRequired, challenge.Difficulty)
		}
		req.HasSolution = true
		req.Solution = sol
		req.PuzzleIssuedAt = challenge.IssuedAt
		req.PuzzleDifficulty = challenge.Difficulty
	}
	req.sign(t.secret)
	frame, err := EncodeMessage(req)
	if err != nil {
		return err
	}
	dedup := resumeDedupID(t.blob, req.Nonce[:])

	return c.exchange(ctx, frame, func(kind Kind, payload []byte) (bool, error) {
		switch kind {
		case KindResumeConfirm:
			m, err := UnmarshalResumeConfirm(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			if m.Dedup != dedup {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			// Derive the candidate session, then demand key confirmation:
			// only a server that opened the ticket and derived the same
			// keys can seal a body that opens under the new session id.
			cand := core.ResumeSession(t.prev, t.secret, req.Nonce[:], m.Nonce[:], "router", time.Now())
			pt, err := cand.OpenData(&core.DataFrame{
				Session: cand.ID, Seq: 0, Encrypted: true, Payload: m.Ciphertext,
			})
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			b, err := unmarshalResumeOK(pt)
			if err != nil || b.Nonce != req.Nonce {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			*sessOut, *bodyOut = cand, b
			return true, nil
		case KindReject:
			rej, err := UnmarshalReject(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			if rej.Session != dedup {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			c.stats.rejects.Add(1)
			if rej.Code.Transient() {
				return false, errTransientReject
			}
			if rej.Code == RejectPuzzle && rej.Puzzle != nil {
				return false, &puzzleChallengeError{p: rej.Puzzle}
			}
			return false, fmt.Errorf("transport: router refused resume (%s): %w", rej.Reason, rej.Code.Err())
		default:
			c.stats.unhandled.Add(1)
			return false, nil
		}
	})
}

// AttachOrResume tries the cheap ticket path first and falls back to the
// full M.1–M.3 handshake when no ticket is held or the server refused it.
// This is the re-attach policy Maintain runs after every detected restart
// or dead peer.
func (c *Client) AttachOrResume(ctx context.Context) (*core.Session, error) {
	if c.HasTicket() {
		sess, err := c.Resume(ctx)
		if err == nil {
			return sess, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Whatever the refusal (rotated STEK, stale epochs, timeout), the
		// held ticket did not work; drop it and let the full attach mint a
		// fresh one.
		c.clearTicket()
		c.stats.resumeFallbacks.Add(1)
	}
	return c.Attach(ctx)
}
