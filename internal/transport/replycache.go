package transport

import (
	"sync"
	"sync/atomic"

	"github.com/peace-mesh/peace/internal/core"
)

// replyStripeCount stripes the reply cache so shard loops dedup
// concurrently without a shared lock. Power of two; indexed by the first
// byte of the (uniform) session or exchange identifier.
const replyStripeCount = 32

// replyEntry is the duplicate-suppression state of one exchange: nil
// frame while the request is in the verification pipeline, the cached
// confirm (or reject) frame afterwards so retransmitted requests are
// answered by replay instead of a second expensive verification.
type replyEntry struct {
	frame []byte
}

// replyCache is the striped, bounded duplicate-suppression cache shared
// by every shard loop. Each stripe evicts FIFO at its own bound, so total
// memory is capped at roughly capacity entries no matter how long a soak
// runs; the size gauge feeds Stats.
type replyCache struct {
	stripes [replyStripeCount]replyStripe
	// perStripe is the per-stripe entry bound (capacity / stripes, min 1).
	perStripe int
	size      atomic.Int64
}

type replyStripe struct {
	mu    sync.Mutex
	m     map[core.SessionID]*replyEntry
	order []core.SessionID // FIFO eviction order
}

func newReplyCache(capacity int) *replyCache {
	c := &replyCache{perStripe: capacity / replyStripeCount}
	if c.perStripe < 1 {
		c.perStripe = 1
	}
	for i := range c.stripes {
		c.stripes[i].m = make(map[core.SessionID]*replyEntry)
	}
	return c
}

func (c *replyCache) stripe(sid core.SessionID) *replyStripe {
	return &c.stripes[sid[0]&(replyStripeCount-1)]
}

// begin claims an exchange. dup=false means the caller owns producing the
// reply (a placeholder was inserted); dup=true means the exchange is
// already known and frame is the cached reply — nil while the original is
// still in flight.
func (c *replyCache) begin(sid core.SessionID) (frame []byte, dup bool) {
	s := c.stripe(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[sid]; ok {
		return e.frame, true
	}
	s.m[sid] = &replyEntry{}
	s.order = append(s.order, sid)
	evicted := 0
	for len(s.order) > c.perStripe {
		delete(s.m, s.order[0])
		s.order = s.order[1:]
		evicted++
	}
	c.size.Add(int64(1 - evicted))
	return nil, false
}

// lookup returns the cached reply frame without claiming anything.
func (c *replyCache) lookup(sid core.SessionID) (frame []byte, ok bool) {
	s := c.stripe(sid)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[sid]
	if !ok {
		return nil, false
	}
	return e.frame, true
}

// fulfill installs the produced reply frame (unless the entry was evicted
// meanwhile).
func (c *replyCache) fulfill(sid core.SessionID, frame []byte) {
	s := c.stripe(sid)
	s.mu.Lock()
	if e, ok := s.m[sid]; ok {
		e.frame = frame
	}
	s.mu.Unlock()
}

// forget releases a claimed exchange whose reply will never be produced
// (queue shed), so a later retry can be admitted.
func (c *replyCache) forget(sid core.SessionID) {
	s := c.stripe(sid)
	s.mu.Lock()
	if _, ok := s.m[sid]; ok {
		delete(s.m, sid)
		for i, o := range s.order {
			if o == sid {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		c.size.Add(-1)
	}
	s.mu.Unlock()
}

// Len returns the current entry count (the Stats gauge).
func (c *replyCache) Len() int64 { return c.size.Load() }
