package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame header constants.
const (
	// Version is the current wire protocol version. A router answers
	// frames of exactly this version; anything else is a decode error
	// (version negotiation is by redeployment, not in-band).
	Version = 1

	// HeaderSize is magic(4) + version(1) + kind(1) + length(4).
	HeaderSize = 10

	// MaxPayload bounds a frame payload to what fits one UDP datagram
	// over IPv4 (65535 − 20 IP − 8 UDP − header).
	MaxPayload = 65507 - HeaderSize
)

// frameMagic distinguishes PEACE datagrams from stray traffic.
var frameMagic = [4]byte{'P', 'E', 'A', 'C'}

// Exported framing errors.
var (
	ErrBadMagic    = errors.New("transport: bad frame magic")
	ErrBadVersion  = errors.New("transport: unsupported frame version")
	ErrBadKind     = errors.New("transport: unknown message kind")
	ErrFrameShort  = errors.New("transport: truncated frame")
	ErrFrameLength = errors.New("transport: frame length mismatch")
	ErrOversize    = errors.New("transport: payload exceeds datagram limit")
)

// Kind identifies which protocol message a frame carries.
type Kind uint8

// Message kinds. KindBeaconRequest has no in-paper counterpart: on the
// air M.1 is broadcast periodically, but over unicast UDP a client
// solicits the current beacon instead of waiting for one.
const (
	KindInvalid Kind = iota
	KindBeaconRequest
	KindBeacon        // M.1
	KindAccessRequest // M.2
	KindAccessConfirm // M.3
	KindPeerHello     // M̃.1
	KindPeerResponse  // M̃.2
	KindPeerConfirm   // M̃.3
	KindURLUpdate     // full URL revocation snapshot
	KindCRLUpdate     // full CRL revocation snapshot
	KindPuzzle
	KindReject
	// KindURLSnapshotRequest solicits revocation state for either list
	// (the RevocationFetch payload says which and what the client holds);
	// the router answers with a KindURLDelta when its bounded history
	// still covers the client's epoch, else with the full snapshot kind.
	KindURLSnapshotRequest
	KindURLDelta
	// KindSessionPing / KindSessionPong carry the encrypted keepalive of
	// an established session: the payload is a core.DataFrame sealed under
	// the session key, so liveness is authenticated in both directions and
	// a post-restart router (which lost the key) cannot fake it.
	KindSessionPing
	KindSessionPong
	// KindResumeRequest / KindResumeConfirm carry the symmetric-only
	// re-attach exchange: the client presents its STEK-sealed resumption
	// ticket plus a MAC keyed by the resumption secret, and the server
	// answers with a sealed confirmation and a reissued ticket — no
	// pairing, no group signature.
	KindResumeRequest
	KindResumeConfirm
	// KindSessionData carries one sealed core.DataFrame of established-
	// session traffic toward the user's attached router. A router that no
	// longer owns the session consults the backbone ownership table and
	// relays the frame toward the adopting router instead of rejecting it
	// (the roaming grace window).
	KindSessionData
	// Inter-router backbone plane. KindRouterHello / KindRouterWelcome run
	// the certificate-authenticated link handshake between two routers of
	// one NO; KindGossip, KindRelay and KindHandoffAnnounce are
	// link-encrypted envelopes (LinkEnvelope) carrying peer liveness +
	// routing state, multi-hop forwarded data frames, and session-ownership
	// transfer announcements respectively.
	KindRouterHello
	KindRouterWelcome
	KindGossip
	KindRelay
	KindHandoffAnnounce

	kindEnd // one past the last valid kind
)

// String names the kind for logs and counters.
func (k Kind) String() string {
	switch k {
	case KindBeaconRequest:
		return "beacon-request"
	case KindBeacon:
		return "beacon"
	case KindAccessRequest:
		return "access-request"
	case KindAccessConfirm:
		return "access-confirm"
	case KindPeerHello:
		return "peer-hello"
	case KindPeerResponse:
		return "peer-response"
	case KindPeerConfirm:
		return "peer-confirm"
	case KindURLUpdate:
		return "url-update"
	case KindCRLUpdate:
		return "crl-update"
	case KindPuzzle:
		return "puzzle"
	case KindReject:
		return "reject"
	case KindURLSnapshotRequest:
		return "revocation-fetch"
	case KindURLDelta:
		return "revocation-delta"
	case KindSessionPing:
		return "session-ping"
	case KindSessionPong:
		return "session-pong"
	case KindResumeRequest:
		return "resume-request"
	case KindResumeConfirm:
		return "resume-confirm"
	case KindSessionData:
		return "session-data"
	case KindRouterHello:
		return "router-hello"
	case KindRouterWelcome:
		return "router-welcome"
	case KindGossip:
		return "gossip"
	case KindRelay:
		return "relay"
	case KindHandoffAnnounce:
		return "handoff-announce"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// EncodeFrame wraps payload in a versioned frame ready to send as one
// datagram.
func EncodeFrame(kind Kind, payload []byte) ([]byte, error) {
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), kind, payload)
}

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, kind Kind, payload []byte) ([]byte, error) {
	if kind == KindInvalid || kind >= kindEnd {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, len(payload))
	}
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, Version, byte(kind))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(payload)))
	dst = append(dst, l[:]...)
	return append(dst, payload...), nil
}

// AppendFrameHeader appends just the frame header for a payload of
// payloadLen bytes that the caller will encode in place right after it
// (the header-first form of AppendFrame for deterministic-size payloads
// like sealed data frames, where a second copy would cost the zero-alloc
// egress path its budget).
func AppendFrameHeader(dst []byte, kind Kind, payloadLen int) ([]byte, error) {
	if kind == KindInvalid || kind >= kindEnd {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if payloadLen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, payloadLen)
	}
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, Version, byte(kind))
	return binary.BigEndian.AppendUint32(dst, uint32(payloadLen)), nil
}

// DecodeFrame validates one datagram and returns its kind and payload.
// The payload aliases the input. Exactly one frame per datagram: trailing
// bytes are an error, as is a length prefix that disagrees with the
// datagram size, so a decoder can never be tricked into reading past the
// received bytes.
func DecodeFrame(datagram []byte) (Kind, []byte, error) {
	if len(datagram) < HeaderSize {
		return KindInvalid, nil, fmt.Errorf("%w: %d bytes", ErrFrameShort, len(datagram))
	}
	if [4]byte(datagram[:4]) != frameMagic {
		return KindInvalid, nil, ErrBadMagic
	}
	if datagram[4] != Version {
		return KindInvalid, nil, fmt.Errorf("%w: %d", ErrBadVersion, datagram[4])
	}
	kind := Kind(datagram[5])
	if kind == KindInvalid || kind >= kindEnd {
		return KindInvalid, nil, fmt.Errorf("%w: %d", ErrBadKind, datagram[5])
	}
	n := binary.BigEndian.Uint32(datagram[6:10])
	if n > MaxPayload {
		return KindInvalid, nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	if int(n) != len(datagram)-HeaderSize {
		return KindInvalid, nil, fmt.Errorf("%w: header says %d, datagram has %d",
			ErrFrameLength, n, len(datagram)-HeaderSize)
	}
	return kind, datagram[HeaderSize:], nil
}
