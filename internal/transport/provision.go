package transport

import (
	"fmt"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/wire"
)

// LocalNetwork is a fully provisioned single-router deployment: operator,
// TTP, one user group with enrolled members, and a certified router with
// fresh revocation state — everything meshd and the loopback experiments
// need before any datagram flows.
type LocalNetwork struct {
	Cfg    core.Config
	NO     *core.NetworkOperator
	TTP    *core.TTP
	GM     *core.GroupManager
	Router *core.MeshRouter
	Users  []*core.User
}

// NewLocalNetwork provisions nUsers members of one group and a certified
// router. Extra key slots are issued so revocation scenarios have
// headroom.
func NewLocalNetwork(cfg core.Config, routerID string, group core.GroupID, nUsers int) (*LocalNetwork, error) {
	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		return nil, err
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		return nil, err
	}
	gm, err := core.NewGroupManager(cfg, group, no.Authority())
	if err != nil {
		return nil, err
	}
	if err := no.RegisterUserGroup(gm, ttp, nUsers+16); err != nil {
		return nil, err
	}

	n := &LocalNetwork{Cfg: cfg, NO: no, TTP: ttp, GM: gm}
	for i := 0; i < nUsers; i++ {
		u, err := core.NewUser(cfg, core.Identity{
			Essential:  core.UserID(fmt.Sprintf("user-%s-%d", group, i)),
			Attributes: []core.Attribute{{Group: group, Role: "member"}},
		}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		if err := core.EnrollUser(u, gm, ttp); err != nil {
			return nil, err
		}
		n.Users = append(n.Users, u)
	}

	r, err := core.NewMeshRouter(cfg, routerID, no.Authority(), no.GroupPublicKey())
	if err != nil {
		return nil, err
	}
	c, err := no.EnrollRouter(routerID, r.Public())
	if err != nil {
		return nil, err
	}
	r.SetCertificate(c)
	n.Router = r
	if err := n.RefreshRevocations(); err != nil {
		return nil, err
	}
	return n, nil
}

// RefreshRevocations pushes freshly signed CRL/URL bundles to the router
// (the operator's periodic secure channel). Users are NOT updated here:
// they converge over the wire via deltas, which is the point of the
// distribution subsystem.
func (n *LocalNetwork) RefreshRevocations() error {
	crl, url, err := n.NO.RevocationBundles()
	if err != nil {
		return err
	}
	return n.Router.UpdateRevocations(crl, url)
}

// SeedUserRevocations installs the router's current revocation snapshots
// directly into every provisioned user — the out-of-band bootstrap a
// real deployment performs at enrollment time. Skip it to exercise the
// in-band path, where clients converge via delta fetches.
func (n *LocalNetwork) SeedUserRevocations() error {
	for _, l := range []revocation.List{revocation.ListURL, revocation.ListCRL} {
		snap, ok := n.Router.RevocationSnapshot(l)
		if !ok {
			return fmt.Errorf("provision: router has no %v snapshot", l)
		}
		for _, u := range n.Users {
			if err := u.InstallRevocationSnapshot(snap); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExportCredentials serializes the trust anchors (NPK, gpk) and every
// user's finished credentials, so a separate client process can
// authenticate without re-running enrollment: the provisioning-service
// model of a real deployment.
func (n *LocalNetwork) ExportCredentials() ([]byte, error) {
	w := wire.NewWriter(4096)
	w.StringField("peace/provision:v1")
	noPub := n.NO.Authority()
	w.BytesField(noPub[:])
	w.BytesField(sgs.PublicKeyBytes(n.NO.GroupPublicKey()))
	w.Uint32(uint32(len(n.Users)))
	for _, u := range n.Users {
		w.StringField(string(u.ID()))
		creds := u.Credentials()
		w.Uint32(uint32(len(creds)))
		for _, c := range creds {
			w.StringField(string(c.Group))
			w.Uint32(uint32(c.Index))
			w.BytesField(sgs.PrivateKeyBytes(c.Key))
		}
	}
	return w.Bytes(), nil
}

// ImportUsers reconstructs provisioned users from ExportCredentials
// output, validating every credential against the imported group public
// key before installing it.
func ImportUsers(cfg core.Config, data []byte) ([]*core.User, error) {
	r := wire.NewReader(data)
	tag, err := r.StringField()
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	if tag != "peace/provision:v1" {
		return nil, fmt.Errorf("provision: bad header %q", tag)
	}
	rawPub, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	var noPub cert.PublicKey
	if len(rawPub) != len(noPub) {
		return nil, fmt.Errorf("provision: authority key size %d", len(rawPub))
	}
	copy(noPub[:], rawPub)
	rawGPK, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	gpk, err := sgs.ParsePublicKey(rawGPK)
	if err != nil {
		return nil, fmt.Errorf("provision: gpk: %w", err)
	}

	nUsers, err := r.Count(8)
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	users := make([]*core.User, 0, nUsers)
	for i := 0; i < nUsers; i++ {
		uid, err := r.StringField()
		if err != nil {
			return nil, fmt.Errorf("provision user %d: %w", i, err)
		}
		nCreds, err := r.Count(12)
		if err != nil {
			return nil, fmt.Errorf("provision user %q: %w", uid, err)
		}
		u, err := core.NewUser(cfg, core.Identity{Essential: core.UserID(uid)}, noPub, gpk)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nCreds; j++ {
			group, err := r.StringField()
			if err != nil {
				return nil, fmt.Errorf("provision cred %d of %q: %w", j, uid, err)
			}
			idx, err := r.Uint32()
			if err != nil {
				return nil, fmt.Errorf("provision cred %d of %q: %w", j, uid, err)
			}
			rawKey, err := r.BytesField()
			if err != nil {
				return nil, fmt.Errorf("provision cred %d of %q: %w", j, uid, err)
			}
			key, err := sgs.ParsePrivateKey(rawKey)
			if err != nil {
				return nil, fmt.Errorf("provision cred %d of %q: %w", j, uid, err)
			}
			if err := u.InstallCredential(&core.Credential{
				Group: core.GroupID(group),
				Index: int(idx),
				Key:   key,
			}); err != nil {
				return nil, err
			}
		}
		users = append(users, u)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	return users, nil
}
