package batchio

// Ring is a read loop's batch of pooled receive slots with explicit
// buffer ownership. Prepare returns the slot array to pass to
// ReadBatch; each filled slot's bytes belong to the ring and are valid
// only until the next Prepare. A handler that must keep a datagram
// longer calls Retain(i), which transfers the slot's *Buf to the
// handler (who Releases it when done) and marks the slot so the next
// Prepare replaces it from the pool — retained bytes can never be
// clobbered by a later batch.
type Ring struct {
	pool     *Pool
	bufs     []*Buf
	msgs     []Message
	retained []bool
}

// NewRing checks k receive slots out of pool.
func NewRing(k int, pool *Pool) *Ring {
	if k < 1 {
		k = 1
	}
	r := &Ring{
		pool:     pool,
		bufs:     make([]*Buf, k),
		msgs:     make([]Message, k),
		retained: make([]bool, k),
	}
	for i := range r.bufs {
		r.bufs[i] = pool.Get()
		r.msgs[i].Buf = r.bufs[i].B[:pool.BufSize()]
	}
	return r
}

// Prepare resets every slot for the next ReadBatch, replacing retained
// buffers from the pool, and returns the slot array.
func (r *Ring) Prepare() []Message {
	for i := range r.msgs {
		if r.retained[i] {
			r.bufs[i] = r.pool.Get()
			r.msgs[i].Buf = r.bufs[i].B[:r.pool.BufSize()]
			r.retained[i] = false
		}
		r.msgs[i].N = 0
		r.msgs[i].Addr = nil
	}
	return r.msgs
}

// Retain transfers ownership of slot i's buffer to the caller, who must
// Release it. The slot's Message (Buf, N, Addr) stays readable until
// the next Prepare; the returned *Buf is what keeps the bytes alive
// beyond it.
func (r *Ring) Retain(i int) *Buf {
	if r.retained[i] {
		return nil
	}
	r.retained[i] = true
	return r.bufs[i]
}

// Close releases every buffer the ring still owns. Retained buffers are
// their takers' to release.
func (r *Ring) Close() {
	for i := range r.bufs {
		if !r.retained[i] && r.bufs[i] != nil {
			r.bufs[i].Release()
			r.bufs[i] = nil
			r.retained[i] = true
		}
	}
}
