package batchio

import (
	"sync"
	"sync/atomic"
)

// Buf is a pooled datagram buffer. B starts empty with the pool's
// capacity; append frames into it (or reslice to full capacity for
// receive slots) and call Release exactly once when the bytes are no
// longer referenced. The *Buf itself round-trips through the sync.Pool,
// so steady-state Get/Release pairs do not allocate.
type Buf struct {
	B    []byte
	pool *Pool
}

// Release returns the buffer to its pool. The caller must not touch
// b.B afterwards.
func (b *Buf) Release() {
	if b != nil && b.pool != nil {
		b.pool.put(b)
	}
}

// Cap returns the buffer's capacity.
func (b *Buf) Cap() int { return cap(b.B) }

// Pool is a leak-checked sync.Pool of fixed-capacity datagram buffers.
// Outstanding counts Gets minus Releases; tests assert it returns to
// zero, which is how the "every pooled frame is returned" contract on
// the seal/open and relay paths is enforced.
type Pool struct {
	size        int
	outstanding atomic.Int64
	p           sync.Pool
}

// NewPool builds a pool of buffers with capacity size.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = 64 * 1024
	}
	return &Pool{size: size}
}

// BufSize returns the capacity of the pool's buffers.
func (p *Pool) BufSize() int { return p.size }

// Outstanding returns the number of buffers currently checked out.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Get checks a buffer out of the pool; its B is empty with at least
// BufSize capacity.
func (p *Pool) Get() *Buf {
	p.outstanding.Add(1)
	if v := p.p.Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:0]
		return b
	}
	return &Buf{B: make([]byte, 0, p.size), pool: p}
}

func (p *Pool) put(b *Buf) {
	p.outstanding.Add(-1)
	if cap(b.B) < p.size {
		// The user grew-and-reallocated the slice; retire this Buf rather
		// than shrink the pool's buffer class.
		return
	}
	p.p.Put(b)
}
