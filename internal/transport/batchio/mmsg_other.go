//go:build !linux || !(amd64 || arm64)

package batchio

import "net"

// upgradeUDP has no multi-datagram syscall path on this target; Upgrade
// falls back to the portable single-datagram implementation.
func upgradeUDP(uc *net.UDPConn) (Conn, bool) { return nil, false }
