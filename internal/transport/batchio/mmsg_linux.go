//go:build linux && (amd64 || arm64)

package batchio

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// UDP_SEGMENT is the cmsg type (and socket option) selecting UDP
// generic segmentation offload: one sendmsg carries a train of
// equal-size segments the kernel splits after a single traversal of the
// stack. The syscall package predates it, so the constant lives here.
const udpSegment = 103

// gsoMaxSegs caps one coalesced send below the kernel's
// UDP_MAX_SEGMENTS (64); gsoMaxBytes keeps the train inside one UDP
// payload.
const (
	gsoMaxSegs  = 60
	gsoMaxBytes = 64000
)

// cmsgSeg is one control-message block carrying the uint16 GSO segment
// size, padded so a slice of them keeps each cmsghdr 8-byte aligned.
type cmsgSeg struct {
	hdr  syscall.Cmsghdr
	data [8]byte
}

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-written datagram length, padded to 8-byte alignment. The layout
// is why this file is gated to amd64/arm64 — 32-bit targets pack the
// struct differently and take the portable fallback instead.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// hdrBlock is the reusable per-direction syscall scratch: mmsg headers,
// iovecs, and raw sockaddr storage, one triple per batch slot. It lives
// on the conn and is guarded by the direction's mutex, so steady-state
// batches run without a single allocation.
type hdrBlock struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names [][syscall.SizeofSockaddrAny]byte
	// ctrls and runs serve the write direction's GSO coalescing: one
	// control block per potential train, and the datagram count behind
	// each mmsg header so partial sendmmsg results map back to datagrams.
	ctrls []cmsgSeg
	runs  []int
}

func (b *hdrBlock) ensure(n int) {
	if cap(b.hdrs) >= n {
		b.hdrs = b.hdrs[:n]
		b.iovs = b.iovs[:n]
		b.names = b.names[:n]
		b.ctrls = b.ctrls[:n]
		b.runs = b.runs[:n]
		return
	}
	b.hdrs = make([]mmsghdr, n)
	b.iovs = make([]syscall.Iovec, n)
	b.names = make([][syscall.SizeofSockaddrAny]byte, n)
	b.ctrls = make([]cmsgSeg, n)
	b.runs = make([]int, n)
}

// mmsgConn moves batches of datagrams with one recvmmsg/sendmmsg per
// call. Syscalls run non-blocking inside RawConn read/write callbacks,
// so the conn keeps the netpoller's deadline and close semantics.
type mmsgConn struct {
	uc *net.UDPConn
	rc syscall.RawConn

	rmu sync.Mutex
	rbl hdrBlock

	wmu sync.Mutex
	wbl hdrBlock

	// gso is the segmentation-offload probe state: 0 untried, 1
	// confirmed by a successful train, -1 refused by the kernel (old
	// kernel or unsupported route) — refusal permanently falls back to
	// one datagram per header.
	gso atomic.Int32
}

func upgradeUDP(uc *net.UDPConn) (Conn, bool) {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, false
	}
	return &mmsgConn{uc: uc, rc: rc}, true
}

func (c *mmsgConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.rbl.ensure(len(ms))
	for i := range ms {
		buf := ms[i].Buf
		iov := &c.rbl.iovs[i]
		iov.Base = &buf[0]
		iov.SetLen(len(buf))
		h := &c.rbl.hdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    &c.rbl.names[i][0],
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     iov,
			Iovlen:  1,
		}
		h.len = 0
	}
	var n int
	var operr syscall.Errno
	err := c.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&c.rbl.hdrs[0])), uintptr(len(ms)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		operr = e
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	if operr != 0 {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		m := &ms[i]
		m.N = int(c.rbl.hdrs[i].len)
		parseSockaddr(m, &c.rbl.names[i])
	}
	return n, nil
}

func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	for i := range ms {
		if _, ok := ms[i].Addr.(*net.UDPAddr); !ok {
			// Non-UDP addr (wrapped conns hand these out): fall back to
			// per-datagram writes for the whole batch.
			return c.writeSingles(ms)
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbl.ensure(len(ms))
	nh, hadTrain, err := c.buildCoalesced(ms)
	if err != nil {
		return 0, err
	}
	sent, err := c.sendHdrs(nh)
	if err == nil {
		if hadTrain {
			c.gso.CompareAndSwap(0, 1)
		}
		return sent, nil
	}
	if hadTrain && c.gso.CompareAndSwap(0, -1) && sent < len(ms) {
		// The very first train was refused: disable segmentation for the
		// life of the conn and finish this batch one datagram per header.
		nh, _, _ = c.buildCoalesced(ms[sent:])
		n2, err2 := c.sendHdrs(nh)
		return sent + n2, err2
	}
	return sent, err
}

// buildCoalesced lays out the write headers for one batch. With GSO
// available, a run of consecutive equal-size datagrams to one
// destination becomes a single segmented send (cmsg UDP_SEGMENT): the
// kernel walks the UDP stack once per train instead of once per
// datagram. recvmmsg/sendmmsg alone only amortize syscall entry — the
// per-datagram stack traversal they leave behind is what caps pps, and
// trains are what remove it.
func (c *mmsgConn) buildCoalesced(ms []Message) (nh int, hadTrain bool, err error) {
	useGSO := c.gso.Load() >= 0
	for i := 0; i < len(ms); {
		m := &ms[i]
		run := 1
		if useGSO && m.N > 0 && 2*m.N <= gsoMaxBytes {
			for run < gsoMaxSegs && (run+1)*m.N <= gsoMaxBytes && i+run < len(ms) &&
				ms[i+run].N == m.N && sameUDPAddr(ms[i+run].Addr, m.Addr) {
				run++
			}
		}
		for j := 0; j < run; j++ {
			s := &ms[i+j]
			iov := &c.wbl.iovs[i+j]
			iov.Base = nil
			if s.N > 0 {
				iov.Base = &s.Buf[0]
			}
			iov.SetLen(s.N)
		}
		nl, perr := putSockaddr(&c.wbl.names[nh], m.Addr.(*net.UDPAddr))
		if perr != nil {
			return 0, false, perr
		}
		h := &c.wbl.hdrs[nh]
		h.hdr = syscall.Msghdr{
			Name:    &c.wbl.names[nh][0],
			Namelen: nl,
			Iov:     &c.wbl.iovs[i],
			Iovlen:  uint64(run),
		}
		h.len = 0
		if run > 1 {
			ctrl := &c.wbl.ctrls[nh]
			ctrl.hdr = syscall.Cmsghdr{Level: syscall.IPPROTO_UDP, Type: udpSegment}
			ctrl.hdr.SetLen(syscall.CmsgLen(2))
			*(*uint16)(unsafe.Pointer(&ctrl.data[0])) = uint16(m.N)
			h.hdr.Control = (*byte)(unsafe.Pointer(ctrl))
			h.hdr.SetControllen(syscall.CmsgSpace(2))
			hadTrain = true
		}
		c.wbl.runs[nh] = run
		nh++
		i += run
	}
	return nh, hadTrain, nil
}

// sendHdrs pushes nh prepared headers through sendmmsg, retrying after
// partial acceptance, and returns how many datagrams the accepted
// headers carried (a train counts every segment).
func (c *mmsgConn) sendHdrs(nh int) (int, error) {
	datagrams, sentH := 0, 0
	for sentH < nh {
		var n int
		var operr syscall.Errno
		err := c.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&c.wbl.hdrs[sentH])), uintptr(nh-sentH),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			operr = e
			n = int(r1)
			return true
		})
		if err != nil {
			return datagrams, err
		}
		if operr != 0 {
			return datagrams, operr
		}
		for i := 0; i < n; i++ {
			datagrams += c.wbl.runs[sentH+i]
		}
		sentH += n
	}
	return datagrams, nil
}

// sameUDPAddr reports whether two write targets (already vetted as
// *net.UDPAddr) name the same destination.
func sameUDPAddr(a, b net.Addr) bool {
	ua, ub := a.(*net.UDPAddr), b.(*net.UDPAddr)
	if ua == ub {
		return true
	}
	return ua.Port == ub.Port && ua.Zone == ub.Zone && ua.IP.Equal(ub.IP)
}

func (c *mmsgConn) writeSingles(ms []Message) (int, error) {
	for i := range ms {
		m := &ms[i]
		if _, err := c.uc.WriteTo(m.Buf[:m.N], m.Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *mmsgConn) LocalAddr() net.Addr               { return c.uc.LocalAddr() }
func (c *mmsgConn) SetReadDeadline(t time.Time) error { return c.uc.SetReadDeadline(t) }
func (c *mmsgConn) Close() error                      { return c.uc.Close() }

// putSockaddr serializes ua into name and returns the sockaddr length.
// Ports are written byte-wise so the code is endianness-agnostic.
func putSockaddr(name *[syscall.SizeofSockaddrAny]byte, ua *net.UDPAddr) (uint32, error) {
	port := ua.Port
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
		sa.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		copy(sa.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	if len(ua.IP) != net.IPv6len {
		return 0, net.InvalidAddrError("batchio: destination has no usable IP")
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	copy(sa.Addr[:], ua.IP)
	return syscall.SizeofSockaddrInet6, nil
}

// parseSockaddr installs the kernel-written source address into the
// slot's reusable UDPAddr.
func parseSockaddr(m *Message, name *[syscall.SizeofSockaddrAny]byte) {
	raw := (*syscall.RawSockaddrAny)(unsafe.Pointer(name))
	switch raw.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		m.setIPPort(sa.Addr[:], int(p[0])<<8|int(p[1]))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		m.setIPPort(sa.Addr[:], int(p[0])<<8|int(p[1]))
	default:
		m.Addr = nil
	}
}
