package batchio

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// impl names one Conn construction under contract test: the platform
// batch path (Upgrade) and the portable loop-of-singles (Single) must
// expose identical semantics.
type impl struct {
	name  string
	wrap  func(pc net.PacketConn) Conn
	multi bool // true when ReadBatch may fill >1 slot per call
}

func impls(t *testing.T) []impl {
	t.Helper()
	out := []impl{{name: "single", wrap: func(pc net.PacketConn) Conn { return Single(pc) }}}
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen probe: %v", err)
	}
	_, batched := Upgrade(probe)
	probe.Close()
	if batched {
		out = append(out, impl{
			name: "mmsg",
			wrap: func(pc net.PacketConn) Conn {
				bc, ok := Upgrade(pc)
				if !ok {
					t.Fatalf("Upgrade lost the batch path mid-test")
				}
				return bc
			},
			multi: true,
		})
	} else {
		t.Log("no multi-datagram syscall path on this platform; contract runs on the fallback only")
	}
	return out
}

func pair(t *testing.T, im impl) (Conn, Conn, net.Addr, net.Addr) {
	t.Helper()
	pa, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen a: %v", err)
	}
	pb, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen b: %v", err)
	}
	a, b := im.wrap(pa), im.wrap(pb)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, pa.LocalAddr(), pb.LocalAddr()
}

func recvN(t *testing.T, c Conn, want, bufSize int) []Message {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var got []Message
	for len(got) < want {
		ms := make([]Message, want)
		for i := range ms {
			ms[i].Buf = make([]byte, bufSize)
		}
		n, err := c.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch: %v (have %d/%d)", err, len(got), want)
		}
		got = append(got, ms[:n]...)
	}
	return got
}

func TestContractRoundTrip(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, b, _, baddr := pair(t, im)
			out := make([]Message, 3)
			for i := range out {
				out[i].Set([]byte(fmt.Sprintf("datagram-%d", i)), baddr)
			}
			if n, err := a.WriteBatch(out); err != nil || n != 3 {
				t.Fatalf("WriteBatch = %d, %v", n, err)
			}
			got := recvN(t, b, 3, 512)
			for i, m := range got {
				want := fmt.Sprintf("datagram-%d", i)
				if string(m.Payload()) != want {
					t.Fatalf("datagram %d = %q, want %q", i, m.Payload(), want)
				}
				if m.Addr == nil {
					t.Fatalf("datagram %d has nil source addr", i)
				}
				ua, ok := m.Addr.(*net.UDPAddr)
				if !ok || ua.Port != a.LocalAddr().(*net.UDPAddr).Port {
					t.Fatalf("datagram %d source = %v, want port %d", i, m.Addr, a.LocalAddr().(*net.UDPAddr).Port)
				}
			}
		})
	}
}

// Short read: the datagram is smaller than the slot buffer; N reports
// the datagram length, not the buffer length.
func TestContractShortRead(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, b, _, baddr := pair(t, im)
			msg := []Message{}
			msg = append(msg, Message{})
			msg[0].Set([]byte("tiny"), baddr)
			if _, err := a.WriteBatch(msg); err != nil {
				t.Fatalf("WriteBatch: %v", err)
			}
			got := recvN(t, b, 1, 65536)
			if got[0].N != 4 || string(got[0].Payload()) != "tiny" {
				t.Fatalf("got N=%d payload=%q", got[0].N, got[0].Payload())
			}
		})
	}
}

// Oversize datagram: a datagram larger than the slot buffer truncates
// silently (net.PacketConn.ReadFrom semantics) and does not poison
// later reads.
func TestContractOversizeDatagram(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, b, _, baddr := pair(t, im)
			big := bytes.Repeat([]byte{0xAB}, 2000)
			var out [2]Message
			out[0].Set(big, baddr)
			out[1].Set([]byte("after"), baddr)
			if _, err := a.WriteBatch(out[:]); err != nil {
				t.Fatalf("WriteBatch: %v", err)
			}
			got := recvN(t, b, 2, 512)
			if got[0].N != 512 || !bytes.Equal(got[0].Payload(), big[:512]) {
				t.Fatalf("truncated read: N=%d", got[0].N)
			}
			if string(got[1].Payload()) != "after" {
				t.Fatalf("stream poisoned after truncation: %q", got[1].Payload())
			}
		})
	}
}

func TestContractDeadline(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			_, b, _, _ := pair(t, im)
			b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
			ms := make([]Message, 1)
			ms[0].Buf = make([]byte, 512)
			start := time.Now()
			_, err := b.ReadBatch(ms)
			if err == nil {
				t.Fatalf("ReadBatch returned data on an idle socket")
			}
			if !os.IsTimeout(err) && !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("deadline error = %v, want timeout", err)
			}
			if time.Since(start) > time.Second {
				t.Fatalf("deadline took %v", time.Since(start))
			}
		})
	}
}

func TestContractConcurrentClose(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			_, b, _, _ := pair(t, im)
			done := make(chan error, 1)
			go func() {
				ms := make([]Message, 4)
				for i := range ms {
					ms[i].Buf = make([]byte, 512)
				}
				_, err := b.ReadBatch(ms)
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			b.Close()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("blocked ReadBatch returned nil after Close")
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("ReadBatch did not return after Close")
			}
		})
	}
}

func TestContractMultipleDestinations(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, b, _, baddr := pair(t, im)
			c, _, _, _ := pair(t, im)
			var out [2]Message
			out[0].Set([]byte("to-b"), baddr)
			out[1].Set([]byte("to-c"), c.LocalAddr())
			if n, err := a.WriteBatch(out[:]); err != nil || n != 2 {
				t.Fatalf("WriteBatch = %d, %v", n, err)
			}
			if got := recvN(t, b, 1, 64); string(got[0].Payload()) != "to-b" {
				t.Fatalf("b got %q", got[0].Payload())
			}
			if got := recvN(t, c, 1, 64); string(got[0].Payload()) != "to-c" {
				t.Fatalf("c got %q", got[0].Payload())
			}
		})
	}
}

func TestContractEmptyBatch(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, _, _, _ := pair(t, im)
			if n, err := a.ReadBatch(nil); n != 0 || err != nil {
				t.Fatalf("empty ReadBatch = %d, %v", n, err)
			}
			if n, err := a.WriteBatch(nil); n != 0 || err != nil {
				t.Fatalf("empty WriteBatch = %d, %v", n, err)
			}
		})
	}
}

// The batch path must actually coalesce: with several datagrams queued
// in the kernel, one ReadBatch fills more than one slot.
func TestMmsgCoalescesReads(t *testing.T) {
	var mm *impl
	for _, im := range impls(t) {
		if im.multi {
			m := im
			mm = &m
		}
	}
	if mm == nil {
		t.Skip("no multi-datagram path on this platform")
	}
	a, b, _, baddr := pair(t, *mm)
	const k = 8
	out := make([]Message, k)
	for i := range out {
		out[i].Set([]byte(fmt.Sprintf("burst-%d", i)), baddr)
	}
	if _, err := a.WriteBatch(out); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let the kernel queue the burst
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	ms := make([]Message, k)
	for i := range ms {
		ms[i].Buf = make([]byte, 512)
	}
	n, err := b.ReadBatch(ms)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if n < 2 {
		t.Fatalf("ReadBatch filled %d slots from an %d-datagram burst; expected coalescing", n, k)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("burst-%d", i); string(ms[i].Payload()) != want {
			t.Fatalf("slot %d = %q, want %q", i, ms[i].Payload(), want)
		}
	}
}

// A wrapped PacketConn (anything that is not a *net.UDPConn, e.g. the
// chaos fault injector) must take the fallback, not lose traffic.
func TestUpgradeWrappedConnFallsBack(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	wrapped := struct{ net.PacketConn }{pc}
	bc, batched := Upgrade(wrapped)
	if batched {
		t.Fatalf("Upgrade claimed a batch path for a wrapped conn")
	}
	if bc == nil {
		t.Fatalf("Upgrade returned nil conn")
	}
}

// Equal-size datagrams to one destination are where the write path may
// coalesce a GSO train (one kernel stack traversal, segmented on the
// wire). The receiver must still see every datagram individually, with
// exact boundaries, contents, and order — and a batch that mixes sizes
// and destinations must break trains correctly at every edge.
func TestContractEqualSizeTrains(t *testing.T) {
	for _, im := range impls(t) {
		t.Run(im.name, func(t *testing.T) {
			a, b, _, baddr := pair(t, im)
			const k = 32
			out := make([]Message, k)
			for i := range out {
				out[i].Set([]byte(fmt.Sprintf("train-segment-%03d", i)), baddr)
			}
			if n, err := a.WriteBatch(out); err != nil || n != k {
				t.Fatalf("WriteBatch = %d, %v", n, err)
			}
			got := recvN(t, b, k, 512)
			for i, m := range got {
				if want := fmt.Sprintf("train-segment-%03d", i); string(m.Payload()) != want {
					t.Fatalf("datagram %d = %q, want %q", i, m.Payload(), want)
				}
			}

			// Mixed batch: runs end at a size change and at a destination
			// change, and singles ride alongside trains.
			c, _, caddr, _ := pair(t, im)
			mixed := []Message{}
			add := func(payload string, addr net.Addr) {
				var m Message
				m.Set([]byte(payload), addr)
				mixed = append(mixed, m)
			}
			add("aaaa", baddr)
			add("bbbb", baddr)
			add("longer-segment", baddr)
			add("cccc", caddr)
			add("dddd", caddr)
			add("x", baddr)
			if n, err := a.WriteBatch(mixed); err != nil || n != len(mixed) {
				t.Fatalf("mixed WriteBatch = %d, %v", n, err)
			}
			wantB := []string{"aaaa", "bbbb", "longer-segment", "x"}
			for i, m := range recvN(t, b, len(wantB), 512) {
				if string(m.Payload()) != wantB[i] {
					t.Fatalf("b datagram %d = %q, want %q", i, m.Payload(), wantB[i])
				}
			}
			wantC := []string{"cccc", "dddd"}
			for i, m := range recvN(t, c, len(wantC), 512) {
				if string(m.Payload()) != wantC[i] {
					t.Fatalf("c datagram %d = %q, want %q", i, m.Payload(), wantC[i])
				}
			}
		})
	}
}
