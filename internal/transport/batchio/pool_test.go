package batchio

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPoolLeakCounter(t *testing.T) {
	p := NewPool(2048)
	var bufs []*Buf
	for i := 0; i < 10; i++ {
		bufs = append(bufs, p.Get())
	}
	if got := p.Outstanding(); got != 10 {
		t.Fatalf("Outstanding = %d, want 10", got)
	}
	for _, b := range bufs {
		if cap(b.B) < 2048 || len(b.B) != 0 {
			t.Fatalf("Get returned len=%d cap=%d", len(b.B), cap(b.B))
		}
		b.Release()
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after release = %d, want 0", got)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get()
				b.B = append(b.B, byte(i))
				b.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

// Regression test for the shared-ingest-buffer aliasing hazard the old
// read loop carried ("the handler finishes with the request before the
// next ReadFrom reuses buf"): a handler that retains a datagram across
// batches must see its bytes survive arbitrarily many later reads.
// Before explicit ownership, the next batch would overwrite them.
func TestRingRetainSurvivesLaterBatches(t *testing.T) {
	p := NewPool(512)
	r := NewRing(4, p)

	ms := r.Prepare()
	fill := func(ms []Message, tag byte) {
		for i := range ms {
			ms[i].N = copy(ms[i].Buf, bytes.Repeat([]byte{tag}, 32))
		}
	}
	fill(ms, 'A')
	kept := r.Retain(0)
	if kept == nil {
		t.Fatalf("Retain returned nil")
	}
	keptBytes := kept.B[:32]

	// Several more batches land; slot 0 must have been replaced.
	for round := 0; round < 3; round++ {
		ms = r.Prepare()
		fill(ms, 'B'+byte(round))
	}
	if !bytes.Equal(keptBytes, bytes.Repeat([]byte{'A'}, 32)) {
		t.Fatalf("retained datagram clobbered by a later batch: %q", keptBytes[:8])
	}
	kept.Release()
	r.Close()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after ring close = %d, want 0", got)
	}
}

func TestRingDoubleRetain(t *testing.T) {
	p := NewPool(256)
	r := NewRing(2, p)
	r.Prepare()
	if b := r.Retain(1); b == nil {
		t.Fatalf("first Retain = nil")
	} else {
		defer b.Release()
	}
	if b := r.Retain(1); b != nil {
		t.Fatalf("second Retain of the same slot handed out the buffer twice")
	}
	r.Close()
}

// fakeConn records WriteBatch calls for egress tests.
type fakeConn struct {
	mu      sync.Mutex
	batches [][]string
}

func (f *fakeConn) ReadBatch(ms []Message) (int, error) { return 0, nil }
func (f *fakeConn) WriteBatch(ms []Message) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b []string
	for i := range ms {
		b = append(b, string(ms[i].Buf[:ms[i].N]))
	}
	f.batches = append(f.batches, b)
	return len(ms), nil
}
func (f *fakeConn) LocalAddr() net.Addr               { return &net.UDPAddr{} }
func (f *fakeConn) SetReadDeadline(t time.Time) error { return nil }
func (f *fakeConn) Close() error                      { return nil }

func (f *fakeConn) snapshot() [][]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]string, len(f.batches))
	copy(out, f.batches)
	return out
}

func TestEgressBatchFullFlush(t *testing.T) {
	fc := &fakeConn{}
	p := NewPool(256)
	var frames, bytesOut int
	eg := NewEgress(fc, 3, 0, p, func(f, b int) { frames += f; bytesOut += b })
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	for i := 0; i < 3; i++ {
		b := eg.Buffer()
		b.B = append(b.B, 'x', byte('0'+i))
		eg.QueueBuf(b, dst)
	}
	got := fc.snapshot()
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("batches = %v, want one batch of 3", got)
	}
	if frames != 3 || bytesOut != 6 {
		t.Fatalf("onFlush saw frames=%d bytes=%d", frames, bytesOut)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("pooled frames leaked: %d", p.Outstanding())
	}
	eg.Close()
}

func TestEgressFlushDeadline(t *testing.T) {
	fc := &fakeConn{}
	p := NewPool(256)
	eg := NewEgress(fc, 32, 2*time.Millisecond, p, nil)
	defer eg.Close()
	eg.Queue([]byte("lonely"), &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9})
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if len(fc.snapshot()) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flush deadline never fired; staged frame sat in the spooler")
}

func TestEgressSharedFramesNotPooled(t *testing.T) {
	fc := &fakeConn{}
	p := NewPool(256)
	eg := NewEgress(fc, 2, 0, p, nil)
	shared := []byte("cached-beacon-frame")
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	eg.Queue(shared, dst)
	eg.Queue(shared, dst)
	if p.Outstanding() != 0 {
		t.Fatalf("shared frames touched the pool: %d", p.Outstanding())
	}
	if string(shared) != "cached-beacon-frame" {
		t.Fatalf("shared frame mutated: %q", shared)
	}
	eg.Close()
}

func TestEgressCloseFlushes(t *testing.T) {
	fc := &fakeConn{}
	p := NewPool(256)
	eg := NewEgress(fc, 32, 0, p, nil)
	b := eg.Buffer()
	b.B = append(b.B, "tail"...)
	eg.QueueBuf(b, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9})
	eg.Close()
	got := fc.snapshot()
	if len(got) != 1 || got[0][0] != "tail" {
		t.Fatalf("Close did not flush: %v", got)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("leak after close: %d", p.Outstanding())
	}
	// Queueing after Close must not leak the pooled buffer either.
	b2 := eg.Buffer()
	eg.QueueBuf(b2, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9})
	if p.Outstanding() != 0 {
		t.Fatalf("queue-after-close leaked: %d", p.Outstanding())
	}
}
