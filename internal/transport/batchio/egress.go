package batchio

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Egress coalesces outbound datagrams into WriteBatch calls. Frames
// queue into a fixed batch that flushes when full, when Flush is called
// (read loops flush after dispatching each ingest batch), or when the
// flush deadline expires — the deadline bounds the latency a lone reply
// can sit in the spooler at low load.
//
// Two ownership modes per frame: QueueBuf takes a pooled *Buf and
// releases it after the send; Queue takes a shared immutable slice
// (cached beacons, reply-cache frames) and never recycles it.
// Destination addresses are copied into the slot, so read-slot
// addresses may be passed directly.
type Egress struct {
	conn    Conn
	pool    *Pool
	delay   time.Duration
	onFlush func(frames, bytes int)

	mu     sync.Mutex
	slots  []eslot
	msgs   []Message
	n      int
	armed  bool
	closed bool
	timer  *time.Timer

	writeErrs atomic.Int64
}

type eslot struct {
	buf   *Buf
	frame []byte
	addr  net.Addr
	ua    net.UDPAddr
	ip    [16]byte
}

// NewEgress builds a spooler over conn with the given batch size and
// flush deadline (0 disables the timer; only full batches and explicit
// Flush calls send). onFlush, if non-nil, observes each flushed batch.
func NewEgress(conn Conn, batch int, delay time.Duration, pool *Pool, onFlush func(frames, bytes int)) *Egress {
	if batch < 1 {
		batch = 1
	}
	e := &Egress{
		conn:    conn,
		pool:    pool,
		delay:   delay,
		onFlush: onFlush,
		slots:   make([]eslot, batch),
		msgs:    make([]Message, batch),
	}
	e.timer = time.AfterFunc(time.Hour, e.timerFlush)
	e.timer.Stop()
	return e
}

// Buffer checks a frame buffer out of the egress pool; hand it back via
// QueueBuf (or Release it on an error path).
func (e *Egress) Buffer() *Buf { return e.pool.Get() }

// QueueBuf stages a pooled frame for sending; the Buf is released after
// the flush that sends it.
func (e *Egress) QueueBuf(b *Buf, addr net.Addr) { e.queue(b.B, b, addr) }

// Queue stages a shared immutable frame for sending; the bytes are
// aliased until the flush and never pooled.
func (e *Egress) Queue(frame []byte, addr net.Addr) { e.queue(frame, nil, addr) }

func (e *Egress) queue(frame []byte, buf *Buf, addr net.Addr) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		buf.Release()
		return
	}
	s := &e.slots[e.n]
	s.buf = buf
	s.frame = frame
	if ua, ok := addr.(*net.UDPAddr); ok {
		n := copy(s.ip[:], ua.IP)
		s.ua.IP = s.ip[:n]
		s.ua.Port = ua.Port
		s.ua.Zone = ua.Zone
		s.addr = &s.ua
	} else {
		s.addr = addr
	}
	e.n++
	if e.n == len(e.slots) {
		e.flushLocked()
	} else if e.delay > 0 && !e.armed {
		e.armed = true
		e.timer.Reset(e.delay)
	}
	e.mu.Unlock()
}

// Flush sends everything staged. Read loops call it after dispatching a
// batch so replies leave in one sendmmsg.
func (e *Egress) Flush() {
	e.mu.Lock()
	e.flushLocked()
	e.mu.Unlock()
}

func (e *Egress) flushLocked() {
	if e.armed {
		e.armed = false
		e.timer.Stop()
	}
	if e.n == 0 {
		return
	}
	bytes := 0
	for i := 0; i < e.n; i++ {
		s := &e.slots[i]
		m := &e.msgs[i]
		m.Buf = s.frame
		m.N = len(s.frame)
		m.Addr = s.addr
		bytes += m.N
	}
	sent, err := e.conn.WriteBatch(e.msgs[:e.n])
	if err != nil {
		e.writeErrs.Add(1)
	}
	frames := e.n
	for i := 0; i < e.n; i++ {
		s := &e.slots[i]
		s.buf.Release()
		s.buf = nil
		s.frame = nil
		s.addr = nil
		e.msgs[i].Buf = nil
		e.msgs[i].Addr = nil
	}
	e.n = 0
	if e.onFlush != nil && sent > 0 {
		e.onFlush(frames, bytes)
	}
}

func (e *Egress) timerFlush() {
	e.mu.Lock()
	if !e.closed {
		e.armed = false
		e.flushLocked()
	}
	e.mu.Unlock()
}

// WriteErrs returns how many flushes hit a write error (their frames
// are dropped — datagram semantics).
func (e *Egress) WriteErrs() int64 { return e.writeErrs.Load() }

// Close flushes staged frames and stops the timer. It does not close
// the underlying conn.
func (e *Egress) Close() {
	e.mu.Lock()
	if !e.closed {
		e.flushLocked()
		e.closed = true
		e.timer.Stop()
	}
	e.mu.Unlock()
}
