//go:build linux && arm64

package batchio

// Generic arm64 syscall numbers (include/uapi/asm-generic/unistd.h).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
