package batchio

import (
	"net"
	"time"
)

// Message is one datagram slot in a batch. On reads the implementation
// fills Buf[:N] and Addr with the datagram and its source; on writes the
// caller provides the datagram as Buf[:N] and the destination in Addr.
//
// Each slot carries its own reusable net.UDPAddr and IP backing array so
// the batched read path reports source addresses without allocating.
// The Addr of a read Message is only valid until the slot is reused by
// the next batch; handlers that keep it longer must CloneAddr it.
type Message struct {
	Buf  []byte
	N    int
	Addr net.Addr

	ua net.UDPAddr
	ip [16]byte
}

// Payload returns the filled portion of the slot's buffer.
func (m *Message) Payload() []byte { return m.Buf[:m.N] }

// Set stages frame/addr into the slot for a WriteBatch. UDP addresses
// are copied into the slot's own backing so the caller's addr may be a
// reused read-slot address.
func (m *Message) Set(frame []byte, addr net.Addr) {
	m.Buf = frame
	m.N = len(frame)
	m.SetAddr(addr)
}

// SetAddr points the slot at addr, copying *net.UDPAddr values into the
// slot's own storage (no aliasing of, and no allocation for, the
// caller's address).
func (m *Message) SetAddr(addr net.Addr) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		m.Addr = addr
		return
	}
	n := copy(m.ip[:], ua.IP)
	m.ua.IP = m.ip[:n]
	m.ua.Port = ua.Port
	m.ua.Zone = ua.Zone
	m.Addr = &m.ua
}

// setIPPort installs a received source address into the slot's reusable
// UDPAddr (read side of the mmsg implementation).
func (m *Message) setIPPort(ip []byte, port int) {
	n := copy(m.ip[:], ip)
	m.ua.IP = m.ip[:n]
	m.ua.Port = port
	m.ua.Zone = ""
	m.Addr = &m.ua
}

// CloneAddr returns a heap copy of a read-slot address that stays valid
// after the slot is reused (e.g. for an async reply goroutine).
func CloneAddr(addr net.Addr) net.Addr {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return addr
	}
	c := &net.UDPAddr{IP: append([]byte(nil), ua.IP...), Port: ua.Port, Zone: ua.Zone}
	return c
}

// Conn is the batched view of a datagram socket. ReadBatch blocks until
// at least one datagram is available (or the read deadline passes, or
// the conn is closed) and fills as many slots as the kernel has queued;
// oversize datagrams are silently truncated to the slot buffer, exactly
// like net.PacketConn.ReadFrom. WriteBatch sends every staged slot and
// returns how many went out.
type Conn interface {
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
	LocalAddr() net.Addr
	SetReadDeadline(t time.Time) error
	Close() error
}

// Upgrade wraps pc in the best available batch implementation. The
// second result reports whether a true multi-datagram syscall path is
// in use: *net.UDPConn on supported Linux targets gets recvmmsg/
// sendmmsg, a pc that already implements Conn (test fakes) is used
// as-is, and everything else — including fault-injecting wrappers like
// chaos.Conn — gets the portable loop-of-singles fallback so faults
// keep injecting per datagram.
func Upgrade(pc net.PacketConn) (Conn, bool) {
	if bc, ok := pc.(Conn); ok {
		return bc, true
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		if bc, ok := upgradeUDP(uc); ok {
			return bc, true
		}
	}
	return Single(pc), false
}

// Single wraps pc in the portable single-datagram implementation,
// regardless of platform — the unbatched baseline for benchmarks.
func Single(pc net.PacketConn) Conn { return &singleConn{pc: pc} }

// singleConn is the portable fallback: one syscall per datagram behind
// the batch interface. ReadBatch fills at most one slot per call.
type singleConn struct{ pc net.PacketConn }

func (c *singleConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	m := &ms[0]
	n, addr, err := c.pc.ReadFrom(m.Buf)
	if err != nil {
		return 0, err
	}
	m.N = n
	m.Addr = addr
	return 1, nil
}

func (c *singleConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		m := &ms[i]
		if _, err := c.pc.WriteTo(m.Buf[:m.N], m.Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *singleConn) LocalAddr() net.Addr               { return c.pc.LocalAddr() }
func (c *singleConn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }
func (c *singleConn) Close() error                      { return c.pc.Close() }
