//go:build linux && amd64

package batchio

// The stdlib syscall table on amd64 predates sendmmsg; both numbers are
// pinned here (arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
