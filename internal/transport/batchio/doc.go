// Package batchio is the batched datagram I/O layer under the PEACE data
// plane. It wraps a UDP socket in a ReadBatch/WriteBatch interface that
// moves up to K datagrams per syscall via Linux recvmmsg/sendmmsg (raw
// syscalls behind build tags — the module stays dependency-free) and
// falls back to a portable loop of single ReadFrom/WriteTo calls on
// every other platform and on wrapped conns (e.g. the chaos
// fault-injecting PacketConn). Both implementations satisfy the same
// contract tests.
//
// Around the socket sit the allocation-free plumbing pieces the server,
// shard loops, and backbone node share:
//
//   - Pool: a sync.Pool-backed, leak-checked buffer pool. Every hot-path
//     frame lives in a *Buf whose Release returns it; an atomic
//     outstanding counter makes leaks assertable in tests.
//   - Ring: a per-read-loop ring of pooled receive slots with explicit
//     ownership. A handler that must keep a datagram past the current
//     batch calls Retain, which hands it the slot's buffer and replaces
//     the slot from the pool — the "finish before the next ReadFrom
//     reuses buf" aliasing convention is gone.
//   - Egress: a coalescing writer. Replies, relays, and gossip queue
//     into a sendmmsg batch that flushes when full or after a small
//     deadline, so syscall amortization does not cost latency at low
//     load.
package batchio
