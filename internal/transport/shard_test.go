package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// TestShardedServerHandshakes runs concurrent full attaches and ticket
// resumes against a server listening on SO_REUSEPORT multi-sockets (or
// the single-socket demux fallback). Under -race this is the contention
// audit of the multi-shard loop: every counter bump, reply-cache touch
// and session-table insert happens from several loops at once.
func TestShardedServerHandshakes(t *testing.T) {
	const users = 6
	const shards = 4
	ln, err := NewLocalNetwork(core.Config{}, "MR-SH", "grp-0", users)
	if err != nil {
		t.Fatal(err)
	}
	conns, err := ListenShards("127.0.0.1:0", shards)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewShardedServer(conns, ln.Router, ServerConfig{BootEpoch: 5})
	defer srv.Close()
	if reusePortAvailable && srv.Shards() != shards {
		t.Fatalf("shards = %d, want %d", srv.Shards(), shards)
	}

	var wg sync.WaitGroup
	errs := make([]error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := mustListen(t)
			defer conn.Close()
			cl := NewClient(conn, srv.Addr(), ln.Users[i], testClientConfig())
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := cl.Attach(ctx); err != nil {
				errs[i] = err
				return
			}
			// Re-attach twice via the ticket path.
			for r := 0; r < 2; r++ {
				cl.setSession(nil, 0)
				if _, err := cl.AttachOrResume(ctx); err != nil {
					errs[i] = err
					return
				}
			}
			if cl.Stats().ResumeSuccesses() != 2 {
				errs[i] = errShardResume
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
	}

	rs := ln.Router.Stats()
	if rs.SessionsEstablished != users {
		t.Fatalf("sessions established = %d, want %d", rs.SessionsEstablished, users)
	}
	if rs.SessionsResumed != 2*users {
		t.Fatalf("sessions resumed = %d, want %d", rs.SessionsResumed, 2*users)
	}
	// The pairing ran exactly once per user; every re-attach stayed on the
	// symmetric path.
	if rs.ExpensiveVerifications != users {
		t.Fatalf("expensive verifications = %d, want %d", rs.ExpensiveVerifications, users)
	}
	st := srv.Stats()
	if st.Shards() < 1 {
		t.Fatal("shards gauge unset")
	}
	if st.ReplyCacheSize() < int64(users) {
		t.Fatalf("reply-cache gauge %d, want >= %d", st.ReplyCacheSize(), users)
	}
}

var errShardResume = &shardResumeErr{}

type shardResumeErr struct{}

func (*shardResumeErr) Error() string { return "re-attaches did not ride the ticket path" }

// TestReplyCacheBounded floods the dedup cache far past its configured
// bound and checks eviction holds the gauge at the cap — the reply cache
// must not grow without limit over a long soak.
func TestReplyCacheBounded(t *testing.T) {
	c := newReplyCache(128)
	var sid core.SessionID
	for i := 0; i < 10000; i++ {
		sid[0] = byte(i)
		sid[1] = byte(i >> 8)
		sid[2] = byte(i >> 16)
		c.begin(sid)
	}
	// 32 stripes × (128/32) entries = 128 max.
	if got := c.Len(); got > 128 {
		t.Fatalf("reply cache holds %d entries, bound is 128", got)
	}
	if got := c.Len(); got < 32 {
		t.Fatalf("reply cache holds %d entries — eviction overshot", got)
	}
}
