package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// testClientConfig keeps the first retransmissions quick (lossy tests
// converge fast) while leaving a deep retry budget: under heavy
// concurrency the router's verification queue, not the network, is the
// dominant latency, and a client must keep waiting through it.
func testClientConfig() ClientConfig {
	return ClientConfig{
		RetransmitTimeout: 80 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		MaxRetries:        16,
	}
}

func mustListen(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestHandshakeOverUDP drives several concurrent users through the full
// M.1–M.3 AKA over real loopback sockets and checks both session halves
// agree on keys.
func TestHandshakeOverUDP(t *testing.T) {
	const users = 8
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", users)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{})
	defer srv.Close()

	type result struct {
		sess *core.Session
		err  error
	}
	results := make([]result, users)
	done := make(chan int, users)
	for i := 0; i < users; i++ {
		go func(i int) {
			conn := mustListen(t)
			defer conn.Close()
			cl := NewClient(conn, srv.Addr(), ln.Users[i], testClientConfig())
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			s, err := cl.Attach(ctx)
			results[i] = result{s, err}
			done <- i
		}(i)
	}
	for i := 0; i < users; i++ {
		<-done
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("user %d: %v", i, r.err)
		}
		routerSess, ok := ln.Router.SessionByID(r.sess.ID)
		if !ok {
			t.Fatalf("user %d: router has no session %s", i, r.sess.ID)
		}
		// Key agreement: a frame sealed by the router side must open on
		// the user side.
		frame, err := routerSess.SealData(rand.Reader, []byte("welcome"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := r.sess.OpenData(frame)
		if err != nil || string(pt) != "welcome" {
			t.Fatalf("user %d: key agreement failed: %q %v", i, pt, err)
		}
	}
	if got := ln.Router.Stats().SessionsEstablished; got != users {
		t.Fatalf("router established %d sessions, want %d", got, users)
	}
}

// TestHandshakeSurvivesLoss wraps both directions in a 25%-loss link and
// expects every session to establish via retransmission.
func TestHandshakeSurvivesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy handshake sweep in -short mode")
	}
	rep, err := RunLoopback(LoopbackConfig{
		Users:  12,
		Loss:   0.25,
		Seed:   7,
		Client: testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d/%d handshakes failed: %v", rep.Failed, rep.Users, rep.Errors)
	}
	if rep.DatagramsDropped == 0 {
		t.Fatal("lossy link dropped nothing — loss injection broken")
	}
	if rep.ClientRetransmits == 0 {
		t.Fatal("no retransmissions despite induced loss")
	}
}

// TestLoopbackAcceptance is the acceptance criterion from the transport
// issue: ≥100 concurrent full M.1–M.3 handshakes over real UDP loopback
// with ≥5% induced datagram loss, every one recovered by retransmission.
func TestLoopbackAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("100-user acceptance sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("100-user acceptance sweep under the race detector")
	}
	rep, err := RunLoopback(LoopbackConfig{
		Users:  100,
		Loss:   0.05,
		Seed:   42,
		Client: testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Established < 100 || rep.Failed != 0 {
		t.Fatalf("established %d, failed %d: %v", rep.Established, rep.Failed, rep.Errors)
	}
	if rep.DatagramsDropped == 0 {
		t.Fatal("no datagrams dropped at 5%% loss — injection broken")
	}
	t.Logf("%d handshakes in %v (%.1f/s, p50 %v, p99 %v, %d retransmits, %d drops)",
		rep.Established, rep.Elapsed, rep.HandshakesPerSec, rep.P50, rep.P99,
		rep.ClientRetransmits, rep.DatagramsDropped)
}

// scriptKindDrop returns a drop policy that discards the first `drops`
// frames of the given kind.
func scriptKindDrop(kind Kind, drops int) func(p []byte) bool {
	remaining := drops
	return func(p []byte) bool {
		k, _, err := DecodeFrame(p)
		if err != nil || k != kind {
			return false
		}
		if remaining > 0 {
			remaining--
			return true
		}
		return false
	}
}

// TestRecoveryFromDroppedMessages drops the first copy of each AKA
// message in turn (M.1 beacon, M.2 request, M.3 confirm) and expects the
// retransmission machinery to recover every time.
func TestRecoveryFromDroppedMessages(t *testing.T) {
	cases := []struct {
		name       string
		serverDrop Kind // dropped on the server's send path
		clientDrop Kind // dropped on the client's send path
	}{
		{"dropped M.1 beacon", KindBeacon, KindInvalid},
		{"dropped M.2 access request", KindInvalid, KindAccessRequest},
		{"dropped M.3 confirm", KindAccessConfirm, KindInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", 1)
			if err != nil {
				t.Fatal(err)
			}
			serverConn := net.PacketConn(mustListen(t))
			if tc.serverDrop != KindInvalid {
				serverConn = NewScriptedConn(serverConn, scriptKindDrop(tc.serverDrop, 1))
			}
			srv := NewServer(serverConn, ln.Router, ServerConfig{})
			defer srv.Close()

			clientConn := net.PacketConn(mustListen(t))
			defer clientConn.Close()
			if tc.clientDrop != KindInvalid {
				clientConn = NewScriptedConn(clientConn, scriptKindDrop(tc.clientDrop, 1))
			}
			cl := NewClient(clientConn, srv.Addr(), ln.Users[0], testClientConfig())
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			if _, err := cl.Attach(ctx); err != nil {
				t.Fatalf("attach: %v", err)
			}
			if cl.Stats().Retransmits() == 0 {
				t.Fatal("recovered without retransmitting — drop script did not bite")
			}
		})
	}
}

// TestDuplicateAccessRequestSuppressed replays a captured M.2 datagram
// and expects the server to answer from its reply cache without a second
// session or a second expensive verification.
func TestDuplicateAccessRequestSuppressed(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{})
	defer srv.Close()

	// Capture the client's M.2 on its way out.
	var captured []byte
	clientConn := NewScriptedConn(mustListen(t), func(p []byte) bool {
		if k, _, err := DecodeFrame(p); err == nil && k == KindAccessRequest {
			captured = append([]byte(nil), p...)
		}
		return false
	})
	defer clientConn.Close()
	cl := NewClient(clientConn, srv.Addr(), ln.Users[0], testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no M.2 captured")
	}
	verifications := ln.Router.Stats().ExpensiveVerifications

	// Replay from a fresh socket (an on-path attacker, or the client's own
	// retransmission arriving late).
	attacker := mustListen(t)
	defer attacker.Close()
	if _, err := attacker.WriteTo(captured, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	// The cached confirm is replayed to the sender.
	_ = attacker.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 65536)
	n, _, err := attacker.ReadFrom(buf)
	if err != nil {
		t.Fatalf("expected replayed confirm: %v", err)
	}
	kind, _, err := DecodeFrame(buf[:n])
	if err != nil || kind != KindAccessConfirm {
		t.Fatalf("replay answered with %v, %v", kind, err)
	}

	if got := ln.Router.Stats().ExpensiveVerifications; got != verifications {
		t.Fatalf("replay triggered %d extra verifications", got-verifications)
	}
	if got := ln.Router.Stats().SessionsEstablished; got != 1 {
		t.Fatalf("replay minted a session: %d established", got)
	}
	if srv.Stats().Duplicates() == 0 {
		t.Fatal("duplicate counter not bumped")
	}
}

// TestHandshakeTimesOutAgainstSilence points a client at a socket nobody
// serves and expects ErrHandshakeTimeout after max retries.
func TestHandshakeTimesOutAgainstSilence(t *testing.T) {
	blackhole := mustListen(t)
	defer blackhole.Close()

	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	clientConn := mustListen(t)
	defer clientConn.Close()
	cfg := ClientConfig{
		RetransmitTimeout: 20 * time.Millisecond,
		MaxTimeout:        50 * time.Millisecond,
		MaxRetries:        3,
	}
	cl := NewClient(clientConn, blackhole.LocalAddr(), ln.Users[0], cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.Attach(ctx); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("want ErrHandshakeTimeout, got %v", err)
	}
	if cl.Stats().Timeouts() == 0 {
		t.Fatal("timeout counter not bumped")
	}
	if cl.Stats().Retransmits() != int64(cfg.MaxRetries) {
		t.Fatalf("retransmits = %d, want %d", cl.Stats().Retransmits(), cfg.MaxRetries)
	}
}

// TestRevokedUserRejectedOnWire revokes a user's credential and expects
// the on-wire handshake to fail with a revocation reject, not a timeout.
func TestRevokedUserRejectedOnWire(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := ln.NO.TokenOf("grp-0", ln.Users[0].Credentials()[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	ln.NO.RevokeUserKey(tok)
	if err := ln.RefreshRevocations(); err != nil {
		t.Fatal(err)
	}

	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{})
	defer srv.Close()

	clientConn := mustListen(t)
	defer clientConn.Close()
	cl := NewClient(clientConn, srv.Addr(), ln.Users[0], testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_, err = cl.Attach(ctx)
	if !errors.Is(err, core.ErrRevokedUser) {
		t.Fatalf("want ErrRevokedUser, got %v", err)
	}

	// The unrevoked neighbor still attaches.
	conn2 := mustListen(t)
	defer conn2.Close()
	cl2 := NewClient(conn2, srv.Addr(), ln.Users[1], testClientConfig())
	if _, err := cl2.Attach(ctx); err != nil {
		t.Fatalf("unrevoked user: %v", err)
	}
}

// TestPeerAKAOverUDP runs M̃.1–M̃.3 between two user sockets, with the
// first M̃.2 dropped to exercise the responder's duplicate-hello replay.
func TestPeerAKAOverUDP(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.SeedUserRevocations(); err != nil {
		t.Fatal(err)
	}
	// Both users need the router generator from a beacon.
	b, err := ln.Router.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ln.Users {
		if err := u.ObserveBeacon(b); err != nil {
			t.Fatal(err)
		}
	}

	respConn := NewScriptedConn(mustListen(t), scriptKindDrop(KindPeerResponse, 1))
	responder := NewPeerResponder(respConn, ln.Users[1], "")
	defer responder.Close()

	initConn := mustListen(t)
	defer initConn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sess, err := AttachPeer(ctx, initConn, responder.Addr(), ln.Users[0], testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Responder derived the same session at M̃.2 and confirmed it at M̃.3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cs := responder.Confirmed(); len(cs) == 1 {
			if cs[0].ID != sess.ID {
				t.Fatalf("confirmed session %s, initiator has %s", cs[0].ID, sess.ID)
			}
			frame, err := cs[0].SealData(rand.Reader, []byte("hi"))
			if err != nil {
				t.Fatal(err)
			}
			if pt, err := sess.OpenData(frame); err != nil || string(pt) != "hi" {
				t.Fatalf("peer key agreement: %q %v", pt, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("M̃.3 confirmation never validated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if responder.Stats().Duplicates() == 0 {
		t.Fatal("dropped M̃.2 should have forced a duplicate hello")
	}
}

// TestRevocationDrillConvergesViaDeltas is the acceptance drill for the
// revocation-distribution subsystem: a persistent user population
// re-attaches across several epochs while the operator keeps revoking,
// and after the cold-start bootstrap every client must follow the URL
// purely through signed deltas.
func TestRevocationDrillConvergesViaDeltas(t *testing.T) {
	cfg := DrillConfig{Users: 4, Rounds: 3, RevokePerRound: 2, Client: testClientConfig()}
	rep, err := RunRevocationDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("attach failures: %v", rep.Errors)
	}
	if want := cfg.Users * cfg.Rounds; rep.Established != want {
		t.Fatalf("established %d of %d", rep.Established, want)
	}
	// Cold start costs at most one full snapshot per list; everything
	// after must ride deltas.
	if rep.SnapshotsPerClientMax > 2 {
		t.Fatalf("some client fetched %d full snapshots", rep.SnapshotsPerClientMax)
	}
	// Two revocation pushes → two URL epochs → every client applies at
	// least two deltas.
	if want := int64(cfg.Users * (cfg.Rounds - 1)); rep.DeltaFetches < want {
		t.Fatalf("delta fetches %d < %d", rep.DeltaFetches, want)
	}
	if rep.Server.Value("rev_delta_fetches") == 0 {
		t.Fatal("server served no deltas")
	}
	if rep.FinalURLEpoch < 2 {
		t.Fatalf("final URL epoch %d", rep.FinalURLEpoch)
	}
	if want := (cfg.Rounds - 1) * cfg.RevokePerRound; rep.URLSize != want {
		t.Fatalf("URL size %d, want %d", rep.URLSize, want)
	}
	srvEpoch, ok := rep.Server.Get("url_epoch")
	if !ok || srvEpoch.Uint != rep.FinalURLEpoch {
		t.Fatalf("server gauge epoch %d, router at %d", srvEpoch.Uint, rep.FinalURLEpoch)
	}
}
