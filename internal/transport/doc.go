// Package transport puts the PEACE access protocol on the wire: a
// versioned, length-framed datagram codec over UDP carrying every
// protocol message (M.1–M.3 beacons/requests/confirms, M̃.1–M̃.3 peer
// authentication, URL/CRL updates, puzzle challenges), plus the client-
// and router-side handshake state machines that make the three-message
// AKA survive a real lossy network: per-session retransmission with
// exponential backoff, duplicate suppression with confirm replay, and a
// concurrent server loop that feeds bursts of access requests through the
// router's bounded ingest queue so the batch-verification pipeline is
// exercised by real traffic.
//
// Frame layout (one frame per datagram, strict):
//
//	magic "PEAC" (4) ‖ version 1 B ‖ kind 1 B ‖ u32(len) ‖ payload
//
// The payload is the message's existing Marshal encoding (internal/core,
// internal/cert, internal/puzzle); the codec adds no per-message framing
// of its own. Decoding never panics on hostile bytes — see the fuzz
// targets — and rejects bad magic, unknown versions/kinds, length
// mismatches and oversized payloads before any allocation.
package transport
