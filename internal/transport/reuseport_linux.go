//go:build linux

package transport

import (
	"syscall"
)

// soReusePort is SO_REUSEPORT, absent from the stdlib syscall constants
// but stable ABI on Linux since 3.9.
const soReusePort = 0xf

// reusePortAvailable reports whether ListenShards can open true
// kernel-demuxed multi-sockets on this platform.
const reusePortAvailable = true

// setReusePort marks a socket SO_REUSEPORT before bind, so N listeners
// share one UDP port and the kernel spreads datagrams across them — each
// shard loop then owns a private socket with a private receive queue.
func setReusePort(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
