package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/symcrypto"
)

// resumeRig provisions one attached client against a ticket-issuing
// server and returns everything the lifecycle tests poke at.
type resumeRig struct {
	ln   *LocalNetwork
	srv  *Server
	cl   *Client
	ring *symcrypto.TicketKeyRing
	sess *core.Session
}

func newResumeRig(t *testing.T, cfg ServerConfig) *resumeRig {
	t.Helper()
	ln, err := NewLocalNetwork(core.Config{}, "MR-RS", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := symcrypto.NewTicketKeyRing(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TicketKeys = ring
	if cfg.BootEpoch == 0 {
		cfg.BootEpoch = 71
	}
	srv := NewServer(mustListen(t), ln.Router, cfg)
	t.Cleanup(srv.Close)

	conn := mustListen(t)
	t.Cleanup(func() { conn.Close() })
	cl := NewClient(conn, srv.Addr(), ln.Users[0], testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sess, err := cl.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.HasTicket() {
		t.Fatal("attach did not mint a resumption ticket")
	}
	return &resumeRig{ln: ln, srv: srv, cl: cl, ring: ring, sess: sess}
}

// detach simulates the client losing its session (restart detected, dead
// peer) while keeping its ticket.
func (r *resumeRig) detach() { r.cl.setSession(nil, 0) }

// TestResumeRoundTrip re-attaches over the ticket path and checks the
// result is a real session — key agreement holds, the router adopted it,
// the accountability escrow survived, and no second pairing ran.
func TestResumeRoundTrip(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{})
	verifications := rig.ln.Router.Stats().ExpensiveVerifications
	rig.detach()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sess, err := rig.cl.Resume(ctx)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if sess.ID == rig.sess.ID {
		t.Fatal("resume reused the old session id")
	}

	// Key agreement on the NEW session, both directions.
	routerSess, ok := rig.ln.Router.SessionByID(sess.ID)
	if !ok {
		t.Fatal("router did not adopt the resumed session")
	}
	frame, err := routerSess.SealData(rand.Reader, []byte("post-resume"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := sess.OpenData(frame); err != nil || string(pt) != "post-resume" {
		t.Fatalf("key agreement after resume: %q %v", pt, err)
	}

	// Accountability: the escrowed M.2 follows the resumed session, so an
	// audit of the new session id still opens the original signer.
	if _, ok := rig.ln.Router.LoggedAccessRequest(sess.ID); !ok {
		t.Fatal("resumed session has no escrowed access request")
	}

	// The whole point: zero additional pairings.
	rs := rig.ln.Router.Stats()
	if rs.ExpensiveVerifications != verifications {
		t.Fatalf("resume ran %d expensive verifications", rs.ExpensiveVerifications-verifications)
	}
	if rs.SessionsResumed != 1 {
		t.Fatalf("SessionsResumed = %d, want 1", rs.SessionsResumed)
	}
	if rig.srv.Stats().ResumesServed() != 1 {
		t.Fatal("server resume counter not bumped")
	}
	if rig.cl.Stats().ResumeSuccesses() != 1 {
		t.Fatal("client resume counter not bumped")
	}
	// The reissued ticket chains: a second resume works too.
	rig.detach()
	if _, err := rig.cl.Resume(ctx); err != nil {
		t.Fatalf("second resume on reissued ticket: %v", err)
	}
}

// TestResumeTicketExpiry lets the ticket lifetime lapse and expects the
// resume to be refused as unusable, with AttachOrResume falling back to a
// full handshake that mints a fresh ticket.
func TestResumeTicketExpiry(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{TicketLifetime: 50 * time.Millisecond})
	rig.detach()
	time.Sleep(80 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := rig.cl.Resume(ctx); !errors.Is(err, ErrTicketUnusable) {
		t.Fatalf("want ErrTicketUnusable for expired ticket, got %v", err)
	}
	if _, err := rig.cl.AttachOrResume(ctx); err != nil {
		t.Fatalf("fallback attach: %v", err)
	}
	if rig.cl.Stats().ResumeFallbacks() != 1 {
		t.Fatalf("ResumeFallbacks = %d, want 1", rig.cl.Stats().ResumeFallbacks())
	}
	if !rig.cl.HasTicket() {
		t.Fatal("fallback attach did not mint a fresh ticket")
	}
}

// TestResumeSTEKRotationGrace rotates the server's ticket key ring: one
// rotation keeps old tickets resumable (the grace generation), a second
// retires the sealing key and forces a full handshake.
func TestResumeSTEKRotationGrace(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One rotation: the ticket was sealed by what is now the grace key.
	if err := rig.ring.Rotate(rand.Reader); err != nil {
		t.Fatal(err)
	}
	rig.detach()
	if _, err := rig.cl.Resume(ctx); err != nil {
		t.Fatalf("resume within the old-key grace window: %v", err)
	}
	// The resume reissued a ticket under the NEW key, so the client rides
	// rotations indefinitely as long as it re-attaches at least once per
	// generation.

	// Two more rotations without contact: the held ticket's generation is
	// gone from the ring.
	if err := rig.ring.Rotate(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := rig.ring.Rotate(rand.Reader); err != nil {
		t.Fatal(err)
	}
	rig.detach()
	if _, err := rig.cl.Resume(ctx); !errors.Is(err, ErrTicketUnusable) {
		t.Fatalf("want ErrTicketUnusable after STEK retired, got %v", err)
	}
	attaches := rig.cl.Stats().AttachSuccesses()
	if _, err := rig.cl.AttachOrResume(ctx); err != nil {
		t.Fatalf("fallback attach: %v", err)
	}
	if got := rig.cl.Stats().AttachSuccesses(); got != attaches+1 {
		t.Fatalf("fallback did not run exactly one full attach (got %d)", got-attaches)
	}
}

// TestResumeStaleRevocationRefs advances the router's URL epoch after the
// ticket was issued and expects the resume to be refused with the
// revocation-staleness error: a revocation may have landed on the ticket
// holder, so the cheap path must not skip the membership re-check. The
// fallback full attach re-syncs revocation state and succeeds.
func TestResumeStaleRevocationRefs(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{})

	// Revoke a bystander: the epoch moves although OUR holder stays valid —
	// the policy is conservative by construction.
	tok, err := rig.ln.NO.TokenOf("grp-0", rig.ln.Users[0].Credentials()[0].Index+7)
	if err != nil {
		t.Fatal(err)
	}
	rig.ln.NO.RevokeUserKey(tok)
	if err := rig.ln.RefreshRevocations(); err != nil {
		t.Fatal(err)
	}
	rig.srv.InvalidateBeacon()
	rig.detach()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := rig.cl.Resume(ctx); !errors.Is(err, core.ErrRevocationStale) {
		t.Fatalf("want ErrRevocationStale after epoch advance, got %v", err)
	}
	if _, err := rig.cl.AttachOrResume(ctx); err != nil {
		t.Fatalf("fallback attach after revocation advance: %v", err)
	}
	// The fresh ticket pins the NEW epochs, so resumption works again.
	rig.detach()
	if _, err := rig.cl.Resume(ctx); err != nil {
		t.Fatalf("resume on re-pinned ticket: %v", err)
	}
}

// TestResumeReplayIdempotence replays a captured resume request datagram
// and expects the reply cache to answer byte-identically without minting
// a second session — the resume-path extension of the M.2 idempotence
// property.
func TestResumeReplayIdempotence(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{})
	rig.detach()

	// Capture the resume request on its way out.
	var captured []byte
	rig.cl.conn = NewScriptedConn(rig.cl.conn, func(p []byte) bool {
		if k, _, err := DecodeFrame(p); err == nil && k == KindResumeRequest {
			captured = append([]byte(nil), p...)
		}
		return false
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := rig.cl.Resume(ctx); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no resume request captured")
	}
	resumed := rig.ln.Router.Stats().SessionsResumed

	// Replay twice from a fresh socket.
	attacker := mustListen(t)
	defer attacker.Close()
	var replies [][]byte
	buf := make([]byte, 65536)
	for i := 0; i < 2; i++ {
		if _, err := attacker.WriteTo(captured, rig.srv.Addr()); err != nil {
			t.Fatal(err)
		}
		_ = attacker.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, _, err := attacker.ReadFrom(buf)
		if err != nil {
			t.Fatalf("replay %d: expected cached confirm: %v", i, err)
		}
		if k, _, err := DecodeFrame(buf[:n]); err != nil || k != KindResumeConfirm {
			t.Fatalf("replay %d answered with %v, %v", i, k, err)
		}
		replies = append(replies, append([]byte(nil), buf[:n]...))
	}
	if string(replies[0]) != string(replies[1]) {
		t.Fatal("replayed confirms differ")
	}
	if got := rig.ln.Router.Stats().SessionsResumed; got != resumed {
		t.Fatalf("replay minted %d extra sessions", got-resumed)
	}
	if rig.srv.Stats().Duplicates() < 2 {
		t.Fatal("resume replays not counted as duplicates")
	}
}

// TestResumeTamperedTicketRefused flips a ticket byte and expects a clean
// refusal (AEAD integrity), not a session.
func TestResumeTamperedTicketRefused(t *testing.T) {
	rig := newResumeRig(t, ServerConfig{})
	rig.detach()
	rig.cl.mu.Lock()
	rig.cl.ticket.blob = append([]byte(nil), rig.cl.ticket.blob...)
	rig.cl.ticket.blob[len(rig.cl.ticket.blob)/2] ^= 0x40
	rig.cl.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := rig.cl.Resume(ctx); !errors.Is(err, ErrTicketUnusable) {
		t.Fatalf("want ErrTicketUnusable for tampered ticket, got %v", err)
	}
	if rig.srv.Stats().ResumeRejects() == 0 {
		t.Fatal("server resume-reject counter not bumped")
	}
}

// TestMaintainResumesAfterRestart restarts the server (new incarnation,
// same STEK ring, same socket address) and expects Maintain to re-attach
// via the ticket path — zero additional full handshakes.
func TestMaintainResumesAfterRestart(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-MR", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := symcrypto.NewTicketKeyRing(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 1, TicketKeys: ring})

	conn := mustListen(t)
	defer conn.Close()
	cl := NewClient(conn, srv.Addr(), ln.Users[0], testClientConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- cl.Maintain(ctx, MaintainConfig{
			KeepaliveInterval: 50 * time.Millisecond,
			PingTimeout:       300 * time.Millisecond,
			MaxMissed:         2,
			AttachTimeout:     15 * time.Second,
			ReattachMin:       20 * time.Millisecond,
			ReattachMax:       100 * time.Millisecond,
		})
	}()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor(func() bool { return cl.Session() != nil }, "initial attach")
	if cl.Stats().AttachSuccesses() != 1 {
		t.Fatalf("initial attaches = %d", cl.Stats().AttachSuccesses())
	}

	// Restart: kill the incarnation, reboot the router state, come back on
	// the same address with the same ticket ring but a new boot epoch.
	addr := srv.Addr().String()
	srv.Close()
	ln.Router.Reboot()
	serverConn2, err := net.ListenPacket("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(serverConn2, ln.Router, ServerConfig{BootEpoch: 2, TicketKeys: ring})
	defer srv2.Close()

	waitFor(func() bool { return cl.BootEpoch() == 2 && cl.Session() != nil }, "re-attach to new incarnation")
	if got := cl.Stats().AttachSuccesses(); got != 1 {
		t.Fatalf("restart forced %d full handshakes; want re-attach via ticket", got-1)
	}
	if cl.Stats().ResumeSuccesses() == 0 {
		t.Fatal("no resume recorded across restart")
	}
	if cl.Stats().RestartsDetected() == 0 {
		t.Fatal("restart not detected")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("maintain exited with %v", err)
	}
}
