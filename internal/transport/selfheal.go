package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"net"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// MaintainConfig tunes the self-healing session loop: encrypted keepalive
// cadence, dead-peer thresholds, and the jittered backoff between
// re-attach attempts.
type MaintainConfig struct {
	// KeepaliveInterval is the gap between ping rounds. Default 1s.
	KeepaliveInterval time.Duration
	// PingTimeout bounds one ping round's wait for a valid pong. Default
	// half the keepalive interval.
	PingTimeout time.Duration
	// MaxMissed is how many consecutive unanswered rounds declare the peer
	// dead. Default 3.
	MaxMissed int
	// ReattachMin / ReattachMax bound the jittered exponential backoff
	// between re-attach attempts. Defaults 200ms / 5s.
	ReattachMin time.Duration
	ReattachMax time.Duration
	// AttachTimeout bounds one full AKA run. Default 30s.
	AttachTimeout time.Duration
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c MaintainConfig) withDefaults() MaintainConfig {
	if c.KeepaliveInterval <= 0 {
		c.KeepaliveInterval = time.Second
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = c.KeepaliveInterval / 2
	}
	if c.MaxMissed < 1 {
		c.MaxMissed = 3
	}
	if c.ReattachMin <= 0 {
		c.ReattachMin = 200 * time.Millisecond
	}
	if c.ReattachMax <= 0 {
		c.ReattachMax = 5 * time.Second
	}
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 30 * time.Second
	}
	return c
}

// pingResult classifies one keepalive round.
type pingResult int

const (
	// pingAcked: a valid pong sealed under the session key came back.
	pingAcked pingResult = iota
	// pingMissed: the round ended with no usable answer.
	pingMissed
	// pingUnknownSession: the server answered that it does not hold the
	// session — the (unauthenticated) restart hint.
	pingUnknownSession
	// pingEpochChanged: a valid pong reported a different boot epoch than
	// the one recorded at attach (authenticated restart signal).
	pingEpochChanged
)

// Maintain runs the self-healing session loop until ctx is cancelled:
// attach (with jittered exponential backoff across failures), then send
// encrypted keepalive pings every KeepaliveInterval. MaxMissed unanswered
// rounds declare the peer dead; an unknown-session reject is confirmed
// against the signed boot epoch of a freshly solicited beacon. Either way
// the orphaned session is dropped and the loop re-attaches automatically.
// Maintain always returns ctx's error.
func (c *Client) Maintain(ctx context.Context, cfg MaintainConfig) error {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	backoff := cfg.ReattachMin

	for {
		if err := ctx.Err(); err != nil {
			return err
		}

		// Phase A: (re-)attach until a session is established — via the
		// held resumption ticket when the server still honours it (one
		// symmetric round trip), the full M.1–M.3 otherwise.
		if c.Session() == nil {
			actx, cancel := context.WithTimeout(ctx, cfg.AttachTimeout)
			_, err := c.AttachOrResume(actx)
			cancel()
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				logf("transport: attach failed, backing off %v: %v", backoff, err)
				if !sleepCtx(ctx, c.jittered(backoff)) {
					return ctx.Err()
				}
				backoff *= 2
				if backoff > cfg.ReattachMax {
					backoff = cfg.ReattachMax
				}
				continue
			}
			backoff = cfg.ReattachMin
			logf("transport: attached (boot epoch %d)", c.BootEpoch())
		}

		// Phase B: keepalive until the session dies or ctx ends.
		missed := 0
		for c.Session() != nil {
			if !sleepCtx(ctx, cfg.KeepaliveInterval) {
				return ctx.Err()
			}
			switch c.pingOnce(ctx, cfg.PingTimeout) {
			case pingAcked:
				missed = 0
			case pingEpochChanged:
				c.stats.restartsDetected.Add(1)
				logf("transport: pong reports new boot epoch; re-attaching")
				c.dropSession()
			case pingUnknownSession:
				if c.confirmRestart(ctx, cfg.PingTimeout) {
					logf("transport: restart confirmed via beacon; re-attaching")
					c.dropSession()
					continue
				}
				// Unconfirmed (possibly forged) hint: treat like a missed
				// round so a real outage still trips the dead-peer limit.
				missed++
				c.stats.keepalivesMissed.Add(1)
			case pingMissed:
				missed++
				c.stats.keepalivesMissed.Add(1)
			}
			if missed >= cfg.MaxMissed {
				c.stats.deadPeerEvents.Add(1)
				logf("transport: %d keepalives missed; declaring peer dead", missed)
				c.dropSession()
			}
		}
	}
}

// dropSession discards the orphaned session and counts the re-attach
// cycle the maintain loop is about to run.
func (c *Client) dropSession() {
	c.setSession(nil, 0)
	c.stats.reattaches.Add(1)
}

// pingOnce runs one keepalive round: seal a nonce'd ping under the
// session key, send it once, and classify whatever comes back before the
// timeout. Retransmission is the next round's job — cadence, not urgency.
func (c *Client) pingOnce(ctx context.Context, timeout time.Duration) pingResult {
	sess := c.Session()
	if sess == nil {
		return pingMissed
	}
	nonce := c.rng.Uint64()
	df, err := sess.SealData(rand.Reader, (&PingBody{Nonce: nonce}).Marshal())
	if err != nil {
		return pingMissed
	}
	frame, err := EncodeMessage(&SessionPing{Frame: df})
	if err != nil {
		return pingMissed
	}
	if err := c.send(frame); err != nil {
		return pingMissed
	}
	c.stats.keepalivesSent.Add(1)
	pingStart := time.Now()

	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		if ctx.Err() != nil {
			return pingMissed
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return pingMissed
		}
		n, from, err := c.conn.ReadFrom(c.buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return pingMissed
			}
			return pingMissed
		}
		c.stats.bytesIn.Add(int64(n))
		if from.String() != c.raddr.String() {
			c.stats.unhandled.Add(1)
			continue
		}
		kind, payload, derr := DecodeFrame(c.buf[:n])
		if derr != nil {
			c.stats.decodeErrors.Add(1)
			continue
		}
		c.stats.framesIn.Add(1)
		switch kind {
		case KindSessionPong:
			pf, err := core.UnmarshalDataFrame(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				continue
			}
			body, err := sess.OpenData(pf)
			if err != nil {
				// Forged, corrupted or replayed pong; keep waiting.
				c.stats.decodeErrors.Add(1)
				continue
			}
			pb, err := UnmarshalPongBody(body)
			if err != nil || pb.Nonce != nonce {
				c.stats.unhandled.Add(1)
				continue
			}
			c.stats.keepalivesAcked.Add(1)
			// The sealed ping/pong pair is a full sealed-data round trip
			// (seal, send, server open+reseal, open), so it stands in for
			// the data-path RTT.
			c.stats.dataRTT.Observe(time.Since(pingStart))
			if pb.BootEpoch != c.BootEpoch() {
				return pingEpochChanged
			}
			return pingAcked
		case KindReject:
			rej, err := UnmarshalReject(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				continue
			}
			if rej.Session == sess.ID && rej.Code == RejectUnknownSession {
				return pingUnknownSession
			}
			c.stats.unhandled.Add(1)
		default:
			c.stats.unhandled.Add(1)
		}
	}
}

// confirmRestart re-solicits the beacon and checks its signed boot epoch
// against the one recorded at attach. Only an authenticated epoch change
// (or a beacon proving our revocation state is behind, which forces a
// re-sync anyway) tears the session down — an attacker forging
// unknown-session rejects cannot kill a healthy session.
func (c *Client) confirmRestart(ctx context.Context, timeout time.Duration) bool {
	bctx, cancel := context.WithTimeout(ctx, 4*timeout)
	defer cancel()
	b, err := c.solicitBeacon(bctx)
	if err != nil {
		return false
	}
	switch err := c.user.ObserveBeacon(b); {
	case err == nil:
		if b.BootEpoch != c.BootEpoch() {
			c.stats.restartsDetected.Add(1)
			return true
		}
		return false
	case errors.Is(err, core.ErrRevocationStale):
		// The router moved past our installed revocation state; a
		// re-attach resynchronizes it. (The refs are not authenticated at
		// this point, but re-attaching is safe — merely costly.)
		return true
	default:
		return false
	}
}

// sleepCtx sleeps for d and reports false when ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
