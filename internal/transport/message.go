package transport

import (
	"errors"
	"fmt"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/wire"
)

// BeaconRequest solicits the router's current beacon (no payload).
type BeaconRequest struct{}

// RejectCode classifies why a router refused an access request, so a
// client can distinguish "retry later" from "give up".
type RejectCode uint32

// Reject codes, mapped from the core protocol errors.
const (
	RejectUnspecified RejectCode = iota
	RejectQueueFull              // transient: ingest queue shed the request
	RejectStale                  // replay/freshness check failed
	RejectAuth                   // group-signature verification failed
	RejectRevoked                // signer's token is on the URL
	RejectPuzzle                 // missing or wrong client-puzzle solution
	RejectDraining               // transient: server is shutting down gracefully
	// RejectUnknownSession answers a keepalive ping for a session this
	// server does not hold — the unauthenticated hint that the server
	// restarted. Clients confirm against the signed beacon boot epoch
	// before tearing anything down, so a forged reject cannot kill a
	// healthy session.
	RejectUnknownSession
	// RejectTicket answers a resume request whose ticket is unusable:
	// sealed under a rotated-out STEK generation, expired, malformed, or
	// failing its resumption MAC. The client falls back to the full
	// M.1–M.3 handshake, which mints a fresh ticket.
	RejectTicket
	// RejectTicketStale answers a resume request whose ticket carries
	// revocation-epoch refs behind the router's installed lists. The
	// holder might have been revoked since issuance, so the cheap path is
	// refused; the client's fallback full attach re-syncs revocation state
	// (Phase 1.5) and re-proves membership against the current URL.
	RejectTicketStale
)

// Transient reports whether the code means "back off and retry" rather
// than "the request is bad": backpressure and graceful drain both resolve
// on their own.
func (c RejectCode) Transient() bool {
	return c == RejectQueueFull || c == RejectDraining
}

// String names the code.
func (c RejectCode) String() string {
	switch c {
	case RejectQueueFull:
		return "queue-full"
	case RejectStale:
		return "stale"
	case RejectAuth:
		return "auth"
	case RejectRevoked:
		return "revoked"
	case RejectPuzzle:
		return "puzzle"
	case RejectDraining:
		return "draining"
	case RejectUnknownSession:
		return "unknown-session"
	case RejectTicket:
		return "ticket"
	case RejectTicketStale:
		return "ticket-stale"
	default:
		return "unspecified"
	}
}

// rejectCodeFor classifies a router-side error.
func rejectCodeFor(err error) RejectCode {
	switch {
	case errors.Is(err, core.ErrQueueFull):
		return RejectQueueFull
	case errors.Is(err, core.ErrReplay):
		return RejectStale
	case errors.Is(err, core.ErrRevokedUser):
		return RejectRevoked
	case errors.Is(err, core.ErrPuzzleRequired):
		return RejectPuzzle
	case errors.Is(err, core.ErrBadAccessRequest):
		return RejectAuth
	default:
		return RejectUnspecified
	}
}

// Err maps the code back to the matching core error for errors.Is on the
// client side.
func (c RejectCode) Err() error {
	switch c {
	case RejectQueueFull:
		return core.ErrQueueFull
	case RejectStale:
		return core.ErrReplay
	case RejectAuth:
		return core.ErrBadAccessRequest
	case RejectRevoked:
		return core.ErrRevokedUser
	case RejectPuzzle:
		return core.ErrPuzzleRequired
	case RejectDraining:
		return core.ErrQueueFull
	case RejectUnknownSession:
		return core.ErrNoSession
	case RejectTicket:
		return ErrTicketUnusable
	case RejectTicketStale:
		return core.ErrRevocationStale
	default:
		return errors.New("transport: request rejected")
	}
}

// Reject is the router's negative reply to an access request: the session
// identifier it concerns, a machine-readable code and a diagnostic string.
// A RejectPuzzle reply additionally carries the challenge the router
// currently demands, so a rejected client can solve and retry without
// waiting for the next beacon broadcast.
type Reject struct {
	Session core.SessionID
	Code    RejectCode
	Reason  string
	Puzzle  *puzzle.Puzzle
}

// Marshal encodes the reject notice.
func (m *Reject) Marshal() []byte {
	w := wire.NewWriter(128 + len(m.Reason))
	w.BytesField(m.Session[:])
	w.Uint32(uint32(m.Code))
	w.StringField(m.Reason)
	if m.Puzzle != nil {
		w.Byte(1)
		w.BytesField(m.Puzzle.Marshal())
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// UnmarshalReject decodes a reject notice.
func UnmarshalReject(data []byte) (*Reject, error) {
	r := wire.NewReader(data)
	m := &Reject{}
	sid, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(sid) != len(m.Session) {
		return nil, fmt.Errorf("transport: reject session id size %d", len(sid))
	}
	copy(m.Session[:], sid)
	code, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	m.Code = RejectCode(code)
	if m.Reason, err = r.StringField(); err != nil {
		return nil, err
	}
	hasPuzzle, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if hasPuzzle == 1 {
		raw, err := r.BytesField()
		if err != nil {
			return nil, err
		}
		if m.Puzzle, err = puzzle.Unmarshal(raw); err != nil {
			return nil, fmt.Errorf("transport: reject puzzle: %w", err)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// RevocationFetch asks the router for revocation state of one list. With
// Have set, the client declares the epoch and digest it already holds and
// the router answers with the delta from that epoch when its bounded
// history still covers it; otherwise (or with Have unset) the full
// snapshot comes back.
type RevocationFetch struct {
	List       revocation.List
	Have       bool
	HaveEpoch  uint64
	HaveDigest [revocation.DigestSize]byte
}

// FetchFor converts a gap reported by core.User.RevocationGaps into the
// wire request that closes it.
func FetchFor(g revocation.Gap) *RevocationFetch {
	return &RevocationFetch{List: g.List, Have: g.Have, HaveEpoch: g.HaveEpoch, HaveDigest: g.HaveDigest}
}

// Marshal encodes the fetch request.
func (m *RevocationFetch) Marshal() []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(m.List))
	if m.Have {
		w.Byte(1)
		w.Uint64(m.HaveEpoch)
		w.BytesField(m.HaveDigest[:])
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// UnmarshalRevocationFetch decodes a fetch request.
func UnmarshalRevocationFetch(data []byte) (*RevocationFetch, error) {
	r := wire.NewReader(data)
	m := &RevocationFetch{}
	l, err := r.Byte()
	if err != nil {
		return nil, err
	}
	m.List = revocation.List(l)
	if m.List != revocation.ListURL && m.List != revocation.ListCRL {
		return nil, fmt.Errorf("transport: revocation fetch list %d", l)
	}
	have, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if have == 1 {
		m.Have = true
		if m.HaveEpoch, err = r.Uint64(); err != nil {
			return nil, err
		}
		d, err := r.BytesField()
		if err != nil {
			return nil, err
		}
		if len(d) != revocation.DigestSize {
			return nil, fmt.Errorf("transport: revocation fetch digest size %d", len(d))
		}
		copy(m.HaveDigest[:], d)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// snapshotKind maps a revocation list to the frame kind that carries its
// full snapshots.
func snapshotKind(l revocation.List) (Kind, error) {
	switch l {
	case revocation.ListURL:
		return KindURLUpdate, nil
	case revocation.ListCRL:
		return KindCRLUpdate, nil
	default:
		return KindInvalid, fmt.Errorf("transport: no kind for revocation list %d", l)
	}
}

// EncodeMessage frames any protocol message, choosing the kind from the
// concrete type.
func EncodeMessage(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *BeaconRequest, BeaconRequest:
		return EncodeFrame(KindBeaconRequest, nil)
	case *core.Beacon:
		return EncodeFrame(KindBeacon, m.Marshal())
	case *core.AccessRequest:
		return EncodeFrame(KindAccessRequest, m.Marshal())
	case *core.AccessConfirm:
		return EncodeFrame(KindAccessConfirm, m.Marshal())
	case *core.PeerHello:
		return EncodeFrame(KindPeerHello, m.Marshal())
	case *core.PeerResponse:
		return EncodeFrame(KindPeerResponse, m.Marshal())
	case *core.PeerConfirm:
		return EncodeFrame(KindPeerConfirm, m.Marshal())
	case *revocation.Snapshot:
		k, err := snapshotKind(m.List)
		if err != nil {
			return nil, err
		}
		return EncodeFrame(k, m.Marshal())
	case *revocation.Delta:
		return EncodeFrame(KindURLDelta, m.Marshal())
	case *RevocationFetch:
		return EncodeFrame(KindURLSnapshotRequest, m.Marshal())
	case *puzzle.Puzzle:
		return EncodeFrame(KindPuzzle, m.Marshal())
	case *SessionPing:
		return EncodeFrame(KindSessionPing, m.Frame.Marshal())
	case *SessionPong:
		return EncodeFrame(KindSessionPong, m.Frame.Marshal())
	case *ResumeRequest:
		return EncodeFrame(KindResumeRequest, m.Marshal())
	case *ResumeConfirm:
		return EncodeFrame(KindResumeConfirm, m.Marshal())
	case *SessionData:
		return EncodeFrame(KindSessionData, m.Frame.Marshal())
	case *RouterHello:
		return EncodeFrame(KindRouterHello, m.Marshal())
	case *RouterWelcome:
		return EncodeFrame(KindRouterWelcome, m.Marshal())
	case *Reject:
		return EncodeFrame(KindReject, m.Marshal())
	default:
		return nil, fmt.Errorf("transport: cannot encode %T", msg)
	}
}

// DecodeMessage decodes a frame payload into the concrete protocol
// message for its kind. Hostile payloads yield errors, never panics.
func DecodeMessage(kind Kind, payload []byte) (any, error) {
	switch kind {
	case KindBeaconRequest:
		if len(payload) != 0 {
			return nil, fmt.Errorf("transport: beacon request carries %d payload bytes", len(payload))
		}
		return &BeaconRequest{}, nil
	case KindBeacon:
		return core.UnmarshalBeacon(payload)
	case KindAccessRequest:
		return core.UnmarshalAccessRequest(payload)
	case KindAccessConfirm:
		return core.UnmarshalAccessConfirm(payload)
	case KindPeerHello:
		return core.UnmarshalPeerHello(payload)
	case KindPeerResponse:
		return core.UnmarshalPeerResponse(payload)
	case KindPeerConfirm:
		return core.UnmarshalPeerConfirm(payload)
	case KindURLUpdate, KindCRLUpdate:
		s, err := revocation.UnmarshalSnapshot(payload)
		if err != nil {
			return nil, err
		}
		if want, _ := snapshotKind(s.List); want != kind {
			return nil, fmt.Errorf("transport: %v frame carries %v snapshot", kind, s.List)
		}
		return s, nil
	case KindURLDelta:
		return revocation.UnmarshalDelta(payload)
	case KindURLSnapshotRequest:
		return UnmarshalRevocationFetch(payload)
	case KindPuzzle:
		return puzzle.Unmarshal(payload)
	case KindSessionPing:
		f, err := core.UnmarshalDataFrame(payload)
		if err != nil {
			return nil, err
		}
		return &SessionPing{Frame: f}, nil
	case KindSessionPong:
		f, err := core.UnmarshalDataFrame(payload)
		if err != nil {
			return nil, err
		}
		return &SessionPong{Frame: f}, nil
	case KindResumeRequest:
		return UnmarshalResumeRequest(payload)
	case KindResumeConfirm:
		return UnmarshalResumeConfirm(payload)
	case KindSessionData:
		f, err := core.UnmarshalDataFrame(payload)
		if err != nil {
			return nil, err
		}
		return &SessionData{Frame: f}, nil
	case KindRouterHello:
		return UnmarshalRouterHello(payload)
	case KindRouterWelcome:
		return UnmarshalRouterWelcome(payload)
	case KindGossip, KindRelay, KindHandoffAnnounce:
		return UnmarshalLinkEnvelope(payload)
	case KindReject:
		return UnmarshalReject(payload)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
}
