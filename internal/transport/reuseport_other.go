//go:build !linux

package transport

import "syscall"

// reusePortAvailable: no portable SO_REUSEPORT here; ListenShards falls
// back to one socket shared by all shard loops (userspace demux).
const reusePortAvailable = false

func setReusePort(network, address string, c syscall.RawConn) error {
	return nil
}
