package transport

import (
	"bytes"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

// FuzzDecodeFrame throws arbitrary datagrams at the frame decoder. The
// decoder guards every UDP read in the daemon, so it must never panic and
// every accepted frame must re-encode to the identical datagram.
func FuzzDecodeFrame(f *testing.F) {
	for _, kind := range []Kind{KindBeaconRequest, KindBeacon, KindAccessRequest, KindReject} {
		frame, err := EncodeFrame(kind, []byte("seed payload"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:HeaderSize])
	}
	f.Add([]byte{})
	f.Add([]byte("PEAC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out, err := EncodeFrame(kind, payload)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalPingBody throws arbitrary bytes at the keepalive ping-body
// decoder. The body arrives as decrypted session plaintext, but a hostile
// session peer controls it fully, so the decoder must never panic and
// accepted bodies must round-trip byte-identically.
func FuzzUnmarshalPingBody(f *testing.F) {
	f.Add((&PingBody{Nonce: 42}).Marshal())
	f.Add((&PongBody{Nonce: 42, BootEpoch: 7}).Marshal()) // wrong-tag seed
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPingBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("ping body decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalPongBody is the pong-side twin: it also carries the boot
// epoch the restart detector trusts, so malformed bodies must fail
// cleanly instead of yielding a half-parsed epoch.
func FuzzUnmarshalPongBody(f *testing.F) {
	f.Add((&PongBody{Nonce: 42, BootEpoch: 7}).Marshal())
	f.Add((&PingBody{Nonce: 42}).Marshal()) // wrong-tag seed
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPongBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("pong body decode/encode round trip not identical")
		}
	})
}

// FuzzDecodeMessage drives the full kind-dispatched message decoder the
// server loop runs on every datagram: any (kind, payload) must either be
// rejected cleanly or produce a message that survives re-encoding.
func FuzzDecodeMessage(f *testing.F) {
	rej := &Reject{Code: RejectQueueFull, Reason: "seed"}
	frame, err := EncodeMessage(rej)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(KindReject), frame[HeaderSize:])
	f.Add(uint8(KindBeaconRequest), []byte{})
	f.Add(uint8(KindBeacon), []byte("not a beacon"))
	f.Fuzz(func(t *testing.T, k uint8, payload []byte) {
		msg, err := DecodeMessage(Kind(k), payload)
		if err != nil {
			return
		}
		if _, err := EncodeMessage(msg); err != nil {
			t.Fatalf("accepted %T failed to re-encode: %v", msg, err)
		}
	})
}

// FuzzUnmarshalTicket throws arbitrary bytes at the ticket-plaintext
// decoder. The plaintext only ever arrives through the STEK AEAD, but the
// decoder must still hold up on its own: a key-compromise or a buggy
// caller must yield clean errors, never a panic or a half-parsed ticket,
// and accepted tickets must round-trip byte-identically.
func FuzzUnmarshalTicket(f *testing.F) {
	seed := &Ticket{URLEpoch: 3, CRLEpoch: 1, BootEpoch: 9, Escrow: []byte("escrowed m2")}
	seed.Secret[0] = 0xaa
	seed.Prev[0] = 0xbb
	f.Add(seed.Marshal())
	f.Add((&Ticket{}).Marshal())
	f.Add([]byte{})
	f.Add([]byte("peace/ticket:v1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tk, err := UnmarshalTicket(data)
		if err != nil {
			return
		}
		if !bytes.Equal(tk.Marshal(), data) {
			t.Fatal("ticket decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalResumeRequest drives both resume-request decoders — the
// allocating one and the aliasing zero-alloc one the shard loops use — on
// arbitrary datagram payloads. They must agree with each other, never
// panic, and accepted requests must round-trip byte-identically.
func FuzzUnmarshalResumeRequest(f *testing.F) {
	seedReq := &ResumeRequest{Ticket: []byte("sealed blob")}
	seedReq.Nonce[3] = 7
	seedReq.Tag[0] = 1
	f.Add(seedReq.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalResumeRequest(data)
		var scratch ResumeRequest
		aliasErr := UnmarshalResumeRequestInto(data, &scratch)
		if (err == nil) != (aliasErr == nil) {
			t.Fatalf("decoders disagree: %v vs %v", err, aliasErr)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(m.Ticket, scratch.Ticket) || m.Nonce != scratch.Nonce || m.Tag != scratch.Tag {
			t.Fatal("aliasing decoder produced a different request")
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("resume request decode/encode round trip not identical")
		}
	})
}

// fuzzBackboneCert builds a structurally complete (unsigned, unverified)
// router certificate for backbone handshake fuzz seeds — the decoders
// under test parse structure only; signature checks happen later.
func fuzzBackboneCert() *cert.Certificate {
	c := &cert.Certificate{SubjectID: "metro-r00", Signature: []byte("sig")}
	c.PublicKey[0] = 1
	c.ExpiresAt = time.Unix(1700000000, 0).UTC()
	return c
}

// FuzzUnmarshalRouterHello throws arbitrary datagram payloads at the
// backbone handshake-initiation decoder: it parses untrusted bytes off
// the router's backbone socket before any authentication, so it must
// never panic and accepted hellos must round-trip byte-identically.
func FuzzUnmarshalRouterHello(f *testing.F) {
	seed := &RouterHello{Cert: fuzzBackboneCert(), Share: []byte("dh share"), Sig: []byte("hello sig")}
	seed.Nonce[0] = 9
	seed.Timestamp = time.Unix(1700000001, 0).UTC()
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalRouterHello(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("router hello decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalRouterWelcome is the responder-side twin.
func FuzzUnmarshalRouterWelcome(f *testing.F) {
	seed := &RouterWelcome{Cert: fuzzBackboneCert(), Share: []byte("dh share"), Sig: []byte("welcome sig")}
	seed.Echo[1] = 3
	seed.Nonce[2] = 5
	seed.Timestamp = time.Unix(1700000002, 0).UTC()
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalRouterWelcome(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("router welcome decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalLinkEnvelope covers the sealed-envelope decoder every
// post-handshake backbone datagram passes through.
func FuzzUnmarshalLinkEnvelope(f *testing.F) {
	f.Add((&LinkEnvelope{From: "metro-r01", Seq: 7, Ciphertext: []byte("aead box")}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalLinkEnvelope(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("link envelope decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalGossipBody covers the gossip-round decoder. The body is
// authenticated link plaintext, but a hostile (certified-then-compromised)
// peer controls it fully, so it must fail cleanly on any mutation.
func FuzzUnmarshalGossipBody(f *testing.F) {
	var next, prev [32]byte
	next[0], prev[0] = 1, 2
	body := &GossipBody{
		BootEpoch: 42,
		Routes:    []RouteAd{{Router: "metro-r02", Hops: 2}},
		Owners: []OwnerAd{{
			Next: next, Prev: prev,
			Owner: "metro-r01", PrevRouter: "metro-r00",
			Expires: time.Unix(1700000003, 0).UTC(),
		}},
	}
	f.Add(body.Marshal())
	f.Add((&GossipBody{}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalGossipBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("gossip body decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalRelayBody covers the relay-wrapper decoder that carries
// forwarded data frames across the backbone.
func FuzzUnmarshalRelayBody(f *testing.F) {
	f.Add((&RelayBody{Target: "metro-r03", Origin: "metro-r00", TTL: 8, Payload: []byte("data frame")}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalRelayBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Marshal(), data) {
			t.Fatal("relay body decode/encode round trip not identical")
		}
	})
}
