package transport

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary datagrams at the frame decoder. The
// decoder guards every UDP read in the daemon, so it must never panic and
// every accepted frame must re-encode to the identical datagram.
func FuzzDecodeFrame(f *testing.F) {
	for _, kind := range []Kind{KindBeaconRequest, KindBeacon, KindAccessRequest, KindReject} {
		frame, err := EncodeFrame(kind, []byte("seed payload"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:HeaderSize])
	}
	f.Add([]byte{})
	f.Add([]byte("PEAC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out, err := EncodeFrame(kind, payload)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalPingBody throws arbitrary bytes at the keepalive ping-body
// decoder. The body arrives as decrypted session plaintext, but a hostile
// session peer controls it fully, so the decoder must never panic and
// accepted bodies must round-trip byte-identically.
func FuzzUnmarshalPingBody(f *testing.F) {
	f.Add((&PingBody{Nonce: 42}).Marshal())
	f.Add((&PongBody{Nonce: 42, BootEpoch: 7}).Marshal()) // wrong-tag seed
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPingBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("ping body decode/encode round trip not identical")
		}
	})
}

// FuzzUnmarshalPongBody is the pong-side twin: it also carries the boot
// epoch the restart detector trusts, so malformed bodies must fail
// cleanly instead of yielding a half-parsed epoch.
func FuzzUnmarshalPongBody(f *testing.F) {
	f.Add((&PongBody{Nonce: 42, BootEpoch: 7}).Marshal())
	f.Add((&PingBody{Nonce: 42}).Marshal()) // wrong-tag seed
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPongBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Marshal(), data) {
			t.Fatal("pong body decode/encode round trip not identical")
		}
	})
}

// FuzzDecodeMessage drives the full kind-dispatched message decoder the
// server loop runs on every datagram: any (kind, payload) must either be
// rejected cleanly or produce a message that survives re-encoding.
func FuzzDecodeMessage(f *testing.F) {
	rej := &Reject{Code: RejectQueueFull, Reason: "seed"}
	frame, err := EncodeMessage(rej)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(KindReject), frame[HeaderSize:])
	f.Add(uint8(KindBeaconRequest), []byte{})
	f.Add(uint8(KindBeacon), []byte("not a beacon"))
	f.Fuzz(func(t *testing.T, k uint8, payload []byte) {
		msg, err := DecodeMessage(Kind(k), payload)
		if err != nil {
			return
		}
		if _, err := EncodeMessage(msg); err != nil {
			t.Fatalf("accepted %T failed to re-encode: %v", msg, err)
		}
	})
}
