package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
)

// ErrHandshakeTimeout is returned when a handshake phase exhausted its
// retransmissions without an answer.
var ErrHandshakeTimeout = errors.New("transport: handshake timed out after max retries")

// errTransientReject is the in-client signal that the router asked us to
// back off (queue full, draining): the exchange loop keeps retransmitting
// and may extend its retry budget instead of failing the attach.
var errTransientReject = errors.New("transport: transient reject")

// puzzleChallengeError aborts an exchange with the challenge a
// RejectPuzzle reply carried: the caller solves it off the retransmit loop
// and re-runs the phase with the solution attached.
type puzzleChallengeError struct{ p *puzzle.Puzzle }

func (e *puzzleChallengeError) Error() string {
	return fmt.Sprintf("transport: router demands a puzzle solution (difficulty %d)", e.p.Difficulty)
}

func (e *puzzleChallengeError) Unwrap() error { return core.ErrPuzzleRequired }

// maxPuzzleRetries bounds how many times one attach or resume re-runs its
// exchange with a freshly solved puzzle before giving up (the demanded
// difficulty can ratchet between tries).
const maxPuzzleRetries = 2

// clientSeq de-correlates the jitter streams of clients that did not pick
// an explicit seed.
var clientSeq atomic.Int64

// ClientConfig tunes the user-side handshake state machine.
type ClientConfig struct {
	// Group selects which credential signs M.2 (empty = any).
	Group core.GroupID
	// RetransmitTimeout is the initial wait before a frame is sent again.
	// Default 150ms.
	RetransmitTimeout time.Duration
	// MaxTimeout caps the backed-off retransmit timeout. Default 2s.
	MaxTimeout time.Duration
	// BackoffFactor multiplies the timeout after every retransmission.
	// Default 2.
	BackoffFactor float64
	// MaxRetries bounds retransmissions per phase (so a phase sends at
	// most 1+MaxRetries frames). The default of 10 gives a total wait of
	// ≈16 s per phase — sized so a request sitting in a busy router's
	// verification queue behind ~100 concurrent users is not abandoned
	// while the server is still working on it.
	MaxRetries int
	// Jitter spreads every retransmit wait uniformly over
	// [1-Jitter, 1+Jitter] of its nominal value, so a fleet of clients
	// recovering from the same outage does not thundering-herd the router
	// in lockstep. Default 0.2; negative disables jitter.
	Jitter float64
	// Seed makes the jitter stream reproducible. Zero draws a process-wide
	// unique seed.
	Seed int64
	// QueueFullResets is how many times a phase's whole retry budget is
	// re-armed after the router signalled transient backpressure
	// (queue-full or draining): those rejections mean "come back soon",
	// not "give up". Default 3; negative disables re-arming.
	QueueFullResets int
	// PuzzleSolveBudget caps the hash evaluations one puzzle solve may
	// spend before the attach fails with core.ErrPuzzleRequired — the
	// client-side guard against a hostile or runaway difficulty. The
	// default of 2^24 covers difficulty ≤ ~22 with headroom; negative
	// disables the cap.
	PuzzleSolveBudget int64
	// Metrics is the registry the client's instruments resolve in. Nil
	// creates a private registry. A fleet of clients may share one
	// registry; registration is idempotent and their counts aggregate.
	Metrics *metrics.Registry
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = 150 * time.Millisecond
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Second
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 10
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.QueueFullResets == 0 {
		c.QueueFullResets = 3
	}
	if c.QueueFullResets < 0 {
		c.QueueFullResets = 0
	}
	if c.PuzzleSolveBudget == 0 {
		c.PuzzleSolveBudget = 1 << 24
	}
	if c.PuzzleSolveBudget < 0 {
		c.PuzzleSolveBudget = 0
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano() ^ (clientSeq.Add(1) << 32)
	}
	return c
}

// Client drives one user through the M.1–M.3 AKA against a router
// address. The state machine is send-and-wait with exponential backoff:
//
//	solicit ──M.1──▶ request ──M.3──▶ established
//	   │ timeout: resend beacon-request │ timeout: resend M.2
//
// Duplicate beacons and stray frames are suppressed; a Reject for the
// session aborts (except queue-full, which keeps retrying — that is
// backpressure, not failure).
type Client struct {
	cfg   ClientConfig
	conn  net.PacketConn
	user  *core.User
	stats *Stats
	buf   []byte
	rng   *rand.Rand

	// mu guards the self-healing state that Maintain mutates while other
	// goroutines (a scenario runner, a stats reporter) observe it.
	mu sync.Mutex
	// raddr is the router currently talked to; Retarget repoints it when
	// the user roams to a different AP.
	raddr net.Addr
	// sess is the currently established session, nil while detached.
	sess *core.Session
	// bootEpoch is the authenticated server boot epoch recorded when sess
	// was established.
	bootEpoch uint64
	// ticket is the held resumption state (sealed blob + locally derived
	// secret), nil until an attach or resume minted one.
	ticket *resumeTicket
	// lastRouterID is the authenticated ID of the router that established
	// the current session; a resume answered by a different ID is a
	// roaming handoff for the latency accounting.
	lastRouterID string

	// sendMu guards sendBuf, the reused data-frame encode scratch of
	// SendDataVia — header plus sealed frame built in place, so the
	// steady-state send path allocates nothing.
	sendMu  sync.Mutex
	sendBuf []byte
}

// NewClient wraps conn (the user's own socket) talking to the router at
// raddr on behalf of user.
func NewClient(conn net.PacketConn, raddr net.Addr, user *core.User, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:   cfg,
		conn:  conn,
		raddr: raddr,
		user:  user,
		stats: NewStats(cfg.Metrics),
		buf:   make([]byte, 65536),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	// Budgeted, randomized-start puzzle solving: the random start point
	// makes a fleet answering one broadcast puzzle find distinct solutions
	// (so per-source replay suppression never punishes honest clients), and
	// the budget keeps a hostile difficulty from wedging the attach loop.
	user.SetPuzzleSolver(c.solvePuzzle)
	return c
}

// solvePuzzle answers one challenge within the configured hash budget,
// recording the solve latency.
func (c *Client) solvePuzzle(p *puzzle.Puzzle) (uint64, bool) {
	start := time.Now()
	sol, _, ok := p.SolveFrom(c.rng.Uint64(), uint64(c.cfg.PuzzleSolveBudget))
	if ok {
		c.stats.dosSolveLatency.Observe(time.Since(start))
	}
	return sol, ok
}

// Stats returns the client's transport counters.
func (c *Client) Stats() *Stats { return c.stats }

// RouterAddr returns the router address currently talked to.
func (c *Client) RouterAddr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raddr
}

// Retarget repoints the client at a different router (the user moved to a
// new AP). Session and ticket state are deliberately kept: the next
// Resume against the new address is exactly the metro roaming handoff —
// the adopting router opens the ticket, re-logs the escrow and announces
// ownership on the backbone.
func (c *Client) Retarget(raddr net.Addr) {
	c.mu.Lock()
	c.raddr = raddr
	c.mu.Unlock()
}

// Session returns the currently established session, or nil while the
// client is detached (never attached, or lost to a restart and not yet
// re-attached).
func (c *Client) Session() *core.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess
}

// BootEpoch returns the authenticated server boot epoch recorded at the
// last successful attach.
func (c *Client) BootEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bootEpoch
}

// setLastRouterID records which router authenticated the session, and
// lastRouter reads it back; both sides of the handoff-latency judgment.
func (c *Client) setLastRouterID(id string) {
	c.mu.Lock()
	c.lastRouterID = id
	c.mu.Unlock()
}

func (c *Client) lastRouter() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRouterID
}

// setSession records (or clears, with nil) the established session.
func (c *Client) setSession(s *core.Session, bootEpoch uint64) {
	c.mu.Lock()
	c.sess = s
	c.bootEpoch = bootEpoch
	c.mu.Unlock()
	c.stats.bootEpoch.Store(bootEpoch)
}

// Attach runs the full three-message AKA and returns the established
// session. It retransmits through datagram loss and fails with
// ErrHandshakeTimeout when the router stays silent.
func (c *Client) Attach(ctx context.Context) (*core.Session, error) {
	c.stats.attachAttempts.Add(1)
	attachStart := time.Now()

	// Phase 1: solicit the beacon (M.1).
	beacon, err := c.solicitBeacon(ctx)
	if err != nil {
		return nil, fmt.Errorf("solicit beacon: %w", err)
	}

	// Phase 1.5: converge revocation state onto what the beacon
	// advertises — a delta per list when the router still has one from our
	// epoch, a full snapshot otherwise — before any signing happens.
	if err := c.syncRevocations(ctx, beacon); err != nil {
		return nil, fmt.Errorf("revocation sync: %w", err)
	}

	// Phase 2: validate M.1, send M.2, await M.3.
	m2, err := c.user.HandleBeacon(beacon, c.cfg.Group)
	if err != nil {
		return nil, err
	}
	sid := core.NewSessionID(m2.GR, m2.GJ)
	var confirm *core.AccessConfirm
	handler := func(kind Kind, payload []byte) (bool, error) {
		switch kind {
		case KindAccessConfirm:
			m, err := core.UnmarshalAccessConfirm(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			if core.NewSessionID(m.GR, m.GJ) != sid {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			confirm = m
			return true, nil
		case KindReject:
			rej, err := UnmarshalReject(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			if rej.Session != sid {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			c.stats.rejects.Add(1)
			if rej.Code.Transient() {
				// Backpressure or graceful drain: stay in the retransmit
				// loop and let exchange re-arm its retry budget.
				return false, errTransientReject
			}
			if rej.Code == RejectPuzzle && rej.Puzzle != nil {
				// Defense engaged (or ratcheted) after our M.2 was built:
				// abort the exchange with the carried challenge; the attach
				// loop solves it and re-sends the same signed M.2.
				return false, &puzzleChallengeError{p: rej.Puzzle}
			}
			return false, fmt.Errorf("transport: router rejected request (%s): %w", rej.Reason, rej.Code.Err())
		case KindBeacon:
			// A retransmitted solicitation from phase 1 can still produce
			// late beacons; they are duplicates here.
			c.stats.duplicates.Add(1)
			return false, nil
		default:
			c.stats.unhandled.Add(1)
			return false, nil
		}
	}
	for tries := 0; ; tries++ {
		request, err := EncodeMessage(m2)
		if err != nil {
			return nil, err
		}
		err = c.exchange(ctx, request, handler)
		if err == nil {
			break
		}
		var pc *puzzleChallengeError
		if errors.As(err, &pc) && tries < maxPuzzleRetries {
			// The solution fields sit outside the group-signed transcript,
			// so the already-signed M.2 gains the fresh answer without
			// another signing pass; the session id is unchanged.
			sol, ok := c.solvePuzzle(pc.p)
			if !ok {
				return nil, fmt.Errorf("access request: %w: solve budget exhausted at difficulty %d",
					core.ErrPuzzleRequired, pc.p.Difficulty)
			}
			m2.HasSolution = true
			m2.Solution = sol
			m2.PuzzleIssuedAt = pc.p.IssuedAt
			m2.PuzzleDifficulty = pc.p.Difficulty
			continue
		}
		return nil, fmt.Errorf("access request: %w", err)
	}
	sess, err := c.user.HandleAccessConfirm(confirm)
	if err != nil {
		return nil, err
	}
	c.stats.attachSuccesses.Add(1)
	c.stats.attachLatency.Observe(time.Since(attachStart))
	// beacon.BootEpoch is authenticated: HandleBeacon verified the router
	// signature over it before M.2 was sent.
	c.setSession(sess, beacon.BootEpoch)
	c.setLastRouterID(beacon.RouterID)
	// Keep the confirm's ticket (with the locally derived resumption
	// secret) for the next re-attach. The blob itself is opaque and
	// unauthenticated in transit, but useless to a forger: resuming
	// requires the secret, which only the two endpoints can derive.
	c.storeTicket(confirm.Ticket, sess)
	return sess, nil
}

// solicitBeacon runs phase 1: broadcast-solicit M.1 and return the first
// well-formed beacon. The beacon is NOT yet authenticated — the caller
// must pass it through core.User.HandleBeacon or ObserveBeacon before
// trusting any field.
func (c *Client) solicitBeacon(ctx context.Context) (*core.Beacon, error) {
	solicit, err := EncodeMessage(&BeaconRequest{})
	if err != nil {
		return nil, err
	}
	var beacon *core.Beacon
	err = c.exchange(ctx, solicit, func(kind Kind, payload []byte) (bool, error) {
		if kind != KindBeacon {
			c.stats.unhandled.Add(1)
			return false, nil
		}
		b, err := core.UnmarshalBeacon(payload)
		if err != nil {
			c.stats.decodeErrors.Add(1)
			return false, nil
		}
		beacon = b
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return beacon, nil
}

// syncRevocations closes every gap between the user's installed
// revocation state and the beacon's advertised refs. Each round fetches
// at most one payload per gapped list; a delta whose chain no longer
// reaches our state downgrades to a full-snapshot fetch. Bounded rounds
// keep an equivocating router from wedging the handshake.
func (c *Client) syncRevocations(ctx context.Context, beacon *core.Beacon) error {
	const maxRounds = 4
	for round := 0; round < maxRounds; round++ {
		gaps := c.user.RevocationGaps(beacon)
		if len(gaps) == 0 {
			return nil
		}
		for _, g := range gaps {
			if err := c.fetchRevocation(ctx, FetchFor(g)); err != nil {
				return err
			}
		}
	}
	if gaps := c.user.RevocationGaps(beacon); len(gaps) > 0 {
		return fmt.Errorf("transport: revocation state still behind after %d rounds", maxRounds)
	}
	return nil
}

// fetchRevocation performs one fetch round-trip and applies the answer.
func (c *Client) fetchRevocation(ctx context.Context, f *RevocationFetch) error {
	req, err := EncodeMessage(f)
	if err != nil {
		return err
	}
	var applyErr error
	err = c.exchange(ctx, req, func(kind Kind, payload []byte) (bool, error) {
		switch kind {
		case KindURLUpdate, KindCRLUpdate:
			msg, err := DecodeMessage(kind, payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			snap := msg.(*revocation.Snapshot)
			if snap.List != f.List {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			c.stats.revSnapshotFetches.Add(1)
			applyErr = c.user.InstallRevocationSnapshot(snap)
			return true, nil
		case KindURLDelta:
			d, err := revocation.UnmarshalDelta(payload)
			if err != nil {
				c.stats.decodeErrors.Add(1)
				return false, nil
			}
			if d.List != f.List {
				c.stats.unhandled.Add(1)
				return false, nil
			}
			c.stats.revDeltaFetches.Add(1)
			applyErr = c.user.ApplyRevocationDelta(d)
			return true, nil
		case KindBeacon:
			// Late beacons from phase 1 retransmissions.
			c.stats.duplicates.Add(1)
			return false, nil
		default:
			c.stats.unhandled.Add(1)
			return false, nil
		}
	})
	if err != nil {
		return err
	}
	switch {
	case applyErr == nil:
	case errors.Is(applyErr, revocation.ErrEpochGap),
		errors.Is(applyErr, revocation.ErrDigestMismatch),
		errors.Is(applyErr, revocation.ErrNoSnapshot):
		// The delta chain does not reach our state: fall back to the full
		// snapshot (unless this already was a full fetch).
		if f.Have {
			return c.fetchRevocation(ctx, &RevocationFetch{List: f.List})
		}
		return applyErr
	case errors.Is(applyErr, revocation.ErrRollback):
		// Stale duplicate answer (e.g. a retransmitted older frame); our
		// state is already at or past it. Not an error.
	default:
		return applyErr
	}
	c.stats.setEpochs(c.user.RevocationEpoch(revocation.ListURL), c.user.RevocationEpoch(revocation.ListCRL))
	return nil
}

// exchange sends frame and reads datagrams until handle reports
// completion, retransmitting with jittered exponential backoff. handle
// returns (done, err): done finishes the phase, err aborts the handshake,
// (false, nil) keeps listening within the current timeout, and
// (false, errTransientReject) marks the round as backpressured — when the
// retry budget runs out with backpressure seen, the budget is re-armed up
// to QueueFullResets times instead of failing the attach.
func (c *Client) exchange(ctx context.Context, frame []byte, handle func(Kind, []byte) (bool, error)) error {
	timeout := c.cfg.RetransmitTimeout
	resets := c.cfg.QueueFullResets
	sawTransient := false
	raddr := c.RouterAddr()
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.stats.retransmits.Add(1)
		}
		if err := c.send(frame); err != nil {
			return err
		}
		deadline := time.Now().Add(c.jittered(timeout))
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return err
			}
			n, from, err := c.conn.ReadFrom(c.buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					break // retransmit
				}
				return err
			}
			c.stats.bytesIn.Add(int64(n))
			if from.String() != raddr.String() {
				c.stats.unhandled.Add(1)
				continue
			}
			kind, payload, derr := DecodeFrame(c.buf[:n])
			if derr != nil {
				c.stats.decodeErrors.Add(1)
				continue
			}
			c.stats.framesIn.Add(1)
			done, herr := handle(kind, payload)
			if errors.Is(herr, errTransientReject) {
				sawTransient = true
				continue
			}
			if herr != nil {
				return herr
			}
			if done {
				return nil
			}
		}
		timeout = time.Duration(float64(timeout) * c.cfg.BackoffFactor)
		if timeout > c.cfg.MaxTimeout {
			timeout = c.cfg.MaxTimeout
		}
		if attempt == c.cfg.MaxRetries && sawTransient && resets > 0 {
			// The router is alive but shedding load; giving up now would
			// turn backpressure into failure. Re-arm the budget (bounded).
			resets--
			sawTransient = false
			attempt = -1
		}
	}
	c.stats.timeouts.Add(1)
	return ErrHandshakeTimeout
}

// jittered spreads d uniformly over [1-Jitter, 1+Jitter] of its value so
// synchronized clients de-correlate their retransmissions.
func (c *Client) jittered(d time.Duration) time.Duration {
	if c.cfg.Jitter <= 0 {
		return d
	}
	f := 1 - c.cfg.Jitter + 2*c.cfg.Jitter*c.rng.Float64()
	return time.Duration(float64(d) * f)
}

func (c *Client) send(frame []byte) error {
	n, err := c.conn.WriteTo(frame, c.RouterAddr())
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	c.stats.framesOut.Add(1)
	c.stats.bytesOut.Add(int64(n))
	return nil
}

// SendData seals payload under the established session and sends it to
// the current router as a fire-and-forget data frame.
func (c *Client) SendData(payload []byte) error {
	return c.SendDataVia(c.RouterAddr(), payload)
}

// SendDataVia seals payload under the established session and sends the
// frame to raddr — which need not be the current router. The metro
// harness uses this to model in-flight frames still arriving at the old
// AP right after a roaming handoff: the old router forwards them across
// the backbone during the grace window.
func (c *Client) SendDataVia(raddr net.Addr, payload []byte) error {
	sess := c.Session()
	if sess == nil {
		return core.ErrNoSession
	}
	// Seal in place behind the frame header: the sealed size is
	// deterministic, so the whole datagram is built in one reused buffer
	// (same wire format as EncodeMessage(&SessionData{...})).
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	buf, err := AppendFrameHeader(c.sendBuf[:0], KindSessionData, core.SealedDataLen(len(payload)))
	if err != nil {
		return err
	}
	if buf, err = sess.AppendSealedData(buf, payload); err != nil {
		return fmt.Errorf("transport: seal data: %w", err)
	}
	c.sendBuf = buf[:0]
	n, err := c.conn.WriteTo(buf, raddr)
	if err != nil {
		return fmt.Errorf("transport: send data: %w", err)
	}
	c.stats.framesOut.Add(1)
	c.stats.bytesOut.Add(int64(n))
	return nil
}
