package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// testDoSPolicy is a fast adaptive policy for wire tests: four failures
// within the window trip suspicion at a trivially solvable difficulty.
func testDoSPolicy() core.DoSPolicy {
	return core.DoSPolicy{
		Enabled:            true,
		Window:             5 * time.Second,
		SuspicionThreshold: 4,
		QuietPeriod:        time.Second,
		BaseDifficulty:     2,
		StepInterval:       50 * time.Millisecond,
		DecayInterval:      50 * time.Millisecond,
	}
}

// floodGarbageAccess sends n undecodable access-request datagrams — the
// cheap forgery flood the adaptive monitor counts as failure evidence.
func floodGarbageAccess(t *testing.T, conn net.PacketConn, dst net.Addr, n int) {
	t.Helper()
	frame, err := EncodeFrame(KindAccessRequest, []byte("not an access request at all"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := conn.WriteTo(frame, dst); err != nil {
			t.Fatal(err)
		}
	}
}

// awaitDifficulty polls until the router demands a nonzero puzzle
// difficulty (suspicion tripped) or the deadline passes.
func awaitDifficulty(t *testing.T, r *core.MeshRouter) uint8 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d := r.RequiredDifficulty(); d > 0 {
			return d
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("suspicion never tripped")
	return 0
}

// readMessage reads frames from conn until one of the wanted kind
// arrives, decoding it; unrelated frames (stray beacons) are skipped.
func readMessage(t *testing.T, conn net.PacketConn, want Kind) any {
	t.Helper()
	buf := make([]byte, 65536)
	deadline := time.Now().Add(5 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	for time.Now().Before(deadline) {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			t.Fatalf("waiting for %v: %v", want, err)
		}
		kind, payload, err := DecodeFrame(buf[:n])
		if err != nil {
			t.Fatalf("undecodable frame: %v", err)
		}
		if kind != want {
			continue
		}
		msg, err := DecodeMessage(kind, payload)
		if err != nil {
			t.Fatalf("decode %v: %v", kind, err)
		}
		return msg
	}
	t.Fatalf("no %v frame arrived", want)
	return nil
}

// TestPuzzleGateLiveWire drives the suspicion → puzzle loop end-to-end
// on raw sockets: a garbage flood trips the adaptive monitor, after
// which a pre-storm M.2 (signed before any puzzle was demanded) is
// refused with RejectPuzzle carrying a challenge; attaching the solution
// to the very same signed M.2 — the solution rides outside the signed
// transcript — gets the session established.
func TestPuzzleGateLiveWire(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-DOS", "grp-dos", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.SeedUserRevocations(); err != nil {
		t.Fatal(err)
	}
	ln.Router.SetDoSPolicy(testDoSPolicy())
	srv := NewServer(mustListen(t), ln.Router, ServerConfig{
		BootEpoch:         1,
		DoSSampleInterval: 10 * time.Millisecond,
	})
	defer srv.Close()

	raw := mustListen(t)
	defer raw.Close()

	// Calm network: the beacon carries no puzzle, and the M.2 built from
	// it carries no solution.
	breq, err := EncodeMessage(&BeaconRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteTo(breq, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	b := readMessage(t, raw, KindBeacon).(*core.Beacon)
	if b.Puzzle != nil {
		t.Fatal("calm-network beacon carries a puzzle")
	}
	m2, err := ln.Users[0].HandleBeacon(b, core.GroupID("grp-dos"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.HasSolution {
		t.Fatal("calm-network M.2 carries a solution")
	}

	floodGarbageAccess(t, raw, srv.Addr(), 6)
	need := awaitDifficulty(t, ln.Router)
	if want := testDoSPolicy().BaseDifficulty; need != want {
		t.Fatalf("demanded difficulty %d, want base %d", need, want)
	}

	// The pre-storm M.2 is now refused before any decode work, and the
	// reject carries the current challenge.
	frame, err := EncodeMessage(m2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteTo(frame, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	rej := readMessage(t, raw, KindReject).(*Reject)
	if rej.Code != RejectPuzzle {
		t.Fatalf("reject code %v, want RejectPuzzle", rej.Code)
	}
	if rej.Puzzle == nil {
		t.Fatal("RejectPuzzle carries no challenge")
	}
	if want := core.NewSessionID(m2.GR, m2.GJ); rej.Session != want {
		t.Fatalf("reject addressed to %s, want %s (pre-decode session id)", rej.Session, want)
	}

	// Solve and retry the *same* signed M.2: the solution fields live
	// outside the group-signed transcript, so no re-sign is needed.
	m2.HasSolution = true
	m2.Solution = rej.Puzzle.Solve()
	m2.PuzzleIssuedAt = rej.Puzzle.IssuedAt
	m2.PuzzleDifficulty = rej.Puzzle.Difficulty
	frame, err = EncodeMessage(m2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteTo(frame, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	confirm := readMessage(t, raw, KindAccessConfirm).(*core.AccessConfirm)
	if core.NewSessionID(confirm.GR, confirm.GJ) != core.NewSessionID(m2.GR, m2.GJ) {
		t.Fatal("confirm for the wrong session")
	}

	// A fresh beacon now advertises the challenge to everyone.
	if _, err := raw.WriteTo(breq, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	b2 := readMessage(t, raw, KindBeacon).(*core.Beacon)
	if b2.Puzzle == nil || b2.Puzzle.Difficulty != need {
		t.Fatalf("storm beacon puzzle %+v, want difficulty %d", b2.Puzzle, need)
	}

	st := srv.Stats()
	if st.DoSPuzzlesRejected() == 0 {
		t.Fatal("dos_puzzles_rejected not bumped")
	}
	if st.DoSPuzzlesIssued() == 0 {
		t.Fatal("dos_puzzles_issued not bumped")
	}
	if st.DoSPuzzlesVerified() == 0 {
		t.Fatal("dos_puzzles_verified not bumped")
	}
	// The sampler mirrors controller state into the gauges.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !srv.Stats().DoSSuspicion() {
		time.Sleep(5 * time.Millisecond)
	}
	if !srv.Stats().DoSSuspicion() {
		t.Fatal("dos_suspicion gauge never set")
	}
	if got := srv.Stats().DoSDifficulty(); got != int64(need) {
		t.Fatalf("dos_difficulty gauge %d, want %d", got, need)
	}
}

// TestClientAttachUnderActiveDefense attaches a stock client while the
// router is already demanding puzzles: the beacon carries the challenge,
// the client's budgeted solver answers it off the hot path, and the
// handshake completes without RejectPuzzle round trips.
func TestClientAttachUnderActiveDefense(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-DOS", "grp-dos", 1)
	if err != nil {
		t.Fatal(err)
	}
	ln.Router.SetDoSPolicy(testDoSPolicy())
	srv := NewServer(mustListen(t), ln.Router, ServerConfig{
		BootEpoch:         1,
		DoSSampleInterval: 10 * time.Millisecond,
	})
	defer srv.Close()

	attacker := mustListen(t)
	defer attacker.Close()
	floodGarbageAccess(t, attacker, srv.Addr(), 6)
	awaitDifficulty(t, ln.Router)
	// Wait for the sampler to invalidate the cached beacon so the client
	// solicits one that already carries the challenge.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Stats().DoSDifficulty() == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	conn := mustListen(t)
	defer conn.Close()
	cl := NewClient(conn, srv.Addr(), ln.Users[0], testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatalf("attach under active defense: %v", err)
	}
	if srv.Stats().DoSPuzzlesVerified() == 0 {
		t.Fatal("attach succeeded without a verified solution")
	}
}

// TestClientResumeUnderActiveDefense resumes a ticket while puzzles are
// demanded: the first resume attempt carries no solution and is refused
// with RejectPuzzle, and the client's retry — fresh nonce, solved
// challenge under the request MAC — completes the cheap path.
func TestClientResumeUnderActiveDefense(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-DOS", "grp-dos", 1)
	if err != nil {
		t.Fatal(err)
	}
	ln.Router.SetDoSPolicy(testDoSPolicy())
	srv := NewServer(mustListen(t), ln.Router, ServerConfig{
		BootEpoch:         1,
		DoSSampleInterval: 10 * time.Millisecond,
	})
	defer srv.Close()

	conn := mustListen(t)
	defer conn.Close()
	cl := NewClient(conn, srv.Addr(), ln.Users[0], testClientConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl.Attach(ctx); err != nil {
		t.Fatal(err)
	}
	if !cl.HasTicket() {
		t.Fatal("attach issued no ticket")
	}

	attacker := mustListen(t)
	defer attacker.Close()
	floodGarbageAccess(t, attacker, srv.Addr(), 6)
	awaitDifficulty(t, ln.Router)

	rejected := srv.Stats().DoSPuzzlesRejected()
	if _, err := cl.Resume(ctx); err != nil {
		t.Fatalf("resume under active defense: %v", err)
	}
	if srv.Stats().DoSPuzzlesRejected() == rejected {
		t.Fatal("first resume attempt was not puzzle-gated")
	}
	if srv.Stats().DoSPuzzlesVerified() == 0 {
		t.Fatal("resume solution never verified")
	}
	if srv.Stats().ResumesServed() == 0 {
		t.Fatal("resume did not take the cheap path")
	}
}

// TestSolutionReplayTable covers the cross-source replay suppression: the
// first source to present a solution owns it, retransmits from the same
// source pass, any other source is refused, and the two-generation
// rotation keeps the table bounded without forgetting fresh entries.
func TestSolutionReplayTable(t *testing.T) {
	tab := newSolutionReplayTable(4)
	at := time.Unix(1700000000, 0)

	if !tab.admit(at, 8, 42, "src-a") {
		t.Fatal("first presentation refused")
	}
	if !tab.admit(at, 8, 42, "src-a") {
		t.Fatal("same-source retransmit refused")
	}
	if tab.admit(at, 8, 42, "src-b") {
		t.Fatal("cross-source replay admitted")
	}
	// A different triple (same solution, different issue time) is a
	// different puzzle and admits freely.
	if !tab.admit(at.Add(time.Second), 8, 42, "src-b") {
		t.Fatal("distinct puzzle refused")
	}

	// Rotation: overflow the current generation and check that a recent
	// entry still blocks replays (it lives in the previous generation).
	for i := uint64(0); i < 8; i++ {
		tab.admit(at, 8, 1000+i, "src-c")
	}
	if len(tab.cur) > 4 || len(tab.prev) > 4 {
		t.Fatalf("generations grew past the bound: cur=%d prev=%d", len(tab.cur), len(tab.prev))
	}
	if tab.admit(at, 8, 1007, "src-d") {
		t.Fatal("fresh entry forgotten by rotation")
	}
}
