package transport

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// This file defines the wire formats of the metro backbone plane (see
// internal/backbone for the subsystem that speaks them):
//
//   - SessionData wraps one sealed core.DataFrame of user traffic toward
//     the attached router (KindSessionData).
//   - RouterHello / RouterWelcome run the certificate-authenticated link
//     handshake between two routers of one NO.
//   - LinkEnvelope is the AEAD-sealed carrier of everything the two
//     routers exchange after the handshake; its plaintext is a
//     GossipBody, a RelayBody or an OwnerAd depending on the frame kind.

// SessionData is established-session user traffic: the payload is a
// core.DataFrame sealed under the session key, exactly like a keepalive
// ping, but carrying application bytes.
type SessionData struct {
	Frame *core.DataFrame
}

// BackboneNonceSize is the length of the handshake nonces mixed into a
// backbone link's keys.
const BackboneNonceSize = 16

// routerHelloTag / routerWelcomeTag version the signed handshake bodies.
const (
	routerHelloTag   = "peace/backbone-hello:v1"
	routerWelcomeTag = "peace/backbone-welcome:v1"
)

// RouterHello opens a backbone link: the initiator's NO-issued
// certificate, a fresh DH share (bn256 G1), a nonce, a timestamp, and an
// ECDSA signature under the certificate's key over all of it. Either
// router of a configured link may initiate; a fresh nonce after a crash
// simply re-runs the handshake and replaces the link keys.
type RouterHello struct {
	Cert      *cert.Certificate
	Share     []byte // marshaled bn256.G1
	Nonce     [BackboneNonceSize]byte
	Timestamp time.Time
	Sig       []byte
}

// SignedBody returns the byte string the hello signature covers. The
// subject identity is bound through the certificate, which is part of
// the body.
func (m *RouterHello) SignedBody() []byte {
	w := wire.NewWriter(256 + len(m.Share))
	w.StringField(routerHelloTag)
	w.BytesField(m.Cert.Marshal())
	w.BytesField(m.Share)
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	return w.Bytes()
}

// Marshal encodes the hello.
func (m *RouterHello) Marshal() []byte {
	w := wire.NewWriter(320 + len(m.Share))
	w.BytesField(m.Cert.Marshal())
	w.BytesField(m.Share)
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	w.BytesField(m.Sig)
	return w.Bytes()
}

// UnmarshalRouterHello decodes a hello. All fields are copied.
func UnmarshalRouterHello(data []byte) (*RouterHello, error) {
	r := wire.NewReader(data)
	m := &RouterHello{}
	cb, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if m.Cert, err = cert.UnmarshalCertificate(cb); err != nil {
		return nil, err
	}
	share, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Share = append([]byte(nil), share...)
	nonce, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(nonce) != BackboneNonceSize {
		return nil, fmt.Errorf("transport: hello nonce size %d", len(nonce))
	}
	copy(m.Nonce[:], nonce)
	if m.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Sig = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// RouterWelcome answers a RouterHello: the responder's certificate and DH
// share, the initiator's nonce echoed (binding the answer to that exact
// hello), the responder's own nonce, a timestamp, and a signature over
// all of it.
type RouterWelcome struct {
	Cert      *cert.Certificate
	Share     []byte                  // marshaled bn256.G1
	Echo      [BackboneNonceSize]byte // initiator nonce echoed
	Nonce     [BackboneNonceSize]byte
	Timestamp time.Time
	Sig       []byte
}

// SignedBody returns the byte string the welcome signature covers.
func (m *RouterWelcome) SignedBody() []byte {
	w := wire.NewWriter(256 + len(m.Share))
	w.StringField(routerWelcomeTag)
	w.BytesField(m.Cert.Marshal())
	w.BytesField(m.Share)
	w.BytesField(m.Echo[:])
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	return w.Bytes()
}

// Marshal encodes the welcome.
func (m *RouterWelcome) Marshal() []byte {
	w := wire.NewWriter(320 + len(m.Share))
	w.BytesField(m.Cert.Marshal())
	w.BytesField(m.Share)
	w.BytesField(m.Echo[:])
	w.BytesField(m.Nonce[:])
	w.Time(m.Timestamp)
	w.BytesField(m.Sig)
	return w.Bytes()
}

// UnmarshalRouterWelcome decodes a welcome. All fields are copied.
func UnmarshalRouterWelcome(data []byte) (*RouterWelcome, error) {
	r := wire.NewReader(data)
	m := &RouterWelcome{}
	cb, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if m.Cert, err = cert.UnmarshalCertificate(cb); err != nil {
		return nil, err
	}
	share, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Share = append([]byte(nil), share...)
	echo, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(echo) != BackboneNonceSize {
		return nil, fmt.Errorf("transport: welcome echo size %d", len(echo))
	}
	copy(m.Echo[:], echo)
	nonce, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(nonce) != BackboneNonceSize {
		return nil, fmt.Errorf("transport: welcome nonce size %d", len(nonce))
	}
	copy(m.Nonce[:], nonce)
	if m.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Sig = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// LinkEnvelope carries one backbone message on an established link: the
// sender's router ID (selecting which link's keys open it), a strictly
// increasing per-sender sequence number (replay window on the receiver),
// and the AEAD ciphertext. The AAD binds kind, sender and sequence, so
// an envelope cannot be replayed as a different kind or from a different
// peer.
type LinkEnvelope struct {
	From       string
	Seq        uint64
	Ciphertext []byte
}

// linkAADTag versions the envelope AAD.
const linkAADTag = "peace/backbone-aad:v1"

// LinkEnvelopeAAD returns the additional authenticated data sealing one
// envelope of the given kind.
func LinkEnvelopeAAD(kind Kind, from string, seq uint64) []byte {
	w := wire.NewWriter(48 + len(from))
	w.StringField(linkAADTag)
	w.Byte(byte(kind))
	w.StringField(from)
	w.Uint64(seq)
	return w.Bytes()
}

// AppendLinkEnvelopeAAD is LinkEnvelopeAAD without the Writer
// allocation; the layouts are byte-identical (pinned by a test), so
// envelopes sealed by either path open under the other.
func AppendLinkEnvelopeAAD(dst []byte, kind Kind, from string, seq uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(linkAADTag)))
	dst = append(dst, linkAADTag...)
	dst = append(dst, byte(kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(from)))
	dst = append(dst, from...)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// LinkEnvelopeLen returns the marshaled size of a LinkEnvelope from
// `from` whose ciphertext is an AES-GCM sealing (nonce ‖ ct ‖ tag) of a
// ptLen-byte plaintext. The size is deterministic, so backbone egress
// paths can emit the frame header first and seal the envelope in place
// right after it.
func LinkEnvelopeLen(from string, ptLen int) int {
	return 4 + len(from) + 8 + // sender field + sequence
		4 + symcrypto.GCMNonceSize + ptLen + symcrypto.GCMOverhead // ciphertext field
}

// AppendLinkEnvelopeHeader appends the envelope fields that precede the
// sealed bytes — sender, sequence, and the ciphertext length prefix for
// a ptLen-byte plaintext. The caller appends nonce ‖ ct ‖ tag (exactly
// GCMNonceSize+ptLen+GCMOverhead bytes) right after to complete the
// LinkEnvelope wire format.
func AppendLinkEnvelopeHeader(dst []byte, from string, seq uint64, ptLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(from)))
	dst = append(dst, from...)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return binary.BigEndian.AppendUint32(dst, uint32(symcrypto.GCMNonceSize+ptLen+symcrypto.GCMOverhead))
}

// Marshal encodes the envelope.
func (m *LinkEnvelope) Marshal() []byte {
	w := wire.NewWriter(48 + len(m.From) + len(m.Ciphertext))
	w.StringField(m.From)
	w.Uint64(m.Seq)
	w.BytesField(m.Ciphertext)
	return w.Bytes()
}

// UnmarshalLinkEnvelope decodes an envelope. The ciphertext is copied.
func UnmarshalLinkEnvelope(data []byte) (*LinkEnvelope, error) {
	r := wire.NewReader(data)
	m := &LinkEnvelope{}
	var err error
	if m.From, err = r.StringField(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Uint64(); err != nil {
		return nil, err
	}
	ct, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Ciphertext = append([]byte(nil), ct...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// RouteAd advertises reachability of one router in a gossip round.
type RouteAd struct {
	Router string
	Hops   uint32
}

// OwnerAd advertises that Owner adopted the session Next (resumed from
// Prev, previously attached at PrevRouter) and owns it until Expires —
// the grace window during which the previous router forwards in-flight
// frames instead of rejecting them. OwnerAd is both the plaintext of a
// KindHandoffAnnounce envelope (immediate flood) and an element of the
// periodic GossipBody (the eventual path that heals partitions).
type OwnerAd struct {
	Next       core.SessionID
	Prev       core.SessionID
	Owner      string
	PrevRouter string
	Expires    time.Time
}

func (a *OwnerAd) append(w *wire.Writer) {
	w.BytesField(a.Next[:])
	w.BytesField(a.Prev[:])
	w.StringField(a.Owner)
	w.StringField(a.PrevRouter)
	w.Time(a.Expires)
}

func readOwnerAd(r *wire.Reader, a *OwnerAd) error {
	next, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(next) != len(a.Next) {
		return fmt.Errorf("transport: owner ad session id size %d", len(next))
	}
	copy(a.Next[:], next)
	prev, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(prev) != len(a.Prev) {
		return fmt.Errorf("transport: owner ad session id size %d", len(prev))
	}
	copy(a.Prev[:], prev)
	if a.Owner, err = r.StringField(); err != nil {
		return err
	}
	if a.PrevRouter, err = r.StringField(); err != nil {
		return err
	}
	if a.Expires, err = r.Time(); err != nil {
		return err
	}
	return nil
}

// Marshal encodes one owner ad (the handoff-announce plaintext).
func (a *OwnerAd) Marshal() []byte {
	w := wire.NewWriter(128 + len(a.Owner) + len(a.PrevRouter))
	a.append(w)
	return w.Bytes()
}

// UnmarshalOwnerAd decodes one owner ad.
func UnmarshalOwnerAd(data []byte) (*OwnerAd, error) {
	r := wire.NewReader(data)
	a := &OwnerAd{}
	if err := readOwnerAd(r, a); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return a, nil
}

// GossipBody is one periodic gossip round on a link: the sender's boot
// epoch, its distance-vector view of router reachability, and the owner
// ads it still holds (so a router that missed the immediate announce —
// e.g. across a partition — converges on the next round).
type GossipBody struct {
	BootEpoch uint64
	Routes    []RouteAd
	Owners    []OwnerAd
}

// Marshal encodes the gossip body.
func (m *GossipBody) Marshal() []byte {
	w := wire.NewWriter(64 + 32*len(m.Routes) + 160*len(m.Owners))
	w.Uint64(m.BootEpoch)
	w.Uint32(uint32(len(m.Routes)))
	for i := range m.Routes {
		w.StringField(m.Routes[i].Router)
		w.Uint32(m.Routes[i].Hops)
	}
	w.Uint32(uint32(len(m.Owners)))
	for i := range m.Owners {
		m.Owners[i].append(w)
	}
	return w.Bytes()
}

// UnmarshalGossipBody decodes a gossip body.
func UnmarshalGossipBody(data []byte) (*GossipBody, error) {
	r := wire.NewReader(data)
	m := &GossipBody{}
	var err error
	if m.BootEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	nr, err := r.Count(8) // ≥ 4-byte string header + 4-byte hops each
	if err != nil {
		return nil, err
	}
	m.Routes = make([]RouteAd, nr)
	for i := range m.Routes {
		if m.Routes[i].Router, err = r.StringField(); err != nil {
			return nil, err
		}
		if m.Routes[i].Hops, err = r.Uint32(); err != nil {
			return nil, err
		}
	}
	no, err := r.Count(96) // two 32-byte ids + headers + time, at least
	if err != nil {
		return nil, err
	}
	m.Owners = make([]OwnerAd, no)
	for i := range m.Owners {
		if err := readOwnerAd(r, &m.Owners[i]); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// RelayBody is one multi-hop forwarded data frame: the router that owns
// the session (Target), the router that first accepted the frame from
// the user (Origin), a hop budget, and the marshaled core.DataFrame —
// still sealed under the user's session key; intermediate routers relay
// ciphertext they cannot open.
type RelayBody struct {
	Target  string
	Origin  string
	TTL     uint8
	Payload []byte // marshaled core.DataFrame
}

// Marshal encodes the relay body.
func (m *RelayBody) Marshal() []byte {
	w := wire.NewWriter(32 + len(m.Target) + len(m.Origin) + len(m.Payload))
	w.StringField(m.Target)
	w.StringField(m.Origin)
	w.Byte(m.TTL)
	w.BytesField(m.Payload)
	return w.Bytes()
}

// UnmarshalRelayBody decodes a relay body. The payload is copied.
func UnmarshalRelayBody(data []byte) (*RelayBody, error) {
	r := wire.NewReader(data)
	m := &RelayBody{}
	var err error
	if m.Target, err = r.StringField(); err != nil {
		return nil, err
	}
	if m.Origin, err = r.StringField(); err != nil {
		return nil, err
	}
	if m.TTL, err = r.Byte(); err != nil {
		return nil, err
	}
	p, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Payload = append([]byte(nil), p...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeLinkEnvelope frames a sealed envelope under one of the three
// link-encrypted kinds (gossip, relay, handoff announce).
func EncodeLinkEnvelope(kind Kind, env *LinkEnvelope) ([]byte, error) {
	switch kind {
	case KindGossip, KindRelay, KindHandoffAnnounce:
		return EncodeFrame(kind, env.Marshal())
	default:
		return nil, fmt.Errorf("transport: kind %v does not carry a link envelope", kind)
	}
}
