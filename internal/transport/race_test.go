//go:build race

package transport

// raceEnabled skips the heaviest sweeps under the race detector, where
// pairing operations run an order of magnitude slower. The plain test run
// still executes them at full scale.
const raceEnabled = true
