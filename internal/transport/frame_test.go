package transport

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("three-message AKA")
	for k := KindBeaconRequest; k < kindEnd; k++ {
		p := payload
		if k == KindBeaconRequest {
			p = nil
		}
		frame, err := EncodeFrame(k, p)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		gk, gp, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", k, err)
		}
		if gk != k || !bytes.Equal(gp, p) {
			t.Fatalf("%v: round trip got %v %q", k, gk, gp)
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good, err := EncodeFrame(KindBeacon, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrameShort},
		{"short", good[:HeaderSize-1], ErrFrameShort},
		{"bad magic", append([]byte("NOPE"), good[4:]...), ErrBadMagic},
		{"bad version", func() []byte {
			d := append([]byte(nil), good...)
			d[4] = 99
			return d
		}(), ErrBadVersion},
		{"invalid kind zero", func() []byte {
			d := append([]byte(nil), good...)
			d[5] = 0
			return d
		}(), ErrBadKind},
		{"unknown kind", func() []byte {
			d := append([]byte(nil), good...)
			d[5] = byte(kindEnd)
			return d
		}(), ErrBadKind},
		{"trailing byte", append(append([]byte(nil), good...), 0xAA), ErrFrameLength},
		{"length overclaim", func() []byte {
			d := append([]byte(nil), good...)
			binary.BigEndian.PutUint32(d[6:10], 1000)
			return d
		}(), ErrFrameLength},
		{"length oversize", func() []byte {
			d := append([]byte(nil), good...)
			binary.BigEndian.PutUint32(d[6:10], 1<<31)
			return d
		}(), ErrOversize},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeFrameBounds(t *testing.T) {
	if _, err := EncodeFrame(KindInvalid, nil); !errors.Is(err, ErrBadKind) {
		t.Fatalf("invalid kind: %v", err)
	}
	if _, err := EncodeFrame(KindBeacon, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize payload: %v", err)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	var sid core.SessionID
	for i := range sid {
		sid[i] = byte(i)
	}
	rej := &Reject{Session: sid, Code: RejectRevoked, Reason: "token on URL"}
	frame, err := EncodeMessage(rej)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload, err := DecodeFrame(frame)
	if err != nil || kind != KindReject {
		t.Fatalf("decode: %v %v", kind, err)
	}
	got, err := UnmarshalReject(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != sid || got.Code != RejectRevoked || got.Reason != "token on URL" {
		t.Fatalf("round trip: %+v", got)
	}
	if !errors.Is(got.Code.Err(), core.ErrRevokedUser) {
		t.Fatalf("code err: %v", got.Code.Err())
	}
}

// TestMessageCodecRoundTrip frames and decodes every protocol message a
// provisioned network can produce.
func TestMessageCodecRoundTrip(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-T", "grp-t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.SeedUserRevocations(); err != nil {
		t.Fatal(err)
	}
	u, peer := ln.Users[0], ln.Users[1]

	beacon, err := ln.Router.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "")
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := ln.Router.HandleAccessRequest(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.ObserveBeacon(beacon); err != nil {
		t.Fatal(err)
	}
	hello, err := u.StartPeerAuth("")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := peer.HandlePeerHello(hello, "")
	if err != nil {
		t.Fatal(err)
	}
	confirm, _, err := u.HandlePeerResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	url, ok := ln.Router.RevocationSnapshot(revocation.ListURL)
	if !ok {
		t.Fatal("router has no URL snapshot")
	}
	crl, ok := ln.Router.RevocationSnapshot(revocation.ListCRL)
	if !ok {
		t.Fatal("router has no CRL snapshot")
	}
	fetch := &RevocationFetch{List: revocation.ListURL, Have: true, HaveEpoch: url.Epoch, HaveDigest: url.Digest()}
	delta := &revocation.Delta{
		List:       revocation.ListURL,
		FromEpoch:  url.Epoch,
		ToEpoch:    url.Epoch + 1,
		IssuedAt:   url.IssuedAt,
		NextUpdate: url.NextUpdate,
		FromDigest: url.Digest(),
		ToDigest:   url.Digest(),
		Added:      [][]byte{[]byte("tok")},
		Signature:  []byte{1, 2, 3},
	}
	pz, err := puzzle.New(rand.Reader, 4, "MR-T", time.Now())
	if err != nil {
		t.Fatal(err)
	}

	msgs := []any{&BeaconRequest{}, beacon, m2, m3, hello, resp, confirm, url, crl, fetch, delta, pz}
	for _, msg := range msgs {
		frame, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		kind, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%T: decode frame: %v", msg, err)
		}
		back, err := DecodeMessage(kind, payload)
		if err != nil {
			t.Fatalf("%T: decode message: %v", msg, err)
		}
		reframe, err := EncodeMessage(back)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", msg, err)
		}
		if !bytes.Equal(frame, reframe) {
			t.Fatalf("%T: encode/decode/encode not stable", msg)
		}
	}
}

func TestExportImportCredentials(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-P", "grp-p", 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ln.ExportCredentials()
	if err != nil {
		t.Fatal(err)
	}
	users, err := ImportUsers(core.Config{}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 3 {
		t.Fatalf("imported %d users", len(users))
	}
	// An imported user must be able to complete the AKA (after the
	// bootstrap snapshot install a provisioning service performs).
	beacon, err := ln.Router.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []revocation.List{revocation.ListURL, revocation.ListCRL} {
		snap, ok := ln.Router.RevocationSnapshot(l)
		if !ok {
			t.Fatalf("router has no %v snapshot", l)
		}
		if err := users[1].InstallRevocationSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := users[1].HandleBeacon(beacon, "grp-p")
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := ln.Router.HandleAccessRequest(m2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := users[1].HandleAccessConfirm(m3); err != nil {
		t.Fatal(err)
	}
	// Corrupt blobs must fail cleanly.
	if _, err := ImportUsers(core.Config{}, blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated provision blob accepted")
	}
}
