package transport

import (
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// fakeClock is a manually advanced clock for deterministic limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func udpAddr(ip string, port int) *net.UDPAddr { return &net.UDPAddr{IP: net.ParseIP(ip), Port: port} }

// TestRateLimiterBucket drives one limiter with a fake clock through
// burst exhaustion, continuous refill, the burst cap, and per-source
// isolation keyed by IP rather than by socket.
func TestRateLimiterBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	rl := newRateLimiter(1, 3, clk.now)
	a := udpAddr("203.0.113.7", 1000)

	for i := 0; i < 3; i++ {
		if !rl.allow(a) {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.allow(a) {
		t.Fatal("request beyond burst allowed")
	}

	// Ports do not open fresh budgets: the bucket key is the IP.
	if rl.allow(udpAddr("203.0.113.7", 2000)) {
		t.Fatal("same IP on a new port got a fresh bucket")
	}
	// A different source is unaffected by the exhausted one.
	if !rl.allow(udpAddr("203.0.113.8", 1000)) {
		t.Fatal("independent source denied")
	}

	// 1 token/sec: after 2s exactly two more requests fit.
	clk.advance(2 * time.Second)
	if !rl.allow(a) || !rl.allow(a) {
		t.Fatal("refilled tokens denied")
	}
	if rl.allow(a) {
		t.Fatal("request beyond refill allowed")
	}

	// Idle time accrues at most burst tokens.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !rl.allow(a) {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if rl.allow(a) {
		t.Fatal("idle accrual exceeded burst")
	}
}

// TestRateLimiterEvictsOldestAtCapacity checks the capacity policy: a new
// source arriving at a full table evicts the least-recently-active bucket,
// not the whole table, so sources with recent activity keep their debt.
func TestRateLimiterEvictsOldestAtCapacity(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	rl := newRateLimiter(0.001, 1, clk.now)
	rl.maxSources = 8

	// Fill the table with sources at strictly increasing activity times so
	// the LRU order is unambiguous. Source 1 burns its whole budget.
	addrs := make([]*net.UDPAddr, 8)
	for i := range addrs {
		addrs[i] = &net.UDPAddr{IP: net.IPv4(10, 0, byte(i), 1), Port: 9}
		rl.allow(addrs[i])
		if i == 1 {
			if rl.allow(addrs[i]) {
				t.Fatal("source 1 not exhausted as expected")
			}
		}
		clk.advance(time.Second)
	}

	// A ninth source overflows the table: the oldest bucket (source 0) is
	// evicted, everything else survives.
	fresh := udpAddr("198.51.100.50", 9)
	if !rl.allow(fresh) {
		t.Fatal("new source denied at capacity (must fail open)")
	}
	if len(rl.buckets) > 8 {
		t.Fatalf("bucket table grew to %d entries past the bound", len(rl.buckets))
	}
	if _, ok := rl.buckets[sourceKey(addrs[0])]; ok {
		t.Fatal("oldest bucket survived eviction")
	}
	if _, ok := rl.buckets[sourceKey(addrs[7])]; !ok {
		t.Fatal("recently active bucket was evicted")
	}
	// The exhausted source kept its bucket and its debt: eviction must not
	// hand every active flooder a fresh budget the way a table reset did.
	if rl.allow(addrs[1]) {
		t.Fatal("eviction zeroed an active source's debt")
	}
}

// TestRateLimiterChurnBoundedGrowth cycles far more distinct spoofed
// source IPs through the limiter than the table can hold: the table must
// stay within its bound throughout while new sources keep being admitted
// at burst (the fail-open regression — the limiter sheds load, it must
// never turn into a denial gate for never-seen sources).
func TestRateLimiterChurnBoundedGrowth(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	rl := newRateLimiter(0.001, 2, clk.now)
	rl.maxSources = 64

	for i := 0; i < 1000; i++ {
		addr := &net.UDPAddr{IP: net.IPv4(10, byte(i>>8), byte(i), 1), Port: 9}
		if !rl.allow(addr) {
			t.Fatalf("never-seen source %d denied at capacity", i)
		}
		if len(rl.buckets) > 64 {
			t.Fatalf("bucket table grew to %d entries past the bound after %d sources", len(rl.buckets), i+1)
		}
		clk.advance(time.Millisecond)
	}
	// Churn must actually have cycled the table, not just stopped filling.
	if len(rl.buckets) == 0 || len(rl.buckets) > 64 {
		t.Fatalf("unexpected final table size %d", len(rl.buckets))
	}
}

// TestServerRateLimitBurst is the deterministic ingress test: a server
// configured with burst 1 and a negligible refill rate receives ten
// resume datagrams from one socket. Exactly one reaches the decoder; the
// other nine die at the limiter and land in ratelimit_dropped.
func TestServerRateLimitBurst(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-RL", "grp-rl", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mustListen(t), ln.Router, ServerConfig{
		BootEpoch:       1,
		RateLimitPerSec: 0.0001,
		RateLimitBurst:  1,
	})
	defer srv.Close()

	conn := mustListen(t)
	defer conn.Close()
	frame, err := EncodeFrame(KindResumeRequest, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := conn.WriteTo(frame, srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Stats().RatelimitDropped() < 9 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().RatelimitDropped(); got != 9 {
		t.Fatalf("ratelimit_dropped = %d, want 9", got)
	}
	// The one admitted datagram was garbage and must have hit the decoder.
	if got := srv.Stats().DecodeErrors(); got != 1 {
		t.Fatalf("decode errors = %d, want 1 (exactly one datagram admitted)", got)
	}
}
