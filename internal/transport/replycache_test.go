package transport

import (
	"bytes"
	mrand "math/rand"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
)

// TestReplyCacheIdempotence is the reply-cache property test: k distinct
// access requests, each duplicated several times and delivered in a
// shuffled order — and again after the replies settled — must yield
// exactly k sessions, exactly k expensive verifications, and byte-for-byte
// identical replies per session. Duplicates never trigger a second
// verification; late retransmissions are answered by replay.
func TestReplyCacheIdempotence(t *testing.T) {
	const users = 6
	const dups = 4
	ln, err := NewLocalNetwork(core.Config{}, "MR-RC", "grp-0", users)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 61})
	defer srv.Close()

	b, err := ln.Router.Beacon()
	if err != nil {
		t.Fatal(err)
	}

	type request struct {
		sid   core.SessionID
		frame []byte
	}
	requests := make([]request, 0, users)
	var sends []request
	for i := 0; i < users; i++ {
		// This test bypasses Client.Attach (it hand-delivers raw frames), so
		// converge revocation state the way phase 1.5 would have.
		for _, l := range []revocation.List{revocation.ListURL, revocation.ListCRL} {
			if snap, ok := ln.Router.RevocationSnapshot(l); ok {
				if err := ln.Users[i].InstallRevocationSnapshot(snap); err != nil {
					t.Fatal(err)
				}
			}
		}
		m2, err := ln.Users[i].HandleBeacon(b, "")
		if err != nil {
			t.Fatal(err)
		}
		frame, err := EncodeMessage(m2)
		if err != nil {
			t.Fatal(err)
		}
		r := request{sid: core.NewSessionID(m2.GR, m2.GJ), frame: frame}
		requests = append(requests, r)
		for d := 0; d < dups; d++ {
			sends = append(sends, r)
		}
	}
	rng := mrand.New(mrand.NewSource(97))
	rng.Shuffle(len(sends), func(i, j int) { sends[i], sends[j] = sends[j], sends[i] })

	conn := mustListen(t)
	defer conn.Close()

	replies := make(map[core.SessionID][][]byte)
	collect := func(quiet time.Duration) {
		buf := make([]byte, 65536)
		for {
			_ = conn.SetReadDeadline(time.Now().Add(quiet))
			n, _, err := conn.ReadFrom(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					return
				}
				t.Fatal(err)
			}
			kind, payload, derr := DecodeFrame(buf[:n])
			if derr != nil {
				t.Fatalf("undecodable reply: %v", derr)
			}
			if kind != KindAccessConfirm {
				t.Fatalf("unexpected reply kind %v", kind)
			}
			m, err := core.UnmarshalAccessConfirm(payload)
			if err != nil {
				t.Fatal(err)
			}
			sid := core.NewSessionID(m.GR, m.GJ)
			replies[sid] = append(replies[sid], append([]byte(nil), buf[:n]...))
		}
	}

	// Wave 1: the shuffled burst of originals and duplicates.
	for _, s := range sends {
		if _, err := conn.WriteTo(s.frame, srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	collect(2 * time.Second)

	// Wave 2: one late retransmission per session, long after the replies
	// settled — every one must be answered from the cache.
	for _, r := range requests {
		if _, err := conn.WriteTo(r.frame, srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	collect(1 * time.Second)

	for i, r := range requests {
		rs := replies[r.sid]
		if len(rs) < 2 {
			t.Fatalf("session %d: %d replies, want >= 2 (original + cached replay)", i, len(rs))
		}
		for j := 1; j < len(rs); j++ {
			if !bytes.Equal(rs[0], rs[j]) {
				t.Fatalf("session %d: reply %d differs from reply 0", i, j)
			}
		}
	}
	if len(replies) != users {
		t.Fatalf("replies for %d sessions, want %d", len(replies), users)
	}

	stats := ln.Router.Stats()
	if stats.SessionsEstablished != users {
		t.Fatalf("sessions established = %d, want %d", stats.SessionsEstablished, users)
	}
	if stats.ExpensiveVerifications != users {
		t.Fatalf("expensive verifications = %d, want %d — duplicates leaked into the pipeline", stats.ExpensiveVerifications, users)
	}
	if got := srv.Stats().Duplicates(); got < int64(users*(dups-1)) {
		t.Fatalf("duplicates suppressed = %d, want >= %d", got, users*(dups-1))
	}
}
