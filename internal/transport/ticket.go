package transport

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// ErrTicketUnusable is the client-side mapping of RejectTicket: the
// resumption ticket was refused (expired, STEK rotated out, malformed)
// and a full handshake is required.
var ErrTicketUnusable = errors.New("transport: resumption ticket unusable")

// ErrNoTicket is returned by Client.Resume when the client holds no
// resumption state.
var ErrNoTicket = errors.New("transport: no resumption ticket held")

// ticketTag versions the sealed ticket body. v2 added the issuing-router
// identity, which the metro backbone uses to recognize a cross-router
// roaming handoff at the adopting router.
const ticketTag = "peace/ticket:v2"

// ticketAAD binds sealed tickets to their purpose so a STEK blob cannot
// be replayed into a different decryption context.
var ticketAAD = []byte("peace/ticket-aad:v1")

// Ticket is the plaintext of a resumption ticket — what the server seals
// under its rotating STEK and hands to the client as an opaque blob. The
// server keeps no per-ticket state: everything needed to resurrect the
// session comes back inside the blob.
//
// Secret is the resumption master secret (both endpoints derive it from
// the original session keys, so possession proves the holder completed
// the original AKA). URLEpoch/CRLEpoch pin the revocation state the
// holder was verified against: a resume is only honored while the
// router's installed lists still carry exactly those epochs, so any
// revocation event invalidates every earlier ticket wholesale. Escrow is
// the marshaled original M.2 — the accountability handle the router
// re-installs in its network log on resume, keeping resumed sessions as
// auditable as fresh ones.
type Ticket struct {
	Secret    [core.ResumeSecretSize]byte
	Prev      core.SessionID // session the secret was derived from
	Router    string         // issuing router — a different adopter is a roaming handoff
	URLEpoch  uint64
	CRLEpoch  uint64
	BootEpoch uint64 // issuing incarnation (diagnostic, not enforced)
	Expiry    time.Time
	Escrow    []byte // marshaled core.AccessRequest (M.2)
}

// Marshal encodes the ticket plaintext.
func (t *Ticket) Marshal() []byte {
	w := wire.NewWriter(160 + len(t.Router) + len(t.Escrow))
	w.StringField(ticketTag)
	w.StringField(t.Router)
	w.BytesField(t.Secret[:])
	w.BytesField(t.Prev[:])
	w.Uint64(t.URLEpoch)
	w.Uint64(t.CRLEpoch)
	w.Uint64(t.BootEpoch)
	w.Time(t.Expiry)
	w.BytesField(t.Escrow)
	return w.Bytes()
}

// UnmarshalTicket decodes a ticket plaintext. The escrow bytes are
// copied, so the result outlives the decryption buffer.
func UnmarshalTicket(data []byte) (*Ticket, error) {
	r := wire.NewReader(data)
	tag, err := r.StringField()
	if err != nil {
		return nil, err
	}
	if tag != ticketTag {
		return nil, fmt.Errorf("transport: ticket tag %q", tag)
	}
	t := &Ticket{}
	if t.Router, err = r.StringField(); err != nil {
		return nil, err
	}
	sec, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(sec) != len(t.Secret) {
		return nil, fmt.Errorf("transport: ticket secret size %d", len(sec))
	}
	copy(t.Secret[:], sec)
	prev, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(prev) != len(t.Prev) {
		return nil, fmt.Errorf("transport: ticket session id size %d", len(prev))
	}
	copy(t.Prev[:], prev)
	if t.URLEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if t.CRLEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if t.BootEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if t.Expiry, err = r.Time(); err != nil {
		return nil, err
	}
	esc, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	t.Escrow = append([]byte(nil), esc...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return t, nil
}

// Seal encrypts the ticket under the ring's current STEK generation.
func (t *Ticket) Seal(rng io.Reader, ring *symcrypto.TicketKeyRing) ([]byte, error) {
	return ring.Seal(rng, t.Marshal(), ticketAAD)
}

// OpenTicket decrypts and decodes a sealed ticket blob.
// symcrypto.ErrUnknownTicketKey means the STEK generation rotated out.
func OpenTicket(blob []byte, ring *symcrypto.TicketKeyRing) (*Ticket, error) {
	pt, err := ring.Open(blob, ticketAAD)
	if err != nil {
		return nil, err
	}
	return UnmarshalTicket(pt)
}

// resumeMACKey derives the key authenticating resume requests from the
// ticket's resumption secret.
func resumeMACKey(secret []byte) symcrypto.Key {
	return symcrypto.DeriveKey(secret, "peace/resume-mac:v1")
}

// resumeDedupID derives the duplicate-suppression identifier of one
// resume exchange. It covers the sealed blob and the client nonce, so a
// retransmitted request replays the cached confirm (exactly one session
// per exchange) while a fresh nonce starts a distinct exchange.
func resumeDedupID(ticket []byte, nonce []byte) core.SessionID {
	h := sha256.New()
	h.Write([]byte("peace/resume-dedup:v1"))
	h.Write(ticket)
	h.Write(nonce)
	var id core.SessionID
	h.Sum(id[:0])
	return id
}
