package transport

import "sync/atomic"

// Stats counts what an endpoint's datapath has seen. All counters are
// atomic so the read loop, retransmit timers and reply goroutines can
// bump them without locking; Snapshot takes a consistent-enough copy for
// the meshd JSON reporter.
type Stats struct {
	framesIn     atomic.Int64
	framesOut    atomic.Int64
	bytesIn      atomic.Int64
	bytesOut     atomic.Int64
	decodeErrors atomic.Int64
	unhandled    atomic.Int64
	duplicates   atomic.Int64
	retransmits  atomic.Int64
	timeouts     atomic.Int64
	rejects      atomic.Int64
	queueDrops   atomic.Int64

	// Revocation-distribution observability: deltas and full snapshots
	// served (server) or applied (client), rejects attributed to
	// revocation, and the current epoch of each installed list.
	revDeltaFetches    atomic.Int64
	revSnapshotFetches atomic.Int64
	revRejects         atomic.Int64
	urlEpoch           atomic.Uint64
	crlEpoch           atomic.Uint64

	// Self-healing observability: keepalive traffic, dead-peer and restart
	// detections, automatic re-attaches, and the boot-epoch gauge.
	keepalivesSent        atomic.Int64
	keepalivesAcked       atomic.Int64
	keepalivesServed      atomic.Int64
	keepalivesMissed      atomic.Int64
	unknownSessionRejects atomic.Int64
	restartsDetected      atomic.Int64
	deadPeerEvents        atomic.Int64
	reattaches            atomic.Int64
	attachAttempts        atomic.Int64
	attachSuccesses       atomic.Int64
	drainRejects          atomic.Int64
	bootEpoch             atomic.Uint64

	// Resumption observability: tickets issued and resumes served
	// (server), resume attempts/successes/fallbacks (client), the
	// held-ticket gauge, and the cache/shard gauges of the sharded server.
	ticketsIssued    atomic.Int64
	resumesServed    atomic.Int64
	resumeRejects    atomic.Int64
	resumeAttempts   atomic.Int64
	resumeSuccesses  atomic.Int64
	resumeFallbacks  atomic.Int64
	ticketsHeld      atomic.Int64
	replyCacheSize   atomic.Int64
	deltaCacheFrames atomic.Int64
	shards           atomic.Int64

	// Backbone observability: roaming handoffs adopted from / released to
	// other routers, data frames relayed across backbone links, delivered
	// data frames, and the live-gossip-peer gauge.
	handoffsIn    atomic.Int64
	handoffsOut   atomic.Int64
	framesRelayed atomic.Int64
	dataDelivered atomic.Int64
	gossipPeers   atomic.Int64

	// Data-plane batching observability: whether the mmsg fast path is
	// active, how many recvmmsg/sendmmsg calls moved how many datagrams
	// (their ratio is the average batch fill), and the plaintext bytes
	// delivered to the local sink.
	batchedIO      atomic.Int64
	readBatches    atomic.Int64
	readDatagrams  atomic.Int64
	writeBatches   atomic.Int64
	writeDatagrams atomic.Int64
	dataBytes      atomic.Int64
}

// StatsSnapshot is the plain-struct view of Stats, JSON-ready.
type StatsSnapshot struct {
	// FramesIn / FramesOut count valid frames received and frames sent.
	FramesIn  int64 `json:"frames_in"`
	FramesOut int64 `json:"frames_out"`
	// BytesIn / BytesOut count datagram bytes, including undecodable ones.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// DecodeErrors counts datagrams rejected by the frame or message
	// decoders (hostile or corrupt bytes).
	DecodeErrors int64 `json:"decode_errors"`
	// Unhandled counts well-formed frames of a kind the endpoint does not
	// serve (e.g. a peer hello sent to a router socket).
	Unhandled int64 `json:"unhandled"`
	// Duplicates counts suppressed duplicate frames (retransmitted
	// requests already in flight or already answered).
	Duplicates int64 `json:"duplicates"`
	// Retransmits counts frames this endpoint sent again after a timeout.
	Retransmits int64 `json:"retransmits"`
	// Timeouts counts handshake phases abandoned after max retries.
	Timeouts int64 `json:"timeouts"`
	// Rejects counts reject notices sent (server) or received (client).
	Rejects int64 `json:"rejects"`
	// QueueDrops counts access requests shed because the ingest queue was
	// full (backpressure under overload).
	QueueDrops int64 `json:"queue_drops"`
	// RevDeltaFetches / RevSnapshotFetches count revocation deltas and
	// full snapshots served (server) or applied (client).
	RevDeltaFetches    int64 `json:"rev_delta_fetches"`
	RevSnapshotFetches int64 `json:"rev_snapshot_fetches"`
	// RevRejects counts access requests rejected because the signer's
	// token is on the URL.
	RevRejects int64 `json:"rev_rejects"`
	// URLEpoch / CRLEpoch gauge the epoch of each installed list.
	URLEpoch uint64 `json:"url_epoch"`
	CRLEpoch uint64 `json:"crl_epoch"`
	// KeepalivesSent / KeepalivesAcked count pings sent and valid pongs
	// received (client); KeepalivesServed counts pongs answered (server).
	KeepalivesSent   int64 `json:"keepalives_sent"`
	KeepalivesAcked  int64 `json:"keepalives_acked"`
	KeepalivesServed int64 `json:"keepalives_served"`
	// KeepalivesMissed counts ping rounds that ended without a valid pong.
	KeepalivesMissed int64 `json:"keepalives_missed"`
	// UnknownSessionRejects counts pings for sessions this server does not
	// hold — nonzero after a restart orphans clients.
	UnknownSessionRejects int64 `json:"unknown_session_rejects"`
	// RestartsDetected counts authenticated boot-epoch changes observed.
	RestartsDetected int64 `json:"restarts_detected"`
	// DeadPeerEvents counts sessions declared dead after missed keepalives.
	DeadPeerEvents int64 `json:"dead_peer_events"`
	// Reattaches counts automatic re-attach cycles after an established
	// session was lost (restart or dead peer).
	Reattaches int64 `json:"reattaches"`
	// AttachAttempts / AttachSuccesses count full AKA runs started and
	// completed.
	AttachAttempts  int64 `json:"attach_attempts"`
	AttachSuccesses int64 `json:"attach_successes"`
	// DrainRejects counts access requests refused during graceful drain.
	DrainRejects int64 `json:"drain_rejects"`
	// BootEpoch gauges the server's own boot epoch (server) or the last
	// authenticated boot epoch observed (client).
	BootEpoch uint64 `json:"boot_epoch"`
	// TicketsIssued counts resumption tickets sealed into confirms and
	// resume replies (server).
	TicketsIssued int64 `json:"tickets_issued"`
	// ResumesServed counts ticket resumptions served without a pairing
	// (server); ResumeRejects counts refused resume exchanges.
	ResumesServed int64 `json:"resumes_served"`
	ResumeRejects int64 `json:"resume_rejects"`
	// ResumeAttempts / ResumeSuccesses count client-side resume exchanges
	// started and completed; ResumeFallbacks counts resumes that fell back
	// to the full handshake.
	ResumeAttempts  int64 `json:"resume_attempts"`
	ResumeSuccesses int64 `json:"resume_successes"`
	ResumeFallbacks int64 `json:"resume_fallbacks"`
	// TicketsHeld gauges whether the client currently holds a ticket.
	TicketsHeld int64 `json:"tickets_held"`
	// ReplyCacheSize / DeltaCacheFrames gauge the bounded caches.
	ReplyCacheSize   int64 `json:"reply_cache_size"`
	DeltaCacheFrames int64 `json:"delta_cache_frames"`
	// Shards gauges how many read loops serve the socket(s).
	Shards int64 `json:"shards"`
	// HandoffsIn counts roaming sessions this router adopted via a ticket
	// issued by a different router; HandoffsOut counts sessions this
	// router released to an adopting router (announced on the gossip
	// plane).
	HandoffsIn  int64 `json:"handoffs_in"`
	HandoffsOut int64 `json:"handoffs_out"`
	// FramesRelayed counts data frames this router forwarded across
	// backbone links (first hop and intermediate hops alike).
	FramesRelayed int64 `json:"frames_relayed"`
	// DataDelivered counts session data frames opened and delivered to the
	// local application sink (directly received or relayed in).
	DataDelivered int64 `json:"data_delivered"`
	// GossipPeers gauges how many backbone links are currently up.
	GossipPeers int64 `json:"gossip_peers"`
	// BatchedIO is 1 when the mmsg fast path upgraded the socket, 0 on the
	// portable single-datagram fallback.
	BatchedIO int64 `json:"batched_io"`
	// ReadBatches / ReadDatagrams count ingest syscalls and the datagrams
	// they moved; their ratio is the average ingest batch fill.
	ReadBatches   int64 `json:"read_batches"`
	ReadDatagrams int64 `json:"read_datagrams"`
	// WriteBatches / WriteDatagrams count egress flushes and the datagrams
	// they moved.
	WriteBatches   int64 `json:"write_batches"`
	WriteDatagrams int64 `json:"write_datagrams"`
	// DataBytes counts plaintext payload bytes delivered to the local sink.
	DataBytes int64 `json:"data_bytes"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		FramesIn:     s.framesIn.Load(),
		FramesOut:    s.framesOut.Load(),
		BytesIn:      s.bytesIn.Load(),
		BytesOut:     s.bytesOut.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		Unhandled:    s.unhandled.Load(),
		Duplicates:   s.duplicates.Load(),
		Retransmits:  s.retransmits.Load(),
		Timeouts:     s.timeouts.Load(),
		Rejects:      s.rejects.Load(),
		QueueDrops:   s.queueDrops.Load(),

		RevDeltaFetches:    s.revDeltaFetches.Load(),
		RevSnapshotFetches: s.revSnapshotFetches.Load(),
		RevRejects:         s.revRejects.Load(),
		URLEpoch:           s.urlEpoch.Load(),
		CRLEpoch:           s.crlEpoch.Load(),

		KeepalivesSent:        s.keepalivesSent.Load(),
		KeepalivesAcked:       s.keepalivesAcked.Load(),
		KeepalivesServed:      s.keepalivesServed.Load(),
		KeepalivesMissed:      s.keepalivesMissed.Load(),
		UnknownSessionRejects: s.unknownSessionRejects.Load(),
		RestartsDetected:      s.restartsDetected.Load(),
		DeadPeerEvents:        s.deadPeerEvents.Load(),
		Reattaches:            s.reattaches.Load(),
		AttachAttempts:        s.attachAttempts.Load(),
		AttachSuccesses:       s.attachSuccesses.Load(),
		DrainRejects:          s.drainRejects.Load(),
		BootEpoch:             s.bootEpoch.Load(),

		TicketsIssued:    s.ticketsIssued.Load(),
		ResumesServed:    s.resumesServed.Load(),
		ResumeRejects:    s.resumeRejects.Load(),
		ResumeAttempts:   s.resumeAttempts.Load(),
		ResumeSuccesses:  s.resumeSuccesses.Load(),
		ResumeFallbacks:  s.resumeFallbacks.Load(),
		TicketsHeld:      s.ticketsHeld.Load(),
		ReplyCacheSize:   s.replyCacheSize.Load(),
		DeltaCacheFrames: s.deltaCacheFrames.Load(),
		Shards:           s.shards.Load(),

		HandoffsIn:    s.handoffsIn.Load(),
		HandoffsOut:   s.handoffsOut.Load(),
		FramesRelayed: s.framesRelayed.Load(),
		DataDelivered: s.dataDelivered.Load(),
		GossipPeers:   s.gossipPeers.Load(),

		BatchedIO:      s.batchedIO.Load(),
		ReadBatches:    s.readBatches.Load(),
		ReadDatagrams:  s.readDatagrams.Load(),
		WriteBatches:   s.writeBatches.Load(),
		WriteDatagrams: s.writeDatagrams.Load(),
		DataBytes:      s.dataBytes.Load(),
	}
}

// Retransmits returns the retransmit counter (used by tests and reports).
func (s *Stats) Retransmits() int64 { return s.retransmits.Load() }

// Timeouts returns the timeout counter.
func (s *Stats) Timeouts() int64 { return s.timeouts.Load() }

// Duplicates returns the duplicate-suppression counter.
func (s *Stats) Duplicates() int64 { return s.duplicates.Load() }

// DecodeErrors returns the decode-error counter.
func (s *Stats) DecodeErrors() int64 { return s.decodeErrors.Load() }

// RevDeltaFetches returns the revocation-delta counter.
func (s *Stats) RevDeltaFetches() int64 { return s.revDeltaFetches.Load() }

// RevSnapshotFetches returns the full-snapshot counter.
func (s *Stats) RevSnapshotFetches() int64 { return s.revSnapshotFetches.Load() }

// RevRejects returns the revocation-reject counter.
func (s *Stats) RevRejects() int64 { return s.revRejects.Load() }

// KeepalivesAcked returns how many valid pongs the client received.
func (s *Stats) KeepalivesAcked() int64 { return s.keepalivesAcked.Load() }

// Reattaches returns how many automatic re-attach cycles ran.
func (s *Stats) Reattaches() int64 { return s.reattaches.Load() }

// RestartsDetected returns how many boot-epoch changes were observed.
func (s *Stats) RestartsDetected() int64 { return s.restartsDetected.Load() }

// DeadPeerEvents returns how many sessions were declared dead.
func (s *Stats) DeadPeerEvents() int64 { return s.deadPeerEvents.Load() }

// AttachAttempts returns how many AKA runs were started.
func (s *Stats) AttachAttempts() int64 { return s.attachAttempts.Load() }

// AttachSuccesses returns how many AKA runs completed.
func (s *Stats) AttachSuccesses() int64 { return s.attachSuccesses.Load() }

// TicketsIssued returns how many resumption tickets the server sealed.
func (s *Stats) TicketsIssued() int64 { return s.ticketsIssued.Load() }

// ResumesServed returns how many ticket resumptions the server served.
func (s *Stats) ResumesServed() int64 { return s.resumesServed.Load() }

// ResumeRejects returns how many resume exchanges the server refused.
func (s *Stats) ResumeRejects() int64 { return s.resumeRejects.Load() }

// ResumeAttempts returns how many resume exchanges the client started.
func (s *Stats) ResumeAttempts() int64 { return s.resumeAttempts.Load() }

// ResumeSuccesses returns how many resume exchanges the client completed.
func (s *Stats) ResumeSuccesses() int64 { return s.resumeSuccesses.Load() }

// ResumeFallbacks returns how many resumes fell back to a full handshake.
func (s *Stats) ResumeFallbacks() int64 { return s.resumeFallbacks.Load() }

// ReplyCacheSize returns the reply-cache size gauge.
func (s *Stats) ReplyCacheSize() int64 { return s.replyCacheSize.Load() }

// DeltaCacheFrames returns the delta-cache size gauge.
func (s *Stats) DeltaCacheFrames() int64 { return s.deltaCacheFrames.Load() }

// HandoffsIn returns how many roaming sessions were adopted from other
// routers.
func (s *Stats) HandoffsIn() int64 { return s.handoffsIn.Load() }

// HandoffsOut returns how many sessions were released to other routers.
func (s *Stats) HandoffsOut() int64 { return s.handoffsOut.Load() }

// FramesRelayed returns how many data frames crossed backbone links.
func (s *Stats) FramesRelayed() int64 { return s.framesRelayed.Load() }

// DataDelivered returns how many data frames reached the local sink.
func (s *Stats) DataDelivered() int64 { return s.dataDelivered.Load() }

// GossipPeers returns the live-backbone-link gauge.
func (s *Stats) GossipPeers() int64 { return s.gossipPeers.Load() }

// BatchedIO reports whether the mmsg fast path upgraded the socket.
func (s *Stats) BatchedIO() bool { return s.batchedIO.Load() != 0 }

// ReadBatches returns how many ingest read syscalls completed.
func (s *Stats) ReadBatches() int64 { return s.readBatches.Load() }

// ReadDatagrams returns how many datagrams the ingest reads moved.
func (s *Stats) ReadDatagrams() int64 { return s.readDatagrams.Load() }

// WriteBatches returns how many egress flushes completed.
func (s *Stats) WriteBatches() int64 { return s.writeBatches.Load() }

// WriteDatagrams returns how many datagrams the egress flushes moved.
func (s *Stats) WriteDatagrams() int64 { return s.writeDatagrams.Load() }

// DataBytes returns the plaintext bytes delivered to the local sink.
func (s *Stats) DataBytes() int64 { return s.dataBytes.Load() }

// NoteDataBytes adds delivered plaintext bytes (called by the backbone
// node for relayed-in frames that open under a local session).
func (s *Stats) NoteDataBytes(n int) { s.dataBytes.Add(int64(n)) }

// NoteHandoffOut bumps the handoff-release counter (called by the
// backbone node when it learns another router adopted a local session).
func (s *Stats) NoteHandoffOut() { s.handoffsOut.Add(1) }

// NoteFrameRelayed bumps the relay counter (called by the backbone node
// for every data frame it puts on a backbone link).
func (s *Stats) NoteFrameRelayed() { s.framesRelayed.Add(1) }

// NoteDataDelivered bumps the delivery counter (called by the backbone
// node when a relayed-in frame opens under a local session).
func (s *Stats) NoteDataDelivered() { s.dataDelivered.Add(1) }

// SetGossipPeers records the live-backbone-link gauge.
func (s *Stats) SetGossipPeers(n int64) { s.gossipPeers.Store(n) }

// setEpochs records the installed-epoch gauges.
func (s *Stats) setEpochs(urlEpoch, crlEpoch uint64) {
	s.urlEpoch.Store(urlEpoch)
	s.crlEpoch.Store(crlEpoch)
}
