package transport

import (
	"github.com/peace-mesh/peace/internal/metrics"
)

// Stats is an endpoint's view into the shared metrics registry: every
// counter and gauge the datapath bumps is a registry instrument, so the
// meshd JSON reporter, the /metrics endpoint, the soak judges and the
// peacebench experiments all read the same numbers. Handles are resolved
// once at construction; increments stay single lock-free atomic ops with
// zero allocations (gated by TestDataPlaneAllocs).
//
// Registration is idempotent, so many clients may share one registry and
// their counts aggregate.
type Stats struct {
	reg *metrics.Registry

	framesIn     *metrics.Counter
	framesOut    *metrics.Counter
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	decodeErrors *metrics.Counter
	unhandled    *metrics.Counter
	duplicates   *metrics.Counter
	retransmits  *metrics.Counter
	timeouts     *metrics.Counter
	rejects      *metrics.Counter
	queueDrops   *metrics.Counter
	// ratelimitDropped counts attach/resume datagrams shed by the
	// per-source token bucket before any decode work.
	ratelimitDropped *metrics.Counter

	// Revocation-distribution observability: deltas and full snapshots
	// served (server) or applied (client), rejects attributed to
	// revocation, and the current epoch of each installed list.
	revDeltaFetches    *metrics.Counter
	revSnapshotFetches *metrics.Counter
	revRejects         *metrics.Counter
	urlEpoch           *metrics.UintGauge
	crlEpoch           *metrics.UintGauge

	// Self-healing observability: keepalive traffic, dead-peer and restart
	// detections, automatic re-attaches, and the boot-epoch gauge.
	keepalivesSent        *metrics.Counter
	keepalivesAcked       *metrics.Counter
	keepalivesServed      *metrics.Counter
	keepalivesMissed      *metrics.Counter
	unknownSessionRejects *metrics.Counter
	restartsDetected      *metrics.Counter
	deadPeerEvents        *metrics.Counter
	reattaches            *metrics.Counter
	attachAttempts        *metrics.Counter
	attachSuccesses       *metrics.Counter
	drainRejects          *metrics.Counter
	bootEpoch             *metrics.UintGauge

	// Resumption observability: tickets issued and resumes served
	// (server), resume attempts/successes/fallbacks (client), the
	// held-ticket gauge, and the cache/shard gauges of the sharded server.
	ticketsIssued    *metrics.Counter
	resumesServed    *metrics.Counter
	resumeRejects    *metrics.Counter
	resumeAttempts   *metrics.Counter
	resumeSuccesses  *metrics.Counter
	resumeFallbacks  *metrics.Counter
	ticketsHeld      *metrics.Gauge
	replyCacheSize   *metrics.Gauge
	deltaCacheFrames *metrics.Gauge
	shards           *metrics.Gauge

	// Backbone observability: roaming handoffs adopted from / released to
	// other routers, data frames relayed across backbone links, delivered
	// data frames, and the live-gossip-peer gauge.
	handoffsIn    *metrics.Counter
	handoffsOut   *metrics.Counter
	framesRelayed *metrics.Counter
	dataDelivered *metrics.Counter
	gossipPeers   *metrics.Gauge

	// Data-plane batching observability: whether the mmsg fast path is
	// active, how many recvmmsg/sendmmsg calls moved how many datagrams
	// (their ratio is the average batch fill), and the plaintext bytes
	// delivered to the local sink.
	batchedIO      *metrics.Gauge
	readBatches    *metrics.Counter
	readDatagrams  *metrics.Counter
	writeBatches   *metrics.Counter
	writeDatagrams *metrics.Counter
	dataBytes      *metrics.Counter

	// Adaptive DoS-defense observability: the suspicion flag and currently
	// demanded puzzle difficulty (mirrored from the router's controller by
	// the server's load sampler), the puzzle ledger at the ingress gate,
	// and how long client solves take.
	dosSuspicion       *metrics.Gauge
	dosDifficulty      *metrics.Gauge
	dosPuzzlesIssued   *metrics.Counter
	dosPuzzlesVerified *metrics.Counter
	dosPuzzlesRejected *metrics.Counter
	dosSolutionReplays *metrics.Counter
	dosSolveLatency    *metrics.Histogram

	// Latency histograms at the four hot boundaries: the full AKA attach,
	// the one-round-trip ticket resume, the cross-router roaming handoff
	// (a resume adopted by a different router), and the sealed keepalive
	// round trip standing in for the sealed-data RTT.
	attachLatency  *metrics.Histogram
	resumeLatency  *metrics.Histogram
	handoffLatency *metrics.Histogram
	dataRTT        *metrics.Histogram
}

// NewStats resolves every transport instrument in reg, creating a
// private registry when reg is nil.
func NewStats(reg *metrics.Registry) *Stats {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Stats{reg: reg}

	s.framesIn = reg.Counter("frames_in", "valid frames received")
	s.framesOut = reg.Counter("frames_out", "frames sent")
	s.bytesIn = reg.Counter("bytes_in", "datagram bytes received, including undecodable ones")
	s.bytesOut = reg.Counter("bytes_out", "datagram bytes sent")
	s.decodeErrors = reg.Counter("decode_errors", "datagrams rejected by the frame or message decoders")
	s.unhandled = reg.Counter("unhandled", "well-formed frames of a kind this endpoint does not serve")
	s.duplicates = reg.Counter("duplicates", "suppressed duplicate frames")
	s.retransmits = reg.Counter("retransmits", "frames sent again after a timeout")
	s.timeouts = reg.Counter("timeouts", "handshake phases abandoned after max retries")
	s.rejects = reg.Counter("rejects", "reject notices sent (server) or received (client)")
	s.queueDrops = reg.Counter("queue_drops", "access requests shed because the ingest queue was full")
	s.ratelimitDropped = reg.Counter("ratelimit_dropped", "attach/resume datagrams shed by the per-source token bucket")

	s.revDeltaFetches = reg.Counter("rev_delta_fetches", "revocation deltas served (server) or applied (client)")
	s.revSnapshotFetches = reg.Counter("rev_snapshot_fetches", "full revocation snapshots served (server) or applied (client)")
	s.revRejects = reg.Counter("rev_rejects", "access requests rejected because the signer is revoked")
	s.urlEpoch = reg.UintGauge("url_epoch", "epoch of the installed user revocation list")
	s.crlEpoch = reg.UintGauge("crl_epoch", "epoch of the installed credential revocation list")

	s.keepalivesSent = reg.Counter("keepalives_sent", "keepalive pings sent")
	s.keepalivesAcked = reg.Counter("keepalives_acked", "valid keepalive pongs received")
	s.keepalivesServed = reg.Counter("keepalives_served", "keepalive pongs answered")
	s.keepalivesMissed = reg.Counter("keepalives_missed", "ping rounds that ended without a valid pong")
	s.unknownSessionRejects = reg.Counter("unknown_session_rejects", "frames for sessions this server does not hold")
	s.restartsDetected = reg.Counter("restarts_detected", "authenticated boot-epoch changes observed")
	s.deadPeerEvents = reg.Counter("dead_peer_events", "sessions declared dead after missed keepalives")
	s.reattaches = reg.Counter("reattaches", "automatic re-attach cycles after a lost session")
	s.attachAttempts = reg.Counter("attach_attempts", "full AKA runs started")
	s.attachSuccesses = reg.Counter("attach_successes", "full AKA runs completed")
	s.drainRejects = reg.Counter("drain_rejects", "access requests refused during graceful drain")
	s.bootEpoch = reg.UintGauge("boot_epoch", "own boot epoch (server) or last authenticated boot epoch observed (client)")

	s.ticketsIssued = reg.Counter("tickets_issued", "resumption tickets sealed into confirms and resume replies")
	s.resumesServed = reg.Counter("resumes_served", "ticket resumptions served without a pairing")
	s.resumeRejects = reg.Counter("resume_rejects", "resume exchanges refused")
	s.resumeAttempts = reg.Counter("resume_attempts", "client resume exchanges started")
	s.resumeSuccesses = reg.Counter("resume_successes", "client resume exchanges completed")
	s.resumeFallbacks = reg.Counter("resume_fallbacks", "resumes that fell back to the full handshake")
	s.ticketsHeld = reg.Gauge("tickets_held", "whether the client currently holds a ticket")
	s.replyCacheSize = reg.Gauge("reply_cache_size", "entries in the bounded reply cache")
	s.deltaCacheFrames = reg.Gauge("delta_cache_frames", "encoded frames in the revocation delta cache")
	s.shards = reg.Gauge("shards", "read loops serving the socket(s)")

	s.handoffsIn = reg.Counter("handoffs_in", "roaming sessions adopted via a ticket from another router")
	s.handoffsOut = reg.Counter("handoffs_out", "sessions released to an adopting router")
	s.framesRelayed = reg.Counter("frames_relayed", "data frames forwarded across backbone links")
	s.dataDelivered = reg.Counter("data_delivered", "session data frames opened and delivered to the local sink")
	s.gossipPeers = reg.Gauge("gossip_peers", "backbone links currently up")

	s.batchedIO = reg.Gauge("batched_io", "1 when the mmsg fast path upgraded the socket")
	s.readBatches = reg.Counter("read_batches", "ingest read syscalls completed")
	s.readDatagrams = reg.Counter("read_datagrams", "datagrams moved by ingest reads")
	s.writeBatches = reg.Counter("write_batches", "egress flushes completed")
	s.writeDatagrams = reg.Counter("write_datagrams", "datagrams moved by egress flushes")
	s.dataBytes = reg.Counter("data_bytes", "plaintext payload bytes delivered to the local sink")

	s.dosSuspicion = reg.Gauge("dos_suspicion", "1 while the adaptive DoS monitor is suspicious")
	s.dosDifficulty = reg.Gauge("dos_difficulty", "puzzle difficulty currently demanded from access requests")
	s.dosPuzzlesIssued = reg.Counter("dos_puzzles_issued", "puzzle challenges attached to beacons and RejectPuzzle replies")
	s.dosPuzzlesVerified = reg.Counter("dos_puzzles_verified", "puzzle solutions accepted by the ingress gate")
	s.dosPuzzlesRejected = reg.Counter("dos_puzzles_rejected", "handshake datagrams refused for a missing, wrong or stale puzzle solution")
	s.dosSolutionReplays = reg.Counter("dos_solution_replays", "puzzle solutions replayed from a different source than first seen")
	s.dosSolveLatency = reg.Histogram("dos_solve_latency", "client-side puzzle solve latency")

	s.attachLatency = reg.Histogram("attach_latency", "full AKA attach round-trip latency")
	s.resumeLatency = reg.Histogram("resume_latency", "ticket resume round-trip latency")
	s.handoffLatency = reg.Histogram("handoff_latency", "roaming handoff (cross-router resume) latency")
	s.dataRTT = reg.Histogram("data_rtt", "sealed keepalive round-trip latency over the data path")

	return s
}

// Registry returns the registry backing these stats, so co-located
// subsystems (the backbone node, the rate limiter) can register their
// own instruments next to the transport's.
func (s *Stats) Registry() *metrics.Registry { return s.reg }

// Snapshot copies every instrument in the registry. The result marshals
// to the same flat JSON object the old hand-maintained snapshot struct
// produced, with the same keys in the same order.
func (s *Stats) Snapshot() metrics.Snapshot { return s.reg.Snapshot() }

// Retransmits returns the retransmit counter (used by tests and reports).
func (s *Stats) Retransmits() int64 { return s.retransmits.Load() }

// Timeouts returns the timeout counter.
func (s *Stats) Timeouts() int64 { return s.timeouts.Load() }

// Duplicates returns the duplicate-suppression counter.
func (s *Stats) Duplicates() int64 { return s.duplicates.Load() }

// DecodeErrors returns the decode-error counter.
func (s *Stats) DecodeErrors() int64 { return s.decodeErrors.Load() }

// Rejects returns the reject counter.
func (s *Stats) Rejects() int64 { return s.rejects.Load() }

// QueueDrops returns the ingest-backpressure drop counter.
func (s *Stats) QueueDrops() int64 { return s.queueDrops.Load() }

// RatelimitDropped returns how many attach/resume datagrams the
// per-source token bucket shed.
func (s *Stats) RatelimitDropped() int64 { return s.ratelimitDropped.Load() }

// RevDeltaFetches returns the revocation-delta counter.
func (s *Stats) RevDeltaFetches() int64 { return s.revDeltaFetches.Load() }

// RevSnapshotFetches returns the full-snapshot counter.
func (s *Stats) RevSnapshotFetches() int64 { return s.revSnapshotFetches.Load() }

// RevRejects returns the revocation-reject counter.
func (s *Stats) RevRejects() int64 { return s.revRejects.Load() }

// KeepalivesAcked returns how many valid pongs the client received.
func (s *Stats) KeepalivesAcked() int64 { return s.keepalivesAcked.Load() }

// UnknownSessionRejects returns how many frames referenced sessions this
// server does not hold.
func (s *Stats) UnknownSessionRejects() int64 { return s.unknownSessionRejects.Load() }

// Reattaches returns how many automatic re-attach cycles ran.
func (s *Stats) Reattaches() int64 { return s.reattaches.Load() }

// RestartsDetected returns how many boot-epoch changes were observed.
func (s *Stats) RestartsDetected() int64 { return s.restartsDetected.Load() }

// DeadPeerEvents returns how many sessions were declared dead.
func (s *Stats) DeadPeerEvents() int64 { return s.deadPeerEvents.Load() }

// AttachAttempts returns how many AKA runs were started.
func (s *Stats) AttachAttempts() int64 { return s.attachAttempts.Load() }

// AttachSuccesses returns how many AKA runs completed.
func (s *Stats) AttachSuccesses() int64 { return s.attachSuccesses.Load() }

// DrainRejects returns how many access requests the drain phase refused.
func (s *Stats) DrainRejects() int64 { return s.drainRejects.Load() }

// TicketsIssued returns how many resumption tickets the server sealed.
func (s *Stats) TicketsIssued() int64 { return s.ticketsIssued.Load() }

// ResumesServed returns how many ticket resumptions the server served.
func (s *Stats) ResumesServed() int64 { return s.resumesServed.Load() }

// ResumeRejects returns how many resume exchanges the server refused.
func (s *Stats) ResumeRejects() int64 { return s.resumeRejects.Load() }

// ResumeAttempts returns how many resume exchanges the client started.
func (s *Stats) ResumeAttempts() int64 { return s.resumeAttempts.Load() }

// ResumeSuccesses returns how many resume exchanges the client completed.
func (s *Stats) ResumeSuccesses() int64 { return s.resumeSuccesses.Load() }

// ResumeFallbacks returns how many resumes fell back to a full handshake.
func (s *Stats) ResumeFallbacks() int64 { return s.resumeFallbacks.Load() }

// ReplyCacheSize returns the reply-cache size gauge.
func (s *Stats) ReplyCacheSize() int64 { return s.replyCacheSize.Load() }

// DeltaCacheFrames returns the delta-cache size gauge.
func (s *Stats) DeltaCacheFrames() int64 { return s.deltaCacheFrames.Load() }

// Shards returns the read-loop gauge.
func (s *Stats) Shards() int64 { return s.shards.Load() }

// HandoffsIn returns how many roaming sessions were adopted from other
// routers.
func (s *Stats) HandoffsIn() int64 { return s.handoffsIn.Load() }

// HandoffsOut returns how many sessions were released to other routers.
func (s *Stats) HandoffsOut() int64 { return s.handoffsOut.Load() }

// FramesRelayed returns how many data frames crossed backbone links.
func (s *Stats) FramesRelayed() int64 { return s.framesRelayed.Load() }

// DataDelivered returns how many data frames reached the local sink.
func (s *Stats) DataDelivered() int64 { return s.dataDelivered.Load() }

// GossipPeers returns the live-backbone-link gauge.
func (s *Stats) GossipPeers() int64 { return s.gossipPeers.Load() }

// BatchedIO reports whether the mmsg fast path upgraded the socket.
func (s *Stats) BatchedIO() bool { return s.batchedIO.Load() != 0 }

// ReadBatches returns how many ingest read syscalls completed.
func (s *Stats) ReadBatches() int64 { return s.readBatches.Load() }

// ReadDatagrams returns how many datagrams the ingest reads moved.
func (s *Stats) ReadDatagrams() int64 { return s.readDatagrams.Load() }

// WriteBatches returns how many egress flushes completed.
func (s *Stats) WriteBatches() int64 { return s.writeBatches.Load() }

// WriteDatagrams returns how many datagrams the egress flushes moved.
func (s *Stats) WriteDatagrams() int64 { return s.writeDatagrams.Load() }

// DataBytes returns the plaintext bytes delivered to the local sink.
func (s *Stats) DataBytes() int64 { return s.dataBytes.Load() }

// DoSSuspicion reports whether the mirrored adaptive monitor is suspicious.
func (s *Stats) DoSSuspicion() bool { return s.dosSuspicion.Load() != 0 }

// DoSDifficulty returns the mirrored currently demanded puzzle difficulty.
func (s *Stats) DoSDifficulty() int64 { return s.dosDifficulty.Load() }

// DoSPuzzlesIssued returns how many puzzle challenges were issued.
func (s *Stats) DoSPuzzlesIssued() int64 { return s.dosPuzzlesIssued.Load() }

// DoSPuzzlesVerified returns how many puzzle solutions the gate accepted.
func (s *Stats) DoSPuzzlesVerified() int64 { return s.dosPuzzlesVerified.Load() }

// DoSPuzzlesRejected returns how many datagrams the puzzle gate refused.
func (s *Stats) DoSPuzzlesRejected() int64 { return s.dosPuzzlesRejected.Load() }

// DoSSolutionReplays returns how many cross-source solution replays the
// gate suppressed.
func (s *Stats) DoSSolutionReplays() int64 { return s.dosSolutionReplays.Load() }

// DoSSolveLatency returns the client puzzle-solve latency histogram.
func (s *Stats) DoSSolveLatency() *metrics.Histogram { return s.dosSolveLatency }

// AttachLatency returns the full-attach latency histogram.
func (s *Stats) AttachLatency() *metrics.Histogram { return s.attachLatency }

// ResumeLatency returns the ticket-resume latency histogram.
func (s *Stats) ResumeLatency() *metrics.Histogram { return s.resumeLatency }

// HandoffLatency returns the roaming-handoff latency histogram.
func (s *Stats) HandoffLatency() *metrics.Histogram { return s.handoffLatency }

// DataRTT returns the sealed-data round-trip latency histogram.
func (s *Stats) DataRTT() *metrics.Histogram { return s.dataRTT }

// NoteDataBytes adds delivered plaintext bytes (called by the backbone
// node for relayed-in frames that open under a local session).
func (s *Stats) NoteDataBytes(n int) { s.dataBytes.Add(int64(n)) }

// NoteHandoffOut bumps the handoff-release counter (called by the
// backbone node when it learns another router adopted a local session).
func (s *Stats) NoteHandoffOut() { s.handoffsOut.Add(1) }

// NoteFrameRelayed bumps the relay counter (called by the backbone node
// for every data frame it puts on a backbone link).
func (s *Stats) NoteFrameRelayed() { s.framesRelayed.Add(1) }

// NoteDataDelivered bumps the delivery counter (called by the backbone
// node when a relayed-in frame opens under a local session).
func (s *Stats) NoteDataDelivered() { s.dataDelivered.Add(1) }

// SetGossipPeers records the live-backbone-link gauge.
func (s *Stats) SetGossipPeers(n int64) { s.gossipPeers.Store(n) }

// setEpochs records the installed-epoch gauges.
func (s *Stats) setEpochs(urlEpoch, crlEpoch uint64) {
	s.urlEpoch.Store(urlEpoch)
	s.crlEpoch.Store(crlEpoch)
}
