package transport

import (
	"math/rand"
	"net"
	"sync"
)

// LossyConn wraps a net.PacketConn and silently drops a configurable
// fraction of outgoing datagrams — the loopback stand-in for a lossy
// radio link. Drops happen on the send side (the caller believes the
// datagram left), so wrapping both endpoints of a path induces loss in
// both directions. The pseudo-random source is seeded, making test runs
// reproducible.
type LossyConn struct {
	net.PacketConn

	mu      sync.Mutex
	rng     *rand.Rand
	loss    float64
	dropped int64
	// dropFn, when set, overrides the random policy: return true to drop
	// this datagram. Tests use it to script exact loss patterns (e.g.
	// "drop the first M.2").
	dropFn func(p []byte) bool
}

// NewLossyConn wraps conn with send-side loss probability loss (0..1).
func NewLossyConn(conn net.PacketConn, loss float64, seed int64) *LossyConn {
	return &LossyConn{
		PacketConn: conn,
		rng:        rand.New(rand.NewSource(seed)),
		loss:       loss,
	}
}

// NewScriptedConn wraps conn with a deterministic drop policy.
func NewScriptedConn(conn net.PacketConn, drop func(p []byte) bool) *LossyConn {
	return &LossyConn{PacketConn: conn, dropFn: drop}
}

// WriteTo sends p to addr unless the loss policy drops it, in which case
// the datagram vanishes but the caller sees a successful send — exactly
// what a congested or fading link does.
func (c *LossyConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	drop := false
	if c.dropFn != nil {
		drop = c.dropFn(p)
	} else if c.loss > 0 {
		drop = c.rng.Float64() < c.loss
	}
	if drop {
		c.dropped++
	}
	c.mu.Unlock()
	if drop {
		return len(p), nil
	}
	return c.PacketConn.WriteTo(p, addr)
}

// Dropped returns how many datagrams the policy has discarded.
func (c *LossyConn) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
