package transport

import (
	"crypto/rand"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/transport/batchio"
)

// steadyStateFixtures builds one encoded data frame and one encoded
// resume request, the two datagrams of the hot paths.
func steadyStateFixtures(tb testing.TB) (dataFrame, resumeFrame []byte) {
	tb.Helper()
	sess := core.ResumeSession(core.SessionID{}, make([]byte, core.ResumeSecretSize),
		[]byte("client-nonce-16b"), []byte("server-nonce-16b"), "bench", time.Unix(1700000000, 0))
	df, err := sess.SealData(rand.Reader, []byte("steady-state payload of a modest size"))
	if err != nil {
		tb.Fatal(err)
	}
	dataFrame, err = EncodeFrame(KindSessionPing, df.Marshal())
	if err != nil {
		tb.Fatal(err)
	}

	req := &ResumeRequest{Ticket: make([]byte, 200), Timestamp: time.Unix(1700000000, 0)}
	req.Nonce[0] = 9
	req.sign(make([]byte, core.ResumeSecretSize))
	resumeFrame, err = EncodeFrame(KindResumeRequest, req.Marshal())
	if err != nil {
		tb.Fatal(err)
	}
	return dataFrame, resumeFrame
}

// TestSteadyStateDecodeAllocs is the allocs/op regression gate from the
// resumption issue: the per-datagram decode work of a shard loop — frame
// demux plus the aliasing message decoders into per-loop scratch — must
// allocate nothing on the data and resume paths.
func TestSteadyStateDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	dataFrame, resumeFrame := steadyStateFixtures(t)

	var scratchDF core.DataFrame
	if avg := testing.AllocsPerRun(1000, func() {
		_, payload, err := DecodeFrame(dataFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.UnmarshalDataFrameInto(payload, &scratchDF); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("data-frame decode path allocates %.1f/op, want 0", avg)
	}

	var scratchRR ResumeRequest
	if avg := testing.AllocsPerRun(1000, func() {
		_, payload, err := DecodeFrame(resumeFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalResumeRequestInto(payload, &scratchRR); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("resume decode path allocates %.1f/op, want 0", avg)
	}
}

// nullBatchConn discards writes without recording them, so the egress
// side of the alloc gate measures only the spooler itself.
type nullBatchConn struct{}

func (nullBatchConn) ReadBatch(ms []batchio.Message) (int, error)  { return 0, nil }
func (nullBatchConn) WriteBatch(ms []batchio.Message) (int, error) { return len(ms), nil }
func (nullBatchConn) LocalAddr() net.Addr                          { return nil }
func (nullBatchConn) SetReadDeadline(time.Time) error              { return nil }
func (nullBatchConn) Close() error                                 { return nil }

// TestDataPlaneAllocs is the end-to-end allocs/op gate of the batched
// data plane: one op is everything the server does for one sealed
// data-frame datagram in steady state — frame demux, zero-copy decode,
// OpenDataInto, then the echo egress (header-first encode, in-place
// AppendSealedData into a pooled buffer, queue, sendmmsg flush). Must
// stay at exactly 0 allocations per op.
func TestDataPlaneAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	secret := make([]byte, core.ResumeSecretSize)
	cn, sn := []byte("client-nonce-16b"), []byte("server-nonce-16b")
	now := time.Unix(1700000000, 0)
	client := core.ResumeSession(core.SessionID{}, secret, cn, sn, "client", now)
	server := core.ResumeSession(core.SessionID{}, secret, cn, sn, "server", now)
	payload := []byte("steady-state payload of a modest size")

	// Pre-encode the ingest datagrams: the replay rule consumes one
	// sequence number per op, and AllocsPerRun executes runs+1 times.
	const n = 1100
	datagrams := make([][]byte, n)
	for i := range datagrams {
		buf, err := AppendFrameHeader(nil, KindSessionData, core.SealedDataLen(len(payload)))
		if err != nil {
			t.Fatal(err)
		}
		if datagrams[i], err = client.AppendSealedData(buf, payload); err != nil {
			t.Fatal(err)
		}
	}

	pool := batchio.NewPool(egressFrameSize)
	eg := batchio.NewEgress(nullBatchConn{}, 32, time.Millisecond, pool, nil)
	defer eg.Close()
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}

	// The metric increments a live shard loop pays per datagram ride inside
	// the gated op, so the registry refactor cannot quietly reintroduce
	// allocations on the hot path.
	stats := NewStats(nil)

	var scratch core.DataFrame
	pt := make([]byte, 0, 65536)
	idx := 0
	opStart := time.Now()
	if avg := testing.AllocsPerRun(1000, func() {
		stats.framesIn.Add(1)
		stats.dataDelivered.Add(1)
		stats.dataRTT.Observe(time.Since(opStart))
		_, framePayload, err := DecodeFrame(datagrams[idx])
		if err != nil {
			t.Fatal(err)
		}
		idx++
		if err := core.UnmarshalDataFrameInto(framePayload, &scratch); err != nil {
			t.Fatal(err)
		}
		pt, err = server.OpenDataInto(&scratch, pt[:0])
		if err != nil {
			t.Fatal(err)
		}
		b := eg.Buffer()
		if b.B, err = AppendFrameHeader(b.B, KindSessionData, core.SealedDataLen(len(pt))); err != nil {
			t.Fatal(err)
		}
		if b.B, err = server.AppendSealedData(b.B, pt); err != nil {
			t.Fatal(err)
		}
		eg.QueueBuf(b, addr)
		eg.Flush()
	}); avg != 0 {
		t.Fatalf("data-plane ingest+egress path allocates %.1f/op, want 0", avg)
	}
	if out := pool.Outstanding(); out != 0 {
		t.Fatalf("egress leaked %d pooled buffers", out)
	}
}

// BenchmarkDecodeDataFrame measures the steady-state data-path decode
// (frame demux + aliasing data-frame decode). Run with -benchmem: the
// allocs/op column must read 0.
func BenchmarkDecodeDataFrame(b *testing.B) {
	dataFrame, _ := steadyStateFixtures(b)
	var scratch core.DataFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := DecodeFrame(dataFrame)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.UnmarshalDataFrameInto(payload, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResumeRequest measures the resume-path decode a shard
// loop runs per re-attach datagram.
func BenchmarkDecodeResumeRequest(b *testing.B) {
	_, resumeFrame := steadyStateFixtures(b)
	var scratch ResumeRequest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := DecodeFrame(resumeFrame)
		if err != nil {
			b.Fatal(err)
		}
		if err := UnmarshalResumeRequestInto(payload, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplyCacheBegin measures the striped dedup lookup every access
// or resume datagram pays before any crypto.
func BenchmarkReplyCacheBegin(b *testing.B) {
	c := newReplyCache(4096)
	var sid core.SessionID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sid[0] = byte(i)
		sid[1] = byte(i >> 8)
		c.begin(sid)
	}
}
