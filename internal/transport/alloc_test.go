package transport

import (
	"crypto/rand"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// steadyStateFixtures builds one encoded data frame and one encoded
// resume request, the two datagrams of the hot paths.
func steadyStateFixtures(tb testing.TB) (dataFrame, resumeFrame []byte) {
	tb.Helper()
	sess := core.ResumeSession(core.SessionID{}, make([]byte, core.ResumeSecretSize),
		[]byte("client-nonce-16b"), []byte("server-nonce-16b"), "bench", time.Unix(1700000000, 0))
	df, err := sess.SealData(rand.Reader, []byte("steady-state payload of a modest size"))
	if err != nil {
		tb.Fatal(err)
	}
	dataFrame, err = EncodeFrame(KindSessionPing, df.Marshal())
	if err != nil {
		tb.Fatal(err)
	}

	req := &ResumeRequest{Ticket: make([]byte, 200), Timestamp: time.Unix(1700000000, 0)}
	req.Nonce[0] = 9
	req.sign(make([]byte, core.ResumeSecretSize))
	resumeFrame, err = EncodeFrame(KindResumeRequest, req.Marshal())
	if err != nil {
		tb.Fatal(err)
	}
	return dataFrame, resumeFrame
}

// TestSteadyStateDecodeAllocs is the allocs/op regression gate from the
// resumption issue: the per-datagram decode work of a shard loop — frame
// demux plus the aliasing message decoders into per-loop scratch — must
// allocate nothing on the data and resume paths.
func TestSteadyStateDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	dataFrame, resumeFrame := steadyStateFixtures(t)

	var scratchDF core.DataFrame
	if avg := testing.AllocsPerRun(1000, func() {
		_, payload, err := DecodeFrame(dataFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.UnmarshalDataFrameInto(payload, &scratchDF); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("data-frame decode path allocates %.1f/op, want 0", avg)
	}

	var scratchRR ResumeRequest
	if avg := testing.AllocsPerRun(1000, func() {
		_, payload, err := DecodeFrame(resumeFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalResumeRequestInto(payload, &scratchRR); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("resume decode path allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkDecodeDataFrame measures the steady-state data-path decode
// (frame demux + aliasing data-frame decode). Run with -benchmem: the
// allocs/op column must read 0.
func BenchmarkDecodeDataFrame(b *testing.B) {
	dataFrame, _ := steadyStateFixtures(b)
	var scratch core.DataFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := DecodeFrame(dataFrame)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.UnmarshalDataFrameInto(payload, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResumeRequest measures the resume-path decode a shard
// loop runs per re-attach datagram.
func BenchmarkDecodeResumeRequest(b *testing.B) {
	_, resumeFrame := steadyStateFixtures(b)
	var scratch ResumeRequest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := DecodeFrame(resumeFrame)
		if err != nil {
			b.Fatal(err)
		}
		if err := UnmarshalResumeRequestInto(payload, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplyCacheBegin measures the striped dedup lookup every access
// or resume datagram pays before any crypto.
func BenchmarkReplyCacheBegin(b *testing.B) {
	c := newReplyCache(4096)
	var sid core.SessionID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sid[0] = byte(i)
		sid[1] = byte(i >> 8)
		c.begin(sid)
	}
}
