package transport

import (
	"context"
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rebind listens on the exact address a just-closed server vacated.
func rebind(t *testing.T, addr net.Addr) net.PacketConn {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		conn, err := net.ListenPacket("udp", addr.String())
		if err == nil {
			return conn
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebind %v: %v", addr, lastErr)
	return nil
}

// TestMaintainSurvivesServerRestart is the core self-healing scenario:
// a maintained client exchanges keepalives, the server process "restarts"
// (volatile session state lost, new boot epoch), and the client detects
// the restart through the authenticated boot-epoch change and re-attaches
// on its own.
func TestMaintainSurvivesServerRestart(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-SH", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 100})

	conn := mustListen(t)
	defer conn.Close()
	cfg := testClientConfig()
	cfg.Seed = 11
	cl := NewClient(conn, srv.Addr(), ln.Users[0], cfg)

	ctx, cancel := context.WithCancel(context.Background())
	maintainDone := make(chan error, 1)
	go func() {
		maintainDone <- cl.Maintain(ctx, MaintainConfig{
			KeepaliveInterval: 40 * time.Millisecond,
			PingTimeout:       120 * time.Millisecond,
			// High enough that the brief restart gap cannot trip the
			// dead-peer path: this test must exercise restart detection.
			MaxMissed:   1000,
			ReattachMin: 30 * time.Millisecond,
			ReattachMax: 200 * time.Millisecond,
		})
	}()

	waitFor(t, 10*time.Second, "initial attach", func() bool {
		return cl.Session() != nil && cl.BootEpoch() == 100
	})
	waitFor(t, 5*time.Second, "keepalives acked", func() bool {
		return cl.Stats().KeepalivesAcked() >= 2
	})

	// Restart: volatile state (sessions, outstanding beacons) is lost, the
	// listen address survives, and the new incarnation has a new epoch.
	addr := srv.Addr()
	srv.Close()
	ln.Router.Reboot()
	srv2 := NewServer(rebind(t, addr), ln.Router, ServerConfig{BootEpoch: 200})
	defer srv2.Close()

	waitFor(t, 15*time.Second, "re-attach to new incarnation", func() bool {
		return cl.Session() != nil && cl.BootEpoch() == 200
	})
	if got := cl.Stats().RestartsDetected(); got < 1 {
		t.Fatalf("restarts detected = %d, want >= 1", got)
	}
	if got := cl.Stats().Reattaches(); got < 1 {
		t.Fatalf("reattaches = %d, want >= 1", got)
	}
	if got := srv2.Stats().UnknownSessionRejects(); got < 1 {
		t.Fatalf("unknown-session rejects = %d, want >= 1", got)
	}

	// The healed session is fully functional end to end.
	sess := cl.Session()
	routerSess, ok := ln.Router.SessionByID(sess.ID)
	if !ok {
		t.Fatalf("router has no session %s after re-attach", sess.ID)
	}
	frame, err := routerSess.SealData(rand.Reader, []byte("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := sess.OpenData(frame); err != nil || string(pt) != "post-restart" {
		t.Fatalf("healed session broken: %q %v", pt, err)
	}

	cancel()
	if err := <-maintainDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Maintain returned %v, want context.Canceled", err)
	}
}

// TestMaintainDeadPeerDetection kills the server without a replacement:
// the client must declare the peer dead after MaxMissed silent rounds,
// then recover once a server comes back.
func TestMaintainDeadPeerDetection(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-DP", "grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 31})

	conn := mustListen(t)
	defer conn.Close()
	cfg := testClientConfig()
	cfg.Seed = 12
	cl := NewClient(conn, srv.Addr(), ln.Users[0], cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = cl.Maintain(ctx, MaintainConfig{
			KeepaliveInterval: 30 * time.Millisecond,
			PingTimeout:       80 * time.Millisecond,
			MaxMissed:         2,
			ReattachMin:       30 * time.Millisecond,
			ReattachMax:       200 * time.Millisecond,
			AttachTimeout:     2 * time.Second,
		})
	}()

	waitFor(t, 10*time.Second, "initial attach", func() bool {
		return cl.Session() != nil
	})

	addr := srv.Addr()
	srv.Close()
	waitFor(t, 10*time.Second, "dead-peer detection", func() bool {
		return cl.Stats().DeadPeerEvents() >= 1 && cl.Session() == nil
	})

	srv2 := NewServer(rebind(t, addr), ln.Router, ServerConfig{BootEpoch: 32})
	defer srv2.Close()
	waitFor(t, 15*time.Second, "recovery after outage", func() bool {
		return cl.Session() != nil && cl.BootEpoch() == 32
	})
	if got := cl.Stats().Reattaches(); got < 1 {
		t.Fatalf("reattaches = %d, want >= 1", got)
	}
}

// rejectingProxy sits between one client and a live server and answers the
// first `rejections` access requests itself with the given transient code,
// forwarding everything else verbatim in both directions.
type rejectingProxy struct {
	front net.PacketConn // client-facing
	back  net.PacketConn // server-facing
	srv   net.Addr
	code  RejectCode

	mu         sync.Mutex
	clientAddr net.Addr
	remaining  int
	rejected   int
}

func newRejectingProxy(t *testing.T, srv net.Addr, code RejectCode, rejections int) *rejectingProxy {
	t.Helper()
	p := &rejectingProxy{
		front:     mustListen(t),
		back:      mustListen(t),
		srv:       srv,
		code:      code,
		remaining: rejections,
	}
	go p.frontLoop()
	go p.backLoop()
	t.Cleanup(func() {
		p.front.Close()
		p.back.Close()
	})
	return p
}

func (p *rejectingProxy) Addr() net.Addr { return p.front.LocalAddr() }

func (p *rejectingProxy) Rejected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rejected
}

func (p *rejectingProxy) frontLoop() {
	buf := make([]byte, 65536)
	for {
		n, from, err := p.front.ReadFrom(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		p.clientAddr = from
		intercept := p.remaining > 0
		p.mu.Unlock()
		if intercept {
			if kind, payload, err := DecodeFrame(buf[:n]); err == nil && kind == KindAccessRequest {
				if m, err := core.UnmarshalAccessRequest(payload); err == nil {
					p.mu.Lock()
					p.remaining--
					p.rejected++
					p.mu.Unlock()
					sid := core.NewSessionID(m.GR, m.GJ)
					frame, err := EncodeMessage(&Reject{Session: sid, Code: p.code, Reason: "synthetic backpressure"})
					if err == nil {
						_, _ = p.front.WriteTo(frame, from)
					}
					continue
				}
			}
		}
		_, _ = p.back.WriteTo(buf[:n], p.srv)
	}
}

func (p *rejectingProxy) backLoop() {
	buf := make([]byte, 65536)
	for {
		n, _, err := p.back.ReadFrom(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		ca := p.clientAddr
		p.mu.Unlock()
		if ca != nil {
			_, _ = p.front.WriteTo(buf[:n], ca)
		}
	}
}

// TestTransientRejectReArmsRetryBudget proves queue-full rejections are
// treated as backpressure, not failure: the router rejects more access
// requests than one retry budget holds, and the attach still succeeds
// because the budget is re-armed (a bounded number of times).
func TestTransientRejectReArmsRetryBudget(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-QF", "grp-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 41})
	defer srv.Close()

	// 6 rejections > the 3 sends of one (MaxRetries=2) budget: without
	// re-arming this attach cannot succeed.
	proxy := newRejectingProxy(t, srv.Addr(), RejectQueueFull, 6)

	conn := mustListen(t)
	defer conn.Close()
	cl := NewClient(conn, proxy.Addr(), ln.Users[0], ClientConfig{
		RetransmitTimeout: 40 * time.Millisecond,
		MaxTimeout:        160 * time.Millisecond,
		MaxRetries:        2,
		QueueFullResets:   3,
		Seed:              21,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sess, err := cl.Attach(ctx)
	if err != nil {
		t.Fatalf("attach through backpressure: %v", err)
	}
	if sess == nil {
		t.Fatal("nil session")
	}
	if got := proxy.Rejected(); got != 6 {
		t.Fatalf("proxy rejected %d requests, want 6", got)
	}
	if got := cl.Stats().Rejects(); got < 6 {
		t.Fatalf("client saw %d rejects, want >= 6", got)
	}

	// With re-arming disabled the same pressure must exhaust the budget
	// and surface as a timeout, proving the retries stay bounded.
	proxy2 := newRejectingProxy(t, srv.Addr(), RejectDraining, 100)
	conn2 := mustListen(t)
	defer conn2.Close()
	cl2 := NewClient(conn2, proxy2.Addr(), ln.Users[1], ClientConfig{
		RetransmitTimeout: 30 * time.Millisecond,
		MaxTimeout:        60 * time.Millisecond,
		MaxRetries:        2,
		QueueFullResets:   -1,
		Seed:              22,
	})
	if _, err := cl2.Attach(ctx); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("attach under unbounded pressure = %v, want ErrHandshakeTimeout", err)
	}
}

// TestDrainRefusesNewServesOld checks graceful drain: established
// sessions keep their keepalives answered while fresh attaches are
// refused with the transient draining code.
func TestDrainRefusesNewServesOld(t *testing.T) {
	ln, err := NewLocalNetwork(core.Config{}, "MR-DR", "grp-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	serverConn := mustListen(t)
	srv := NewServer(serverConn, ln.Router, ServerConfig{BootEpoch: 51})
	defer srv.Close()

	conn0 := mustListen(t)
	defer conn0.Close()
	cfg := testClientConfig()
	cfg.Seed = 31
	cl0 := NewClient(conn0, srv.Addr(), ln.Users[0], cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl0.Attach(ctx); err != nil {
		t.Fatal(err)
	}

	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining")
	}

	// Established session: keepalive still served.
	if res := cl0.pingOnce(ctx, 500*time.Millisecond); res != pingAcked {
		t.Fatalf("keepalive during drain = %v, want ack", res)
	}

	// New attach: refused with the transient code until the budget runs out.
	conn1 := mustListen(t)
	defer conn1.Close()
	cl1 := NewClient(conn1, srv.Addr(), ln.Users[1], ClientConfig{
		RetransmitTimeout: 30 * time.Millisecond,
		MaxTimeout:        60 * time.Millisecond,
		MaxRetries:        1,
		QueueFullResets:   1,
		Seed:              32,
	})
	if _, err := cl1.Attach(ctx); !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("attach during drain = %v, want ErrHandshakeTimeout", err)
	}
	if got := srv.Stats().DrainRejects(); got < 1 {
		t.Fatalf("drain rejects = %d, want >= 1", got)
	}
}
