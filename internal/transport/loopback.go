package transport

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/revocation"
)

// LoopbackConfig describes one loopback handshake run: N concurrent users
// driving full M.1–M.3 against one router over real UDP sockets, with
// optional induced datagram loss on both directions.
type LoopbackConfig struct {
	// Users is the number of concurrent clients. Default 16.
	Users int
	// Loss is the per-datagram drop probability applied on both the
	// server's and every client's send path (so effective round-trip loss
	// is higher). Zero disables the lossy wrapper.
	Loss float64
	// Seed makes induced loss reproducible. Default 1.
	Seed int64
	// AttachTimeout bounds one client's whole handshake. Default 30s.
	AttachTimeout time.Duration
	// Client and Server tune the endpoints.
	Client ClientConfig
	Server ServerConfig
}

func (c LoopbackConfig) withDefaults() LoopbackConfig {
	if c.Users < 1 {
		c.Users = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 30 * time.Second
	}
	return c
}

// LoopbackReport is the outcome of one loopback run.
type LoopbackReport struct {
	Users       int           `json:"users"`
	Loss        float64       `json:"loss"`
	Established int           `json:"established"`
	Failed      int           `json:"failed"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	// HandshakesPerSec is established handshakes over wall-clock time.
	HandshakesPerSec float64 `json:"handshakes_per_sec"`
	// P50/P99 are attach-latency percentiles over successful handshakes.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// ClientRetransmits / ClientTimeouts aggregate over all clients.
	ClientRetransmits int64 `json:"client_retransmits"`
	ClientTimeouts    int64 `json:"client_timeouts"`
	// Clients is the fleet-wide client instrument snapshot: every client
	// registers into one shared registry, so these counters (and the
	// attach_latency histogram) aggregate across the whole fleet.
	Clients metrics.Snapshot `json:"clients"`
	// DatagramsDropped counts datagrams the lossy wrappers discarded.
	DatagramsDropped int64 `json:"datagrams_dropped"`
	// Server holds the router-side transport counters.
	Server metrics.Snapshot `json:"server"`
	// Router holds the protocol-level router counters.
	Router core.RouterStats `json:"router"`
	// Errors lists per-user attach failures (empty on full success).
	Errors []string `json:"errors,omitempty"`
}

// RunLoopback provisions a single-router network, serves it on a real UDP
// loopback socket, and drives cfg.Users concurrent clients through the
// full AKA. Every session must be established for the run to be a
// success, but individual failures are reported, not fatal.
func RunLoopback(cfg LoopbackConfig) (*LoopbackReport, error) {
	cfg = cfg.withDefaults()
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", cfg.Users)
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	return RunLoopbackWith(ln, cfg)
}

// RunLoopbackWith is RunLoopback over an already provisioned network
// (meshd reuses its network across runs).
func RunLoopbackWith(n *LocalNetwork, cfg LoopbackConfig) (*LoopbackReport, error) {
	cfg = cfg.withDefaults()
	if len(n.Users) < cfg.Users {
		return nil, fmt.Errorf("loopback: %d users provisioned, %d requested", len(n.Users), cfg.Users)
	}

	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var serverLossy *LossyConn
	sconn := net.PacketConn(serverConn)
	if cfg.Loss > 0 {
		serverLossy = NewLossyConn(serverConn, cfg.Loss, cfg.Seed)
		sconn = serverLossy
	}
	srv := NewServer(sconn, n.Router, cfg.Server)
	defer srv.Close()
	raddr := serverConn.LocalAddr()

	type outcome struct {
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, cfg.Users)
	var dropped int64
	var droppedMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	// One registry for the whole fleet: registration is idempotent, so N
	// clients share the same counter handles and the report's client
	// numbers are a single snapshot instead of a hand-rolled sum.
	ccfg := cfg.Client
	if ccfg.Metrics == nil {
		ccfg.Metrics = metrics.NewRegistry()
	}
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				outcomes[i].err = err
				return
			}
			defer conn.Close()
			cconn := net.PacketConn(conn)
			if cfg.Loss > 0 {
				lossy := NewLossyConn(conn, cfg.Loss, cfg.Seed+int64(i)+1)
				cconn = lossy
				defer func() {
					droppedMu.Lock()
					dropped += lossy.Dropped()
					droppedMu.Unlock()
				}()
			}
			cl := NewClient(cconn, raddr, n.Users[i], ccfg)
			ctx, cancel := context.WithTimeout(context.Background(), cfg.AttachTimeout)
			defer cancel()
			t0 := time.Now()
			_, err = cl.Attach(ctx)
			outcomes[i] = outcome{latency: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoopbackReport{
		Users:   cfg.Users,
		Loss:    cfg.Loss,
		Elapsed: elapsed,
		Server:  srv.Stats().Snapshot(),
		Router:  n.Router.Stats(),
	}
	if serverLossy != nil {
		dropped += serverLossy.Dropped()
	}
	rep.DatagramsDropped = dropped
	var latencies []time.Duration
	for i, o := range outcomes {
		if o.err != nil {
			rep.Failed++
			rep.Errors = append(rep.Errors, fmt.Sprintf("user %d: %v", i, o.err))
			continue
		}
		rep.Established++
		latencies = append(latencies, o.latency)
	}
	rep.Clients = ccfg.Metrics.Snapshot()
	rep.ClientRetransmits = rep.Clients.Value("retransmits")
	rep.ClientTimeouts = rep.Clients.Value("timeouts")
	if elapsed > 0 {
		rep.HandshakesPerSec = float64(rep.Established) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		rep.P50 = latencies[len(latencies)*50/100]
		p99 := len(latencies) * 99 / 100
		if p99 >= len(latencies) {
			p99 = len(latencies) - 1
		}
		rep.P99 = latencies[p99]
	}
	return rep, nil
}

// DrillConfig describes a multi-epoch revocation-distribution drill: the
// same user population re-attaches across Rounds epochs while the
// operator revokes RevokePerRound spare credentials between rounds, so
// the URL grows and clients must converge onto each new epoch in-band.
type DrillConfig struct {
	// Users is the persistent client population. Default 8.
	Users int
	// Rounds is how many attach waves run. Default 4.
	Rounds int
	// RevokePerRound is how many spare group slots are revoked between
	// consecutive rounds. (Rounds-1)*RevokePerRound must fit the spare
	// headroom NewLocalNetwork provisions. Default 2.
	RevokePerRound int
	// AttachTimeout bounds one client's whole handshake. Default 30s.
	AttachTimeout time.Duration
	// Client and Server tune the endpoints.
	Client ClientConfig
	Server ServerConfig
}

func (c DrillConfig) withDefaults() DrillConfig {
	if c.Users < 1 {
		c.Users = 8
	}
	if c.Rounds < 1 {
		c.Rounds = 4
	}
	if c.RevokePerRound < 1 {
		c.RevokePerRound = 2
	}
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 30 * time.Second
	}
	return c
}

// DrillReport is the outcome of one revocation-distribution drill. A
// healthy run shows every client bootstrapping with at most one full
// snapshot per list (SnapshotsPerClientMax ≤ 2) and converging onto all
// later epochs via deltas alone.
type DrillReport struct {
	Users          int `json:"users"`
	Rounds         int `json:"rounds"`
	RevokePerRound int `json:"revoke_per_round"`
	// Established counts successful attaches over all rounds
	// (Users*Rounds on full success).
	Established int `json:"established"`
	// DeltaFetches / SnapshotFetches aggregate client-side applies.
	DeltaFetches    int64 `json:"delta_fetches"`
	SnapshotFetches int64 `json:"snapshot_fetches"`
	// SnapshotsPerClientMax is the worst per-client full-snapshot count;
	// >2 means some client fell off the delta path.
	SnapshotsPerClientMax int64 `json:"snapshots_per_client_max"`
	// FinalURLEpoch is the router's URL epoch after the last revocation.
	FinalURLEpoch uint64 `json:"final_url_epoch"`
	// URLSize is the final number of revoked tokens on the list.
	URLSize int `json:"url_size"`
	// Server holds the router-side transport counters.
	Server metrics.Snapshot `json:"server"`
	// Errors lists attach failures (empty on full success).
	Errors []string `json:"errors,omitempty"`
}

// RunRevocationDrill provisions a network, then alternates attach waves
// with spare-credential revocations. Users keep their installed
// revocation state across rounds, so every round after the first should
// be served by signed deltas, never by re-shipping the full URL.
func RunRevocationDrill(cfg DrillConfig) (*DrillReport, error) {
	cfg = cfg.withDefaults()
	const group = core.GroupID("grp-0")
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", group, cfg.Users)
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}

	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := NewServer(serverConn, ln.Router, cfg.Server)
	defer srv.Close()
	raddr := serverConn.LocalAddr()

	rep := &DrillReport{Users: cfg.Users, Rounds: cfg.Rounds, RevokePerRound: cfg.RevokePerRound}
	snapPerUser := make([]atomic.Int64, cfg.Users)
	var established atomic.Int64
	var errMu sync.Mutex

	for round := 0; round < cfg.Rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < cfg.Users; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				conn, err := net.ListenPacket("udp", "127.0.0.1:0")
				if err == nil {
					defer conn.Close()
					cl := NewClient(conn, raddr, ln.Users[i], cfg.Client)
					ctx, cancel := context.WithTimeout(context.Background(), cfg.AttachTimeout)
					defer cancel()
					_, err = cl.Attach(ctx)
					snapPerUser[i].Add(cl.Stats().RevSnapshotFetches())
					atomic.AddInt64(&rep.DeltaFetches, cl.Stats().RevDeltaFetches())
					atomic.AddInt64(&rep.SnapshotFetches, cl.Stats().RevSnapshotFetches())
				}
				if err != nil {
					errMu.Lock()
					rep.Errors = append(rep.Errors, fmt.Sprintf("round %d user %d: %v", round, i, err))
					errMu.Unlock()
					return
				}
				established.Add(1)
			}(i)
		}
		wg.Wait()

		if round == cfg.Rounds-1 {
			break
		}
		// Revoke spare slots (issued beyond the live population) so the
		// URL grows without cutting off any attaching user.
		for k := 0; k < cfg.RevokePerRound; k++ {
			tok, err := ln.NO.TokenOf(group, cfg.Users+round*cfg.RevokePerRound+k)
			if err != nil {
				return nil, fmt.Errorf("drill: spare slot exhausted: %w", err)
			}
			ln.NO.RevokeUserKey(tok)
		}
		if err := ln.RefreshRevocations(); err != nil {
			return nil, err
		}
		srv.InvalidateBeacon()
	}

	rep.Established = int(established.Load())
	for i := range snapPerUser {
		if n := snapPerUser[i].Load(); n > rep.SnapshotsPerClientMax {
			rep.SnapshotsPerClientMax = n
		}
	}
	rep.FinalURLEpoch = ln.Router.RevocationEpoch(revocation.ListURL)
	if snap, ok := ln.Router.RevocationSnapshot(revocation.ListURL); ok {
		rep.URLSize = len(snap.Entries)
	}
	rep.Server = srv.Stats().Snapshot()
	return rep, nil
}
