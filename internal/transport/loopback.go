package transport

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// LoopbackConfig describes one loopback handshake run: N concurrent users
// driving full M.1–M.3 against one router over real UDP sockets, with
// optional induced datagram loss on both directions.
type LoopbackConfig struct {
	// Users is the number of concurrent clients. Default 16.
	Users int
	// Loss is the per-datagram drop probability applied on both the
	// server's and every client's send path (so effective round-trip loss
	// is higher). Zero disables the lossy wrapper.
	Loss float64
	// Seed makes induced loss reproducible. Default 1.
	Seed int64
	// AttachTimeout bounds one client's whole handshake. Default 30s.
	AttachTimeout time.Duration
	// Client and Server tune the endpoints.
	Client ClientConfig
	Server ServerConfig
}

func (c LoopbackConfig) withDefaults() LoopbackConfig {
	if c.Users < 1 {
		c.Users = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 30 * time.Second
	}
	return c
}

// LoopbackReport is the outcome of one loopback run.
type LoopbackReport struct {
	Users       int           `json:"users"`
	Loss        float64       `json:"loss"`
	Established int           `json:"established"`
	Failed      int           `json:"failed"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	// HandshakesPerSec is established handshakes over wall-clock time.
	HandshakesPerSec float64 `json:"handshakes_per_sec"`
	// P50/P99 are attach-latency percentiles over successful handshakes.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// ClientRetransmits / ClientTimeouts aggregate over all clients.
	ClientRetransmits int64 `json:"client_retransmits"`
	ClientTimeouts    int64 `json:"client_timeouts"`
	// DatagramsDropped counts datagrams the lossy wrappers discarded.
	DatagramsDropped int64 `json:"datagrams_dropped"`
	// Server holds the router-side transport counters.
	Server StatsSnapshot `json:"server"`
	// Router holds the protocol-level router counters.
	Router core.RouterStats `json:"router"`
	// Errors lists per-user attach failures (empty on full success).
	Errors []string `json:"errors,omitempty"`
}

// RunLoopback provisions a single-router network, serves it on a real UDP
// loopback socket, and drives cfg.Users concurrent clients through the
// full AKA. Every session must be established for the run to be a
// success, but individual failures are reported, not fatal.
func RunLoopback(cfg LoopbackConfig) (*LoopbackReport, error) {
	cfg = cfg.withDefaults()
	ln, err := NewLocalNetwork(core.Config{}, "MR-0", "grp-0", cfg.Users)
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	return RunLoopbackWith(ln, cfg)
}

// RunLoopbackWith is RunLoopback over an already provisioned network
// (meshd reuses its network across runs).
func RunLoopbackWith(n *LocalNetwork, cfg LoopbackConfig) (*LoopbackReport, error) {
	cfg = cfg.withDefaults()
	if len(n.Users) < cfg.Users {
		return nil, fmt.Errorf("loopback: %d users provisioned, %d requested", len(n.Users), cfg.Users)
	}

	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var serverLossy *LossyConn
	sconn := net.PacketConn(serverConn)
	if cfg.Loss > 0 {
		serverLossy = NewLossyConn(serverConn, cfg.Loss, cfg.Seed)
		sconn = serverLossy
	}
	srv := NewServer(sconn, n.Router, cfg.Server)
	defer srv.Close()
	raddr := serverConn.LocalAddr()

	type outcome struct {
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, cfg.Users)
	clients := make([]*Client, cfg.Users)
	var dropped int64
	var droppedMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				outcomes[i].err = err
				return
			}
			defer conn.Close()
			cconn := net.PacketConn(conn)
			if cfg.Loss > 0 {
				lossy := NewLossyConn(conn, cfg.Loss, cfg.Seed+int64(i)+1)
				cconn = lossy
				defer func() {
					droppedMu.Lock()
					dropped += lossy.Dropped()
					droppedMu.Unlock()
				}()
			}
			cl := NewClient(cconn, raddr, n.Users[i], cfg.Client)
			clients[i] = cl
			ctx, cancel := context.WithTimeout(context.Background(), cfg.AttachTimeout)
			defer cancel()
			t0 := time.Now()
			_, err = cl.Attach(ctx)
			outcomes[i] = outcome{latency: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoopbackReport{
		Users:   cfg.Users,
		Loss:    cfg.Loss,
		Elapsed: elapsed,
		Server:  srv.Stats().Snapshot(),
		Router:  n.Router.Stats(),
	}
	if serverLossy != nil {
		dropped += serverLossy.Dropped()
	}
	rep.DatagramsDropped = dropped
	var latencies []time.Duration
	for i, o := range outcomes {
		if o.err != nil {
			rep.Failed++
			rep.Errors = append(rep.Errors, fmt.Sprintf("user %d: %v", i, o.err))
			continue
		}
		rep.Established++
		latencies = append(latencies, o.latency)
	}
	for _, cl := range clients {
		if cl == nil {
			continue
		}
		rep.ClientRetransmits += cl.Stats().Retransmits()
		rep.ClientTimeouts += cl.Stats().Timeouts()
	}
	if elapsed > 0 {
		rep.HandshakesPerSec = float64(rep.Established) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		rep.P50 = latencies[len(latencies)*50/100]
		p99 := len(latencies) * 99 / 100
		if p99 >= len(latencies) {
			p99 = len(latencies) - 1
		}
		rep.P99 = latencies[p99]
	}
	return rep, nil
}
