package transport

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
)

// ServerConfig tunes the router-side datapath.
type ServerConfig struct {
	// BeaconRefresh is how long a cached beacon frame is served before a
	// fresh one is generated (the unicast analogue of the broadcast
	// beacon period). Default 1s.
	BeaconRefresh time.Duration
	// BeaconHistory is how many recent beacons stay acceptable: clients
	// holding a slightly stale beacon can still complete the handshake
	// while older DH shares are retired. Default 16.
	BeaconHistory int
	// QueueCapacity bounds the ingest queue (backpressure under
	// overload). Default 1024.
	QueueCapacity int
	// MaxBatch bounds one verification batch. Default 4 × NumCPU.
	MaxBatch int
	// ReplyCacheSize bounds the duplicate-suppression cache of answered
	// sessions. Default 4096.
	ReplyCacheSize int
	// BootEpoch identifies this process incarnation. It is carried in the
	// signed beacon and echoed in keepalive pongs, so clients detect a
	// restart through an authenticated channel. Zero draws a random epoch
	// (the production choice); tests pin it for determinism.
	BootEpoch uint64
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.BeaconRefresh <= 0 {
		c.BeaconRefresh = time.Second
	}
	if c.BeaconHistory < 1 {
		c.BeaconHistory = 16
	}
	if c.QueueCapacity < 1 {
		c.QueueCapacity = 1024
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 4 * runtime.NumCPU()
	}
	if c.ReplyCacheSize < 1 {
		c.ReplyCacheSize = 4096
	}
	if c.BootEpoch == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.BootEpoch = binary.BigEndian.Uint64(b[:])
		}
		if c.BootEpoch == 0 {
			c.BootEpoch = 1 // never advertise the "unset" epoch
		}
	}
	return c
}

// replyEntry is the duplicate-suppression state of one session: nil frame
// while the request is in the verification pipeline, the cached confirm
// (or reject) frame afterwards so retransmitted requests are answered by
// replay instead of a second expensive verification.
type replyEntry struct {
	frame []byte
}

// Server is the router side of the transport: a concurrent loop that
// reads datagrams, decodes frames, answers beacon solicitations from a
// cached frame, and feeds access requests through the router's bounded
// ingest queue so bursts hit the batch-verification pipeline.
type Server struct {
	cfg    ServerConfig
	conn   net.PacketConn
	router *core.MeshRouter
	queue  *core.IngestQueue
	stats  Stats

	mu          sync.Mutex
	beaconFrame []byte
	beaconAt    time.Time
	beaconGRs   []*bn256.G1
	replies     map[core.SessionID]*replyEntry
	replyOrder  []core.SessionID
	draining    bool
	closed      bool

	// revMu guards the per-list caches of encoded revocation frames: the
	// current snapshot frame plus delta frames keyed by from-epoch, all
	// invalidated when the router's installed epoch moves. Bounded by the
	// operator's delta history.
	revMu    sync.Mutex
	revCache map[revocation.List]*revFrameCache

	wg       sync.WaitGroup
	loopDone chan struct{}
}

// NewServer starts serving router on conn. Close the server (not the
// conn) to shut down.
func NewServer(conn net.PacketConn, router *core.MeshRouter, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		conn:     conn,
		router:   router,
		queue:    core.NewIngestQueue(router, cfg.QueueCapacity, cfg.MaxBatch),
		replies:  make(map[core.SessionID]*replyEntry),
		revCache: make(map[revocation.List]*revFrameCache),
		loopDone: make(chan struct{}),
	}
	// The epoch rides the signed beacon body, so clients learn it through
	// an authenticated channel at attach time.
	router.SetBootEpoch(cfg.BootEpoch)
	s.stats.bootEpoch.Store(cfg.BootEpoch)
	go s.readLoop()
	return s
}

// BootEpoch returns this server incarnation's boot epoch.
func (s *Server) BootEpoch() uint64 { return s.cfg.BootEpoch }

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Stats returns the transport counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Router returns the served router (for RouterStats reporting).
func (s *Server) Router() *core.MeshRouter { return s.router }

// Close stops the read loop, drains the ingest queue and waits for
// in-flight replies.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.conn.Close()
	<-s.loopDone
	s.queue.Close()
	s.wg.Wait()
}

// Drain puts the server into graceful shutdown: new access requests are
// refused with RejectDraining (a transient code — clients back off and
// retry against the replacement) while beacons, keepalives and in-flight
// verifications keep being served. Drain returns once every reply that
// was in flight when draining began has been delivered, or when ctx ends.
// Call Close afterwards to stop the read loop.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// readLoop is the single socket reader; expensive work (signature
// verification) happens on the ingest queue's drainer and the per-reply
// goroutines, so the loop itself keeps up with bursts.
func (s *Server) readLoop() {
	defer close(s.loopDone)
	buf := make([]byte, 65536)
	for {
		n, addr, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			s.logf("transport: read: %v", err)
			return
		}
		s.stats.bytesIn.Add(int64(n))
		kind, payload, err := DecodeFrame(buf[:n])
		if err != nil {
			s.stats.decodeErrors.Add(1)
			continue
		}
		s.stats.framesIn.Add(1)
		switch kind {
		case KindBeaconRequest:
			s.sendBeacon(addr)
		case KindAccessRequest:
			// The decoded message owns its memory (fresh curve points and
			// copied byte fields), so buf can be reused immediately.
			m, err := core.UnmarshalAccessRequest(payload)
			if err != nil {
				s.stats.decodeErrors.Add(1)
				continue
			}
			s.handleAccessRequest(m, addr)
		case KindURLSnapshotRequest:
			f, err := UnmarshalRevocationFetch(payload)
			if err != nil {
				s.stats.decodeErrors.Add(1)
				continue
			}
			s.handleRevocationFetch(f, addr)
		case KindSessionPing:
			f, err := core.UnmarshalDataFrame(payload)
			if err != nil {
				s.stats.decodeErrors.Add(1)
				continue
			}
			s.handleSessionPing(f, addr)
		default:
			// Peer AKA, URL/CRL pushes etc. are not served on a router
			// socket; count and drop.
			s.stats.unhandled.Add(1)
		}
	}
}

// sendBeacon answers a beacon solicitation from the cached frame,
// regenerating it when the refresh period elapsed and retiring DH shares
// that fall out of the history window.
func (s *Server) sendBeacon(addr net.Addr) {
	now := time.Now()
	s.mu.Lock()
	if s.beaconFrame == nil || now.Sub(s.beaconAt) >= s.cfg.BeaconRefresh {
		b, err := s.router.Beacon()
		if err != nil {
			s.mu.Unlock()
			s.logf("transport: beacon: %v", err)
			return
		}
		frame, err := EncodeMessage(b)
		if err != nil {
			s.mu.Unlock()
			s.logf("transport: encode beacon: %v", err)
			return
		}
		s.beaconFrame = frame
		s.beaconAt = now
		s.beaconGRs = append(s.beaconGRs, b.GR)
		for len(s.beaconGRs) > s.cfg.BeaconHistory {
			s.router.RetireBeacon(s.beaconGRs[0])
			s.beaconGRs = s.beaconGRs[1:]
		}
	}
	frame := s.beaconFrame
	s.mu.Unlock()
	s.writeTo(frame, addr)
}

// revFrameCache holds encoded frames of one list's current revocation
// state so a flash crowd of converging clients is served without
// re-marshaling per request.
type revFrameCache struct {
	epoch     uint64
	snapFrame []byte
	deltas    map[uint64][]byte // keyed by from-epoch
}

// handleRevocationFetch answers a RevocationFetch: a delta from the
// client's epoch when the router's bounded history still covers it, the
// full snapshot otherwise.
func (s *Server) handleRevocationFetch(f *RevocationFetch, addr net.Addr) {
	snap, ok := s.router.RevocationSnapshot(f.List)
	if !ok {
		s.stats.unhandled.Add(1)
		return
	}

	s.revMu.Lock()
	c := s.revCache[f.List]
	if c == nil || c.epoch != snap.Epoch {
		c = &revFrameCache{epoch: snap.Epoch, deltas: make(map[uint64][]byte)}
		s.revCache[f.List] = c
	}
	var frame []byte
	var isDelta bool
	if f.Have && f.HaveEpoch < snap.Epoch {
		if cached, ok := c.deltas[f.HaveEpoch]; ok {
			frame, isDelta = cached, true
		} else if d, ok := s.router.RevocationDelta(f.List, f.HaveEpoch); ok {
			if enc, err := EncodeMessage(d); err == nil {
				c.deltas[f.HaveEpoch] = enc
				frame, isDelta = enc, true
			}
		}
	}
	if frame == nil {
		if c.snapFrame == nil {
			enc, err := EncodeMessage(snap)
			if err != nil {
				s.revMu.Unlock()
				s.logf("transport: encode snapshot: %v", err)
				return
			}
			c.snapFrame = enc
		}
		frame = c.snapFrame
	}
	s.revMu.Unlock()

	if isDelta {
		s.stats.revDeltaFetches.Add(1)
	} else {
		s.stats.revSnapshotFetches.Add(1)
	}
	s.stats.setEpochs(s.router.RevocationEpoch(revocation.ListURL), s.router.RevocationEpoch(revocation.ListCRL))
	s.writeTo(frame, addr)
}

// InvalidateBeacon drops the cached beacon frame so the next solicitation
// gets a fresh one — call after pushing new revocation state to the
// router, whose refs the cached beacon no longer advertises.
func (s *Server) InvalidateBeacon() {
	s.mu.Lock()
	s.beaconFrame = nil
	s.mu.Unlock()
	s.stats.setEpochs(s.router.RevocationEpoch(revocation.ListURL), s.router.RevocationEpoch(revocation.ListCRL))
}

// handleAccessRequest dedups by session identifier, then submits to the
// ingest queue; the reply (confirm or reject) is cached so retransmitted
// requests — the client's recovery from a lost M.3 — are answered by
// replay, never by a second verification.
func (s *Server) handleAccessRequest(m *core.AccessRequest, addr net.Addr) {
	sid := core.NewSessionID(m.GR, m.GJ)

	s.mu.Lock()
	if s.draining {
		// Refuse new work during graceful shutdown — but keep replaying
		// cached replies below so a client whose M.3 was lost right before
		// the drain still completes.
		if e, ok := s.replies[sid]; !ok || e.frame == nil {
			s.mu.Unlock()
			s.stats.drainRejects.Add(1)
			s.sendRejectCode(addr, sid, RejectDraining, "server draining")
			return
		}
	}
	if e, ok := s.replies[sid]; ok {
		frame := e.frame
		s.mu.Unlock()
		s.stats.duplicates.Add(1)
		if frame != nil {
			s.writeTo(frame, addr)
		}
		return
	}
	s.replies[sid] = &replyEntry{}
	s.replyOrder = append(s.replyOrder, sid)
	for len(s.replyOrder) > s.cfg.ReplyCacheSize {
		delete(s.replies, s.replyOrder[0])
		s.replyOrder = s.replyOrder[1:]
	}
	s.mu.Unlock()

	ch, err := s.queue.Submit(m)
	if err != nil {
		// Shed under overload; forget the session so a later retry can be
		// admitted once the queue drains.
		s.stats.queueDrops.Add(1)
		s.mu.Lock()
		delete(s.replies, sid)
		s.mu.Unlock()
		s.sendReject(addr, sid, err)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res := <-ch
		var frame []byte
		if res.Err != nil {
			code := rejectCodeFor(res.Err)
			rej := &Reject{Session: sid, Code: code, Reason: res.Err.Error()}
			frame, err = EncodeMessage(rej)
			s.stats.rejects.Add(1)
			if code == RejectRevoked {
				s.stats.revRejects.Add(1)
			}
		} else {
			frame, err = EncodeMessage(res.Confirm)
		}
		if err != nil {
			s.logf("transport: encode reply: %v", err)
			return
		}
		s.mu.Lock()
		if e, ok := s.replies[sid]; ok {
			e.frame = frame
		}
		s.mu.Unlock()
		s.writeTo(frame, addr)
	}()
}

// handleSessionPing answers a keepalive ping. Only a server that still
// holds the session can decrypt the ping and seal a pong, so the pong is
// proof of liveness; a rebooted server answers RejectUnknownSession — the
// unauthenticated hint clients confirm against the signed beacon epoch.
func (s *Server) handleSessionPing(f *core.DataFrame, addr net.Addr) {
	sess, ok := s.router.SessionByID(f.Session)
	if !ok {
		s.stats.unknownSessionRejects.Add(1)
		s.sendRejectCode(addr, f.Session, RejectUnknownSession, "no such session")
		return
	}
	body, err := sess.OpenData(f)
	if err != nil {
		// Forged, corrupted or replayed (duplicated) ping; the next round's
		// ping carries a fresh sequence number, so dropping it is safe.
		s.stats.decodeErrors.Add(1)
		return
	}
	pb, err := UnmarshalPingBody(body)
	if err != nil {
		s.stats.decodeErrors.Add(1)
		return
	}
	pong := &PongBody{Nonce: pb.Nonce, BootEpoch: s.cfg.BootEpoch}
	df, err := sess.SealData(rand.Reader, pong.Marshal())
	if err != nil {
		s.logf("transport: seal pong: %v", err)
		return
	}
	frame, err := EncodeMessage(&SessionPong{Frame: df})
	if err != nil {
		s.logf("transport: encode pong: %v", err)
		return
	}
	s.stats.keepalivesServed.Add(1)
	s.writeTo(frame, addr)
}

func (s *Server) sendReject(addr net.Addr, sid core.SessionID, cause error) {
	s.sendRejectCode(addr, sid, rejectCodeFor(cause), cause.Error())
}

func (s *Server) sendRejectCode(addr net.Addr, sid core.SessionID, code RejectCode, reason string) {
	rej := &Reject{Session: sid, Code: code, Reason: reason}
	frame, err := EncodeMessage(rej)
	if err != nil {
		s.logf("transport: encode reject: %v", err)
		return
	}
	s.stats.rejects.Add(1)
	s.writeTo(frame, addr)
}

func (s *Server) writeTo(frame []byte, addr net.Addr) {
	n, err := s.conn.WriteTo(frame, addr)
	if err != nil {
		s.logf("transport: write to %v: %v", addr, err)
		return
	}
	s.stats.framesOut.Add(1)
	s.stats.bytesOut.Add(int64(n))
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("transport.Server(%s on %v)", s.router.ID(), s.conn.LocalAddr())
}
