package transport

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/transport/batchio"
)

// ServerConfig tunes the router-side datapath.
type ServerConfig struct {
	// BeaconRefresh is how long a cached beacon frame is served before a
	// fresh one is generated (the unicast analogue of the broadcast
	// beacon period). Default 1s.
	BeaconRefresh time.Duration
	// BeaconHistory is how many recent beacons stay acceptable: clients
	// holding a slightly stale beacon can still complete the handshake
	// while older DH shares are retired. Default 16.
	BeaconHistory int
	// QueueCapacity bounds the ingest queue (backpressure under
	// overload). Default 1024.
	QueueCapacity int
	// MaxBatch bounds one verification batch. Default 4 × NumCPU.
	MaxBatch int
	// ReplyCacheSize bounds the duplicate-suppression cache of answered
	// exchanges (striped FIFO eviction). Default 4096.
	ReplyCacheSize int
	// DeltaCacheSize bounds, per revocation list, how many encoded delta
	// frames stay cached for the current epoch (FIFO eviction). Default 64.
	DeltaCacheSize int
	// Shards is how many read loops serve the socket(s). With one socket,
	// Shards loops share it (userspace demux); NewShardedServer runs one
	// loop per SO_REUSEPORT socket instead. Default 1.
	Shards int
	// BootEpoch identifies this process incarnation. It is carried in the
	// signed beacon and echoed in keepalive pongs, so clients detect a
	// restart through an authenticated channel. Zero draws a random epoch
	// (the production choice); tests pin it for determinism.
	BootEpoch uint64
	// TicketKeys is the STEK ring sealing resumption tickets. Nil draws a
	// fresh ring (tickets then die with the process); operators that want
	// tickets to survive restarts share one ring across incarnations.
	TicketKeys *symcrypto.TicketKeyRing
	// TicketLifetime bounds how long an issued ticket resumes. Default 10m.
	TicketLifetime time.Duration
	// TicketFreshness bounds the age of a resume request's timestamp —
	// beyond it, replayed requests whose reply-cache entry was evicted are
	// refused instead of minting yet another session. Default 30s.
	TicketFreshness time.Duration
	// IOBatch is how many datagrams one recvmmsg/sendmmsg moves per
	// syscall on each shard loop (and the egress coalescing width).
	// 1 forces the portable single-datagram path — the unbatched
	// baseline E18 compares against. Default 32.
	IOBatch int
	// FlushDelay bounds how long a reply may sit in the egress spooler
	// waiting for batch-mates; read loops flush after every ingest batch,
	// so the delay only governs asynchronously produced frames (access
	// confirms). Default 100µs.
	FlushDelay time.Duration
	// EchoData makes the server seal each delivered data-frame payload
	// back to its sender — the application-level echo sink E18 and the
	// data-plane drills measure round trips against.
	EchoData bool
	// Metrics is the registry the server's instruments resolve in. Nil
	// creates a private registry, reachable via Stats().Registry().
	Metrics *metrics.Registry
	// RateLimitPerSec, when positive, arms a per-source token bucket on
	// the attach/resume ingress: each source IP may start at most this
	// many handshake exchanges per second (sustained), with RateLimitBurst
	// headroom. Over-budget datagrams are dropped before any decode work
	// and counted in ratelimit_dropped. Zero disables the limiter.
	RateLimitPerSec float64
	// RateLimitBurst is the per-source bucket depth. Default 2× the rate
	// (minimum 1) so short legitimate bursts — a fleet re-attaching after
	// a restart — are not shed.
	RateLimitBurst int
	// DoSSampleInterval paces the load sampler that feeds the router's
	// adaptive puzzle-difficulty controller (queue depth, limiter drops,
	// admitted handshakes) and mirrors its state into the dos_* gauges.
	// The sampler always runs — it is a no-op unless the router has a
	// DoSPolicy installed. Default 250ms.
	DoSSampleInterval time.Duration
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.BeaconRefresh <= 0 {
		c.BeaconRefresh = time.Second
	}
	if c.BeaconHistory < 1 {
		c.BeaconHistory = 16
	}
	if c.QueueCapacity < 1 {
		c.QueueCapacity = 1024
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 4 * runtime.NumCPU()
	}
	if c.ReplyCacheSize < 1 {
		c.ReplyCacheSize = 4096
	}
	if c.DeltaCacheSize < 1 {
		c.DeltaCacheSize = 64
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.TicketLifetime <= 0 {
		c.TicketLifetime = 10 * time.Minute
	}
	if c.TicketFreshness <= 0 {
		c.TicketFreshness = 30 * time.Second
	}
	if c.IOBatch < 1 {
		c.IOBatch = 32
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = 100 * time.Microsecond
	}
	if c.DoSSampleInterval <= 0 {
		c.DoSSampleInterval = 250 * time.Millisecond
	}
	if c.BootEpoch == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.BootEpoch = binary.BigEndian.Uint64(b[:])
		}
		if c.BootEpoch == 0 {
			c.BootEpoch = 1 // never advertise the "unset" epoch
		}
	}
	return c
}

// Server is the router side of the transport: N shard loops read
// datagrams, decode frames with per-shard scratch state, answer beacon
// solicitations from a cached frame, serve ticket resumptions inline
// (symmetric crypto only), and feed access requests through the router's
// bounded ingest queue so bursts hit the batch-verification pipeline.
type Server struct {
	cfg     ServerConfig
	conns   []net.PacketConn
	router  *core.MeshRouter
	queue   *core.IngestQueue
	stats   *Stats
	limiter *rateLimiter
	tickets *symcrypto.TicketKeyRing

	// beaconMu guards the cached beacon frame and its DH-share history.
	beaconMu    sync.Mutex
	beaconFrame []byte
	beaconAt    time.Time
	beaconGRs   []*bn256.G1

	// replies is the striped, bounded duplicate-suppression cache shared
	// by all shard loops (access requests and resumes alike).
	replies *replyCache

	// dosReplay remembers which source first presented each accepted
	// puzzle solution (dosgate.go); handshakesSeen counts handshake
	// datagrams admitted past the limiter — the drop fraction's
	// denominator in the controller's load samples. dosStop ends the
	// sampler loop at Close.
	dosReplay      *solutionReplayTable
	handshakesSeen atomic.Int64
	dosStop        chan struct{}

	// ingestPool backs the read rings (full-datagram buffers); framePool
	// backs pooled egress frames (replies sealed in place). Both are
	// leak-checked: every Get has an owner responsible for Release.
	ingestPool *batchio.Pool
	framePool  *batchio.Pool

	// backbone holds the metro-plane hooks, installed by the backbone
	// node after construction (atomically, so the read loops never lock).
	backbone atomic.Pointer[backboneHooks]

	draining atomic.Bool
	closed   atomic.Bool

	// revMu guards the per-list caches of encoded revocation frames: the
	// current snapshot frame plus a bounded set of delta frames keyed by
	// from-epoch, all invalidated when the router's installed epoch moves.
	revMu    sync.Mutex
	revCache map[revocation.List]*revFrameCache

	wg    sync.WaitGroup // in-flight reply goroutines
	loops sync.WaitGroup // shard read loops
}

// NewServer starts serving router on conn. With cfg.Shards > 1, that many
// read loops share the one socket (userspace demux); use NewShardedServer
// with ListenShards sockets for kernel-demuxed SO_REUSEPORT sharding.
// Close the server (not the conn) to shut down.
func NewServer(conn net.PacketConn, router *core.MeshRouter, cfg ServerConfig) *Server {
	return newServer([]net.PacketConn{conn}, router, cfg)
}

// NewShardedServer starts serving router on a set of sockets sharing one
// UDP port (see ListenShards), one read loop per socket.
func NewShardedServer(conns []net.PacketConn, router *core.MeshRouter, cfg ServerConfig) *Server {
	if len(conns) == 0 {
		panic("transport: NewShardedServer needs at least one socket")
	}
	if len(conns) > 1 {
		cfg.Shards = len(conns)
	}
	// With one socket (the ListenShards fallback where SO_REUSEPORT is
	// unavailable) cfg.Shards still governs how many loops demux it.
	return newServer(conns, router, cfg)
}

func newServer(conns []net.PacketConn, router *core.MeshRouter, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		conns:      conns,
		router:     router,
		queue:      core.NewIngestQueue(router, cfg.QueueCapacity, cfg.MaxBatch),
		stats:      NewStats(cfg.Metrics),
		tickets:    cfg.TicketKeys,
		replies:    newReplyCache(cfg.ReplyCacheSize),
		revCache:   make(map[revocation.List]*revFrameCache),
		ingestPool: batchio.NewPool(65536),
		framePool:  batchio.NewPool(egressFrameSize),
		dosReplay:  newSolutionReplayTable(dosReplayCap),
		dosStop:    make(chan struct{}),
	}
	if cfg.RateLimitPerSec > 0 {
		burst := cfg.RateLimitBurst
		if burst <= 0 {
			burst = int(2 * cfg.RateLimitPerSec)
		}
		s.limiter = newRateLimiter(cfg.RateLimitPerSec, burst, nil)
	}
	if s.tickets == nil {
		ring, err := symcrypto.NewTicketKeyRing(rand.Reader)
		if err == nil {
			s.tickets = ring
		}
		// On rng failure s.tickets stays nil: the server simply issues no
		// tickets and refuses resumes, degrading to full handshakes.
	}
	// The epoch rides the signed beacon body, so clients learn it through
	// an authenticated channel at attach time.
	router.SetBootEpoch(cfg.BootEpoch)
	s.stats.bootEpoch.Store(cfg.BootEpoch)

	// One loop per socket; a single socket gets cfg.Shards loops instead.
	nloops := len(conns)
	if nloops == 1 && cfg.Shards > 1 {
		nloops = cfg.Shards
	}
	s.stats.shards.Store(int64(nloops))
	for i := 0; i < nloops; i++ {
		conn := conns[i%len(conns)]
		s.loops.Add(1)
		go s.readLoop(conn)
	}
	s.loops.Add(1)
	go s.dosSampleLoop()
	return s
}

// ListenShards opens n UDP sockets sharing one port on addr. Where
// SO_REUSEPORT is available (Linux) each socket is kernel-demuxed with a
// private receive queue; elsewhere a single socket comes back and the
// server's shard loops share it. Pass the result to NewShardedServer.
func ListenShards(addr string, n int) ([]net.PacketConn, error) {
	if n < 1 {
		n = 1
	}
	if !reusePortAvailable || n == 1 {
		conn, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, err
		}
		return []net.PacketConn{conn}, nil
	}
	lc := net.ListenConfig{Control: setReusePort}
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conns := []net.PacketConn{first}
	// Subsequent sockets bind the concrete address the first one got (addr
	// may have asked for an ephemeral port).
	bound := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		c, err := lc.ListenPacket(context.Background(), "udp", bound)
		if err != nil {
			for _, o := range conns {
				_ = o.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Forwarder relays a data frame whose session this router does not hold
// toward the router that owns it (the backbone's ownership table + routing
// plane). It reports whether the frame was put on a backbone link; false
// sends the client the usual unknown-session reject. The frame is only
// valid for the duration of the call — implementations must copy or
// marshal it before returning.
type Forwarder interface {
	ForwardData(f *core.DataFrame) bool
}

// HandoffObserver learns that this server adopted a roaming session whose
// ticket another router issued: prev is the session the ticket resumed
// from, next the freshly derived session, prevRouter the issuer. The
// backbone node announces the transfer on the gossip plane.
type HandoffObserver interface {
	HandoffAdopted(prev, next core.SessionID, prevRouter string)
}

// backboneHooks bundles the metro-plane callbacks so one atomic pointer
// swap installs both.
type backboneHooks struct {
	forward Forwarder
	observe HandoffObserver
}

// SetBackbone installs the metro-plane hooks. Call before user traffic
// arrives (the backbone node does this at construction); pass nils to
// detach.
func (s *Server) SetBackbone(fw Forwarder, obs HandoffObserver) {
	if fw == nil && obs == nil {
		s.backbone.Store(nil)
		return
	}
	s.backbone.Store(&backboneHooks{forward: fw, observe: obs})
}

// BootEpoch returns this server incarnation's boot epoch.
func (s *Server) BootEpoch() uint64 { return s.cfg.BootEpoch }

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.conns[0].LocalAddr() }

// Shards returns how many read loops are serving.
func (s *Server) Shards() int { return int(s.stats.shards.Load()) }

// TicketKeys returns the STEK ring (for rotation by the operator loop).
func (s *Server) TicketKeys() *symcrypto.TicketKeyRing { return s.tickets }

// Stats returns the transport counters.
func (s *Server) Stats() *Stats {
	s.stats.replyCacheSize.Store(s.replies.Len())
	return s.stats
}

// Router returns the served router (for RouterStats reporting).
func (s *Server) Router() *core.MeshRouter { return s.router }

// Close stops the read loops, drains the ingest queue and waits for
// in-flight replies.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, conn := range s.conns {
		_ = conn.Close()
	}
	close(s.dosStop)
	s.loops.Wait()
	s.queue.Close()
	s.wg.Wait()
}

// Drain puts the server into graceful shutdown: new access requests are
// refused with RejectDraining (a transient code — clients back off and
// retry against the replacement) while beacons, keepalives and in-flight
// verifications keep being served. Drain returns once every reply that
// was in flight when draining began has been delivered, or when ctx ends.
// Call Close afterwards to stop the read loops.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// egressFrameSize is the buffer class of the egress frame pool — large
// enough for sealed replies on the steady-state data path; oversize
// payloads grow the slice (one allocation) and the grown buffer is
// retired on release.
const egressFrameSize = 2048

// shardLoop is one read loop's private state: the batch conn, its ring
// of pooled ingest slots, the coalescing egress, and the zero-copy
// decode/open scratch. Nothing here is shared between loops.
type shardLoop struct {
	bc   batchio.Conn
	ring *batchio.Ring
	eg   *batchio.Egress

	scratchFrame  core.DataFrame
	scratchResume ResumeRequest
	// pt is the open-plaintext scratch of the data path.
	pt []byte
}

// readLoop is one shard's socket reader. Datagrams arrive up to IOBatch
// per recvmmsg into the ring's pooled slots; each slot's bytes belong to
// the ring until the next Prepare, and a handler that must keep them
// longer takes explicit ownership (Ring.Retain / clone) — there is no
// implicit "finish before the next read reuses buf" contract anymore.
// Expensive work (signature verification) happens on the ingest queue's
// drainer and the per-reply goroutines; resumes, keepalives, and data
// frames are symmetric-crypto cheap and are served inline with per-loop
// scratch state, so the steady-state decode, open, and sealed-echo paths
// allocate nothing. Replies coalesce in the egress and leave in one
// sendmmsg per ingest batch.
func (s *Server) readLoop(conn net.PacketConn) {
	defer s.loops.Done()
	var bc batchio.Conn
	if s.cfg.IOBatch > 1 {
		var batched bool
		bc, batched = batchio.Upgrade(conn)
		if batched {
			s.stats.batchedIO.Store(1)
		}
	} else {
		bc = batchio.Single(conn)
	}
	l := &shardLoop{
		bc:   bc,
		ring: batchio.NewRing(s.cfg.IOBatch, s.ingestPool),
		eg:   batchio.NewEgress(bc, s.cfg.IOBatch, s.cfg.FlushDelay, s.framePool, s.noteFlush),
		pt:   make([]byte, 0, 65536),
	}
	defer l.ring.Close()
	defer l.eg.Close()
	for {
		ms := l.ring.Prepare()
		n, err := bc.ReadBatch(ms)
		if err != nil {
			if s.closed.Load() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			s.logf("transport: read: %v", err)
			return
		}
		s.stats.readBatches.Add(1)
		s.stats.readDatagrams.Add(int64(n))
		for i := 0; i < n; i++ {
			s.dispatch(l, &ms[i])
		}
		l.eg.Flush()
	}
}

// dispatch decodes and serves one ingest slot.
func (s *Server) dispatch(l *shardLoop, m *batchio.Message) {
	s.stats.bytesIn.Add(int64(m.N))
	kind, payload, err := DecodeFrame(m.Payload())
	if err != nil {
		s.stats.decodeErrors.Add(1)
		return
	}
	s.stats.framesIn.Add(1)
	addr := m.Addr
	switch kind {
	case KindBeaconRequest:
		s.sendBeacon(l, addr)
	case KindAccessRequest:
		if s.limiter != nil && !s.limiter.allow(addr) {
			s.stats.ratelimitDropped.Add(1)
			return
		}
		s.handshakesSeen.Add(1)
		// Puzzle gate before the decode: while defense is active,
		// solution-less and wrongly solved datagrams are refused off the
		// raw bytes, so a flood never buys curve work (dosgate.go).
		if !s.gateAccessRequest(l, payload, addr) {
			return
		}
		// The decoded message owns its memory (fresh curve points and
		// copied byte fields), so the slot can be reused immediately.
		req, err := core.UnmarshalAccessRequest(payload)
		if err != nil {
			// Garbage shaped like an access request is exactly the cheap
			// flood the adaptive monitor watches for.
			s.stats.decodeErrors.Add(1)
			s.router.RecordDoSFailure()
			return
		}
		s.handleAccessRequest(l, req, addr)
	case KindResumeRequest:
		if s.limiter != nil && !s.limiter.allow(addr) {
			s.stats.ratelimitDropped.Add(1)
			return
		}
		s.handshakesSeen.Add(1)
		// Zero-copy decode into per-loop scratch: the handler finishes
		// with the request before this dispatch returns, and the slot
		// stays untouched until the next Prepare.
		if err := UnmarshalResumeRequestInto(payload, &l.scratchResume); err != nil {
			s.stats.decodeErrors.Add(1)
			s.router.RecordDoSFailure()
			return
		}
		if !s.gateResumeRequest(l, &l.scratchResume, addr) {
			return
		}
		s.handleResumeRequest(l, &l.scratchResume, addr)
	case KindURLSnapshotRequest:
		f, err := UnmarshalRevocationFetch(payload)
		if err != nil {
			s.stats.decodeErrors.Add(1)
			return
		}
		s.handleRevocationFetch(l, f, addr)
	case KindSessionPing:
		if err := core.UnmarshalDataFrameInto(payload, &l.scratchFrame); err != nil {
			s.stats.decodeErrors.Add(1)
			return
		}
		s.handleSessionPing(l, &l.scratchFrame, addr)
	case KindSessionData:
		if err := core.UnmarshalDataFrameInto(payload, &l.scratchFrame); err != nil {
			s.stats.decodeErrors.Add(1)
			return
		}
		s.handleSessionData(l, &l.scratchFrame, addr)
	default:
		// Peer AKA, URL/CRL pushes etc. are not served on a router
		// socket; count and drop.
		s.stats.unhandled.Add(1)
	}
}

// noteFlush observes one egress batch leaving the socket.
func (s *Server) noteFlush(frames, bytes int) {
	s.stats.framesOut.Add(int64(frames))
	s.stats.bytesOut.Add(int64(bytes))
	s.stats.writeBatches.Add(1)
	s.stats.writeDatagrams.Add(int64(frames))
}

// sendBeacon answers a beacon solicitation from the cached frame,
// regenerating it when the refresh period elapsed and retiring DH shares
// that fall out of the history window.
func (s *Server) sendBeacon(l *shardLoop, addr net.Addr) {
	now := time.Now()
	s.beaconMu.Lock()
	if s.beaconFrame == nil || now.Sub(s.beaconAt) >= s.cfg.BeaconRefresh {
		b, err := s.router.Beacon()
		if err != nil {
			s.beaconMu.Unlock()
			s.logf("transport: beacon: %v", err)
			return
		}
		frame, err := EncodeMessage(b)
		if err != nil {
			s.beaconMu.Unlock()
			s.logf("transport: encode beacon: %v", err)
			return
		}
		s.beaconFrame = frame
		s.beaconAt = now
		s.beaconGRs = append(s.beaconGRs, b.GR)
		for len(s.beaconGRs) > s.cfg.BeaconHistory {
			s.router.RetireBeacon(s.beaconGRs[0])
			s.beaconGRs = s.beaconGRs[1:]
		}
	}
	frame := s.beaconFrame
	s.beaconMu.Unlock()
	l.eg.Queue(frame, addr)
}

// revFrameCache holds encoded frames of one list's current revocation
// state so a flash crowd of converging clients is served without
// re-marshaling per request. Delta frames are bounded (FIFO) so a long
// epoch with many distinct client states cannot grow it without limit.
type revFrameCache struct {
	epoch      uint64
	snapFrame  []byte
	deltas     map[uint64][]byte // keyed by from-epoch
	deltaOrder []uint64
}

// handleRevocationFetch answers a RevocationFetch: a delta from the
// client's epoch when the router's bounded history still covers it, the
// full snapshot otherwise.
func (s *Server) handleRevocationFetch(l *shardLoop, f *RevocationFetch, addr net.Addr) {
	snap, ok := s.router.RevocationSnapshot(f.List)
	if !ok {
		s.stats.unhandled.Add(1)
		return
	}

	s.revMu.Lock()
	c := s.revCache[f.List]
	if c == nil || c.epoch != snap.Epoch {
		if c != nil {
			s.stats.deltaCacheFrames.Add(-int64(len(c.deltas)))
		}
		c = &revFrameCache{epoch: snap.Epoch, deltas: make(map[uint64][]byte)}
		s.revCache[f.List] = c
	}
	var frame []byte
	var isDelta bool
	if f.Have && f.HaveEpoch < snap.Epoch {
		if cached, ok := c.deltas[f.HaveEpoch]; ok {
			frame, isDelta = cached, true
		} else if d, ok := s.router.RevocationDelta(f.List, f.HaveEpoch); ok {
			if enc, err := EncodeMessage(d); err == nil {
				c.deltas[f.HaveEpoch] = enc
				c.deltaOrder = append(c.deltaOrder, f.HaveEpoch)
				evicted := 0
				for len(c.deltaOrder) > s.cfg.DeltaCacheSize {
					delete(c.deltas, c.deltaOrder[0])
					c.deltaOrder = c.deltaOrder[1:]
					evicted++
				}
				s.stats.deltaCacheFrames.Add(int64(1 - evicted))
				frame, isDelta = enc, true
			}
		}
	}
	if frame == nil {
		if c.snapFrame == nil {
			enc, err := EncodeMessage(snap)
			if err != nil {
				s.revMu.Unlock()
				s.logf("transport: encode snapshot: %v", err)
				return
			}
			c.snapFrame = enc
		}
		frame = c.snapFrame
	}
	s.revMu.Unlock()

	if isDelta {
		s.stats.revDeltaFetches.Add(1)
	} else {
		s.stats.revSnapshotFetches.Add(1)
	}
	s.stats.setEpochs(s.router.RevocationEpoch(revocation.ListURL), s.router.RevocationEpoch(revocation.ListCRL))
	l.eg.Queue(frame, addr)
}

// InvalidateBeacon drops the cached beacon frame so the next solicitation
// gets a fresh one — call after pushing new revocation state to the
// router, whose refs the cached beacon no longer advertises.
func (s *Server) InvalidateBeacon() {
	s.beaconMu.Lock()
	s.beaconFrame = nil
	s.beaconMu.Unlock()
	s.stats.setEpochs(s.router.RevocationEpoch(revocation.ListURL), s.router.RevocationEpoch(revocation.ListCRL))
}

// issueTicket seals a resumption ticket for an established session: the
// resumption secret both endpoints derive, the current revocation epochs
// (the ticket dies when either list moves), and the session's original
// M.2 as accountability escrow.
func (s *Server) issueTicket(sess *core.Session, escrow []byte) ([]byte, error) {
	if s.tickets == nil {
		return nil, fmt.Errorf("transport: no ticket keys")
	}
	t := &Ticket{
		Prev:      sess.ID,
		Router:    s.router.ID(),
		URLEpoch:  s.router.RevocationEpoch(revocation.ListURL),
		CRLEpoch:  s.router.RevocationEpoch(revocation.ListCRL),
		BootEpoch: s.cfg.BootEpoch,
		Expiry:    time.Now().Add(s.cfg.TicketLifetime),
		Escrow:    escrow,
	}
	copy(t.Secret[:], sess.ResumptionSecret())
	return t.Seal(rand.Reader, s.tickets)
}

// handleAccessRequest dedups by session identifier, then submits to the
// ingest queue; the reply (confirm or reject) is cached so retransmitted
// requests — the client's recovery from a lost M.3 — are answered by
// replay, never by a second verification. Successful confirms carry a
// freshly sealed resumption ticket.
func (s *Server) handleAccessRequest(l *shardLoop, m *core.AccessRequest, addr net.Addr) {
	sid := core.NewSessionID(m.GR, m.GJ)

	if s.draining.Load() {
		// Refuse new work during graceful shutdown — but keep replaying
		// cached replies below so a client whose M.3 was lost right before
		// the drain still completes.
		if frame, ok := s.replies.lookup(sid); !ok || frame == nil {
			s.stats.drainRejects.Add(1)
			s.sendRejectCode(l, addr, sid, RejectDraining, "server draining")
			return
		}
	}
	if frame, dup := s.replies.begin(sid); dup {
		s.stats.duplicates.Add(1)
		if frame != nil {
			l.eg.Queue(frame, addr)
		}
		return
	}

	ch, err := s.queue.Submit(m)
	if err != nil {
		// Shed under overload; forget the session so a later retry can be
		// admitted once the queue drains.
		s.stats.queueDrops.Add(1)
		s.replies.forget(sid)
		s.sendReject(l, addr, sid, err)
		return
	}
	// The reply goroutine outlives this dispatch, so the read-slot address
	// must be cloned before the slot is reused by the next batch.
	addr = batchio.CloneAddr(addr)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res := <-ch
		var frame []byte
		if res.Err != nil {
			code := rejectCodeFor(res.Err)
			rej := &Reject{Session: sid, Code: code, Reason: res.Err.Error()}
			frame, err = EncodeMessage(rej)
			s.stats.rejects.Add(1)
			if code == RejectRevoked {
				s.stats.revRejects.Add(1)
			}
		} else {
			if tk, terr := s.issueTicket(res.Session, m.Marshal()); terr == nil {
				res.Confirm.Ticket = tk
				s.stats.ticketsIssued.Add(1)
			}
			frame, err = EncodeMessage(res.Confirm)
		}
		if err != nil {
			s.logf("transport: encode reply: %v", err)
			return
		}
		s.replies.fulfill(sid, frame)
		l.eg.Queue(frame, addr)
	}()
}

// refuseResume rejects one resume exchange and caches the reject so a
// retransmitted request replays it.
func (s *Server) refuseResume(l *shardLoop, addr net.Addr, sid core.SessionID, code RejectCode, reason string) {
	rej := &Reject{Session: sid, Code: code, Reason: reason}
	frame, err := EncodeMessage(rej)
	if err != nil {
		s.logf("transport: encode reject: %v", err)
		return
	}
	// Hard ticket failures (forged MACs, tampered blobs, corrupt escrow)
	// are authentication failures and feed the adaptive DoS monitor;
	// stale-epoch and draining refusals are normal operations and do not.
	if code == RejectTicket {
		s.router.RecordDoSFailure()
	}
	s.stats.rejects.Add(1)
	s.stats.resumeRejects.Add(1)
	s.replies.fulfill(sid, frame)
	l.eg.Queue(frame, addr)
}

// handleResumeRequest serves the symmetric-only re-attach path inline —
// no pairing, no group signature, no queue. The checks run cheapest
// first; any refusal sends a reject whose code tells the client whether
// to retry (transient) or fall back to the full handshake.
func (s *Server) handleResumeRequest(l *shardLoop, req *ResumeRequest, addr net.Addr) {
	sid := resumeDedupID(req.Ticket, req.Nonce[:])

	if s.draining.Load() {
		if frame, ok := s.replies.lookup(sid); !ok || frame == nil {
			s.stats.drainRejects.Add(1)
			s.sendRejectCode(l, addr, sid, RejectDraining, "server draining")
			return
		}
	}
	if frame, dup := s.replies.begin(sid); dup {
		s.stats.duplicates.Add(1)
		if frame != nil {
			l.eg.Queue(frame, addr)
		}
		return
	}

	if s.tickets == nil {
		s.refuseResume(l, addr, sid, RejectTicket, "resumption not offered")
		return
	}
	t, err := OpenTicket(req.Ticket, s.tickets)
	if err != nil {
		// Rotated-out STEK generation and tampered blobs land here alike;
		// either way the full handshake is the only path forward.
		s.refuseResume(l, addr, sid, RejectTicket, "ticket unusable")
		return
	}
	now := time.Now()
	if now.After(t.Expiry) {
		s.refuseResume(l, addr, sid, RejectTicket, "ticket expired")
		return
	}
	// Revocation freshness: the ticket pins the epochs its holder was
	// verified against. Any movement of either list since issuance might
	// have revoked the holder, so the cheap path is refused wholesale and
	// the client re-proves membership via M.1–M.3 (which also re-syncs its
	// own revocation state in Phase 1.5).
	if t.URLEpoch != s.router.RevocationEpoch(revocation.ListURL) ||
		t.CRLEpoch != s.router.RevocationEpoch(revocation.ListCRL) {
		s.refuseResume(l, addr, sid, RejectTicketStale, "revocation epochs moved since issuance")
		return
	}
	if err := req.verify(t.Secret[:]); err != nil {
		s.refuseResume(l, addr, sid, RejectTicket, "resume MAC invalid")
		return
	}
	if d := now.Sub(req.Timestamp); d > s.cfg.TicketFreshness || d < -s.cfg.TicketFreshness {
		s.refuseResume(l, addr, sid, RejectTicket, "resume timestamp stale")
		return
	}
	escrow, err := core.UnmarshalAccessRequest(t.Escrow)
	if err != nil {
		s.refuseResume(l, addr, sid, RejectTicket, "ticket escrow corrupt")
		return
	}

	var serverNonce [ResumeNonceSize]byte
	if _, err := rand.Read(serverNonce[:]); err != nil {
		s.replies.forget(sid)
		s.logf("transport: resume nonce: %v", err)
		return
	}
	sess := core.ResumeSession(t.Prev, t.Secret[:], req.Nonce[:], serverNonce[:], "user", now)
	s.router.AdoptResumedSession(sess, escrow)
	// A ticket another router of this NO issued means the user roamed:
	// count the adoption and let the backbone announce the ownership
	// transfer so the previous router forwards in-flight frames.
	if t.Router != "" && t.Router != s.router.ID() {
		s.stats.handoffsIn.Add(1)
		if hooks := s.backbone.Load(); hooks != nil && hooks.observe != nil {
			hooks.observe.HandoffAdopted(t.Prev, sess.ID, t.Router)
		}
	}

	newTicket, err := s.issueTicket(sess, t.Escrow)
	if err != nil {
		s.replies.forget(sid)
		s.logf("transport: reissue ticket: %v", err)
		return
	}
	body := &resumeOK{RouterID: s.router.ID(), BootEpoch: s.cfg.BootEpoch, Nonce: req.Nonce, Ticket: newTicket}
	df, err := sess.SealData(rand.Reader, body.marshal())
	if err != nil {
		s.replies.forget(sid)
		s.logf("transport: seal resume confirm: %v", err)
		return
	}
	confirm := &ResumeConfirm{Dedup: sid, Nonce: serverNonce, Ciphertext: df.Payload}
	frame, err := EncodeMessage(confirm)
	if err != nil {
		s.replies.forget(sid)
		s.logf("transport: encode resume confirm: %v", err)
		return
	}
	s.stats.resumesServed.Add(1)
	s.stats.ticketsIssued.Add(1)
	s.replies.fulfill(sid, frame)
	l.eg.Queue(frame, addr)
}

// handleSessionPing answers a keepalive ping. Only a server that still
// holds the session can decrypt the ping and seal a pong, so the pong is
// proof of liveness; a rebooted server answers RejectUnknownSession — the
// unauthenticated hint clients confirm against the signed beacon epoch.
func (s *Server) handleSessionPing(l *shardLoop, f *core.DataFrame, addr net.Addr) {
	sess, ok := s.router.SessionByID(f.Session)
	if !ok {
		s.stats.unknownSessionRejects.Add(1)
		s.sendRejectCode(l, addr, f.Session, RejectUnknownSession, "no such session")
		return
	}
	body, err := sess.OpenData(f)
	if err != nil {
		// Forged, corrupted or replayed (duplicated) ping; the next round's
		// ping carries a fresh sequence number, so dropping it is safe.
		s.stats.decodeErrors.Add(1)
		return
	}
	pb, err := UnmarshalPingBody(body)
	if err != nil {
		s.stats.decodeErrors.Add(1)
		return
	}
	pong := &PongBody{Nonce: pb.Nonce, BootEpoch: s.cfg.BootEpoch}
	df, err := sess.SealData(rand.Reader, pong.Marshal())
	if err != nil {
		s.logf("transport: seal pong: %v", err)
		return
	}
	frame, err := EncodeMessage(&SessionPong{Frame: df})
	if err != nil {
		s.logf("transport: encode pong: %v", err)
		return
	}
	s.stats.keepalivesServed.Add(1)
	l.eg.Queue(frame, addr)
}

// handleSessionData delivers one frame of established-session user
// traffic. A session this router holds is opened and counted locally; a
// session it does not hold is offered to the backbone forwarder — during
// the roaming grace window the old router still receives in-flight frames
// and relays them to the adopting router instead of rejecting them.
func (s *Server) handleSessionData(l *shardLoop, f *core.DataFrame, addr net.Addr) {
	if sess, ok := s.router.SessionByID(f.Session); ok {
		pt, err := sess.OpenDataInto(f, l.pt[:0])
		if err != nil {
			s.stats.decodeErrors.Add(1)
			return
		}
		l.pt = pt[:0]
		s.stats.dataDelivered.Add(1)
		s.stats.dataBytes.Add(int64(len(pt)))
		if s.cfg.EchoData {
			s.echoData(l, sess, pt, addr)
		}
		return
	}
	if hooks := s.backbone.Load(); hooks != nil && hooks.forward != nil {
		if hooks.forward.ForwardData(f) {
			return
		}
	}
	s.stats.unknownSessionRejects.Add(1)
	s.sendRejectCode(l, addr, f.Session, RejectUnknownSession, "no such session")
}

func (s *Server) sendReject(l *shardLoop, addr net.Addr, sid core.SessionID, cause error) {
	s.sendRejectCode(l, addr, sid, rejectCodeFor(cause), cause.Error())
}

func (s *Server) sendRejectCode(l *shardLoop, addr net.Addr, sid core.SessionID, code RejectCode, reason string) {
	rej := &Reject{Session: sid, Code: code, Reason: reason}
	frame, err := EncodeMessage(rej)
	if err != nil {
		s.logf("transport: encode reject: %v", err)
		return
	}
	s.stats.rejects.Add(1)
	l.eg.Queue(frame, addr)
}

// echoData seals the just-delivered payload back to its sender into a
// pooled egress buffer: header first (the sealed size is deterministic),
// then AppendSealedData in place — no intermediate frame, no copy, zero
// allocations in steady state.
func (s *Server) echoData(l *shardLoop, sess *core.Session, pt []byte, addr net.Addr) {
	b := l.eg.Buffer()
	var err error
	if b.B, err = AppendFrameHeader(b.B, KindSessionData, core.SealedDataLen(len(pt))); err == nil {
		b.B, err = sess.AppendSealedData(b.B, pt)
	}
	if err != nil {
		b.Release()
		s.logf("transport: echo seal: %v", err)
		return
	}
	l.eg.QueueBuf(b, addr)
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("transport.Server(%s on %v)", s.router.ID(), s.Addr())
}
