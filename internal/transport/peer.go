package transport

import (
	"context"
	"fmt"
	"net"
	"sync"

	"github.com/peace-mesh/peace/internal/core"
)

// PeerResponder is the responder side of the user–user AKA on the wire:
// it answers M̃.1 hellos with group-signed M̃.2 responses (replaying the
// cached response on duplicate hellos, so a lost M̃.2 is recovered by the
// initiator's retransmission) and validates M̃.3 confirmations.
type PeerResponder struct {
	conn  net.PacketConn
	user  *core.User
	group core.GroupID
	stats *Stats

	mu        sync.Mutex
	responses map[string][]byte // marshaled g^{r_j} → cached M̃.2 frame
	confirmed []*core.Session
	closed    bool
	loopDone  chan struct{}
}

// NewPeerResponder starts answering peer hellos on conn as user.
func NewPeerResponder(conn net.PacketConn, user *core.User, group core.GroupID) *PeerResponder {
	p := &PeerResponder{
		conn:      conn,
		user:      user,
		group:     group,
		stats:     NewStats(nil),
		responses: make(map[string][]byte),
		loopDone:  make(chan struct{}),
	}
	go p.readLoop()
	return p
}

// Addr returns the responder's listen address.
func (p *PeerResponder) Addr() net.Addr { return p.conn.LocalAddr() }

// Stats returns the responder's transport counters.
func (p *PeerResponder) Stats() *Stats { return p.stats }

// Confirmed returns the sessions whose M̃.3 confirmation arrived and
// decrypted correctly.
func (p *PeerResponder) Confirmed() []*core.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*core.Session(nil), p.confirmed...)
}

// Close stops the responder.
func (p *PeerResponder) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	_ = p.conn.Close()
	<-p.loopDone
}

func (p *PeerResponder) readLoop() {
	defer close(p.loopDone)
	buf := make([]byte, 65536)
	for {
		n, addr, err := p.conn.ReadFrom(buf)
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		p.stats.bytesIn.Add(int64(n))
		kind, payload, err := DecodeFrame(buf[:n])
		if err != nil {
			p.stats.decodeErrors.Add(1)
			continue
		}
		p.stats.framesIn.Add(1)
		switch kind {
		case KindPeerHello:
			p.handleHello(payload, addr)
		case KindPeerConfirm:
			p.handleConfirm(payload)
		default:
			p.stats.unhandled.Add(1)
		}
	}
}

func (p *PeerResponder) handleHello(payload []byte, addr net.Addr) {
	m, err := core.UnmarshalPeerHello(payload)
	if err != nil {
		p.stats.decodeErrors.Add(1)
		return
	}
	key := string(m.GJ.Marshal())
	p.mu.Lock()
	cached := p.responses[key]
	p.mu.Unlock()
	if cached != nil {
		// Duplicate hello: the initiator missed our M̃.2 — replay it
		// rather than minting a second session.
		p.stats.duplicates.Add(1)
		p.writeTo(cached, addr)
		return
	}
	resp, _, err := p.user.HandlePeerHello(m, p.group)
	if err != nil {
		p.stats.rejects.Add(1)
		return
	}
	frame, err := EncodeMessage(resp)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.responses[key] = frame
	p.mu.Unlock()
	p.writeTo(frame, addr)
}

func (p *PeerResponder) handleConfirm(payload []byte) {
	m, err := core.UnmarshalPeerConfirm(payload)
	if err != nil {
		p.stats.decodeErrors.Add(1)
		return
	}
	sess, err := p.user.HandlePeerConfirm(m)
	if err != nil {
		p.stats.rejects.Add(1)
		return
	}
	p.mu.Lock()
	for _, s := range p.confirmed {
		if s.ID == sess.ID {
			p.mu.Unlock()
			p.stats.duplicates.Add(1)
			return
		}
	}
	p.confirmed = append(p.confirmed, sess)
	p.mu.Unlock()
}

func (p *PeerResponder) writeTo(frame []byte, addr net.Addr) {
	n, err := p.conn.WriteTo(frame, addr)
	if err != nil {
		return
	}
	p.stats.framesOut.Add(1)
	p.stats.bytesOut.Add(int64(n))
}

// AttachPeer runs the initiator side of the user–user AKA against a peer
// at raddr: broadcast M̃.1, await the matching M̃.2 (retransmitting
// through loss), then send the M̃.3 confirmation. The user must have
// processed a beacon so the serving router's generator is cached (or the
// caller provisions it via core.User.StartPeerAuthWithGenerator first).
func AttachPeer(ctx context.Context, conn net.PacketConn, raddr net.Addr, user *core.User, cfg ClientConfig) (*core.Session, error) {
	c := NewClient(conn, raddr, user, cfg)
	hello, err := user.StartPeerAuth(c.cfg.Group)
	if err != nil {
		return nil, err
	}
	helloFrame, err := EncodeMessage(hello)
	if err != nil {
		return nil, err
	}
	gj := hello.GJ.Marshal()
	var resp *core.PeerResponse
	err = c.exchange(ctx, helloFrame, func(kind Kind, payload []byte) (bool, error) {
		if kind != KindPeerResponse {
			c.stats.unhandled.Add(1)
			return false, nil
		}
		m, err := core.UnmarshalPeerResponse(payload)
		if err != nil {
			c.stats.decodeErrors.Add(1)
			return false, nil
		}
		if string(m.GJ.Marshal()) != string(gj) {
			c.stats.unhandled.Add(1)
			return false, nil
		}
		resp = m
		return true, nil
	})
	if err != nil {
		return nil, fmt.Errorf("peer hello: %w", err)
	}
	confirm, sess, err := user.HandlePeerResponse(resp)
	if err != nil {
		return nil, err
	}
	confirmFrame, err := EncodeMessage(confirm)
	if err != nil {
		return nil, err
	}
	if err := c.send(confirmFrame); err != nil {
		return nil, err
	}
	return sess, nil
}
