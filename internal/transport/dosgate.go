package transport

import (
	"net"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// Server-side half of the adaptive DoS defense (paper Section V.A): a
// pre-decode puzzle gate on the two handshake kinds, a bounded
// replayed-solution table, and the sampler loop that feeds ingest
// pressure to the router's difficulty controller. The router decides
// *whether* and *how hard* (core/dosdetect.go); this file is where those
// decisions meet the wire — cheaply, before any curve unmarshal, queue
// slot or pairing is spent on the datagram.

// dosReplayCap bounds the solved-puzzle replay table. Two generations of
// this many entries cover well over a beacon-refresh interval of
// accepted solutions even under full-rate floods; older triples age out
// harmlessly because the puzzles they answer go stale too.
const dosReplayCap = 4096

// replayKey identifies one solved puzzle: the echoed issue time and
// difficulty pin the seed derivation, the solution completes the triple.
type replayKey struct {
	issuedAt   int64
	difficulty uint8
	solution   uint64
}

// solutionReplayTable remembers which source first presented each
// accepted solution. A retransmit from the same source is admitted (the
// reply cache will answer it); the same solution arriving from a second
// source is the replay attack the table exists to stop — an attacker
// sniffing one legitimate solution must not get free admission for a
// whole spoofed fleet. Bounded by two-generation rotation: when the
// current generation fills, it becomes the previous one and lookups
// consult both.
type solutionReplayTable struct {
	mu   sync.Mutex
	cap  int
	cur  map[replayKey]string
	prev map[replayKey]string
}

func newSolutionReplayTable(cap int) *solutionReplayTable {
	if cap < 1 {
		cap = 1
	}
	return &solutionReplayTable{cap: cap, cur: make(map[replayKey]string, cap)}
}

// admit records the (puzzle, solution, source) binding and reports
// whether the source may proceed: true for first use and same-source
// reuse, false when another source presented the solution first.
func (t *solutionReplayTable) admit(issuedAt time.Time, difficulty uint8, solution uint64, source string) bool {
	k := replayKey{issuedAt: issuedAt.UnixNano(), difficulty: difficulty, solution: solution}
	t.mu.Lock()
	defer t.mu.Unlock()
	if owner, ok := t.cur[k]; ok {
		return owner == source
	}
	if owner, ok := t.prev[k]; ok {
		return owner == source
	}
	if len(t.cur) >= t.cap {
		t.prev = t.cur
		t.cur = make(map[replayKey]string, t.cap)
	}
	t.cur[k] = source
	return true
}

// gateAccessRequest is the pre-decode puzzle gate on the attach path.
// While the router demands a difficulty it peeks the raw solution fields
// out of the datagram — no curve unmarshal, no signature work — and
// spends exactly one HMAC plus one hash deciding admission. Anything
// refused here costs the sender a reject frame and the router almost
// nothing, which is the entire economics of the defense.
func (s *Server) gateAccessRequest(l *shardLoop, payload []byte, addr net.Addr) bool {
	if s.router.RequiredDifficulty() == 0 {
		return true
	}
	peek, err := core.PeekAccessRequest(payload)
	if err != nil {
		// Not even skeleton-parseable: failure evidence, no reply owed.
		s.stats.decodeErrors.Add(1)
		s.router.RecordDoSFailure()
		return false
	}
	sid := core.SessionIDFromRaw(peek.RawGR, peek.RawGJ)
	if !peek.HasSolution {
		s.rejectPuzzle(l, addr, sid, "puzzle solution required")
		return false
	}
	if err := s.router.VerifyPuzzleSolution(peek.PuzzleIssuedAt, peek.PuzzleDifficulty, peek.Solution); err != nil {
		s.rejectPuzzle(l, addr, sid, "puzzle solution rejected")
		return false
	}
	if !s.dosReplay.admit(peek.PuzzleIssuedAt, peek.PuzzleDifficulty, peek.Solution, sourceKey(addr)) {
		s.stats.dosSolutionReplays.Add(1)
		s.rejectPuzzle(l, addr, sid, "puzzle solution replayed")
		return false
	}
	s.stats.dosPuzzlesVerified.Add(1)
	return true
}

// gateResumeRequest is the resume-path twin. The solution fields ride
// under the request MAC (resume.go), but the gate deliberately runs
// before the MAC is checkable — MAC verification needs the ticket
// opened, and opening tickets for free is exactly what a resume flood
// buys. Cross-source grafting of a sniffed solution onto forged resumes
// is caught by the replay table instead.
func (s *Server) gateResumeRequest(l *shardLoop, req *ResumeRequest, addr net.Addr) bool {
	if s.router.RequiredDifficulty() == 0 {
		return true
	}
	sid := resumeDedupID(req.Ticket, req.Nonce[:])
	if !req.HasSolution {
		s.rejectPuzzle(l, addr, sid, "puzzle solution required")
		return false
	}
	if err := s.router.VerifyPuzzleSolution(req.PuzzleIssuedAt, req.PuzzleDifficulty, req.Solution); err != nil {
		s.rejectPuzzle(l, addr, sid, "puzzle solution rejected")
		return false
	}
	if !s.dosReplay.admit(req.PuzzleIssuedAt, req.PuzzleDifficulty, req.Solution, sourceKey(addr)) {
		s.stats.dosSolutionReplays.Add(1)
		s.rejectPuzzle(l, addr, sid, "puzzle solution replayed")
		return false
	}
	s.stats.dosPuzzlesVerified.Add(1)
	return true
}

// rejectPuzzle refuses one gated datagram with a RejectPuzzle carrying
// the router's current challenge, so the refused client can solve and
// retry without re-soliciting a beacon. The reject is deliberately not
// cached in the reply cache: gate refusals happen before dedup begins,
// and letting a flood of distinct spoofed sessions churn the cache would
// hand the attacker a second target. Each refusal also counts as failure
// evidence, keeping suspicion alive while unsolved traffic continues.
func (s *Server) rejectPuzzle(l *shardLoop, addr net.Addr, sid core.SessionID, reason string) {
	s.stats.dosPuzzlesRejected.Add(1)
	s.router.RecordDoSFailure()
	rej := &Reject{Session: sid, Code: RejectPuzzle, Reason: reason, Puzzle: s.router.CurrentPuzzle()}
	frame, err := EncodeMessage(rej)
	if err != nil {
		s.logf("transport: encode puzzle reject: %v", err)
		return
	}
	if rej.Puzzle != nil {
		s.stats.dosPuzzlesIssued.Add(1)
	}
	s.stats.rejects.Add(1)
	l.eg.Queue(frame, addr)
}

// dosSampleLoop feeds the router's difficulty controller one ingest
// pressure sample per interval: verification-queue fill, cumulative
// rate-limiter drops, and cumulative admitted handshakes (the drop
// fraction's denominator). It also mirrors the controller's state into
// the dos_suspicion/dos_difficulty gauges and invalidates the cached
// beacon frame whenever the demanded difficulty moves, so the next
// solicitation advertises the new challenge immediately instead of after
// the refresh period.
func (s *Server) dosSampleLoop() {
	defer s.loops.Done()
	ticker := time.NewTicker(s.cfg.DoSSampleInterval)
	defer ticker.Stop()
	var last uint8
	for {
		select {
		case <-s.dosStop:
			return
		case <-ticker.C:
		}
		s.router.ObserveLoad(core.LoadSample{
			QueueDepth:    s.queue.Depth(),
			QueueCapacity: s.cfg.QueueCapacity,
			RateDropped:   uint64(s.stats.ratelimitDropped.Load()),
			RequestsSeen:  uint64(s.handshakesSeen.Load()),
		})
		need := s.router.RequiredDifficulty()
		s.stats.dosDifficulty.Store(int64(need))
		if s.router.DoSDefenseActive() {
			s.stats.dosSuspicion.Store(1)
		} else {
			s.stats.dosSuspicion.Store(0)
		}
		if need != last {
			last = need
			s.InvalidateBeacon()
		}
	}
}
