// Package puzzle implements Juels–Brainard client puzzles (NDSS 1999), the
// DoS countermeasure PEACE attaches to beacon messages when a mesh router
// suspects a connection-depletion attack (paper Section V.A).
//
// A puzzle is a fresh seed plus a difficulty d; a solution is any counter s
// such that SHA-256(seed ‖ s) has at least d leading zero bits. Solving
// requires ~2^d hash evaluations of brute force; verification is one hash.
// Routers issue puzzles bound to their identity and a timestamp so
// solutions cannot be precomputed or replayed across routers.
package puzzle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"time"

	"github.com/peace-mesh/peace/internal/wire"
)

// Exported errors.
var (
	ErrWrongSolution = errors.New("puzzle: solution does not satisfy difficulty")
	ErrExpiredPuzzle = errors.New("puzzle: puzzle expired")
	ErrMalformed     = errors.New("puzzle: malformed encoding")
)

// SeedSize is the puzzle seed length in bytes.
const SeedSize = 16

// MaxDifficulty bounds difficulty to keep Solve tractable in tests and to
// reject nonsense from the wire.
const MaxDifficulty = 48

// Puzzle is a single client puzzle.
type Puzzle struct {
	// Seed is the router-chosen fresh randomness.
	Seed [SeedSize]byte
	// Difficulty is the required number of leading zero bits.
	Difficulty uint8
	// IssuedAt timestamps the puzzle; stale solutions are rejected.
	IssuedAt time.Time
	// Context binds the puzzle to an issuer (e.g. the router ID) so a
	// solution for one router is useless at another.
	Context string
}

// New samples a fresh puzzle.
func New(rng io.Reader, difficulty uint8, context string, now time.Time) (*Puzzle, error) {
	if difficulty > MaxDifficulty {
		return nil, fmt.Errorf("puzzle: difficulty %d exceeds maximum %d", difficulty, MaxDifficulty)
	}
	p := &Puzzle{Difficulty: difficulty, IssuedAt: now, Context: context}
	if _, err := io.ReadFull(rng, p.Seed[:]); err != nil {
		return nil, fmt.Errorf("puzzle: seed: %w", err)
	}
	return p, nil
}

// digest computes SHA-256(context ‖ issuedAt ‖ seed ‖ solution).
func (p *Puzzle) digest(solution uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte("peace/puzzle:v1:"))
	h.Write([]byte(p.Context))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(p.IssuedAt.UnixNano()))
	h.Write(ts[:])
	h.Write(p.Seed[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], solution)
	h.Write(s[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// leadingZeroBits counts leading zero bits of a digest.
func leadingZeroBits(d [32]byte) int {
	total := 0
	for _, b := range d {
		if b == 0 {
			total += 8
			continue
		}
		total += bits.LeadingZeros8(b)
		break
	}
	return total
}

// Solve brute-forces a solution. The expected work is 2^Difficulty hashes.
func (p *Puzzle) Solve() uint64 {
	s, _, _ := p.SolveFrom(0, 0)
	return s
}

// SolveFrom brute-forces a solution starting at start and wrapping through
// the whole counter space, giving up after budget attempts (0 = no budget).
// It returns the solution, the number of hash evaluations spent, and
// whether a solution was found within budget. Randomizing start lets many
// clients answering the same broadcast puzzle find distinct solutions, so
// per-source solution-replay suppression does not punish honest fleets.
func (p *Puzzle) SolveFrom(start, budget uint64) (solution, attempts uint64, ok bool) {
	for s := start; ; s++ {
		attempts++
		if leadingZeroBits(p.digest(s)) >= int(p.Difficulty) {
			return s, attempts, true
		}
		if budget != 0 && attempts >= budget {
			return 0, attempts, false
		}
	}
}

// SolutionDigest returns the digest a solution is judged by. Ingress gates
// use it as the replay-suppression key: two sources presenting the same
// digest are replaying one solved puzzle.
func (p *Puzzle) SolutionDigest(solution uint64) [32]byte {
	return p.digest(solution)
}

// Verify checks a solution and the puzzle's freshness window.
func (p *Puzzle) Verify(solution uint64, now time.Time, maxAge time.Duration) error {
	if now.Sub(p.IssuedAt) > maxAge {
		return ErrExpiredPuzzle
	}
	if leadingZeroBits(p.digest(solution)) < int(p.Difficulty) {
		return ErrWrongSolution
	}
	return nil
}

// Marshal encodes the puzzle for inclusion in a beacon.
func (p *Puzzle) Marshal() []byte {
	w := wire.NewWriter(64)
	w.BytesField(p.Seed[:])
	w.Byte(p.Difficulty)
	w.Time(p.IssuedAt)
	w.StringField(p.Context)
	return w.Bytes()
}

// Unmarshal decodes a beacon puzzle.
func Unmarshal(data []byte) (*Puzzle, error) {
	r := wire.NewReader(data)
	p := &Puzzle{}
	seed, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(seed) != SeedSize {
		return nil, fmt.Errorf("%w: seed size %d", ErrMalformed, len(seed))
	}
	copy(p.Seed[:], seed)
	if p.Difficulty, err = r.Byte(); err != nil {
		return nil, err
	}
	if p.Difficulty > MaxDifficulty {
		return nil, fmt.Errorf("%w: difficulty %d", ErrMalformed, p.Difficulty)
	}
	if p.IssuedAt, err = r.Time(); err != nil {
		return nil, err
	}
	if p.Context, err = r.StringField(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}
