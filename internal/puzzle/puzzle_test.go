package puzzle

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var testNow = time.Unix(1751600000, 0)

func TestSolveVerify(t *testing.T) {
	for _, difficulty := range []uint8{0, 1, 4, 8, 12} {
		p, err := New(rand.Reader, difficulty, "MR-1", testNow)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Solve()
		if err := p.Verify(s, testNow.Add(time.Second), time.Minute); err != nil {
			t.Fatalf("difficulty %d: valid solution rejected: %v", difficulty, err)
		}
	}
}

func TestVerifyRejectsWrongSolution(t *testing.T) {
	p, err := New(rand.Reader, 16, "MR-1", testNow)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Solve()
	// A wrong counter fails with overwhelming probability at difficulty 16.
	if err := p.Verify(s+1, testNow, time.Minute); !errors.Is(err, ErrWrongSolution) {
		t.Fatalf("want ErrWrongSolution, got %v", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	p, err := New(rand.Reader, 1, "MR-1", testNow)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Solve()
	if err := p.Verify(s, testNow.Add(2*time.Minute), time.Minute); !errors.Is(err, ErrExpiredPuzzle) {
		t.Fatalf("want ErrExpiredPuzzle, got %v", err)
	}
}

func TestSolutionsAreContextBound(t *testing.T) {
	p1, err := New(rand.Reader, 8, "MR-1", testNow)
	if err != nil {
		t.Fatal(err)
	}
	s := p1.Solve()

	// Same seed, different context: the solution must not transfer
	// (except with ~2^-8 luck; retry on the rare collision).
	for attempt := 0; attempt < 8; attempt++ {
		p2 := *p1
		p2.Context = "MR-2"
		if err := p2.Verify(s, testNow, time.Minute); err != nil {
			return // correctly rejected
		}
		// Collision: this solution happens to solve the other context too.
		s = p1.Solve() // no new information; re-randomize the puzzle instead
		p1, err = New(rand.Reader, 8, "MR-1", testNow)
		if err != nil {
			t.Fatal(err)
		}
		s = p1.Solve()
	}
	t.Fatal("solutions transferred across contexts repeatedly")
}

func TestDifficultyBound(t *testing.T) {
	if _, err := New(rand.Reader, MaxDifficulty+1, "x", testNow); err == nil {
		t.Fatal("difficulty above maximum accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p, err := New(rand.Reader, 10, "MR-42", testNow)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != p.Seed || back.Difficulty != p.Difficulty ||
		!back.IssuedAt.Equal(p.IssuedAt) || back.Context != p.Context {
		t.Fatal("round-trip mismatch")
	}
	s := p.Solve()
	if err := back.Verify(s, testNow, time.Minute); err != nil {
		t.Fatal("solution rejected after round-trip")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	p, _ := New(rand.Reader, 1, "x", testNow)
	data := p.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("truncated puzzle accepted")
	}
	bad := append([]byte(nil), data...)
	bad[SeedSize+4] = MaxDifficulty + 1 // difficulty byte follows the seed field
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("overlarge difficulty accepted")
	}
}

func TestSolveWorkGrowsWithDifficulty(t *testing.T) {
	// Statistical sanity: average solution index ≈ 2^d. Keep d small and
	// tolerant — this guards against off-by-one bit counting, not exact
	// distribution shape.
	const trials = 24
	avg := func(d uint8) float64 {
		total := 0.0
		for i := 0; i < trials; i++ {
			p, err := New(rand.Reader, d, "bench", testNow)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(p.Solve())
		}
		return total / trials
	}
	lo, hi := avg(2), avg(8)
	if hi <= lo {
		t.Fatalf("work did not grow with difficulty: avg(2)=%f avg(8)=%f", lo, hi)
	}
}

func TestQuickLeadingZeroBits(t *testing.T) {
	f := func(b [32]byte) bool {
		n := leadingZeroBits(b)
		if n < 0 || n > 256 {
			return false
		}
		// Check definition against a bit-by-bit scan.
		count := 0
		for _, by := range b {
			for bit := 7; bit >= 0; bit-- {
				if by&(1<<bit) != 0 {
					return count == n
				}
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
