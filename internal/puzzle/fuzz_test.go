package puzzle

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"
)

// FuzzUnmarshalPuzzle throws hostile bytes at the beacon-puzzle decoder:
// it must never panic, and every accepted puzzle must round-trip through
// Marshal to an equivalent decode.
func FuzzUnmarshalPuzzle(f *testing.F) {
	p, err := New(rand.Reader, 8, "MR-fuzz", time.Unix(1700000000, 12345))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		if p.Difficulty > MaxDifficulty {
			t.Fatalf("accepted difficulty %d > max %d", p.Difficulty, MaxDifficulty)
		}
		enc := p.Marshal()
		p2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-decode of marshaled accept failed: %v", err)
		}
		if !bytes.Equal(p2.Marshal(), enc) {
			t.Fatalf("marshal not stable: %x vs %x", p2.Marshal(), enc)
		}
	})
}

// FuzzVerifySolution drives Verify/SolutionDigest with arbitrary puzzle
// parameters and candidate solutions: no input may panic, and a solution
// SolveFrom found must always verify.
func FuzzVerifySolution(f *testing.F) {
	f.Add([]byte("seed-material-16"), uint8(4), int64(1700000000), "MR-1", uint64(7))
	f.Fuzz(func(t *testing.T, seed []byte, difficulty uint8, unix int64, context string, candidate uint64) {
		p := &Puzzle{
			Difficulty: difficulty % (MaxDifficulty + 1),
			IssuedAt:   time.Unix(unix%(1<<40), 0),
			Context:    context,
		}
		copy(p.Seed[:], seed)
		now := p.IssuedAt.Add(time.Second)
		_ = p.Verify(candidate, now, time.Minute)
		if p.Difficulty <= 12 {
			sol, _, ok := p.SolveFrom(candidate, 1<<16)
			if ok {
				if err := p.Verify(sol, now, time.Minute); err != nil {
					t.Fatalf("SolveFrom solution rejected: %v", err)
				}
			}
		}
	})
}
