package sgs

import "sync"

// SweepState is the router-side revocation sweep cache, keyed by the
// epoch of the installed URL snapshot. It owns the shared Verifier (built
// lazily — construction costs a few pairings) plus the parsed token list
// for the current epoch, so per-request work never re-derives what the
// epoch already fixes:
//
//   - PerMessageGenerators signatures run the parallel Eq.3 sweep
//     (Verifier.SweepURL) over the cached tokens; the per-worker scratch
//     points inside the sweep are reused across the whole list.
//   - FixedGenerators signatures use a FastRevocationChecker whose
//     e(A, û) index is built once per epoch (one pairing per token,
//     amortized) and answers each check with two pairings and a hash
//     lookup regardless of |URL| (BS04 §6).
//
// Update is epoch-monotonic: a lower epoch is refused, so a delayed or
// replayed older list can never displace newer sweep state. All methods
// are safe for concurrent use.
type SweepState struct {
	pk *PublicKey

	vOnce sync.Once
	v     *Verifier

	mu     sync.RWMutex
	epoch  uint64
	tokens []*RevocationToken

	fastMu    sync.Mutex
	fastEpoch uint64
	fast      *FastRevocationChecker
}

// NewSweepState creates sweep state for one group public key with no
// tokens installed (every check reports not-revoked until Update).
func NewSweepState(pk *PublicKey) *SweepState {
	return &SweepState{pk: pk}
}

// Verifier returns the shared verifier, building it on first use.
func (s *SweepState) Verifier() *Verifier {
	s.vOnce.Do(func() { s.v = NewVerifier(s.pk) })
	return s.v
}

// Update installs the token list for epoch. It returns false — leaving
// the installed state untouched — when epoch is lower than the current
// one. Re-installing the current epoch is a no-op (the token set is
// immutable per epoch). The caller keeps ownership of nothing: the slice
// is stored as-is and must not be mutated afterwards.
func (s *SweepState) Update(epoch uint64, tokens []*RevocationToken) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch {
		return false
	}
	if epoch == s.epoch && s.tokens != nil {
		return true
	}
	s.epoch = epoch
	s.tokens = tokens
	return true
}

// Epoch returns the installed epoch (0 before the first Update).
func (s *SweepState) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Tokens returns the installed token list for the current epoch.
func (s *SweepState) Tokens() []*RevocationToken {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tokens
}

// Check reports whether the signer of sig is revoked and, if so, the
// token index within the current epoch's list. FixedGenerators signatures
// take the constant-cost indexed path; everything else sweeps.
func (s *SweepState) Check(msg []byte, sig *Signature) (bool, int) {
	return s.CheckWorkers(msg, sig, 0)
}

// CheckWorkers is Check with an explicit sweep worker count (0 means
// GOMAXPROCS); the FixedGenerators path is single-lookup and ignores it.
func (s *SweepState) CheckWorkers(msg []byte, sig *Signature, workers int) (bool, int) {
	s.mu.RLock()
	epoch, tokens := s.epoch, s.tokens
	s.mu.RUnlock()
	if len(tokens) == 0 {
		return false, -1
	}
	if sig.Mode == FixedGenerators {
		if revoked, idx, err := s.fastChecker(epoch, tokens).IsRevoked(sig); err == nil {
			return revoked, idx
		}
	}
	if workers <= 0 {
		return s.Verifier().SweepURL(msg, sig, tokens)
	}
	return s.Verifier().SweepURLWorkers(msg, sig, tokens, workers)
}

// fastChecker returns the per-epoch e(A, û) index, building it when the
// epoch moved since the last build. Concurrent callers at the same epoch
// share one build.
func (s *SweepState) fastChecker(epoch uint64, tokens []*RevocationToken) *FastRevocationChecker {
	s.fastMu.Lock()
	defer s.fastMu.Unlock()
	if s.fast == nil || s.fastEpoch != epoch {
		s.fast = NewFastRevocationChecker(s.pk, tokens)
		s.fastEpoch = epoch
	}
	return s.fast
}
