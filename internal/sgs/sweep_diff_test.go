package sgs

import (
	"crypto/rand"
	"fmt"
	"testing"
)

// TestSweepDifferential is the differential pin between the three
// revocation-check implementations: the sequential reference scan
// (IsRevoked), the parallel sweep (SweepURLWorkers at several worker
// counts), and the epoch-cached SweepState. All must agree on the
// (revoked, index) verdict in both signature modes, including the
// empty-list, first-token, last-token and not-listed cases.
func TestSweepDifferential(t *testing.T) {
	const nKeys = 6
	s := newTestSetup(t, nKeys)
	pk := s.pk
	ver := NewVerifier(pk)
	msg := []byte("differential sweep message")

	allTokens := make([]*RevocationToken, nKeys)
	for i, k := range s.keys {
		allTokens[i] = k.Token()
	}

	cases := []struct {
		name   string
		signer int
		tokens []*RevocationToken
	}{
		{"empty list", 0, nil},
		{"not listed", 0, allTokens[1:4]},
		{"first token", 2, allTokens[2:5]},
		{"middle token", 3, allTokens[1:6]},
		{"last token", 5, allTokens[:6]},
		{"single entry hit", 4, allTokens[4:5]},
		{"single entry miss", 0, allTokens[5:6]},
	}
	modes := []GeneratorMode{PerMessageGenerators, FixedGenerators}
	workerCounts := []int{1, 2, 3, 8}

	for _, mode := range modes {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%v/%s", mode, tc.name), func(t *testing.T) {
				sig, err := SignWithMode(rand.Reader, pk, s.keys[tc.signer], msg, mode)
				if err != nil {
					t.Fatal(err)
				}

				wantRevoked, wantIdx := IsRevoked(pk, msg, sig, tc.tokens)

				for _, w := range workerCounts {
					gotRevoked, gotIdx := ver.SweepURLWorkers(msg, sig, tc.tokens, w)
					if gotRevoked != wantRevoked || gotIdx != wantIdx {
						t.Errorf("SweepURLWorkers(%d) = (%v,%d), IsRevoked = (%v,%d)",
							w, gotRevoked, gotIdx, wantRevoked, wantIdx)
					}
				}

				st := NewSweepState(pk)
				st.Update(1, tc.tokens)
				gotRevoked, gotIdx := st.Check(msg, sig)
				if gotRevoked != wantRevoked || gotIdx != wantIdx {
					t.Errorf("SweepState.Check = (%v,%d), IsRevoked = (%v,%d)",
						gotRevoked, gotIdx, wantRevoked, wantIdx)
				}
				for _, w := range workerCounts {
					gotRevoked, gotIdx := st.CheckWorkers(msg, sig, w)
					if gotRevoked != wantRevoked || gotIdx != wantIdx {
						t.Errorf("SweepState.CheckWorkers(%d) = (%v,%d), IsRevoked = (%v,%d)",
							w, gotRevoked, gotIdx, wantRevoked, wantIdx)
					}
				}
			})
		}
	}
}

// TestSweepStateEpochMonotonic pins the sweep cache's anti-rollback rule
// and its per-epoch fast-index rebuild.
func TestSweepStateEpochMonotonic(t *testing.T) {
	s := newTestSetup(t, 2)
	pk := s.pk
	msg := []byte("epoch monotonic")
	sig, err := SignWithMode(rand.Reader, pk, s.keys[0], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}

	st := NewSweepState(pk)
	if revoked, _ := st.Check(msg, sig); revoked {
		t.Fatal("empty state reported revoked")
	}
	if !st.Update(2, []*RevocationToken{s.keys[0].Token()}) {
		t.Fatal("forward update refused")
	}
	if revoked, idx := st.Check(msg, sig); !revoked || idx != 0 {
		t.Fatalf("check after update = (%v,%d), want (true,0)", revoked, idx)
	}
	// Rollback refused: the signer stays revoked.
	if st.Update(1, nil) {
		t.Fatal("rollback update accepted")
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch = %d after refused rollback, want 2", st.Epoch())
	}
	if revoked, _ := st.Check(msg, sig); !revoked {
		t.Fatal("rollback cleared revocation state")
	}
	// Forward update to an epoch without the token un-revokes.
	if !st.Update(3, []*RevocationToken{s.keys[1].Token()}) {
		t.Fatal("forward update refused")
	}
	if revoked, _ := st.Check(msg, sig); revoked {
		t.Fatal("stale fast index survived epoch change")
	}
}
