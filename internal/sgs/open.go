package sgs

import (
	"github.com/peace-mesh/peace/internal/bn256"
)

// Open identifies which key produced a valid signature by scanning the
// full revocation-token set grt (the paper's audit protocol, Section IV.D):
// it returns the index of the first token A with e(T2/A, û) = e(T1, v̂),
// or -1 if no token matches (e.g. the signer is not enrolled in grt).
//
// In PEACE only the network operator holds grt, and the returned token
// maps to a user *group*, not a user — that mapping lives in the core
// layer's NetworkOperator.
func Open(pk *PublicKey, msg []byte, sig *Signature, grt []*RevocationToken) int {
	idx, _ := OpenCounted(pk, msg, sig, grt)
	return idx
}

// OpenCounted is Open with operation counts.
func OpenCounted(pk *PublicKey, msg []byte, sig *Signature, grt []*RevocationToken) (int, OpCounts) {
	var counts OpCounts
	found, idx, _ := isRevoked(pk, msg, sig, grt, &counts)
	if !found {
		return -1, counts
	}
	return idx, counts
}

// TraceSigner confirms whether a specific token produced the signature,
// without scanning: a single Eq.3 test. It is used in dispute resolution
// when a candidate signer is already suspected.
func TraceSigner(pk *PublicKey, msg []byte, sig *Signature, tok *RevocationToken) bool {
	found, _ := IsRevoked(pk, msg, sig, []*RevocationToken{tok})
	return found
}

// SignerMatchesKey reports whether sig was produced by the given private
// key (used by tests and by the non-frameability analysis harness).
func SignerMatchesKey(pk *PublicKey, msg []byte, sig *Signature, key *PrivateKey) bool {
	return TraceSigner(pk, msg, sig, key.Token())
}

// BlindTokenCheck runs Eq.3 directly on explicit G2 bases. It is exposed
// for the audit protocol in the core layer, which re-derives (û, v̂) from a
// logged authentication transcript.
func BlindTokenCheck(t1, t2 *bn256.G1, uhat, vhat *bn256.G2, tok *RevocationToken) bool {
	quot := new(bn256.G1).Neg(tok.A)
	quot.Add(t2, quot)
	acc := bn256.Miller(quot, uhat)
	t1Neg := new(bn256.G1).Neg(t1)
	acc.Add(acc, bn256.Miller(t1Neg, vhat))
	return acc.Finalize().IsOne()
}
