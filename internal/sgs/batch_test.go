package sgs

import (
	"crypto/rand"
	"errors"
	"math/big"
	"strings"
	"sync"
	"testing"

	"github.com/peace-mesh/peace/internal/bn256"
)

// TestVerifierMatchesVerify checks that the table-driven verifier accepts
// and rejects exactly what the reference verifier does, in both generator
// modes.
func TestVerifierMatchesVerify(t *testing.T) {
	s := newTestSetup(t, 1)
	ver := NewVerifier(s.pk)
	msg := []byte("batch equivalence")

	for _, mode := range []GeneratorMode{PerMessageGenerators, FixedGenerators} {
		sig, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := ver.Verify(msg, sig); err != nil {
			t.Fatalf("%v: valid signature rejected: %v", mode, err)
		}
		if err := ver.Verify([]byte("other message"), sig); !errors.Is(err, ErrInvalidSignature) {
			t.Fatalf("%v: wrong message accepted: %v", mode, err)
		}

		// Tamper with each component; both verifiers must agree.
		tampered := *sig
		tampered.SAlpha = new(big.Int).Add(sig.SAlpha, big.NewInt(1))
		tampered.SAlpha.Mod(tampered.SAlpha, bn256.Order)
		if Verify(s.pk, msg, &tampered) == nil || ver.Verify(msg, &tampered) == nil {
			t.Fatalf("%v: tampered s_α accepted", mode)
		}
		tampered = *sig
		tampered.T2 = new(bn256.G1).Add(sig.T2, new(bn256.G1).Base())
		if Verify(s.pk, msg, &tampered) == nil || ver.Verify(msg, &tampered) == nil {
			t.Fatalf("%v: tampered T2 accepted", mode)
		}
	}
}

// TestVerifierCrossMode pins the mode interplay: one Verifier handles both
// signature modes, and flipping the recorded mode bit invalidates the
// challenge under either verifier.
func TestVerifierCrossMode(t *testing.T) {
	s := newTestSetup(t, 1)
	ver := NewVerifier(s.pk)
	msg := []byte("cross mode")

	fixedSig, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	perMsgSig, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, PerMessageGenerators)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(msg, fixedSig); err != nil {
		t.Fatalf("verifier rejects fixed-mode signature: %v", err)
	}
	if err := ver.Verify(msg, perMsgSig); err != nil {
		t.Fatalf("verifier rejects per-message signature: %v", err)
	}

	for _, sig := range []*Signature{fixedSig, perMsgSig} {
		flipped := *sig
		if sig.Mode == FixedGenerators {
			flipped.Mode = PerMessageGenerators
		} else {
			flipped.Mode = FixedGenerators
		}
		if Verify(s.pk, msg, &flipped) == nil {
			t.Fatal("Verify accepted a mode-flipped signature")
		}
		if ver.Verify(msg, &flipped) == nil {
			t.Fatal("Verifier accepted a mode-flipped signature")
		}
	}
}

// TestVerifierOpCounts pins the accounting of the rearranged equation:
// 4 multi-exponentiations and 2 pairings, no GT exponentiation.
func TestVerifierOpCounts(t *testing.T) {
	s := newTestSetup(t, 1)
	ver := NewVerifier(s.pk)
	msg := []byte("op counts")

	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ver.VerifyCounted(msg, sig)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Exps != 4 || counts.Pairings != 2 || counts.GTExps != 0 {
		t.Fatalf("per-message path: got %+v, want Exps=4 Pairings=2 GTExps=0", counts)
	}
	if counts.Hashes != 2 {
		t.Fatalf("per-message path: got %d hashes, want 2 (H0 + challenge)", counts.Hashes)
	}

	fixedSig, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	counts, err = ver.VerifyCounted(msg, fixedSig)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Exps != 4 || counts.Pairings != 2 || counts.GTExps != 0 || counts.Hashes != 1 {
		t.Fatalf("fixed path: got %+v, want Exps=4 Pairings=2 GTExps=0 Hashes=1", counts)
	}
}

// TestBatchVerifyAttributesBadSignature plants one invalid signature in a
// batch and checks that exactly that slot errors.
func TestBatchVerifyAttributesBadSignature(t *testing.T) {
	s := newTestSetup(t, 2)
	ver := NewVerifier(s.pk)

	const n = 6
	const badIdx = 3
	items := make([]BatchItem, n)
	for i := range items {
		msg := []byte{byte('a' + i)}
		sig, err := Sign(rand.Reader, s.pk, s.keys[i%2], msg)
		if err != nil {
			t.Fatal(err)
		}
		if i == badIdx {
			sig.SX = new(big.Int).Add(sig.SX, big.NewInt(1))
			sig.SX.Mod(sig.SX, bn256.Order)
		}
		items[i] = BatchItem{Msg: msg, Sig: sig}
	}

	errs := ver.BatchVerify(items)
	if len(errs) != n {
		t.Fatalf("got %d error slots, want %d", len(errs), n)
	}
	for i, err := range errs {
		if i == badIdx {
			if !errors.Is(err, ErrInvalidSignature) {
				t.Fatalf("bad slot %d: got %v, want ErrInvalidSignature", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("good slot %d rejected: %v", i, err)
		}
	}

	// Aggregate counts: n signatures at 4 exps / 2 pairings each.
	errs, counts := ver.BatchVerifyCounted(items)
	if len(errs) != n {
		t.Fatalf("counted batch: %d slots", len(errs))
	}
	if counts.Exps != 4*n || counts.Pairings != 2*n {
		t.Fatalf("aggregate counts %+v, want Exps=%d Pairings=%d", counts, 4*n, 2*n)
	}

	// Degenerate inputs: empty batch and nil signature.
	if out := ver.BatchVerify(nil); len(out) != 0 {
		t.Fatal("empty batch should return no slots")
	}
	out := ver.BatchVerify([]BatchItem{{Msg: []byte("x"), Sig: nil}})
	if !errors.Is(out[0], ErrInvalidSignature) {
		t.Fatalf("nil signature: got %v", out[0])
	}
}

// TestSweepURLMatchesIsRevoked cross-checks the parallel sweep against the
// sequential reference for hits, misses and the smallest-index guarantee.
func TestSweepURLMatchesIsRevoked(t *testing.T) {
	s := newTestSetup(t, 5)
	ver := NewVerifier(s.pk)

	for _, mode := range []GeneratorMode{PerMessageGenerators, FixedGenerators} {
		msg := []byte("sweep " + mode.String())
		sig, err := SignWithMode(rand.Reader, s.pk, s.keys[2], msg, mode)
		if err != nil {
			t.Fatal(err)
		}

		// Token list with the signer listed twice: the sweep must report
		// the smallest matching index, like the sequential scan.
		tokens := []*RevocationToken{
			s.keys[0].Token(),
			s.keys[2].Token(),
			s.keys[1].Token(),
			s.keys[2].Token(),
			s.keys[3].Token(),
		}
		wantRev, wantIdx := IsRevoked(s.pk, msg, sig, tokens)
		if !wantRev || wantIdx != 1 {
			t.Fatalf("%v: reference scan got (%v,%d)", mode, wantRev, wantIdx)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			rev, idx := ver.SweepURLWorkers(msg, sig, tokens, workers)
			if rev != wantRev || idx != wantIdx {
				t.Fatalf("%v workers=%d: got (%v,%d), want (%v,%d)", mode, workers, rev, idx, wantRev, wantIdx)
			}
		}

		// A non-revoked signer misses everywhere.
		clean := tokens[:1]
		if rev, idx := ver.SweepURL(msg, sig, clean); rev || idx != -1 {
			t.Fatalf("%v: clean sweep got (%v,%d)", mode, rev, idx)
		}
		if rev, idx := ver.SweepURL(msg, sig, nil); rev || idx != -1 {
			t.Fatalf("%v: empty sweep got (%v,%d)", mode, rev, idx)
		}
	}
}

// TestBatchCheckKeys exercises the small-exponent batch SDH check.
func TestBatchCheckKeys(t *testing.T) {
	s := newTestSetup(t, 4)

	if err := BatchCheckKeys(rand.Reader, s.pk, s.keys); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := BatchCheckKeys(rand.Reader, s.pk, nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}

	// Corrupt one key: the batch must fail and attribute the index.
	bad := &PrivateKey{
		A:   new(bn256.G1).Set(s.keys[2].A),
		Grp: new(big.Int).Set(s.keys[2].Grp),
		X:   new(big.Int).Add(s.keys[2].X, big.NewInt(1)),
	}
	keys := []*PrivateKey{s.keys[0], s.keys[1], bad, s.keys[3]}
	err := BatchCheckKeys(rand.Reader, s.pk, keys)
	if !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad batch: got %v, want ErrBadKey", err)
	}
	if !strings.Contains(err.Error(), "key 2") {
		t.Fatalf("bad batch error does not attribute index 2: %v", err)
	}
}

// TestParseRejectsOffCurvePoints checks the unmarshal hardening: encodings
// whose points are off the curve (or degenerate) must not produce usable
// signatures or keys.
func TestParseRejectsOffCurvePoints(t *testing.T) {
	s := newTestSetup(t, 1)
	sig, err := Sign(rand.Reader, s.pk, s.keys[0], []byte("m"))
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the y coordinate of T1 inside the canonical encoding: the
	// point leaves the curve and ParseSignature must reject it.
	raw := sig.Bytes()
	t1Off := 1 + scalarBytes // mode byte + r
	raw[t1Off+bn256.G1Size-1] ^= 0x01
	if _, err := ParseSignature(raw); err == nil {
		t.Fatal("off-curve T1 accepted")
	}
	raw = sig.Bytes()
	t2Off := t1Off + bn256.G1Size
	raw[t2Off+bn256.G1Size-1] ^= 0x01
	if _, err := ParseSignature(raw); err == nil {
		t.Fatal("off-curve T2 accepted")
	}

	// Same for the compressed form: a mangled x coordinate either leaves
	// the curve or changes the point, so parsing must fail or the
	// signature must no longer verify.
	compact := sig.CompactBytes()
	compact[t1Off+3] ^= 0xFF
	if parsed, err := ParseCompactSignature(compact); err == nil {
		if Verify(s.pk, []byte("m"), parsed) == nil {
			t.Fatal("mangled compressed T1 still verifies")
		}
	}

	// Public keys: off-curve and identity w encodings are rejected.
	wRaw := PublicKeyBytes(s.pk)
	wRaw[len(wRaw)-1] ^= 0x01
	if _, err := ParsePublicKey(wRaw); err == nil {
		t.Fatal("off-curve public key accepted")
	}
	if _, err := ParsePublicKey(make([]byte, bn256.G2Size)); err == nil {
		t.Fatal("identity public key accepted")
	}

	// Private keys: off-curve A encodings are rejected.
	kRaw := PrivateKeyBytes(s.keys[0])
	kRaw[bn256.G1Size-1] ^= 0x01
	if _, err := ParsePrivateKey(kRaw); err == nil {
		t.Fatal("off-curve private key A accepted")
	}
}

// TestFastRevocationCheckerHeavyRace hammers a shared checker with
// concurrent token additions and membership tests (run under -race by make
// ci). After the dust settles every revoked signer must be detected.
func TestFastRevocationCheckerHeavyRace(t *testing.T) {
	const nKeys = 8
	s := newTestSetup(t, nKeys)
	checker := NewFastRevocationChecker(s.pk, nil)
	msg := []byte("heavy race")

	sigs := make([]*Signature, nKeys)
	for i := range sigs {
		var err error
		sigs[i], err = SignWithMode(rand.Reader, s.pk, s.keys[i], msg, FixedGenerators)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Half the keys get revoked while every signature is being checked and
	// the size is being read.
	for i := 0; i < nKeys/2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			checker.AddToken(s.keys[i].Token())
			// Duplicate adds must be idempotent under contention too.
			checker.AddToken(s.keys[i].Token())
		}(i)
	}
	for _, sig := range sigs {
		wg.Add(1)
		go func(sig *Signature) {
			defer wg.Done()
			if _, _, err := checker.IsRevoked(sig); err != nil {
				t.Errorf("concurrent IsRevoked: %v", err)
			}
			_ = checker.Len()
		}(sig)
	}
	wg.Wait()

	if checker.Len() != nKeys/2 {
		t.Fatalf("checker has %d tokens, want %d", checker.Len(), nKeys/2)
	}
	for i, sig := range sigs {
		revoked, _, err := checker.IsRevoked(sig)
		if err != nil {
			t.Fatal(err)
		}
		if want := i < nKeys/2; revoked != want {
			t.Fatalf("key %d: revoked=%v, want %v", i, revoked, want)
		}
	}
}
