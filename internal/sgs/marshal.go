package sgs

import (
	"fmt"
	"math/big"

	"github.com/peace-mesh/peace/internal/bn256"
)

const scalarBytes = 32

// SignatureSize is the marshaled size of a Signature in bytes:
// one mode byte, five Z_p scalars and two G1 points.
const SignatureSize = 1 + 5*scalarBytes + 2*bn256.G1Size

// CompactSignatureSize is the compressed wire size: the two G1 points are
// encoded as x-coordinate plus sign (33 bytes each).
const CompactSignatureSize = 1 + 5*scalarBytes + 2*bn256.G1CompressedSize

// PaperSignatureBits returns the signature length under the paper's
// parameterization (171-bit G1 elements, 170-bit scalars as in BLS [15]):
// 2·|G1| + 5·|Z_p| = 2·171 + 5·170 = 1192 bits. The benchmark harness
// reports this next to the measured BN256 size.
func PaperSignatureBits() int {
	const g1Bits, scalarBits = 171, 170
	return 2*g1Bits + 5*scalarBits
}

// PublicKeyBytes marshals the group public key (w = g2^γ; the generators
// g1, g2 are system constants).
func PublicKeyBytes(pk *PublicKey) []byte {
	return pk.W.Marshal()
}

// ParsePublicKey decodes PublicKeyBytes output, validating the point, and
// rebuilds the cached pairing e(g1, g2).
func ParsePublicKey(data []byte) (*PublicKey, error) {
	w, err := new(bn256.G2).Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("sgs: public key: %w", err)
	}
	if w.IsInfinity() {
		return nil, fmt.Errorf("sgs: public key: w is the identity")
	}
	return NewPublicKey(w), nil
}

// Bytes marshals the signature into its canonical wire form.
func (s *Signature) Bytes() []byte {
	out := make([]byte, 0, SignatureSize)
	out = append(out, byte(s.Mode))
	out = appendScalar(out, s.R)
	out = append(out, s.T1.Marshal()...)
	out = append(out, s.T2.Marshal()...)
	out = appendScalar(out, s.C)
	out = appendScalar(out, s.SAlpha)
	out = appendScalar(out, s.SX)
	out = appendScalar(out, s.SDelta)
	return out
}

// CompactBytes marshals the signature with compressed G1 points — the
// encoding that makes the paper's "≈ RSA-1024" size comparison tight.
func (s *Signature) CompactBytes() []byte {
	out := make([]byte, 0, CompactSignatureSize)
	out = append(out, byte(s.Mode))
	out = appendScalar(out, s.R)
	out = append(out, s.T1.MarshalCompressed()...)
	out = append(out, s.T2.MarshalCompressed()...)
	out = appendScalar(out, s.C)
	out = appendScalar(out, s.SAlpha)
	out = appendScalar(out, s.SX)
	out = appendScalar(out, s.SDelta)
	return out
}

// ParseCompactSignature decodes CompactBytes output.
func ParseCompactSignature(data []byte) (*Signature, error) {
	if len(data) != CompactSignatureSize {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrInvalidSignature, len(data), CompactSignatureSize)
	}
	s := &Signature{Mode: GeneratorMode(data[0])}
	off := 1

	var err error
	if s.R, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.T1, err = new(bn256.G1).UnmarshalCompressed(data[off : off+bn256.G1CompressedSize]); err != nil {
		return nil, fmt.Errorf("%w: T1: %v", ErrInvalidSignature, err)
	}
	off += bn256.G1CompressedSize
	if s.T2, err = new(bn256.G1).UnmarshalCompressed(data[off : off+bn256.G1CompressedSize]); err != nil {
		return nil, fmt.Errorf("%w: T2: %v", ErrInvalidSignature, err)
	}
	off += bn256.G1CompressedSize
	if s.C, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SAlpha, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SX, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SDelta, _, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if err := checkSignatureShape(s); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseSignature decodes and structurally validates a marshaled signature.
func ParseSignature(data []byte) (*Signature, error) {
	if len(data) != SignatureSize {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrInvalidSignature, len(data), SignatureSize)
	}
	s := &Signature{Mode: GeneratorMode(data[0])}
	off := 1

	var err error
	if s.R, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.T1, err = new(bn256.G1).Unmarshal(data[off : off+bn256.G1Size]); err != nil {
		return nil, fmt.Errorf("%w: T1: %v", ErrInvalidSignature, err)
	}
	off += bn256.G1Size
	if s.T2, err = new(bn256.G1).Unmarshal(data[off : off+bn256.G1Size]); err != nil {
		return nil, fmt.Errorf("%w: T2: %v", ErrInvalidSignature, err)
	}
	off += bn256.G1Size
	if s.C, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SAlpha, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SX, off, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if s.SDelta, _, err = readScalar(data, off); err != nil {
		return nil, err
	}
	if err := checkSignatureShape(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Equal reports whether two signatures are byte-for-byte identical.
func (s *Signature) Equal(o *Signature) bool {
	if s == nil || o == nil {
		return s == o
	}
	return string(s.Bytes()) == string(o.Bytes())
}

func appendScalar(out []byte, v *big.Int) []byte {
	var buf [scalarBytes]byte
	v.FillBytes(buf[:])
	return append(out, buf[:]...)
}

func readScalar(data []byte, off int) (*big.Int, int, error) {
	v := new(big.Int).SetBytes(data[off : off+scalarBytes])
	if v.Cmp(bn256.Order) >= 0 {
		return nil, 0, fmt.Errorf("%w: scalar out of range", ErrInvalidSignature)
	}
	return v, off + scalarBytes, nil
}

// PrivateKeyBytes marshals a private key (A ‖ grp ‖ x); used by the setup
// layer's split-delivery (the TTP ships A ⊕ x, the GM ships (grp, x)).
func PrivateKeyBytes(k *PrivateKey) []byte {
	out := make([]byte, 0, bn256.G1Size+2*scalarBytes)
	out = append(out, k.A.Marshal()...)
	out = appendScalar(out, k.Grp)
	out = appendScalar(out, k.X)
	return out
}

// ParsePrivateKey decodes PrivateKeyBytes output.
func ParsePrivateKey(data []byte) (*PrivateKey, error) {
	if len(data) != bn256.G1Size+2*scalarBytes {
		return nil, fmt.Errorf("sgs: bad private key length %d", len(data))
	}
	a, err := new(bn256.G1).Unmarshal(data[:bn256.G1Size])
	if err != nil {
		return nil, fmt.Errorf("sgs: private key A: %w", err)
	}
	grp, off, err := readScalar(data, bn256.G1Size)
	if err != nil {
		return nil, err
	}
	x, _, err := readScalar(data, off)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{A: a, Grp: grp, X: x}, nil
}
