package sgs

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"github.com/peace-mesh/peace/internal/bn256"
)

// Exported errors.
var (
	ErrInvalidSignature = errors.New("sgs: invalid signature")
	ErrRevoked          = errors.New("sgs: signer has been revoked")
	ErrBadKey           = errors.New("sgs: private key fails the SDH equation")
)

// GeneratorMode selects how the bases (u, v) of the linear encryption are
// derived. See the package documentation.
type GeneratorMode uint8

const (
	// PerMessageGenerators derives (u, v) from the group public key, the
	// message and the signature nonce (the paper's Eq.1).
	PerMessageGenerators GeneratorMode = iota + 1
	// FixedGenerators derives (u, v) from the group public key alone,
	// enabling constant-time-per-token revocation checks.
	FixedGenerators
)

func (m GeneratorMode) String() string {
	switch m {
	case PerMessageGenerators:
		return "per-message"
	case FixedGenerators:
		return "fixed"
	default:
		return fmt.Sprintf("GeneratorMode(%d)", uint8(m))
	}
}

// PublicKey is the group public key gpk = (g1, g2, w). The generators g1
// and g2 are the canonical bn256 generators; only w = g2^γ varies.
type PublicKey struct {
	W *bn256.G2

	// egg is the cached pairing e(g1, g2), used on every verification.
	egg *bn256.GT

	// enc is the canonical encoding of W, cached at construction so that
	// the hashing hot paths never re-marshal (Marshal normalizes the point
	// in place, which would race under concurrent verification).
	enc []byte

	// wTable is a fixed-base window table for W, built lazily on the
	// first exponentiation of W and shared by all verifications.
	wOnce  sync.Once
	wTable *bn256.G2Table
}

// NewPublicKey wraps w = g2^γ into a usable public key.
func NewPublicKey(w *bn256.G2) *PublicKey {
	pk := &PublicKey{W: new(bn256.G2).Set(w)}
	pk.egg = new(bn256.GT).Base()
	pk.enc = pk.W.Marshal()
	return pk
}

// Bytes returns a canonical encoding of the public key for hashing. The
// returned slice is shared; callers must not modify it.
func (pk *PublicKey) Bytes() []byte {
	return pk.enc
}

// wTab returns the fixed-base table for W, building it on first use. The
// table is immutable once built and safe for concurrent use.
func (pk *PublicKey) wTab() *bn256.G2Table {
	pk.wOnce.Do(func() {
		pk.wTable = bn256.NewG2Table(pk.W)
	})
	return pk.wTable
}

// EGG returns the cached pairing e(g1, g2).
func (pk *PublicKey) EGG() *bn256.GT {
	return new(bn256.GT).Set(pk.egg)
}

// PrivateKey is a group member's key gsk[i,j] = (A_{i,j}, grp_i, x_j).
type PrivateKey struct {
	A   *bn256.G1
	Grp *big.Int
	X   *big.Int
}

// Token returns the revocation token grt[i,j] = A_{i,j} for this key.
func (k *PrivateKey) Token() *RevocationToken {
	return &RevocationToken{A: new(bn256.G1).Set(k.A)}
}

// RevocationToken identifies a private key for revocation and audit
// purposes: the A component of the SDH tuple.
type RevocationToken struct {
	A *bn256.G1
}

// Bytes returns the canonical encoding of the token.
func (t *RevocationToken) Bytes() []byte { return t.A.Marshal() }

// Equal reports whether two tokens identify the same key.
func (t *RevocationToken) Equal(o *RevocationToken) bool { return t.A.Equal(o.A) }

// Issuer holds the issuing secret γ. In PEACE the network operator plays
// this role.
type Issuer struct {
	gamma *big.Int
	pub   *PublicKey
}

// NewIssuer generates a fresh γ and the corresponding group public key.
func NewIssuer(rng io.Reader) (*Issuer, error) {
	gamma, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("sgs: sample γ: %w", err)
	}
	w := new(bn256.G2).ScalarBaseMult(gamma)
	return &Issuer{gamma: gamma, pub: NewPublicKey(w)}, nil
}

// PublicKey returns the group public key gpk.
func (iss *Issuer) PublicKey() *PublicKey { return iss.pub }

// NewGroupComponent samples a fresh group component grp_i for a user group.
func (iss *Issuer) NewGroupComponent(rng io.Reader) (*big.Int, error) {
	return bn256.RandomScalar(rng)
}

// IssueKey generates an SDH tuple (A, grp, x) for the given group
// component: x is sampled so that γ + grp + x ≠ 0 and
// A = g1^{1/(γ+grp+x)}.
func (iss *Issuer) IssueKey(rng io.Reader, grp *big.Int) (*PrivateKey, error) {
	for {
		x, err := bn256.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("sgs: sample x: %w", err)
		}
		exp := new(big.Int).Add(iss.gamma, grp)
		exp.Add(exp, x)
		exp.Mod(exp, bn256.Order)
		if exp.Sign() == 0 {
			continue
		}
		exp.ModInverse(exp, bn256.Order)
		a := new(bn256.G1).ScalarBaseMult(exp)
		return &PrivateKey{A: a, Grp: new(big.Int).Set(grp), X: x}, nil
	}
}

// IssueBatch issues count keys under the same group component.
func (iss *Issuer) IssueBatch(rng io.Reader, grp *big.Int, count int) ([]*PrivateKey, error) {
	keys := make([]*PrivateKey, 0, count)
	for i := 0; i < count; i++ {
		k, err := iss.IssueKey(rng, grp)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// CheckKey verifies the SDH equation e(A, w·g2^{grp+x}) = e(g1, g2),
// i.e. that the private key is a well-formed member key for pk.
func CheckKey(pk *PublicKey, key *PrivateKey) error {
	s := new(big.Int).Add(key.Grp, key.X)
	s.Mod(s, bn256.Order)
	rhs := new(bn256.G2).ScalarBaseMult(s)
	rhs.Add(rhs, pk.W)
	got := bn256.Pair(key.A, rhs)
	if !got.Equal(pk.egg) {
		return ErrBadKey
	}
	return nil
}
