package sgs

import (
	"fmt"
	"math/big"

	"github.com/peace-mesh/peace/internal/bn256"
)

// Verify checks that sig is a valid group signature on msg under pk
// (paper Step 3.2 / Eq.2). It does not perform revocation checking; see
// VerifyWithRevocation.
func Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	return verify(pk, msg, sig, nil)
}

// VerifyCounted is Verify that additionally reports operation counts.
func VerifyCounted(pk *PublicKey, msg []byte, sig *Signature) (OpCounts, error) {
	var counts OpCounts
	err := verify(pk, msg, sig, &counts)
	return counts, err
}

// VerifyWithRevocation checks the signature and then scans the revocation
// list (paper Step 3.3 / Eq.3), returning ErrRevoked if the signer's token
// appears in url.
func VerifyWithRevocation(pk *PublicKey, msg []byte, sig *Signature, url []*RevocationToken) error {
	if err := verify(pk, msg, sig, nil); err != nil {
		return err
	}
	if revoked, _ := IsRevoked(pk, msg, sig, url); revoked {
		return ErrRevoked
	}
	return nil
}

// VerifyWithRevocationCounted is VerifyWithRevocation with op counts.
func VerifyWithRevocationCounted(pk *PublicKey, msg []byte, sig *Signature, url []*RevocationToken) (OpCounts, error) {
	var counts OpCounts
	if err := verify(pk, msg, sig, &counts); err != nil {
		return counts, err
	}
	revoked, _, _ := isRevoked(pk, msg, sig, url, &counts)
	if revoked {
		return counts, ErrRevoked
	}
	return counts, nil
}

func verify(pk *PublicKey, msg []byte, sig *Signature, counts *OpCounts) error {
	ct := counter{counts}

	if err := checkSignatureShape(sig); err != nil {
		return err
	}

	// Step 3.2.1: recompute the bases.
	u, v := deriveG1Generators(pk, sig.Mode, msg, sig.R, ct) // 2 exps

	negC := new(big.Int).Sub(bn256.Order, new(big.Int).Mod(sig.C, bn256.Order))
	negC.Mod(negC, bn256.Order)

	// Step 3.2.2: recover the helper values.
	// R̃1 = u^{s_α} · T1^{−c} (one multi-exp).
	r1 := new(bn256.G1).ScalarMult(u, sig.SAlpha)
	r1.Add(r1, new(bn256.G1).ScalarMult(sig.T1, negC))
	ct.exp(1)

	// R̃3 = T1^{s_x} · u^{−s_δ} (one multi-exp).
	negSDelta := new(big.Int).Sub(bn256.Order, sig.SDelta)
	r3 := new(bn256.G1).ScalarMult(sig.T1, sig.SX)
	r3.Add(r3, new(bn256.G1).ScalarMult(u, negSDelta))
	ct.exp(1)

	// R̃2 = e(T2, g2^{s_x} · w^c) · e(v, w^{−s_α} · g2^{−s_δ}) · e(g1,g2)^{−c}.
	// Two live pairings plus the cached e(g1, g2) — the paper's accounting
	// charges the cached value as the third pairing.
	rhs1 := new(bn256.G2).ScalarBaseMult(sig.SX)
	rhs1.Add(rhs1, new(bn256.G2).ScalarMult(pk.W, sig.C))
	ct.exp(1)

	negSAlpha := new(big.Int).Sub(bn256.Order, sig.SAlpha)
	rhs2 := new(bn256.G2).ScalarMult(pk.W, negSAlpha)
	rhs2.Add(rhs2, new(bn256.G2).ScalarBaseMult(negSDelta))
	ct.exp(1)

	r2 := bn256.Pair(sig.T2, rhs1)
	ct.pairing(1)
	r2.Add(r2, bn256.Pair(v, rhs2))
	ct.pairing(1)
	eggNegC := new(bn256.GT).ScalarMult(pk.egg, negC)
	ct.gtExp(1)
	r2.Add(r2, eggNegC)

	// Step 3.2.3: challenge equation (Eq.2).
	ct.hash(1)
	c := challenge(pk, msg, sig.R, sig.T1, sig.T2, r1, r2, r3)
	if c.Cmp(sig.C) != 0 {
		return ErrInvalidSignature
	}
	return nil
}

func checkSignatureShape(sig *Signature) error {
	if sig == nil || sig.R == nil || sig.T1 == nil || sig.T2 == nil ||
		sig.C == nil || sig.SAlpha == nil || sig.SX == nil || sig.SDelta == nil {
		return fmt.Errorf("%w: missing components", ErrInvalidSignature)
	}
	if sig.Mode != PerMessageGenerators && sig.Mode != FixedGenerators {
		return fmt.Errorf("%w: unknown generator mode", ErrInvalidSignature)
	}
	if sig.T1.IsInfinity() || sig.T2.IsInfinity() {
		return fmt.Errorf("%w: degenerate T1/T2", ErrInvalidSignature)
	}
	for _, s := range []*big.Int{sig.R, sig.C, sig.SAlpha, sig.SX, sig.SDelta} {
		if s.Sign() < 0 || s.Cmp(bn256.Order) >= 0 {
			return fmt.Errorf("%w: scalar out of range", ErrInvalidSignature)
		}
	}
	return nil
}
