package sgs

import (
	"fmt"
	"math/big"

	"github.com/peace-mesh/peace/internal/bn256"
)

// Verify checks that sig is a valid group signature on msg under pk
// (paper Step 3.2 / Eq.2). It does not perform revocation checking; see
// VerifyWithRevocation.
func Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	return verify(pk, msg, sig, nil)
}

// VerifyCounted is Verify that additionally reports operation counts.
func VerifyCounted(pk *PublicKey, msg []byte, sig *Signature) (OpCounts, error) {
	var counts OpCounts
	err := verify(pk, msg, sig, &counts)
	return counts, err
}

// VerifyWithRevocation checks the signature and then scans the revocation
// list (paper Step 3.3 / Eq.3), returning ErrRevoked if the signer's token
// appears in url. The H0 scalars are derived once and shared between the
// verification bases (u, v) and the revocation bases (û, v̂).
func VerifyWithRevocation(pk *PublicKey, msg []byte, sig *Signature, url []*RevocationToken) error {
	return verifyWithRevocation(pk, msg, sig, url, nil)
}

// VerifyWithRevocationCounted is VerifyWithRevocation with op counts.
func VerifyWithRevocationCounted(pk *PublicKey, msg []byte, sig *Signature, url []*RevocationToken) (OpCounts, error) {
	var counts OpCounts
	err := verifyWithRevocation(pk, msg, sig, url, &counts)
	return counts, err
}

func verifyWithRevocation(pk *PublicKey, msg []byte, sig *Signature, url []*RevocationToken, counts *OpCounts) error {
	ct := counter{counts}
	if err := checkSignatureShape(sig); err != nil {
		return err
	}

	// One H0 evaluation covers both the G1 and the G2 bases; the four
	// exponentiations (two ψ applications plus û, v̂) remain.
	a, b := deriveScalars(pk, sig.Mode, msg, sig.R, ct)
	u := new(bn256.G1).ScalarBaseMult(a)
	v := new(bn256.G1).ScalarBaseMult(b)
	ct.exp(2)
	if err := verifyWithBases(pk, msg, sig, u, v, ct); err != nil {
		return err
	}
	if len(url) == 0 {
		return nil
	}
	uhat := new(bn256.G2).ScalarBaseMult(a)
	vhat := new(bn256.G2).ScalarBaseMult(b)
	ct.exp(2)
	if revoked, _ := isRevokedWithBases(sig, uhat, vhat, url, ct); revoked {
		return ErrRevoked
	}
	return nil
}

func verify(pk *PublicKey, msg []byte, sig *Signature, counts *OpCounts) error {
	ct := counter{counts}

	if err := checkSignatureShape(sig); err != nil {
		return err
	}

	// Step 3.2.1: recompute the bases.
	u, v := deriveG1Generators(pk, sig.Mode, msg, sig.R, ct) // 2 exps
	return verifyWithBases(pk, msg, sig, u, v, ct)
}

// verifyWithBases runs the challenge check of Eq.2 against pre-derived
// bases (u, v). Callers are responsible for checkSignatureShape.
func verifyWithBases(pk *PublicKey, msg []byte, sig *Signature, u, v *bn256.G1, ct counter) error {
	// checkSignatureShape guarantees 0 ≤ c < Order, so a single reduction
	// of the negation suffices (c = 0 wraps to Order).
	negC := new(big.Int).Sub(bn256.Order, sig.C)
	negC.Mod(negC, bn256.Order)

	// Step 3.2.2: recover the helper values.
	// R̃1 = u^{s_α} · T1^{−c} (one multi-exp).
	r1 := new(bn256.G1).ScalarMult(u, sig.SAlpha)
	r1.Add(r1, new(bn256.G1).ScalarMult(sig.T1, negC))
	ct.exp(1)

	// R̃3 = T1^{s_x} · u^{−s_δ} (one multi-exp).
	negSDelta := new(big.Int).Sub(bn256.Order, sig.SDelta)
	r3 := new(bn256.G1).ScalarMult(sig.T1, sig.SX)
	r3.Add(r3, new(bn256.G1).ScalarMult(u, negSDelta))
	ct.exp(1)

	// R̃2 = e(T2, g2^{s_x} · w^c) · e(v, w^{−s_α} · g2^{−s_δ}) · e(g1,g2)^{−c}.
	// Two live pairings sharing one final exponentiation, plus the cached
	// e(g1, g2) — the paper's accounting charges the cached value as the
	// third pairing. Powers of w go through the public key's window table.
	rhs1 := new(bn256.G2).ScalarBaseMult(sig.SX)
	rhs1.Add(rhs1, pk.wTab().Mul(new(bn256.G2), sig.C))
	ct.exp(1)

	negSAlpha := new(big.Int).Sub(bn256.Order, sig.SAlpha)
	rhs2 := pk.wTab().Mul(new(bn256.G2), negSAlpha)
	rhs2.Add(rhs2, new(bn256.G2).ScalarBaseMult(negSDelta))
	ct.exp(1)

	acc := bn256.Miller(sig.T2, rhs1)
	ct.pairing(1)
	acc.Add(acc, bn256.Miller(v, rhs2))
	ct.pairing(1)
	r2 := acc.Finalize()
	// egg is a cached pairing value, so it lives in the cyclotomic subgroup
	// and the cheaper Granger–Scott exponentiation applies.
	eggNegC := new(bn256.GT).ScalarMultCyclo(pk.egg, negC)
	ct.gtExp(1)
	r2.Add(r2, eggNegC)

	// Step 3.2.3: challenge equation (Eq.2).
	ct.hash(1)
	c := challenge(pk, msg, sig.R, sig.T1, sig.T2, r1, r2, r3)
	if c.Cmp(sig.C) != 0 {
		return ErrInvalidSignature
	}
	return nil
}

func checkSignatureShape(sig *Signature) error {
	if sig == nil || sig.R == nil || sig.T1 == nil || sig.T2 == nil ||
		sig.C == nil || sig.SAlpha == nil || sig.SX == nil || sig.SDelta == nil {
		return fmt.Errorf("%w: missing components", ErrInvalidSignature)
	}
	if sig.Mode != PerMessageGenerators && sig.Mode != FixedGenerators {
		return fmt.Errorf("%w: unknown generator mode", ErrInvalidSignature)
	}
	if sig.T1.IsInfinity() || sig.T2.IsInfinity() {
		return fmt.Errorf("%w: degenerate T1/T2", ErrInvalidSignature)
	}
	for _, s := range []*big.Int{sig.R, sig.C, sig.SAlpha, sig.SX, sig.SDelta} {
		if s.Sign() < 0 || s.Cmp(bn256.Order) >= 0 {
			return fmt.Errorf("%w: scalar out of range", ErrInvalidSignature)
		}
	}
	return nil
}
