// Package sgs implements the short group signature scheme at the heart of
// PEACE: the variation of the Boneh–Shacham verifier-local-revocation group
// signature (CCS 2004) introduced by Ren & Lou (ICDCS 2008), in which the
// SDH exponent is split into a group component grp_i and a user component
// x_j:
//
//	A_{i,j} = g1^{1/(γ + grp_i + x_j)}.
//
// The split is what enables PEACE's "sophisticated" privacy model: the
// network operator, who knows the revocation tokens A_{i,j} and the map
// grp_i → user group i, can attribute a signature to a *group* but not to a
// user, while a group manager, who knows (grp_i, x_j) per user but not
// A_{i,j}, can attribute nothing on its own.
//
// A signature is the tuple (r, T1, T2, c, s_α, s_x, s_δ) of the paper:
// r seeds the derivation of the per-message bases (u, v), (T1, T2) is a
// linear encryption of A under those bases, and (c, s_α, s_x, s_δ) is a
// Fiat–Shamir proof of knowledge of an SDH pair, with x replaced everywhere
// by grp + x.
//
// The paper's isomorphism ψ: G2 → G1 is only ever applied to outputs of the
// hash H0. On a type-3 curve (no computable ψ) the standard port is used:
// H0 returns scalars (a, b), the G2 bases are û = g2^a, v̂ = g2^b, and
// ψ(û) := g1^a by construction. All protocol equations (Eq.1–Eq.3 of the
// paper) hold verbatim.
//
// Two generator-derivation modes are supported:
//
//   - PerMessageGenerators (the paper's default): (u, v) depend on the
//     message and the signature nonce r, maximizing unlinkability.
//   - FixedGenerators: (u, v) depend on the group public key only, enabling
//     the O(1)-per-token revocation test of BS04 §6 that the paper cites for
//     its "far more efficient revocation check" ("with a little bit
//     sacrifice on user privacy").
//
// Every signing/verification entry point has a *Counted variant that
// reports how many group exponentiations and pairings were performed, used
// by the benchmark harness to reproduce the paper's operation-count claims
// (8 exp + 2 pairings to sign; 6 exp + (3+2|URL|) pairings to verify).
package sgs
