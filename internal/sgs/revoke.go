package sgs

import (
	"fmt"
	"sync"

	"github.com/peace-mesh/peace/internal/bn256"
)

// IsRevoked scans the token list and reports whether the signer of sig is
// one of the listed (revoked) keys, and if so at which index. It implements
// the paper's Eq.3: token A matches iff e(T2/A, û) = e(T1, v̂).
//
// The Miller value of the (T1, v̂) side is computed once and shared across
// all tokens, and the lines of the fixed û side are prepared once, so each
// token costs one (cheapened) Miller loop plus one final exponentiation
// (the paper charges two pairings per token).
func IsRevoked(pk *PublicKey, msg []byte, sig *Signature, tokens []*RevocationToken) (bool, int) {
	revoked, idx, _ := isRevoked(pk, msg, sig, tokens, nil)
	return revoked, idx
}

// IsRevokedCounted is IsRevoked with operation counts.
func IsRevokedCounted(pk *PublicKey, msg []byte, sig *Signature, tokens []*RevocationToken) (bool, int, OpCounts) {
	return isRevoked(pk, msg, sig, tokens, nil)
}

func isRevoked(pk *PublicKey, msg []byte, sig *Signature, tokens []*RevocationToken, counts *OpCounts) (bool, int, OpCounts) {
	var local OpCounts
	if counts == nil {
		counts = &local
	}
	ct := counter{counts}
	if len(tokens) == 0 {
		return false, -1, *counts
	}

	uhat, vhat := deriveG2Generators(pk, sig.Mode, msg, sig.R, ct)
	revoked, idx := isRevokedWithBases(sig, uhat, vhat, tokens, ct)
	return revoked, idx, *counts
}

// isRevokedWithBases runs the Eq.3 scan against pre-derived bases û, v̂.
func isRevokedWithBases(sig *Signature, uhat, vhat *bn256.G2, tokens []*RevocationToken, ct counter) (bool, int) {
	if len(tokens) == 0 {
		return false, -1
	}

	// Shared right side: e(T1, v̂)^(−1) as an un-finalized Miller value,
	// and the û line coefficients prepared once for the whole list.
	t1Neg := new(bn256.G1).Neg(sig.T1)
	mRight := bn256.Miller(t1Neg, vhat)
	uhatPrep := bn256.PrepareG2(uhat)

	for i, tok := range tokens {
		quot := new(bn256.G1).Neg(tok.A)
		quot.Add(sig.T2, quot) // T2/A in multiplicative notation
		acc := uhatPrep.Miller(quot)
		acc.Add(acc, mRight)
		ct.pairing(2) // paper convention: two pairings per token test
		if acc.Finalize().IsOne() {
			return true, i
		}
	}
	return false, -1
}

// FastRevocationChecker implements the constant-pairings-per-signature
// revocation test the paper cites from BS04 §6: with generators fixed
// per group (FixedGenerators mode), e(T2, û)/e(T1, v̂) = e(A, û) for the
// signer's token A, so revocation reduces to two pairings and a hash-table
// lookup regardless of |URL|. The privacy cost is that all signatures share
// bases, which is exactly the trade-off the paper acknowledges.
type FastRevocationChecker struct {
	pk       *PublicKey
	uhatPrep *bn256.PreparedG2
	vhatPrep *bn256.PreparedG2

	mu    sync.RWMutex
	index map[string]int // marshaled e(A, û) → token index
	size  int
}

// NewFastRevocationChecker precomputes the lookup table for the given
// tokens (one pairing per token, paid once).
func NewFastRevocationChecker(pk *PublicKey, tokens []*RevocationToken) *FastRevocationChecker {
	uhat, vhat := deriveG2Generators(pk, FixedGenerators, nil, nil, counter{})
	f := &FastRevocationChecker{
		pk:       pk,
		uhatPrep: bn256.PrepareG2(uhat),
		vhatPrep: bn256.PrepareG2(vhat),
		index:    make(map[string]int, len(tokens)),
	}
	for _, tok := range tokens {
		f.AddToken(tok)
	}
	return f
}

// AddToken registers an additional revoked token. It is safe to call
// concurrently with IsRevoked.
func (f *FastRevocationChecker) AddToken(tok *RevocationToken) {
	key := string(f.uhatPrep.Pair(tok.A).Marshal())
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.index[key]; !dup {
		f.index[key] = f.size
		f.size++
	}
}

// Len returns the number of registered tokens.
func (f *FastRevocationChecker) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.index)
}

// IsRevoked tests a FixedGenerators signature against the token table.
func (f *FastRevocationChecker) IsRevoked(sig *Signature) (bool, int, error) {
	revoked, idx, _, err := f.isRevoked(sig, nil)
	return revoked, idx, err
}

// IsRevokedCounted is IsRevoked with operation counts.
func (f *FastRevocationChecker) IsRevokedCounted(sig *Signature) (bool, int, OpCounts, error) {
	return f.isRevoked(sig, nil)
}

func (f *FastRevocationChecker) isRevoked(sig *Signature, counts *OpCounts) (bool, int, OpCounts, error) {
	var local OpCounts
	if counts == nil {
		counts = &local
	}
	ct := counter{counts}

	if sig.Mode != FixedGenerators {
		return false, -1, *counts, fmt.Errorf("sgs: fast revocation requires FixedGenerators signatures, got %v", sig.Mode)
	}

	// ratio = e(T2, û) · e(T1, v̂)^(−1), via prepared line coefficients and
	// a shared final exponentiation.
	t1Neg := new(bn256.G1).Neg(sig.T1)
	acc := f.uhatPrep.Miller(sig.T2)
	acc.Add(acc, f.vhatPrep.Miller(t1Neg))
	ct.pairing(2)
	ratio := acc.Finalize()

	key := string(ratio.Marshal())
	f.mu.RLock()
	defer f.mu.RUnlock()
	if idx, ok := f.index[key]; ok {
		return true, idx, *counts, nil
	}
	return false, -1, *counts, nil
}
