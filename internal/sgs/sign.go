package sgs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"github.com/peace-mesh/peace/internal/bn256"
)

// Signature is the PEACE group signature (r, T1, T2, c, s_α, s_x, s_δ).
// Mode records which generator-derivation policy produced it; flipping the
// mode bit invalidates the challenge check, so it carries no authority.
type Signature struct {
	Mode   GeneratorMode
	R      *big.Int
	T1, T2 *bn256.G1
	C      *big.Int
	SAlpha *big.Int
	SX     *big.Int
	SDelta *big.Int
}

// generators bundles the derived bases: u, v in G1 for the signer and
// their Diffie–Hellman-correlated counterparts û, v̂ in G2 for revocation
// checks (u = ψ(û) in the paper's notation).
type generators struct {
	u, v       *bn256.G1
	uhat, vhat *bn256.G2
}

// hashInput builds an unambiguous (length-prefixed) concatenation.
func hashInput(tag string, parts ...[]byte) []byte {
	out := make([]byte, 0, 64)
	out = append(out, []byte("peace/sgs:")...)
	out = append(out, []byte(tag)...)
	var l [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

// deriveGenerators realizes H0 (the paper's Eq.1): hash to two scalars
// (a, b) and set u = g1^a, v = g1^b, û = g2^a, v̂ = g2^b. Callers that do
// not need the G2 side (the signer) should use deriveG1Generators.
func deriveGenerators(pk *PublicKey, mode GeneratorMode, msg []byte, r *big.Int, ct counter) generators {
	a, b := deriveScalars(pk, mode, msg, r, ct)
	ct.exp(2)
	return generators{
		u:    new(bn256.G1).ScalarBaseMult(a),
		v:    new(bn256.G1).ScalarBaseMult(b),
		uhat: new(bn256.G2).ScalarBaseMult(a),
		vhat: new(bn256.G2).ScalarBaseMult(b),
	}
}

// deriveG1Generators derives only the G1 bases u and v (two
// exponentiations — the two ψ applications of the paper's accounting).
func deriveG1Generators(pk *PublicKey, mode GeneratorMode, msg []byte, r *big.Int, ct counter) (u, v *bn256.G1) {
	a, b := deriveScalars(pk, mode, msg, r, ct)
	ct.exp(2)
	return new(bn256.G1).ScalarBaseMult(a), new(bn256.G1).ScalarBaseMult(b)
}

// deriveG2Generators derives only the G2 bases û and v̂ (needed for
// revocation checks and audits).
func deriveG2Generators(pk *PublicKey, mode GeneratorMode, msg []byte, r *big.Int, ct counter) (uhat, vhat *bn256.G2) {
	a, b := deriveScalars(pk, mode, msg, r, ct)
	ct.exp(2)
	return new(bn256.G2).ScalarBaseMult(a), new(bn256.G2).ScalarBaseMult(b)
}

func deriveScalars(pk *PublicKey, mode GeneratorMode, msg []byte, r *big.Int, ct counter) (a, b *big.Int) {
	ct.hash(1)
	var input []byte
	switch mode {
	case FixedGenerators:
		input = hashInput("h0-fixed", pk.Bytes())
	default:
		input = hashInput("h0", pk.Bytes(), msg, r.Bytes())
	}
	ks := bn256.HashToScalars(input, 2)
	return ks[0], ks[1]
}

// challenge computes c = H(gpk, msg, r, T1, T2, R1, R2, R3) ∈ Z_p.
func challenge(pk *PublicKey, msg []byte, r *big.Int, t1, t2 *bn256.G1, r1 *bn256.G1, r2 *bn256.GT, r3 *bn256.G1) *big.Int {
	input := hashInput("challenge",
		pk.Bytes(), msg, r.Bytes(),
		t1.Marshal(), t2.Marshal(),
		r1.Marshal(), r2.Marshal(), r3.Marshal(),
	)
	return bn256.HashToScalar(input)
}

// Sign produces a group signature on msg under the paper's default
// per-message generator derivation.
func Sign(rng io.Reader, pk *PublicKey, key *PrivateKey, msg []byte) (*Signature, error) {
	sig, _, err := sign(rng, pk, key, msg, PerMessageGenerators, nil)
	return sig, err
}

// SignWithMode is Sign with an explicit generator mode.
func SignWithMode(rng io.Reader, pk *PublicKey, key *PrivateKey, msg []byte, mode GeneratorMode) (*Signature, error) {
	sig, _, err := sign(rng, pk, key, msg, mode, nil)
	return sig, err
}

// SignCounted is Sign that additionally reports the operation counts.
func SignCounted(rng io.Reader, pk *PublicKey, key *PrivateKey, msg []byte) (*Signature, OpCounts, error) {
	var counts OpCounts
	sig, _, err := sign(rng, pk, key, msg, PerMessageGenerators, &counts)
	return sig, counts, err
}

func sign(rng io.Reader, pk *PublicKey, key *PrivateKey, msg []byte, mode GeneratorMode, counts *OpCounts) (*Signature, generators, error) {
	ct := counter{counts}

	// Step 2.2.1: nonce r and base derivation (u, v) ← ψ(H0(...)).
	r, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, generators{}, fmt.Errorf("sgs: sample r: %w", err)
	}
	u, v := deriveG1Generators(pk, mode, msg, r, ct) // 2 exps

	// Step 2.2.2: linear encryption of A under (u, v).
	alpha, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, generators{}, fmt.Errorf("sgs: sample α: %w", err)
	}
	t1 := new(bn256.G1).ScalarMult(u, alpha) // exp 3
	ct.exp(1)
	t2 := new(bn256.G1).ScalarMult(v, alpha) // exp 4
	t2.Add(t2, key.A)
	ct.exp(1)

	grpX := new(big.Int).Add(key.Grp, key.X)
	grpX.Mod(grpX, bn256.Order)
	delta := new(big.Int).Mul(grpX, alpha)
	delta.Mod(delta, bn256.Order)

	rAlpha, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, generators{}, err
	}
	rX, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, generators{}, err
	}
	rDelta, err := bn256.RandomScalar(rng)
	if err != nil {
		return nil, generators{}, err
	}

	// Step 2.2.3: helper values.
	// R1 = u^{r_α}.
	r1 := new(bn256.G1).ScalarMult(u, rAlpha) // exp 5
	ct.exp(1)

	// R2 = e(T2, g2)^{r_x} · e(v, w)^{−r_α} · e(v, g2)^{−r_δ}
	//    = e(T2, g2)^{r_x} · e(v, w^{−r_α} · g2^{−r_δ}),
	// two pairings as in the paper's accounting.
	negRAlpha := new(big.Int).Sub(bn256.Order, rAlpha)
	negRDelta := new(big.Int).Sub(bn256.Order, rDelta)
	combined := pk.wTab().Mul(new(bn256.G2), negRAlpha) // exp 6 (multi-exp)
	combined.Add(combined, new(bn256.G2).ScalarBaseMult(negRDelta))
	ct.exp(1)

	r2 := bn256.Pair(t2, new(bn256.G2).Base()) // pairing 1
	r2.ScalarMult(r2, rX)                      // exp 7
	ct.pairing(1)
	ct.exp(1)
	r2b := bn256.Pair(v, combined) // pairing 2
	ct.pairing(1)
	r2.Add(r2, r2b)

	// R3 = T1^{r_x} · u^{−r_δ} (one multi-exp).
	r3 := new(bn256.G1).ScalarMult(t1, rX) // exp 8 (multi-exp)
	r3.Add(r3, new(bn256.G1).ScalarMult(u, negRDelta))
	ct.exp(1)

	// Step 2.2.4: challenge and responses.
	ct.hash(1)
	c := challenge(pk, msg, r, t1, t2, r1, r2, r3)

	sAlpha := new(big.Int).Mul(c, alpha)
	sAlpha.Add(sAlpha, rAlpha)
	sAlpha.Mod(sAlpha, bn256.Order)

	sX := new(big.Int).Mul(c, grpX)
	sX.Add(sX, rX)
	sX.Mod(sX, bn256.Order)

	sDelta := new(big.Int).Mul(c, delta)
	sDelta.Add(sDelta, rDelta)
	sDelta.Mod(sDelta, bn256.Order)

	sig := &Signature{
		Mode:   mode,
		R:      r,
		T1:     t1,
		T2:     t2,
		C:      c,
		SAlpha: sAlpha,
		SX:     sX,
		SDelta: sDelta,
	}
	return sig, generators{u: u, v: v}, nil
}
