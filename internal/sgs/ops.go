package sgs

// OpCounts tallies the expensive group operations performed by a signing
// or verification call. The benchmark harness compares these tallies with
// the paper's analytical claims (Section V.C): signature generation should
// cost 8 exponentiations and 2 pairings, verification 6 exponentiations
// and 3 + 2·|URL| pairings.
//
// Counting conventions follow the paper: a multi-exponentiation (a single
// product of powers such as u^{s_α}·T1^{−c}) counts as one exponentiation,
// and an exponentiation of a cached pairing value in GT is counted
// separately as GTExps so both accounting conventions can be reported.
type OpCounts struct {
	// Exps counts (multi-)exponentiations in G1 and G2.
	Exps int
	// GTExps counts exponentiations of cached pairing values in GT.
	GTExps int
	// Pairings counts bilinear map evaluations (a Miller loop plus its
	// share of a final exponentiation).
	Pairings int
	// Hashes counts hash-to-scalar evaluations.
	Hashes int
}

// Add accumulates o into c.
func (c *OpCounts) Add(o OpCounts) {
	c.Exps += o.Exps
	c.GTExps += o.GTExps
	c.Pairings += o.Pairings
	c.Hashes += o.Hashes
}

// counter is a nil-safe increment helper so that the hot paths can thread
// an optional *OpCounts without branching at every call site.
type counter struct{ c *OpCounts }

func (ct counter) exp(n int) {
	if ct.c != nil {
		ct.c.Exps += n
	}
}

func (ct counter) gtExp(n int) {
	if ct.c != nil {
		ct.c.GTExps += n
	}
}

func (ct counter) pairing(n int) {
	if ct.c != nil {
		ct.c.Pairings += n
	}
}

func (ct counter) hash(n int) {
	if ct.c != nil {
		ct.c.Hashes += n
	}
}
