package sgs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// detReader is a deterministic byte stream (SHA-256 in counter mode) so
// key generation and signing become reproducible functions of a seed.
type detReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(seed))}
}

func (d *detReader) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		h := sha256.New()
		h.Write(d.seed[:])
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], d.ctr)
		d.ctr++
		h.Write(c[:])
		d.buf = h.Sum(d.buf)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// TestGoldenVectors pins the deterministic outputs of key generation and
// signing. A change to any of these digests means the wire format, a hash
// derivation, or the randomness-consumption order changed — all of which
// are compatibility breaks that must be deliberate.
func TestGoldenVectors(t *testing.T) {
	rng := newDetReader("peace golden vectors v1")

	iss, err := NewIssuer(rng)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := iss.NewGroupComponent(rng)
	if err != nil {
		t.Fatal(err)
	}
	key, err := iss.IssueKey(rng, grp)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("golden vector message")
	sig, err := SignWithMode(rng, iss.PublicKey(), key, msg, PerMessageGenerators)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(iss.PublicKey(), msg, sig); err != nil {
		t.Fatal(err)
	}

	digest := func(b []byte) string {
		d := sha256.Sum256(b)
		return hex.EncodeToString(d[:8])
	}
	got := map[string]string{
		"gpk":     digest(PublicKeyBytes(iss.PublicKey())),
		"privkey": digest(PrivateKeyBytes(key)),
		"sig":     digest(sig.Bytes()),
		"compact": digest(sig.CompactBytes()),
	}
	want := map[string]string{
		"gpk":     "2639534899f2e44d",
		"privkey": "37add62573749e35",
		"sig":     "a5094550f67582b9",
		"compact": "d4a0fd6c24946a13",
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("golden vector %q = %s, want %s (wire/hash format changed?)", name, got[name], w)
		}
	}
}
