package sgs

import (
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/peace-mesh/peace/internal/bn256"
)

// BatchItem is one (message, signature) pair of a verification batch.
type BatchItem struct {
	Msg []byte
	Sig *Signature
}

// Verifier amortizes the fixed costs of signature verification across many
// calls for one group public key. It rewrites the pairing side of the
// paper's Eq.2 so that both pairings have a constant G2 argument:
//
//	R̃2 = e(T2, g2^{s_x} · w^c) · e(v, w^{−s_α} · g2^{−s_δ}) · e(g1,g2)^{−c}
//	   = e(T2^{s_x} · v^{−s_δ} · g1^{−c}, g2) · e(T2^{c} · v^{−s_α}, w)
//
// which eliminates both G2 exponentiations and the GT exponentiation of the
// reference verifier: the g1^{−c} term absorbs e(g1,g2)^{−c}, and the fixed
// G2 sides (g2, w) let the Miller-loop line functions be precomputed once.
// Both Miller loops walk the same addition chain, so they are evaluated
// simultaneously with a shared squaring chain and share one final
// exponentiation.
//
// With per-message generators, v = g1^b collapses the v-terms into the
// fixed-base table of g1 (v^{−s_δ} = g1^{−b·s_δ}); with fixed generators
// the Verifier holds dedicated window tables for u and v. Either way each
// signature costs 4 G1 multi-exponentiations and 2 pairings — against the
// paper's 6 exponentiations and 3 pairings — and the batch path spreads
// the work across all CPUs.
//
// A Verifier is immutable after construction and safe for concurrent use.
type Verifier struct {
	pk     *PublicKey
	g2Prep *bn256.PreparedG2
	wPrep  *bn256.PreparedG2

	// Fixed-generator cache: the H0 scalars, window tables for u = g1^a
	// and v = g1^b, and the prepared G2 counterparts for revocation sweeps.
	fixedA, fixedB *big.Int
	uTable, vTable *bn256.G1Table
	uhatPrep       *bn256.PreparedG2
	vhatPrep       *bn256.PreparedG2
	vhat           *bn256.G2
}

// NewVerifier precomputes the pairing and exponentiation tables for pk.
// The one-time cost is a few full pairings; every subsequent verification
// is roughly twice as fast as Verify, before any parallelism.
func NewVerifier(pk *PublicKey) *Verifier {
	v := &Verifier{
		pk:     pk,
		g2Prep: bn256.PrepareG2(new(bn256.G2).Base()),
		wPrep:  bn256.PrepareG2(pk.W),
	}
	v.fixedA, v.fixedB = deriveScalars(pk, FixedGenerators, nil, nil, counter{})
	v.uTable = bn256.NewG1Table(new(bn256.G1).ScalarBaseMult(v.fixedA))
	v.vTable = bn256.NewG1Table(new(bn256.G1).ScalarBaseMult(v.fixedB))
	uhat := new(bn256.G2).ScalarBaseMult(v.fixedA)
	v.vhat = new(bn256.G2).ScalarBaseMult(v.fixedB)
	v.uhatPrep = bn256.PrepareG2(uhat)
	v.vhatPrep = bn256.PrepareG2(v.vhat)
	return v
}

// PublicKey returns the group public key this verifier was built for.
func (v *Verifier) PublicKey() *PublicKey { return v.pk }

// Verify checks one signature using the precomputed tables.
func (v *Verifier) Verify(msg []byte, sig *Signature) error {
	return v.verifyOne(msg, sig, counter{})
}

// VerifyCounted is Verify with operation counts. The tallies reflect the
// work actually performed on this path: 4 multi-exponentiations and 2
// pairings per signature, no GT exponentiation (see the Verifier type
// documentation for the rewriting that removes the rest).
func (v *Verifier) VerifyCounted(msg []byte, sig *Signature) (OpCounts, error) {
	var counts OpCounts
	err := v.verifyOne(msg, sig, counter{&counts})
	return counts, err
}

func (v *Verifier) verifyOne(msg []byte, sig *Signature, ct counter) error {
	if err := checkSignatureShape(sig); err != nil {
		return err
	}

	// Work on copies of the curve points: marshaling (in the challenge
	// hash) normalizes points in place, and the same *Signature may appear
	// in several batch slots being verified on different goroutines.
	t1 := new(bn256.G1).Set(sig.T1)
	t2 := new(bn256.G1).Set(sig.T2)

	negC := new(big.Int).Sub(bn256.Order, sig.C)
	negC.Mod(negC, bn256.Order)
	negSAlpha := new(big.Int).Sub(bn256.Order, sig.SAlpha)
	negSDelta := new(big.Int).Sub(bn256.Order, sig.SDelta)

	var r1, r3, lhsA, lhsB *bn256.G1
	if sig.Mode == FixedGenerators {
		// Dedicated per-key window tables for u and v.
		r1 = v.uTable.Mul(new(bn256.G1), sig.SAlpha)
		r3 = v.uTable.Mul(new(bn256.G1), negSDelta)
		lhsA = v.vTable.Mul(new(bn256.G1), negSDelta)
		lhsA.Add(lhsA, new(bn256.G1).ScalarBaseMult(negC))
		lhsB = v.vTable.Mul(new(bn256.G1), negSAlpha)
	} else {
		// Per-message generators: u = g1^a, v = g1^b, so every u/v power
		// folds into the generator table (u^{s_α} = g1^{a·s_α}).
		a, b := deriveScalars(v.pk, sig.Mode, msg, sig.R, ct) // hash 1
		r1 = new(bn256.G1).ScalarBaseMult(mulMod(a, sig.SAlpha))
		r3 = new(bn256.G1).ScalarBaseMult(mulMod(a, negSDelta))
		bnd := mulMod(b, negSDelta)
		bnd.Add(bnd, negC)
		lhsA = new(bn256.G1).ScalarBaseMult(bnd.Mod(bnd, bn256.Order))
		lhsB = new(bn256.G1).ScalarBaseMult(mulMod(b, negSAlpha))
	}

	// R̃1 = u^{s_α} · T1^{−c} and R̃3 = T1^{s_x} · u^{−s_δ}.
	r1.Add(r1, new(bn256.G1).ScalarMult(t1, negC))
	ct.exp(1)
	r3.Add(r3, new(bn256.G1).ScalarMult(t1, sig.SX))
	ct.exp(1)

	// A = T2^{s_x} · v^{−s_δ} · g1^{−c} and B = T2^{c} · v^{−s_α}: the G1
	// sides of the rearranged pairing product.
	lhsA.Add(lhsA, new(bn256.G1).ScalarMult(t2, sig.SX))
	ct.exp(1)
	lhsB.Add(lhsB, new(bn256.G1).ScalarMult(t2, sig.C))
	ct.exp(1)

	// R̃2 = e(A, g2) · e(B, w): two prepared Miller loops sharing the
	// squaring chain and one final exponentiation.
	r2 := bn256.MillerCombined(
		[]*bn256.PreparedG2{v.g2Prep, v.wPrep},
		[]*bn256.G1{lhsA, lhsB},
	).Finalize()
	ct.pairing(2)

	ct.hash(1)
	c := challenge(v.pk, msg, sig.R, t1, t2, r1, r2, r3)
	if c.Cmp(sig.C) != 0 {
		return ErrInvalidSignature
	}
	return nil
}

// mulMod returns a·b mod Order.
func mulMod(a, b *big.Int) *big.Int {
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, bn256.Order)
}

// BatchVerify checks every item concurrently across GOMAXPROCS workers and
// returns one error slot per item (nil for valid signatures). Signatures
// are verified independently — a cross-signature pairing product is not
// possible here because each challenge c_i binds its own R̃2_i — so a bad
// signature is attributed directly without any fallback re-verification.
func (v *Verifier) BatchVerify(items []BatchItem) []error {
	errs, _ := v.batchVerify(items, false)
	return errs
}

// BatchVerifyCounted is BatchVerify with aggregate operation counts.
func (v *Verifier) BatchVerifyCounted(items []BatchItem) ([]error, OpCounts) {
	return v.batchVerify(items, true)
}

func (v *Verifier) batchVerify(items []BatchItem, counted bool) ([]error, OpCounts) {
	errs := make([]error, len(items))
	var total OpCounts
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		ct := counter{}
		if counted {
			ct = counter{&total}
		}
		for i := range items {
			errs[i] = v.verifyOne(items[i].Msg, items[i].Sig, ct)
		}
		return errs, total
	}

	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local OpCounts
			ct := counter{}
			if counted {
				ct = counter{&local}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					break
				}
				errs[i] = v.verifyOne(items[i].Msg, items[i].Sig, ct)
			}
			if counted {
				mu.Lock()
				total.Add(local)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errs, total
}

// SweepURL scans the revocation list for the signer of sig (the paper's
// Eq.3) using all CPUs. It returns whether a token matched and, if so, the
// smallest matching index. The e(T1, v̂)⁻¹ Miller value is computed once
// and shared read-only by every worker; each token then costs one prepared
// Miller loop and a final exponentiation.
func (v *Verifier) SweepURL(msg []byte, sig *Signature, tokens []*RevocationToken) (bool, int) {
	return v.SweepURLWorkers(msg, sig, tokens, runtime.GOMAXPROCS(0))
}

// SweepURLWorkers is SweepURL with an explicit worker count (minimum 1).
// It exists so benchmarks can pin the parallelism; SweepURL is the
// convenience form.
func (v *Verifier) SweepURLWorkers(msg []byte, sig *Signature, tokens []*RevocationToken, workers int) (bool, int) {
	if len(tokens) == 0 {
		return false, -1
	}

	// Fixed-generator signatures reuse the prepared û and v̂ built at
	// construction; per-message ones pay one preparation per sweep,
	// amortized over the whole list.
	uhatPrep, vhatPrep := v.uhatPrep, v.vhatPrep
	if sig.Mode != FixedGenerators {
		uhat, vhat := deriveG2Generators(v.pk, sig.Mode, msg, sig.R, counter{})
		uhatPrep = bn256.PrepareG2(uhat)
		vhatPrep = bn256.PrepareG2(vhat)
	}

	// Shared right side: e(T1, v̂)⁻¹ as an un-finalized Miller value.
	mRight := vhatPrep.Miller(new(bn256.G1).Neg(sig.T1))

	if workers < 1 {
		workers = 1
	}
	// More workers than cores only adds scheduler churn on this CPU-bound
	// loop; more workers than tokens leaves goroutines with nothing to do.
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	if workers > len(tokens) {
		workers = len(tokens)
	}

	n := int64(len(tokens))
	var found atomic.Int64
	found.Store(n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch point, reused across every token this
			// worker examines instead of allocating one per token.
			quot := new(bn256.G1)
			for {
				i := next.Add(1) - 1
				// Indices are dispensed in order and found only decreases,
				// so skipping i ≥ found never skips a smaller match.
				if i >= n || i >= found.Load() {
					return
				}
				quot.Neg(tokens[i].A)
				quot.Add(sig.T2, quot) // T2/A in multiplicative notation
				acc := uhatPrep.Miller(quot)
				acc.Add(acc, mRight)
				if acc.Finalize().IsOne() {
					for {
						cur := found.Load()
						if i >= cur || found.CompareAndSwap(cur, i) {
							break
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx := found.Load(); idx < n {
		return true, int(idx)
	}
	return false, -1
}

// BatchCheckKeys verifies the SDH equation e(A_i, w·g2^{grp_i+x_i}) =
// e(g1, g2) for every key with a single randomized pairing product:
//
//	Π e(A_i^{ρ_i}, w·g2^{grp_i+x_i}) · e(g1^{−Σρ_i}, g2) = 1
//
// with independent 64-bit exponents ρ_i, sharing one final exponentiation
// across the whole batch. A forged key slips through only if its defect
// cancels the random ρ_i, probability 2^{−64}. Small exponents are sound
// here precisely because — unlike signature verification — no challenge
// hash binds the individual equations. On batch failure every key is
// re-checked individually and the first bad index is reported.
func BatchCheckKeys(rng io.Reader, pk *PublicKey, keys []*PrivateKey) error {
	if len(keys) == 0 {
		return nil
	}
	pairs := make([]bn256.Pairing, 0, len(keys)+1)
	rhoSum := new(big.Int)
	for _, key := range keys {
		rho, err := randomSmallExponent(rng)
		if err != nil {
			return fmt.Errorf("sgs: sample batch exponent: %w", err)
		}
		rhoSum.Add(rhoSum, rho)

		s := new(big.Int).Add(key.Grp, key.X)
		s.Mod(s, bn256.Order)
		rhs := new(bn256.G2).ScalarBaseMult(s)
		rhs.Add(rhs, pk.W)
		pairs = append(pairs, bn256.Pairing{
			G1: new(bn256.G1).ScalarMult(key.A, rho),
			G2: rhs,
		})
	}
	negSum := new(big.Int).Neg(rhoSum)
	negSum.Mod(negSum, bn256.Order)
	pairs = append(pairs, bn256.Pairing{
		G1: new(bn256.G1).ScalarBaseMult(negSum),
		G2: new(bn256.G2).Base(),
	})
	if bn256.PairBatch(pairs).IsOne() {
		return nil
	}
	for i, key := range keys {
		if err := CheckKey(pk, key); err != nil {
			return fmt.Errorf("sgs: key %d: %w", i, err)
		}
	}
	// The batch product rejected but each key passes individually: the
	// only remaining cause is a bad RNG draw colliding exponents, which
	// randomSmallExponent rules out, so surface it loudly.
	return fmt.Errorf("sgs: batch key check failed but all keys verify individually")
}

// randomSmallExponent samples a uniform non-zero 64-bit exponent.
func randomSmallExponent(rng io.Reader) (*big.Int, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return nil, err
		}
		rho := new(big.Int).SetBytes(buf[:])
		if rho.Sign() != 0 {
			return rho, nil
		}
	}
}
