package sgs

import (
	"crypto/rand"
	"fmt"
	"testing"
)

func benchSetup(b *testing.B, nKeys int) (*PublicKey, []*PrivateKey) {
	b.Helper()
	iss, err := NewIssuer(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, nKeys)
	if err != nil {
		b.Fatal(err)
	}
	return iss.PublicKey(), keys
}

func BenchmarkSign(b *testing.B) {
	pk, keys := benchSetup(b, 1)
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(rand.Reader, pk, keys[0], msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	pk, keys := benchSetup(b, 1)
	msg := []byte("benchmark message")
	sig, err := Sign(rand.Reader, pk, keys[0], msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(pk, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevocationCheckPerToken(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
			pk, keys := benchSetup(b, n+1)
			msg := []byte("benchmark message")
			sig, err := Sign(rand.Reader, pk, keys[0], msg)
			if err != nil {
				b.Fatal(err)
			}
			tokens := make([]*RevocationToken, 0, n)
			for _, k := range keys[1:] {
				tokens = append(tokens, k.Token())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if revoked, _ := IsRevoked(pk, msg, sig, tokens); revoked {
					b.Fatal("unexpected revocation")
				}
			}
		})
	}
}

func BenchmarkOpen(b *testing.B) {
	pk, keys := benchSetup(b, 8)
	msg := []byte("benchmark message")
	sig, err := Sign(rand.Reader, pk, keys[7], msg) // worst case: last token
	if err != nil {
		b.Fatal(err)
	}
	grt := make([]*RevocationToken, len(keys))
	for i, k := range keys {
		grt[i] = k.Token()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Open(pk, msg, sig, grt) != 7 {
			b.Fatal("misattributed")
		}
	}
}

func BenchmarkIssueKey(b *testing.B) {
	iss, err := NewIssuer(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iss.IssueKey(rand.Reader, grp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignatureMarshal(b *testing.B) {
	pk, keys := benchSetup(b, 1)
	sig, err := Sign(rand.Reader, pk, keys[0], []byte("m"))
	if err != nil {
		b.Fatal(err)
	}
	data := sig.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSignature(data); err != nil {
			b.Fatal(err)
		}
	}
}
