package sgs

import (
	"crypto/rand"
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"github.com/peace-mesh/peace/internal/bn256"
)

// testSetup issues one group with nUsers member keys.
type testSetup struct {
	iss  *Issuer
	pk   *PublicKey
	grp  *big.Int
	keys []*PrivateKey
}

func newTestSetup(t testing.TB, nUsers int) *testSetup {
	t.Helper()
	iss, err := NewIssuer(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := iss.NewGroupComponent(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := iss.IssueBatch(rand.Reader, grp, nUsers)
	if err != nil {
		t.Fatal(err)
	}
	return &testSetup{iss: iss, pk: iss.PublicKey(), grp: grp, keys: keys}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := newTestSetup(t, 2)
	msg := []byte("user-router AKA transcript")

	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.pk, msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestSignVerifyFixedMode(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("fixed generator mode")

	sig, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Mode != FixedGenerators {
		t.Fatal("mode not recorded")
	}
	if err := Verify(s.pk, msg, sig); err != nil {
		t.Fatalf("valid fixed-mode signature rejected: %v", err)
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	s := newTestSetup(t, 1)
	sig, err := Sign(rand.Reader, s.pk, s.keys[0], []byte("message A"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.pk, []byte("message B"), sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("want ErrInvalidSignature for wrong message, got %v", err)
	}
}

func TestVerifyRejectsTamperedComponents(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("tamper target")
	orig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}

	one := big.NewInt(1)
	mutations := map[string]func(*Signature){
		"R":      func(m *Signature) { m.R = new(big.Int).Add(m.R, one) },
		"C":      func(m *Signature) { m.C = new(big.Int).Add(m.C, one) },
		"SAlpha": func(m *Signature) { m.SAlpha = new(big.Int).Add(m.SAlpha, one) },
		"SX":     func(m *Signature) { m.SX = new(big.Int).Add(m.SX, one) },
		"SDelta": func(m *Signature) { m.SDelta = new(big.Int).Add(m.SDelta, one) },
		"T1":     func(m *Signature) { m.T1 = new(bn256.G1).Add(m.T1, new(bn256.G1).Base()) },
		"T2":     func(m *Signature) { m.T2 = new(bn256.G1).Add(m.T2, new(bn256.G1).Base()) },
		"Mode":   func(m *Signature) { m.Mode = FixedGenerators },
	}
	for name, mutate := range mutations {
		m, err := ParseSignature(orig.Bytes()) // deep copy
		if err != nil {
			t.Fatal(err)
		}
		mutate(m)
		// Reduce scalars so shape checks don't mask the challenge check.
		for _, sc := range []*big.Int{m.R, m.C, m.SAlpha, m.SX, m.SDelta} {
			sc.Mod(sc, bn256.Order)
		}
		if err := Verify(s.pk, msg, m); err == nil {
			t.Errorf("tampered %s accepted", name)
		}
	}
}

func TestVerifyRejectsNilAndMalformed(t *testing.T) {
	s := newTestSetup(t, 1)
	if err := Verify(s.pk, nil, nil); err == nil {
		t.Error("nil signature accepted")
	}
	if err := Verify(s.pk, nil, &Signature{}); err == nil {
		t.Error("empty signature accepted")
	}
}

func TestVerifyRejectsWrongGroupKey(t *testing.T) {
	s1 := newTestSetup(t, 1)
	s2 := newTestSetup(t, 1)
	msg := []byte("cross-issuer")

	sig, err := Sign(rand.Reader, s1.pk, s1.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s2.pk, msg, sig); err == nil {
		t.Fatal("signature accepted under a different issuer's gpk")
	}
}

func TestSignaturesAreRandomized(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("same message")
	a, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)
	b, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if a.Equal(b) {
		t.Fatal("two signatures on the same message are identical")
	}
	if a.T1.Equal(b.T1) || a.T2.Equal(b.T2) {
		t.Fatal("linear encryption reused randomness")
	}
}

func TestCheckKey(t *testing.T) {
	s := newTestSetup(t, 1)
	if err := CheckKey(s.pk, s.keys[0]); err != nil {
		t.Fatalf("well-formed key rejected: %v", err)
	}
	bad := &PrivateKey{
		A:   new(bn256.G1).Base(),
		Grp: s.keys[0].Grp,
		X:   s.keys[0].X,
	}
	if err := CheckKey(s.pk, bad); !errors.Is(err, ErrBadKey) {
		t.Fatalf("malformed key accepted: %v", err)
	}
}

func TestRevocationCheck(t *testing.T) {
	s := newTestSetup(t, 3)
	msg := []byte("revocation")

	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}

	// Not revoked against other users' tokens.
	url := []*RevocationToken{s.keys[1].Token(), s.keys[2].Token()}
	if revoked, _ := IsRevoked(s.pk, msg, sig, url); revoked {
		t.Fatal("innocent signer flagged as revoked")
	}
	if err := VerifyWithRevocation(s.pk, msg, sig, url); err != nil {
		t.Fatalf("valid unrevoked signature rejected: %v", err)
	}

	// Revoked once own token is added.
	url = append(url, s.keys[0].Token())
	revoked, idx := IsRevoked(s.pk, msg, sig, url)
	if !revoked || idx != 2 {
		t.Fatalf("revoked signer not detected (revoked=%v idx=%d)", revoked, idx)
	}
	if err := VerifyWithRevocation(s.pk, msg, sig, url); !errors.Is(err, ErrRevoked) {
		t.Fatalf("want ErrRevoked, got %v", err)
	}
}

func TestOpenIdentifiesSigner(t *testing.T) {
	s := newTestSetup(t, 4)
	msg := []byte("audit")
	grt := make([]*RevocationToken, len(s.keys))
	for i, k := range s.keys {
		grt[i] = k.Token()
	}

	for signer := 0; signer < len(s.keys); signer++ {
		sig, err := Sign(rand.Reader, s.pk, s.keys[signer], msg)
		if err != nil {
			t.Fatal(err)
		}
		if got := Open(s.pk, msg, sig, grt); got != signer {
			t.Fatalf("Open = %d, want %d", got, signer)
		}
	}
}

func TestOpenUnknownSigner(t *testing.T) {
	s := newTestSetup(t, 2)
	msg := []byte("audit")
	// grt missing the actual signer.
	grt := []*RevocationToken{s.keys[1].Token()}
	sig, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if got := Open(s.pk, msg, sig, grt); got != -1 {
		t.Fatalf("Open on missing signer = %d, want -1", got)
	}
}

func TestTraceSignerAndNonFrameability(t *testing.T) {
	s := newTestSetup(t, 2)
	msg := []byte("dispute")
	sig, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)

	if !SignerMatchesKey(s.pk, msg, sig, s.keys[0]) {
		t.Fatal("true signer not matched")
	}
	// Non-frameability: the check must not implicate another member.
	if SignerMatchesKey(s.pk, msg, sig, s.keys[1]) {
		t.Fatal("innocent member framed")
	}
}

func TestFastRevocationChecker(t *testing.T) {
	s := newTestSetup(t, 3)
	msg := []byte("fast revocation")

	checker := NewFastRevocationChecker(s.pk, []*RevocationToken{s.keys[1].Token()})
	if checker.Len() != 1 {
		t.Fatalf("checker has %d tokens, want 1", checker.Len())
	}

	sigOK, err := SignWithMode(rand.Reader, s.pk, s.keys[0], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	revoked, _, err := checker.IsRevoked(sigOK)
	if err != nil {
		t.Fatal(err)
	}
	if revoked {
		t.Fatal("unrevoked signer flagged")
	}

	sigBad, err := SignWithMode(rand.Reader, s.pk, s.keys[1], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	revoked, idx, err := checker.IsRevoked(sigBad)
	if err != nil {
		t.Fatal(err)
	}
	if !revoked || idx != 0 {
		t.Fatalf("revoked signer not flagged (revoked=%v idx=%d)", revoked, idx)
	}

	// Per-message signatures must be refused.
	sigPM, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if _, _, err := checker.IsRevoked(sigPM); err == nil {
		t.Fatal("per-message signature accepted by fast checker")
	}
}

func TestFastAndLinearRevocationAgree(t *testing.T) {
	s := newTestSetup(t, 4)
	msg := []byte("agreement")
	tokens := []*RevocationToken{s.keys[2].Token(), s.keys[3].Token()}
	checker := NewFastRevocationChecker(s.pk, tokens)

	for signer := 0; signer < 4; signer++ {
		sig, err := SignWithMode(rand.Reader, s.pk, s.keys[signer], msg, FixedGenerators)
		if err != nil {
			t.Fatal(err)
		}
		linRevoked, _ := IsRevoked(s.pk, msg, sig, tokens)
		fastRevoked, _, err := checker.IsRevoked(sig)
		if err != nil {
			t.Fatal(err)
		}
		if linRevoked != fastRevoked {
			t.Fatalf("signer %d: linear=%v fast=%v", signer, linRevoked, fastRevoked)
		}
		if wantRevoked := signer >= 2; linRevoked != wantRevoked {
			t.Fatalf("signer %d: revoked=%v want %v", signer, linRevoked, wantRevoked)
		}
	}
}

func TestSignatureMarshalRoundTrip(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("marshal me")
	sig, _ := Sign(rand.Reader, s.pk, s.keys[0], msg)

	data := sig.Bytes()
	if len(data) != SignatureSize {
		t.Fatalf("signature size %d, want %d", len(data), SignatureSize)
	}
	back, err := ParseSignature(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Equal(back) {
		t.Fatal("marshal round-trip mismatch")
	}
	if err := Verify(s.pk, msg, back); err != nil {
		t.Fatalf("round-tripped signature rejected: %v", err)
	}
}

func TestParseSignatureRejectsCorruption(t *testing.T) {
	s := newTestSetup(t, 1)
	sig, _ := Sign(rand.Reader, s.pk, s.keys[0], []byte("x"))
	data := sig.Bytes()

	if _, err := ParseSignature(data[:len(data)-1]); err == nil {
		t.Error("short data accepted")
	}
	// Corrupt T1 so it is no longer on the curve.
	bad := append([]byte(nil), data...)
	for i := 1 + scalarBytes; i < 1+scalarBytes+bn256.G1Size; i++ {
		bad[i] ^= 0xFF
	}
	if _, err := ParseSignature(bad); err == nil {
		t.Error("off-curve T1 accepted")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	s := newTestSetup(t, 1)
	data := PrivateKeyBytes(s.keys[0])
	back, err := ParsePrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.A.Equal(s.keys[0].A) || back.Grp.Cmp(s.keys[0].Grp) != 0 || back.X.Cmp(s.keys[0].X) != 0 {
		t.Fatal("private key round-trip mismatch")
	}
	if err := CheckKey(s.pk, back); err != nil {
		t.Fatal(err)
	}
}

func TestOperationCountsMatchPaper(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("op counts")

	sig, signCounts, err := SignCounted(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section V.C: signature generation ≈ 8 exponentiations
	// (or multi-exponentiations) and 2 bilinear map computations.
	if signCounts.Exps != 8 {
		t.Errorf("sign exps = %d, want 8 (paper)", signCounts.Exps)
	}
	if signCounts.Pairings != 2 {
		t.Errorf("sign pairings = %d, want 2 (paper)", signCounts.Pairings)
	}

	verifyCounts, err := VerifyCounted(s.pk, msg, sig)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: verification = 6 exponentiations + 3 pairings (|URL| = 0).
	// Our implementation caches e(g1, g2), so it performs 2 live pairings
	// plus one GT exponentiation of the cached value; the paper's
	// convention charges the cached pairing as the third.
	if verifyCounts.Exps != 6 {
		t.Errorf("verify exps = %d, want 6 (paper)", verifyCounts.Exps)
	}
	if verifyCounts.Pairings != 2 || verifyCounts.GTExps != 1 {
		t.Errorf("verify pairings = %d (+%d GT exps), want 2 (+1)", verifyCounts.Pairings, verifyCounts.GTExps)
	}

	// Revocation: 2 pairings per token (paper: 2|URL|).
	url := []*RevocationToken{s.keys[0].Token()}
	counts, err := VerifyWithRevocationCounted(s.pk, msg, sig, url)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("want ErrRevoked, got %v", err)
	}
	wantPairings := 2 + 2*len(url)
	if counts.Pairings != wantPairings {
		t.Errorf("verify+revocation pairings = %d, want %d", counts.Pairings, wantPairings)
	}
}

func TestPaperSignatureBits(t *testing.T) {
	if got := PaperSignatureBits(); got != 1192 {
		t.Fatalf("paper signature bits = %d, want 1192", got)
	}
}

func TestCrossGroupOpen(t *testing.T) {
	// Two groups under one issuer: Open must attribute each signature to
	// the right key even across groups.
	iss, err := NewIssuer(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	grpA, _ := iss.NewGroupComponent(rand.Reader)
	grpB, _ := iss.NewGroupComponent(rand.Reader)
	keyA, err := iss.IssueKey(rand.Reader, grpA)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := iss.IssueKey(rand.Reader, grpB)
	if err != nil {
		t.Fatal(err)
	}
	grt := []*RevocationToken{keyA.Token(), keyB.Token()}
	msg := []byte("cross-group")

	sigA, _ := Sign(rand.Reader, iss.PublicKey(), keyA, msg)
	sigB, _ := Sign(rand.Reader, iss.PublicKey(), keyB, msg)
	if err := Verify(iss.PublicKey(), msg, sigA); err != nil {
		t.Fatal(err)
	}
	if err := Verify(iss.PublicKey(), msg, sigB); err != nil {
		t.Fatal(err)
	}
	if Open(iss.PublicKey(), msg, sigA, grt) != 0 {
		t.Error("group-A signature misattributed")
	}
	if Open(iss.PublicKey(), msg, sigB, grt) != 1 {
		t.Error("group-B signature misattributed")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	s := newTestSetup(t, 1)
	data := PublicKeyBytes(s.pk)
	back, err := ParsePublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.W.Equal(s.pk.W) {
		t.Fatal("public key round-trip mismatch")
	}
	// Signatures verify under the reconstructed key (cached pairing and
	// all) and fail under a corrupted one.
	msg := []byte("pk round trip")
	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(back, msg, sig); err != nil {
		t.Fatalf("signature rejected under reconstructed pk: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ParsePublicKey(bad); err == nil {
		t.Fatal("corrupted public key accepted")
	}
}

func TestSignatureFromWrongSubgroupComponentsRejected(t *testing.T) {
	// T1/T2 replaced by the identity must be rejected by the shape check
	// before any pairing math runs.
	s := newTestSetup(t, 1)
	msg := []byte("degenerate")
	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	sig.T1 = new(bn256.G1).SetInfinity()
	if err := Verify(s.pk, msg, sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("identity T1 accepted: %v", err)
	}
}

func TestOpenOnFixedModeSignature(t *testing.T) {
	// Audits must work regardless of the generator mode in use.
	s := newTestSetup(t, 3)
	msg := []byte("fixed-mode audit")
	grt := []*RevocationToken{s.keys[0].Token(), s.keys[1].Token(), s.keys[2].Token()}

	sig, err := SignWithMode(rand.Reader, s.pk, s.keys[1], msg, FixedGenerators)
	if err != nil {
		t.Fatal(err)
	}
	if got := Open(s.pk, msg, sig, grt); got != 1 {
		t.Fatalf("Open on fixed-mode signature = %d, want 1", got)
	}
}

func TestCompactSignatureRoundTrip(t *testing.T) {
	s := newTestSetup(t, 1)
	msg := []byte("compact encoding")
	sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
	if err != nil {
		t.Fatal(err)
	}
	data := sig.CompactBytes()
	if len(data) != CompactSignatureSize {
		t.Fatalf("compact size = %d, want %d", len(data), CompactSignatureSize)
	}
	if len(data) >= SignatureSize {
		t.Fatal("compact encoding not smaller than the plain one")
	}
	back, err := ParseCompactSignature(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Equal(back) {
		t.Fatal("compact round-trip changed the signature")
	}
	if err := Verify(s.pk, msg, back); err != nil {
		t.Fatalf("round-tripped compact signature rejected: %v", err)
	}
	if _, err := ParseCompactSignature(data[:len(data)-1]); err == nil {
		t.Fatal("short compact signature accepted")
	}
}

func TestQuickSignVerifyArbitraryMessages(t *testing.T) {
	// Property: any byte string signs and verifies; verification binds the
	// exact bytes (append/prepend breaks it).
	s := newTestSetup(t, 1)
	f := func(msg []byte) bool {
		sig, err := Sign(rand.Reader, s.pk, s.keys[0], msg)
		if err != nil {
			return false
		}
		if Verify(s.pk, msg, sig) != nil {
			return false
		}
		altered := append(append([]byte(nil), msg...), 0x00)
		return Verify(s.pk, altered, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

func TestIssuerKeysAreDistinct(t *testing.T) {
	s := newTestSetup(t, 6)
	seen := make(map[string]bool)
	for i, k := range s.keys {
		a := string(k.A.Marshal())
		x := k.X.String()
		if seen[a] || seen[x] {
			t.Fatalf("key %d repeats material", i)
		}
		seen[a] = true
		seen[x] = true
		if k.Grp.Cmp(s.grp) != 0 {
			t.Fatalf("key %d has wrong group component", i)
		}
	}
}

func TestFastRevocationCheckerConcurrent(t *testing.T) {
	s := newTestSetup(t, 6)
	checker := NewFastRevocationChecker(s.pk, nil)
	msg := []byte("concurrent")

	sigs := make([]*Signature, 3)
	for i := range sigs {
		var err error
		sigs[i], err = SignWithMode(rand.Reader, s.pk, s.keys[i], msg, FixedGenerators)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Writers add tokens while readers check signatures.
	for i := 3; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			checker.AddToken(s.keys[i].Token())
		}(i)
	}
	for _, sig := range sigs {
		wg.Add(1)
		go func(sig *Signature) {
			defer wg.Done()
			if revoked, _, err := checker.IsRevoked(sig); err != nil || revoked {
				t.Errorf("concurrent check: revoked=%v err=%v", revoked, err)
			}
		}(sig)
	}
	wg.Wait()
	if checker.Len() != 3 {
		t.Fatalf("checker has %d tokens, want 3", checker.Len())
	}
}
