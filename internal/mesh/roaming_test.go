package mesh

import (
	"fmt"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

func TestRoamingBetweenRouters(t *testing.T) {
	d, err := NewDeployment(DeploymentSpec{
		Seed:         5,
		Groups:       1,
		KeysPerGroup: 4,
		Routers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	backbone := d.BuildBackbone(msLink(2))
	if len(backbone) != 2 {
		t.Fatalf("backbone routers = %d", len(backbone))
	}

	u, err := d.AddUser("walker", "grp-0", "MR-0", true)
	if err != nil {
		t.Fatal(err)
	}
	d.Net.Connect("walker", "MR-0", msLink(3))

	// Attach to MR-0.
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)
	if router, ok := u.AttachedRouter(); !ok || router != "MR-0" {
		t.Fatalf("attached to %q, want MR-0", router)
	}
	firstSession := u.RouterSession()

	// The user walks into MR-1's coverage and roams.
	d.Net.Connect("walker", "MR-1", msLink(3))
	u.Roam("MR-1")
	if u.Attached() {
		t.Fatal("roam did not detach")
	}
	d.Routers["MR-1"].StartBeacons(time.Second, 2)
	d.Net.RunFor(3 * time.Second)

	router, ok := u.AttachedRouter()
	if !ok || router != "MR-1" {
		t.Fatalf("after roam attached to %q, want MR-1", router)
	}
	// The new attachment is a completely fresh session (fresh AKA run, no
	// linkable state): different id and keys.
	if firstSession.ID == u.RouterSession().ID {
		t.Fatal("roamed session reused the old session identifier")
	}

	// Data now flows to MR-1, not MR-0.
	if err := u.SendData([]byte("after roam")); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)
	if d.Routers["MR-1"].Stats().DataDelivered != 1 {
		t.Fatal("data not delivered to the new router")
	}
	if d.Routers["MR-0"].Stats().DataDelivered != 0 {
		t.Fatal("data leaked to the old router")
	}
}

func TestRoamingIsUnlinkableAcrossRouters(t *testing.T) {
	// The two routers compare notes: nothing in their session state links
	// the roamer's two attachments (fresh DH shares, fresh signature).
	d, err := NewDeployment(DeploymentSpec{
		Seed: 6, Groups: 1, KeysPerGroup: 4, Routers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eve := NewEavesdropper(d.Net)
	u, err := d.AddUser("walker", "grp-0", "MR-0", true)
	if err != nil {
		t.Fatal(err)
	}
	d.Net.Connect("walker", "MR-0", msLink(1))
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)

	d.Net.Connect("walker", "MR-1", msLink(1))
	u.Roam("MR-1")
	d.Routers["MR-1"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)

	sigs := eve.AccessRequestSignatures()
	if len(sigs) != 2 {
		t.Fatalf("captured %d M.2 signatures, want 2", len(sigs))
	}
	// No shared component between the two access requests.
	if sigs[0].T1.Equal(sigs[1].T1) || sigs[0].T2.Equal(sigs[1].T2) ||
		sigs[0].R.Cmp(sigs[1].R) == 0 || sigs[0].C.Cmp(sigs[1].C) == 0 {
		t.Fatal("roaming attachments share signature components")
	}
}

func TestMetroScaleDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("metro-scale simulation is slow")
	}
	// Four routers in a backbone, three users per cell, one relay chain.
	d, err := NewDeployment(DeploymentSpec{
		Seed:         77,
		Groups:       2,
		KeysPerGroup: 16,
		Routers:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.BuildBackbone(msLink(2))

	total := 0
	for ri := 0; ri < 4; ri++ {
		router := NodeID(fmt.Sprintf("MR-%d", ri))
		var cell []NodeID
		for ui := 0; ui < 3; ui++ {
			id := NodeID(fmt.Sprintf("c%d-u%d", ri, ui))
			group := "grp-0"
			if (ri+ui)%2 == 1 {
				group = "grp-1"
			}
			if _, err := d.AddUser(id, core.GroupID(group), router, true); err != nil {
				t.Fatal(err)
			}
			cell = append(cell, id)
			total++
		}
		d.BuildStar(router, cell, msLink(4))
	}

	for id := range d.Routers {
		d.Routers[id].StartBeacons(time.Second, 3)
	}
	d.Net.RunFor(30 * time.Second)

	attached := 0
	for _, u := range d.Users {
		if u.Attached() {
			attached++
		}
	}
	if attached != total {
		t.Fatalf("attached %d/%d users", attached, total)
	}
	// Every router serves its own cell.
	for ri := 0; ri < 4; ri++ {
		router := fmt.Sprintf("MR-%d", ri)
		if got := d.Routers[NodeID(router)].Router().Sessions(); got != 3 {
			t.Errorf("%s sessions = %d, want 3", router, got)
		}
	}
}
