package mesh

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a station in the simulated network.
type NodeID string

// FrameKind tags simulated radio frames with their protocol message type.
type FrameKind uint8

// Frame kinds, one per PEACE protocol message plus data traffic.
const (
	KindBeacon FrameKind = iota + 1
	KindAccessRequest
	KindAccessConfirm
	KindPeerHello
	KindPeerResponse
	KindPeerConfirm
	KindData
)

func (k FrameKind) String() string {
	switch k {
	case KindBeacon:
		return "M.1-beacon"
	case KindAccessRequest:
		return "M.2-access-request"
	case KindAccessConfirm:
		return "M.3-access-confirm"
	case KindPeerHello:
		return "Mt.1-peer-hello"
	case KindPeerResponse:
		return "Mt.2-peer-response"
	case KindPeerConfirm:
		return "Mt.3-peer-confirm"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is one simulated transmission.
type Frame struct {
	From    NodeID
	To      NodeID // empty for broadcast
	Kind    FrameKind
	Payload []byte
	SentAt  time.Time
}

// Station is anything attached to the medium.
type Station interface {
	// ID returns the station's node id.
	ID() NodeID
	// Receive handles a delivered frame. It runs inside the event loop;
	// implementations may call Network.Send/Broadcast but must not block.
	Receive(f *Frame)
}

// Link describes one directed radio adjacency.
type Link struct {
	Latency time.Duration
	// Loss is the frame-loss probability in [0, 1).
	Loss float64
}

// Clock is the simulator's virtual clock; it satisfies core.Clock.
type Clock struct {
	now time.Time
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() (out any) {
	old := *q
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return out
}

// Metrics aggregates what crossed the medium.
type Metrics struct {
	FramesByKind map[FrameKind]int
	BytesByKind  map[FrameKind]int
	FramesLost   int
	// AKADelays collects per-user authentication delays (beacon receipt →
	// session established), E4's headline series.
	AKADelays []time.Duration
}

// Network is the simulated medium plus the event loop.
type Network struct {
	clock    Clock
	rng      *rand.Rand
	stations map[NodeID]Station
	links    map[NodeID]map[NodeID]Link
	queue    eventQueue
	seq      uint64
	metrics  Metrics
	// taps observe every transmitted frame (before loss), in insertion
	// order — this is the eavesdropper hook.
	taps []func(*Frame)
}

// NewNetwork creates an empty network starting at the given virtual time.
// The seed makes loss decisions reproducible.
func NewNetwork(start time.Time, seed int64) *Network {
	n := &Network{
		rng:      rand.New(rand.NewSource(seed)),
		stations: make(map[NodeID]Station),
		links:    make(map[NodeID]map[NodeID]Link),
	}
	n.clock.now = start
	n.metrics.FramesByKind = make(map[FrameKind]int)
	n.metrics.BytesByKind = make(map[FrameKind]int)
	return n
}

// Clock exposes the virtual clock for wiring into core.Config.
func (n *Network) Clock() *Clock { return &n.clock }

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.clock.now }

// Metrics returns a copy of the aggregate counters.
func (n *Network) Metrics() Metrics {
	m := n.metrics
	m.FramesByKind = make(map[FrameKind]int, len(n.metrics.FramesByKind))
	for k, v := range n.metrics.FramesByKind {
		m.FramesByKind[k] = v
	}
	m.BytesByKind = make(map[FrameKind]int, len(n.metrics.BytesByKind))
	for k, v := range n.metrics.BytesByKind {
		m.BytesByKind[k] = v
	}
	m.AKADelays = append([]time.Duration(nil), n.metrics.AKADelays...)
	return m
}

// recordAKADelay is called by user stations when a session completes.
func (n *Network) recordAKADelay(d time.Duration) {
	n.metrics.AKADelays = append(n.metrics.AKADelays, d)
}

// AddStation attaches a station to the medium.
func (n *Network) AddStation(s Station) {
	n.stations[s.ID()] = s
}

// Station returns a station by id.
func (n *Network) Station(id NodeID) (Station, bool) {
	s, ok := n.stations[id]
	return s, ok
}

// Connect installs a bidirectional link.
func (n *Network) Connect(a, b NodeID, l Link) {
	n.connectOneWay(a, b, l)
	n.connectOneWay(b, a, l)
}

// ConnectOneWay installs a directed link a → b, used to model asymmetric
// radio reach (a router's long-range downlink versus a handset's short
// uplink).
func (n *Network) ConnectOneWay(a, b NodeID, l Link) {
	n.connectOneWay(a, b, l)
}

func (n *Network) connectOneWay(a, b NodeID, l Link) {
	if n.links[a] == nil {
		n.links[a] = make(map[NodeID]Link)
	}
	n.links[a][b] = l
}

// Neighbors returns the ids adjacent to a, sorted for determinism.
func (n *Network) Neighbors(a NodeID) []NodeID {
	out := make([]NodeID, 0, len(n.links[a]))
	for id := range n.links[a] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Tap registers an observer of every transmitted frame (pre-loss): the
// passive global eavesdropper of the threat model.
func (n *Network) Tap(f func(*Frame)) {
	n.taps = append(n.taps, f)
}

// Schedule runs fn at the given virtual-time offset from now.
func (n *Network) Schedule(after time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.queue, &event{at: n.clock.now.Add(after), seq: n.seq, fn: fn})
}

// Send transmits a unicast frame over the (from → to) link; it is dropped
// silently if no link exists or the loss draw fails.
func (n *Network) Send(from, to NodeID, kind FrameKind, payload []byte) {
	f := &Frame{From: from, To: to, Kind: kind, Payload: payload, SentAt: n.clock.now}
	n.transmit(f, to)
}

// Broadcast transmits to every neighbor of from.
func (n *Network) Broadcast(from NodeID, kind FrameKind, payload []byte) {
	f := &Frame{From: from, Kind: kind, Payload: payload, SentAt: n.clock.now}
	for _, nb := range n.Neighbors(from) {
		copyFrame := *f
		copyFrame.To = nb
		n.transmit(&copyFrame, nb)
	}
}

func (n *Network) transmit(f *Frame, to NodeID) {
	for _, tap := range n.taps {
		tap(f)
	}
	n.metrics.FramesByKind[f.Kind]++
	n.metrics.BytesByKind[f.Kind] += len(f.Payload)

	link, ok := n.links[f.From][to]
	if !ok {
		n.metrics.FramesLost++
		return
	}
	if link.Loss > 0 && n.rng.Float64() < link.Loss {
		n.metrics.FramesLost++
		return
	}
	dst, ok := n.stations[to]
	if !ok {
		n.metrics.FramesLost++
		return
	}
	n.Schedule(link.Latency, func() { dst.Receive(f) })
}

// Run processes events until the queue drains or the virtual deadline
// passes, returning the number of events processed.
func (n *Network) Run(until time.Time) int {
	processed := 0
	for n.queue.Len() > 0 {
		next := n.queue[0]
		if next.at.After(until) {
			break
		}
		heap.Pop(&n.queue)
		n.clock.now = next.at
		next.fn()
		processed++
	}
	if n.clock.now.Before(until) {
		n.clock.now = until
	}
	return processed
}

// RunFor is Run with a relative horizon.
func (n *Network) RunFor(d time.Duration) int {
	return n.Run(n.clock.now.Add(d))
}
