// Package mesh is a discrete-event simulator for metropolitan wireless
// mesh networks, the experimental substrate for PEACE's system-level
// claims. The paper evaluates PEACE analytically; this simulator lets the
// repository regenerate those claims as measurements: authentication
// delay and message counts over lossy multihop links (E4), DoS-flood
// shedding (E6), and the bogus-injection / phishing / revocation attack
// scenarios of Section V.A (E8).
//
// The model follows the paper's architecture (Fig. 1): mesh routers form
// the backbone; the downlink router → user is one hop (beacons reach every
// user in coverage), while the uplink may traverse a chain of peer users
// who relay traffic after pairwise user–user authentication. Time is
// virtual: a single event loop drives every station through an injected
// core.Clock, so simulations are deterministic and fast regardless of
// wall-clock pairing costs.
//
// Adversaries are first-class stations: an eavesdropper records every
// frame for the privacy experiments, an injector floods routers with
// bogus access requests, a rogue router broadcasts phishing beacons, and
// a replayer re-transmits captured frames. Each scenario reports what the
// adversary achieved (nothing, if PEACE holds).
package mesh
