package mesh

import (
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/revocation"
)

func msLink(ms int) Link { return Link{Latency: time.Duration(ms) * time.Millisecond} }

func newChainDeployment(t testing.TB, chainLen int, hop Link) *Deployment {
	t.Helper()
	d, err := NewDeployment(DeploymentSpec{
		Seed:         42,
		Groups:       1,
		KeysPerGroup: chainLen + 4,
		Routers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]NodeID, chainLen)
	for i := range ids {
		ids[i] = NodeID(rune('A' + i))
	}
	for i, id := range ids {
		nextHop := NodeID("MR-0")
		if i > 0 {
			nextHop = ids[i-1]
		}
		if _, err := d.AddUser(id, "grp-0", nextHop, true); err != nil {
			t.Fatal(err)
		}
	}
	d.BuildChain("MR-0", ids, hop)
	return d
}

func TestSingleHopAttachment(t *testing.T) {
	d := newChainDeployment(t, 1, msLink(5))
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)

	u := d.Users["A"]
	if !u.Attached() {
		t.Fatal("user did not attach")
	}
	st := u.Stats()
	// Delay = M.2 uplink (5ms) + M.3 downlink (5ms); the beacon latency is
	// not counted (delay starts at beacon receipt).
	if st.AttachDelay != 10*time.Millisecond {
		t.Fatalf("attach delay = %v, want 10ms", st.AttachDelay)
	}
	if d.Routers["MR-0"].Router().Sessions() != 1 {
		t.Fatal("router has no session")
	}
}

func TestMultihopAttachment(t *testing.T) {
	d := newChainDeployment(t, 3, msLink(5))
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(2 * time.Second)

	for _, id := range []NodeID{"A", "B", "C"} {
		if !d.Users[id].Attached() {
			t.Fatalf("user %s did not attach", id)
		}
	}
	// C (3 hops out) must take longer than A (1 hop): C's M.2 relays
	// through B and A.
	if d.Users["C"].Stats().AttachDelay <= d.Users["A"].Stats().AttachDelay {
		t.Fatalf("multihop user attached faster than single-hop: C=%v A=%v",
			d.Users["C"].Stats().AttachDelay, d.Users["A"].Stats().AttachDelay)
	}
	// Relays actually forwarded frames.
	if d.Users["A"].Stats().FramesRelayed == 0 {
		t.Fatal("first-hop relay forwarded nothing")
	}
}

func TestThreeMessagesPerAKA(t *testing.T) {
	d := newChainDeployment(t, 1, msLink(1))
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)

	m := d.Net.Metrics()
	if m.FramesByKind[KindBeacon] != 1 {
		t.Fatalf("beacons = %d, want 1", m.FramesByKind[KindBeacon])
	}
	if m.FramesByKind[KindAccessRequest] != 1 {
		t.Fatalf("M.2 frames = %d, want 1", m.FramesByKind[KindAccessRequest])
	}
	if m.FramesByKind[KindAccessConfirm] != 1 {
		t.Fatalf("M.3 frames = %d, want 1", m.FramesByKind[KindAccessConfirm])
	}
}

func TestLossyLinkRetriesViaNextBeacon(t *testing.T) {
	d, err := NewDeployment(DeploymentSpec{
		Seed:         7,
		Groups:       1,
		KeysPerGroup: 4,
		Routers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddUser("A", "grp-0", "MR-0", true); err != nil {
		t.Fatal(err)
	}
	d.Net.Connect("A", "MR-0", Link{Latency: time.Millisecond, Loss: 0.4})

	d.Routers["MR-0"].StartBeacons(200*time.Millisecond, 30)
	d.Net.RunFor(10 * time.Second)

	if !d.Users["A"].Attached() {
		t.Fatal("user never attached despite 30 beacons on a 40%-loss link")
	}
	if d.Net.Metrics().FramesLost == 0 {
		t.Fatal("loss model dropped nothing at 40%")
	}
}

func TestDataRelayRequiresPeerAuthentication(t *testing.T) {
	d := newChainDeployment(t, 2, msLink(2))
	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)

	a, b := d.Users["A"], d.Users["B"]
	if !a.Attached() || !b.Attached() {
		t.Fatal("setup: users not attached")
	}

	// Without peer authentication, A refuses to relay B's data.
	if err := b.SendData([]byte("premature")); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)
	if a.Stats().RelayDropsUnauth != 1 {
		t.Fatalf("unauthenticated relay drops = %d, want 1", a.Stats().RelayDropsUnauth)
	}
	if d.Routers["MR-0"].Stats().DataDelivered != 0 {
		t.Fatal("data delivered without relay authentication")
	}

	// After B ↔ A peer authentication, data flows.
	if err := b.AuthenticateWithPeer("A"); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)
	if _, ok := a.PeerSession("B"); !ok {
		t.Fatal("peer session not established on responder")
	}
	if err := b.SendData([]byte("relayed")); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)
	if got := d.Routers["MR-0"].Stats().DataDelivered; got != 1 {
		t.Fatalf("data delivered = %d, want 1", got)
	}
}

func TestRogueRouterLuresNobody(t *testing.T) {
	d := newChainDeployment(t, 2, msLink(2))
	// The rogue replays epoch refs captured from a legitimate beacon.
	r := d.Routers["MR-0"].Router()
	urlSnap, ok := r.RevocationSnapshot(revocation.ListURL)
	if !ok {
		t.Fatal("router has no URL snapshot")
	}
	crlSnap, ok := r.RevocationSnapshot(revocation.ListCRL)
	if !ok {
		t.Fatal("router has no CRL snapshot")
	}
	rogue, err := NewRogueRouter(d.Net, "MR-evil", urlSnap.Ref(), crlSnap.Ref())
	if err != nil {
		t.Fatal(err)
	}
	d.Net.Connect("MR-evil", "A", msLink(1))
	d.Net.Connect("MR-evil", "B", msLink(1))

	if err := rogue.BroadcastPhishingBeacon(); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)

	if rogue.Lured != 0 {
		t.Fatalf("rogue router lured %d users", rogue.Lured)
	}
	if d.Users["A"].Stats().RejectedBeacons == 0 {
		t.Fatal("victim did not record the rejected phishing beacon")
	}
}

func TestInjectorFloodIsShedByPuzzles(t *testing.T) {
	d := newChainDeployment(t, 1, msLink(1))
	router := d.Routers["MR-0"]
	router.Router().SetDoSDefense(true)

	inj := NewInjector(d.Net, "attacker", "MR-0")
	d.Net.Connect("attacker", "MR-0", msLink(1))

	router.StartBeacons(100*time.Millisecond, 3)
	d.Net.RunFor(200 * time.Millisecond) // let the injector overhear a beacon
	inj.Flood(10, 5*time.Millisecond)
	d.Net.RunFor(5 * time.Second)

	st := router.Router().Stats()
	if st.RejectedPuzzle < 10 {
		t.Fatalf("puzzle rejections = %d, want ≥ 10", st.RejectedPuzzle)
	}
	// The legitimate user still attached (it solves puzzles).
	if !d.Users["A"].Attached() {
		t.Fatal("legitimate user failed to attach under flood")
	}
	// The flood triggered no expensive verification beyond the legit one.
	if st.ExpensiveVerifications > 2 {
		t.Fatalf("expensive verifications = %d, expected only the legitimate attach(es)", st.ExpensiveVerifications)
	}
}

func TestReplayerGainsNothing(t *testing.T) {
	d := newChainDeployment(t, 1, msLink(1))
	rep := NewReplayer(d.Net, "replayer")
	d.Net.Connect("replayer", "MR-0", msLink(1))
	_ = rep.Captured() // station registered; capture below goes via tap

	// With unicast links the replayer does not hear A→MR-0 frames, so it
	// captures via the tap-based eavesdropper and replays from there.
	eve := NewEavesdropper(d.Net)

	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)
	if !d.Users["A"].Attached() {
		t.Fatal("setup: user not attached")
	}

	sessionsBefore := d.Routers["MR-0"].Router().Sessions()

	// Replay every captured M.2 straight at the router.
	for _, f := range eve.CapturedOfKind(KindAccessRequest) {
		d.Net.Send("replayer", "MR-0", KindAccessRequest, f.Payload)
	}
	d.Net.RunFor(time.Second)

	// A replayed M.2 re-verifies (same valid signature) but yields a
	// session keyed to the original user's r_j — the replayer knows
	// neither r_j nor r_R and gains no usable session. Critically the
	// *data* replay must fail:
	for _, f := range eve.CapturedOfKind(KindData) {
		d.Net.Send("replayer", "MR-0", KindData, f.Payload)
	}
	d.Net.RunFor(time.Second)
	if d.Routers["MR-0"].Stats().DataRejected != 0 && sessionsBefore == 0 {
		t.Fatal("unexpected state")
	}

	// Sequence-replay check at the session layer: send data, replay it.
	if err := d.Users["A"].SendData([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)
	delivered := d.Routers["MR-0"].Stats().DataDelivered
	var dataFrames []Frame
	for _, f := range eve.CapturedOfKind(KindData) {
		dataFrames = append(dataFrames, f)
	}
	if len(dataFrames) == 0 {
		t.Fatal("no data frames captured")
	}
	for _, f := range dataFrames {
		d.Net.Send("replayer", "MR-0", KindData, f.Payload)
	}
	d.Net.RunFor(time.Second)
	after := d.Routers["MR-0"].Stats()
	if after.DataDelivered != delivered {
		t.Fatalf("replayed data was delivered (%d → %d)", delivered, after.DataDelivered)
	}
	if after.DataRejected == 0 {
		t.Fatal("replayed data not counted as rejected")
	}
}

func TestEavesdropperSeesOnlyCiphertext(t *testing.T) {
	d := newChainDeployment(t, 1, msLink(1))
	eve := NewEavesdropper(d.Net)

	d.Routers["MR-0"].StartBeacons(time.Second, 1)
	d.Net.RunFor(time.Second)
	secret := []byte("top-secret citizen traffic")
	if err := d.Users["A"].SendData(secret); err != nil {
		t.Fatal(err)
	}
	d.Net.RunFor(time.Second)

	for _, f := range eve.CapturedOfKind(KindData) {
		if containsSubslice(f.Payload, secret) {
			t.Fatal("plaintext visible on the medium")
		}
	}
	// And no frame of any kind contains the user identity.
	uid := []byte("A") // station id == essential attribute in the fixture
	_ = uid            // single-byte ids would false-positive; check the explicit uid form
	for _, f := range eve.Frames {
		if containsSubslice(f.Payload, []byte("user-grp")) {
			t.Fatal("a frame carries an enrolled uid pattern")
		}
	}
}

func containsSubslice(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestBurstAttachViaBatchWindow has a star of users all answer one beacon;
// the router buffers the M.2 burst for a batch window and verifies it as
// one batch. Every user must attach, and the batch path must have seen all
// the requests.
func TestBurstAttachViaBatchWindow(t *testing.T) {
	const n = 6
	d, err := NewDeployment(DeploymentSpec{
		Seed:         7,
		Groups:       1,
		KeysPerGroup: n + 2,
		Routers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(rune('A' + i))
		if _, err := d.AddUser(ids[i], "grp-0", "MR-0", true); err != nil {
			t.Fatal(err)
		}
	}
	d.BuildStar("MR-0", ids, msLink(5))

	rs := d.Routers["MR-0"]
	rs.SetBatchWindow(50 * time.Millisecond)
	rs.StartBeacons(time.Second, 1)
	d.Net.RunFor(2 * time.Second)

	for _, id := range ids {
		u := d.Users[id]
		if !u.Attached() {
			t.Fatalf("user %s did not attach through the batch window", id)
		}
		// The burst drains only after the window: attachment delay is the
		// two hops plus the buffering time.
		if got := u.Stats().AttachDelay; got < 50*time.Millisecond {
			t.Fatalf("user %s attach delay %v is shorter than the batch window", id, got)
		}
	}
	stats := rs.Router().Stats()
	if stats.SessionsEstablished != n {
		t.Fatalf("router established %d sessions, want %d", stats.SessionsEstablished, n)
	}
	if stats.RequestsSeen != n {
		t.Fatalf("router saw %d requests, want %d", stats.RequestsSeen, n)
	}

	// The window restores per-request handling when cleared.
	rs.SetBatchWindow(0)
	late, err := d.AddUser("Z", "grp-0", "MR-0", true)
	if err != nil {
		t.Fatal(err)
	}
	d.Net.Connect("MR-0", "Z", msLink(5))
	rs.StartBeacons(time.Second, 1)
	d.Net.RunFor(2 * time.Second)
	if !late.Attached() {
		t.Fatal("late user did not attach on the per-request path")
	}
}
