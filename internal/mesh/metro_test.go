package mesh

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/backbone"
	"github.com/peace-mesh/peace/internal/transport"
)

// TestRoamingWaveExactlyOnePairing drives the real metro backbone — not
// the simulated-radio handoff of UserStation.Roam, which re-runs the full
// AKA by design — through a roaming wave: every client performs K
// cross-router moves and every one of them must ride its resumption
// ticket, leaving exactly one full pairing per client. This is the mesh
// scenario counterpart of the unlinkability test below: ticket handoff
// trades the fresh-AKA unlinkability of a plain roam for continuity, and
// the accountability escrow is re-logged by the adopting router instead.
func TestRoamingWaveExactlyOnePairing(t *testing.T) {
	const (
		routers = 5
		users   = 10
		moves   = 4
	)
	m, err := backbone.StartMetro(backbone.MetroConfig{
		Routers:        routers,
		Users:          users,
		Moves:          moves,
		GossipInterval: 50 * time.Millisecond,
		GraceWindow:    30 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	rep, err := m.RoamingWave(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Pairings != users {
		t.Fatalf("pairings = %d across %d clients × %d moves, want exactly %d",
			rep.Pairings, users, moves, users)
	}
	if rep.Resumed != users*moves {
		t.Fatalf("resumed = %d, want %d (every move a ticket handoff)", rep.Resumed, users*moves)
	}
	if rep.Fallbacks != 0 {
		t.Fatalf("%d moves fell back to a fresh pairing", rep.Fallbacks)
	}

	// Router-side ledger agrees: the metro established exactly one session
	// per client the expensive way and served every move off a ticket.
	established, resumed := 0, 0
	for _, r := range m.Net.Routers {
		st := r.Stats()
		established += st.SessionsEstablished
		resumed += st.SessionsResumed
	}
	if established != users {
		t.Errorf("router-side sessions established = %d, want %d", established, users)
	}
	if resumed != users*moves {
		t.Errorf("router-side sessions resumed = %d, want %d", resumed, users*moves)
	}
}

// TestHandoffReEscrowsAccountability checks the accountability half of a
// ticket handoff: the adopting router re-logs the roamed session's M.2
// escrow under the new session id, so the network operator can audit the
// session at the router actually serving it — continuity never opens an
// accountability gap.
func TestHandoffReEscrowsAccountability(t *testing.T) {
	m, err := backbone.StartMetro(backbone.MetroConfig{
		Routers:        2,
		Users:          1,
		GossipInterval: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := transport.NewClient(conn, m.Servers[0].Addr(), m.Net.Users[0], transport.ClientConfig{
		RetransmitTimeout: 80 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		MaxRetries:        16,
	})
	first, err := cl.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cl.Retarget(m.Servers[1].Addr())
	adopted, err := cl.Resume(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The adopting router can answer an audit for the session it serves...
	if _, err := m.Net.NO.AuditSession(m.Net.Routers[1], adopted.ID); err != nil {
		t.Fatalf("audit at adopting router: %v", err)
	}
	// ...and the original escrow at the issuing router stays on file.
	if _, err := m.Net.NO.AuditSession(m.Net.Routers[0], first.ID); err != nil {
		t.Fatalf("audit at issuing router: %v", err)
	}
	// A router that never saw the session has nothing to answer with.
	if _, err := m.Net.NO.AuditSession(m.Net.Routers[0], adopted.ID); err == nil {
		t.Fatal("issuing router answered an audit for a session it never adopted")
	}
}
