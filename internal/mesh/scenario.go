package mesh

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
)

// Deployment bundles a fully provisioned PEACE network attached to a
// simulator: operator, TTP, group managers, certified routers and enrolled
// users. It is the shared fixture for the examples, the meshsim tool and
// the experiment harness.
type Deployment struct {
	Net   *Network
	Cfg   core.Config
	NO    *core.NetworkOperator
	TTP   *core.TTP
	GMs   map[core.GroupID]*core.GroupManager
	Users map[NodeID]*UserStation
	// Routers maps router id → its station.
	Routers map[NodeID]*RouterStation
}

// DeploymentSpec configures NewDeployment.
type DeploymentSpec struct {
	// Start is the initial virtual time. Zero means Unix epoch 1751600000.
	Start time.Time
	// Seed drives the loss model.
	Seed int64
	// Groups is the number of user groups; each gets KeysPerGroup issued.
	Groups int
	// KeysPerGroup bounds enrollments per group.
	KeysPerGroup int
	// Routers is the number of mesh routers.
	Routers int
	// FreshnessWindow defaults to one minute.
	FreshnessWindow time.Duration
	// PuzzleDifficulty defaults to 4 (cheap, for simulation).
	PuzzleDifficulty uint8
}

// NewDeployment provisions the PEACE entities on a fresh simulated
// network. Topology (links and user stations) is added by the caller.
func NewDeployment(spec DeploymentSpec) (*Deployment, error) {
	if spec.Start.IsZero() {
		spec.Start = time.Unix(1751600000, 0)
	}
	if spec.FreshnessWindow == 0 {
		spec.FreshnessWindow = time.Minute
	}
	if spec.PuzzleDifficulty == 0 {
		spec.PuzzleDifficulty = 4
	}

	net := NewNetwork(spec.Start, spec.Seed)
	cfg := core.Config{
		Clock:            net.Clock(),
		FreshnessWindow:  spec.FreshnessWindow,
		PuzzleDifficulty: spec.PuzzleDifficulty,
	}

	no, err := core.NewNetworkOperator(cfg)
	if err != nil {
		return nil, err
	}
	ttp, err := core.NewTTP(cfg, no.Authority())
	if err != nil {
		return nil, err
	}

	d := &Deployment{
		Net:     net,
		Cfg:     cfg,
		NO:      no,
		TTP:     ttp,
		GMs:     make(map[core.GroupID]*core.GroupManager),
		Users:   make(map[NodeID]*UserStation),
		Routers: make(map[NodeID]*RouterStation),
	}

	for gi := 0; gi < spec.Groups; gi++ {
		gid := core.GroupID(fmt.Sprintf("grp-%d", gi))
		gm, err := core.NewGroupManager(cfg, gid, no.Authority())
		if err != nil {
			return nil, err
		}
		if err := no.RegisterUserGroup(gm, ttp, spec.KeysPerGroup); err != nil {
			return nil, err
		}
		d.GMs[gid] = gm
	}

	for ri := 0; ri < spec.Routers; ri++ {
		id := fmt.Sprintf("MR-%d", ri)
		r, err := core.NewMeshRouter(cfg, id, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		c, err := no.EnrollRouter(id, r.Public())
		if err != nil {
			return nil, err
		}
		r.SetCertificate(c)
		d.Routers[NodeID(id)] = NewRouterStation(net, r)
	}

	if err := d.PushRevocations(); err != nil {
		return nil, err
	}
	return d, nil
}

// PushRevocations issues fresh CRL/URL bundles and distributes them to
// every router (the operator's secure channel) and, as full snapshots,
// to every user station (the simulator's stand-in for the transport
// layer's delta fetch — the simulator has no unicast fetch path).
func (d *Deployment) PushRevocations() error {
	crl, url, err := d.NO.RevocationBundles()
	if err != nil {
		return err
	}
	for _, r := range d.Routers {
		if err := r.Router().UpdateRevocations(crl, url); err != nil {
			return err
		}
	}
	for _, us := range d.Users {
		for _, snap := range []*revocation.Snapshot{crl.Snapshot, url.Snapshot} {
			if err := us.User().InstallRevocationSnapshot(snap); err != nil && !errors.Is(err, revocation.ErrRollback) {
				return err
			}
		}
	}
	return nil
}

// AddUser enrolls a new user with the given group and attaches its station
// with the given uplink next hop.
func (d *Deployment) AddUser(id NodeID, group core.GroupID, nextHop NodeID, autoAttach bool) (*UserStation, error) {
	gm, ok := d.GMs[group]
	if !ok {
		return nil, fmt.Errorf("deployment: %w: %q", core.ErrUnknownGroup, group)
	}
	u, err := core.NewUser(d.Cfg, core.Identity{
		Essential:  core.UserID(id),
		Attributes: []core.Attribute{{Group: group, Role: "member"}},
	}, d.NO.Authority(), d.NO.GroupPublicKey())
	if err != nil {
		return nil, err
	}
	if err := core.EnrollUser(u, gm, d.TTP); err != nil {
		return nil, err
	}
	// Bootstrap the new user's revocation state from the operator (joining
	// after the last push would otherwise leave it unable to validate
	// beacons).
	crl, url, err := d.NO.RevocationBundles()
	if err != nil {
		return nil, err
	}
	for _, snap := range []*revocation.Snapshot{crl.Snapshot, url.Snapshot} {
		if err := u.InstallRevocationSnapshot(snap); err != nil {
			return nil, err
		}
	}
	us := NewUserStation(d.Net, id, u, group, nextHop, autoAttach)
	d.Users[id] = us
	return us, nil
}

// BuildChain wires the paper's multihop-uplink topology for a linear
// chain router ← u1 ← u2 ← ... ← uN: the router's long-range downlink
// reaches every user directly (one hop, per the paper's assumption), u1
// has a direct uplink, and each subsequent user's uplink goes through its
// predecessor (bidirectional peer links).
func (d *Deployment) BuildChain(router NodeID, users []NodeID, hop Link) {
	prev := router
	for i, u := range users {
		if i == 0 {
			d.Net.Connect(u, prev, hop)
		} else {
			d.Net.Connect(u, prev, hop)         // peer link for uplink relay
			d.Net.ConnectOneWay(router, u, hop) // long-range downlink only
		}
		prev = u
	}
}

// BuildBackbone wires the mesh routers into a linear wireless backbone
// (the paper's layer-2: "stationary mesh routers form a multihop backbone")
// and returns the router ids in order. Router-to-router traffic is assumed
// protected by the pre-established operator channels, so the simulator
// models the backbone as plain links.
func (d *Deployment) BuildBackbone(link Link) []NodeID {
	ids := make([]NodeID, 0, len(d.Routers))
	for id := range d.Routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 1; i < len(ids); i++ {
		d.Net.Connect(ids[i-1], ids[i], link)
	}
	return ids
}

// BuildStar attaches each user directly to the router: the single-hop
// dense-coverage cell of a metro deployment.
func (d *Deployment) BuildStar(router NodeID, users []NodeID, link Link) {
	for _, u := range users {
		d.Net.Connect(u, router, link)
	}
}
