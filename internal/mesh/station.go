package mesh

import (
	"crypto/rand"
	"time"

	"github.com/peace-mesh/peace/internal/core"
)

// RouterStats extends the core router counters with simulator-level ones.
type RouterStats struct {
	Core          core.RouterStats
	DataDelivered int
	DataRejected  int
}

// RouterStation adapts a core.MeshRouter to the simulated medium.
type RouterStation struct {
	net    *Network
	id     NodeID
	router *core.MeshRouter

	beaconPeriod time.Duration
	beaconsLeft  int

	// batchWindow, when non-zero, buffers incoming M.2s for that long and
	// drains them through the router's batch verification pipeline.
	batchWindow    time.Duration
	pendingM2      []pendingAccess
	drainScheduled bool

	dataDelivered int
	dataRejected  int
}

// pendingAccess is a buffered access request with its arrival hop, so the
// M.3 reply can be routed back the way the request came.
type pendingAccess struct {
	m2   *core.AccessRequest
	from NodeID
}

// NewRouterStation wraps router and attaches it to the network.
func NewRouterStation(n *Network, router *core.MeshRouter) *RouterStation {
	rs := &RouterStation{net: n, id: NodeID(router.ID()), router: router}
	n.AddStation(rs)
	return rs
}

// ID implements Station.
func (r *RouterStation) ID() NodeID { return r.id }

// Router exposes the wrapped core router.
func (r *RouterStation) Router() *core.MeshRouter { return r.router }

// Stats returns combined counters.
func (r *RouterStation) Stats() RouterStats {
	return RouterStats{
		Core:          r.router.Stats(),
		DataDelivered: r.dataDelivered,
		DataRejected:  r.dataRejected,
	}
}

// StartBeacons schedules count periodic beacons starting immediately.
func (r *RouterStation) StartBeacons(period time.Duration, count int) {
	r.beaconPeriod = period
	r.beaconsLeft = count
	r.net.Schedule(0, r.emitBeacon)
}

// SetBatchWindow makes the station collect M.2 access requests for d
// before verifying them as one batch (M.2 bursts right after a beacon are
// the common case in dense deployments). A zero duration restores
// per-request handling.
func (r *RouterStation) SetBatchWindow(d time.Duration) {
	r.batchWindow = d
}

// drainAccessRequests verifies the buffered burst and replies to the
// survivors along their arrival hops.
func (r *RouterStation) drainAccessRequests() {
	batch := r.pendingM2
	r.pendingM2 = nil
	r.drainScheduled = false
	if len(batch) == 0 {
		return
	}
	ms := make([]*core.AccessRequest, len(batch))
	for i, p := range batch {
		ms[i] = p.m2
	}
	results := r.router.HandleAccessRequestBatch(ms)
	for i, p := range batch {
		if results[i].Err != nil {
			continue
		}
		r.net.Send(r.id, p.from, KindAccessConfirm, results[i].Confirm.Marshal())
	}
}

func (r *RouterStation) emitBeacon() {
	if r.beaconsLeft <= 0 {
		return
	}
	r.beaconsLeft--
	b, err := r.router.Beacon()
	if err == nil {
		r.net.Broadcast(r.id, KindBeacon, b.Marshal())
	}
	if r.beaconsLeft > 0 {
		r.net.Schedule(r.beaconPeriod, r.emitBeacon)
	}
}

// Receive implements Station.
func (r *RouterStation) Receive(f *Frame) {
	switch f.Kind {
	case KindAccessRequest:
		m2, err := core.UnmarshalAccessRequest(f.Payload)
		if err != nil {
			return
		}
		if r.batchWindow > 0 {
			r.pendingM2 = append(r.pendingM2, pendingAccess{m2: m2, from: f.From})
			if !r.drainScheduled {
				r.drainScheduled = true
				r.net.Schedule(r.batchWindow, r.drainAccessRequests)
			}
			return
		}
		m3, _, err := r.router.HandleAccessRequest(m2)
		if err != nil {
			return
		}
		// Reply along the arrival hop; relays route it back.
		r.net.Send(r.id, f.From, KindAccessConfirm, m3.Marshal())

	case KindData:
		frame, err := core.UnmarshalDataFrame(f.Payload)
		if err != nil {
			r.dataRejected++
			return
		}
		sess, ok := r.router.SessionByID(frame.Session)
		if !ok {
			r.dataRejected++
			return
		}
		if _, err := sess.OpenData(frame); err != nil {
			r.dataRejected++
			return
		}
		r.dataDelivered++
	}
}

// UserStats counts a user station's simulator-level activity.
type UserStats struct {
	Attached             bool
	AttachDelay          time.Duration
	DataSent             int
	FramesRelayed        int
	RelayDropsUnauth     int
	PeerSessions         int
	BeaconsSeen          int
	RejectedBeacons      int
	FailedAuthentication int
}

// UserStation adapts a core.User to the medium, including the multihop
// uplink relay behaviour of the paper: AKA messages are forwarded for
// anyone (they are self-authenticating), data frames only for peers that
// completed user–user authentication.
type UserStation struct {
	net  *Network
	id   NodeID
	user *core.User
	// group is the credential role used when authenticating.
	group core.GroupID
	// nextHop is the uplink neighbor toward the serving router (possibly
	// the router itself).
	nextHop NodeID
	// autoAttach makes the station answer the first valid beacon.
	autoAttach bool

	// routerSession is the established user–router session.
	routerSession *core.Session
	beaconSeenAt  time.Time
	attachPending bool

	// peers maps authenticated neighbor → pairwise session.
	peers map[NodeID]*core.Session
	// pendingPeer tracks outbound peer AKA targets.
	pendingPeer map[NodeID]bool
	// returnPath routes AKA confirmations back: marshaled (GR ‖ GJ) → the
	// hop an M.2 arrived from.
	returnPath map[string]NodeID

	stats UserStats
}

// NewUserStation wraps user and attaches it to the network.
func NewUserStation(n *Network, id NodeID, user *core.User, group core.GroupID, nextHop NodeID, autoAttach bool) *UserStation {
	us := &UserStation{
		net:         n,
		id:          id,
		user:        user,
		group:       group,
		nextHop:     nextHop,
		autoAttach:  autoAttach,
		peers:       make(map[NodeID]*core.Session),
		pendingPeer: make(map[NodeID]bool),
		returnPath:  make(map[string]NodeID),
	}
	n.AddStation(us)
	return us
}

// ID implements Station.
func (u *UserStation) ID() NodeID { return u.id }

// User exposes the wrapped core user.
func (u *UserStation) User() *core.User { return u.user }

// Stats returns the station counters.
func (u *UserStation) Stats() UserStats { return u.stats }

// Attached reports whether the user–router AKA completed.
func (u *UserStation) Attached() bool { return u.routerSession != nil }

// RouterSession returns the established uplink session.
func (u *UserStation) RouterSession() *core.Session { return u.routerSession }

// PeerSession returns the pairwise session with a neighbor, if any.
func (u *UserStation) PeerSession(id NodeID) (*core.Session, bool) {
	s, ok := u.peers[id]
	return s, ok
}

// AuthenticateWithPeer starts the user–user AKA with a neighbor.
func (u *UserStation) AuthenticateWithPeer(peer NodeID) error {
	hello, err := u.user.StartPeerAuth(u.group)
	if err != nil {
		return err
	}
	u.pendingPeer[peer] = true
	u.net.Send(u.id, peer, KindPeerHello, hello.Marshal())
	return nil
}

// SendData seals payload under the router session and sends it up the
// relay chain.
func (u *UserStation) SendData(payload []byte) error {
	if u.routerSession == nil {
		return core.ErrNoSession
	}
	frame, err := u.routerSession.SealData(rand.Reader, payload)
	if err != nil {
		return err
	}
	u.stats.DataSent++
	u.net.Send(u.id, u.nextHop, KindData, frame.Marshal())
	return nil
}

// Receive implements Station.
func (u *UserStation) Receive(f *Frame) {
	switch f.Kind {
	case KindBeacon:
		u.handleBeacon(f)
	case KindAccessRequest:
		u.relayAccessRequest(f)
	case KindAccessConfirm:
		u.handleAccessConfirm(f)
	case KindPeerHello:
		u.handlePeerHello(f)
	case KindPeerResponse:
		u.handlePeerResponse(f)
	case KindPeerConfirm:
		u.handlePeerConfirm(f)
	case KindData:
		u.relayData(f)
	}
}

func (u *UserStation) handleBeacon(f *Frame) {
	u.stats.BeaconsSeen++
	// Attached stations just refresh URL/generator state. Unattached
	// stations (re-)attempt on every valid beacon, which retries attaches
	// whose M.2 or M.3 was lost.
	if !u.autoAttach || u.routerSession != nil {
		// Still process for URL/generator caching when already attached.
		if b, err := core.UnmarshalBeacon(f.Payload); err == nil {
			_ = u.user.ObserveBeacon(b)
		}
		return
	}
	b, err := core.UnmarshalBeacon(f.Payload)
	if err != nil {
		u.stats.RejectedBeacons++
		return
	}
	m2, err := u.user.HandleBeacon(b, u.group)
	if err != nil {
		u.stats.RejectedBeacons++
		return
	}
	u.beaconSeenAt = u.net.Now()
	u.attachPending = true
	u.net.Send(u.id, u.nextHop, KindAccessRequest, m2.Marshal())
}

func (u *UserStation) relayAccessRequest(f *Frame) {
	m2, err := core.UnmarshalAccessRequest(f.Payload)
	if err != nil {
		return
	}
	key := string(m2.GR.Marshal()) + string(m2.GJ.Marshal())
	u.returnPath[key] = f.From
	u.stats.FramesRelayed++
	u.net.Send(u.id, u.nextHop, KindAccessRequest, f.Payload)
}

func (u *UserStation) handleAccessConfirm(f *Frame) {
	m3, err := core.UnmarshalAccessConfirm(f.Payload)
	if err != nil {
		return
	}
	// Mine?
	if u.attachPending {
		if sess, err := u.user.HandleAccessConfirm(m3); err == nil {
			u.routerSession = sess
			u.attachPending = false
			u.stats.Attached = true
			u.stats.AttachDelay = u.net.Now().Sub(u.beaconSeenAt)
			u.net.recordAKADelay(u.stats.AttachDelay)
			return
		}
	}
	// Otherwise route back along the recorded path.
	key := string(m3.GR.Marshal()) + string(m3.GJ.Marshal())
	if prev, ok := u.returnPath[key]; ok {
		delete(u.returnPath, key)
		u.stats.FramesRelayed++
		u.net.Send(u.id, prev, KindAccessConfirm, f.Payload)
	}
}

func (u *UserStation) handlePeerHello(f *Frame) {
	hello, err := core.UnmarshalPeerHello(f.Payload)
	if err != nil {
		return
	}
	resp, sess, err := u.user.HandlePeerHello(hello, u.group)
	if err != nil {
		u.stats.FailedAuthentication++
		return
	}
	u.peers[f.From] = sess
	u.stats.PeerSessions++
	u.net.Send(u.id, f.From, KindPeerResponse, resp.Marshal())
}

func (u *UserStation) handlePeerResponse(f *Frame) {
	resp, err := core.UnmarshalPeerResponse(f.Payload)
	if err != nil {
		return
	}
	if !u.pendingPeer[f.From] {
		return
	}
	confirm, sess, err := u.user.HandlePeerResponse(resp)
	if err != nil {
		u.stats.FailedAuthentication++
		delete(u.pendingPeer, f.From)
		return
	}
	delete(u.pendingPeer, f.From)
	u.peers[f.From] = sess
	u.stats.PeerSessions++
	u.net.Send(u.id, f.From, KindPeerConfirm, confirm.Marshal())
}

func (u *UserStation) handlePeerConfirm(f *Frame) {
	confirm, err := core.UnmarshalPeerConfirm(f.Payload)
	if err != nil {
		return
	}
	if _, err := u.user.HandlePeerConfirm(confirm); err != nil {
		u.stats.FailedAuthentication++
	}
}

func (u *UserStation) relayData(f *Frame) {
	// The paper's cooperation rule: relay data only for authenticated
	// neighbors (pairwise key established).
	if _, ok := u.peers[f.From]; !ok {
		u.stats.RelayDropsUnauth++
		return
	}
	u.stats.FramesRelayed++
	u.net.Send(u.id, u.nextHop, KindData, f.Payload)
}

// Roam detaches the station from its current router and points its uplink
// at a new next hop; the station re-authenticates on the next valid beacon
// it hears. This is the ticketless roam: a fresh three-way AKA whose whole
// point is unlinkability across attachments (see the roaming tests). The
// continuity-preserving alternative — a resumption-ticket handoff whose
// ownership transfer rides the inter-router plane — lives in
// internal/backbone and is exercised by the metro scenarios.
func (u *UserStation) Roam(newNextHop NodeID) {
	u.nextHop = newNextHop
	u.routerSession = nil
	u.attachPending = false
}

// AttachedRouter returns the id of the serving router, if attached.
func (u *UserStation) AttachedRouter() (string, bool) {
	if u.routerSession == nil {
		return "", false
	}
	return u.routerSession.Peer, true
}
