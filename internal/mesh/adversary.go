package mesh

import (
	"crypto/rand"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
)

// Eavesdropper is the passive global adversary of the threat model: it
// records every frame on the medium via a tap. The privacy experiments ask
// what it can conclude — which, if PEACE holds, is nothing about user
// identities or session linkage.
type Eavesdropper struct {
	Frames []Frame
}

// NewEavesdropper installs a tap on the network.
func NewEavesdropper(n *Network) *Eavesdropper {
	e := &Eavesdropper{}
	n.Tap(func(f *Frame) {
		cp := *f
		cp.Payload = append([]byte(nil), f.Payload...)
		e.Frames = append(e.Frames, cp)
	})
	return e
}

// CapturedOfKind returns all recorded frames of one kind.
func (e *Eavesdropper) CapturedOfKind(k FrameKind) []Frame {
	var out []Frame
	for _, f := range e.Frames {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// AccessRequestSignatures parses the group signatures from all captured
// M.2 frames — the raw material for linkability analysis.
func (e *Eavesdropper) AccessRequestSignatures() []*sgs.Signature {
	var out []*sgs.Signature
	for _, f := range e.CapturedOfKind(KindAccessRequest) {
		if m2, err := core.UnmarshalAccessRequest(f.Payload); err == nil {
			out = append(out, m2.Sig)
		}
	}
	return out
}

// Injector floods a target with bogus access requests — the
// connection-depletion DoS attacker of Section V.A. It fabricates
// structurally valid M.2s with garbage signatures, echoing the g^{r_R} of
// the most recent beacon it overheard. It never solves puzzles (solving at
// the flood rate is exactly the cost the defense imposes).
type Injector struct {
	net    *Network
	id     NodeID
	target NodeID

	lastGR *bn256.G1
	Sent   int
}

// NewInjector attaches a flooding station.
func NewInjector(n *Network, id NodeID, target NodeID) *Injector {
	inj := &Injector{net: n, id: id, target: target}
	n.AddStation(inj)
	return inj
}

// ID implements Station.
func (a *Injector) ID() NodeID { return a.id }

// Receive overhears beacons to learn a current g^{r_R}.
func (a *Injector) Receive(f *Frame) {
	if f.Kind != KindBeacon {
		return
	}
	if b, err := core.UnmarshalBeacon(f.Payload); err == nil {
		a.lastGR = b.GR
	}
}

// Flood schedules count bogus M.2s at the given interval.
func (a *Injector) Flood(count int, interval time.Duration) {
	for i := 0; i < count; i++ {
		a.net.Schedule(time.Duration(i)*interval, a.injectOne)
	}
}

func (a *Injector) injectOne() {
	if a.lastGR == nil {
		return
	}
	k, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return
	}
	bogus := &core.AccessRequest{
		GJ:        new(bn256.G1).ScalarBaseMult(k),
		GR:        a.lastGR,
		Timestamp: a.net.Now(),
		Sig:       bogusSignature(),
	}
	a.Sent++
	a.net.Send(a.id, a.target, KindAccessRequest, bogus.Marshal())
}

// bogusSignature fabricates a structurally valid, cryptographically
// worthless group signature — the best an outsider can do.
func bogusSignature() *sgs.Signature {
	r, _ := bn256.RandomScalar(rand.Reader)
	c, _ := bn256.RandomScalar(rand.Reader)
	sa, _ := bn256.RandomScalar(rand.Reader)
	sx, _ := bn256.RandomScalar(rand.Reader)
	sd, _ := bn256.RandomScalar(rand.Reader)
	_, t1, _ := bn256.RandomG1(rand.Reader)
	_, t2, _ := bn256.RandomG1(rand.Reader)
	return &sgs.Signature{
		Mode: sgs.PerMessageGenerators,
		R:    r, T1: t1, T2: t2, C: c, SAlpha: sa, SX: sx, SDelta: sd,
	}
}

// RogueRouter is the phishing adversary: it broadcasts beacons for a
// fabricated identity with a self-signed certificate (it has no NSK), and
// counts how many users answer. Against PEACE the count stays zero.
type RogueRouter struct {
	net     *Network
	id      NodeID
	keyPair *cert.KeyPair
	urlRef  revocation.Ref
	crlRef  revocation.Ref
	clock   core.Clock

	Lured int // M.2s received from victims
}

// NewRogueRouter attaches a phishing router. It replays legitimate URL and
// CRL epoch references (an attacker can capture those from real beacons)
// but cannot forge the certificate.
func NewRogueRouter(n *Network, id NodeID, urlRef, crlRef revocation.Ref) (*RogueRouter, error) {
	kp, err := cert.GenerateKeyPair(rand.Reader)
	if err != nil {
		return nil, err
	}
	rr := &RogueRouter{net: n, id: id, keyPair: kp, urlRef: urlRef, crlRef: crlRef, clock: n.Clock()}
	n.AddStation(rr)
	return rr, nil
}

// ID implements Station.
func (rr *RogueRouter) ID() NodeID { return rr.id }

// Receive counts phished access requests.
func (rr *RogueRouter) Receive(f *Frame) {
	if f.Kind == KindAccessRequest {
		rr.Lured++
	}
}

// BroadcastPhishingBeacon emits one fake M.1 with a self-signed cert.
func (rr *RogueRouter) BroadcastPhishingBeacon() error {
	selfCert, err := cert.IssueCertificate(rand.Reader, rr.keyPair, string(rr.id), rr.keyPair.Public(), rr.clock.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	rho, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return err
	}
	g := new(bn256.G1).ScalarBaseMult(rho)
	rR, err := bn256.RandomScalar(rand.Reader)
	if err != nil {
		return err
	}
	b := &core.Beacon{
		RouterID:  string(rr.id),
		G:         g,
		GR:        new(bn256.G1).ScalarMult(g, rR),
		Timestamp: rr.clock.Now(),
		Cert:      selfCert,
		URLRef:    rr.urlRef,
		CRLRef:    rr.crlRef,
	}
	sig, err := rr.keyPair.Sign(rand.Reader, b.SignedBody())
	if err != nil {
		return err
	}
	b.Signature = sig
	rr.net.Broadcast(rr.id, KindBeacon, b.Marshal())
	return nil
}

// Replayer captures frames of chosen kinds and can re-transmit them later
// — the replay attacker.
type Replayer struct {
	net      *Network
	id       NodeID
	captured []Frame
}

// NewReplayer attaches a replaying station that records frames it can
// hear (it must be linked into the topology like any station).
func NewReplayer(n *Network, id NodeID) *Replayer {
	r := &Replayer{net: n, id: id}
	n.AddStation(r)
	return r
}

// ID implements Station.
func (r *Replayer) ID() NodeID { return r.id }

// Receive records everything.
func (r *Replayer) Receive(f *Frame) {
	cp := *f
	cp.Payload = append([]byte(nil), f.Payload...)
	r.captured = append(r.captured, cp)
}

// Captured returns the number of captured frames.
func (r *Replayer) Captured() int { return len(r.captured) }

// ReplayAll re-transmits every captured frame of the given kind to the
// target.
func (r *Replayer) ReplayAll(kind FrameKind, target NodeID) int {
	sent := 0
	for _, f := range r.captured {
		if f.Kind != kind {
			continue
		}
		r.net.Send(r.id, target, f.Kind, f.Payload)
		sent++
	}
	return sent
}
