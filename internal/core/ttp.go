package core

import (
	"fmt"
	"sync"

	"github.com/peace-mesh/peace/internal/cert"
)

// TTP is the offline trusted third party. It stores the masked tokens
// A_{i,j} ⊕ x_j received from the network operator during setup and
// forwards them to users on group-manager request. It can recover neither
// A_{i,j} nor x_j, and it is needed only during setup.
type TTP struct {
	cfg     Config
	signKey *cert.KeyPair
	noPub   cert.PublicKey

	mu sync.Mutex
	// epochs maps group → the key epoch of the stored bundle.
	epochs map[GroupID]uint32
	// store maps group → slot index → masked token.
	store map[GroupID][][]byte
	// delivered maps group → slot index → the user that received it.
	delivered map[GroupID]map[int]UserID
	// userReceipts holds user non-repudiation receipts per delivery.
	userReceipts map[GroupID]map[int]*Receipt
	// bundleReceipts holds the receipts this TTP returned to the NO.
	bundleReceipts map[GroupID]*Receipt
}

// NewTTP creates a TTP trusting the given network-operator signing key.
func NewTTP(cfg Config, noPub cert.PublicKey) (*TTP, error) {
	cfg = cfg.withDefaults()
	kp, err := cert.GenerateKeyPair(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("ttp: %w", err)
	}
	return &TTP{
		cfg:            cfg,
		signKey:        kp,
		noPub:          noPub,
		epochs:         make(map[GroupID]uint32),
		store:          make(map[GroupID][][]byte),
		delivered:      make(map[GroupID]map[int]UserID),
		userReceipts:   make(map[GroupID]map[int]*Receipt),
		bundleReceipts: make(map[GroupID]*Receipt),
	}, nil
}

// Public returns the TTP's receipt-verification key.
func (t *TTP) Public() cert.PublicKey { return t.signKey.Public() }

// ReceiveBundle ingests a signed NO → TTP key bundle (setup Step 7) and
// returns the TTP's signed receipt (the paper's non-repudiation
// acknowledgment).
func (t *TTP) ReceiveBundle(b *TTPKeyBundle) (*Receipt, error) {
	if err := b.Verify(t.noPub); err != nil {
		return nil, fmt.Errorf("ttp: bundle for %q: %w", b.Group, err)
	}
	masked := make([][]byte, len(b.Masked))
	for i, m := range b.Masked {
		masked[i] = append([]byte(nil), m...)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.store[b.Group]; dup && b.Epoch <= t.epochs[b.Group] {
		return nil, fmt.Errorf("ttp: duplicate bundle for group %q epoch %d", b.Group, b.Epoch)
	}
	t.epochs[b.Group] = b.Epoch
	t.store[b.Group] = masked
	t.delivered[b.Group] = make(map[int]UserID)
	t.userReceipts[b.Group] = make(map[int]*Receipt)

	rcpt, err := signReceipt(t.cfg.Rand, t.signKey, "ttp", b.body())
	if err != nil {
		return nil, err
	}
	t.bundleReceipts[b.Group] = rcpt
	return rcpt, nil
}

// DeliverToUser hands the masked token for slot [group, index] to uid
// (setup user-enrollment Step 2). The TTP records the uid ↔ slot mapping —
// this is exactly the knowledge the paper grants the TTP.
func (t *TTP) DeliverToUser(uid UserID, group GroupID, index int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slots, ok := t.store[group]
	if !ok {
		return nil, fmt.Errorf("ttp: %w: %q", ErrUnknownGroup, group)
	}
	if index < 0 || index >= len(slots) {
		return nil, fmt.Errorf("ttp: slot %d out of range for group %q", index, group)
	}
	if prev, taken := t.delivered[group][index]; taken && prev != uid {
		return nil, fmt.Errorf("ttp: slot [%q,%d] already delivered to another user", group, index)
	}
	t.delivered[group][index] = uid
	return append([]byte(nil), slots[index]...), nil
}

// RecordUserReceipt stores the user's signed acknowledgment for a
// delivery; required for the tracing protocol's non-repudiation.
func (t *TTP) RecordUserReceipt(uid UserID, group GroupID, index int, rcpt *Receipt) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if got, ok := t.delivered[group][index]; !ok || got != uid {
		return fmt.Errorf("ttp: no delivery of [%q,%d] to %q on record", group, index, uid)
	}
	t.userReceipts[group][index] = rcpt
	return nil
}

// UserReceipt returns the recorded user receipt for a slot, if any.
func (t *TTP) UserReceipt(group GroupID, index int) (*Receipt, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.userReceipts[group][index]
	return r, ok && r != nil
}
