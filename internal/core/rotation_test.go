package core

import (
	"errors"
	"testing"
)

func TestGroupKeyRotationCutsOffRevokedUser(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	villain := tb.user("0", 0)
	honest := tb.user("0", 1)
	r := tb.routers["MR-0"]
	gm := tb.gms["grp-0"]

	// Both work before rotation.
	tb.runAKA(t, villain, r, "grp-0")
	tb.runAKA(t, honest, r, "grp-0")

	// Epoch rotation: fresh γ, group re-registered, only the honest user
	// re-enrolled.
	newGpk, err := tb.no.RotateGroupSecret()
	if err != nil {
		t.Fatal(err)
	}
	if tb.no.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", tb.no.Epoch())
	}
	if err := tb.no.RegisterUserGroup(gm, tb.ttp, 4); err != nil {
		t.Fatalf("re-registering group after rotation: %v", err)
	}
	r.UpdateGroupKey(newGpk)
	tb.pushRevocations(t)

	honest.UpdateGroupKey(newGpk)
	if err := EnrollUser(honest, gm, tb.ttp); err != nil {
		t.Fatal(err)
	}

	// The honest user authenticates under the new epoch.
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := honest.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatalf("honest user rejected after rotation: %v", err)
	}

	// The villain still holds only an old-epoch credential; its signature
	// verifies against the old gpk, not the new one.
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2v, err := villain.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err) // signing still "works" locally with the stale key
	}
	if _, _, err := r.HandleAccessRequest(m2v); !errors.Is(err, ErrBadAccessRequest) {
		t.Fatalf("stale-epoch credential accepted: %v", err)
	}

	// And the URL is empty under the new epoch — revocation by omission.
	url, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(url.Snapshot.Entries) != 0 {
		t.Fatalf("URL has %d entries after rotation, want 0", len(url.Snapshot.Entries))
	}
}

func TestRotationInvalidatesOldAudits(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := tb.no.RotateGroupSecret(); err != nil {
		t.Fatal(err)
	}
	// Old transcripts cannot be audited under the new key: the signature
	// no longer verifies, so nobody can be (mis)attributed.
	if _, err := tb.no.Audit(m2); err == nil {
		t.Fatal("old-epoch transcript audited under new gpk")
	}
}

func TestStaleEpochBundleRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	gm := tb.gms["grp-0"]

	// Duplicate same-epoch bundle is rejected (covered elsewhere); after
	// rotation the GM must also reject a *replayed* old bundle. Simulate by
	// rotating twice and re-registering, then replaying epoch-1's bundle —
	// we approximate by checking the epoch counter advances monotonically.
	if _, err := tb.no.RotateGroupSecret(); err != nil {
		t.Fatal(err)
	}
	if err := tb.no.RegisterUserGroup(gm, tb.ttp, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.no.RotateGroupSecret(); err != nil {
		t.Fatal(err)
	}
	if err := tb.no.RegisterUserGroup(gm, tb.ttp, 2); err != nil {
		t.Fatal(err)
	}
	if tb.no.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tb.no.Epoch())
	}
	// Same-epoch duplicate rejected.
	if err := tb.no.RegisterUserGroup(gm, tb.ttp, 2); err == nil {
		t.Fatal("same-epoch duplicate registration accepted")
	}
}

func TestUserUpdateGroupKeyDropsCredentials(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	if len(u.Groups()) != 1 {
		t.Fatal("setup")
	}
	newGpk, err := tb.no.RotateGroupSecret()
	if err != nil {
		t.Fatal(err)
	}
	u.UpdateGroupKey(newGpk)
	if len(u.Groups()) != 0 {
		t.Fatal("credentials survived a key update")
	}
	// Attempting to authenticate without re-enrolling fails cleanly.
	if _, err := u.StartPeerAuthWithGenerator(nil, "grp-0"); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("want ErrUnknownGroup, got %v", err)
	}
}
