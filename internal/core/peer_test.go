package core

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

// runPeerAKA drives a full user–user AKA between initiator and responder,
// passing all messages through their wire encodings.
func runPeerAKA(t testing.TB, tb *testbed, initiator, responder *User, gi, gr GroupID) (initSess, respSess *Session) {
	t.Helper()

	// Both users need the beacon generator and URL from a serving router.
	r := tb.routers["MR-0"]
	for _, u := range []*User{initiator, responder} {
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.HandleBeacon(beacon, ""); err != nil {
			t.Fatal(err)
		}
	}

	hello, err := initiator.StartPeerAuth(gi)
	if err != nil {
		t.Fatal(err)
	}
	hello2, err := UnmarshalPeerHello(hello.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	resp, rs, err := responder.HandlePeerHello(hello2, gr)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := UnmarshalPeerResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	confirm, is, err := initiator.HandlePeerResponse(resp2)
	if err != nil {
		t.Fatal(err)
	}
	confirm2, err := UnmarshalPeerConfirm(confirm.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	got, err := responder.HandlePeerConfirm(confirm2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rs.ID {
		t.Fatal("responder confirm resolved a different session")
	}
	return is, rs
}

func TestUserUserAKAHappyPath(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	a := tb.user("0", 0)
	b := tb.user("0", 1)

	sa, sb := runPeerAKA(t, tb, a, b, "grp-0", "grp-0")
	if sa.ID != sb.ID {
		t.Fatal("peer session ids differ")
	}
	if !sa.keysEqual(sb) {
		t.Fatal("peer session keys differ")
	}

	f, err := sa.SealData(rand.Reader, []byte("relayed packet"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.OpenData(f); err != nil {
		t.Fatal(err)
	}
}

func TestUserUserAcrossGroups(t *testing.T) {
	// The paper explicitly allows uid_l to reply under *any* appropriate
	// group key gsk[t, l] — peers from different groups authenticate fine.
	tb := newTestbed(t, 2, 1, 1)
	a := tb.user("0", 0)
	b := tb.user("1", 0)

	sa, sb := runPeerAKA(t, tb, a, b, "grp-0", "grp-1")
	if !sa.keysEqual(sb) {
		t.Fatal("cross-group peer session keys differ")
	}
}

func TestPeerHelloFromRevokedUserRejected(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	revoked := tb.user("0", 0)
	honest := tb.user("0", 1)
	r := tb.routers["MR-0"]

	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	tb.pushRevocations(t)

	// Honest user refreshes its URL from a current beacon.
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := honest.HandleBeacon(beacon, ""); err != nil {
		t.Fatal(err)
	}
	// The revoked user can still *construct* M̃.1 (it has the key)...
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	_, _ = revoked.HandleBeacon(beacon2, "") // caches generator
	hello, err := revoked.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	// ...but the honest responder screens it against the URL.
	if _, _, err := honest.HandlePeerHello(hello, "grp-0"); !errors.Is(err, ErrRevokedUser) {
		t.Fatalf("revoked peer accepted: %v", err)
	}
}

func TestPeerResponseFromRevokedUserRejected(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	initiator := tb.user("0", 0)
	revoked := tb.user("0", 1)
	r := tb.routers["MR-0"]

	tok, err := tb.no.TokenOf("grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	tb.pushRevocations(t)

	for _, u := range []*User{initiator, revoked} {
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.HandleBeacon(beacon, ""); err != nil {
			t.Fatal(err)
		}
	}

	hello, err := initiator.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	// The revoked responder doesn't check itself; it answers.
	resp, _, err := revoked.HandlePeerHello(hello, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := initiator.HandlePeerResponse(resp); !errors.Is(err, ErrRevokedUser) {
		t.Fatalf("revoked responder accepted: %v", err)
	}
}

func TestPeerStaleHelloRejected(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	a := tb.user("0", 0)
	b := tb.user("0", 1)
	r := tb.routers["MR-0"]

	for _, u := range []*User{a, b} {
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.HandleBeacon(beacon, ""); err != nil {
			t.Fatal(err)
		}
	}
	hello, err := a.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	tb.clock.Advance(10 * time.Minute)
	if _, _, err := b.HandlePeerHello(hello, "grp-0"); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale M̃.1 accepted: %v", err)
	}
}

func TestPeerConfirmGarbageRejected(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	a := tb.user("0", 0)
	b := tb.user("0", 1)
	r := tb.routers["MR-0"]

	for _, u := range []*User{a, b} {
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.HandleBeacon(beacon, ""); err != nil {
			t.Fatal(err)
		}
	}
	hello, err := a.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := b.HandlePeerHello(hello, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.HandlePeerResponse(resp); err != nil {
		t.Fatal(err)
	}
	bad := &PeerConfirm{GJ: resp.GJ, GL: resp.GL, Ciphertext: []byte("junk")}
	if _, err := b.HandlePeerConfirm(bad); !errors.Is(err, ErrBadConfirmation) {
		t.Fatalf("garbage M̃.3 accepted: %v", err)
	}
}

func TestPeerAuthRequiresBeaconGenerator(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	if _, err := u.StartPeerAuth("grp-0"); err == nil {
		t.Fatal("peer auth started without a cached beacon generator")
	}
}
