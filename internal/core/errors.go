package core

import "errors"

// Exported protocol errors. Handlers wrap these with context; callers can
// match with errors.Is.
var (
	// ErrReplay indicates a timestamp outside the freshness window or a
	// nonce seen before.
	ErrReplay = errors.New("peace: replayed or stale message")
	// ErrBadBeacon indicates an M.1 that failed certificate, CRL or
	// signature validation.
	ErrBadBeacon = errors.New("peace: invalid beacon")
	// ErrBadAccessRequest indicates an M.2 that failed group signature or
	// freshness validation.
	ErrBadAccessRequest = errors.New("peace: invalid access request")
	// ErrRevokedUser indicates the signer's token appears in the URL.
	ErrRevokedUser = errors.New("peace: user key revoked")
	// ErrRevocationStale indicates the local revocation state is missing,
	// expired, or behind what a beacon advertises; the caller should fetch
	// the gaps reported by User.RevocationGaps (a delta or full snapshot)
	// and retry.
	ErrRevocationStale = errors.New("peace: revocation state stale or behind advertisement")
	// ErrRevokedRouter indicates the router's certificate appears in the CRL.
	ErrRevokedRouter = errors.New("peace: mesh router revoked")
	// ErrBadConfirmation indicates an M.3 / M̃.3 that failed to decrypt or
	// carried mismatched session identifiers.
	ErrBadConfirmation = errors.New("peace: invalid key confirmation")
	// ErrNoSession indicates an unknown session identifier.
	ErrNoSession = errors.New("peace: unknown session")
	// ErrPuzzleRequired indicates the router is in DoS-defense mode and the
	// access request carried no (or a wrong) puzzle solution.
	ErrPuzzleRequired = errors.New("peace: client puzzle required")
	// ErrUnknownGroup indicates an audit or issuance referenced an
	// unregistered user group.
	ErrUnknownGroup = errors.New("peace: unknown user group")
	// ErrAuditFailed indicates no revocation token matched the audited
	// transcript (the signer is not enrolled with this operator).
	ErrAuditFailed = errors.New("peace: audit found no responsible entity")
	// ErrNoKeysLeft indicates a group manager exhausted its issued key slots.
	ErrNoKeysLeft = errors.New("peace: no unassigned key slots remain")
	// ErrReceiptMissing indicates the non-repudiation receipt chain is
	// incomplete for a trace.
	ErrReceiptMissing = errors.New("peace: non-repudiation receipt missing")
	// ErrQueueFull indicates the router's bounded ingest queue rejected an
	// access request under overload (backpressure instead of buffering).
	ErrQueueFull = errors.New("peace: ingest queue full")
	// ErrQueueClosed indicates a submission to an ingest queue that has
	// been shut down.
	ErrQueueClosed = errors.New("peace: ingest queue closed")
)
