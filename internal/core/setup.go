package core

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// This file implements the offline scheme-setup machinery of Section IV.A:
// the signed key bundles that flow NO → GM and NO → TTP, the A ⊕ x masking
// that keeps the TTP blind, and the ECDSA receipts that give the tracing
// protocol its non-repudiation property.

// Receipt is a non-repudiation acknowledgment: the receiver of a key
// bundle (GM, TTP or user) signs the bundle digest so it cannot later deny
// having received the material.
type Receipt struct {
	// SignerID names the acknowledging party.
	SignerID string
	// Digest is SHA-256 of the acknowledged payload.
	Digest [32]byte
	// Signature is the signer's ECDSA signature over SignerID ‖ Digest.
	Signature []byte
}

func receiptBody(signerID string, digest [32]byte) []byte {
	w := wire.NewWriter(64)
	w.StringField("peace/receipt:v1")
	w.StringField(signerID)
	w.BytesField(digest[:])
	return w.Bytes()
}

// signReceipt acknowledges payload on behalf of signerID.
func signReceipt(rng io.Reader, kp *cert.KeyPair, signerID string, payload []byte) (*Receipt, error) {
	r := &Receipt{SignerID: signerID, Digest: sha256.Sum256(payload)}
	sig, err := kp.Sign(rng, receiptBody(signerID, r.Digest))
	if err != nil {
		return nil, fmt.Errorf("receipt: %w", err)
	}
	r.Signature = sig
	return r, nil
}

// Verify checks the receipt against the signer's public key and the
// original payload.
func (r *Receipt) Verify(pk cert.PublicKey, payload []byte) error {
	if r == nil {
		return ErrReceiptMissing
	}
	if r.Digest != sha256.Sum256(payload) {
		return fmt.Errorf("receipt: digest mismatch")
	}
	return pk.Verify(receiptBody(r.SignerID, r.Digest), r.Signature)
}

// maskToken computes the paper's A_{i,j} ⊕ x_j with the pad expanded from
// x_j to the full encoding length of A (see symcrypto.Stream).
func maskToken(a *bn256.G1, x *big.Int) []byte {
	enc := a.Marshal()
	pad := symcrypto.Stream(x.Bytes(), "peace/mask-a", len(enc))
	out := make([]byte, len(enc))
	for i := range enc {
		out[i] = enc[i] ^ pad[i]
	}
	return out
}

// unmaskToken inverts maskToken given x_j.
func unmaskToken(masked []byte, x *big.Int) (*bn256.G1, error) {
	pad := symcrypto.Stream(x.Bytes(), "peace/mask-a", len(masked))
	enc := make([]byte, len(masked))
	for i := range masked {
		enc[i] = masked[i] ^ pad[i]
	}
	a, err := new(bn256.G1).Unmarshal(enc)
	if err != nil {
		return nil, fmt.Errorf("unmask A: %w", err)
	}
	return a, nil
}

// GMKeyBundle is setup Step 5: NO → GM_i delivery of
// {[i, j], grp_i, x_j | ∀j}, signed under NSK.
type GMKeyBundle struct {
	Group     GroupID
	Epoch     uint32
	Grp       *big.Int
	Xs        []*big.Int
	Signature []byte
}

func (b *GMKeyBundle) body() []byte {
	w := wire.NewWriter(64 + 36*len(b.Xs))
	w.StringField("peace/gm-bundle:v1")
	w.StringField(string(b.Group))
	w.Uint32(b.Epoch)
	w.BytesField(b.Grp.Bytes())
	w.Uint32(uint32(len(b.Xs)))
	for _, x := range b.Xs {
		w.BytesField(x.Bytes())
	}
	return w.Bytes()
}

// Verify checks the NO signature.
func (b *GMKeyBundle) Verify(noPub cert.PublicKey) error {
	return noPub.Verify(b.body(), b.Signature)
}

// TTPKeyBundle is setup Step 7: NO → TTP delivery of
// {[i, j], A_{i,j} ⊕ x_j | ∀j}, signed under NSK.
type TTPKeyBundle struct {
	Group     GroupID
	Epoch     uint32
	Masked    [][]byte
	Signature []byte
}

func (b *TTPKeyBundle) body() []byte {
	w := wire.NewWriter(64 + (bn256.G1Size+4)*len(b.Masked))
	w.StringField("peace/ttp-bundle:v1")
	w.StringField(string(b.Group))
	w.Uint32(b.Epoch)
	w.Uint32(uint32(len(b.Masked)))
	for _, m := range b.Masked {
		w.BytesField(m)
	}
	return w.Bytes()
}

// Verify checks the NO signature.
func (b *TTPKeyBundle) Verify(noPub cert.PublicKey) error {
	return noPub.Verify(b.body(), b.Signature)
}

// EnrollUser runs the user-side enrollment of Section IV.A end to end:
// the GM assigns a key slot and sends ([i,j], grp_i, x_j); the GM asks the
// TTP to deliver the masked A to the user; the user unmasks, assembles
// gsk[i,j], validates it against the group public key, and returns signed
// receipts to both the GM and the TTP.
func EnrollUser(u *User, gm *GroupManager, ttp *TTP) error {
	assign, err := gm.EnrollUser(u.ID(), u.ReceiptKey())
	if err != nil {
		return fmt.Errorf("enroll %q with %q: %w", u.ID(), gm.ID(), err)
	}
	masked, err := ttp.DeliverToUser(u.ID(), assign.Group, assign.Index)
	if err != nil {
		return fmt.Errorf("ttp delivery for %q: %w", u.ID(), err)
	}
	userReceiptGM, userReceiptTTP, err := u.AcceptCredential(assign, masked)
	if err != nil {
		return err
	}
	if err := gm.RecordUserReceipt(assign.Index, userReceiptGM); err != nil {
		return err
	}
	if err := ttp.RecordUserReceipt(u.ID(), assign.Group, assign.Index, userReceiptTTP); err != nil {
		return err
	}
	return nil
}

// KeyAssignment is what the GM hands a user during enrollment:
// the slot [i, j] plus (grp_i, x_j).
type KeyAssignment struct {
	Group GroupID
	Index int
	Grp   *big.Int
	X     *big.Int
}

func (a *KeyAssignment) body() []byte {
	w := wire.NewWriter(96)
	w.StringField("peace/assignment:v1")
	w.StringField(string(a.Group))
	w.Uint32(uint32(a.Index))
	w.BytesField(a.Grp.Bytes())
	w.BytesField(a.X.Bytes())
	return w.Bytes()
}
