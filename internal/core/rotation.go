package core

import (
	"fmt"

	"github.com/peace-mesh/peace/internal/sgs"
)

// This file implements the paper's second revocation mechanism (Section
// V.A): a group public key update. Instead of growing the URL forever,
// the operator periodically rotates the issuing secret γ, re-issues key
// material for every registered group, and simply does not re-issue the
// revoked members' slots. Old-epoch signatures no longer verify against
// the new gpk, so revoked users are cut off even with an empty URL.
//
// Rotation is epoch-based: bundles carry the epoch, group managers and
// the TTP replace their material when a newer epoch arrives (clearing all
// slot assignments — members re-enroll under the new epoch), and users
// and routers install the new gpk explicitly.

// Epoch returns the operator's current key epoch.
func (n *NetworkOperator) Epoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// RotateGroupSecret begins a new key epoch: a fresh γ (and therefore a
// fresh gpk), with all per-group issuance state cleared. Registered
// groups must be re-registered (RegisterUserGroup) and members
// re-enrolled; the URL resets to empty because no revoked key exists
// under the new epoch.
func (n *NetworkOperator) RotateGroupSecret() (*sgs.PublicKey, error) {
	issuer, err := sgs.NewIssuer(n.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("operator: rotate: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch++
	n.issuer = issuer
	n.groups = make(map[GroupID]*groupRecord)
	n.grt = nil
	n.revokedUsers = nil
	n.gmReceipts = make(map[GroupID]receiptRecord)
	n.ttpReceipts = make(map[GroupID]receiptRecord)
	return issuer.PublicKey(), nil
}

// UpdateGroupKey installs a new-epoch group public key on a router. Any
// signature under the previous gpk stops verifying. The revocation sweep
// cache is rebuilt for the new key from the currently installed URL
// snapshot (its verifier tables and fast index are gpk-specific).
func (r *MeshRouter) UpdateGroupKey(gpk *sgs.PublicKey) {
	sweep := sgs.NewSweepState(gpk)
	r.mu.Lock()
	r.gpk = gpk
	r.sweep = sweep
	r.mu.Unlock()
	// Best effort: entries were validated when the snapshot was installed.
	_ = r.refreshSweep()
}

// UpdateGroupKey installs a new-epoch group public key on a user. All
// credentials from previous epochs are dropped (they no longer satisfy
// the SDH equation under the new gpk); established symmetric sessions
// survive, per the hybrid design.
func (u *User) UpdateGroupKey(gpk *sgs.PublicKey) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.gpk = gpk
	u.creds = make(map[GroupID]*Credential)
	u.pendingAssignments = make(map[GroupID]*KeyAssignment)
	u.pendingRouter = make(map[SessionID]*pendingRouterAuth)
	u.pendingPeer = make(map[string]*pendingPeerAuth)
}
