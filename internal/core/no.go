package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
)

// NetworkOperator is the NO of the paper: it owns the group-signature
// issuing secret γ and the ECDSA signing pair (NPK, NSK); it registers
// user groups and mesh routers; it maintains grt (the full revocation
// token set with its token → group mapping), the user revocation list
// (URL) and the router CRL; and it runs the audit protocol.
type NetworkOperator struct {
	cfg     Config
	issuer  *sgs.Issuer
	signKey *cert.KeyPair

	// urlAuthority / crlAuthority issue the epoch-numbered revocation
	// snapshots and deltas for the two lists. They keep their own locks;
	// callers must not hold n.mu across Issue.
	urlAuthority *revocation.Authority
	crlAuthority *revocation.Authority

	mu sync.Mutex
	// epoch is the current group-key epoch (bumped by RotateGroupSecret).
	epoch uint32
	// groups maps group id → issued key material bookkeeping.
	groups map[GroupID]*groupRecord
	// grt is the full token set in issuance order, each tagged with its
	// group and in-group index.
	grt []grtEntry
	// revokedUsers is the current URL entry set (token + expiry).
	revokedUsers []revokedUser
	// routers maps router id → issued certificate.
	routers map[string]*cert.Certificate
	// revokedRouters is the current CRL subject set.
	revokedRouters []string
	// gmReceipts / ttpReceipts store the non-repudiation acknowledgments
	// collected during setup (receipt, acknowledged payload).
	gmReceipts  map[GroupID]receiptRecord
	ttpReceipts map[GroupID]receiptRecord
}

type receiptRecord struct {
	receipt *Receipt
	payload []byte
	pub     cert.PublicKey
}

type groupRecord struct {
	id GroupID
	// tokens are this group's revocation tokens by slot index.
	tokens []*sgs.RevocationToken
}

type grtEntry struct {
	token *sgs.RevocationToken
	group GroupID
	index int
}

// revokedUser is one URL entry. The paper notes the URL size must be
// proactively controlled; entries therefore carry the end of the revoked
// key's membership period, after which keeping the token listed serves no
// purpose (the subscription would have lapsed anyway) and it is pruned
// from freshly issued URLs.
type revokedUser struct {
	token   *sgs.RevocationToken
	expires time.Time
	forever bool
}

// NewNetworkOperator creates an operator with fresh γ and NSK.
func NewNetworkOperator(cfg Config) (*NetworkOperator, error) {
	cfg = cfg.withDefaults()
	issuer, err := sgs.NewIssuer(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("operator: %w", err)
	}
	kp, err := cert.GenerateKeyPair(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("operator: %w", err)
	}
	urlAuth, err := revocation.NewAuthority(revocation.ListURL, kp, cfg.Rand, revocation.DefaultHistory)
	if err != nil {
		return nil, fmt.Errorf("operator: %w", err)
	}
	crlAuth, err := revocation.NewAuthority(revocation.ListCRL, kp, cfg.Rand, revocation.DefaultHistory)
	if err != nil {
		return nil, fmt.Errorf("operator: %w", err)
	}
	return &NetworkOperator{
		cfg:          cfg,
		issuer:       issuer,
		signKey:      kp,
		urlAuthority: urlAuth,
		crlAuthority: crlAuth,
		groups:       make(map[GroupID]*groupRecord),
		routers:      make(map[string]*cert.Certificate),
		gmReceipts:   make(map[GroupID]receiptRecord),
		ttpReceipts:  make(map[GroupID]receiptRecord),
	}, nil
}

// GroupPublicKey returns gpk.
func (n *NetworkOperator) GroupPublicKey() *sgs.PublicKey { return n.issuer.PublicKey() }

// Authority returns NPK, the operator's signature-verification key.
func (n *NetworkOperator) Authority() cert.PublicKey { return n.signKey.Public() }

// RegisterUserGroup performs setup Steps 2–7 for one user group: generate
// grp_i and size SDH tuples, ship (grp_i, x_j) to the GM and the masked
// A_{i,j} to the TTP (both signed), and collect their receipts.
func (n *NetworkOperator) RegisterUserGroup(gm *GroupManager, ttp *TTP, size int) error {
	if size <= 0 {
		return fmt.Errorf("operator: group size must be positive, got %d", size)
	}
	id := gm.ID()

	n.mu.Lock()
	if _, dup := n.groups[id]; dup {
		n.mu.Unlock()
		return fmt.Errorf("operator: group %q already registered", id)
	}
	n.mu.Unlock()

	grp, err := n.issuer.NewGroupComponent(n.cfg.Rand)
	if err != nil {
		return fmt.Errorf("operator: group %q: %w", id, err)
	}
	keys, err := n.issuer.IssueBatch(n.cfg.Rand, grp, size)
	if err != nil {
		return fmt.Errorf("operator: group %q: %w", id, err)
	}

	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	gmBundle := &GMKeyBundle{Group: id, Epoch: epoch, Grp: grp}
	ttpBundle := &TTPKeyBundle{Group: id, Epoch: epoch}
	rec := &groupRecord{id: id}
	for _, k := range keys {
		gmBundle.Xs = append(gmBundle.Xs, k.X)
		ttpBundle.Masked = append(ttpBundle.Masked, maskToken(k.A, k.X))
		rec.tokens = append(rec.tokens, k.Token())
	}
	if gmBundle.Signature, err = n.signKey.Sign(n.cfg.Rand, gmBundle.body()); err != nil {
		return err
	}
	if ttpBundle.Signature, err = n.signKey.Sign(n.cfg.Rand, ttpBundle.body()); err != nil {
		return err
	}

	gmRcpt, err := gm.ReceiveBundle(gmBundle)
	if err != nil {
		return fmt.Errorf("operator: gm delivery: %w", err)
	}
	if err := gmRcpt.Verify(gm.Public(), gmBundle.body()); err != nil {
		return fmt.Errorf("operator: gm receipt: %w", err)
	}
	ttpRcpt, err := ttp.ReceiveBundle(ttpBundle)
	if err != nil {
		return fmt.Errorf("operator: ttp delivery: %w", err)
	}
	if err := ttpRcpt.Verify(ttp.Public(), ttpBundle.body()); err != nil {
		return fmt.Errorf("operator: ttp receipt: %w", err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups[id] = rec
	for j, tok := range rec.tokens {
		n.grt = append(n.grt, grtEntry{token: tok, group: id, index: j})
	}
	n.gmReceipts[id] = receiptRecord{receipt: gmRcpt, payload: gmBundle.body(), pub: gm.Public()}
	n.ttpReceipts[id] = receiptRecord{receipt: ttpRcpt, payload: ttpBundle.body(), pub: ttp.Public()}
	return nil
}

// EnrollRouter issues a certificate for a mesh router's public key.
func (n *NetworkOperator) EnrollRouter(id string, pub cert.PublicKey) (*cert.Certificate, error) {
	now := n.cfg.Clock.Now()
	c, err := cert.IssueCertificate(n.cfg.Rand, n.signKey, id, pub, now.Add(n.cfg.CertValidity))
	if err != nil {
		return nil, fmt.Errorf("operator: enroll router %q: %w", id, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routers[id] = c
	return c, nil
}

// RevokeRouter adds a router to the CRL.
func (n *NetworkOperator) RevokeRouter(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.revokedRouters {
		if r == id {
			return
		}
	}
	n.revokedRouters = append(n.revokedRouters, id)
}

// RevokeUserKey adds a revocation token to the URL (dynamic user
// revocation) with no expiry. The token typically comes from an Audit.
func (n *NetworkOperator) RevokeUserKey(tok *sgs.RevocationToken) {
	n.revokeUser(revokedUser{token: tok, forever: true})
}

// RevokeUserKeyUntil revokes a token only until the end of its membership
// period — the paper's proactive URL-size control: once the subscription
// would have lapsed anyway, the entry is pruned from new URLs.
func (n *NetworkOperator) RevokeUserKeyUntil(tok *sgs.RevocationToken, expires time.Time) {
	n.revokeUser(revokedUser{token: tok, expires: expires})
}

func (n *NetworkOperator) revokeUser(entry revokedUser) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, t := range n.revokedUsers {
		if t.token.Equal(entry.token) {
			// Upgrade to the stronger of the two revocations.
			if entry.forever || entry.expires.After(t.expires) {
				n.revokedUsers[i] = entry
			}
			return
		}
	}
	n.revokedUsers = append(n.revokedUsers, entry)
}

// RevokeAudited revokes the key identified by a prior audit result.
func (n *NetworkOperator) RevokeAudited(res AuditResult) error {
	n.mu.Lock()
	rec, ok := n.groups[res.Group]
	if !ok || res.KeyIndex < 0 || res.KeyIndex >= len(rec.tokens) {
		n.mu.Unlock()
		return fmt.Errorf("operator: %w", ErrUnknownGroup)
	}
	tok := rec.tokens[res.KeyIndex]
	n.mu.Unlock()
	n.RevokeUserKey(tok)
	return nil
}

// CRLBundle issues the current router-CRL snapshot plus the deltas
// leading to it from recent epochs. The epoch only advances when the
// revoked set actually changed since the last issue.
func (n *NetworkOperator) CRLBundle() (*revocation.Bundle, error) {
	n.mu.Lock()
	entries := crlEntries(n.revokedRouters)
	n.mu.Unlock()
	now := n.cfg.Clock.Now()
	return n.crlAuthority.Issue(entries, now, now.Add(n.cfg.RevocationUpdatePeriod))
}

// URLBundle issues the current user-revocation snapshot plus deltas,
// pruning entries whose membership period has lapsed (the paper's
// proactive URL-size control).
func (n *NetworkOperator) URLBundle() (*revocation.Bundle, error) {
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	kept := n.revokedUsers[:0]
	tokens := make([]*sgs.RevocationToken, 0, len(n.revokedUsers))
	for _, e := range n.revokedUsers {
		if !e.forever && now.After(e.expires) {
			continue
		}
		kept = append(kept, e)
		tokens = append(tokens, e.token)
	}
	n.revokedUsers = kept
	n.mu.Unlock()
	return n.urlAuthority.Issue(urlEntries(tokens), now, now.Add(n.cfg.RevocationUpdatePeriod))
}

// RevocationBundles issues both lists' bundles in one call, in the order
// (crl, url) that router updates expect.
func (n *NetworkOperator) RevocationBundles() (crl, url *revocation.Bundle, err error) {
	if crl, err = n.CRLBundle(); err != nil {
		return nil, nil, err
	}
	if url, err = n.URLBundle(); err != nil {
		return nil, nil, err
	}
	return crl, url, nil
}

// GrtSize returns the number of issued tokens (|grt|).
func (n *NetworkOperator) GrtSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.grt)
}

// TokenOf exposes the token at [group, index]; used by tests and the
// simulator's adversary to model operator compromise.
func (n *NetworkOperator) TokenOf(group GroupID, index int) (*sgs.RevocationToken, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rec, ok := n.groups[group]
	if !ok || index < 0 || index >= len(rec.tokens) {
		return nil, ErrUnknownGroup
	}
	return rec.tokens[index], nil
}
