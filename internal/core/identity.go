package core

import (
	"fmt"
	"strings"
)

// This file models the paper's user-identity format (Fig. 2): identity is
// multi-faceted, split into essential attribute information (anything that
// uniquely identifies the person — name, SSN, ...) and nonessential
// attribute information (the person's roles in society — employee of X,
// tenant of Y, student of Z, ...). PEACE's privacy guarantee is phrased in
// these terms: an operator audit reveals a single nonessential attribute
// (the user group), never the essential attributes.

// UserID is the essential attribute information uid_j: an opaque string
// that uniquely identifies a person (e.g. a composite of name and SSN).
// It never appears in any protocol message.
type UserID string

// GroupID identifies a registered user group (a society entity such as a
// company, university or agency) within one operator's domain.
type GroupID string

// Attribute is one nonessential attribute: a role within a user group.
type Attribute struct {
	// Group is the user group this attribute refers to.
	Group GroupID
	// Role is a human-readable description ("employee", "student", ...).
	Role string
}

func (a Attribute) String() string {
	return fmt.Sprintf("%s of %s", a.Role, a.Group)
}

// Identity is a user's full identity information: essential attributes
// plus the set of nonessential role attributes. The paper's example —
// {name, ssn, engineer of company X, tenant of apartment Y, ...} — maps to
// Essential = "name/ssn", Attributes = the rest.
type Identity struct {
	// Essential is the essential attribute information (uid_j).
	Essential UserID
	// Attributes are the nonessential role attributes.
	Attributes []Attribute
}

// HasAttribute reports whether the identity carries a role in the group.
func (id *Identity) HasAttribute(g GroupID) bool {
	for _, a := range id.Attributes {
		if a.Group == g {
			return true
		}
	}
	return false
}

// AttributeIn returns the role attribute for the given group, if any.
func (id *Identity) AttributeIn(g GroupID) (Attribute, bool) {
	for _, a := range id.Attributes {
		if a.Group == g {
			return a, true
		}
	}
	return Attribute{}, false
}

func (id *Identity) String() string {
	parts := make([]string, 0, 1+len(id.Attributes))
	parts = append(parts, string(id.Essential))
	for _, a := range id.Attributes {
		parts = append(parts, a.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// AuditResult is what the network operator learns from auditing a session:
// the responsible user group (a nonessential attribute) and the matched
// revocation token index — never the user's essential attributes.
type AuditResult struct {
	// Group is the responsible user group.
	Group GroupID
	// KeyIndex is the slot [i, j] of the matched key within the group.
	KeyIndex int
	// TokensScanned records how much of grt was scanned (for the
	// performance experiments).
	TokensScanned int
}

// TraceResult is what the law authority learns from a full trace: the
// audit result joined with the group manager's record.
type TraceResult struct {
	Audit AuditResult
	// User is the de-anonymized essential attribute information.
	User UserID
	// ReceiptVerified reports that the non-repudiation receipt chain
	// (GM signed for the key bundle; the user signed for the key) was
	// validated during the trace.
	ReceiptVerified bool
}
