package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/puzzle"
)

// Stateless puzzle issuance. The seed of every puzzle this router hands
// out — in a beacon or in a RejectPuzzle reply — is an HMAC of the issue
// instant and difficulty under a per-incarnation key. A client echoes
// (IssuedAt, Difficulty, Solution) with its M.2 or resume request, and the
// router re-derives the exact puzzle and verifies the solution with one
// HMAC plus one hash: there is no per-puzzle table a connection-depletion
// flood could grow, and any transport replica holding the router can
// verify a puzzle another call path issued.

// derivePuzzleSeed computes the deterministic seed of the puzzle issued at
// issuedAt with the given difficulty.
func derivePuzzleSeed(key [32]byte, routerID string, issuedAt time.Time, difficulty uint8) [puzzle.SeedSize]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte("peace/puzzle-seed:v1"))
	mac.Write([]byte(routerID))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(issuedAt.UnixNano()))
	mac.Write(ts[:])
	mac.Write([]byte{difficulty})
	var seed [puzzle.SeedSize]byte
	copy(seed[:], mac.Sum(nil))
	return seed
}

// derivePuzzle materializes the stateless puzzle for (issuedAt, difficulty).
func derivePuzzle(key [32]byte, routerID string, issuedAt time.Time, difficulty uint8) *puzzle.Puzzle {
	p := &puzzle.Puzzle{Difficulty: difficulty, IssuedAt: issuedAt, Context: routerID}
	p.Seed = derivePuzzleSeed(key, routerID, issuedAt, difficulty)
	return p
}

// verifyPuzzleSolution checks an echoed solution triple against the
// currently required difficulty: the echoed difficulty must meet or exceed
// need (a client that solved a harder, still-fresh challenge is never
// punished for a ratchet-down), the issue instant must lie inside the
// freshness envelope, and the re-derived puzzle must accept the solution.
// Every failure maps to ErrPuzzleRequired so transports answer with
// RejectPuzzle carrying a fresh challenge.
func verifyPuzzleSolution(key [32]byte, routerID string, issuedAt time.Time, difficulty uint8, solution uint64, need uint8, now time.Time, cfg Config) error {
	if difficulty > puzzle.MaxDifficulty {
		return fmt.Errorf("%w: difficulty %d exceeds maximum", ErrPuzzleRequired, difficulty)
	}
	if difficulty < need {
		return fmt.Errorf("%w: difficulty %d below required %d", ErrPuzzleRequired, difficulty, need)
	}
	// A far-future IssuedAt would let an attacker precompute one solution
	// and replay it past every freshness check.
	if issuedAt.After(now.Add(cfg.FreshnessWindow)) {
		return fmt.Errorf("%w: puzzle issued in the future", ErrPuzzleRequired)
	}
	p := derivePuzzle(key, routerID, issuedAt, difficulty)
	if err := p.Verify(solution, now, cfg.PuzzleMaxAge); err != nil {
		return fmt.Errorf("%w: %v", ErrPuzzleRequired, err)
	}
	return nil
}

// CurrentPuzzle returns the puzzle challenge the router currently demands:
// nil when no defense is active, otherwise a fresh stateless puzzle at the
// controller's difficulty. Transports attach it to RejectPuzzle replies so
// a rejected client can solve and retry without re-soliciting a beacon.
func (r *MeshRouter) CurrentPuzzle() *puzzle.Puzzle {
	r.mu.Lock()
	need := r.requiredDifficultyLocked()
	key := r.puzzleKey
	r.mu.Unlock()
	if need == 0 {
		return nil
	}
	return derivePuzzle(key, r.id, r.cfg.Clock.Now(), need)
}

// VerifyPuzzleSolution checks a client-echoed (IssuedAt, Difficulty,
// Solution) triple against the currently demanded difficulty — the
// transport's one-hash gate, run before any decode or pairing work. It
// returns nil when no defense is active.
func (r *MeshRouter) VerifyPuzzleSolution(issuedAt time.Time, difficulty uint8, solution uint64) error {
	r.mu.Lock()
	need := r.requiredDifficultyLocked()
	key := r.puzzleKey
	r.mu.Unlock()
	if need == 0 {
		return nil
	}
	return verifyPuzzleSolution(key, r.id, issuedAt, difficulty, solution, need, r.cfg.Clock.Now(), r.cfg)
}
