package core

import (
	"testing"
)

func TestBillSessionsAggregatesPerGroup(t *testing.T) {
	tb := newTestbed(t, 2, 2, 1)
	r := tb.routers["MR-0"]

	// grp-0 members open 3 sessions, grp-1 members open 1.
	var logged []*AccessRequest
	open := func(u *User, group GroupID) {
		t.Helper()
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := u.HandleBeacon(beacon, group)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.HandleAccessRequest(m2); err != nil {
			t.Fatal(err)
		}
		logged = append(logged, m2)
	}
	open(tb.user("0", 0), "grp-0")
	open(tb.user("0", 1), "grp-0")
	open(tb.user("0", 0), "grp-0")
	open(tb.user("1", 0), "grp-1")

	rep, err := tb.no.BillSessions(logged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions["grp-0"] != 3 || rep.Sessions["grp-1"] != 1 {
		t.Fatalf("billing = %v", rep.Sessions)
	}
	if rep.Unattributed != 0 {
		t.Fatalf("unattributed = %d", rep.Unattributed)
	}

	charges := rep.Charge(5)
	if charges["grp-0"] != 15 || charges["grp-1"] != 5 {
		t.Fatalf("charges = %v", charges)
	}
}

func TestBillSessionsSkipsForeignTranscripts(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	other := newTestbed(t, 1, 1, 1)

	// A transcript from a different operator's network must not be billed
	// to any local group.
	r2 := other.routers["MR-0"]
	beacon, err := r2.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.user("0", 0).HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}

	rep, err := tb.no.BillSessions([]*AccessRequest{foreign})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 0 || rep.Unattributed != 1 {
		t.Fatalf("foreign transcript billed: %+v", rep)
	}
}

func TestBillSessionsEmpty(t *testing.T) {
	tb := newTestbed(t, 1, 1, 0)
	rep, err := tb.no.BillSessions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sessions) != 0 || rep.Unattributed != 0 {
		t.Fatalf("empty billing report not empty: %+v", rep)
	}
}
