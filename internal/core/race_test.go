//go:build race

package core

// raceEnabled skips allocation accounting under the race detector,
// where instrumentation inflates allocs/op.
const raceEnabled = true
