package core

import (
	"sync"
	"testing"
	"time"
)

func TestURLSizeControlPrunesLapsedMemberships(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)

	tok0, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tok1, err := tb.no.TokenOf("grp-0", 1)
	if err != nil {
		t.Fatal(err)
	}

	// tok0 revoked until its membership lapses in 1 hour; tok1 forever.
	tb.no.RevokeUserKeyUntil(tok0, tb.clock.Now().Add(time.Hour))
	tb.no.RevokeUserKey(tok1)

	url, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(url.Snapshot.Entries) != 2 {
		t.Fatalf("URL size = %d, want 2", len(url.Snapshot.Entries))
	}
	firstEpoch := url.Snapshot.Epoch

	// After the membership period, the bounded entry is pruned — and the
	// set change advances the epoch.
	tb.clock.Advance(2 * time.Hour)
	url, err = tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	toks, err := parseURLTokens(url.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 {
		t.Fatalf("URL size after lapse = %d, want 1", len(toks))
	}
	if !toks[0].Equal(tok1) {
		t.Fatal("wrong token pruned")
	}
	if url.Snapshot.Epoch <= firstEpoch {
		t.Fatalf("epoch did not advance on prune: %d -> %d", firstEpoch, url.Snapshot.Epoch)
	}
}

func TestRevocationUpgradeToForever(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKeyUntil(tok, tb.clock.Now().Add(time.Minute))
	tb.no.RevokeUserKey(tok) // upgraded to permanent

	tb.clock.Advance(time.Hour)
	url, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(url.Snapshot.Entries) != 1 {
		t.Fatalf("permanent revocation pruned (URL size %d)", len(url.Snapshot.Entries))
	}
}

func TestConcurrentAccessRequests(t *testing.T) {
	// A router must handle parallel AKAs safely (exercises locking across
	// the beacon table, session table and stats).
	tb := newTestbed(t, 1, 4, 1)
	r := tb.routers["MR-0"]

	const parallel = 4
	type job struct {
		m2 *AccessRequest
		u  *User
	}
	jobs := make([]job, parallel)
	for i := 0; i < parallel; i++ {
		u := tb.user("0", i)
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := u.HandleBeacon(beacon, "grp-0")
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{m2: m2, u: u}
	}

	var wg sync.WaitGroup
	errs := make([]error, parallel)
	confirms := make([]*AccessConfirm, parallel)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m3, _, err := r.HandleAccessRequest(jobs[i].m2)
			errs[i] = err
			confirms[i] = m3
		}(i)
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("parallel AKA %d: %v", i, errs[i])
		}
		if _, err := jobs[i].u.HandleAccessConfirm(confirms[i]); err != nil {
			t.Fatalf("parallel confirm %d: %v", i, err)
		}
	}
	if r.Sessions() != parallel {
		t.Fatalf("router sessions = %d, want %d", r.Sessions(), parallel)
	}
}

func TestConcurrentSessionTraffic(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	us, rs := tb.runAKA(t, tb.user("0", 0), tb.routers["MR-0"], "grp-0")

	// Parallel senders on one session must produce unique sequence numbers
	// that the receiver can consume in order after a sort.
	const n = 32
	frames := make([]*DataFrame, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames[i] = us.AuthData([]byte{byte(i)})
		}(i)
	}
	wg.Wait()

	seen := make(map[uint64]bool, n)
	for _, f := range frames {
		if seen[f.Seq] {
			t.Fatalf("duplicate sequence number %d", f.Seq)
		}
		seen[f.Seq] = true
	}
	// Deliver in sequence order.
	for seq := uint64(0); seq < n; seq++ {
		for _, f := range frames {
			if f.Seq == seq {
				if _, err := rs.OpenData(f); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}
