package core

import (
	"crypto/rand"
	"io"
	"time"
)

// Clock abstracts time so protocols are testable and the mesh simulator
// can run on virtual time.
type Clock interface {
	Now() time.Time
}

// SystemClock is the wall-clock implementation of Clock.
type SystemClock struct{}

// Now returns the current wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// FixedClock is a settable clock for tests and simulation.
type FixedClock struct {
	T time.Time
}

// Now returns the configured instant.
func (c *FixedClock) Now() time.Time { return c.T }

// Advance moves the clock forward.
func (c *FixedClock) Advance(d time.Duration) { c.T = c.T.Add(d) }

// Config carries the injected dependencies and protocol knobs shared by
// every entity.
type Config struct {
	// Clock supplies timestamps; defaults to SystemClock.
	Clock Clock
	// Rand supplies randomness; defaults to crypto/rand.Reader.
	Rand io.Reader
	// FreshnessWindow bounds |now − ts| for accepted protocol messages
	// (replay defense). Defaults to 30 seconds.
	FreshnessWindow time.Duration
	// CertValidity is the lifetime of issued router certificates.
	// Defaults to 30 days.
	CertValidity time.Duration
	// RevocationUpdatePeriod is the CRL/URL refresh interval, the paper's
	// bound on how long a newly revoked entity stays usable. Defaults to
	// 10 minutes.
	RevocationUpdatePeriod time.Duration
	// PuzzleDifficulty is the client-puzzle difficulty (leading zero
	// bits) used when a router enables DoS defense. Defaults to 12.
	PuzzleDifficulty uint8
	// PuzzleMaxAge bounds the age of an acceptable puzzle solution.
	// Defaults to FreshnessWindow.
	PuzzleMaxAge time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = SystemClock{}
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
	if c.FreshnessWindow == 0 {
		c.FreshnessWindow = 30 * time.Second
	}
	if c.CertValidity == 0 {
		c.CertValidity = 30 * 24 * time.Hour
	}
	if c.RevocationUpdatePeriod == 0 {
		c.RevocationUpdatePeriod = 10 * time.Minute
	}
	if c.PuzzleDifficulty == 0 {
		c.PuzzleDifficulty = 12
	}
	if c.PuzzleMaxAge == 0 {
		c.PuzzleMaxAge = c.FreshnessWindow
	}
	return c
}

// fresh reports whether ts lies within the freshness window around now.
func fresh(cfg Config, now, ts time.Time) bool {
	d := now.Sub(ts)
	if d < 0 {
		d = -d
	}
	return d <= cfg.FreshnessWindow
}
