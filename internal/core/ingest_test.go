package core

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"github.com/peace-mesh/peace/internal/bn256"
)

// batchM2s has every user answer the same beacon, returning the access
// requests positionally.
func batchM2s(t *testing.T, tb *testbed, r *MeshRouter, users []*User) []*AccessRequest {
	t.Helper()
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*AccessRequest, len(users))
	for i, u := range users {
		m2, err := u.HandleBeacon(beacon, "grp-0")
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m2
	}
	return ms
}

// TestHandleAccessRequestBatch drives a burst with one forged signature,
// one unknown beacon share and one revoked signer planted among valid
// requests, checking positional attribution and that the survivors obtain
// working sessions.
func TestHandleAccessRequestBatch(t *testing.T) {
	tb := newTestbed(t, 1, 5, 1)
	r := tb.routers["MR-0"]

	// Revoke user 4's key and distribute the URL before the burst.
	tok, err := tb.no.TokenOf("grp-0", 4)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	tb.pushRevocations(t)

	users := make([]*User, 5)
	for i := range users {
		users[i] = tb.user("0", i)
	}
	ms := batchM2s(t, tb, r, users)

	// Slot 1: tampered signature. Slot 2: unknown g^{r_R}. Slot 4 is the
	// revoked user.
	ms[1].Sig.SX = new(big.Int).Add(ms[1].Sig.SX, big.NewInt(1))
	ms[1].Sig.SX.Mod(ms[1].Sig.SX, bn256.Order)
	ms[2].GR = new(bn256.G1).Base()

	results := r.HandleAccessRequestBatch(ms)
	if len(results) != len(ms) {
		t.Fatalf("got %d results for %d requests", len(results), len(ms))
	}
	if !errors.Is(results[1].Err, ErrBadAccessRequest) {
		t.Fatalf("forged slot 1: %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrReplay) {
		t.Fatalf("unknown-GR slot 2: %v", results[2].Err)
	}
	if !errors.Is(results[4].Err, ErrRevokedUser) {
		t.Fatalf("revoked slot 4: %v", results[4].Err)
	}
	for _, i := range []int{0, 3} {
		res := results[i]
		if res.Err != nil {
			t.Fatalf("valid slot %d rejected: %v", i, res.Err)
		}
		us, err := users[i].HandleAccessConfirm(res.Confirm)
		if err != nil {
			t.Fatalf("slot %d confirm: %v", i, err)
		}
		if us.ID != res.Session.ID || !us.keysEqual(res.Session) {
			t.Fatalf("slot %d: session halves disagree", i)
		}
	}

	stats := r.Stats()
	if stats.SessionsEstablished != 2 {
		t.Fatalf("sessions established = %d, want 2", stats.SessionsEstablished)
	}
	if stats.RejectedAuth != 1 || stats.RejectedStale != 1 || stats.RejectedRevoked != 1 {
		t.Fatalf("rejection stats %+v", stats)
	}
	// Only the requests that passed the cheap checks reached a signature
	// verification.
	if stats.ExpensiveVerifications != 4 {
		t.Fatalf("expensive verifications = %d, want 4", stats.ExpensiveVerifications)
	}
}

// TestBatchMatchesSequential runs the same burst through the batch path
// and through per-request HandleAccessRequest on a twin router and checks
// the accept/reject pattern is identical.
func TestBatchMatchesSequential(t *testing.T) {
	tb := newTestbed(t, 1, 3, 2)
	rBatch, rSeq := tb.routers["MR-0"], tb.routers["MR-1"]
	users := []*User{tb.user("0", 0), tb.user("0", 1), tb.user("0", 2)}

	msBatch := batchM2s(t, tb, rBatch, users)
	msSeq := batchM2s(t, tb, rSeq, users)
	for _, ms := range [][]*AccessRequest{msBatch, msSeq} {
		ms[1].Sig.C = new(big.Int).Add(ms[1].Sig.C, big.NewInt(1))
		ms[1].Sig.C.Mod(ms[1].Sig.C, bn256.Order)
	}

	batchRes := rBatch.HandleAccessRequestBatch(msBatch)
	for i, m := range msSeq {
		_, _, seqErr := rSeq.HandleAccessRequest(m)
		if (seqErr == nil) != (batchRes[i].Err == nil) {
			t.Fatalf("slot %d: sequential err=%v, batch err=%v", i, seqErr, batchRes[i].Err)
		}
	}
}

// TestIngestQueueServesBurst pushes a concurrent burst through the queue
// and checks every accepted request is answered exactly once.
func TestIngestQueueServesBurst(t *testing.T) {
	const n = 6
	tb := newTestbed(t, 1, n, 1)
	r := tb.routers["MR-0"]
	users := make([]*User, n)
	for i := range users {
		users[i] = tb.user("0", i)
	}
	ms := batchM2s(t, tb, r, users)

	q := NewIngestQueue(r, n, 4)
	defer q.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := q.Submit(ms[i])
			if err != nil {
				errCh <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			res := <-reply
			if res.Err != nil {
				errCh <- fmt.Errorf("slot %d: %w", i, res.Err)
				return
			}
			if _, err := users[i].HandleAccessConfirm(res.Confirm); err != nil {
				errCh <- fmt.Errorf("slot %d confirm: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := r.Sessions(); got != n {
		t.Fatalf("router has %d sessions, want %d", got, n)
	}
}

// TestIngestQueueBackpressure pins the bounded-queue semantics: beyond
// capacity Submit fails fast with ErrQueueFull, and a closed queue returns
// ErrQueueClosed.
func TestIngestQueueBackpressure(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	m := batchM2s(t, tb, r, []*User{tb.user("0", 0)})[0]

	// No drainer: submissions accumulate so capacity is hit deterministically.
	q := &IngestQueue{
		router:   r,
		jobs:     make(chan ingestJob, 2),
		maxBatch: 4,
		done:     make(chan struct{}),
	}
	if _, err := q.Submit(m); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(m); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(m); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v", err)
	}

	// Start the drainer; the queued submissions are answered and then the
	// queue shuts down cleanly.
	go q.drain()
	q.Close()
	if _, err := q.Submit(m); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("closed submit: %v", err)
	}
}
