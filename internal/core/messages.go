package core

import (
	"crypto/sha256"
	"fmt"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/wire"
)

// SessionID uniquely identifies a session through the pair of fresh DH
// shares, per the paper: "this session is uniquely identified through
// (g^{r_R}, g^{r_j})".
type SessionID [32]byte

// NewSessionID derives the identifier from the two DH shares.
func NewSessionID(a, b *bn256.G1) SessionID {
	h := sha256.New()
	h.Write([]byte("peace/session-id:"))
	h.Write(a.Marshal())
	h.Write(b.Marshal())
	var id SessionID
	h.Sum(id[:0])
	return id
}

func (s SessionID) String() string { return fmt.Sprintf("%x", s[:8]) }

// SessionIDFromRaw derives the identifier from the already-marshaled DH
// shares, so ingress gates can address a reject to the right session
// without paying for curve decompression.
func SessionIDFromRaw(a, b []byte) SessionID {
	h := sha256.New()
	h.Write([]byte("peace/session-id:"))
	h.Write(a)
	h.Write(b)
	var id SessionID
	h.Sum(id[:0])
	return id
}

// Beacon is message M.1: the periodically broadcast, router-signed service
// announcement carrying the fresh DH parameters and the router
// certificate (plus a client puzzle under DoS defense). Instead of the
// full marshaled CRL and URL of the paper's M.1, the beacon advertises
// each list as a compact (epoch, digest, next-update) ref — O(1) bytes
// regardless of list size; attaching users fetch missing snapshots or
// deltas over the transport before handshaking.
type Beacon struct {
	RouterID string
	// BootEpoch is a random nonce drawn when the serving process starts.
	// It is covered by the router signature, so an attached user comparing
	// it against the value recorded at attach time gets an authenticated
	// restart signal: a changed BootEpoch means the router lost its
	// volatile session state and every session it held is orphaned.
	BootEpoch uint64
	G         *bn256.G1 // fresh generator g
	GR        *bn256.G1 // g^{r_R}
	Timestamp time.Time // ts_1
	Cert      *cert.Certificate
	URLRef    revocation.Ref
	CRLRef    revocation.Ref
	Puzzle    *puzzle.Puzzle // nil unless DoS defense is active
	Signature []byte         // Sig_{RSK_k} over the fields above
}

func (b *Beacon) signedBody() []byte {
	w := wire.NewWriter(256)
	w.StringField("peace/beacon:v3")
	w.StringField(b.RouterID)
	w.Uint64(b.BootEpoch)
	w.BytesField(b.G.Marshal())
	w.BytesField(b.GR.Marshal())
	w.Time(b.Timestamp)
	writeRef(w, b.URLRef)
	writeRef(w, b.CRLRef)
	if b.Puzzle != nil {
		w.Byte(1)
		w.BytesField(b.Puzzle.Marshal())
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// SignedBody returns the canonical byte string covered by the beacon
// signature (used by verifiers and by signing routers).
func (b *Beacon) SignedBody() []byte { return b.signedBody() }

// Marshal encodes the beacon.
func (b *Beacon) Marshal() []byte {
	w := wire.NewWriter(1024)
	w.StringField(b.RouterID)
	w.Uint64(b.BootEpoch)
	w.BytesField(b.G.Marshal())
	w.BytesField(b.GR.Marshal())
	w.Time(b.Timestamp)
	w.BytesField(b.Cert.Marshal())
	writeRef(w, b.URLRef)
	writeRef(w, b.CRLRef)
	if b.Puzzle != nil {
		w.Byte(1)
		w.BytesField(b.Puzzle.Marshal())
	} else {
		w.Byte(0)
	}
	w.BytesField(b.Signature)
	return w.Bytes()
}

// UnmarshalBeacon decodes M.1.
func UnmarshalBeacon(data []byte) (*Beacon, error) {
	r := wire.NewReader(data)
	b := &Beacon{}
	var err error
	if b.RouterID, err = r.StringField(); err != nil {
		return nil, err
	}
	if b.BootEpoch, err = r.Uint64(); err != nil {
		return nil, err
	}
	if b.G, err = readG1(r); err != nil {
		return nil, fmt.Errorf("beacon g: %w", err)
	}
	if b.GR, err = readG1(r); err != nil {
		return nil, fmt.Errorf("beacon g^rR: %w", err)
	}
	if b.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	rawCert, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if b.Cert, err = cert.UnmarshalCertificate(rawCert); err != nil {
		return nil, fmt.Errorf("beacon cert: %w", err)
	}
	if b.URLRef, err = readRef(r); err != nil {
		return nil, fmt.Errorf("beacon url ref: %w", err)
	}
	if b.CRLRef, err = readRef(r); err != nil {
		return nil, fmt.Errorf("beacon crl ref: %w", err)
	}
	hasPuzzle, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if hasPuzzle == 1 {
		rawPuzzle, err := r.BytesField()
		if err != nil {
			return nil, err
		}
		if b.Puzzle, err = puzzle.Unmarshal(rawPuzzle); err != nil {
			return nil, fmt.Errorf("beacon puzzle: %w", err)
		}
	}
	sig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	b.Signature = append([]byte(nil), sig...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return b, nil
}

// AccessRequest is message M.2: the user's group-signed DH response.
type AccessRequest struct {
	GJ        *bn256.G1 // g^{r_j}
	GR        *bn256.G1 // echoed g^{r_R}
	Timestamp time.Time // ts_2
	Sig       *sgs.Signature

	// HasSolution/Solution carry the client-puzzle answer when the router
	// demanded one, together with the echoed (PuzzleIssuedAt,
	// PuzzleDifficulty) pair that lets a stateless verifier re-derive the
	// exact puzzle that was solved. The solution fields sit outside the
	// group-signed transcript: a RejectPuzzle recovery can attach a fresh
	// solution to an already-signed M.2 without another signing pass.
	HasSolution      bool
	Solution         uint64
	PuzzleIssuedAt   time.Time
	PuzzleDifficulty uint8
}

// SignedTranscript is the byte string the group signature covers:
// {g^{r_j}, g^{r_R}, ts_2} per the paper.
func (m *AccessRequest) SignedTranscript() []byte {
	w := wire.NewWriter(160)
	w.StringField("peace/m2:v1")
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GR.Marshal())
	w.Time(m.Timestamp)
	return w.Bytes()
}

// Marshal encodes M.2.
func (m *AccessRequest) Marshal() []byte {
	w := wire.NewWriter(512)
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GR.Marshal())
	w.Time(m.Timestamp)
	w.BytesField(m.Sig.Bytes())
	if m.HasSolution {
		w.Byte(1)
		w.Uint64(m.Solution)
		w.Time(m.PuzzleIssuedAt)
		w.Byte(m.PuzzleDifficulty)
	} else {
		w.Byte(0)
	}
	return w.Bytes()
}

// UnmarshalAccessRequest decodes M.2.
func UnmarshalAccessRequest(data []byte) (*AccessRequest, error) {
	r := wire.NewReader(data)
	m := &AccessRequest{}
	var err error
	if m.GJ, err = readG1(r); err != nil {
		return nil, fmt.Errorf("m2 g^rj: %w", err)
	}
	if m.GR, err = readG1(r); err != nil {
		return nil, fmt.Errorf("m2 g^rR: %w", err)
	}
	if m.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	rawSig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if m.Sig, err = sgs.ParseSignature(rawSig); err != nil {
		return nil, fmt.Errorf("m2 signature: %w", err)
	}
	has, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if has == 1 {
		m.HasSolution = true
		if m.Solution, err = r.Uint64(); err != nil {
			return nil, err
		}
		if m.PuzzleIssuedAt, err = r.Time(); err != nil {
			return nil, err
		}
		if m.PuzzleDifficulty, err = r.Byte(); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// AccessRequestPeek is the cheap, pre-decode view of an M.2 datagram: the
// raw (still-compressed) DH shares and the puzzle-solution echo. It is all
// an ingress gate needs to verify a puzzle solution and address a reject —
// no curve unmarshal, no signature parse.
type AccessRequestPeek struct {
	RawGJ, RawGR     []byte // aliases into the input buffer
	HasSolution      bool
	Solution         uint64
	PuzzleIssuedAt   time.Time
	PuzzleDifficulty uint8
}

// PeekAccessRequest extracts the peek view from an encoded M.2 without
// decoding curve points or the group signature. The returned byte slices
// alias data.
func PeekAccessRequest(data []byte) (*AccessRequestPeek, error) {
	r := wire.NewReader(data)
	p := &AccessRequestPeek{}
	var err error
	if p.RawGJ, err = r.BytesField(); err != nil {
		return nil, fmt.Errorf("m2 g^rj: %w", err)
	}
	if p.RawGR, err = r.BytesField(); err != nil {
		return nil, fmt.Errorf("m2 g^rR: %w", err)
	}
	if _, err = r.Time(); err != nil {
		return nil, err
	}
	if _, err = r.BytesField(); err != nil { // signature
		return nil, err
	}
	has, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if has == 1 {
		p.HasSolution = true
		if p.Solution, err = r.Uint64(); err != nil {
			return nil, err
		}
		if p.PuzzleIssuedAt, err = r.Time(); err != nil {
			return nil, err
		}
		if p.PuzzleDifficulty, err = r.Byte(); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// AccessConfirm is message M.3: the router's key confirmation,
// E_K(MR_k, g^{r_j}, g^{r_R}).
type AccessConfirm struct {
	GJ, GR     *bn256.G1
	Ciphertext []byte
	// Ticket is an opaque, STEK-sealed resumption ticket the serving
	// transport may attach (empty when resumption is not offered). It is
	// deliberately outside the paper's M.3 ciphertext: the blob is useless
	// without the resumption secret both endpoints derive from the session
	// keys, so carrying it in the clear leaks nothing and lets the
	// transport issue it without re-sealing the confirmation.
	Ticket []byte
}

// Marshal encodes M.3.
func (m *AccessConfirm) Marshal() []byte {
	w := wire.NewWriter(256 + len(m.Ticket))
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GR.Marshal())
	w.BytesField(m.Ciphertext)
	w.BytesField(m.Ticket)
	return w.Bytes()
}

// UnmarshalAccessConfirm decodes M.3.
func UnmarshalAccessConfirm(data []byte) (*AccessConfirm, error) {
	r := wire.NewReader(data)
	m := &AccessConfirm{}
	var err error
	if m.GJ, err = readG1(r); err != nil {
		return nil, fmt.Errorf("m3 g^rj: %w", err)
	}
	if m.GR, err = readG1(r); err != nil {
		return nil, fmt.Errorf("m3 g^rR: %w", err)
	}
	ct, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Ciphertext = append([]byte(nil), ct...)
	tk, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if len(tk) > 0 {
		m.Ticket = append([]byte(nil), tk...)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// PeerHello is message M̃.1: a user's local broadcast initiating user–user
// authentication, signed with the group private key.
type PeerHello struct {
	G         *bn256.G1 // generator from the serving router's beacon
	GJ        *bn256.G1 // g^{r_j}
	Timestamp time.Time // ts_1
	Sig       *sgs.Signature
}

// SignedTranscript is the byte string the group signature covers:
// {g, g^{r_j}, ts_1}.
func (m *PeerHello) SignedTranscript() []byte {
	w := wire.NewWriter(160)
	w.StringField("peace/mt1:v1")
	w.BytesField(m.G.Marshal())
	w.BytesField(m.GJ.Marshal())
	w.Time(m.Timestamp)
	return w.Bytes()
}

// Marshal encodes M̃.1.
func (m *PeerHello) Marshal() []byte {
	w := wire.NewWriter(512)
	w.BytesField(m.G.Marshal())
	w.BytesField(m.GJ.Marshal())
	w.Time(m.Timestamp)
	w.BytesField(m.Sig.Bytes())
	return w.Bytes()
}

// UnmarshalPeerHello decodes M̃.1.
func UnmarshalPeerHello(data []byte) (*PeerHello, error) {
	r := wire.NewReader(data)
	m := &PeerHello{}
	var err error
	if m.G, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt1 g: %w", err)
	}
	if m.GJ, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt1 g^rj: %w", err)
	}
	if m.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	rawSig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if m.Sig, err = sgs.ParseSignature(rawSig); err != nil {
		return nil, fmt.Errorf("mt1 signature: %w", err)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// PeerResponse is message M̃.2: the responder's group-signed DH share.
type PeerResponse struct {
	GJ        *bn256.G1 // echoed g^{r_j}
	GL        *bn256.G1 // g^{r_l}
	Timestamp time.Time // ts_2
	Sig       *sgs.Signature
}

// SignedTranscript is {g^{r_j}, g^{r_l}, ts_2}.
func (m *PeerResponse) SignedTranscript() []byte {
	w := wire.NewWriter(160)
	w.StringField("peace/mt2:v1")
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GL.Marshal())
	w.Time(m.Timestamp)
	return w.Bytes()
}

// Marshal encodes M̃.2.
func (m *PeerResponse) Marshal() []byte {
	w := wire.NewWriter(512)
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GL.Marshal())
	w.Time(m.Timestamp)
	w.BytesField(m.Sig.Bytes())
	return w.Bytes()
}

// UnmarshalPeerResponse decodes M̃.2.
func UnmarshalPeerResponse(data []byte) (*PeerResponse, error) {
	r := wire.NewReader(data)
	m := &PeerResponse{}
	var err error
	if m.GJ, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt2 g^rj: %w", err)
	}
	if m.GL, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt2 g^rl: %w", err)
	}
	if m.Timestamp, err = r.Time(); err != nil {
		return nil, err
	}
	rawSig, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	if m.Sig, err = sgs.ParseSignature(rawSig); err != nil {
		return nil, fmt.Errorf("mt2 signature: %w", err)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// PeerConfirm is message M̃.3: E_K(g^{r_j}, g^{r_l}, ts_1, ts_2).
type PeerConfirm struct {
	GJ, GL     *bn256.G1
	Ciphertext []byte
}

// Marshal encodes M̃.3.
func (m *PeerConfirm) Marshal() []byte {
	w := wire.NewWriter(256)
	w.BytesField(m.GJ.Marshal())
	w.BytesField(m.GL.Marshal())
	w.BytesField(m.Ciphertext)
	return w.Bytes()
}

// UnmarshalPeerConfirm decodes M̃.3.
func UnmarshalPeerConfirm(data []byte) (*PeerConfirm, error) {
	r := wire.NewReader(data)
	m := &PeerConfirm{}
	var err error
	if m.GJ, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt3 g^rj: %w", err)
	}
	if m.GL, err = readG1(r); err != nil {
		return nil, fmt.Errorf("mt3 g^rl: %w", err)
	}
	ct, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	m.Ciphertext = append([]byte(nil), ct...)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

func readG1(r *wire.Reader) (*bn256.G1, error) {
	raw, err := r.BytesField()
	if err != nil {
		return nil, err
	}
	return new(bn256.G1).Unmarshal(raw)
}
