package core

import (
	"fmt"
	"math/big"
	"sync"

	"github.com/peace-mesh/peace/internal/cert"
)

// GroupManager represents a user group (a company, university, agency...)
// that subscribes to the WMN on behalf of its members. It receives the
// (grp_i, x_j) halves of the group private keys from the network operator,
// assigns them to members, and keeps the uid ↔ x_j mapping that — together
// with the operator's audit — lets the law authority trace a user. By
// design it never learns any A_{i,j}.
type GroupManager struct {
	cfg     Config
	id      GroupID
	signKey *cert.KeyPair
	noPub   cert.PublicKey

	mu sync.Mutex
	// epoch tracks the key epoch of the installed bundle.
	epoch uint32
	// haveBundle reports whether any bundle has been installed.
	haveBundle bool
	// grp is this group's grp_i component; nil until a bundle arrives.
	grp *big.Int
	// slots holds the per-member x_j values and their assignments.
	slots []gmSlot
	// nextFree is the lowest unassigned slot index.
	nextFree int
	// bundleReceipt is the receipt this GM returned to the NO.
	bundleReceipt *Receipt
	// bundleBody is the acknowledged bundle payload (kept to let auditors
	// re-verify the receipt chain).
	bundleBody []byte
	// userKeys records each enrolled member's receipt-verification key,
	// learned during the in-person enrollment step.
	userKeys map[UserID]cert.PublicKey
}

type gmSlot struct {
	x           *big.Int
	assignedTo  UserID
	assigned    bool
	userReceipt *Receipt
	// assignmentBody is the payload the user receipted.
	assignmentBody []byte
}

// NewGroupManager creates a manager for the named group.
func NewGroupManager(cfg Config, id GroupID, noPub cert.PublicKey) (*GroupManager, error) {
	cfg = cfg.withDefaults()
	kp, err := cert.GenerateKeyPair(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("gm %q: %w", id, err)
	}
	return &GroupManager{
		cfg:      cfg,
		id:       id,
		signKey:  kp,
		noPub:    noPub,
		userKeys: make(map[UserID]cert.PublicKey),
	}, nil
}

// ID returns the group identifier.
func (g *GroupManager) ID() GroupID { return g.id }

// Public returns the GM's receipt-verification key.
func (g *GroupManager) Public() cert.PublicKey { return g.signKey.Public() }

// ReceiveBundle ingests the signed NO → GM key bundle (setup Step 5) and
// returns the GM's signed receipt.
func (g *GroupManager) ReceiveBundle(b *GMKeyBundle) (*Receipt, error) {
	if b.Group != g.id {
		return nil, fmt.Errorf("gm %q: bundle addressed to %q", g.id, b.Group)
	}
	if err := b.Verify(g.noPub); err != nil {
		return nil, fmt.Errorf("gm %q: %w", g.id, err)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.haveBundle && b.Epoch <= g.epoch {
		return nil, fmt.Errorf("gm %q: duplicate bundle for epoch %d", g.id, b.Epoch)
	}
	// A newer epoch replaces all key material; members must re-enroll.
	g.epoch = b.Epoch
	g.haveBundle = true
	g.nextFree = 0
	g.grp = new(big.Int).Set(b.Grp)
	g.slots = make([]gmSlot, len(b.Xs))
	for i, x := range b.Xs {
		g.slots[i] = gmSlot{x: new(big.Int).Set(x)}
	}
	g.bundleBody = b.body()

	rcpt, err := signReceipt(g.cfg.Rand, g.signKey, "gm:"+string(g.id), g.bundleBody)
	if err != nil {
		return nil, err
	}
	g.bundleReceipt = rcpt
	return rcpt, nil
}

// Capacity returns total and unassigned slot counts.
func (g *GroupManager) Capacity() (total, free int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.slots), len(g.slots) - g.nextFree
}

// EnrollUser assigns the next free key slot to uid and returns the
// assignment ([i,j], grp_i, x_j). The pre-established trust between user
// and group (in-person authentication, per the paper) is assumed to have
// happened out of band.
func (g *GroupManager) EnrollUser(uid UserID, receiptKey cert.PublicKey) (*KeyAssignment, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.grp == nil {
		return nil, fmt.Errorf("gm %q: no key material received yet", g.id)
	}
	if g.nextFree >= len(g.slots) {
		return nil, fmt.Errorf("gm %q: %w", g.id, ErrNoKeysLeft)
	}
	idx := g.nextFree
	g.nextFree++
	g.slots[idx].assignedTo = uid
	g.slots[idx].assigned = true
	g.userKeys[uid] = receiptKey

	a := &KeyAssignment{
		Group: g.id,
		Index: idx,
		Grp:   new(big.Int).Set(g.grp),
		X:     new(big.Int).Set(g.slots[idx].x),
	}
	g.slots[idx].assignmentBody = a.body()
	return a, nil
}

// RecordUserReceipt stores the member's signed acknowledgment of the
// assignment (the "uid_j signs on the messages he receives" step).
func (g *GroupManager) RecordUserReceipt(index int, rcpt *Receipt) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if index < 0 || index >= len(g.slots) || !g.slots[index].assigned {
		return fmt.Errorf("gm %q: slot %d not assigned", g.id, index)
	}
	g.slots[index].userReceipt = rcpt
	return nil
}

// LookupUser resolves a key slot to the member it was assigned to,
// returning the member's receipt and the receipted payload for
// non-repudiation verification. This is the GM's contribution to the
// law-authority trace.
func (g *GroupManager) LookupUser(index int) (UserID, *Receipt, []byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if index < 0 || index >= len(g.slots) || !g.slots[index].assigned {
		return "", nil, nil, fmt.Errorf("gm %q: slot %d not assigned", g.id, index)
	}
	s := g.slots[index]
	return s.assignedTo, s.userReceipt, s.assignmentBody, nil
}

// UserReceiptKey returns the receipt-verification key recorded for a
// member at enrollment.
func (g *GroupManager) UserReceiptKey(uid UserID) (cert.PublicKey, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k, ok := g.userKeys[uid]
	return k, ok
}

// BundleReceipt exposes the GM's receipt and the acknowledged payload for
// receipt-chain verification during traces.
func (g *GroupManager) BundleReceipt() (*Receipt, []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bundleReceipt, g.bundleBody
}
