package core

import "fmt"

// Billing support. Section I of the paper motivates access control "for
// both billing purpose and avoiding abuse of network resources", and the
// audit protocol's group-level attribution is exactly what makes
// privacy-preserving billing possible: the operator can charge a user
// *group* for its members' aggregate sessions without learning which
// member opened which session.

// BillingReport aggregates audited sessions per user group.
type BillingReport struct {
	// Sessions counts attributable sessions per group.
	Sessions map[GroupID]int
	// Unattributed counts transcripts no token matched (foreign or
	// forged; these are never billed to anyone).
	Unattributed int
}

// BillSessions audits a batch of logged access requests and returns the
// per-group session counts. Invalid or foreign transcripts are counted as
// unattributed rather than failing the whole batch.
func (n *NetworkOperator) BillSessions(logged []*AccessRequest) (*BillingReport, error) {
	if len(logged) == 0 {
		return &BillingReport{Sessions: map[GroupID]int{}}, nil
	}
	rep := &BillingReport{Sessions: make(map[GroupID]int)}
	for _, m := range logged {
		res, err := n.Audit(m)
		if err != nil {
			rep.Unattributed++
			continue
		}
		rep.Sessions[res.Group]++
	}
	return rep, nil
}

// Charge computes a simple per-session charge per group given a unit
// price in arbitrary currency units.
func (r *BillingReport) Charge(unitPrice int64) map[GroupID]int64 {
	out := make(map[GroupID]int64, len(r.Sessions))
	for g, n := range r.Sessions {
		out[g] = unitPrice * int64(n)
	}
	return out
}

// String renders the report compactly.
func (r *BillingReport) String() string {
	return fmt.Sprintf("BillingReport{groups: %d, unattributed: %d}", len(r.Sessions), r.Unattributed)
}
