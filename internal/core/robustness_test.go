package core

import (
	"testing"
	"testing/quick"

	"github.com/peace-mesh/peace/internal/revocation"
)

// The unmarshalers face attacker-controlled bytes from the radio medium:
// they must reject garbage with errors, never panic, and never allocate
// absurdly. These property tests feed random byte strings to every codec.

func TestUnmarshalersNeverPanicOnRandomBytes(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"Beacon": func(b []byte) error {
			_, err := UnmarshalBeacon(b)
			return err
		},
		"AccessRequest": func(b []byte) error {
			_, err := UnmarshalAccessRequest(b)
			return err
		},
		"AccessConfirm": func(b []byte) error {
			_, err := UnmarshalAccessConfirm(b)
			return err
		},
		"PeerHello": func(b []byte) error {
			_, err := UnmarshalPeerHello(b)
			return err
		},
		"PeerResponse": func(b []byte) error {
			_, err := UnmarshalPeerResponse(b)
			return err
		},
		"PeerConfirm": func(b []byte) error {
			_, err := UnmarshalPeerConfirm(b)
			return err
		},
		"DataFrame": func(b []byte) error {
			_, err := UnmarshalDataFrame(b)
			return err
		},
		"RevocationSnapshot": func(b []byte) error {
			_, err := revocation.UnmarshalSnapshot(b)
			return err
		},
		"RevocationDelta": func(b []byte) error {
			_, err := revocation.UnmarshalDelta(b)
			return err
		},
	}

	for name, dec := range decoders {
		dec := dec
		f := func(b []byte) bool {
			// Must not panic; random bytes virtually never decode, but a
			// rare success is not a failure per se — the signature checks
			// downstream are the security boundary.
			_ = dec(b)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTruncatedRealMessagesRejected(t *testing.T) {
	// Every strict prefix of a real message must fail to decode (no codec
	// silently accepts a truncation).
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := r.HandleAccessRequest(m2)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		data []byte
		dec  func([]byte) error
	}{
		"Beacon": {beacon.Marshal(), func(b []byte) error { _, err := UnmarshalBeacon(b); return err }},
		"M2":     {m2.Marshal(), func(b []byte) error { _, err := UnmarshalAccessRequest(b); return err }},
		"M3":     {m3.Marshal(), func(b []byte) error { _, err := UnmarshalAccessConfirm(b); return err }},
	}
	for name, c := range cases {
		// Sample prefixes (every length would be slow for the beacon).
		for cut := 0; cut < len(c.data); cut += 1 + len(c.data)/64 {
			if err := c.dec(c.data[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
		// Trailing garbage must also be rejected.
		if err := c.dec(append(append([]byte(nil), c.data...), 0x00)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

func TestBitFlippedAccessRequestNeverAuthenticates(t *testing.T) {
	// Flip one bit at a sampled set of positions across a real M.2: the
	// result must never pass router validation (decode failures are fine).
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	data := m2.Marshal()

	for pos := 0; pos < len(data); pos += 1 + len(data)/48 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x01
		parsed, err := UnmarshalAccessRequest(mut)
		if err != nil {
			continue // decode-level rejection
		}
		if _, _, err := r.HandleAccessRequest(parsed); err == nil {
			t.Fatalf("bit flip at byte %d authenticated", pos)
		}
	}
}
