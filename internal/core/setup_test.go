package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"github.com/peace-mesh/peace/internal/bn256"
)

func TestMaskTokenRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		_, a, err := bn256.RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		x, err := bn256.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		masked := maskToken(a, x)
		back, err := unmaskToken(masked, x)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a) {
			t.Fatal("mask/unmask round-trip mismatch")
		}
	}
}

func TestMaskTokenHidesA(t *testing.T) {
	_, a, _ := bn256.RandomG1(rand.Reader)
	x, _ := bn256.RandomScalar(rand.Reader)
	masked := maskToken(a, x)

	if bytes.Contains(masked, a.Marshal()[:16]) {
		t.Fatal("masked token leaks a prefix of A")
	}
	// The wrong x must not recover A (it will either fail to decode or
	// decode to a different point).
	otherX := new(big.Int).Add(x, big.NewInt(1))
	back, err := unmaskToken(masked, otherX)
	if err == nil && back.Equal(a) {
		t.Fatal("wrong x recovered A")
	}
}

func TestEnrollmentAssemblesValidKey(t *testing.T) {
	tb := newTestbed(t, 1, 1, 0)
	u := tb.user("0", 0)
	if len(u.Groups()) != 1 || u.Groups()[0] != "grp-0" {
		t.Fatalf("user groups = %v", u.Groups())
	}
}

func TestEnrollmentCapacityExhausted(t *testing.T) {
	clock := &FixedClock{T: testbedEpoch}
	cfg := Config{Clock: clock}
	no, err := NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttp, err := NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewGroupManager(cfg, "tiny", no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	if err := no.RegisterUserGroup(gm, ttp, 1); err != nil {
		t.Fatal(err)
	}

	u1, err := NewUser(cfg, Identity{Essential: "first"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := EnrollUser(u1, gm, ttp); err != nil {
		t.Fatal(err)
	}

	u2, err := NewUser(cfg, Identity{Essential: "second"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := EnrollUser(u2, gm, ttp); !errors.Is(err, ErrNoKeysLeft) {
		t.Fatalf("want ErrNoKeysLeft, got %v", err)
	}
}

func TestDuplicateGroupRegistrationRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 0)
	gm := tb.gms["grp-0"]
	if err := tb.no.RegisterUserGroup(gm, tb.ttp, 2); err == nil {
		t.Fatal("duplicate group registration accepted")
	}
}

func TestBundleSignaturesChecked(t *testing.T) {
	clock := &FixedClock{T: testbedEpoch}
	cfg := Config{Clock: clock}
	no, err := NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewGroupManager(cfg, "g", no.Authority())
	if err != nil {
		t.Fatal(err)
	}

	// A bundle without a valid NO signature is rejected by the GM.
	bad := &GMKeyBundle{
		Group:     "g",
		Grp:       big.NewInt(42),
		Xs:        []*big.Int{big.NewInt(7)},
		Signature: []byte{0x30, 0x00},
	}
	if _, err := gm.ReceiveBundle(bad); err == nil {
		t.Fatal("unsigned GM bundle accepted")
	}

	ttp, err := NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	badTTP := &TTPKeyBundle{Group: "g", Masked: [][]byte{{1, 2, 3}}, Signature: []byte{0x30, 0x00}}
	if _, err := ttp.ReceiveBundle(badTTP); err == nil {
		t.Fatal("unsigned TTP bundle accepted")
	}
}

func TestTTPSlotDoubleDeliveryRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 0)
	// Slot 0 of grp-0 went to user 0; delivering it to someone else fails.
	if _, err := tb.ttp.DeliverToUser("intruder", "grp-0", 0); err == nil {
		t.Fatal("TTP re-delivered an assigned slot to a different user")
	}
	// Unknown group and out-of-range slots fail too.
	if _, err := tb.ttp.DeliverToUser("u", "nope", 0); err == nil {
		t.Fatal("TTP delivered for unknown group")
	}
	if _, err := tb.ttp.DeliverToUser("u", "grp-0", 9999); err == nil {
		t.Fatal("TTP delivered out-of-range slot")
	}
}

func TestReceiptVerification(t *testing.T) {
	tb := newTestbed(t, 1, 1, 0)
	gm := tb.gms["grp-0"]

	rcpt, payload := gm.BundleReceipt()
	if rcpt == nil {
		t.Fatal("GM kept no bundle receipt")
	}
	if err := rcpt.Verify(gm.Public(), payload); err != nil {
		t.Fatal(err)
	}
	// Receipt over different payload fails.
	if err := rcpt.Verify(gm.Public(), append(payload, 1)); err == nil {
		t.Fatal("receipt verified against altered payload")
	}
	// Nil receipt is ErrReceiptMissing.
	var missing *Receipt
	if err := missing.Verify(gm.Public(), payload); !errors.Is(err, ErrReceiptMissing) {
		t.Fatalf("want ErrReceiptMissing, got %v", err)
	}
}

func TestCorruptedMaskedTokenRejected(t *testing.T) {
	clock := &FixedClock{T: testbedEpoch}
	cfg := Config{Clock: clock}
	no, err := NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttp, err := NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewGroupManager(cfg, "g", no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	if err := no.RegisterUserGroup(gm, ttp, 1); err != nil {
		t.Fatal(err)
	}
	u, err := NewUser(cfg, Identity{Essential: "u"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := gm.EnrollUser(u.ID(), u.ReceiptKey())
	if err != nil {
		t.Fatal(err)
	}
	masked, err := ttp.DeliverToUser(u.ID(), assign.Group, assign.Index)
	if err != nil {
		t.Fatal(err)
	}
	masked[0] ^= 0xFF
	if _, _, err := u.AcceptCredential(assign, masked); err == nil {
		t.Fatal("user accepted a corrupted credential")
	}
}
