package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/cert"
)

// testbed is a fully provisioned PEACE deployment for integration tests:
// one operator, one TTP, a set of user groups with enrolled members, and
// certified mesh routers with fresh CRL/URL state.
type testbed struct {
	cfg     Config
	clock   *FixedClock
	no      *NetworkOperator
	ttp     *TTP
	gms     map[GroupID]*GroupManager
	users   map[UserID]*User
	routers map[string]*MeshRouter
}

var testbedEpoch = time.Unix(1751600000, 0)

// newTestbed builds a deployment with the given number of groups, users
// per group and routers. Users are named "user-<group>-<n>"; groups
// "grp-<n>"; routers "MR-<n>".
func newTestbed(t testing.TB, groups, usersPerGroup, routers int) *testbed {
	t.Helper()

	clock := &FixedClock{T: testbedEpoch}
	cfg := Config{
		Clock:            clock,
		FreshnessWindow:  time.Minute,
		PuzzleDifficulty: 4, // keep Solve cheap in tests
	}

	no, err := NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttp, err := NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}

	tb := &testbed{
		cfg:     cfg,
		clock:   clock,
		no:      no,
		ttp:     ttp,
		gms:     make(map[GroupID]*GroupManager),
		users:   make(map[UserID]*User),
		routers: make(map[string]*MeshRouter),
	}

	for gi := 0; gi < groups; gi++ {
		gid := GroupID(fmt.Sprintf("grp-%d", gi))
		gm, err := NewGroupManager(cfg, gid, no.Authority())
		if err != nil {
			t.Fatal(err)
		}
		// Issue twice the member count so revocation tests have headroom.
		if err := no.RegisterUserGroup(gm, ttp, 2*usersPerGroup+2); err != nil {
			t.Fatal(err)
		}
		tb.gms[gid] = gm

		for ui := 0; ui < usersPerGroup; ui++ {
			uid := UserID(fmt.Sprintf("user-%s-%d", gid, ui))
			u, err := NewUser(cfg, Identity{
				Essential:  uid,
				Attributes: []Attribute{{Group: gid, Role: "member"}},
			}, no.Authority(), no.GroupPublicKey())
			if err != nil {
				t.Fatal(err)
			}
			if err := EnrollUser(u, gm, ttp); err != nil {
				t.Fatal(err)
			}
			tb.users[uid] = u
		}
	}

	for ri := 0; ri < routers; ri++ {
		id := fmt.Sprintf("MR-%d", ri)
		r, err := NewMeshRouter(cfg, id, no.Authority(), no.GroupPublicKey())
		if err != nil {
			t.Fatal(err)
		}
		c, err := no.EnrollRouter(id, r.Public())
		if err != nil {
			t.Fatal(err)
		}
		r.SetCertificate(c)
		tb.routers[id] = r
	}

	tb.pushRevocations(t)
	return tb
}

// pushRevocations distributes fresh CRL/URL snapshot bundles to every
// router and every user (in deployments users converge via the transport's
// delta fetches; the testbed models that secure channel as direct calls).
func (tb *testbed) pushRevocations(t testing.TB) {
	t.Helper()
	crl, url, err := tb.no.RevocationBundles()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.routers {
		if err := r.UpdateRevocations(crl, url); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range tb.users {
		if err := u.InstallRevocationSnapshot(crl.Snapshot); err != nil {
			t.Fatal(err)
		}
		if err := u.InstallRevocationSnapshot(url.Snapshot); err != nil {
			t.Fatal(err)
		}
	}
}

// issueSelfCert builds a certificate signed by kp itself rather than the
// operator — what a rogue router would fabricate.
func issueSelfCert(cfg Config, kp *cert.KeyPair, id string, expiresAt time.Time) (*cert.Certificate, error) {
	cfg = cfg.withDefaults()
	return cert.IssueCertificate(cfg.Rand, kp, id, kp.Public(), expiresAt)
}

// user returns the n-th user of the given group.
func (tb *testbed) user(group string, n int) *User {
	return tb.users[UserID(fmt.Sprintf("user-grp-%s-%d", group, n))]
}

// runAKA drives one full user–router AKA over marshaled messages (the
// bytes actually cross the "air"), returning both session halves.
func (tb *testbed) runAKA(t testing.TB, u *User, r *MeshRouter, group GroupID) (userSess, routerSess *Session) {
	t.Helper()

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := UnmarshalBeacon(beacon.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	m2, err := u.HandleBeacon(b2, group)
	if err != nil {
		t.Fatal(err)
	}
	m2b, err := UnmarshalAccessRequest(m2.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	m3, rs, err := r.HandleAccessRequest(m2b)
	if err != nil {
		t.Fatal(err)
	}
	m3b, err := UnmarshalAccessConfirm(m3.Marshal())
	if err != nil {
		t.Fatal(err)
	}

	us, err := u.HandleAccessConfirm(m3b)
	if err != nil {
		t.Fatal(err)
	}
	return us, rs
}
