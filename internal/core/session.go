package core

import (
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// Session is an established security association after a successful AKA
// run: directional symmetric keys bound to the session identifier
// (g^{r_R}, g^{r_j}) — the paper's hybrid design authenticates and
// encrypts all subsequent traffic with these keys instead of group
// signatures.
type Session struct {
	// ID is the session identifier derived from the two DH shares.
	ID SessionID
	// Peer is a human-readable hint ("MR-3", "peer") — never an identity.
	Peer string
	// Established records when the AKA completed.
	Established time.Time

	keys symcrypto.SessionKeys

	// aead is the cached AES-GCM instance for keys.Enc — the key schedule
	// is paid once at establishment, not on every frame. nonceBase is a
	// per-instance random nonce prefix; the zero-alloc seal path XORs the
	// sequence number into it (the TLS 1.3 IV construction), which keeps
	// nonces unique per direction even though both endpoints seal under
	// the same Enc key: each endpoint's Session instance draws its own
	// random base, and collisions across 96-bit bases are negligible.
	aead      cipher.AEAD
	nonceBase [symcrypto.GCMNonceSize]byte

	mu      sync.Mutex
	sendSeq uint64
	// recvHigh is the highest sequence number accepted so far; frames at
	// or below it are replays.
	recvHigh uint64
	recvAny  bool
	// Seal/open scratch, guarded by mu: nonce and AAD must reach the
	// AEAD without a per-call heap escape.
	nonceScratch [symcrypto.GCMNonceSize]byte
	aadScratch   [frameAADSize]byte
}

// newSession derives the session keys from the DH secret and transcript.
func newSession(id SessionID, peer string, dhSecret, transcript []byte, established time.Time) *Session {
	s := &Session{
		ID:          id,
		Peer:        peer,
		Established: established,
		keys:        symcrypto.DeriveSessionKeys(dhSecret, transcript),
	}
	s.aead, _ = symcrypto.NewAEAD(s.keys.Enc) // never fails for a 32-byte key
	rand.Read(s.nonceBase[:])
	return s
}

// DataFrame is one unit of protected session traffic. Encrypted frames
// carry AEAD ciphertext; authenticated-only frames (the cheap MAC path of
// the hybrid design) carry the plaintext plus an HMAC tag.
type DataFrame struct {
	Session   SessionID
	Seq       uint64
	Encrypted bool
	Payload   []byte                  // ciphertext if Encrypted, plaintext otherwise
	Tag       [symcrypto.MACSize]byte // set when !Encrypted
}

// Marshal encodes the frame.
func (f *DataFrame) Marshal() []byte {
	w := wire.NewWriter(64 + len(f.Payload))
	w.BytesField(f.Session[:])
	w.Uint64(f.Seq)
	if f.Encrypted {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.BytesField(f.Payload)
	w.BytesField(f.Tag[:])
	return w.Bytes()
}

// UnmarshalDataFrame decodes a frame. The payload is copied, so the
// result outlives the input buffer.
func UnmarshalDataFrame(data []byte) (*DataFrame, error) {
	f := &DataFrame{}
	if err := UnmarshalDataFrameInto(data, f); err != nil {
		return nil, err
	}
	f.Payload = append([]byte(nil), f.Payload...)
	return f, nil
}

// UnmarshalDataFrameInto decodes a frame into f without allocating:
// f.Payload aliases data, so the caller must finish with f before reusing
// the receive buffer. This is the steady-state decode of the sharded read
// loops, where one scratch DataFrame per shard absorbs every keepalive.
func UnmarshalDataFrameInto(data []byte, f *DataFrame) error {
	r := wire.NewReader(data)
	sid, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(sid) != len(f.Session) {
		return fmt.Errorf("frame: session id size %d", len(sid))
	}
	copy(f.Session[:], sid)
	if f.Seq, err = r.Uint64(); err != nil {
		return err
	}
	enc, err := r.Byte()
	if err != nil {
		return err
	}
	f.Encrypted = enc == 1
	p, err := r.BytesField()
	if err != nil {
		return err
	}
	f.Payload = p
	tag, err := r.BytesField()
	if err != nil {
		return err
	}
	if len(tag) != symcrypto.MACSize {
		return fmt.Errorf("frame: tag size %d", len(tag))
	}
	copy(f.Tag[:], tag)
	return r.Finish()
}

// aad binds a frame to its session and sequence number.
func frameAAD(id SessionID, seq uint64) []byte {
	w := wire.NewWriter(48)
	w.BytesField(id[:])
	w.Uint64(seq)
	return w.Bytes()
}

// frameAADSize is the encoded size of frameAAD: a length-prefixed
// session id plus the big-endian sequence number.
const frameAADSize = 4 + len(SessionID{}) + 8

// appendFrameAAD is frameAAD without the Writer allocation; the layouts
// are byte-identical (pinned by a test), so frames sealed by either
// path open under the other.
func appendFrameAAD(dst []byte, id SessionID, seq uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(id)))
	dst = append(dst, id[:]...)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// SealedDataLen returns the marshaled size of an encrypted DataFrame
// carrying a payload of n plaintext bytes — the frame layout is
// deterministic, so egress paths can reserve exactly this much and
// encode header-first without a second copy.
func SealedDataLen(n int) int {
	return 4 + len(SessionID{}) + // session id field
		8 + 1 + // seq + encrypted flag
		4 + symcrypto.GCMNonceSize + n + symcrypto.GCMOverhead + // nonce || ciphertext field
		4 + symcrypto.MACSize // (zero) tag field
}

// AppendSealedData seals payload under the session's cached AEAD and
// appends the complete marshaled DataFrame to dst, returning the
// extended slice. It is the zero-allocation twin of SealData+Marshal:
// same wire format, deterministic nonce (nonceBase XOR seq) instead of
// a drawn one, no per-frame key schedule, no intermediate frame. Give
// dst SealedDataLen(len(payload)) spare capacity to avoid growth.
func (s *Session) AppendSealedData(dst, payload []byte) ([]byte, error) {
	if s.aead == nil {
		return dst, fmt.Errorf("session %s: sealing unavailable", s.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.sendSeq
	s.sendSeq++

	s.nonceScratch = s.nonceBase
	for i := 0; i < 8; i++ {
		s.nonceScratch[symcrypto.GCMNonceSize-1-i] ^= byte(seq >> (8 * i))
	}
	aad := appendFrameAAD(s.aadScratch[:0], s.ID, seq)

	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.ID)))
	dst = append(dst, s.ID[:]...)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = append(dst, 1)
	dst = binary.BigEndian.AppendUint32(dst, uint32(symcrypto.GCMNonceSize+len(payload)+symcrypto.GCMOverhead))
	dst = append(dst, s.nonceScratch[:]...)
	dst = s.aead.Seal(dst, s.nonceScratch[:], payload, aad)
	dst = binary.BigEndian.AppendUint32(dst, symcrypto.MACSize)
	var zeroTag [symcrypto.MACSize]byte
	return append(dst, zeroTag[:]...), nil
}

// OpenDataInto verifies and decrypts an encrypted frame under the
// cached AEAD, appending the plaintext to dst — the zero-allocation
// twin of OpenData for the batched ingest path. Replay enforcement is
// identical. dst needs len(f.Payload) spare capacity to stay
// allocation-free; MAC-only frames fall back to the general path.
func (s *Session) OpenDataInto(f *DataFrame, dst []byte) ([]byte, error) {
	if f.Session != s.ID {
		return nil, fmt.Errorf("session %s: %w", s.ID, ErrNoSession)
	}
	if !f.Encrypted || s.aead == nil {
		pt, err := s.OpenData(f)
		if err != nil {
			return nil, err
		}
		return append(dst, pt...), nil
	}
	if len(f.Payload) < symcrypto.GCMNonceSize+symcrypto.GCMOverhead {
		return nil, fmt.Errorf("session %s: %w", s.ID, symcrypto.ErrDecrypt)
	}
	nonce := f.Payload[:symcrypto.GCMNonceSize]
	ct := f.Payload[symcrypto.GCMNonceSize:]

	s.mu.Lock()
	defer s.mu.Unlock()
	aad := appendFrameAAD(s.aadScratch[:0], s.ID, f.Seq)
	pt, err := s.aead.Open(dst, nonce, ct, aad)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", s.ID, symcrypto.ErrDecrypt)
	}
	if s.recvAny && f.Seq <= s.recvHigh {
		return nil, fmt.Errorf("session %s: seq %d: %w", s.ID, f.Seq, ErrReplay)
	}
	s.recvHigh = f.Seq
	s.recvAny = true
	return pt, nil
}

// SealData encrypts and authenticates payload (AES-GCM path).
func (s *Session) SealData(rng io.Reader, payload []byte) (*DataFrame, error) {
	s.mu.Lock()
	seq := s.sendSeq
	s.sendSeq++
	s.mu.Unlock()

	ct, err := symcrypto.Seal(rng, s.keys.Enc, payload, frameAAD(s.ID, seq))
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", s.ID, err)
	}
	return &DataFrame{Session: s.ID, Seq: seq, Encrypted: true, Payload: ct}, nil
}

// AuthData authenticates payload without encrypting it (the MAC-only path
// used to benchmark the hybrid design of Section V.C).
func (s *Session) AuthData(payload []byte) *DataFrame {
	s.mu.Lock()
	seq := s.sendSeq
	s.sendSeq++
	s.mu.Unlock()

	tag := symcrypto.MAC(s.keys.Mac, seq, payload)
	return &DataFrame{Session: s.ID, Seq: seq, Payload: append([]byte(nil), payload...), Tag: tag}
}

// OpenData verifies (and if encrypted, decrypts) an incoming frame,
// enforcing strictly increasing sequence numbers as replay defense.
func (s *Session) OpenData(f *DataFrame) ([]byte, error) {
	if f.Session != s.ID {
		return nil, fmt.Errorf("session %s: %w", s.ID, ErrNoSession)
	}

	var payload []byte
	if f.Encrypted {
		pt, err := symcrypto.Open(s.keys.Enc, f.Payload, frameAAD(s.ID, f.Seq))
		if err != nil {
			return nil, fmt.Errorf("session %s: %w", s.ID, err)
		}
		payload = pt
	} else {
		if err := symcrypto.VerifyMAC(s.keys.Mac, f.Seq, f.Payload, f.Tag); err != nil {
			return nil, fmt.Errorf("session %s: %w", s.ID, err)
		}
		payload = append([]byte(nil), f.Payload...)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recvAny && f.Seq <= s.recvHigh {
		return nil, fmt.Errorf("session %s: seq %d: %w", s.ID, f.Seq, ErrReplay)
	}
	s.recvHigh = f.Seq
	s.recvAny = true
	return payload, nil
}

// RecvSeq reports the highest data-frame sequence number accepted so far
// and whether any frame has been accepted at all. Multi-hop harnesses use
// it to order sends: a frame relayed across the backbone must land before
// a direct frame with a higher sequence is emitted, or the strictly
// increasing receive rule would drop the straggler as a replay.
func (s *Session) RecvSeq() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvHigh, s.recvAny
}

// keysEqual reports whether two sessions derived identical key material
// (test helper used by protocol integration tests).
func (s *Session) keysEqual(o *Session) bool {
	return s.keys == o.keys
}
