package core

import (
	"strings"
	"testing"
)

// Coverage for the small accessor/inspection surface that protocols don't
// exercise directly but API users rely on.

func TestIdentityAccessors(t *testing.T) {
	id := Identity{
		Essential: "john doe <ssn>",
		Attributes: []Attribute{
			{Group: "company-x", Role: "engineer"},
			{Group: "golf-club", Role: "member"},
		},
	}
	if !id.HasAttribute("company-x") || !id.HasAttribute("golf-club") {
		t.Fatal("HasAttribute missed a role")
	}
	if id.HasAttribute("nowhere") {
		t.Fatal("HasAttribute invented a role")
	}
	a, ok := id.AttributeIn("company-x")
	if !ok || a.Role != "engineer" {
		t.Fatalf("AttributeIn = %+v, %v", a, ok)
	}
	if _, ok := id.AttributeIn("nowhere"); ok {
		t.Fatal("AttributeIn invented a role")
	}
	s := id.String()
	if !strings.Contains(s, "engineer of company-x") {
		t.Fatalf("Identity.String = %q", s)
	}
	if a.String() != "engineer of company-x" {
		t.Fatalf("Attribute.String = %q", a.String())
	}
}

func TestEntityAccessors(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	if r.ID() != "MR-0" {
		t.Fatalf("router id %q", r.ID())
	}
	if tb.no.GrtSize() != 4 { // one group, 2*1+2 keys issued by the testbed
		t.Fatalf("grt size %d", tb.no.GrtSize())
	}
	total, free := tb.gms["grp-0"].Capacity()
	if total != 4 || free != 3 {
		t.Fatalf("capacity = %d/%d", free, total)
	}
	got := u.Identity()
	if got.Essential != u.ID() || len(got.Attributes) != 1 {
		t.Fatalf("identity copy = %+v", got)
	}
	// Mutating the copy must not affect the user.
	got.Attributes[0].Role = "mutated"
	if u.Identity().Attributes[0].Role == "mutated" {
		t.Fatal("Identity returned aliased attributes")
	}

	us, rs := tb.runAKA(t, u, r, "grp-0")
	if s, ok := u.SessionByID(us.ID); !ok || s != us {
		t.Fatal("user SessionByID lookup failed")
	}
	if u.Sessions() != 1 {
		t.Fatalf("user sessions = %d", u.Sessions())
	}
	if s, ok := r.SessionByID(rs.ID); !ok || s != rs {
		t.Fatal("router SessionByID lookup failed")
	}

	// TTP records the user receipt during enrollment.
	if _, ok := tb.ttp.UserReceipt("grp-0", 0); !ok {
		t.Fatal("TTP user receipt missing")
	}
	if _, ok := tb.ttp.UserReceipt("grp-0", 3); ok {
		t.Fatal("TTP invented a receipt for an unassigned slot")
	}
}

func TestAuditPeerResponse(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	a := tb.user("0", 0)
	b := tb.user("0", 1)
	r := tb.routers["MR-0"]

	for _, u := range []*User{a, b} {
		beacon, err := r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.HandleBeacon(beacon, ""); err != nil {
			t.Fatal(err)
		}
	}
	hello, err := a.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := b.HandlePeerHello(hello, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.no.AuditPeerResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Group != "grp-0" {
		t.Fatalf("peer-response audit group %q", res.Group)
	}
}

func TestBillingReportString(t *testing.T) {
	rep := &BillingReport{Sessions: map[GroupID]int{"a": 1}, Unattributed: 2}
	s := rep.String()
	if !strings.Contains(s, "groups: 1") || !strings.Contains(s, "unattributed: 2") {
		t.Fatalf("BillingReport.String = %q", s)
	}
}

func TestSystemClock(t *testing.T) {
	var c SystemClock
	if c.Now().IsZero() {
		t.Fatal("SystemClock returned zero time")
	}
}

func TestBeaconSignedBodyStable(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	b, err := tb.routers["MR-0"].Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if string(b.SignedBody()) != string(b.SignedBody()) {
		t.Fatal("SignedBody not deterministic")
	}
	// The signature covers SignedBody.
	if err := b.Cert.PublicKey.Verify(b.SignedBody(), b.Signature); err != nil {
		t.Fatal(err)
	}
}
