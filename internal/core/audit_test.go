package core

import (
	"errors"
	"testing"
)

func TestAuditRevealsOnlyGroup(t *testing.T) {
	tb := newTestbed(t, 2, 2, 1)
	u := tb.user("1", 1) // second user of grp-1
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatal(err)
	}

	audit, err := tb.no.Audit(m2)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Group != "grp-1" {
		t.Fatalf("audit group = %q, want grp-1", audit.Group)
	}
	// The audit result structurally cannot contain a UserID: the struct
	// only carries the group and the slot index. Confirm the slot index
	// alone does not identify the user to the operator (the NO has no
	// uid mapping; this is the late-binding property).
	if audit.KeyIndex < 0 {
		t.Fatal("audit missing key index")
	}
}

func TestAuditOfForgedTranscriptFails(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	// Tamper after signing: the audit must refuse to attribute it, so no
	// innocent member can be framed with a doctored log.
	m2.Timestamp = m2.Timestamp.Add(1)
	if _, err := tb.no.Audit(m2); err == nil {
		t.Fatal("audit attributed a forged transcript")
	}
}

func TestAuditOfOutsiderSignatureFails(t *testing.T) {
	// A signature under a *different operator's* group (valid under that
	// other gpk, not ours) must not be attributable.
	tb := newTestbed(t, 1, 1, 1)
	other := newTestbed(t, 1, 1, 1)
	u := other.user("0", 0)
	r := other.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.no.Audit(m2); err == nil {
		t.Fatal("audit attributed a foreign signature")
	}
}

func TestLawAuthorityTrace(t *testing.T) {
	tb := newTestbed(t, 2, 2, 1)
	u := tb.user("0", 1)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatal(err)
	}

	la := NewLawAuthority(tb.gms["grp-0"], tb.gms["grp-1"])
	res, err := la.Trace(tb.no, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.User != u.ID() {
		t.Fatalf("trace identified %q, want %q", res.User, u.ID())
	}
	if res.Audit.Group != "grp-0" {
		t.Fatalf("trace group %q, want grp-0", res.Audit.Group)
	}
	if !res.ReceiptVerified {
		t.Fatal("non-repudiation receipt chain did not verify")
	}
}

func TestTraceFailsWithoutGroupManager(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}

	la := NewLawAuthority() // knows no managers: NO alone cannot identify
	if _, err := la.Trace(tb.no, m2); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("trace without GM cooperation should fail: %v", err)
	}
}

func TestRevokeAudited(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	attacker := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := attacker.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatal(err)
	}

	// Dispute: audit the logged M.2, revoke the found key, distribute.
	audit, err := tb.no.Audit(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.no.RevokeAudited(audit); err != nil {
		t.Fatal(err)
	}
	tb.pushRevocations(t)

	// The attacker's next access attempt fails.
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2b, err := attacker.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2b); !errors.Is(err, ErrRevokedUser) {
		t.Fatalf("audited+revoked attacker still admitted: %v", err)
	}
}

func TestAuditPeerMessages(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	a := tb.user("0", 0)
	b := tb.user("0", 1)

	runPeerAKA(t, tb, a, b, "grp-0", "grp-0")

	// Reconstruct M̃.1 by having the initiator re-run (the simulator logs
	// messages; here we just start a fresh hello to audit).
	hello, err := a.StartPeerAuth("grp-0")
	if err != nil {
		t.Fatal(err)
	}
	audit, err := tb.no.AuditPeerHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Group != "grp-0" {
		t.Fatalf("peer audit group %q", audit.Group)
	}

	la := NewLawAuthority(tb.gms["grp-0"])
	res, err := la.TracePeerHello(tb.no, hello)
	if err != nil {
		t.Fatal(err)
	}
	if res.User != a.ID() {
		t.Fatalf("peer trace identified %q, want %q", res.User, a.ID())
	}
}

func TestAuditSessionFromRouterLog(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	us, _ := tb.runAKA(t, u, r, "grp-0")

	// The operator audits by session id, pulling M.2 from the router log.
	res, err := tb.no.AuditSession(r, us.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Group != "grp-0" {
		t.Fatalf("audit group = %q", res.Group)
	}

	// Unknown session ids fail cleanly.
	var bogus SessionID
	if _, err := tb.no.AuditSession(r, bogus); !errors.Is(err, ErrNoSession) {
		t.Fatalf("want ErrNoSession, got %v", err)
	}
}
